// Ablation: TorrentBroadcast vs naive unicast distribution.
//
// §III-B: "the communication overhead will be limited by the efficiency of
// [the] BitTorrent protocol used by Spark to broadcast variables". This
// bench swaps Spark's broadcast strategy and reports the distribution cost
// of the unpartitioned matrix B as the worker count grows.
#include <cstdio>

#include "bench/harness.h"
#include "support/flags.h"
#include "support/strings.h"

namespace ompcloud::bench {
namespace {

int run(int argc, const char** argv) {
  FlagSet flags("Broadcast-strategy ablation");
  flags.define("benchmark", "gemm", "benchmark (B is broadcast)")
      .define_int("n", 448, "real problem dimension");
  if (Status parsed = flags.parse(argc, argv); !parsed.is_ok()) {
    return parsed.code() == StatusCode::kFailedPrecondition ? 0 : 1;
  }
  const int64_t n = flags.get_int("n");

  std::printf("Ablation: broadcast strategy (%s, n=%lld, dense)\n\n",
              flags.get("benchmark").c_str(), static_cast<long long>(n));
  std::printf("%8s %12s | %14s %12s\n", "workers", "mode", "distribute",
              "job-time");

  for (int workers : {2, 8, 16}) {
    for (auto mode : {net::BroadcastMode::kBitTorrent,
                      net::BroadcastMode::kUnicast}) {
      CloudRunConfig config;
      config.benchmark = flags.get("benchmark");
      config.n = n;
      config.workers = workers;
      config.dedicated_cores = workers * 16;  // keep every core busy
      config.spark.broadcast_mode = mode;
      auto run = run_on_cloud(config);
      if (!run.ok()) {
        std::fprintf(stderr, "%s\n", run.status().to_string().c_str());
        return 1;
      }
      std::printf("%8d %12s | %14s %12s\n", workers,
                  mode == net::BroadcastMode::kBitTorrent ? "bittorrent"
                                                          : "unicast",
                  format_duration(run->report.job.distribute_seconds).c_str(),
                  format_duration(run->report.job.job_seconds).c_str());
    }
  }
  std::printf(
      "\nunicast distribution cost grows linearly with the worker count\n"
      "(the seed's NIC carries one copy per receiver); the torrent's seed\n"
      "carries ~one copy regardless.\n");
  return 0;
}

}  // namespace
}  // namespace ompcloud::bench

int main(int argc, const char** argv) { return ompcloud::bench::run(argc, argv); }
