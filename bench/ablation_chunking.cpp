// Ablation: the chunked streaming transfer pipeline.
//
// Three questions about the chunked staging path:
//   1. Does overlapping block compression with the wire beat the strictly
//      serial compress-then-send pipeline, and how does the win move with
//      the chunk size?
//   2. What does block-level delta caching save on an iterative workload
//      that mutates only a small slice of a large cached input?
//   3. Where is the chunk-size sweet spot (too small = per-request
//      latencies dominate, too large = no overlap to exploit)?
//
// Results also land in BENCH_offload.json for machine consumption.
#include <cmath>
#include <cstdio>

#include "bench/harness.h"
#include "omp/target_region.h"
#include "support/flags.h"
#include "support/strings.h"
#include "trace/export.h"
#include "workload/generators.h"

using namespace ompcloud;

namespace {

// y = A x: one large input (A) that chunked staging splits into blocks,
// one small changing one (x).
Status MatVecBody(int64_t n, const jni::KernelArgs& args) {
  auto a = args.input<float>(0);
  auto x = args.input<float>(1);
  auto y = args.output<float>(0);
  for (int64_t i = args.begin; i < args.end; ++i) {
    float acc = 0.0f;
    for (int64_t k = 0; k < n; ++k) acc += a[i * n + k] * x[k];
    y[i] = acc;
  }
  return Status::ok();
}

struct RunResult {
  omptarget::OffloadReport report;
  omptarget::CloudPlugin::CacheStats cache;
  /// Live-mode trace analysis of the measured (last) offload round.
  std::optional<trace::OffloadAnalysis> analysis;
};

/// One offload of matvec on a fresh cluster with the given staging knobs.
/// `mutate_rows`: before a second offload, overwrite the first `mutate_rows`
/// rows of A (rounds = 2 then measures the delta re-offload).
/// `trace_path`: when non-empty, the run's span tree is exported there as
/// Chrome trace-event JSON.
Result<RunResult> run_matvec(int64_t n, uint64_t chunk_size, bool overlap,
                             bool cache, int rounds, int64_t mutate_rows,
                             const std::string& trace_path = {}) {
  sim::Engine engine;
  cloud::ClusterSpec spec;
  cloud::Cluster cluster(engine, spec, cloud::SimProfile::paper_scale(n));
  omptarget::CloudPluginOptions options;
  options.chunk_size = chunk_size;
  options.overlap_transfers = overlap;
  options.cache_data = cache;
  omptarget::DeviceManager devices(engine);
  int cloud_id = devices.register_device(std::make_unique<omptarget::CloudPlugin>(
      cluster, spark::SparkConf{}, options));
  auto& plugin =
      static_cast<omptarget::CloudPlugin&>(devices.device(cloud_id));

  auto a = workload::make_matrix(
      {static_cast<size_t>(n), static_cast<size_t>(n), false, 5});
  std::vector<float> x(static_cast<size_t>(n), 1.0f);
  std::vector<float> y(static_cast<size_t>(n), 0.0f);

  RunResult result;
  for (int round = 0; round < rounds; ++round) {
    if (round > 0) {
      for (int64_t i = 0; i < mutate_rows * n; ++i) {
        a[static_cast<size_t>(i)] += 1.0f;
      }
    }
    omp::TargetRegion region(devices, "chunking-matvec");
    region.device(cloud_id);
    auto av = region.map_to("A", a.data(), a.size());
    auto xv = region.map_to("x", x.data(), x.size());
    auto yv = region.map_from("y", y.data(), y.size());
    region.parallel_for(n)
        .read_partitioned(av, omp::rows<float>(n))
        .read(xv)
        .write_partitioned(yv, omp::rows<float>(1))
        .cost_flops(2.0 * static_cast<double>(n))
        .body("matvec", [n](const jni::KernelArgs& args) {
          return MatVecBody(n, args);
        });
    OC_ASSIGN_OR_RETURN(result.report, omp::offload_blocking(engine, region));
  }
  result.cache = plugin.cache_stats();
  trace::TraceAnalyzer analyzer(devices.tracer());
  std::vector<trace::OffloadAnalysis> analyses = analyzer.analyze_all();
  if (!analyses.empty()) result.analysis = std::move(analyses.back());
  if (!trace_path.empty()) {
    OC_RETURN_IF_ERROR(trace::write_chrome_json(
        devices.tracer(), trace_path,
        "\"report\": " + result.report.to_json(2)));
  }
  return result;
}

int run(int argc, const char** argv) {
  FlagSet flags("Chunked streaming transfer pipeline ablation");
  flags.define_int("n", 448, "matrix dimension (stands for 16384)");
  if (Status parsed = flags.parse(argc, argv); !parsed.is_ok()) {
    return parsed.code() == StatusCode::kFailedPrecondition ? 0 : 1;
  }
  const int64_t n = flags.get_int("n");
  const uint64_t matrix_bytes = static_cast<uint64_t>(n) * n * sizeof(float);
  bench::BenchJson json("BENCH_offload.json");

  std::printf("Chunked staging ablation (A = %s)\n\n",
              format_bytes(matrix_bytes).c_str());

  // --- 1/2: chunk-size sweep x overlap on/off (cold uploads, no cache) ----
  std::printf("%10s %8s | %12s %12s %14s\n", "chunk", "overlap", "upload",
              "total", "wire-bytes");
  const std::vector<uint64_t> chunk_sizes = {0, 32ull << 10, 128ull << 10,
                                             512ull << 10};
  bool overlap_always_wins = true;
  for (uint64_t chunk : chunk_sizes) {
    double serial_upload = 0;
    for (bool overlap : {false, true}) {
      auto result = run_matvec(n, chunk, overlap, /*cache=*/false,
                               /*rounds=*/1, /*mutate_rows=*/0);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().to_string().c_str());
        return 1;
      }
      std::string chunk_label =
          chunk == 0 ? "single" : format_bytes(chunk);
      std::printf("%10s %8s | %12s %12s %14s\n", chunk_label.c_str(),
                  overlap ? "on" : "off",
                  format_duration(result->report.upload_seconds).c_str(),
                  format_duration(result->report.total_seconds).c_str(),
                  format_bytes(result->report.uploaded_wire_bytes).c_str());
      json.add(str_format("sweep chunk=%s overlap=%s", chunk_label.c_str(),
                          overlap ? "on" : "off"),
               result->report, nullptr,
               result->analysis ? &*result->analysis : nullptr);
      // Only buffers strictly larger than the chunk go through the block
      // pipeline; the rest stage as one frame where overlap cannot apply.
      if (chunk == 0 || matrix_bytes <= chunk) continue;
      if (!overlap) {
        serial_upload = result->report.upload_seconds;
      } else if (result->report.upload_seconds >= serial_upload) {
        overlap_always_wins = false;
      }
    }
  }
  std::printf("\noverlapped upload %s the serial pipeline for every chunked "
              "configuration\n\n",
              overlap_always_wins ? "beats" : "DOES NOT beat");

  // --- 3: block-level delta caching on an iterative re-offload -----------
  // Round 2 mutates ~10% of A's rows; with per-block hashing only the dirty
  // blocks (plus the manifest) travel again.
  const uint64_t chunk = 32ull << 10;
  const int64_t mutate_rows = n / 10;
  auto cold = run_matvec(n, chunk, true, /*cache=*/true, 1, 0);
  auto delta = run_matvec(n, chunk, true, /*cache=*/true, 2, mutate_rows,
                          "BENCH_offload.trace.json");
  if (!cold.ok() || !delta.ok()) {
    std::fprintf(stderr, "delta-cache runs failed\n");
    return 1;
  }
  uint64_t cold_wire = cold->report.uploaded_wire_bytes;
  uint64_t delta_wire = delta->report.uploaded_wire_bytes;  // last round only
  std::printf("delta cache (chunk=%s, %lld/%lld rows mutated):\n",
              format_bytes(chunk).c_str(),
              static_cast<long long>(mutate_rows), static_cast<long long>(n));
  std::printf("  cold upload  : %14s wire\n", format_bytes(cold_wire).c_str());
  std::printf("  delta upload : %14s wire (%.1f%% of cold; %llu blocks dirty, "
              "%llu clean)\n",
              format_bytes(delta_wire).c_str(),
              100.0 * static_cast<double>(delta_wire) /
                  static_cast<double>(cold_wire),
              static_cast<unsigned long long>(delta->cache.block_dirty),
              static_cast<unsigned long long>(delta->cache.block_hits));
  json.add("delta-cache cold", cold->report, &cold->cache,
           cold->analysis ? &*cold->analysis : nullptr);
  json.add("delta-cache 10pct-mutated", delta->report, &delta->cache,
           delta->analysis ? &*delta->analysis : nullptr);
  bool delta_ok = delta_wire * 5 <= cold_wire;
  std::printf("  re-offload wire bytes %s 20%% of the cold run\n\n",
              delta_ok ? "<=" : "EXCEED");

  json.flush();
  return overlap_always_wins && delta_ok ? 0 : 1;
}

}  // namespace

int main(int argc, const char** argv) { return run(argc, argv); }
