// Ablation: offload compression codec x data type x minimum-size threshold.
//
// The paper's plugin gzip-compresses buffers above a minimal size before
// upload; §IV's headline observation is that "the data type (and especially
// its compressibility) can have a huge impact on performance". This bench
// quantifies that with the three codecs on sparse and dense inputs.
#include <cstdio>

#include "bench/harness.h"
#include "support/flags.h"
#include "support/strings.h"

namespace ompcloud::bench {
namespace {

int run(int argc, const char** argv) {
  FlagSet flags("Offload-compression ablation");
  flags.define("benchmark", "gemm", "benchmark to run")
      .define_int("n", 448, "real problem dimension")
      .define_int("cores", 64, "dedicated worker cores");
  if (Status parsed = flags.parse(argc, argv); !parsed.is_ok()) {
    return parsed.code() == StatusCode::kFailedPrecondition ? 0 : 1;
  }
  const int64_t n = flags.get_int("n");

  std::printf("Ablation: offload compression (%s, n=%lld, %lld cores)\n\n",
              flags.get("benchmark").c_str(), static_cast<long long>(n),
              static_cast<long long>(flags.get_int("cores")));
  std::printf("%7s %9s | %11s %9s | %10s %12s %12s\n", "data", "codec",
              "wire-bytes", "ratio", "upload", "host-target", "total");

  for (bool sparse : {true, false}) {
    for (const char* codec : {"null", "rle", "gzlite"}) {
      CloudRunConfig config;
      config.benchmark = flags.get("benchmark");
      config.n = n;
      config.sparse = sparse;
      config.dedicated_cores = static_cast<int>(flags.get_int("cores"));
      config.plugin.codec = codec;
      // Spark-side compression uses the same codec for a fair sweep.
      config.spark.io_codec = codec;
      if (std::string(codec) == "null") config.spark.io_compression = false;
      auto run = run_on_cloud(config);
      if (!run.ok()) {
        std::fprintf(stderr, "%s\n", run.status().to_string().c_str());
        return 1;
      }
      const auto& report = run->report;
      double ratio = report.uploaded_wire_bytes
                         ? static_cast<double>(report.uploaded_plain_bytes) /
                               static_cast<double>(report.uploaded_wire_bytes)
                         : 0;
      std::printf("%7s %9s | %11s %8.2fx | %10s %12s %12s\n",
                  sparse ? "sparse" : "dense", codec,
                  format_bytes(report.uploaded_wire_bytes).c_str(), ratio,
                  format_duration(report.upload_seconds).c_str(),
                  format_duration(report.host_target_seconds()).c_str(),
                  format_duration(report.total_seconds).c_str());
    }
  }
  std::printf(
      "\nsparse data compresses ~an order of magnitude better, cutting the\n"
      "host-target bar of Fig. 5; on dense data the codec barely matters.\n");
  return 0;
}

}  // namespace
}  // namespace ompcloud::bench

int main(int argc, const char** argv) { return ompcloud::bench::run(argc, argv); }
