// Ablation: elastic autoscaling vs. a static fleet.
//
// An open-loop stream of target regions arrives at fixed intervals (two
// tenants, interleaved). Three cluster configurations serve it:
//
//   static-16   the paper's setup: 16 workers provisioned for the whole
//               run, FIFO admission.
//   elastic     autoscaler (min 2 / max 16 workers, 4 per active offload)
//               with FAIR weighted admission; workers boot on demand and
//               are reaped after an idle cooldown.
//   elastic+spot  the same, with periodic spot-style preemptions feeding
//               the task-retry fault-tolerance path.
//
// The question §III-A's cost model raises: does scaling the fleet with
// admission pressure actually cut the bill without losing throughput?
// Results land in BENCH_elastic.json for the CI regression gate.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/harness.h"
#include "cloud/autoscaler.h"
#include "omp/target_region.h"
#include "omptarget/scheduler.h"
#include "support/flags.h"
#include "support/strings.h"
#include "trace/export.h"
#include "workload/generators.h"

using namespace ompcloud;

namespace {

Status MatVecBody(int64_t n, const jni::KernelArgs& args) {
  auto a = args.input<float>(0);
  auto x = args.input<float>(1);
  auto y = args.output<float>(0);
  for (int64_t i = args.begin; i < args.end; ++i) {
    float acc = 0.0f;
    for (int64_t k = 0; k < n; ++k) acc += a[i * n + k] * x[k];
    y[i] = acc;
  }
  return Status::ok();
}

struct ModeConfig {
  std::string label;
  bool elastic = false;
  double spot_interval = 0;  ///< 0 = no preemptions
};

struct Outcome {
  bool ok = false;
  double done = 0;  ///< absolute completion time (virtual seconds)
  double boot = 0;
  int retries = 0;
};

/// One arriving region: sleeps until its arrival time, offloads one matvec
/// (64 tiles — one wave on 4 workers, so per-offload latency does not
/// depend on fleet size beyond that), records when it finished.
sim::Co<void> offload_one(sim::Engine* engine, omptarget::DeviceManager* devices,
                          int device_id, int index, double arrival,
                          std::string tenant, int64_t n, std::vector<float>* a,
                          std::vector<float>* x, Outcome* out) {
  co_await engine->sleep(arrival);
  omp::TargetRegion region(*devices, str_format("elastic[%d]", index));
  region.device(device_id);
  region.tenant(std::move(tenant));
  auto av = region.map_to("A", a->data(), a->size());
  auto xv = region.map_to("x", x->data(), x->size());
  std::vector<float> y(static_cast<size_t>(n), 0.0f);
  auto yv = region.map_from("y", y.data(), y.size());
  region.parallel_for(n)
      .read_partitioned(av, omp::rows<float>(n))
      .read(xv)
      .write_partitioned(yv, omp::rows<float>(1))
      // Heavier than a plain matvec (stands for a few fused passes over
      // A): gives each of the 64 tasks a visible compute phase, so fleet
      // utilization is non-trivial in both configurations.
      .cost_flops(80.0 * static_cast<double>(n))
      .tiles(64)
      .body("matvec",
            [n](const jni::KernelArgs& args) { return MatVecBody(n, args); });
  auto result = co_await region.execute();
  out->done = engine->now();
  if (result.ok()) {
    out->ok = true;
    out->boot = result->boot_seconds;
    out->retries = result->job.task_retries;
  }
}

struct ModeResult {
  int completed = 0;
  double makespan = 0;
  double throughput_per_hour = 0;
  double cost_usd = 0;
  double instance_seconds = 0;
  int task_retries = 0;
  trace::ClusterScalingAnalysis fleet;
};

Result<ModeResult> run_mode(const ModeConfig& mode, int offloads, double gap,
                            int64_t n, const std::string& trace_path) {
  sim::Engine engine;
  cloud::ClusterSpec spec;
  spec.workers = 16;
  // Half the paper's virtual scale: each region moves ~256 MB and runs
  // ~20 s, so the arrival stream (one per minute) leaves the fleet idle
  // most of the time — the regime where elasticity should pay.
  cloud::Cluster cluster(engine, spec,
                         cloud::SimProfile::paper_scale(n, 8192));
  omptarget::DeviceManager devices(engine);
  int cloud_id = devices.register_device(std::make_unique<omptarget::CloudPlugin>(
      cluster, spark::SparkConf{}, omptarget::CloudPluginOptions{}));

  omptarget::SchedulerOptions sched;
  sched.mode = mode.elastic ? omptarget::SchedulerOptions::Mode::kFair
                            : omptarget::SchedulerOptions::Mode::kFifo;
  sched.tenant_weights.emplace_back("interactive", 3.0);
  omptarget::OffloadScheduler& scheduler = devices.configure_scheduler(sched);

  if (mode.elastic) {
    cloud::AutoscalerOptions autoscale;
    autoscale.enabled = true;
    autoscale.min_workers = 2;
    autoscale.max_workers = 16;
    autoscale.workers_per_offload = 4;
    autoscale.idle_cooldown = 150.0;
    autoscale.spot_interval = mode.spot_interval;
    cloud::Autoscaler& autoscaler = cluster.enable_autoscaler(autoscale);
    scheduler.set_demand_listener(
        [&autoscaler](int queued, int /*active*/) {
          autoscaler.set_queued_offloads(queued);
        });
  }

  // Every offload ships a distinct matrix, so uploads are cold (no delta
  // cache shortcut) and the WAN stays the per-offload bottleneck.
  std::vector<std::vector<float>> matrices;
  std::vector<float> x(static_cast<size_t>(n), 1.0f);
  for (int i = 0; i < offloads; ++i) {
    matrices.push_back(workload::make_matrix(
        {static_cast<size_t>(n), static_cast<size_t>(n), false,
         static_cast<uint64_t>(100 + i)}));
  }
  std::vector<Outcome> outcomes(static_cast<size_t>(offloads));
  for (int i = 0; i < offloads; ++i) {
    engine.spawn(offload_one(&engine, &devices, cloud_id, i, i * gap,
                             i % 2 == 0 ? "batch" : "interactive", n,
                             &matrices[static_cast<size_t>(i)], &x,
                             &outcomes[static_cast<size_t>(i)]));
  }
  engine.run();
  // No shutdown: CostMeter::accrued_usd bills still-running instances
  // pro-rata to the last event, so the static fleet is charged through the
  // final completion and the elastic floor through its last reap — exactly
  // the window each configuration actually held instances.

  ModeResult result;
  for (const Outcome& outcome : outcomes) {
    if (!outcome.ok) continue;
    result.completed += 1;
    result.makespan = std::max(result.makespan, outcome.done);
    result.task_retries += outcome.retries;
  }
  if (result.makespan > 0) {
    result.throughput_per_hour = result.completed / result.makespan * 3600.0;
  }
  result.cost_usd = cluster.cost().accrued_usd();
  result.instance_seconds = cluster.cost().instance_seconds();
  result.fleet = trace::TraceAnalyzer(devices.tracer()).analyze_cluster();
  if (!trace_path.empty()) {
    OC_RETURN_IF_ERROR(trace::write_chrome_json(
        devices.tracer(), trace_path,
        "\"cluster\": " + result.fleet.to_json(2)));
  }
  return result;
}

std::string mode_json(const std::string& label, int offloads,
                      const ModeResult& result) {
  return str_format(
      "{\"label\": \"%s\", \"offloads\": %d, \"completed\": %d, "
      "\"makespan_seconds\": %.9g, \"throughput_per_hour\": %.9g, "
      "\"cost_usd\": %.9g, \"instance_seconds\": %.9g, "
      "\"peak_workers\": %.9g, \"avg_workers\": %.9g, "
      "\"utilization\": %.9g, \"scale_ups\": %llu, \"scale_downs\": %llu, "
      "\"preemptions\": %llu, \"task_retries\": %d}",
      label.c_str(), offloads, result.completed, result.makespan,
      result.throughput_per_hour, result.cost_usd, result.instance_seconds,
      result.fleet.peak_workers, result.fleet.avg_workers,
      result.fleet.utilization,
      static_cast<unsigned long long>(result.fleet.scale_ups),
      static_cast<unsigned long long>(result.fleet.scale_downs),
      static_cast<unsigned long long>(result.fleet.preemptions),
      result.task_retries);
}

int run(int argc, const char** argv) {
  FlagSet flags("Elastic autoscaling vs. static fleet ablation");
  flags.define_int("n", 256, "matrix dimension (stands for 16384)");
  flags.define_int("offloads", 8, "regions in the arrival stream");
  flags.define_int("gap", 60, "seconds between arrivals (virtual)");
  if (Status parsed = flags.parse(argc, argv); !parsed.is_ok()) {
    return parsed.code() == StatusCode::kFailedPrecondition ? 0 : 1;
  }
  const int64_t n = flags.get_int("n");
  const int offloads = static_cast<int>(flags.get_int("offloads"));
  const double gap = static_cast<double>(flags.get_int("gap"));

  const std::vector<ModeConfig> modes = {
      {"static-16", false, 0},
      {"elastic", true, 0},
      {"elastic+spot", true, 75.0},
  };

  std::printf("Elastic autoscaling ablation (%d offloads, one every %.0f s)\n\n",
              offloads, gap);
  std::printf("%14s | %6s %12s %10s %10s %8s %8s %6s %6s\n", "mode", "done",
              "makespan", "offl/h", "cost", "inst-s", "peak-w", "util",
              "retry");

  std::vector<ModeResult> results;
  std::vector<std::string> records;
  for (const ModeConfig& mode : modes) {
    auto result = run_mode(mode, offloads, gap, n,
                           mode.label == "elastic"
                               ? "BENCH_elastic.trace.json"
                               : std::string());
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", mode.label.c_str(),
                   result.status().to_string().c_str());
      return 1;
    }
    std::printf("%14s | %3d/%-2d %12s %10.2f %9s$ %8.0f %8.3g %5.1f%% %6d\n",
                mode.label.c_str(), result->completed, offloads,
                format_duration(result->makespan).c_str(),
                result->throughput_per_hour,
                str_format("%.4f", result->cost_usd).c_str(),
                result->instance_seconds, result->fleet.peak_workers,
                result->fleet.utilization * 100.0, result->task_retries);
    records.push_back(mode_json(mode.label, offloads, *result));
    results.push_back(std::move(*result));
  }

  const ModeResult& st = results[0];
  const ModeResult& el = results[1];
  const ModeResult& spot = results[2];
  bool all_completed = st.completed == offloads && el.completed == offloads &&
                       spot.completed == offloads;
  bool cheaper = el.cost_usd < st.cost_usd;
  // "Equal or better" with a 1% grace for the boot ramp of the very first
  // arrivals (the steady-state fleet serves later arrivals at full speed).
  bool throughput_held = el.throughput_per_hour >= 0.99 * st.throughput_per_hour;
  // Retries depend on a preemption landing inside a task-launch window;
  // the unit tests pin that timing down. Here the bar is survival: spot
  // reclamations happened and every offload still completed.
  bool spot_survived = spot.fleet.preemptions > 0;

  std::printf("\nelastic fleet: avg %.2f workers (static %.0f), %llu scale-ups"
              ", %llu scale-downs — %.1f%% of static worker-seconds avoided\n",
              el.fleet.avg_workers, st.fleet.peak_workers,
              static_cast<unsigned long long>(el.fleet.scale_ups),
              static_cast<unsigned long long>(el.fleet.scale_downs),
              el.fleet.scaling_savings * 100.0);
  std::printf("elastic %s static on $-cost ($%.4f vs $%.4f) at %s throughput "
              "(%.2f vs %.2f offloads/h)\n",
              cheaper ? "beats" : "DOES NOT beat", el.cost_usd, st.cost_usd,
              throughput_held ? "held" : "DEGRADED", el.throughput_per_hour,
              st.throughput_per_hour);
  std::printf("spot preemptions: %llu reclaimed, %d task retries, %d/%d "
              "offloads still correct\n",
              static_cast<unsigned long long>(spot.fleet.preemptions),
              spot.task_retries, spot.completed, offloads);

  std::string json = "[\n";
  for (size_t i = 0; i < records.size(); ++i) {
    json += "  " + records[i] + (i + 1 < records.size() ? ",\n" : "\n");
  }
  json += "]\n";
  if (FILE* out = std::fopen("BENCH_elastic.json", "w")) {
    std::fputs(json.c_str(), out);
    std::fclose(out);
    std::printf("\nwrote BENCH_elastic.json (%zu records)\n", records.size());
  } else {
    std::fprintf(stderr, "cannot write BENCH_elastic.json\n");
    return 1;
  }
  return all_completed && cheaper && throughput_held && spot_survived ? 0 : 1;
}

}  // namespace

int main(int argc, const char** argv) { return run(argc, argv); }
