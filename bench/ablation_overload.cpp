// Ablation: the overload-resilient control plane vs naive retries — a
// metastable-failure demonstration.
//
// An open-loop stream of small inference-style requests arrives through the
// service layer at a fixed rate (well under fair-weather capacity). At
// t = kIncidentStart a scheduled `storage.transient` outage window removes
// storage capacity for kIncidentSeconds; a low `net.stall` rate adds gray
// straggler transfers throughout. Two control-plane configurations serve
// the identical stream:
//
//   naive       overload controls off, generous retry knobs. During the
//               outage every in-flight job burns its slot on retries and
//               resubmissions while arrivals pile up behind it; after
//               capacity returns the scheduler keeps servicing the stale
//               backlog, so fresh arrivals stay late long after the
//               incident — the classic metastable collapse sustained by
//               the retry storm itself.
//   budgeted    [overload] on: retry budgets make exhausted work fail
//               fast, the adaptive limiter clamps in-flight concurrency,
//               brownout shedding drops work that has already outstayed
//               the CoDel delay target, and hedged transfers cover the
//               stalls. Recovery is bounded: goodput returns to the
//               pre-incident rate within seconds of the window closing.
//
// A third, fault-free pass asserts the zero-cost contract: a run with every
// [overload] tuning knob present but `enabled = false` must be virtual-time
// identical to a run that never mentions the section at all.
//
// Results land in BENCH_overload.json. The CI regression gate tracks the
// completed counts; jq asserts recovery stays bounded, budgeted
// post-incident goodput is >= 2x naive, and the zero-cost pass holds.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/harness.h"
#include "omp/target_region.h"
#include "omptarget/service.h"
#include "support/config.h"
#include "support/flags.h"
#include "support/strings.h"

using namespace ompcloud;

namespace {

constexpr int64_t kRows = 64;  ///< outputs per request
constexpr int64_t kK = 256;    ///< reduction depth (weights length)
/// Modeled cost per output row. Deliberately heavy: one request is ~42
/// GFLOP, ~0.2 s/task on the cluster but ~3.5 s on the 4-core host — the
/// stream was offloaded precisely because the host cannot absorb it, so
/// host-fallback "help" during an incident congests the scheduler instead
/// of hiding the overload.
constexpr double kFlopsPerRow = 6.5e8;

constexpr double kIncidentStart = 10.0;
constexpr double kIncidentSeconds = 8.0;
constexpr double kIncidentEnd = kIncidentStart + kIncidentSeconds;
/// A request is "timely" (counts toward goodput) when its latency stays
/// under this bound — generous against the fair-weather p99.
constexpr double kTimelySeconds = 3.5;
/// Goodput measurement windows (seconds).
constexpr double kPreWindow = 8.0;
constexpr double kPostWindow = 10.0;

Status OverloadKernel(const jni::KernelArgs& args) {
  auto x = args.input<float>(0);
  auto w = args.input<float>(1);
  auto y = args.output<float>(0);
  for (int64_t i = args.begin; i < args.end; ++i) {
    float acc = 0.0f;
    for (int64_t k = 0; k < kK; ++k) acc += w[k] * x[i * kK + k];
    y[i] = acc;
  }
  return Status::ok();
}

const jni::KernelRegistrar kOverloadReg("bench.overload", OverloadKernel);

struct Request {
  std::vector<float> x;
  std::vector<float> y;
  double arrival = 0;
  double done = -1;  ///< completion (virtual seconds); -1 = failed/shed
  bool degraded = false;
  std::string fail;  ///< status string when the submit failed
};

sim::Co<void> run_request(sim::Engine* engine,
                          omptarget::DeviceManager* devices, Session session,
                          int device_id, int index,
                          std::vector<float>* weights, Request* request) {
  co_await engine->sleep(request->arrival);
  omp::TargetRegion region(*devices, str_format("req[%d]", index));
  region.device(device_id);
  auto xv = region.map_to("x", request->x.data(), request->x.size());
  auto wv = region.map_to("w", weights->data(), weights->size());
  auto yv = region.map_from("y", request->y.data(), request->y.size());
  region.parallel_for(kRows)
      .read_partitioned(xv, omp::rows<float>(kK))
      .read(wv)
      .write_partitioned(yv, omp::rows<float>(1))
      .cost_flops(kFlopsPerRow)
      .kernel("bench.overload");
  auto lowered = region.lower();
  if (!lowered.ok()) co_return;
  omptarget::SubmitOptions options;
  options.device_id = device_id;
  auto result = co_await session.submit(std::move(*lowered), options);
  if (result.ok()) {
    request->done = engine->now();
    request->degraded = result->degraded;
  } else {
    request->fail = result.status().to_string();
  }
}

/// Shared chassis: cluster + retry knobs generous enough to sustain a
/// retry storm. `extra` appends the per-mode [overload]/[fault] sections.
std::string mode_config(const std::string& extra) {
  return std::string(R"(
[cluster]
provider = ec2
instance-type = c3.4xlarge
workers = 8
[offload]
bucket = overload
storage-retries = 10
retry-backoff = 100ms
retry-backoff-cap = 2s
job-retries = 3
[scheduler]
max-concurrent = 8
)") + extra;
}

std::string fault_section() {
  // No host fallback in the incident runs: the stream was offloaded
  // because the host cannot absorb it, so the breaker's escape hatch is
  // off and the control plane must survive on its own.
  return str_format(R"(
[device]
fallback-on-failure = false
breaker-threshold = 0
[fault]
enabled = true
seed = 9
net.stall-rate = 0.004
net.stall-seconds = 1.0
schedule = %.0f storage.transient %.0f
)",
                    kIncidentStart, kIncidentSeconds);
}

struct ModeStats {
  int completed = 0;
  int timely = 0;
  int degraded = 0;
  double p99 = 0;
  double makespan = 0;
  double goodput_pre = 0;   ///< timely completions/s before the incident
  double goodput_post = 0;  ///< timely completions/s just after it
  double recovery_seconds = 0;  ///< incident end -> goodput restored
  uint64_t shed = 0;
  uint64_t budget_exhausted = 0;
  uint64_t hedges = 0;
  uint64_t hedges_won = 0;
  uint64_t brownouts = 0;
  uint64_t faults = 0;
  std::vector<double> done_times;  ///< per request; -1 = failed/shed
};

double quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  size_t index =
      static_cast<size_t>(q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

/// Timely completions/s inside [begin, begin + width).
double rate_in(const std::vector<Request>& stream, double begin, double width) {
  int timely = 0;
  for (const Request& request : stream) {
    if (request.done < 0 || request.done < begin ||
        request.done >= begin + width) {
      continue;
    }
    if (request.done - request.arrival <= kTimelySeconds) timely += 1;
  }
  return width > 0 ? timely / width : 0.0;
}

Result<ModeStats> run_mode(const std::string& config_text, int requests,
                           double gap) {
  sim::Engine engine;
  auto config = Config::parse(config_text);
  if (!config.ok()) return config.status();
  auto plugin = omptarget::CloudPlugin::from_config(engine, *config);
  if (!plugin.ok()) return plugin.status();
  cloud::Cluster& cluster = (*plugin)->cluster();
  omptarget::DeviceManager devices(engine);
  devices.configure(omptarget::DeviceManagerOptions::from_config(*config));
  int cloud_id = devices.register_device(std::move(*plugin));
  auto service_options = ServiceOptions::from_config(*config);
  if (!service_options.ok()) return service_options.status();
  service_options->default_device = cloud_id;
  Service service(devices, *service_options);

  std::vector<float> weights(static_cast<size_t>(kK));
  for (size_t k = 0; k < weights.size(); ++k) {
    weights[k] = static_cast<float>((k * 13 + 5) % 17) * 0.0625f;
  }
  std::vector<Request> stream(static_cast<size_t>(requests));
  const char* tenants[] = {"teamA", "teamB", "teamC", "teamD"};
  for (int i = 0; i < requests; ++i) {
    Request& request = stream[static_cast<size_t>(i)];
    request.arrival = i * gap;
    request.x.resize(static_cast<size_t>(kRows * kK));
    for (size_t j = 0; j < request.x.size(); ++j) {
      request.x[j] = static_cast<float>((j + static_cast<size_t>(i) * 31) % 23);
    }
    request.y.assign(static_cast<size_t>(kRows), 0.0f);
    Session session = service.session(tenants[i % 4]);
    engine.spawn(run_request(&engine, &devices, session, cloud_id, i, &weights,
                             &request));
  }
  engine.run();

  ModeStats stats;
  std::vector<double> latencies;
  for (const Request& request : stream) {
    stats.done_times.push_back(request.done);
    if (request.done < 0) continue;
    stats.completed += 1;
    if (request.degraded) stats.degraded += 1;
    const double latency = request.done - request.arrival;
    latencies.push_back(latency);
    if (latency <= kTimelySeconds) stats.timely += 1;
    stats.makespan = std::max(stats.makespan, request.done);
  }
  std::sort(latencies.begin(), latencies.end());
  stats.p99 = quantile(latencies, 0.99);
  stats.goodput_pre =
      rate_in(stream, kIncidentStart - kPreWindow, kPreWindow);
  stats.goodput_post = rate_in(stream, kIncidentEnd, kPostWindow);
  // Recovery: the first instant after the incident where a trailing
  // 5-second window sustains >= 70% of the pre-incident goodput.
  stats.recovery_seconds = std::max(0.0, stats.makespan - kIncidentEnd);
  constexpr double kProbe = 5.0;
  for (double t = kIncidentEnd; t + kProbe <= stats.makespan + kProbe;
       t += 1.0) {
    if (rate_in(stream, t, kProbe) >= 0.7 * stats.goodput_pre) {
      stats.recovery_seconds = t - kIncidentEnd;
      break;
    }
  }
  std::map<std::string, int> failures;
  for (const Request& request : stream) {
    if (request.done < 0 && !request.fail.empty()) {
      failures[request.fail.substr(0, 72)] += 1;
    }
  }
  for (const auto& [reason, count] : failures) {
    std::fprintf(stderr, "  [fail x%d] %s\n", count, reason.c_str());
  }
  const trace::Metrics& metrics = devices.tracer().metrics();
  stats.shed = metrics.counter_value("shed.count");
  stats.budget_exhausted = metrics.counter_value("retry_budget.exhausted");
  stats.hedges = metrics.counter_value("hedge.launched");
  stats.hedges_won = metrics.counter_value("hedge.won");
  stats.brownouts = metrics.counter_value("overload.brownouts");
  if (cluster.fault_injector() != nullptr) {
    stats.faults = cluster.fault_injector()->total_injected();
  }
  return stats;
}

std::string mode_json(const std::string& label, int requests,
                      const ModeStats& stats) {
  return str_format(
      "{\"label\": \"%s\", \"requests\": %d, \"completed\": %d, "
      "\"timely\": %d, \"degraded\": %d, \"p99_seconds\": %.9g, "
      "\"goodput_pre_per_sec\": %.9g, \"goodput_post_per_sec\": %.9g, "
      "\"recovery_seconds\": %.9g, \"shed\": %llu, "
      "\"budget_exhausted\": %llu, \"hedges_launched\": %llu, "
      "\"hedges_won\": %llu, \"brownouts\": %llu}",
      label.c_str(), requests, stats.completed, stats.timely, stats.degraded,
      stats.p99, stats.goodput_pre, stats.goodput_post,
      stats.recovery_seconds, static_cast<unsigned long long>(stats.shed),
      static_cast<unsigned long long>(stats.budget_exhausted),
      static_cast<unsigned long long>(stats.hedges),
      static_cast<unsigned long long>(stats.hedges_won),
      static_cast<unsigned long long>(stats.brownouts));
}

int run(int argc, const char** argv) {
  FlagSet flags("Overload control-plane ablation (metastable failure)");
  flags.define_int("gap-ms", 300, "milliseconds between arrivals (virtual)");
  flags.define_int("requests", 300, "arrivals in the open-loop stream");
  if (Status parsed = flags.parse(argc, argv); !parsed.is_ok()) {
    return parsed.code() == StatusCode::kFailedPrecondition ? 0 : 1;
  }
  const double gap = static_cast<double>(flags.get_int("gap-ms")) / 1000.0;
  const int requests = static_cast<int>(flags.get_int("requests"));

  std::printf(
      "Overload ablation: %d arrivals every %.0f ms, storage outage "
      "t=[%.0f, %.0f)s\n\n",
      requests, gap * 1000.0, kIncidentStart, kIncidentEnd);

  auto naive = run_mode(mode_config(fault_section()), requests, gap);
  if (!naive.ok()) {
    std::fprintf(stderr, "%s\n", naive.status().to_string().c_str());
    return 1;
  }
  const std::string overload_section = R"(
[overload]
enabled = true
retry-budget-ratio = 0.1
retry-budget-initial = 5
retry-budget-cap = 20
limit-min = 4
limit-max = 8
codel-target = 500ms
codel-interval = 500ms
hedge-quantile = 0.95
hedge-min-samples = 16
)";
  auto budgeted =
      run_mode(mode_config(overload_section + fault_section()), requests, gap);
  if (!budgeted.ok()) {
    std::fprintf(stderr, "%s\n", budgeted.status().to_string().c_str());
    return 1;
  }

  auto print_mode = [](const char* label, const ModeStats& stats) {
    std::printf(
        "%9s | %4d done (%4d timely, %3d degraded)  p99 %8.3fs  goodput "
        "%.2f -> %.2f /s  recovery %6.1fs\n",
        label, stats.completed, stats.timely, stats.degraded, stats.p99,
        stats.goodput_pre, stats.goodput_post, stats.recovery_seconds);
  };
  print_mode("naive", *naive);
  print_mode("budgeted", *budgeted);
  // Timely-goodput timeline (5 s buckets) — the collapse-and-recovery
  // shape at a glance; '*' marks buckets overlapping the outage window.
  auto print_timeline = [&](const char* label, const ModeStats& stats) {
    std::printf("%9s |", label);
    for (double t = 0; t < stats.makespan; t += 5.0) {
      int timely = 0;
      for (size_t i = 0; i < stats.done_times.size(); ++i) {
        const double done = stats.done_times[i];
        const double arrival = static_cast<double>(i) * gap;
        if (done >= t && done < t + 5.0 && done - arrival <= kTimelySeconds) {
          timely += 1;
        }
      }
      std::printf(" %4.1f%s", timely / 5.0,
                  t < kIncidentEnd && t + 5.0 > kIncidentStart ? "*" : " ");
    }
    std::printf("\n");
  };
  print_timeline("naive", *naive);
  print_timeline("budgeted", *budgeted);
  std::printf(
        "%9s | shed %llu, budget-exhausted %llu, hedges %llu (%llu won), "
        "brownouts %llu\n",
        "controls", static_cast<unsigned long long>(budgeted->shed),
        static_cast<unsigned long long>(budgeted->budget_exhausted),
        static_cast<unsigned long long>(budgeted->hedges),
        static_cast<unsigned long long>(budgeted->hedges_won),
        static_cast<unsigned long long>(budgeted->brownouts));

  // Zero-cost contract: fault-free, [overload] knobs present but disabled
  // must be indistinguishable — in virtual time, request by request — from
  // a config that never mentions the section.
  const std::string disabled_section = R"(
[overload]
enabled = false
retry-budget-ratio = 0.2
retry-budget-initial = 9
retry-budget-cap = 50
limit-min = 1
limit-max = 4
codel-target = 1s
codel-interval = 250ms
hedge-quantile = 0.9
hedge-min-samples = 8
)";
  auto vanilla = run_mode(mode_config(""), requests, gap);
  auto disabled = run_mode(mode_config(disabled_section), requests, gap);
  if (!vanilla.ok() || !disabled.ok()) {
    std::fprintf(stderr, "zero-cost runs failed\n");
    return 1;
  }
  const bool identical = vanilla->done_times == disabled->done_times;
  std::printf(
      "%9s | %d done fault-free (%d timely, p99 %.3fs, makespan %.1fs), "
      "disabled-knobs run %s the vanilla run\n",
      "zerocost", vanilla->completed, vanilla->timely, vanilla->p99,
      vanilla->makespan, identical ? "matches" : "DIVERGES from");

  const bool faults_fired = naive->faults > 0 && budgeted->faults > 0;
  const bool collapse_shown =
      naive->recovery_seconds > 2.0 * budgeted->recovery_seconds;
  const bool recovery_bounded = budgeted->recovery_seconds <= 10.0;
  const bool goodput_win =
      budgeted->goodput_post >= 2.0 * naive->goodput_post &&
      budgeted->goodput_post > 0;
  const bool controls_exercised = budgeted->shed > 0 &&
                                  budgeted->budget_exhausted > 0 &&
                                  budgeted->hedges > 0 &&
                                  budgeted->brownouts > 0;
  std::printf(
      "\nverdict: faults %s, collapse %s, recovery %s, goodput %s, "
      "controls %s, zero-cost %s\n",
      faults_fired ? "fired" : "MISSING",
      collapse_shown ? "demonstrated" : "NOT SHOWN",
      recovery_bounded ? "bounded" : "UNBOUNDED",
      goodput_win ? ">=2x naive" : "BELOW 2x",
      controls_exercised ? "exercised" : "IDLE",
      identical ? "holds" : "VIOLATED");

  std::vector<std::string> records;
  records.push_back(mode_json("naive", requests, *naive));
  records.push_back(mode_json("budgeted", requests, *budgeted));
  records.push_back(str_format(
      "{\"label\": \"zerocost\", \"requests\": %d, \"completed\": %d, "
      "\"identical\": %d}",
      requests, vanilla->completed, identical ? 1 : 0));
  std::string json = "[\n";
  for (size_t i = 0; i < records.size(); ++i) {
    json += "  " + records[i] + (i + 1 < records.size() ? ",\n" : "\n");
  }
  json += "]\n";
  if (FILE* out = std::fopen("BENCH_overload.json", "w")) {
    std::fputs(json.c_str(), out);
    std::fclose(out);
    std::printf("wrote BENCH_overload.json (%zu records)\n", records.size());
  } else {
    std::fprintf(stderr, "cannot write BENCH_overload.json\n");
    return 1;
  }
  return faults_fired && collapse_shown && recovery_bounded && goodput_win &&
                 controls_exercised && identical
             ? 0
             : 1;
}

}  // namespace

int main(int argc, const char** argv) { return run(argc, argv); }
