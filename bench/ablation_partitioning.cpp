// Ablation: the OpenMP data-partitioning extension (paper §III-B,
// Listing 2).
//
// Three variants of the same matrix multiplication C = A x B:
//   listing2   A partitioned by rows, B broadcast, C rows partitioned
//              (what the paper's `target data map(to: A[i*N:(i+1)*N])` buys)
//   no-input   A broadcast like B (no input partitioning hint)
//   no-output  additionally, C unpartitioned: every task returns a
//              full-size partial and the driver bitwise-ors them (Eq. 8)
// Shows why the extension exists: without it, broadcast volume and
// reconstruct traffic balloon.
#include <cstdio>

#include "bench/harness.h"
#include "omptarget/cloud_plugin.h"
#include "support/flags.h"
#include "support/strings.h"
#include "workload/generators.h"

namespace ompcloud::bench {
namespace {

Status MatmulBody(int64_t n, const jni::KernelArgs& args) {
  auto a = args.input<float>(0);
  auto b = args.input<float>(1);
  auto c = args.output<float>(0);
  for (int64_t i = args.begin; i < args.end; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t k = 0; k < n; ++k) acc += a[i * n + k] * b[k * n + j];
      c[i * n + j] = acc;
    }
  }
  return Status::ok();
}

int run(int argc, const char** argv) {
  FlagSet flags("Data-partitioning extension ablation (matmul variants)");
  flags.define_int("n", 384, "real problem dimension")
      .define_int("cores", 64, "dedicated worker cores");
  if (Status parsed = flags.parse(argc, argv); !parsed.is_ok()) {
    return parsed.code() == StatusCode::kFailedPrecondition ? 0 : 1;
  }
  const int64_t n = flags.get_int("n");
  const int cores = static_cast<int>(flags.get_int("cores"));

  std::printf(
      "Ablation: Listing-2 data partitioning (matmul, n=%lld, %d cores)\n\n",
      static_cast<long long>(n), cores);
  std::printf("%10s | %14s %14s %12s %12s\n", "variant", "intra-cluster",
              "distribute", "map+collect", "job-time");

  workload::MatrixSpec spec{static_cast<size_t>(n), static_cast<size_t>(n),
                            false, 97};
  for (const char* variant : {"listing2", "no-input", "no-output"}) {
    auto a = workload::make_matrix(spec);
    spec.seed = 98;
    auto b = workload::make_matrix(spec);
    std::vector<float> c(static_cast<size_t>(n) * n, 0.0f);

    sim::Engine engine;
    cloud::ClusterSpec cluster_spec;
    cluster_spec.workers = 16;
    cloud::Cluster cluster(engine, cluster_spec,
                           cloud::SimProfile::paper_scale(n));
    spark::SparkConf conf;
    conf.with_dedicated_cores(cores);
    omptarget::DeviceManager devices(engine);
    int cloud_id = devices.register_device(
        std::make_unique<omptarget::CloudPlugin>(
            cluster, conf, omptarget::CloudPluginOptions{}));

    omp::TargetRegion region(devices, std::string("partition-") + variant);
    region.device(cloud_id);
    auto av = region.map_to("A", a.data(), a.size());
    auto bv = region.map_to("B", b.data(), b.size());
    auto cv = region.map_from("C", c.data(), c.size());
    auto loop = region.parallel_for(n);
    std::string name = variant;
    if (name == "listing2") {
      loop.read_partitioned(av, omp::rows<float>(n));
    } else {
      loop.read(av);  // full broadcast, no Listing-2 hint
    }
    loop.read(bv);
    if (name == "no-output") {
      loop.write_shared(cv);  // Eq. 8: full-size partials, bitwise-or
    } else {
      loop.write_partitioned(cv, omp::rows<float>(n));
    }
    loop.cost_flops(2.0 * static_cast<double>(n) * n)
        .body("matmul", [n](const jni::KernelArgs& args) {
          return MatmulBody(n, args);
        });

    auto report = omp::offload_blocking(engine, region);
    if (!report.ok()) {
      std::fprintf(stderr, "%s: %s\n", variant,
                   report.status().to_string().c_str());
      return 1;
    }
    std::printf("%10s | %14s %14s %12s %12s\n", variant,
                format_bytes(report->job.intra_cluster_bytes).c_str(),
                format_duration(report->job.distribute_seconds).c_str(),
                format_duration(report->job.map_collect_seconds).c_str(),
                format_duration(report->job.job_seconds).c_str());
  }
  std::printf(
      "\nwithout the partitioning extension every worker receives the full\n"
      "input (BitTorrent softens it) and, without partitioned outputs, every\n"
      "task ships a full-size partial back for bitwise-or reconstruction.\n");
  return 0;
}

}  // namespace
}  // namespace ompcloud::bench

int main(int argc, const char** argv) { return ompcloud::bench::run(argc, argv); }
