// Ablation: cloud-resident data environments on chained kernels.
//
// The paper's workloads round-trip every mapped buffer through the host per
// target region; §V names "data caching in the cloud" as the missing
// optimization. This ablation measures what the `target data`-style
// DataEnvironment (omptarget/data_env.h) buys on the canonical chained
// workloads, 2MM and 3MM, iterated L times:
//
//   round-trip: each link uploads its inputs and downloads its output.
//               Transfer bytes grow linearly with the chain length (the
//               block-level delta cache still dedups the *unchanged*
//               operand matrices, so this is the strongest baseline).
//   resident:   links run inside one DataEnvironment. Link k+1 consumes
//               link k's cloud-side output object directly; the host copy
//               materializes once, at environment exit. Transfer bytes are
//               ~constant in the chain length.
//
// Acceptance (exit code): the 3MM resident chain-8 run moves no more than
// 1.25x the transfer bytes of chain-1, resident beats round-trip at chain
// 8, and both modes produce byte-identical final states.
//
// Results land in BENCH_resident.json; the 3MM resident chain-8 span tree
// is exported to BENCH_resident.trace.json for `octrace summary`.
#include <cstdio>
#include <cstring>
#include <optional>

#include "bench/harness.h"
#include "omp/target_region.h"
#include "omptarget/data_env.h"
#include "support/flags.h"
#include "support/strings.h"
#include "trace/export.h"
#include "workload/generators.h"

using namespace ompcloud;

namespace {

jni::LoopBodyFn matmul_body(int64_t n) {
  return [n](const jni::KernelArgs& args) {
    auto x = args.input<float>(0);
    auto y = args.input<float>(1);
    auto out = args.output<float>(0);
    for (int64_t i = args.begin; i < args.end; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        float acc = 0.0f;
        for (int64_t k = 0; k < n; ++k) acc += x[i * n + k] * y[k * n + j];
        out[i * n + j] = acc;
      }
    }
    return Status::ok();
  };
}

struct ChainResult {
  /// Byte and time fields summed over every link plus the environment
  /// exit; `job` is the last link's (per-link Spark stats don't sum).
  omptarget::OffloadReport totals;
  omptarget::CloudPlugin::CacheStats cache;
  std::optional<trace::OffloadAnalysis> analysis;  ///< last link's offload
  std::vector<float> final_state;

  [[nodiscard]] uint64_t transfer_bytes() const {
    return totals.uploaded_plain_bytes + totals.downloaded_plain_bytes;
  }
};

void accumulate(omptarget::OffloadReport& totals,
                const omptarget::OffloadReport& link) {
  totals.device_name = link.device_name;
  totals.total_seconds += link.total_seconds;
  totals.upload_seconds += link.upload_seconds;
  totals.submit_seconds += link.submit_seconds;
  totals.download_seconds += link.download_seconds;
  totals.cleanup_seconds += link.cleanup_seconds;
  totals.boot_seconds += link.boot_seconds;
  totals.host_codec_seconds += link.host_codec_seconds;
  totals.uploaded_plain_bytes += link.uploaded_plain_bytes;
  totals.uploaded_wire_bytes += link.uploaded_wire_bytes;
  totals.downloaded_plain_bytes += link.downloaded_plain_bytes;
  totals.downloaded_wire_bytes += link.downloaded_wire_bytes;
  totals.resident_upload_skipped_bytes += link.resident_upload_skipped_bytes;
  totals.resident_download_deferred_bytes +=
      link.resident_download_deferred_bytes;
  totals.cost_usd += link.cost_usd;
  totals.job = link.job;
}

/// Runs one L-link chain of `muls`-matmul links (2 = 2MM, 3 = 3MM) on a
/// fresh cluster. The chain state ping-pongs between two buffers: link k
/// reads s[k%2] and writes the other; operand matrices are fixed. With
/// `resident`, every buffer lives in one DataEnvironment spanning the
/// whole chain.
Result<ChainResult> run_chain(int muls, int64_t n, int links, bool resident,
                              const std::string& trace_path = {}) {
  sim::Engine engine;
  cloud::ClusterSpec spec;
  cloud::Cluster cluster(engine, spec, cloud::SimProfile::paper_scale(n));
  omptarget::CloudPluginOptions options;
  options.chunk_size = 32ull << 10;  // chunked staging: residency per block
  options.cache_data = true;         // strongest round-trip baseline
  omptarget::DeviceManager devices(engine);
  int cloud_id = devices.register_device(
      std::make_unique<omptarget::CloudPlugin>(cluster, spark::SparkConf{},
                                               options));
  auto& plugin =
      static_cast<omptarget::CloudPlugin&>(devices.device(cloud_id));

  const auto cells = static_cast<size_t>(n) * n;
  const uint64_t bytes = cells * sizeof(float);
  auto a = workload::make_matrix(
      {static_cast<size_t>(n), static_cast<size_t>(n), false, 21});
  auto b = workload::make_matrix(
      {static_cast<size_t>(n), static_cast<size_t>(n), false, 22});
  auto c = workload::make_matrix(
      {static_cast<size_t>(n), static_cast<size_t>(n), false, 23});
  // Scale the fixed operands by 2/n so chained products stay bounded
  // (each matmul at most doubles the state's magnitude).
  for (auto* m : {&a, &b, &c}) {
    for (float& v : *m) v *= 2.0f / static_cast<float>(n);
  }
  std::vector<float> s0 = workload::make_matrix(
      {static_cast<size_t>(n), static_cast<size_t>(n), false, 20});
  std::vector<float> s1(cells, 0.0f);
  std::vector<float> tmp(cells, 0.0f);
  std::vector<float> tmp2(cells, 0.0f);

  // After L links the live state is s[L%2]; only it needs copy-out.
  const bool final_is_s0 = links % 2 == 0;
  std::optional<omptarget::DataEnvironment> env;
  if (resident) {
    env.emplace(devices, cloud_id);
    OC_RETURN_IF_ERROR(env->map(
        "S0", s0.data(), bytes,
        final_is_s0 ? omptarget::MapType::kToFrom : omptarget::MapType::kTo));
    OC_RETURN_IF_ERROR(env->map(
        "S1", s1.data(), bytes,
        final_is_s0 ? omptarget::MapType::kAlloc : omptarget::MapType::kFrom));
    OC_RETURN_IF_ERROR(
        env->map("A", a.data(), bytes, omptarget::MapType::kTo));
    OC_RETURN_IF_ERROR(
        env->map("B", b.data(), bytes, omptarget::MapType::kTo));
    OC_RETURN_IF_ERROR(
        env->map("tmp", tmp.data(), bytes, omptarget::MapType::kAlloc));
    if (muls == 3) {
      OC_RETURN_IF_ERROR(
          env->map("C", c.data(), bytes, omptarget::MapType::kTo));
      OC_RETURN_IF_ERROR(
          env->map("tmp2", tmp2.data(), bytes, omptarget::MapType::kAlloc));
    }
    OC_RETURN_IF_ERROR(env->enter());
  }

  ChainResult out;
  for (int link = 0; link < links; ++link) {
    float* sin = link % 2 == 0 ? s0.data() : s1.data();
    float* sout = link % 2 == 0 ? s1.data() : s0.data();
    omp::TargetRegion region(devices,
                             str_format("%dmm-link%d", muls, link));
    region.device(cloud_id);
    if (env) region.in_environment(*env);
    auto Sin = region.map_to("S_in", sin, cells);
    auto A = region.map_to("A", a.data(), cells);
    auto B = region.map_to("B", b.data(), cells);
    auto T1 = region.map_alloc("tmp", tmp.data(), cells);
    auto Sout = region.map_from("S_out", sout, cells);
    const double flops = 2.0 * static_cast<double>(n) * n;
    region.parallel_for(n)
        .read_partitioned(Sin, omp::rows<float>(n))
        .read(A)
        .write_partitioned(T1, omp::rows<float>(n))
        .cost_flops(flops)
        .body("mm1", matmul_body(n));
    if (muls == 2) {
      region.parallel_for(n)
          .read_partitioned(T1, omp::rows<float>(n))
          .read(B)
          .write_partitioned(Sout, omp::rows<float>(n))
          .cost_flops(flops)
          .body("mm2", matmul_body(n));
    } else {
      auto C = region.map_to("C", c.data(), cells);
      auto T2 = region.map_alloc("tmp2", tmp2.data(), cells);
      region.parallel_for(n)
          .read_partitioned(T1, omp::rows<float>(n))
          .read(B)
          .write_partitioned(T2, omp::rows<float>(n))
          .cost_flops(flops)
          .body("mm2", matmul_body(n));
      region.parallel_for(n)
          .read_partitioned(T2, omp::rows<float>(n))
          .read(C)
          .write_partitioned(Sout, omp::rows<float>(n))
          .cost_flops(flops)
          .body("mm3", matmul_body(n));
    }
    OC_ASSIGN_OR_RETURN(auto report, omp::offload_blocking(engine, region));
    accumulate(out.totals, report);
  }

  if (env) {
    std::optional<Result<omptarget::DataEnvReport>> exit_result;
    engine.spawn(
        [](omptarget::DataEnvironment* env,
           std::optional<Result<omptarget::DataEnvReport>>* out)
            -> sim::Co<void> { *out = co_await env->exit(); }(&*env,
                                                              &exit_result));
    engine.run();
    OC_ASSIGN_OR_RETURN(omptarget::DataEnvReport exit_report,
                        std::move(*exit_result));
    out.totals.total_seconds += exit_report.seconds;
    out.totals.download_seconds += exit_report.seconds;
    out.totals.downloaded_plain_bytes += exit_report.downloaded_plain_bytes;
    out.totals.downloaded_wire_bytes += exit_report.downloaded_wire_bytes;
  }

  out.cache = plugin.cache_stats();
  trace::TraceAnalyzer analyzer(devices.tracer());
  std::vector<trace::OffloadAnalysis> analyses = analyzer.analyze_all();
  if (!analyses.empty()) out.analysis = std::move(analyses.back());
  out.final_state = final_is_s0 ? s0 : s1;
  if (!trace_path.empty()) {
    OC_RETURN_IF_ERROR(trace::write_chrome_json(
        devices.tracer(), trace_path,
        "\"report\": " + out.totals.to_json(2)));
  }
  return out;
}

int run(int argc, const char** argv) {
  FlagSet flags("Cloud-resident data environment ablation (chained 2MM/3MM)");
  flags.define_int("n", 160, "matrix dimension per link");
  if (Status parsed = flags.parse(argc, argv); !parsed.is_ok()) {
    return parsed.code() == StatusCode::kFailedPrecondition ? 0 : 1;
  }
  const int64_t n = flags.get_int("n");
  const uint64_t matrix_bytes = static_cast<uint64_t>(n) * n * sizeof(float);
  bench::BenchJson json("BENCH_resident.json");

  std::printf("Resident data-environment ablation (matrix = %s)\n\n",
              format_bytes(matrix_bytes).c_str());
  std::printf("%4s %6s %10s | %12s %12s %12s %12s\n", "kind", "chain",
              "mode", "upload", "download", "transfer", "saved");

  bool ok = true;
  uint64_t resident_3mm_chain1 = 0;
  uint64_t resident_3mm_chain8 = 0;
  for (int muls : {2, 3}) {
    uint64_t round_trip_chain8 = 0;
    uint64_t resident_chain8 = 0;
    for (int links : {1, 2, 4, 8}) {
      auto round_trip = run_chain(muls, n, links, /*resident=*/false);
      const std::string trace_path =
          muls == 3 && links == 8 ? "BENCH_resident.trace.json" : "";
      auto resident = run_chain(muls, n, links, /*resident=*/true,
                                trace_path);
      if (!round_trip.ok() || !resident.ok()) {
        const Status& status = round_trip.ok() ? resident.status()
                                               : round_trip.status();
        std::fprintf(stderr, "%dmm chain=%d failed: %s\n", muls, links,
                     status.to_string().c_str());
        return 1;
      }
      for (const ChainResult* chain : {&*round_trip, &*resident}) {
        bool is_resident = chain == &*resident;
        std::printf(
            "%3dmm %6d %10s | %12s %12s %12s %12s\n", muls, links,
            is_resident ? "resident" : "round-trip",
            format_bytes(chain->totals.uploaded_plain_bytes).c_str(),
            format_bytes(chain->totals.downloaded_plain_bytes).c_str(),
            format_bytes(chain->transfer_bytes()).c_str(),
            format_bytes(chain->totals.resident_upload_skipped_bytes +
                         chain->totals.resident_download_deferred_bytes)
                .c_str());
        json.add(str_format("%dmm %s chain=%d", muls,
                            is_resident ? "resident" : "roundtrip", links),
                 chain->totals, &chain->cache,
                 chain->analysis ? &*chain->analysis : nullptr);
      }
      // Residency must not change the math: the final chain state has to
      // be byte-identical to the round-trip run's.
      if (round_trip->final_state.size() != resident->final_state.size() ||
          std::memcmp(round_trip->final_state.data(),
                      resident->final_state.data(),
                      round_trip->final_state.size() * sizeof(float)) != 0) {
        std::fprintf(stderr,
                     "%dmm chain=%d: resident final state DIVERGES from "
                     "round-trip\n",
                     muls, links);
        ok = false;
      }
      // Resident links after the first must never re-stage a pinned block
      // through the delta cache: all their input bytes are skipped outright.
      if (resident->totals.resident_upload_skipped_bytes == 0 && links > 1) {
        std::fprintf(stderr, "%dmm chain=%d: no resident upload skips\n",
                     muls, links);
        ok = false;
      }
      if (links == 8) {
        round_trip_chain8 = round_trip->transfer_bytes();
        resident_chain8 = resident->transfer_bytes();
      }
      if (muls == 3 && links == 1) {
        resident_3mm_chain1 = resident->transfer_bytes();
      }
      if (muls == 3 && links == 8) {
        resident_3mm_chain8 = resident->transfer_bytes();
      }
    }
    bool beats = resident_chain8 < round_trip_chain8;
    std::printf(
        "\n%dmm chain=8: resident moves %s vs round-trip %s (%s)\n\n", muls,
        format_bytes(resident_chain8).c_str(),
        format_bytes(round_trip_chain8).c_str(),
        beats ? "resident wins" : "resident DOES NOT win");
    ok = ok && beats;
  }

  // The headline acceptance: chained-kernel transfer is ~constant in the
  // chain length once the working set is cloud-resident.
  double ratio = resident_3mm_chain1 == 0
                     ? 0.0
                     : static_cast<double>(resident_3mm_chain8) /
                           static_cast<double>(resident_3mm_chain1);
  bool constant_transfer = resident_3mm_chain1 > 0 && ratio <= 1.25;
  std::printf("3mm resident transfer: chain-8 / chain-1 = %.3f (%s 1.25)\n",
              ratio, constant_transfer ? "<=" : "EXCEEDS");
  ok = ok && constant_transfer;

  json.flush();
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, const char** argv) { return run(argc, argv); }
