// Ablation: micro-batch coalescing in the offload service layer.
//
// An open-loop stream of small inference-style requests (y = W.x over a
// shared weight matrix) arrives through Session handles from several
// tenants. Two service configurations serve each arrival count:
//
//   unbatched   every request runs as its own Spark job (batching off).
//   batched     the admission queue coalesces up to 16 compatible queued
//               requests into one merged job with per-tenant
//               sub-partitions (scheduler.batch-regions = 16).
//
// The question the service layer raises: does coalescing amortize the
// per-job overhead (spark-submit round trips, staging, task launch) enough
// to cut tail latency AND the per-request bill, without changing results?
// Results land in BENCH_service.json for the CI regression gate, which
// asserts batched p99 <= unbatched p99 and a strictly lower $/request at
// the largest arrival count.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/harness.h"
#include "omp/target_region.h"
#include "omptarget/service.h"
#include "support/config.h"
#include "support/flags.h"
#include "support/strings.h"
#include "trace/alerts.h"
#include "trace/analysis.h"
#include "trace/timeseries.h"

using namespace ompcloud;

namespace {

constexpr int64_t kRows = 64;  ///< outputs per request
constexpr int64_t kK = 256;    ///< reduction depth (weights length)

Status InferKernel(const jni::KernelArgs& args) {
  auto x = args.input<float>(0);
  auto w = args.input<float>(1);
  auto y = args.output<float>(0);
  for (int64_t i = args.begin; i < args.end; ++i) {
    float acc = 0.0f;
    for (int64_t k = 0; k < kK; ++k) acc += w[k] * x[i * kK + k];
    y[i] = acc;
  }
  return Status::ok();
}

const jni::KernelRegistrar kInferReg("bench.infer", InferKernel);

struct Request {
  std::vector<float> x;
  std::vector<float> y;
  double arrival = 0;
  double done = -1;  ///< completion (virtual seconds); -1 = failed
  int batch_size = 0;
};

/// Sleeps until the request's arrival, submits it through the session, and
/// records its completion time.
sim::Co<void> run_request(sim::Engine* engine, omptarget::DeviceManager* devices,
                          Session session, int device_id, int index,
                          std::vector<float>* weights, Request* request) {
  co_await engine->sleep(request->arrival);
  omp::TargetRegion region(*devices, str_format("req[%d]", index));
  region.device(device_id);
  auto xv = region.map_to("x", request->x.data(), request->x.size());
  auto wv = region.map_to("w", weights->data(), weights->size());
  auto yv = region.map_from("y", request->y.data(), request->y.size());
  region.parallel_for(kRows)
      .read_partitioned(xv, omp::rows<float>(kK))
      .read(wv)
      .write_partitioned(yv, omp::rows<float>(1))
      .cost_flops(2.0 * static_cast<double>(kK))
      .kernel("bench.infer");
  auto lowered = region.lower();
  if (!lowered.ok()) co_return;
  omptarget::SubmitOptions options;
  options.device_id = device_id;
  auto result = co_await session.submit(std::move(*lowered), options);
  if (result.ok()) {
    request->done = engine->now();
    request->batch_size = result->batch_size;
  }
}

struct ModeResult {
  int completed = 0;
  double p50 = 0;
  double p99 = 0;
  double makespan = 0;
  double cost_usd = 0;
  double cost_per_request = 0;
  uint64_t batch_jobs = 0;
  uint64_t batched_requests = 0;
};

double quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  size_t index = static_cast<size_t>(q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

Result<ModeResult> run_mode(bool batched, int requests, double gap) {
  sim::Engine engine;
  cloud::ClusterSpec spec;
  spec.workers = 4;
  cloud::Cluster cluster(engine, spec, cloud::SimProfile{});
  omptarget::DeviceManager devices(engine);
  int cloud_id = devices.register_device(std::make_unique<omptarget::CloudPlugin>(
      cluster, spark::SparkConf{}, omptarget::CloudPluginOptions{}));

  ServiceOptions options;
  options.default_device = cloud_id;
  options.scheduler.max_concurrent = 8;
  if (batched) {
    options.scheduler.batch_regions = 16;
    options.scheduler.batch_bytes = 4 << 20;
    options.scheduler.batch_linger_seconds = 0.05;
  }
  Service service(devices, options);

  // One shared weight buffer: batch eligibility matches broadcast inputs by
  // host pointer, exactly the "many requests, one model" shape.
  std::vector<float> weights(static_cast<size_t>(kK));
  for (size_t k = 0; k < weights.size(); ++k) {
    weights[k] = static_cast<float>((k * 13 + 5) % 17) * 0.0625f;
  }
  std::vector<Request> stream(static_cast<size_t>(requests));
  const char* tenants[] = {"teamA", "teamB", "teamC", "teamD"};
  for (int i = 0; i < requests; ++i) {
    Request& request = stream[static_cast<size_t>(i)];
    request.arrival = i * gap;
    request.x.resize(static_cast<size_t>(kRows * kK));
    for (size_t j = 0; j < request.x.size(); ++j) {
      request.x[j] = static_cast<float>((j + static_cast<size_t>(i) * 31) % 23);
    }
    request.y.assign(static_cast<size_t>(kRows), 0.0f);
    Session session = service.session(tenants[i % 4]);
    engine.spawn(run_request(&engine, &devices, session, cloud_id, i, &weights,
                             &request));
  }
  engine.run();

  ModeResult result;
  std::vector<double> latencies;
  for (const Request& request : stream) {
    if (request.done < 0) continue;
    result.completed += 1;
    latencies.push_back(request.done - request.arrival);
    result.makespan = std::max(result.makespan, request.done);
    if (request.batch_size > 1) result.batched_requests += 1;
  }
  std::sort(latencies.begin(), latencies.end());
  result.p50 = quantile(latencies, 0.50);
  result.p99 = quantile(latencies, 0.99);
  result.cost_usd = cluster.cost().accrued_usd();
  if (result.completed > 0) {
    result.cost_per_request = result.cost_usd / result.completed;
  }
  result.batch_jobs =
      devices.tracer().metrics().counter_value("batch.jobs");
  return result;
}

struct TelemetryResult {
  ModeResult mode;
  uint64_t samples = 0;
  uint64_t series = 0;
  uint64_t alerts_fired = 0;
  uint64_t burn_rate_fired = 0;  ///< fires from burn-rate rules only
  uint64_t deadline_missed = 0;
  uint64_t quota_rejects = 0;
};

/// The batched configuration again, this time observed live: tight
/// per-request deadlines and a per-tenant quota make the SLO signals
/// (deadline misses, quota rejects) non-trivial, the [telemetry] collector
/// samples the registry every 250 virtual ms, and the [alerts] rules below
/// must catch the resulting burn. Writes the ocmon input
/// (BENCH_service.tsdb.json) and the OpenMetrics exposition
/// (BENCH_service.prom) that CI lints.
Result<TelemetryResult> run_telemetry_mode(int requests, double gap) {
  sim::Engine engine;
  cloud::ClusterSpec spec;
  spec.workers = 4;
  cloud::Cluster cluster(engine, spec, cloud::SimProfile{});
  omptarget::DeviceManager devices(engine);
  int cloud_id = devices.register_device(std::make_unique<omptarget::CloudPlugin>(
      cluster, spark::SparkConf{}, omptarget::CloudPluginOptions{}));

  ServiceOptions options;
  options.default_device = cloud_id;
  options.default_deadline_seconds = 3.2;
  options.scheduler.max_concurrent = 8;
  options.scheduler.batch_regions = 16;
  options.scheduler.batch_bytes = 4 << 20;
  options.scheduler.batch_linger_seconds = 0.05;
  options.scheduler.tenant_quotas.emplace_back("teamD", 16);
  Service service(devices, options);

  trace::TelemetryOptions telemetry;
  telemetry.enabled = true;
  telemetry.interval_seconds = 0.25;
  telemetry.retention_samples = 600;
  telemetry.export_path = "BENCH_service.tsdb.json";
  telemetry.openmetrics_path = "BENCH_service.prom";
  trace::TimeSeriesCollector collector(devices.tracer(), telemetry);
  auto rules_config = Config::parse(
      "[alerts]\n"
      "rule.deadline-burn = burn-rate slo.deadline{outcome=missed} / "
      "slo.deadline by tenant objective 0.99 windows 2s:1,10s:0.5 "
      "severity page\n"
      "rule.quota-rejects = burn-rate slo.rejected{reason=quota} / "
      "scheduler.events{kind=admit} by tenant objective 0.95 "
      "windows 5s:1 severity ticket\n"
      "rule.queue-backlog = threshold scheduler.queue_depth >= 32 for 1s "
      "severity info\n"
      "rule.breaker-open = threshold breaker.state >= 2 severity page\n");
  if (!rules_config.ok()) return rules_config.status();
  auto rules = trace::AlertRuleSet::from_config(*rules_config);
  if (!rules.ok()) return rules.status();
  collector.set_alert_rules(*rules);

  std::vector<float> weights(static_cast<size_t>(kK));
  for (size_t k = 0; k < weights.size(); ++k) {
    weights[k] = static_cast<float>((k * 13 + 5) % 17) * 0.0625f;
  }
  std::vector<Request> stream(static_cast<size_t>(requests));
  const char* tenants[] = {"teamA", "teamB", "teamC", "teamD"};
  for (int i = 0; i < requests; ++i) {
    Request& request = stream[static_cast<size_t>(i)];
    request.arrival = i * gap;
    request.x.resize(static_cast<size_t>(kRows * kK));
    for (size_t j = 0; j < request.x.size(); ++j) {
      request.x[j] = static_cast<float>((j + static_cast<size_t>(i) * 31) % 23);
    }
    request.y.assign(static_cast<size_t>(kRows), 0.0f);
    Session session = service.session(tenants[i % 4]);
    engine.spawn(run_request(&engine, &devices, session, cloud_id, i, &weights,
                             &request));
  }
  engine.run();
  if (Status status = collector.finalize(); !status.is_ok()) return status;

  TelemetryResult result;
  std::vector<double> latencies;
  for (const Request& request : stream) {
    if (request.done < 0) continue;
    result.mode.completed += 1;
    latencies.push_back(request.done - request.arrival);
    result.mode.makespan = std::max(result.mode.makespan, request.done);
  }
  std::sort(latencies.begin(), latencies.end());
  result.mode.p50 = quantile(latencies, 0.50);
  result.mode.p99 = quantile(latencies, 0.99);
  result.mode.cost_usd = cluster.cost().accrued_usd();
  result.mode.batch_jobs =
      devices.tracer().metrics().counter_value("batch.jobs");
  result.samples = collector.samples();
  result.series = collector.series().size();
  if (const trace::AlertEvaluator* alerts = collector.alerts()) {
    result.alerts_fired = alerts->fired();
    for (const trace::AlertEvent& event : alerts->events()) {
      if (!event.fire) continue;
      if (event.rule == "deadline-burn" || event.rule == "quota-rejects") {
        result.burn_rate_fired += 1;
      }
    }
  }
  const trace::Metrics& metrics = devices.tracer().metrics();
  result.deadline_missed = metrics.counter_value("slo.deadline_missed");
  result.quota_rejects = metrics.counter_value("slo.rejected_quota");
  return result;
}

std::string mode_json(const std::string& label, int requests,
                      const ModeResult& result) {
  return str_format(
      "{\"label\": \"%s\", \"requests\": %d, \"completed\": %d, "
      "\"p50_seconds\": %.9g, \"p99_seconds\": %.9g, "
      "\"makespan_seconds\": %.9g, \"cost_usd\": %.9g, "
      "\"cost_per_request_usd\": %.9g, \"batch_jobs\": %llu, "
      "\"batched_requests\": %llu}",
      label.c_str(), requests, result.completed, result.p50, result.p99,
      result.makespan, result.cost_usd, result.cost_per_request,
      static_cast<unsigned long long>(result.batch_jobs),
      static_cast<unsigned long long>(result.batched_requests));
}

int run(int argc, const char** argv) {
  FlagSet flags("Service-layer micro-batching ablation");
  flags.define_int("gap-ms", 20, "milliseconds between arrivals (virtual)");
  if (Status parsed = flags.parse(argc, argv); !parsed.is_ok()) {
    return parsed.code() == StatusCode::kFailedPrecondition ? 0 : 1;
  }
  const double gap = static_cast<double>(flags.get_int("gap-ms")) / 1000.0;
  const std::vector<int> counts = {100, 1000};

  std::printf("Service micro-batching ablation (arrivals every %.0f ms)\n\n",
              gap * 1000.0);
  std::printf("%16s | %5s %10s %10s %12s %12s %7s\n", "mode", "done", "p50",
              "p99", "makespan", "$/request", "jobs");

  std::vector<std::string> records;
  bool all_completed = true;
  bool tail_win = true;
  bool cost_win = true;
  for (int requests : counts) {
    ModeResult modes[2];
    for (int b = 0; b < 2; ++b) {
      auto result = run_mode(b == 1, requests, gap);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().to_string().c_str());
        return 1;
      }
      modes[b] = *result;
      const std::string label =
          str_format("%s-%d", b == 1 ? "batched" : "unbatched", requests);
      std::printf("%16s | %5d %9.3fs %9.3fs %11.1fs %12.8f %7llu\n",
                  label.c_str(), modes[b].completed, modes[b].p50,
                  modes[b].p99, modes[b].makespan, modes[b].cost_per_request,
                  static_cast<unsigned long long>(modes[b].batch_jobs));
      records.push_back(mode_json(label, requests, modes[b]));
      all_completed = all_completed && modes[b].completed == requests;
    }
    // The headline claim, checked at every arrival count: coalescing must
    // not hurt the tail and must cut the per-request bill.
    tail_win = tail_win && modes[1].p99 <= modes[0].p99;
    cost_win = cost_win && modes[1].cost_per_request < modes[0].cost_per_request;
    std::printf("%16s | p99 %.3fs -> %.3fs, $/request %.8f -> %.8f "
                "(%llu requests in %llu merged jobs)\n",
                str_format("@%d", requests).c_str(), modes[0].p99,
                modes[1].p99, modes[0].cost_per_request,
                modes[1].cost_per_request,
                static_cast<unsigned long long>(modes[1].batched_requests),
                static_cast<unsigned long long>(modes[1].batch_jobs));
  }

  std::printf("\nbatching %s the tail and %s the per-request bill\n",
              tail_win ? "holds" : "DEGRADES", cost_win ? "cuts" : "RAISES");

  // Instrumented run: the batched 1000-request stream again with tight
  // deadlines + a teamD quota, observed by the [telemetry] collector and
  // the burn-rate alert rules. Excluded from the tail/cost assertions
  // above (its SLO knobs change the stream); gated instead on the live
  // pipeline actually catching the burn.
  auto telemetry = run_telemetry_mode(1000, gap);
  if (!telemetry.ok()) {
    std::fprintf(stderr, "%s\n", telemetry.status().to_string().c_str());
    return 1;
  }
  std::printf(
      "\ntelemetry-1000: %d done, p99 %.3fs, %llu samples over %llu series, "
      "%llu deadline misses, %llu quota rejects, %llu alerts fired "
      "(%llu burn-rate)\n",
      telemetry->mode.completed, telemetry->mode.p99,
      static_cast<unsigned long long>(telemetry->samples),
      static_cast<unsigned long long>(telemetry->series),
      static_cast<unsigned long long>(telemetry->deadline_missed),
      static_cast<unsigned long long>(telemetry->quota_rejects),
      static_cast<unsigned long long>(telemetry->alerts_fired),
      static_cast<unsigned long long>(telemetry->burn_rate_fired));
  std::printf("wrote BENCH_service.tsdb.json + BENCH_service.prom\n");
  records.push_back(str_format(
      "{\"label\": \"telemetry-1000\", \"requests\": 1000, "
      "\"completed\": %d, \"p99_seconds\": %.9g, \"makespan_seconds\": %.9g, "
      "\"samples\": %llu, \"series\": %llu, \"deadline_missed\": %llu, "
      "\"quota_rejects\": %llu, \"alerts_fired\": %llu, "
      "\"burn_rate_fired\": %llu}",
      telemetry->mode.completed, telemetry->mode.p99, telemetry->mode.makespan,
      static_cast<unsigned long long>(telemetry->samples),
      static_cast<unsigned long long>(telemetry->series),
      static_cast<unsigned long long>(telemetry->deadline_missed),
      static_cast<unsigned long long>(telemetry->quota_rejects),
      static_cast<unsigned long long>(telemetry->alerts_fired),
      static_cast<unsigned long long>(telemetry->burn_rate_fired)));
  const bool alert_caught = telemetry->burn_rate_fired >= 1;
  if (!alert_caught) {
    std::fprintf(stderr,
                 "telemetry run produced no burn-rate alert — the live "
                 "pipeline missed the SLO burn\n");
  }

  std::string json = "[\n";
  for (size_t i = 0; i < records.size(); ++i) {
    json += "  " + records[i] + (i + 1 < records.size() ? ",\n" : "\n");
  }
  json += "]\n";
  if (FILE* out = std::fopen("BENCH_service.json", "w")) {
    std::fputs(json.c_str(), out);
    std::fclose(out);
    std::printf("wrote BENCH_service.json (%zu records)\n", records.size());
  } else {
    std::fprintf(stderr, "cannot write BENCH_service.json\n");
    return 1;
  }
  return all_completed && tail_win && cost_win && alert_caught ? 0 : 1;
}

}  // namespace

int main(int argc, const char** argv) { return run(argc, argv); }
