// Ablation: speculative execution under stragglers.
//
// Cloud VMs are noisy neighbors: a fraction of tasks run far slower than
// their twins. Spark's spark.speculation launches duplicate copies of
// stragglers and keeps the first finisher — DOALL loop bodies make the
// copies interchangeable. This bench injects stragglers at increasing
// severity and compares job time with speculation off/on.
#include <cstdio>

#include "bench/harness.h"
#include "support/flags.h"
#include "support/random.h"
#include "support/strings.h"

namespace ompcloud::bench {
namespace {

int run(int argc, const char** argv) {
  FlagSet flags("Speculative-execution ablation under injected stragglers");
  flags.define("benchmark", "gemm", "benchmark to run")
      .define_int("n", 448, "real problem dimension")
      .define_int("cores", 128, "dedicated worker cores")
      .define_double("straggler-rate", 0.05, "fraction of straggling tasks");
  if (Status parsed = flags.parse(argc, argv); !parsed.is_ok()) {
    return parsed.code() == StatusCode::kFailedPrecondition ? 0 : 1;
  }
  const int64_t n = flags.get_int("n");
  const double rate = flags.get_double("straggler-rate");

  std::printf(
      "Ablation: spark.speculation (%s, n=%lld, %lld cores, %.0f%% of tasks "
      "straggle)\n\n",
      flags.get("benchmark").c_str(), static_cast<long long>(n),
      static_cast<long long>(flags.get_int("cores")), rate * 100);
  std::printf("%10s %12s | %12s %10s %8s\n", "slowdown", "speculation",
              "job-time", "launched", "won");

  for (double factor : {4.0, 16.0}) {
    for (bool speculation : {false, true}) {
      CloudRunConfig config;
      config.benchmark = flags.get("benchmark");
      config.n = n;
      config.dedicated_cores = static_cast<int>(flags.get_int("cores"));
      config.spark.speculation = speculation;
      auto result = [&]() -> Result<CloudRunResult> {
        // Deterministic straggler set: hash(tile) under `rate`.
        auto straggles = [rate, factor](int tile, int) {
          Xoshiro256 rng(0xabc0 + static_cast<uint64_t>(tile));
          return rng.chance(rate) ? factor : 1.0;
        };
        return run_on_cloud_with_injectors(config, nullptr, straggles);
      }();
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().to_string().c_str());
        return 1;
      }
      const auto& job = result->report.job;
      std::printf("%9.0fx %12s | %12s %10d %8d\n", factor,
                  speculation ? "on" : "off",
                  format_duration(job.job_seconds).c_str(),
                  job.speculative_launched, job.speculative_won);
    }
  }
  std::printf(
      "\nwithout speculation one straggler stalls the whole wave; with it,\n"
      "the duplicate bounds the damage to ~multiplier x the normal task.\n");
  return 0;
}

}  // namespace
}  // namespace ompcloud::bench

int main(int argc, const char** argv) { return ompcloud::bench::run(argc, argv); }
