// Ablation: what does live telemetry cost?
//
// The same 1000-session batched inference stream (ablation_service's
// workload, tight per-request deadlines included) runs twice: once with
// [telemetry] off and once with the collector sampling every 250 virtual
// ms plus the full burn-rate/threshold alert rule set evaluating after
// every sample. Two claims are gated:
//
//   zero virtual cost   the collector only observes callbacks, so the two
//                       runs must produce byte-identical virtual outcomes
//                       (same makespan, same completions) — telemetry can
//                       never perturb the simulation it measures.
//   cheap wall cost     sampling + alert evaluation must stay under 2% of
//                       wall-clock (min of 3 repeats per mode; CI gates
//                       the overhead_percent field with jq).
//
// Results land in BENCH_telemetry.json; bench/baseline/BENCH_telemetry.json
// pins the deterministic fields (completions, makespan, samples, series,
// alerts) for the regression gate.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/harness.h"
#include "omp/target_region.h"
#include "omptarget/service.h"
#include "support/config.h"
#include "support/flags.h"
#include "support/strings.h"
#include "trace/alerts.h"
#include "trace/timeseries.h"

using namespace ompcloud;

namespace {

constexpr int64_t kRows = 64;  ///< outputs per request
constexpr int64_t kK = 256;    ///< reduction depth (weights length)

Status InferKernel(const jni::KernelArgs& args) {
  auto x = args.input<float>(0);
  auto w = args.input<float>(1);
  auto y = args.output<float>(0);
  for (int64_t i = args.begin; i < args.end; ++i) {
    float acc = 0.0f;
    for (int64_t k = 0; k < kK; ++k) acc += w[k] * x[i * kK + k];
    y[i] = acc;
  }
  return Status::ok();
}

const jni::KernelRegistrar kInferReg("telemetry.infer", InferKernel);

struct Request {
  std::vector<float> x;
  std::vector<float> y;
  double arrival = 0;
  double done = -1;
};

sim::Co<void> run_request(sim::Engine* engine,
                          omptarget::DeviceManager* devices, Session session,
                          int device_id, int index, std::vector<float>* weights,
                          Request* request) {
  co_await engine->sleep(request->arrival);
  omp::TargetRegion region(*devices, str_format("req[%d]", index));
  region.device(device_id);
  auto xv = region.map_to("x", request->x.data(), request->x.size());
  auto wv = region.map_to("w", weights->data(), weights->size());
  auto yv = region.map_from("y", request->y.data(), request->y.size());
  region.parallel_for(kRows)
      .read_partitioned(xv, omp::rows<float>(kK))
      .read(wv)
      .write_partitioned(yv, omp::rows<float>(1))
      .cost_flops(2.0 * static_cast<double>(kK))
      .kernel("telemetry.infer");
  auto lowered = region.lower();
  if (!lowered.ok()) co_return;
  omptarget::SubmitOptions options;
  options.device_id = device_id;
  auto result = co_await session.submit(std::move(*lowered), options);
  if (result.ok()) request->done = engine->now();
}

struct RunResult {
  int completed = 0;
  double makespan = 0;
  double wall_seconds = 0;
  uint64_t samples = 0;
  uint64_t series = 0;
  uint64_t alerts_fired = 0;
};

Result<RunResult> run_once(bool telemetry_on, int requests, double gap) {
  const auto wall_start = std::chrono::steady_clock::now();
  sim::Engine engine;
  cloud::ClusterSpec spec;
  spec.workers = 4;
  cloud::Cluster cluster(engine, spec, cloud::SimProfile{});
  omptarget::DeviceManager devices(engine);
  int cloud_id = devices.register_device(
      std::make_unique<omptarget::CloudPlugin>(
          cluster, spark::SparkConf{}, omptarget::CloudPluginOptions{}));

  ServiceOptions options;
  options.default_device = cloud_id;
  options.default_deadline_seconds = 3.2;
  options.scheduler.max_concurrent = 8;
  options.scheduler.batch_regions = 16;
  options.scheduler.batch_bytes = 4 << 20;
  options.scheduler.batch_linger_seconds = 0.05;
  Service service(devices, options);

  trace::TelemetryOptions telemetry;
  telemetry.enabled = telemetry_on;
  telemetry.interval_seconds = 0.25;
  telemetry.retention_samples = 600;
  trace::TimeSeriesCollector collector(devices.tracer(), telemetry);
  if (telemetry_on) {
    auto rules_config = Config::parse(
        "[alerts]\n"
        "rule.deadline-burn = burn-rate slo.deadline{outcome=missed} / "
        "slo.deadline by tenant objective 0.99 windows 2s:1,10s:0.5 "
        "severity page\n"
        "rule.queue-backlog = threshold scheduler.queue_depth >= 32 for 1s "
        "severity info\n"
        "rule.breaker-open = threshold breaker.state >= 2 severity page\n");
    if (!rules_config.ok()) return rules_config.status();
    auto rules = trace::AlertRuleSet::from_config(*rules_config);
    if (!rules.ok()) return rules.status();
    collector.set_alert_rules(*rules);
  }

  std::vector<float> weights(static_cast<size_t>(kK));
  for (size_t k = 0; k < weights.size(); ++k) {
    weights[k] = static_cast<float>((k * 13 + 5) % 17) * 0.0625f;
  }
  std::vector<Request> stream(static_cast<size_t>(requests));
  const char* tenants[] = {"teamA", "teamB", "teamC", "teamD"};
  for (int i = 0; i < requests; ++i) {
    Request& request = stream[static_cast<size_t>(i)];
    request.arrival = i * gap;
    request.x.resize(static_cast<size_t>(kRows * kK));
    for (size_t j = 0; j < request.x.size(); ++j) {
      request.x[j] = static_cast<float>((j + static_cast<size_t>(i) * 31) % 23);
    }
    request.y.assign(static_cast<size_t>(kRows), 0.0f);
    Session session = service.session(tenants[i % 4]);
    engine.spawn(run_request(&engine, &devices, session, cloud_id, i, &weights,
                             &request));
  }
  engine.run();
  if (Status status = collector.finalize(); !status.is_ok()) return status;

  RunResult result;
  for (const Request& request : stream) {
    if (request.done < 0) continue;
    result.completed += 1;
    result.makespan = std::max(result.makespan, request.done);
  }
  result.samples = collector.samples();
  result.series = collector.series().size();
  if (const trace::AlertEvaluator* alerts = collector.alerts()) {
    result.alerts_fired = alerts->fired();
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return result;
}

int run(int argc, const char** argv) {
  FlagSet flags("Telemetry-pipeline overhead ablation");
  flags.define_int("requests", 1000, "sessions per run");
  flags.define_int("gap-ms", 20, "milliseconds between arrivals (virtual)");
  flags.define_int("repeats", 3, "wall-clock repeats per mode (min is kept)");
  if (Status parsed = flags.parse(argc, argv); !parsed.is_ok()) {
    return parsed.code() == StatusCode::kFailedPrecondition ? 0 : 1;
  }
  const int requests = static_cast<int>(flags.get_int("requests"));
  const double gap = static_cast<double>(flags.get_int("gap-ms")) / 1000.0;
  const int repeats = std::max(1, static_cast<int>(flags.get_int("repeats")));

  std::printf("Telemetry overhead ablation (%d sessions, min of %d repeats)\n\n",
              requests, repeats);

  RunResult modes[2];
  for (int m = 0; m < 2; ++m) {
    const bool on = m == 1;
    double best_wall = 0;
    for (int r = 0; r < repeats; ++r) {
      auto result = run_once(on, requests, gap);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().to_string().c_str());
        return 1;
      }
      if (r == 0 || result->wall_seconds < best_wall) {
        best_wall = result->wall_seconds;
      }
      modes[m] = *result;
    }
    modes[m].wall_seconds = best_wall;
    std::printf("telemetry %-3s | %4d done  makespan %9.4fs  wall %7.3fs  "
                "%llu samples  %llu series  %llu alerts\n",
                on ? "on" : "off", modes[m].completed, modes[m].makespan,
                modes[m].wall_seconds,
                static_cast<unsigned long long>(modes[m].samples),
                static_cast<unsigned long long>(modes[m].series),
                static_cast<unsigned long long>(modes[m].alerts_fired));
  }

  // Zero virtual cost: the observer must not perturb the simulation.
  const bool makespan_equal = modes[0].makespan == modes[1].makespan &&
                              modes[0].completed == modes[1].completed;
  // Off path pays nothing: the collector never attached, never sampled.
  const bool off_is_free = modes[0].samples == 0 && modes[0].series == 0;
  const double overhead_percent =
      modes[0].wall_seconds > 0
          ? std::max(0.0, (modes[1].wall_seconds - modes[0].wall_seconds) /
                              modes[0].wall_seconds * 100.0)
          : 0.0;
  std::printf("\nvirtual outcomes %s; off path %s; wall overhead %.2f%%\n",
              makespan_equal ? "identical" : "DIVERGED",
              off_is_free ? "free" : "SAMPLED ANYWAY", overhead_percent);

  std::string json = "[\n";
  json += str_format(
      "  {\"label\": \"telemetry-off-%d\", \"completed\": %d, "
      "\"makespan_seconds\": %.9g, \"samples\": %llu, \"series\": %llu},\n",
      requests, modes[0].completed, modes[0].makespan,
      static_cast<unsigned long long>(modes[0].samples),
      static_cast<unsigned long long>(modes[0].series));
  json += str_format(
      "  {\"label\": \"telemetry-on-%d\", \"completed\": %d, "
      "\"makespan_seconds\": %.9g, \"samples\": %llu, \"series\": %llu, "
      "\"alerts_fired\": %llu},\n",
      requests, modes[1].completed, modes[1].makespan,
      static_cast<unsigned long long>(modes[1].samples),
      static_cast<unsigned long long>(modes[1].series),
      static_cast<unsigned long long>(modes[1].alerts_fired));
  json += str_format(
      "  {\"label\": \"telemetry-overhead\", \"overhead_percent\": %.4f, "
      "\"makespan_equal\": %s, \"off_is_free\": %s}\n",
      overhead_percent, makespan_equal ? "true" : "false",
      off_is_free ? "true" : "false");
  json += "]\n";
  if (FILE* out = std::fopen("BENCH_telemetry.json", "w")) {
    std::fputs(json.c_str(), out);
    std::fclose(out);
    std::printf("wrote BENCH_telemetry.json\n");
  } else {
    std::fprintf(stderr, "cannot write BENCH_telemetry.json\n");
    return 1;
  }
  return makespan_equal && off_is_free ? 0 : 1;
}

}  // namespace

int main(int argc, const char** argv) { return run(argc, argv); }
