// Ablation: Algorithm 1 (loop tiling to the cluster size).
//
// The paper tiles the outer loop so the number of RDD elements matches the
// worker-core count, because each element costs one JNI invocation. This
// bench sweeps the tile count from "one per core" to "one per iteration"
// and reports where the JNI overhead goes.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "support/flags.h"
#include "support/strings.h"

namespace ompcloud::bench {
namespace {

int run(int argc, const char** argv) {
  FlagSet flags("Algorithm-1 tiling ablation (JNI call amortization)");
  flags.define("benchmark", "gemm", "benchmark to run")
      .define_int("n", 448, "real problem dimension")
      .define_int("cores", 64, "dedicated worker cores");
  if (Status parsed = flags.parse(argc, argv); !parsed.is_ok()) {
    return parsed.code() == StatusCode::kFailedPrecondition ? 0 : 1;
  }
  const int64_t n = flags.get_int("n");
  const int cores = static_cast<int>(flags.get_int("cores"));

  std::printf(
      "Ablation: Algorithm-1 tiling (%s, n=%lld, %d cores)\n"
      "paper: \"the closer the number of iterations is to the number of "
      "cores, the smaller will be the [JNI] overhead\"\n\n",
      flags.get("benchmark").c_str(), static_cast<long long>(n), cores);
  std::printf("%10s %8s %14s %14s %12s\n", "tiles", "tasks", "jni-core-sec",
              "sched-window", "job-time");

  std::vector<int64_t> tile_counts = {0, static_cast<int64_t>(cores) * 2,
                                      n / 2, n};
  tile_counts.erase(std::unique(tile_counts.begin(), tile_counts.end()),
                    tile_counts.end());
  for (int64_t tiles : tile_counts) {
    CloudRunConfig config;
    config.benchmark = flags.get("benchmark");
    config.n = n;
    config.dedicated_cores = cores;
    config.explicit_tiles = tiles;
    auto run = run_on_cloud(config);
    if (!run.ok()) {
      std::fprintf(stderr, "%s\n", run.status().to_string().c_str());
      return 1;
    }
    const auto& job = run->report.job;
    std::printf("%10s %8d %14s %14s %12s\n",
                tiles == 0 ? "auto(=C)" : std::to_string(tiles).c_str(),
                job.tasks, format_duration(job.jni_core_seconds).c_str(),
                format_duration(job.map_collect_seconds).c_str(),
                format_duration(job.job_seconds).c_str());
  }
  std::printf(
      "\nauto(=C) is Algorithm 1: one JNI call per dedicated core; the\n"
      "untiled run (tiles = n) pays one JNI call per loop iteration.\n");
  return 0;
}

}  // namespace
}  // namespace ompcloud::bench

int main(int argc, const char** argv) { return ompcloud::bench::run(argc, argv); }
