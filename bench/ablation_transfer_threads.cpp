// Ablation: parallel transfer threads in the cloud plugin.
//
// §III-A: "Our cloud plugin automatically creates a new thread for
// transmitting each offloaded data". This bench bounds that pool from 1 to
// per-buffer and shows the latency effect: request latencies and
// compression overlap, while the shared WAN still caps throughput.
#include <cstdio>

#include "bench/harness.h"
#include "support/flags.h"
#include "support/strings.h"

namespace ompcloud::bench {
namespace {

int run(int argc, const char** argv) {
  FlagSet flags("Parallel transfer-thread ablation");
  flags.define("benchmark", "3mm", "benchmark (3mm maps four inputs)")
      .define_int("n", 448, "real problem dimension")
      .define_int("cores", 64, "dedicated worker cores");
  if (Status parsed = flags.parse(argc, argv); !parsed.is_ok()) {
    return parsed.code() == StatusCode::kFailedPrecondition ? 0 : 1;
  }
  const int64_t n = flags.get_int("n");

  std::printf(
      "Ablation: plugin transfer threads (%s, n=%lld, dense)\n"
      "0 = one thread per offloaded buffer (paper default)\n\n",
      flags.get("benchmark").c_str(), static_cast<long long>(n));
  std::printf("%9s %12s %12s %14s\n", "threads", "upload", "download", "total");

  for (int threads : {1, 2, 4, 0}) {
    CloudRunConfig config;
    config.benchmark = flags.get("benchmark");
    config.n = n;
    config.dedicated_cores = static_cast<int>(flags.get_int("cores"));
    config.plugin.transfer_threads = threads;
    auto run = run_on_cloud(config);
    if (!run.ok()) {
      std::fprintf(stderr, "%s\n", run.status().to_string().c_str());
      return 1;
    }
    std::printf("%9s %12s %12s %14s\n",
                threads == 0 ? "per-buf" : std::to_string(threads).c_str(),
                format_duration(run->report.upload_seconds).c_str(),
                format_duration(run->report.download_seconds).c_str(),
                format_duration(run->report.total_seconds).c_str());
  }
  std::printf(
      "\nparallel transfers overlap compression and per-object request\n"
      "latency; the WAN remains the shared bottleneck (fair-shared link).\n");
  return 0;
}

}  // namespace
}  // namespace ompcloud::bench

int main(int argc, const char** argv) { return ompcloud::bench::run(argc, argv); }
