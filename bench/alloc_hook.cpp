// Counting replacements for the global operator new/delete family (see
// alloc_hook.h). malloc-backed so the hook composes with any libc;
// counting uses a relaxed atomic — benches are single-threaded and only
// need a total, not ordering.
#include "bench/alloc_hook.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace ompcloud::bench {
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

bool alloc_hook_active() noexcept {
#ifdef OMPCLOUD_BENCH_COUNT_ALLOCS
  return true;
#else
  return false;
#endif
}

std::uint64_t alloc_count() noexcept {
  return g_allocs.load(std::memory_order_relaxed);
}

std::uint64_t alloc_reset() noexcept {
  return g_allocs.exchange(0, std::memory_order_relaxed);
}

}  // namespace ompcloud::bench

#ifdef OMPCLOUD_BENCH_COUNT_ALLOCS

namespace {

void* counted_alloc(std::size_t size) {
  ompcloud::bench::g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  return std::malloc(size);
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  ompcloud::bench::g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  return std::aligned_alloc(align, rounded);
}

}  // namespace

void* operator new(std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  if (void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align)))
    return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  if (void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align)))
    return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t, std::size_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t, std::size_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // OMPCLOUD_BENCH_COUNT_ALLOCS
