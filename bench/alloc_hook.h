// Global allocation counter for substrate benchmarks.
//
// Linking `alloc_hook.cpp` into a binary replaces the global operator
// new/delete family with malloc-backed versions that count every
// allocation, so "zero heap allocations per event in steady state" is an
// asserted number, not an eyeballed one. The hook is bench-only: it is
// never linked into the libraries or tests, and it is compiled out
// entirely when OMPCLOUD_BENCH_COUNT_ALLOCS is OFF (the TU then provides
// the same API reporting a disabled state, so callers need no #ifdefs).
#pragma once

#include <cstdint>

namespace ompcloud::bench {

/// True when the counting operator new/delete replacements are active in
/// this binary (OMPCLOUD_BENCH_COUNT_ALLOCS was ON at build time).
bool alloc_hook_active() noexcept;

/// Number of heap allocations (all operator-new forms) since the last
/// alloc_reset(). Always 0 when the hook is inactive.
std::uint64_t alloc_count() noexcept;

/// Resets the counter; returns the count it had accumulated.
std::uint64_t alloc_reset() noexcept;

}  // namespace ompcloud::bench
