#!/usr/bin/env python3
"""Bench regression gate: compare a fresh bench JSON against the committed
baseline and fail only when a headline metric moved in the *bad* direction
by more than the tolerance.

Usage:
    check_regression.py <baseline.json> <current.json> [--tolerance 0.05]

Understands both bench schemas in this repo:
  - BENCH_offload.json: {"runs": [{"label", "report": {"seconds", ...}}]}
  - BENCH_elastic.json: [{"label", "makespan_seconds", "cost_usd", ...}]

Virtual-time metrics are deterministic, so they get the tight default
tolerance. Wall-clock throughput metrics (THROUGHPUT_FLOOR: substrate
events/sec, tasks/sec) are noisy on shared CI runners, so they are gated
as a *floor*: the gate fails only when current drops below
(1 - floor-tolerance) x baseline (default 0.7x), and never nags about
baseline staleness on improvements.

Improvements never fail the gate (they print a hint to refresh the
baseline); labels present in the baseline must stay present.
"""

import argparse
import json
import sys

# Gated metrics and the direction that counts as a regression.
LOWER_IS_BETTER = (
    "seconds.total",
    "makespan_seconds",
    "instance_seconds",
    "cost_usd",
    "p99_seconds",
    "cost_per_request_usd",
    "allocs_per_event",
    "allocs_per_task",
)
HIGHER_IS_BETTER = (
    "throughput_per_hour",
    "completed",
)
# Wall-clock substrate throughput: higher is better, but gated only as a
# noise-tolerant floor (see module docstring). `allocs_per_event` and
# `allocs_per_task` ride in LOWER_IS_BETTER with a zero baseline, which
# makes the steady-state zero-allocation claim a hard gate.
THROUGHPUT_FLOOR = (
    "events_per_sec",
    "tasks_per_sec",
)


def flatten(prefix, value, out):
    if isinstance(value, dict):
        for key, child in value.items():
            flatten(f"{prefix}.{key}" if prefix else key, child, out)
    elif isinstance(value, (int, float)) and not isinstance(value, bool):
        out[prefix] = float(value)


def load_records(path):
    """Returns {label: {metric: value}} for either bench schema."""
    with open(path) as f:
        data = json.load(f)
    rows = data["runs"] if isinstance(data, dict) else data
    records = {}
    for row in rows:
        metrics = {}
        flatten("", row, metrics)
        records[row["label"]] = metrics
    return records


def gated(metric):
    if any(metric.endswith(name) for name in LOWER_IS_BETTER):
        return "lower"
    if any(metric.endswith(name) for name in HIGHER_IS_BETTER):
        return "higher"
    if any(metric.endswith(name) for name in THROUGHPUT_FLOOR):
        return "floor"
    return None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=0.05,
                        help="allowed fractional slack (default 5%%)")
    parser.add_argument("--floor-tolerance", type=float, default=0.3,
                        help="allowed fractional drop for THROUGHPUT_FLOOR "
                             "metrics before the gate fails (default 30%%, "
                             "i.e. fail below 0.7x baseline)")
    args = parser.parse_args()

    baseline = load_records(args.baseline)
    current = load_records(args.current)

    failures = []
    improvements = 0
    checked = 0
    for label, base_metrics in baseline.items():
        if label not in current:
            failures.append(f"[{label}] missing from current results")
            continue
        cur_metrics = current[label]
        for metric, base in base_metrics.items():
            direction = gated(metric)
            if direction is None or metric not in cur_metrics:
                continue
            cur = cur_metrics[metric]
            checked += 1
            if direction == "floor":
                floor = base * (1.0 - args.floor_tolerance)
                if cur < floor:
                    failures.append(
                        f"[{label}] {metric}: {cur:.6g} below floor "
                        f"{floor:.6g} ({1.0 - args.floor_tolerance:.0%} of "
                        f"baseline {base:.6g})")
                continue
            slack = abs(base) * args.tolerance
            if direction == "lower":
                regressed = cur > base + slack
                improved = cur < base - slack
            else:
                regressed = cur < base - slack
                improved = cur > base + slack
            if regressed:
                failures.append(
                    f"[{label}] {metric}: {cur:.6g} vs baseline {base:.6g} "
                    f"({direction} is better, tolerance "
                    f"{args.tolerance:.0%})")
            elif improved:
                improvements += 1
                print(f"note: [{label}] {metric} improved: "
                      f"{cur:.6g} vs baseline {base:.6g}")

    for failure in failures:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    print(f"{args.current}: {checked} metrics checked against "
          f"{args.baseline}: {len(failures)} regression(s), "
          f"{improvements} improvement(s)")
    if improvements and not failures:
        print("baseline is stale on the improved metrics; consider "
              "refreshing bench/baseline/")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
