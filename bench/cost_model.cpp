// Cost analysis: on-the-fly instance lifecycle vs an always-on cluster.
//
// §III-A: "the EC2 instance can be started when offloading the code and
// stopped after it ends ... allowing him/her to pay for just the amount of
// computational resources used". The paper's abstract promises "a thorough
// analysis of the performance and costs involved in cloud offloading" —
// this bench regenerates that trade-off: $ per offload and wall time, with
// and without on-the-fly provisioning, across cluster sizes.
#include <cstdio>

#include "bench/harness.h"
#include "support/flags.h"
#include "support/strings.h"

namespace ompcloud::bench {
namespace {

int run(int argc, const char** argv) {
  FlagSet flags("Cloud offloading cost model");
  flags.define("benchmark", "2mm", "benchmark to price")
      .define_int("n", 448, "real problem dimension");
  if (Status parsed = flags.parse(argc, argv); !parsed.is_ok()) {
    return parsed.code() == StatusCode::kFailedPrecondition ? 0 : 1;
  }
  const int64_t n = flags.get_int("n");

  std::printf(
      "Cost model: %s at paper scale (c3.8xlarge @ $1.68/h on-demand)\n\n",
      flags.get("benchmark").c_str());
  std::printf("%6s %10s | %12s %10s | %12s %10s %8s\n", "cores", "mode",
              "wall-time", "$offload", "speedup-$", "$/hr-used", "boot");

  double single_core_usd = 0;
  for (int cores : {8, 64, 256}) {
    for (bool on_the_fly : {false, true}) {
      CloudRunConfig config;
      config.benchmark = flags.get("benchmark");
      config.n = n;
      config.dedicated_cores = cores;
      config.cluster.on_the_fly = on_the_fly;
      auto run = run_on_cloud(config);
      if (!run.ok()) {
        std::fprintf(stderr, "%s\n", run.status().to_string().c_str());
        return 1;
      }
      const auto& report = run->report;
      if (single_core_usd == 0) {
        // Reference: the same virtual work on one rented core.
        double t1 = static_cast<double>(run->total_flops) /
                    cloud::SimProfile::paper_scale(n).core_flops;
        single_core_usd = t1 / 3600.0 * (1.68 / 16.0);
      }
      double hours = (report.total_seconds + report.boot_seconds) / 3600.0;
      std::printf("%6d %10s | %12s %9.2f$ | %11.2fx %9.2f$ %7s\n", cores,
                  on_the_fly ? "on-the-fly" : "always-on",
                  format_duration(report.total_seconds).c_str(),
                  report.cost_usd, single_core_usd / report.cost_usd,
                  report.cost_usd / hours,
                  format_duration(report.boot_seconds).c_str());
    }
  }
  std::printf(
      "\nalways-on meters the whole 17-instance cluster during the offload;\n"
      "on-the-fly adds ~45 s boot but bills nothing before or after.\n"
      "speedup-$ compares against renting a single core for the serial run.\n");
  return 0;
}

}  // namespace
}  // namespace ompcloud::bench

int main(int argc, const char** argv) { return ompcloud::bench::run(argc, argv); }
