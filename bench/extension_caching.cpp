// Extension bench: data caching across repeated offloads.
//
// The paper's conclusion: "In the future, we plan to implement data caching
// to limit the cost of host-target communications." This bench implements
// that future work and measures it: an iterative workload re-offloads the
// same kernel with one large invariant input (the matrix) and a small
// changing one, with and without the cache.
#include <cmath>
#include <cstdio>

#include "omp/target_region.h"
#include "omptarget/cloud_plugin.h"
#include "support/flags.h"
#include "support/strings.h"
#include "workload/generators.h"

using namespace ompcloud;

namespace {

// y = A x, the inner step of power iteration: A is invariant across
// iterations, x changes every round.
Status MatVecBody(int64_t n, const jni::KernelArgs& args) {
  auto a = args.input<float>(0);
  auto x = args.input<float>(1);
  auto y = args.output<float>(0);
  for (int64_t i = args.begin; i < args.end; ++i) {
    float acc = 0.0f;
    for (int64_t k = 0; k < n; ++k) acc += a[i * n + k] * x[k];
    y[i] = acc;
  }
  return Status::ok();
}

int run(int argc, const char** argv) {
  FlagSet flags("Data-caching extension: iterative offloads (paper future work)");
  flags.define_int("n", 448, "matrix dimension (stands for 16384)")
      .define_int("rounds", 4, "offload iterations");
  if (Status parsed = flags.parse(argc, argv); !parsed.is_ok()) {
    return parsed.code() == StatusCode::kFailedPrecondition ? 0 : 1;
  }
  const int64_t n = flags.get_int("n");
  const int rounds = static_cast<int>(flags.get_int("rounds"));

  std::printf(
      "Extension: data caching for iterative offloading (power iteration,\n"
      "y = A*x repeated %d times; A ~1 GiB invariant, x changes per round)\n\n",
      rounds);
  std::printf("%8s %6s | %12s %12s %14s\n", "cache", "round", "upload",
              "total", "bytes-uploaded");

  for (bool cache : {false, true}) {
    sim::Engine engine;
    cloud::ClusterSpec spec;
    cloud::Cluster cluster(engine, spec, cloud::SimProfile::paper_scale(n));
    omptarget::CloudPluginOptions options;
    options.cache_data = cache;
    omptarget::DeviceManager devices(engine);
    int cloud_id = devices.register_device(
        std::make_unique<omptarget::CloudPlugin>(cluster, spark::SparkConf{},
                                                 options));

    auto a = workload::make_matrix({static_cast<size_t>(n),
                                    static_cast<size_t>(n), false, 5});
    std::vector<float> x(static_cast<size_t>(n), 1.0f);
    std::vector<float> y(static_cast<size_t>(n), 0.0f);

    double total_upload = 0, total_time = 0;
    for (int round = 0; round < rounds; ++round) {
      omp::TargetRegion region(devices, "power-iteration");
      region.device(cloud_id);
      auto av = region.map_to("A", a.data(), a.size());
      auto xv = region.map_to("x", x.data(), x.size());
      auto yv = region.map_from("y", y.data(), y.size());
      region.parallel_for(n)
          .read_partitioned(av, omp::rows<float>(n))
          .read(xv)
          .write_partitioned(yv, omp::rows<float>(1))
          .cost_flops(2.0 * static_cast<double>(n))
          .body("matvec", [n](const jni::KernelArgs& args) {
            return MatVecBody(n, args);
          });
      auto report = omp::offload_blocking(engine, region);
      if (!report.ok()) {
        std::fprintf(stderr, "%s\n", report.status().to_string().c_str());
        return 1;
      }
      total_upload += report->upload_seconds;
      total_time += report->total_seconds;
      std::printf("%8s %6d | %12s %12s %14s\n", cache ? "on" : "off", round,
                  format_duration(report->upload_seconds).c_str(),
                  format_duration(report->total_seconds).c_str(),
                  format_bytes(report->uploaded_plain_bytes).c_str());
      // Next round: normalize-ish update of x (so x really changes).
      float norm = 0;
      for (float value : y) norm += value * value;
      norm = std::sqrt(norm);
      for (size_t i = 0; i < x.size(); ++i) x[i] = y[i] / (norm + 1e-9f);
    }
    std::printf("%8s  total | %12s %12s\n\n", cache ? "on" : "off",
                format_duration(total_upload).c_str(),
                format_duration(total_time).c_str());
  }
  std::printf(
      "with caching, rounds 1..%d skip re-uploading the invariant matrix A\n"
      "(content-hash check) and only ship the updated vector x.\n",
      rounds - 1);
  return 0;
}

}  // namespace

int main(int argc, const char** argv) { return run(argc, argv); }
