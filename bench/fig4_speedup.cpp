// Figure 4 reproduction: "Average speedup of multicore over single core
// execution for cloud offloading, and for multi-threaded OpenMP as
// reference."
//
// One chart block per benchmark (4a-4h), plotting, against dedicated worker
// cores {8,16,32,64,128,256}:
//   * OmpThread            — plain OpenMP threads on one 16-core node
//                            (only 8/16: "the largest c3 has 16 cores")
//   * OmpCloud-full        — whole offload incl. host<->cloud transfers
//   * OmpCloud-spark       — Spark job only (storage->driver->workers->storage)
//   * OmpCloud-computation — parallel map-task compute time only
// All speedups are over the single-threaded single-core execution time.
//
// The footer checks the §IV narrative claims (overheads at one worker, peak
// speedups at 256 cores, Spark-overhead growth).
#include <cstdio>
#include <map>
#include <vector>

#include "bench/harness.h"
#include "support/flags.h"
#include "support/strings.h"

namespace ompcloud::bench {
namespace {

struct SeriesPoint {
  double full = 0, spark = 0, computation = 0;  // seconds
};

int run(int argc, const char** argv) {
  FlagSet flags("Reproduces Fig. 4 of 'The Cloud as an OpenMP Offloading Device'");
  flags.define("benchmark", "", "run only this benchmark (default: all 8)")
      .define_int("n", 448, "real problem dimension (stands for 16384)")
      .define_bool("sparse", false, "use sparse (95% zero) inputs")
      .define_bool("verify", false, "verify offloaded results vs reference")
      .define("cores", "8,16,32,64,128,256", "dedicated-core sweep");
  if (Status parsed = flags.parse(argc, argv); !parsed.is_ok()) {
    return parsed.code() == StatusCode::kFailedPrecondition ? 0 : 1;
  }

  const int64_t n = flags.get_int("n");
  const bool sparse = flags.get_bool("sparse");
  std::vector<int> core_counts;
  for (const auto& piece : split(flags.get("cores"), ',')) {
    core_counts.push_back(static_cast<int>(parse_int(piece).value_or(0)));
  }
  std::vector<std::string> benchmarks = kernels::benchmark_names();
  if (!flags.get("benchmark").empty()) benchmarks = {flags.get("benchmark")};

  cloud::SimProfile profile = cloud::SimProfile::paper_scale(n);

  std::printf(
      "Figure 4 — speedup over single-core execution\n"
      "simulated cluster: 16 x c3.8xlarge (16 cores each), Spark-model, "
      "spark.task.cpus=2\n"
      "real n=%lld stands for %d (%s ~1 GiB matrices); %s f32 data\n\n",
      static_cast<long long>(n), 16384, format_bytes(16384ull * 16384 * 4).c_str(),
      sparse ? "sparse" : "dense");

  // Collected for the summary footer.
  std::map<std::string, std::map<int, SeriesPoint>> all_series;
  std::map<std::string, double> t1_by_benchmark;
  std::map<std::string, double> omp16_by_benchmark;

  const char* chart = "abcdefgh";
  int chart_index = 0;
  for (const std::string& benchmark : benchmarks) {
    auto t1 = run_on_host(benchmark, n, sparse, 1, profile);
    if (!t1.ok()) {
      std::fprintf(stderr, "T1 %s: %s\n", benchmark.c_str(),
                   t1.status().to_string().c_str());
      return 1;
    }
    auto t8 = run_on_host(benchmark, n, sparse, 8, profile);
    auto t16 = run_on_host(benchmark, n, sparse, 16, profile);
    if (!t8.ok() || !t16.ok()) return 1;
    t1_by_benchmark[benchmark] = *t1;
    omp16_by_benchmark[benchmark] = *t16;

    std::printf("-- Fig 4%c  %-14s (single-core: %s) --\n",
                chart[chart_index % 8], benchmark.c_str(),
                format_duration(*t1).c_str());
    std::printf("%6s %10s %14s %15s %21s\n", "cores", "OmpThread",
                "OmpCloud-full", "OmpCloud-spark", "OmpCloud-computation");

    for (int cores : core_counts) {
      CloudRunConfig config;
      config.benchmark = benchmark;
      config.n = n;
      config.sparse = sparse;
      config.dedicated_cores = cores;
      config.verify = flags.get_bool("verify");
      config.profile = profile;
      auto run = run_on_cloud(config);
      if (!run.ok()) {
        std::fprintf(stderr, "%s @%d cores: %s\n", benchmark.c_str(), cores,
                     run.status().to_string().c_str());
        return 1;
      }
      const auto& report = run->report;
      SeriesPoint point{report.total_seconds, report.job.job_seconds,
                        report.job.computation_seconds()};
      all_series[benchmark][cores] = point;

      std::string omp_thread = "-";
      if (cores == 8) omp_thread = speedup_str(*t1, *t8);
      if (cores == 16) omp_thread = speedup_str(*t1, *t16);
      std::printf("%6d %10s %14s %15s %21s\n", cores, omp_thread.c_str(),
                  speedup_str(*t1, point.full).c_str(),
                  speedup_str(*t1, point.spark).c_str(),
                  speedup_str(*t1, point.computation).c_str());
    }
    std::printf("\n");
    ++chart_index;
  }

  if (benchmarks.size() < 2) return 0;

  // ---- §IV narrative claims ------------------------------------------------
  std::printf("-- §IV claim checks --\n");
  // (a/b/c) overheads at 16 cores (one worker) vs OmpThread-16, averaged.
  double comp_overhead = 0, spark_overhead = 0, full_overhead = 0;
  for (const auto& benchmark : benchmarks) {
    const auto& point = all_series[benchmark][16];
    double omp16 = omp16_by_benchmark[benchmark];
    comp_overhead += point.computation / omp16 - 1.0;
    spark_overhead += point.spark / omp16 - 1.0;
    full_overhead += point.full / omp16 - 1.0;
  }
  auto count = static_cast<double>(benchmarks.size());
  std::printf(
      "one-worker (16-core) overhead vs OmpThread-16  "
      "(paper: 1.8%% / 8.8%% / 13.6%%):\n"
      "  computation %+5.1f%%   spark %+5.1f%%   full %+5.1f%%\n",
      100 * comp_overhead / count, 100 * spark_overhead / count,
      100 * full_overhead / count);

  // Peak speedups at 256 cores (paper: up to 143x/97x/86x, 3MM & 2MM).
  double best_comp = 0, best_spark = 0, best_full = 0;
  std::string best_name;
  for (const auto& benchmark : benchmarks) {
    const auto& point = all_series[benchmark][256];
    double t1 = t1_by_benchmark[benchmark];
    if (t1 / point.full > best_full) {
      best_full = t1 / point.full;
      best_spark = t1 / point.spark;
      best_comp = t1 / point.computation;
      best_name = benchmark;
    }
  }
  std::printf(
      "peak speedups at 256 cores (paper: 143x/97x/86x):\n"
      "  %s: computation %.0fx, spark %.0fx, full %.0fx\n",
      best_name.c_str(), best_comp, best_spark, best_full);

  // Spark-overhead share growth 8 -> 256 cores (paper: collinear-list
  // 0.1%->15%, SYRK 17%->69%).
  for (const char* benchmark : {"collinear-list", "syrk"}) {
    if (!all_series.count(benchmark)) continue;
    const auto& series = all_series[benchmark];
    auto share = [&](int cores) {
      const auto& point = series.at(cores);
      return 100.0 * (point.spark - point.computation) / point.spark;
    };
    std::printf("%s spark-overhead share: %.1f%% @8 -> %.1f%% @256 cores\n",
                benchmark, share(8), share(256));
  }
  return 0;
}

}  // namespace
}  // namespace ompcloud::bench

int main(int argc, const char** argv) {
  return ompcloud::bench::run(argc, argv);
}
