// Figure 5 reproduction: "Average load distribution of cloud offloading
// according to the total number of worker cores and the data type."
//
// For every benchmark (5a-5h), for sparse and dense inputs, the offload
// wall time is decomposed into the paper's three bars:
//   host-target communication  (compression + WAN transfers, steps 2/8)
//   Spark overhead             (submit, scheduling, intra-cluster comm)
//   computation                (parallel map-task execution)
// The key §IV findings this regenerates: computation shrinks with cores
// while both overheads stay ~constant; dense data inflates both overheads
// but not computation; collinear-list's overheads are negligible.
#include <cstdio>
#include <map>
#include <vector>

#include "bench/harness.h"
#include "support/flags.h"
#include "support/strings.h"

namespace ompcloud::bench {
namespace {

struct Breakdown {
  double host_target = 0;
  double spark_overhead = 0;
  double computation = 0;
  [[nodiscard]] double total() const {
    return host_target + spark_overhead + computation;
  }
};

Breakdown decompose(const CloudRunResult& run) {
  Breakdown out;
  if (run.analysis.has_value()) {
    // The phase slices partition the offload's wall interval by the highest-
    // priority span covering each instant, so the three bars always sum to
    // the wall time — per-phase report fields count sibling phases that run
    // concurrently under overlap-transfers and can exceed 100% when summed.
    for (const trace::PhaseSlice& slice : run.analysis->phases) {
      if (slice.phase == "upload" || slice.phase == "download" ||
          slice.phase == "cleanup") {
        out.host_target += slice.seconds;
      } else if (slice.phase == "compute") {
        out.computation += slice.seconds;
      } else {
        // boot, submit, shutdown, other, idle: scheduling + cluster-side
        // machinery — the paper's "Spark overhead" bar.
        out.spark_overhead += slice.seconds;
      }
    }
    return out;
  }
  out.host_target = run.report.host_target_seconds();
  out.computation = run.report.job.computation_seconds();
  out.spark_overhead =
      run.report.total_seconds - out.host_target - out.computation;
  return out;
}

int run(int argc, const char** argv) {
  FlagSet flags("Reproduces Fig. 5 of 'The Cloud as an OpenMP Offloading Device'");
  flags.define("benchmark", "", "run only this benchmark (default: all 8)")
      .define_int("n", 448, "real problem dimension (stands for 16384)")
      .define("cores", "8,32,128,256", "dedicated-core sweep");
  if (Status parsed = flags.parse(argc, argv); !parsed.is_ok()) {
    return parsed.code() == StatusCode::kFailedPrecondition ? 0 : 1;
  }
  const int64_t n = flags.get_int("n");
  std::vector<int> core_counts;
  for (const auto& piece : split(flags.get("cores"), ',')) {
    core_counts.push_back(static_cast<int>(parse_int(piece).value_or(0)));
  }
  std::vector<std::string> benchmarks = kernels::benchmark_names();
  if (!flags.get("benchmark").empty()) benchmarks = {flags.get("benchmark")};

  cloud::SimProfile profile = cloud::SimProfile::paper_scale(n);

  std::printf(
      "Figure 5 — load distribution of cloud offloading\n"
      "bars: host-target communication | Spark overhead | computation\n"
      "real n=%lld stands for 16384 (~1 GiB matrices)\n\n",
      static_cast<long long>(n));

  // footer aggregates
  double dense_overhead_sum = 0, sparse_overhead_sum = 0;
  double dense_comp_sum = 0, sparse_comp_sum = 0;
  std::map<std::string, Breakdown> collinear_rows;

  const char* chart = "abcdefgh";
  int chart_index = 0;
  for (const std::string& benchmark : benchmarks) {
    std::printf("-- Fig 5%c  %s --\n", chart[chart_index % 8], benchmark.c_str());
    std::printf("%7s %6s | %14s %14s %14s | %10s\n", "data", "cores",
                "host-target", "spark-ovh", "computation", "total");
    for (bool sparse : {true, false}) {
      for (int cores : core_counts) {
        CloudRunConfig config;
        config.benchmark = benchmark;
        config.n = n;
        config.sparse = sparse;
        config.dedicated_cores = cores;
        config.profile = profile;
        auto run = run_on_cloud(config);
        if (!run.ok()) {
          std::fprintf(stderr, "%s: %s\n", benchmark.c_str(),
                       run.status().to_string().c_str());
          return 1;
        }
        Breakdown b = decompose(*run);
        std::printf("%7s %6d | %9s %3.0f%% %9s %3.0f%% %9s %3.0f%% | %10s\n",
                    sparse ? "sparse" : "dense", cores,
                    format_duration(b.host_target).c_str(),
                    100 * b.host_target / b.total(),
                    format_duration(b.spark_overhead).c_str(),
                    100 * b.spark_overhead / b.total(),
                    format_duration(b.computation).c_str(),
                    100 * b.computation / b.total(),
                    format_duration(run->report.total_seconds).c_str());

        if (cores == 8) {
          (sparse ? sparse_overhead_sum : dense_overhead_sum) +=
              b.host_target + b.spark_overhead;
          (sparse ? sparse_comp_sum : dense_comp_sum) += b.computation;
          if (benchmark == "collinear-list" && !sparse) {
            collinear_rows[benchmark] = b;
          }
        }
      }
    }
    std::printf("\n");
    ++chart_index;
  }

  if (benchmarks.size() < 2) return 0;
  std::printf("-- §IV claim checks --\n");
  std::printf(
      "dense vs sparse at 8 cores (paper: overheads rise substantially on "
      "dense, computation barely moves):\n"
      "  overheads: dense/sparse = %.2fx    computation: dense/sparse = %.2fx\n",
      dense_overhead_sum / sparse_overhead_sum, dense_comp_sum / sparse_comp_sum);
  if (collinear_rows.count("collinear-list")) {
    const Breakdown& b = collinear_rows["collinear-list"];
    std::printf(
        "collinear-list comm+scheduling share at 8 cores (paper: negligible): "
        "%.2f%%\n",
        100 * (b.host_target + b.spark_overhead) / b.total());
  }
  return 0;
}

}  // namespace
}  // namespace ompcloud::bench

int main(int argc, const char** argv) {
  return ompcloud::bench::run(argc, argv);
}
