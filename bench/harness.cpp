#include "bench/harness.h"

#include <cstdio>

#include "omptarget/host_plugin.h"
#include "support/strings.h"
#include "trace/export.h"
#include "trace/tracer.h"

namespace ompcloud::bench {

Result<CloudRunResult> run_on_cloud(const CloudRunConfig& config) {
  return run_on_cloud_with_injectors(config, nullptr, nullptr);
}

Result<CloudRunResult> run_on_cloud_with_injectors(
    const CloudRunConfig& config, spark::SparkContext::TaskFaultInjector faults,
    spark::SparkContext::TaskSlowdownInjector slowdowns) {
  sim::Engine engine;
  cloud::SimProfile profile = config.profile.has_value()
                                  ? *config.profile
                                  : cloud::SimProfile::paper_scale(
                                        config.n, config.virtual_n);
  cloud::ClusterSpec cluster_spec = config.cluster;
  cluster_spec.workers = config.workers;
  cloud::Cluster cluster(engine, cluster_spec, profile);

  spark::SparkConf conf = config.spark;
  conf.with_dedicated_cores(config.dedicated_cores);

  omptarget::DeviceManager devices(engine);
  trace::ScopedLogCapture log_capture(devices.tracer());
  auto plugin = std::make_unique<omptarget::CloudPlugin>(cluster, conf,
                                                         config.plugin);
  if (faults) plugin->spark_context().set_task_fault_injector(std::move(faults));
  if (slowdowns) {
    plugin->spark_context().set_task_slowdown_injector(std::move(slowdowns));
  }
  int cloud_id = devices.register_device(std::move(plugin));

  OC_ASSIGN_OR_RETURN(auto benchmark, kernels::make_benchmark(config.benchmark));
  kernels::Benchmark::Options options;
  options.n = config.n;
  options.sparse = config.sparse;
  benchmark->prepare(options);

  omp::TargetRegion region(devices, config.benchmark);
  region.device(cloud_id);
  OC_RETURN_IF_ERROR(benchmark->build_region(region));
  if (config.explicit_tiles > 0) region.set_explicit_tiles(config.explicit_tiles);

  OC_ASSIGN_OR_RETURN(auto report, omp::offload_blocking(engine, region));
  if (report.fell_back_to_host) {
    return internal_error("bench run unexpectedly fell back to host");
  }
  if (!config.trace_path.empty()) {
    OC_RETURN_IF_ERROR(trace::write_chrome_json(
        devices.tracer(), config.trace_path,
        "\"report\": " + report.to_json(2)));
  }

  CloudRunResult result;
  result.report = std::move(report);
  result.total_flops = benchmark->total_flops();
  trace::TraceAnalyzer analyzer(devices.tracer());
  std::vector<trace::OffloadAnalysis> analyses = analyzer.analyze_all();
  if (!analyses.empty()) result.analysis = std::move(analyses.front());
  if (config.verify) {
    benchmark->run_reference();
    result.max_error = benchmark->max_error();
    if (result.max_error != 0.0) {
      return internal_error(config.benchmark + ": offloaded result diverged");
    }
  }
  return result;
}

Result<double> run_on_host(const std::string& benchmark_name, int64_t n,
                           bool sparse, int threads,
                           const cloud::SimProfile& profile) {
  sim::Engine engine;
  omptarget::DeviceManager devices(engine);
  // A c3-class node running plain multi-threaded OpenMP: cloud core rate.
  devices.set_host_device(std::make_unique<omptarget::HostPlugin>(
      engine, "omp-thread", threads, profile.core_flops));

  OC_ASSIGN_OR_RETURN(auto benchmark, kernels::make_benchmark(benchmark_name));
  kernels::Benchmark::Options options;
  options.n = n;
  options.sparse = sparse;
  benchmark->prepare(options);

  omp::TargetRegion region(devices, benchmark_name);
  region.device(omptarget::DeviceManager::host_device_id());
  OC_RETURN_IF_ERROR(benchmark->build_region(region));
  OC_ASSIGN_OR_RETURN(auto report, omp::offload_blocking(engine, region));
  return report.total_seconds;
}

std::string speedup_str(double baseline_seconds, double seconds) {
  if (seconds <= 0) return "-";
  return str_format("%.1fx", baseline_seconds / seconds);
}

void BenchJson::add(const std::string& label,
                    const omptarget::OffloadReport& report,
                    const omptarget::CloudPlugin::CacheStats* cache,
                    const trace::OffloadAnalysis* analysis) {
  std::string record =
      str_format("    {\n      \"label\": \"%s\",\n      \"report\": %s",
                 label.c_str(), report.to_json(6).c_str());
  if (cache != nullptr) {
    record += ",\n      \"cache\": " + cache->to_json();
  }
  if (analysis != nullptr) {
    record += ",\n      \"analysis\": " + analysis->to_json(6);
  }
  record += "\n    }";
  records_.push_back(std::move(record));
}

bool BenchJson::flush() const {
  std::FILE* file = std::fopen(path_.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path_.c_str());
    return false;
  }
  std::fputs("{\n  \"runs\": [\n", file);
  for (size_t i = 0; i < records_.size(); ++i) {
    std::fputs(records_[i].c_str(), file);
    std::fputs(i + 1 < records_.size() ? ",\n" : "\n", file);
  }
  std::fputs("  ]\n}\n", file);
  bool ok = std::fclose(file) == 0;
  if (ok) std::printf("wrote %s (%zu runs)\n", path_.c_str(), records_.size());
  return ok;
}

}  // namespace ompcloud::bench
