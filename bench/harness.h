// Shared harness for the figure/ablation benches: builds a fresh simulated
// cluster per run, offloads one paper benchmark, and returns the timing
// decomposition. Each run uses the paper-scale SimProfile so that n-sized
// real buffers stand in for the paper's 16384^2 (~1 GB) matrices.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "kernels/benchmark.h"
#include "omptarget/cloud_plugin.h"
#include "support/status.h"
#include "trace/analysis.h"

namespace ompcloud::bench {

struct CloudRunConfig {
  std::string benchmark = "gemm";
  int64_t n = 512;           ///< real problem dimension
  int64_t virtual_n = 16384; ///< paper's dimension the run stands for
  bool sparse = false;
  int dedicated_cores = 16;  ///< paper's x-axis (spark.cores.max / 2)
  int workers = 16;          ///< paper: 16 c3.8xlarge workers
  bool verify = false;       ///< also run the serial reference (slow)
  /// 0 = Algorithm-1 default; >0 forces that many tiles per loop.
  int64_t explicit_tiles = 0;
  spark::SparkConf spark;
  omptarget::CloudPluginOptions plugin;
  cloud::ClusterSpec cluster;
  /// Profile override; default is SimProfile::paper_scale(n, virtual_n).
  std::optional<cloud::SimProfile> profile;
  /// When non-empty, the run's span tree is written here as Chrome
  /// trace-event JSON (with the OffloadReport spliced in as `"report"`).
  std::string trace_path;
};

struct CloudRunResult {
  omptarget::OffloadReport report;
  uint64_t total_flops = 0;
  double max_error = 0;  ///< only meaningful when config.verify
  /// In-process trace analysis of the offload (phases, critical path,
  /// skew, transfer overlap, cost) — the "live mode" of `octrace`.
  std::optional<trace::OffloadAnalysis> analysis;
};

/// Offloads one benchmark to a fresh simulated cluster. Deterministic.
Result<CloudRunResult> run_on_cloud(const CloudRunConfig& config);

/// Same, with failure/straggler injection hooks (either may be null).
Result<CloudRunResult> run_on_cloud_with_injectors(
    const CloudRunConfig& config, spark::SparkContext::TaskFaultInjector faults,
    spark::SparkContext::TaskSlowdownInjector slowdowns);

/// OmpThread reference: the same benchmark with `threads` plain OpenMP
/// threads on one cloud-class node (c3 cores at the scaled rate).
/// Returns the virtual execution time in seconds.
Result<double> run_on_host(const std::string& benchmark, int64_t n,
                           bool sparse, int threads,
                           const cloud::SimProfile& profile);

/// Formats "123.4x" style speedups.
std::string speedup_str(double baseline_seconds, double seconds);

/// Accumulates per-run records and writes one machine-readable JSON file
/// (e.g. `BENCH_offload.json`) so downstream tooling can diff runs without
/// scraping the human-readable tables. Each record carries the per-phase
/// timing decomposition, plain/wire byte counts, and (when given) the
/// plugin's cache counters.
class BenchJson {
 public:
  explicit BenchJson(std::string path) : path_(std::move(path)) {}

  void add(const std::string& label, const omptarget::OffloadReport& report,
           const omptarget::CloudPlugin::CacheStats* cache = nullptr,
           const trace::OffloadAnalysis* analysis = nullptr);

  /// Writes the accumulated records as one JSON array. Returns false on IO
  /// failure (already reported to stderr).
  bool flush() const;

 private:
  std::string path_;
  std::vector<std::string> records_;
};

}  // namespace ompcloud::bench
