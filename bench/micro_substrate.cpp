// Google-benchmark microbenchmarks of the substrates: codec throughput,
// event-engine throughput, fair-share link arithmetic, object-store
// round-trips, and a small end-to-end Spark job. These measure the real
// CPU cost of the simulator itself (events/sec, MB/s), not virtual time.
#include <benchmark/benchmark.h>

#include "bench/alloc_hook.h"
#include "cloud/cluster.h"
#include "compress/codec.h"
#include "compress/payload.h"
#include "jnibridge/bridge.h"
#include "spark/context.h"
#include "support/random.h"

namespace ompcloud {
namespace {

// Reports heap allocations per work item for the substrate benchmarks, so
// the zero-alloc steady-state claim is a number in the bench output rather
// than a belief. Fresh-engine-per-iteration fixtures include setup cost
// (slab carving, bucket growth); the hard zero gate lives in
// substrate_gate.cpp, which measures a warm engine.
void report_allocs(benchmark::State& state, uint64_t items) {
  if (!bench::alloc_hook_active() || items == 0) return;
  state.counters["allocs_per_item"] = benchmark::Counter(
      static_cast<double>(bench::alloc_count()) / static_cast<double>(items));
}

ByteBuffer make_input(size_t size, double zero_fraction, uint64_t seed) {
  Xoshiro256 rng(seed);
  ByteBuffer buf(size);
  auto view = buf.mutable_view();
  for (size_t i = 0; i < size; ++i) {
    view[i] = rng.chance(zero_fraction)
                  ? std::byte{0}
                  : static_cast<std::byte>(rng.next() & 0xff);
  }
  return buf;
}

void BM_GzLiteCompress(benchmark::State& state) {
  compress::GzLiteCodec codec;
  ByteBuffer input =
      make_input(static_cast<size_t>(state.range(0)),
                 state.range(1) ? 0.95 : 0.0, 42);
  for (auto _ : state) {
    auto out = codec.compress(input.view());
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
  state.SetLabel(state.range(1) ? "sparse" : "dense");
}
BENCHMARK(BM_GzLiteCompress)->Args({1 << 16, 0})->Args({1 << 16, 1})
    ->Args({1 << 20, 0})->Args({1 << 20, 1});

void BM_GzLiteDecompress(benchmark::State& state) {
  compress::GzLiteCodec codec;
  ByteBuffer input = make_input(1 << 20, 0.95, 43);
  auto compressed = codec.compress(input.view());
  for (auto _ : state) {
    auto out = codec.decompress(compressed->view());
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * (1 << 20));
}
BENCHMARK(BM_GzLiteDecompress);

void BM_RleCompressSparse(benchmark::State& state) {
  compress::RleCodec codec;
  ByteBuffer input = make_input(1 << 20, 0.95, 44);
  for (auto _ : state) {
    auto out = codec.compress(input.view());
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * (1 << 20));
}
BENCHMARK(BM_RleCompressSparse);

void BM_EngineEventThroughput(benchmark::State& state) {
  bench::alloc_reset();
  for (auto _ : state) {
    sim::Engine engine;
    const int events = static_cast<int>(state.range(0));
    for (int i = 0; i < events; ++i) {
      engine.schedule_at(static_cast<double>(i % 97), [] {});
    }
    engine.run();
    benchmark::DoNotOptimize(engine.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  report_allocs(state, static_cast<uint64_t>(state.iterations()) *
                           static_cast<uint64_t>(state.range(0)));
}
BENCHMARK(BM_EngineEventThroughput)->Arg(10000);

void BM_CoroutineSpawnJoin(benchmark::State& state) {
  bench::alloc_reset();
  for (auto _ : state) {
    sim::Engine engine;
    sim::CpuPool pool(engine, 16);
    for (int i = 0; i < state.range(0); ++i) {
      engine.spawn(pool.run(0.001 * (i % 7)));
    }
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  report_allocs(state, static_cast<uint64_t>(state.iterations()) *
                           static_cast<uint64_t>(state.range(0)));
}
BENCHMARK(BM_CoroutineSpawnJoin)->Arg(1000);

void BM_LinkFairShare(benchmark::State& state) {
  // N concurrent flows on one link: stresses the O(flows) settle/reschedule.
  for (auto _ : state) {
    sim::Engine engine;
    net::Link link(engine, "l", 1e9, 0.0);
    for (int i = 0; i < state.range(0); ++i) {
      engine.spawn(link.transfer(1000 + 13 * i));
    }
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LinkFairShare)->Arg(64)->Arg(512);

void BM_ObjectStorePutGet(benchmark::State& state) {
  sim::Engine engine;
  net::Network network(engine);
  net::Link& up = network.add_link("up", 1e9, 0.0001);
  net::Link& down = network.add_link("down", 1e9, 0.0001);
  network.set_route("host", "s3", {&up});
  network.set_route("s3", "host", {&down});
  storage::ObjectStore store(network, "s3", storage::s3_profile());
  (void)store.create_bucket("b");
  ByteBuffer payload = make_input(1 << 16, 0.5, 45);
  for (auto _ : state) {
    engine.spawn([](storage::ObjectStore* store, ByteBuffer payload)
                     -> sim::Co<void> {
      (void)co_await store->put("host", "b", "k", std::move(payload));
      auto got = co_await store->get("host", "b", "k");
      benchmark::DoNotOptimize(got);
    }(&store, ByteBuffer(payload.view())));
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_ObjectStorePutGet);

Status MicroKernel(const jni::KernelArgs& args) {
  auto in = args.input<float>(0);
  auto out = args.output<float>(0);
  for (int64_t i = args.begin; i < args.end; ++i) out[i] = in[i] + 1.0f;
  return Status::ok();
}
const jni::KernelRegistrar kMicroReg("micro.kernel", MicroKernel);

void BM_SparkSmallJobEndToEnd(benchmark::State& state) {
  // Full driver->workers->driver round trip of a small job: measures the
  // simulator's per-job real cost (the figure benches run hundreds).
  for (auto _ : state) {
    sim::Engine engine;
    cloud::ClusterSpec spec;
    spec.workers = 4;
    cloud::Cluster cluster(engine, spec, cloud::SimProfile{});
    spark::SparkContext context(cluster, spark::SparkConf{});
    (void)cluster.store().create_bucket("b");

    const int64_t n = 256;
    std::vector<float> x(n, 1.0f);
    auto framed = compress::encode_payload("gzlite", as_bytes_of(x.data(), n));
    engine.spawn([](cloud::Cluster* cluster, ByteBuffer framed) -> sim::Co<void> {
      (void)co_await cluster->store().put("host", "b", "x.bin",
                                          std::move(framed));
    }(&cluster, std::move(*framed)));
    engine.run();

    spark::JobSpec job;
    job.bucket = "b";
    job.vars = {{"x", n * 4, true, false, {}}, {"y", n * 4, false, true, {}}};
    spark::LoopSpec loop;
    loop.kernel = "micro.kernel";
    loop.iterations = n;
    loop.flops_per_iteration = 1;
    loop.reads = {{0, spark::LoopAccess::Mode::kReadPartitioned,
                   spark::AffineRange::rows(4), {}}};
    loop.writes = {{1, spark::LoopAccess::Mode::kWritePartitioned,
                    spark::AffineRange::rows(4), {}}};
    job.loops.push_back(loop);

    engine.spawn([](spark::SparkContext* context, spark::JobSpec job)
                     -> sim::Co<void> {
      auto metrics = co_await context->run_job(std::move(job));
      benchmark::DoNotOptimize(metrics);
    }(&context, std::move(job)));
    engine.run();
  }
}
BENCHMARK(BM_SparkSmallJobEndToEnd);

void BM_Fnv1a(benchmark::State& state) {
  ByteBuffer input = make_input(1 << 20, 0.0, 46);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fnv1a(input.view()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * (1 << 20));
}
BENCHMARK(BM_Fnv1a);

}  // namespace
}  // namespace ompcloud

BENCHMARK_MAIN();
