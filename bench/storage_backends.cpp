// Comparison: cloud storage backends (S3 / HDFS / Azure profiles).
//
// §III-A: "we also support data offloading to HDFS, Amazon Simple Storage
// Service (S3) and Microsoft Azure Storage". The backends differ in
// control-plane latency (HTTPS/auth handshakes vs bare RPC), which shows up
// in the host-target bar — especially for benchmarks with several mapped
// buffers.
#include <cstdio>

#include "bench/harness.h"
#include "support/flags.h"
#include "support/strings.h"

namespace ompcloud::bench {
namespace {

int run(int argc, const char** argv) {
  FlagSet flags("Storage-backend comparison (S3 vs HDFS vs Azure)");
  flags.define("benchmark", "3mm", "benchmark (four mapped inputs)")
      .define_int("n", 448, "real problem dimension")
      .define_int("cores", 128, "dedicated worker cores");
  if (Status parsed = flags.parse(argc, argv); !parsed.is_ok()) {
    return parsed.code() == StatusCode::kFailedPrecondition ? 0 : 1;
  }
  const int64_t n = flags.get_int("n");

  std::printf("Storage backends (%s, n=%lld, dense, %lld cores)\n\n",
              flags.get("benchmark").c_str(), static_cast<long long>(n),
              static_cast<long long>(flags.get_int("cores")));
  std::printf("%8s %10s | %10s %12s %12s %12s\n", "backend", "provider",
              "upload", "job-time", "download", "total");

  struct Backend {
    const char* storage;
    const char* provider;
  };
  for (const Backend& backend :
       {Backend{"s3", "ec2"}, Backend{"hdfs", "private"},
        Backend{"azure", "azure"}}) {
    CloudRunConfig config;
    config.benchmark = flags.get("benchmark");
    config.n = n;
    config.dedicated_cores = static_cast<int>(flags.get_int("cores"));
    config.cluster.storage_type = backend.storage;
    config.cluster.provider = backend.provider;
    auto run = run_on_cloud(config);
    if (!run.ok()) {
      std::fprintf(stderr, "%s: %s\n", backend.storage,
                   run.status().to_string().c_str());
      return 1;
    }
    const auto& report = run->report;
    std::printf("%8s %10s | %10s %12s %12s %12s\n", backend.storage,
                backend.provider,
                format_duration(report.upload_seconds).c_str(),
                format_duration(report.job.job_seconds).c_str(),
                format_duration(report.download_seconds).c_str(),
                format_duration(report.total_seconds).c_str());
  }
  std::printf(
      "\nat GiB scale the WAN bandwidth dominates and the backends converge.\n"
      "The control-plane difference shows at interactive scale (small\n"
      "objects, unscaled profile):\n\n");
  std::printf("%8s | %12s %12s\n", "backend", "upload", "host-target");
  for (const char* storage : {"s3", "hdfs", "azure"}) {
    CloudRunConfig config;
    config.benchmark = flags.get("benchmark");
    config.n = 96;                      // KiB-scale objects
    config.profile = cloud::SimProfile{};  // unscaled: latency-dominated
    config.dedicated_cores = static_cast<int>(flags.get_int("cores"));
    config.cluster.storage_type = storage;
    auto run = run_on_cloud(config);
    if (!run.ok()) {
      std::fprintf(stderr, "%s\n", run.status().to_string().c_str());
      return 1;
    }
    std::printf("%8s | %12s %12s\n", storage,
                format_duration(run->report.upload_seconds).c_str(),
                format_duration(run->report.host_target_seconds()).c_str());
  }
  std::printf(
      "\nHDFS's bare-RPC requests beat S3/Azure's HTTPS+auth handshakes when\n"
      "objects are small; the paper's MB-GB objects hide this entirely.\n");
  return 0;
}

}  // namespace
}  // namespace ompcloud::bench

int main(int argc, const char** argv) { return ompcloud::bench::run(argc, argv); }
