// CI perf gate for the simulation substrate (see .github/workflows/ci.yml
// `perf-gate` job). Measures steady-state wall-clock throughput of the two
// hot substrate paths — raw event dispatch and coroutine spawn/join — and
// *asserts* the allocation story instead of eyeballing it:
//
//   * zero heap allocations per event / per task once warm (counted by the
//     global new/delete hook in alloc_hook.cpp), and
//   * observed recycling in the event-node pool and the coroutine frame
//     arena (the steady state must run on recycled memory, not on a slab
//     bump pointer that merely postpones the allocations).
//
// Emits build/BENCH_substrate.json in the repo's bench row schema;
// bench/check_regression.py gates `events_per_sec` / `tasks_per_sec` as
// noise-tolerant floors and `allocs_per_*` as hard zeroes against
// bench/baseline/BENCH_substrate.json. No google-benchmark dependency:
// the gate needs warmup/measure phases with the *same* engine (steady
// state), which the fixture-per-iteration benchmark loop can't express.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "bench/alloc_hook.h"
#include "sim/engine.h"

namespace ompcloud {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct GateRow {
  std::string label;
  double per_sec = 0;
  const char* per_sec_key = "events_per_sec";
  const char* per_alloc_key = "allocs_per_event";
  double allocs_per_item = 0;
  std::uint64_t items = 0;
  double wall_seconds = 0;
};

int g_failures = 0;

void expect(bool ok, const std::string& what) {
  if (!ok) {
    ++g_failures;
    std::cerr << "FAIL: " << what << "\n";
  }
}

// One wave of the raw-event workload: the micro_substrate event-throughput
// shape (cycling timestamps, empty callables) scheduled relative to the
// engine's current time so waves can repeat on one warm engine.
void run_event_wave(sim::Engine& engine, int events) {
  const sim::SimTime base = engine.now();
  for (int i = 0; i < events; ++i) {
    engine.schedule_at(base + static_cast<double>(i % 97), [] {});
  }
  engine.run();
}

GateRow measure_raw_events() {
  constexpr int kWave = 10000;
  constexpr int kWarmupWaves = 10;
  constexpr int kMeasuredWaves = 100;

  sim::Engine engine;
  for (int w = 0; w < kWarmupWaves; ++w) run_event_wave(engine, kWave);

  const auto pool_before = engine.event_pool_stats();
  bench::alloc_reset();
  const auto start = Clock::now();
  for (int w = 0; w < kMeasuredWaves; ++w) run_event_wave(engine, kWave);
  const double elapsed = seconds_since(start);
  const std::uint64_t allocs = bench::alloc_count();
  const auto pool_after = engine.event_pool_stats();

  GateRow row;
  row.label = "raw-events";
  row.items = static_cast<std::uint64_t>(kWave) * kMeasuredWaves;
  row.wall_seconds = elapsed;
  row.per_sec = static_cast<double>(row.items) / elapsed;
  row.allocs_per_item =
      static_cast<double>(allocs) / static_cast<double>(row.items);

  if (bench::alloc_hook_active()) {
    expect(allocs == 0, "raw-events steady state allocated " +
                            std::to_string(allocs) + " times (want 0)");
  }
  expect(pool_after.fresh == pool_before.fresh,
         "raw-events steady state carved fresh event nodes");
  expect(pool_after.recycled > pool_before.recycled,
         "raw-events steady state did not recycle event nodes");
  return row;
}

// One wave of the spawn/join workload: the micro_substrate coroutine shape
// (CpuPool tasks with cycling durations).
void run_spawn_wave(sim::Engine& engine, sim::CpuPool& pool, int tasks) {
  for (int i = 0; i < tasks; ++i) {
    engine.spawn(pool.run(0.001 * (i % 7)));
  }
  engine.run();
}

GateRow measure_spawn_join() {
  constexpr int kWave = 1000;
  constexpr int kWarmupWaves = 10;
  constexpr int kMeasuredWaves = 100;

  sim::Engine engine;
  sim::CpuPool pool(engine, 16);
  for (int w = 0; w < kWarmupWaves; ++w) run_spawn_wave(engine, pool, kWave);

  const auto arena_before = sim::detail::FrameArena::stats();
  bench::alloc_reset();
  const auto start = Clock::now();
  for (int w = 0; w < kMeasuredWaves; ++w) run_spawn_wave(engine, pool, kWave);
  const double elapsed = seconds_since(start);
  const std::uint64_t allocs = bench::alloc_count();
  const auto arena_after = sim::detail::FrameArena::stats();

  GateRow row;
  row.label = "spawn-join";
  row.per_sec_key = "tasks_per_sec";
  row.per_alloc_key = "allocs_per_task";
  row.items = static_cast<std::uint64_t>(kWave) * kMeasuredWaves;
  row.wall_seconds = elapsed;
  row.per_sec = static_cast<double>(row.items) / elapsed;
  row.allocs_per_item =
      static_cast<double>(allocs) / static_cast<double>(row.items);

  if (bench::alloc_hook_active()) {
    expect(allocs == 0, "spawn-join steady state allocated " +
                            std::to_string(allocs) + " times (want 0)");
  }
  expect(arena_after.fresh == arena_before.fresh,
         "spawn-join steady state carved fresh arena blocks");
  expect(arena_after.reused > arena_before.reused,
         "spawn-join steady state did not recycle coroutine frames");
  return row;
}

void write_json(const std::string& path, const GateRow& events,
                const GateRow& tasks) {
  std::ofstream out(path);
  auto emit = [&out](const GateRow& row, bool last) {
    out << "  {\"label\": \"" << row.label << "\", \"" << row.per_sec_key
        << "\": " << static_cast<std::uint64_t>(row.per_sec) << ", \""
        << row.per_alloc_key << "\": " << row.allocs_per_item
        << ", \"items\": " << row.items
        << ", \"wall_seconds\": " << row.wall_seconds << "}"
        << (last ? "\n" : ",\n");
  };
  out << "[\n";
  emit(events, false);
  emit(tasks, true);
  out << "]\n";
}

}  // namespace
}  // namespace ompcloud

int main(int argc, char** argv) {
  using namespace ompcloud;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_substrate.json";

  if (!bench::alloc_hook_active()) {
    std::cerr << "note: allocation hook compiled out "
                 "(OMPCLOUD_BENCH_COUNT_ALLOCS=OFF); zero-alloc assertions "
                 "skipped\n";
  }

  const GateRow events = measure_raw_events();
  const GateRow tasks = measure_spawn_join();
  write_json(out_path, events, tasks);

  std::printf("raw-events: %.3fM events/s, %.4f allocs/event (%llu events)\n",
              events.per_sec / 1e6, events.allocs_per_item,
              static_cast<unsigned long long>(events.items));
  std::printf("spawn-join: %.3fM tasks/s,  %.4f allocs/task  (%llu tasks)\n",
              tasks.per_sec / 1e6, tasks.allocs_per_item,
              static_cast<unsigned long long>(tasks.items));
  std::printf("wrote %s\n", out_path.c_str());
  if (g_failures != 0) {
    std::cerr << g_failures << " substrate invariant(s) violated\n";
    return 1;
  }
  return 0;
}
