// Scaling dimension the paper holds fixed: the number of WORKER NODES at a
// constant dedicated-core count.
//
// The paper always runs 16 workers and scales spark.cores.max. Here we keep
// 128 dedicated cores and re-shape the cluster from 8 fat workers to ...
// fewer/more nodes, exposing node-level effects the core sweep hides:
// per-node NIC bandwidth for partition delivery, broadcast fan-out, and
// per-worker broadcast deserialization.
#include <cstdio>

#include "bench/harness.h"
#include "support/flags.h"
#include "support/strings.h"

namespace ompcloud::bench {
namespace {

int run(int argc, const char** argv) {
  FlagSet flags("Worker-count scaling at a fixed dedicated-core count");
  flags.define("benchmark", "gemm", "benchmark to run")
      .define_int("n", 448, "real problem dimension")
      .define_int("cores", 128, "dedicated cores, held constant");
  if (Status parsed = flags.parse(argc, argv); !parsed.is_ok()) {
    return parsed.code() == StatusCode::kFailedPrecondition ? 0 : 1;
  }
  const int64_t n = flags.get_int("n");
  const int cores = static_cast<int>(flags.get_int("cores"));

  std::printf(
      "Worker scaling (%s, n=%lld, %d dedicated cores on every row)\n\n",
      flags.get("benchmark").c_str(), static_cast<long long>(n), cores);
  std::printf("%8s %12s %12s | %12s %12s %12s\n", "workers", "cores/node",
              "broadcast", "distribute", "map+collect", "job-time");

  for (int workers : {8, 16, 32}) {
    for (auto mode : {net::BroadcastMode::kBitTorrent,
                      net::BroadcastMode::kUnicast}) {
      CloudRunConfig config;
      config.benchmark = flags.get("benchmark");
      config.n = n;
      config.workers = workers;
      config.dedicated_cores = cores;
      config.spark.broadcast_mode = mode;
      auto run = run_on_cloud(config);
      if (!run.ok()) {
        std::fprintf(stderr, "%s\n", run.status().to_string().c_str());
        return 1;
      }
      const auto& job = run->report.job;
      std::printf("%8d %12d %12s | %12s %12s %12s\n", workers,
                  cores / workers,
                  mode == net::BroadcastMode::kBitTorrent ? "bittorrent"
                                                          : "unicast",
                  format_duration(job.distribute_seconds).c_str(),
                  format_duration(job.map_collect_seconds).c_str(),
                  format_duration(job.job_seconds).c_str());
    }
  }
  std::printf(
      "\nwith TorrentBroadcast the node count barely matters: the driver's\n"
      "NIC (one copy out) is the distribution bottleneck at every shape.\n"
      "Naive unicast degrades linearly in the node count — Spark's\n"
      "BitTorrent choice (paper SIII-B) is what keeps the row flat.\n");
  return 0;
}

}  // namespace
}  // namespace ompcloud::bench

int main(int argc, const char** argv) { return ompcloud::bench::run(argc, argv); }
