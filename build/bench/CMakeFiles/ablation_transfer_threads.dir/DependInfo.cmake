
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_transfer_threads.cpp" "bench/CMakeFiles/ablation_transfer_threads.dir/ablation_transfer_threads.cpp.o" "gcc" "bench/CMakeFiles/ablation_transfer_threads.dir/ablation_transfer_threads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/oc_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/oc_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/oc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/omp/CMakeFiles/oc_omp.dir/DependInfo.cmake"
  "/root/repo/build/src/omptarget/CMakeFiles/oc_omptarget.dir/DependInfo.cmake"
  "/root/repo/build/src/spark/CMakeFiles/oc_spark.dir/DependInfo.cmake"
  "/root/repo/build/src/jnibridge/CMakeFiles/oc_jni.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/oc_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/oc_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/oc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/oc_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/oc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/oc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
