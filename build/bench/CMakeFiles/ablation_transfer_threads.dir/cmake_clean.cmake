file(REMOVE_RECURSE
  "CMakeFiles/ablation_transfer_threads.dir/ablation_transfer_threads.cpp.o"
  "CMakeFiles/ablation_transfer_threads.dir/ablation_transfer_threads.cpp.o.d"
  "ablation_transfer_threads"
  "ablation_transfer_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_transfer_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
