# Empty compiler generated dependencies file for ablation_transfer_threads.
# This may be replaced when dependencies are built.
