file(REMOVE_RECURSE
  "CMakeFiles/cost_model.dir/cost_model.cpp.o"
  "CMakeFiles/cost_model.dir/cost_model.cpp.o.d"
  "cost_model"
  "cost_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
