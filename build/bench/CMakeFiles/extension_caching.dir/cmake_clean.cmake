file(REMOVE_RECURSE
  "CMakeFiles/extension_caching.dir/extension_caching.cpp.o"
  "CMakeFiles/extension_caching.dir/extension_caching.cpp.o.d"
  "extension_caching"
  "extension_caching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_caching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
