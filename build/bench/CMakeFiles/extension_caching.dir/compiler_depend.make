# Empty compiler generated dependencies file for extension_caching.
# This may be replaced when dependencies are built.
