file(REMOVE_RECURSE
  "CMakeFiles/oc_bench_harness.dir/harness.cpp.o"
  "CMakeFiles/oc_bench_harness.dir/harness.cpp.o.d"
  "liboc_bench_harness.a"
  "liboc_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oc_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
