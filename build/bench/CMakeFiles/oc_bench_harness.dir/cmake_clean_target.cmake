file(REMOVE_RECURSE
  "liboc_bench_harness.a"
)
