# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for oc_bench_harness.
