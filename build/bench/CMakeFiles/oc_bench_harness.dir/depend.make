# Empty dependencies file for oc_bench_harness.
# This may be replaced when dependencies are built.
