file(REMOVE_RECURSE
  "CMakeFiles/storage_backends.dir/storage_backends.cpp.o"
  "CMakeFiles/storage_backends.dir/storage_backends.cpp.o.d"
  "storage_backends"
  "storage_backends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
