# Empty dependencies file for storage_backends.
# This may be replaced when dependencies are built.
