file(REMOVE_RECURSE
  "CMakeFiles/worker_scaling.dir/worker_scaling.cpp.o"
  "CMakeFiles/worker_scaling.dir/worker_scaling.cpp.o.d"
  "worker_scaling"
  "worker_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/worker_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
