# Empty dependencies file for worker_scaling.
# This may be replaced when dependencies are built.
