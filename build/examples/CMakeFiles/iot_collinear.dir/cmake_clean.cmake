file(REMOVE_RECURSE
  "CMakeFiles/iot_collinear.dir/iot_collinear.cpp.o"
  "CMakeFiles/iot_collinear.dir/iot_collinear.cpp.o.d"
  "iot_collinear"
  "iot_collinear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iot_collinear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
