# Empty compiler generated dependencies file for iot_collinear.
# This may be replaced when dependencies are built.
