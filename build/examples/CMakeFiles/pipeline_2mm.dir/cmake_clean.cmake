file(REMOVE_RECURSE
  "CMakeFiles/pipeline_2mm.dir/pipeline_2mm.cpp.o"
  "CMakeFiles/pipeline_2mm.dir/pipeline_2mm.cpp.o.d"
  "pipeline_2mm"
  "pipeline_2mm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_2mm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
