# Empty compiler generated dependencies file for pipeline_2mm.
# This may be replaced when dependencies are built.
