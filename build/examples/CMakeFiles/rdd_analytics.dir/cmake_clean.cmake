file(REMOVE_RECURSE
  "CMakeFiles/rdd_analytics.dir/rdd_analytics.cpp.o"
  "CMakeFiles/rdd_analytics.dir/rdd_analytics.cpp.o.d"
  "rdd_analytics"
  "rdd_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdd_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
