# Empty dependencies file for rdd_analytics.
# This may be replaced when dependencies are built.
