file(REMOVE_RECURSE
  "CMakeFiles/sparse_covariance.dir/sparse_covariance.cpp.o"
  "CMakeFiles/sparse_covariance.dir/sparse_covariance.cpp.o.d"
  "sparse_covariance"
  "sparse_covariance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_covariance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
