# Empty compiler generated dependencies file for sparse_covariance.
# This may be replaced when dependencies are built.
