# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("compress")
subdirs("sim")
subdirs("net")
subdirs("storage")
subdirs("cloud")
subdirs("jnibridge")
subdirs("spark")
subdirs("omptarget")
subdirs("omp")
subdirs("workload")
subdirs("kernels")
