
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cloud/cluster.cpp" "src/cloud/CMakeFiles/oc_cloud.dir/cluster.cpp.o" "gcc" "src/cloud/CMakeFiles/oc_cloud.dir/cluster.cpp.o.d"
  "/root/repo/src/cloud/instance.cpp" "src/cloud/CMakeFiles/oc_cloud.dir/instance.cpp.o" "gcc" "src/cloud/CMakeFiles/oc_cloud.dir/instance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/oc_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/oc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/oc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/oc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
