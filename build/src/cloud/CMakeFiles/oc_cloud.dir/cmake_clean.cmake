file(REMOVE_RECURSE
  "CMakeFiles/oc_cloud.dir/cluster.cpp.o"
  "CMakeFiles/oc_cloud.dir/cluster.cpp.o.d"
  "CMakeFiles/oc_cloud.dir/instance.cpp.o"
  "CMakeFiles/oc_cloud.dir/instance.cpp.o.d"
  "liboc_cloud.a"
  "liboc_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oc_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
