file(REMOVE_RECURSE
  "liboc_cloud.a"
)
