# Empty compiler generated dependencies file for oc_cloud.
# This may be replaced when dependencies are built.
