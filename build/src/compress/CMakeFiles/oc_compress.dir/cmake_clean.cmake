file(REMOVE_RECURSE
  "CMakeFiles/oc_compress.dir/codec.cpp.o"
  "CMakeFiles/oc_compress.dir/codec.cpp.o.d"
  "CMakeFiles/oc_compress.dir/payload.cpp.o"
  "CMakeFiles/oc_compress.dir/payload.cpp.o.d"
  "liboc_compress.a"
  "liboc_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oc_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
