file(REMOVE_RECURSE
  "liboc_compress.a"
)
