# Empty compiler generated dependencies file for oc_compress.
# This may be replaced when dependencies are built.
