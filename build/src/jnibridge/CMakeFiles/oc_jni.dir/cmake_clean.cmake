file(REMOVE_RECURSE
  "CMakeFiles/oc_jni.dir/bridge.cpp.o"
  "CMakeFiles/oc_jni.dir/bridge.cpp.o.d"
  "liboc_jni.a"
  "liboc_jni.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oc_jni.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
