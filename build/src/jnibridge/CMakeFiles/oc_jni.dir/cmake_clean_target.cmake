file(REMOVE_RECURSE
  "liboc_jni.a"
)
