# Empty dependencies file for oc_jni.
# This may be replaced when dependencies are built.
