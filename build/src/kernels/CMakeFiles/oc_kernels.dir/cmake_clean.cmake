file(REMOVE_RECURSE
  "CMakeFiles/oc_kernels.dir/benchmark.cpp.o"
  "CMakeFiles/oc_kernels.dir/benchmark.cpp.o.d"
  "CMakeFiles/oc_kernels.dir/collinear.cpp.o"
  "CMakeFiles/oc_kernels.dir/collinear.cpp.o.d"
  "CMakeFiles/oc_kernels.dir/matrix_benchmarks.cpp.o"
  "CMakeFiles/oc_kernels.dir/matrix_benchmarks.cpp.o.d"
  "liboc_kernels.a"
  "liboc_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oc_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
