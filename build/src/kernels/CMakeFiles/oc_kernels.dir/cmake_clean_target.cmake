file(REMOVE_RECURSE
  "liboc_kernels.a"
)
