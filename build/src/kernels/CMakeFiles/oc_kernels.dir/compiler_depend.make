# Empty compiler generated dependencies file for oc_kernels.
# This may be replaced when dependencies are built.
