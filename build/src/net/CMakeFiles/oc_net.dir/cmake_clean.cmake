file(REMOVE_RECURSE
  "CMakeFiles/oc_net.dir/link.cpp.o"
  "CMakeFiles/oc_net.dir/link.cpp.o.d"
  "CMakeFiles/oc_net.dir/network.cpp.o"
  "CMakeFiles/oc_net.dir/network.cpp.o.d"
  "liboc_net.a"
  "liboc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
