file(REMOVE_RECURSE
  "liboc_net.a"
)
