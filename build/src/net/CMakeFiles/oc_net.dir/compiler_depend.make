# Empty compiler generated dependencies file for oc_net.
# This may be replaced when dependencies are built.
