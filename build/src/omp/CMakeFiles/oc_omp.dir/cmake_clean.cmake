file(REMOVE_RECURSE
  "CMakeFiles/oc_omp.dir/target_region.cpp.o"
  "CMakeFiles/oc_omp.dir/target_region.cpp.o.d"
  "liboc_omp.a"
  "liboc_omp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oc_omp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
