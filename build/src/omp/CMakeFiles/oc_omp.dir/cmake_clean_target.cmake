file(REMOVE_RECURSE
  "liboc_omp.a"
)
