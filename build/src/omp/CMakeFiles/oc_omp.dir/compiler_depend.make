# Empty compiler generated dependencies file for oc_omp.
# This may be replaced when dependencies are built.
