file(REMOVE_RECURSE
  "CMakeFiles/oc_omptarget.dir/cloud_plugin.cpp.o"
  "CMakeFiles/oc_omptarget.dir/cloud_plugin.cpp.o.d"
  "CMakeFiles/oc_omptarget.dir/device.cpp.o"
  "CMakeFiles/oc_omptarget.dir/device.cpp.o.d"
  "CMakeFiles/oc_omptarget.dir/host_plugin.cpp.o"
  "CMakeFiles/oc_omptarget.dir/host_plugin.cpp.o.d"
  "liboc_omptarget.a"
  "liboc_omptarget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oc_omptarget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
