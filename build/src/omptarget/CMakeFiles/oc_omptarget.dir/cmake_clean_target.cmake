file(REMOVE_RECURSE
  "liboc_omptarget.a"
)
