# Empty dependencies file for oc_omptarget.
# This may be replaced when dependencies are built.
