file(REMOVE_RECURSE
  "CMakeFiles/oc_sim.dir/engine.cpp.o"
  "CMakeFiles/oc_sim.dir/engine.cpp.o.d"
  "liboc_sim.a"
  "liboc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
