file(REMOVE_RECURSE
  "liboc_sim.a"
)
