# Empty dependencies file for oc_sim.
# This may be replaced when dependencies are built.
