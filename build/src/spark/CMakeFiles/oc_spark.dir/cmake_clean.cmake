file(REMOVE_RECURSE
  "CMakeFiles/oc_spark.dir/conf.cpp.o"
  "CMakeFiles/oc_spark.dir/conf.cpp.o.d"
  "CMakeFiles/oc_spark.dir/context.cpp.o"
  "CMakeFiles/oc_spark.dir/context.cpp.o.d"
  "CMakeFiles/oc_spark.dir/job.cpp.o"
  "CMakeFiles/oc_spark.dir/job.cpp.o.d"
  "CMakeFiles/oc_spark.dir/rdd.cpp.o"
  "CMakeFiles/oc_spark.dir/rdd.cpp.o.d"
  "liboc_spark.a"
  "liboc_spark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oc_spark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
