file(REMOVE_RECURSE
  "liboc_spark.a"
)
