# Empty dependencies file for oc_spark.
# This may be replaced when dependencies are built.
