file(REMOVE_RECURSE
  "CMakeFiles/oc_storage.dir/object_store.cpp.o"
  "CMakeFiles/oc_storage.dir/object_store.cpp.o.d"
  "liboc_storage.a"
  "liboc_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oc_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
