file(REMOVE_RECURSE
  "liboc_storage.a"
)
