# Empty dependencies file for oc_storage.
# This may be replaced when dependencies are built.
