file(REMOVE_RECURSE
  "CMakeFiles/oc_support.dir/bytes.cpp.o"
  "CMakeFiles/oc_support.dir/bytes.cpp.o.d"
  "CMakeFiles/oc_support.dir/config.cpp.o"
  "CMakeFiles/oc_support.dir/config.cpp.o.d"
  "CMakeFiles/oc_support.dir/flags.cpp.o"
  "CMakeFiles/oc_support.dir/flags.cpp.o.d"
  "CMakeFiles/oc_support.dir/log.cpp.o"
  "CMakeFiles/oc_support.dir/log.cpp.o.d"
  "CMakeFiles/oc_support.dir/random.cpp.o"
  "CMakeFiles/oc_support.dir/random.cpp.o.d"
  "CMakeFiles/oc_support.dir/status.cpp.o"
  "CMakeFiles/oc_support.dir/status.cpp.o.d"
  "CMakeFiles/oc_support.dir/strings.cpp.o"
  "CMakeFiles/oc_support.dir/strings.cpp.o.d"
  "liboc_support.a"
  "liboc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
