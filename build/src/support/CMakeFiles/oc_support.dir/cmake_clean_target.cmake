file(REMOVE_RECURSE
  "liboc_support.a"
)
