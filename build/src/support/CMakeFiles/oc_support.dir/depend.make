# Empty dependencies file for oc_support.
# This may be replaced when dependencies are built.
