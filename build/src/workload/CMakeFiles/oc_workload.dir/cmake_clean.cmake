file(REMOVE_RECURSE
  "CMakeFiles/oc_workload.dir/generators.cpp.o"
  "CMakeFiles/oc_workload.dir/generators.cpp.o.d"
  "liboc_workload.a"
  "liboc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
