file(REMOVE_RECURSE
  "liboc_workload.a"
)
