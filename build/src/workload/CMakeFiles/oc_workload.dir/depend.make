# Empty dependencies file for oc_workload.
# This may be replaced when dependencies are built.
