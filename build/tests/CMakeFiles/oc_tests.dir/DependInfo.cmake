
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/async_offload_test.cpp" "tests/CMakeFiles/oc_tests.dir/async_offload_test.cpp.o" "gcc" "tests/CMakeFiles/oc_tests.dir/async_offload_test.cpp.o.d"
  "/root/repo/tests/caching_test.cpp" "tests/CMakeFiles/oc_tests.dir/caching_test.cpp.o" "gcc" "tests/CMakeFiles/oc_tests.dir/caching_test.cpp.o.d"
  "/root/repo/tests/cloud_test.cpp" "tests/CMakeFiles/oc_tests.dir/cloud_test.cpp.o" "gcc" "tests/CMakeFiles/oc_tests.dir/cloud_test.cpp.o.d"
  "/root/repo/tests/compress_test.cpp" "tests/CMakeFiles/oc_tests.dir/compress_test.cpp.o" "gcc" "tests/CMakeFiles/oc_tests.dir/compress_test.cpp.o.d"
  "/root/repo/tests/differential_test.cpp" "tests/CMakeFiles/oc_tests.dir/differential_test.cpp.o" "gcc" "tests/CMakeFiles/oc_tests.dir/differential_test.cpp.o.d"
  "/root/repo/tests/kernels_test.cpp" "tests/CMakeFiles/oc_tests.dir/kernels_test.cpp.o" "gcc" "tests/CMakeFiles/oc_tests.dir/kernels_test.cpp.o.d"
  "/root/repo/tests/metrics_invariants_test.cpp" "tests/CMakeFiles/oc_tests.dir/metrics_invariants_test.cpp.o" "gcc" "tests/CMakeFiles/oc_tests.dir/metrics_invariants_test.cpp.o.d"
  "/root/repo/tests/net_test.cpp" "tests/CMakeFiles/oc_tests.dir/net_test.cpp.o" "gcc" "tests/CMakeFiles/oc_tests.dir/net_test.cpp.o.d"
  "/root/repo/tests/omptarget_test.cpp" "tests/CMakeFiles/oc_tests.dir/omptarget_test.cpp.o" "gcc" "tests/CMakeFiles/oc_tests.dir/omptarget_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/oc_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/oc_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/rdd_test.cpp" "tests/CMakeFiles/oc_tests.dir/rdd_test.cpp.o" "gcc" "tests/CMakeFiles/oc_tests.dir/rdd_test.cpp.o.d"
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/oc_tests.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/oc_tests.dir/sim_test.cpp.o.d"
  "/root/repo/tests/spark_test.cpp" "tests/CMakeFiles/oc_tests.dir/spark_test.cpp.o" "gcc" "tests/CMakeFiles/oc_tests.dir/spark_test.cpp.o.d"
  "/root/repo/tests/speculation_test.cpp" "tests/CMakeFiles/oc_tests.dir/speculation_test.cpp.o" "gcc" "tests/CMakeFiles/oc_tests.dir/speculation_test.cpp.o.d"
  "/root/repo/tests/storage_test.cpp" "tests/CMakeFiles/oc_tests.dir/storage_test.cpp.o" "gcc" "tests/CMakeFiles/oc_tests.dir/storage_test.cpp.o.d"
  "/root/repo/tests/support_test.cpp" "tests/CMakeFiles/oc_tests.dir/support_test.cpp.o" "gcc" "tests/CMakeFiles/oc_tests.dir/support_test.cpp.o.d"
  "/root/repo/tests/workload_test.cpp" "tests/CMakeFiles/oc_tests.dir/workload_test.cpp.o" "gcc" "tests/CMakeFiles/oc_tests.dir/workload_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/oc_support.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/oc_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/oc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/oc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/oc_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/oc_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/jnibridge/CMakeFiles/oc_jni.dir/DependInfo.cmake"
  "/root/repo/build/src/spark/CMakeFiles/oc_spark.dir/DependInfo.cmake"
  "/root/repo/build/src/omptarget/CMakeFiles/oc_omptarget.dir/DependInfo.cmake"
  "/root/repo/build/src/omp/CMakeFiles/oc_omp.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/oc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/oc_kernels.dir/DependInfo.cmake"
  "/root/repo/build/bench/CMakeFiles/oc_bench_harness.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
