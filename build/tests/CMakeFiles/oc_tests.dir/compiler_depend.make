# Empty compiler generated dependencies file for oc_tests.
# This may be replaced when dependencies are built.
