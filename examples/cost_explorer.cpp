// Cost explorer: pick the cheapest cluster configuration that meets a
// deadline.
//
// The paper's on-the-fly mode (§III-A) lets the programmer "pay for just
// the amount of computational resources used". This example sweeps the
// dedicated-core count for one paper-scale GEMM offload and reports the
// $/deadline frontier — the practical question a non-expert user actually
// has ("how many cores should I rent to get my result by lunch?").
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "support/flags.h"
#include "support/strings.h"

using namespace ompcloud;

int main(int argc, const char** argv) {
  FlagSet flags("Cheapest cluster configuration meeting a deadline");
  flags.define_int("n", 320, "real matrix dimension (stands for 16384)")
      .define("deadline", "10m", "latest acceptable offload wall time")
      .define("benchmark", "gemm", "kernel to price");
  if (Status parsed = flags.parse(argc, argv); !parsed.is_ok()) {
    return parsed.code() == StatusCode::kFailedPrecondition ? 0 : 1;
  }
  const int64_t n = flags.get_int("n");
  double deadline = parse_duration_seconds(flags.get("deadline")).value_or(600);

  std::printf(
      "cost explorer: %s at paper scale (~1 GiB matrices), on-the-fly EC2\n"
      "deadline: %s\n\n",
      flags.get("benchmark").c_str(), format_duration(deadline).c_str());
  std::printf("%6s %12s %10s %8s\n", "cores", "wall-time", "$offload", "meets");

  struct Option {
    int cores;
    double seconds;
    double usd;
  };
  std::vector<Option> options;
  for (int cores : {8, 16, 32, 64, 128, 256}) {
    bench::CloudRunConfig config;
    config.benchmark = flags.get("benchmark");
    config.n = n;
    config.dedicated_cores = cores;
    config.cluster.on_the_fly = true;  // billed only while offloading
    auto run = bench::run_on_cloud(config);
    if (!run.ok()) {
      std::fprintf(stderr, "%s\n", run.status().to_string().c_str());
      return 1;
    }
    Option option{cores, run->report.total_seconds, run->report.cost_usd};
    options.push_back(option);
    std::printf("%6d %12s %9.2f$ %8s\n", option.cores,
                format_duration(option.seconds).c_str(), option.usd,
                option.seconds <= deadline ? "yes" : "no");
  }

  const Option* best = nullptr;
  for (const Option& option : options) {
    if (option.seconds <= deadline && (!best || option.usd < best->usd)) {
      best = &option;
    }
  }
  if (best) {
    std::printf("\n=> cheapest configuration meeting the deadline: %d cores "
                "(%s, $%.2f)\n",
                best->cores, format_duration(best->seconds).c_str(), best->usd);
  } else {
    std::printf("\n=> no configuration meets the deadline; fastest is %d "
                "cores at %s\n",
                options.back().cores,
                format_duration(options.back().seconds).c_str());
  }
  return 0;
}
