// IoT scenario from the paper's motivation (§II): "a user that locally
// collects a large amount of data from a scientific experiment, an IoT
// sensor network or a mobile device and wants to perform some heavy
// computation on it."
//
// A field of position sensors reports 2-D readings; we look for collinear
// triples (alignment events). The computation is O(n^3) over a small input
// — exactly the high computation-to-communication ratio the paper says the
// cloud device excels at (Fig. 5h). The example also demonstrates the
// dynamic fallback: the same annotated loop runs locally when the cluster
// is down.
#include <cstdio>
#include <numeric>
#include <vector>

#include "omp/target_region.h"
#include "omptarget/cloud_plugin.h"
#include "support/flags.h"
#include "support/strings.h"
#include "workload/generators.h"

using namespace ompcloud;

namespace {

Status CollinearBody(int64_t n, const jni::KernelArgs& args) {
  auto points = args.input<float>(0);
  auto counts = args.output<int32_t>(0);
  for (int64_t i = args.begin; i < args.end; ++i) {
    int32_t count = 0;
    for (int64_t j = i + 1; j < n; ++j) {
      for (int64_t k = j + 1; k < n; ++k) {
        float cross =
            (points[2 * j] - points[2 * i]) * (points[2 * k + 1] - points[2 * i + 1]) -
            (points[2 * k] - points[2 * i]) * (points[2 * j + 1] - points[2 * i + 1]);
        if (cross < 1e-3f && cross > -1e-3f) ++count;
      }
    }
    counts[i] = count;
  }
  return Status::ok();
}

Result<omptarget::OffloadReport> detect(sim::Engine& engine,
                                        omptarget::DeviceManager& devices,
                                        int device, std::vector<float>& points,
                                        std::vector<int32_t>& counts) {
  const auto n = static_cast<int64_t>(counts.size());
  omp::TargetRegion region(devices, "alignment-scan");
  region.device(device);
  auto pv = region.map_to("points", points.data(), points.size());
  auto cv = region.map_from("counts", counts.data(), counts.size());
  region.parallel_for(n)
      .read(pv)  // every anchor pairs with arbitrary other sensors
      .write_partitioned(cv, omp::rows<int32_t>(1))
      .cost_flops(8.0 * static_cast<double>(n) * n / 6.0)
      .body("collinear", [n](const jni::KernelArgs& args) {
        return CollinearBody(n, args);
      });
  return omp::offload_blocking(engine, region);
}

}  // namespace

int main(int argc, const char** argv) {
  FlagSet flags("IoT alignment detection: offload with dynamic host fallback");
  flags.define_int("sensors", 512, "number of sensor readings");
  if (Status parsed = flags.parse(argc, argv); !parsed.is_ok()) {
    return parsed.code() == StatusCode::kFailedPrecondition ? 0 : 1;
  }
  const auto n = flags.get_int("sensors");

  sim::Engine engine;
  cloud::ClusterSpec spec;  // default: 16 x c3.8xlarge, S3
  cloud::Cluster cluster(engine, spec, cloud::SimProfile{});
  omptarget::DeviceManager devices(engine);
  int cloud_id = devices.register_device(std::make_unique<omptarget::CloudPlugin>(
      cluster, spark::SparkConf{}, omptarget::CloudPluginOptions{}));

  // ~30% of readings lie on shared survey lines: those produce the events.
  auto points = workload::make_points(static_cast<size_t>(n), 0.3, 2026);
  std::vector<int32_t> counts(static_cast<size_t>(n), 0);

  std::printf("scanning %lld sensor readings for alignment events...\n",
              static_cast<long long>(n));
  auto cloud_run = detect(engine, devices, cloud_id, points, counts);
  if (!cloud_run.ok()) {
    std::fprintf(stderr, "%s\n", cloud_run.status().to_string().c_str());
    return 1;
  }
  int64_t total = std::accumulate(counts.begin(), counts.end(), int64_t{0});
  std::printf(
      "cloud run:  %lld collinear triples; device=%s, offload %s "
      "(%s up / %s down — tiny vs compute, as in Fig. 5h)\n",
      static_cast<long long>(total), cloud_run->device_name.c_str(),
      format_duration(cloud_run->total_seconds).c_str(),
      format_bytes(cloud_run->uploaded_plain_bytes).c_str(),
      format_bytes(cloud_run->downloaded_plain_bytes).c_str());

  // Now the cluster goes away (network outage, lease expired, ...): the
  // SAME annotated code transparently runs on the laptop (Fig. 1: "if the
  // cloud is not available the computation is performed locally").
  engine.spawn([](cloud::Cluster* cluster) -> sim::Co<void> {
    (void)co_await cluster->shutdown();
  }(&cluster));
  engine.run();

  std::vector<int32_t> counts_local(static_cast<size_t>(n), 0);
  auto local_run = detect(engine, devices, cloud_id, points, counts_local);
  if (!local_run.ok()) {
    std::fprintf(stderr, "%s\n", local_run.status().to_string().c_str());
    return 1;
  }
  int64_t total_local =
      std::accumulate(counts_local.begin(), counts_local.end(), int64_t{0});
  std::printf(
      "fallback:   %lld collinear triples; device=%s (fell back: %s), %s\n",
      static_cast<long long>(total_local), local_run->device_name.c_str(),
      local_run->fell_back_to_host ? "yes" : "no",
      format_duration(local_run->total_seconds).c_str());

  if (total != total_local) {
    std::fprintf(stderr, "ERROR: cloud and local disagree!\n");
    return 1;
  }
  std::printf("cloud and local results match exactly.\n");
  return 0;
}
