// Multi-loop target region (§III-D): "our approach also supports more
// complex OpenMP constructs such as those using several parallel for loops
// within the same target region. This is implemented by performing
// successive map-reduce transformations within the Spark job."
//
// This example chains two matrix products, E = (A x B) x C, inside ONE
// target region. The intermediate `tmp` is a device-side allocation: it
// never crosses the WAN — the two loops hand it over inside the Spark job.
// A declared OpenMP reduction then computes the Frobenius norm of E in the
// same region, demonstrating reduction clauses end to end.
#include <cmath>
#include <cstdio>
#include <vector>

#include "omp/target_region.h"
#include "omptarget/cloud_plugin.h"
#include "support/flags.h"
#include "support/strings.h"
#include "workload/generators.h"

using namespace ompcloud;

namespace {

jni::LoopBodyFn matmul_body(int64_t n) {
  return [n](const jni::KernelArgs& args) {
    auto x = args.input<float>(0);
    auto y = args.input<float>(1);
    auto out = args.output<float>(0);
    for (int64_t i = args.begin; i < args.end; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        float acc = 0.0f;
        for (int64_t k = 0; k < n; ++k) acc += x[i * n + k] * y[k * n + j];
        out[i * n + j] = acc;
      }
    }
    return Status::ok();
  };
}

}  // namespace

int main(int argc, const char** argv) {
  FlagSet flags("Two chained matmuls + reduction in one target region");
  flags.define_int("n", 192, "matrix dimension");
  if (Status parsed = flags.parse(argc, argv); !parsed.is_ok()) {
    return parsed.code() == StatusCode::kFailedPrecondition ? 0 : 1;
  }
  const int64_t n = flags.get_int("n");
  const auto cells = static_cast<size_t>(n) * n;

  sim::Engine engine;
  cloud::ClusterSpec spec;
  cloud::Cluster cluster(engine, spec, cloud::SimProfile{});
  omptarget::DeviceManager devices(engine);
  int cloud_id = devices.register_device(std::make_unique<omptarget::CloudPlugin>(
      cluster, spark::SparkConf{}, omptarget::CloudPluginOptions{}));

  auto a = workload::make_matrix({static_cast<size_t>(n), static_cast<size_t>(n), false, 10});
  auto b = workload::make_matrix({static_cast<size_t>(n), static_cast<size_t>(n), false, 11});
  auto c = workload::make_matrix({static_cast<size_t>(n), static_cast<size_t>(n), false, 12});
  std::vector<float> tmp(cells, 0.0f);  // host shadow for fallback runs
  std::vector<float> e(cells, 0.0f);
  float norm_sq = 0.0f;

  omp::TargetRegion region(devices, "2mm-pipeline");
  region.device(cloud_id);
  auto A = region.map_to("A", a.data(), a.size());
  auto B = region.map_to("B", b.data(), b.size());
  auto C = region.map_to("C", c.data(), c.size());
  auto Tmp = region.map_alloc("tmp", tmp.data(), tmp.size());  // device-only
  auto E = region.map_from("E", e.data(), e.size());
  auto Norm = region.map_from("norm_sq", &norm_sq, 1);

  // Loop 1: tmp = A x B.
  region.parallel_for(n)
      .read_partitioned(A, omp::rows<float>(n))
      .read(B)
      .write_partitioned(Tmp, omp::rows<float>(n))
      .cost_flops(2.0 * static_cast<double>(n) * n)
      .body("mm1", matmul_body(n));
  // Loop 2: E = tmp x C — consumes the intermediate inside the job.
  region.parallel_for(n)
      .read_partitioned(Tmp, omp::rows<float>(n))
      .read(C)
      .write_partitioned(E, omp::rows<float>(n))
      .cost_flops(2.0 * static_cast<double>(n) * n)
      .body("mm2", matmul_body(n));
  // Loop 3: reduction(+: norm_sq) over E.
  region.parallel_for(n)
      .read_partitioned(E, omp::rows<float>(n))
      .reduction(Norm, spark::ReduceOp::kSum, spark::ElemType::kF32)
      .cost_flops(2.0 * static_cast<double>(n))
      .body("frob", [n](const jni::KernelArgs& args) {
        auto e = args.input<float>(0);
        auto acc = args.output<float>(0);
        for (int64_t i = args.begin; i < args.end; ++i) {
          for (int64_t j = 0; j < n; ++j) acc[0] += e[i * n + j] * e[i * n + j];
        }
        return Status::ok();
      });

  auto report = omp::offload_blocking(engine, region);
  if (!report.ok()) {
    std::fprintf(stderr, "offload failed: %s\n",
                 report.status().to_string().c_str());
    return 1;
  }

  // Verify against a local serial computation.
  std::vector<float> tmp_ref(cells, 0.0f), e_ref(cells, 0.0f);
  for (int64_t i = 0; i < n; ++i)
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t k = 0; k < n; ++k) acc += a[i * n + k] * b[k * n + j];
      tmp_ref[i * n + j] = acc;
    }
  for (int64_t i = 0; i < n; ++i)
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t k = 0; k < n; ++k) acc += tmp_ref[i * n + k] * c[k * n + j];
      e_ref[i * n + j] = acc;
    }
  double err = 0;
  for (size_t i = 0; i < cells; ++i) {
    err = std::max(err, std::abs(static_cast<double>(e[i]) - e_ref[i]));
  }

  std::printf(
      "E = (A x B) x C computed in one region: %zu x %zu, max |err| = %g\n"
      "Frobenius norm(E) = %.3f\n"
      "loops ran as successive map-reduces: %d tasks total, job %s\n"
      "intermediate 'tmp' stayed in the cluster: uploaded only %s "
      "(3 inputs), downloaded %s (E + norm)\n",
      static_cast<size_t>(n), static_cast<size_t>(n), err,
      std::sqrt(static_cast<double>(norm_sq)), report->job.tasks,
      format_duration(report->job.job_seconds).c_str(),
      format_bytes(report->uploaded_plain_bytes).c_str(),
      format_bytes(report->downloaded_plain_bytes).c_str());
  return err == 0.0 ? 0 : 1;
}
