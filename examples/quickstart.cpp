// Quickstart: Listing 1 of the paper — matrix multiplication offloaded to
// the cloud device.
//
//   void MatMul(float *A, float *B, float *C) {
//     #pragma omp target device(CLOUD)
//     #pragma omp map(to: A[:N*N], B[:N*N]) map(from: C[:N*N])
//     #pragma omp parallel for
//     for (int i = 0; i < N; ++i)
//       for (int j = 0; j < N; ++j) { ... }
//   }
//
// The cloud device is configured from an INI file (examples/ompcloud.ini if
// present, otherwise built-in defaults): a 16-worker EC2 Spark cluster with
// S3 storage, exactly the paper's setup. Run with --help for options.
#include <cstdio>
#include <vector>

#include <optional>

#include "omp/target_region.h"
#include "omptarget/cloud_plugin.h"
#include "omptarget/service.h"
#include "support/flags.h"
#include "support/strings.h"
#include "trace/alerts.h"
#include "trace/export.h"
#include "trace/timeseries.h"
#include "trace/tracer.h"
#include "workload/generators.h"

using namespace ompcloud;

namespace {

// The loop body that Clang would outline into the fat binary (JNI_region).
Status MatMulBody(int64_t n, const jni::KernelArgs& args) {
  auto a = args.input<float>(0);   // rows of A for this tile
  auto b = args.input<float>(1);   // all of B (broadcast)
  auto c = args.output<float>(0);  // rows of C for this tile
  for (int64_t i = args.begin; i < args.end; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t k = 0; k < n; ++k) acc += a[i * n + k] * b[k * n + j];
      c[i * n + j] = acc;
    }
  }
  return Status::ok();
}

}  // namespace

int main(int argc, const char** argv) {
  FlagSet flags("OmpCloud quickstart: Listing-1 matrix multiply on the cloud device");
  flags.define_int("n", 256, "matrix dimension")
      .define("config", "examples/ompcloud.ini", "cloud device config file");
  if (Status parsed = flags.parse(argc, argv); !parsed.is_ok()) {
    return parsed.code() == StatusCode::kFailedPrecondition ? 0 : 1;
  }
  const int64_t n = flags.get_int("n");

  // 1. Read the device configuration file (paper Fig. 2 item 4). Missing
  //    file -> built-in defaults (16 x c3.8xlarge + S3).
  Config config;
  if (auto loaded = Config::load_file(flags.get("config")); loaded.ok()) {
    config = std::move(*loaded);
    std::printf("loaded cloud config from %s\n", flags.get("config").c_str());
  } else {
    std::printf("no config file (%s), using built-in EC2 defaults\n",
                loaded.status().to_string().c_str());
  }

  // 2. Bring up the runtime: engine, device registry, cloud plugin.
  sim::Engine engine;
  omptarget::DeviceManager devices(engine);
  auto plugin = omptarget::CloudPlugin::from_config(engine, config);
  if (!plugin.ok()) {
    std::fprintf(stderr, "cloud device init failed: %s\n",
                 plugin.status().to_string().c_str());
    return 1;
  }
  const int kCloud = devices.register_device(std::move(*plugin));
  // `[trace] log-events = true` mirrors WARN/ERROR logs into the trace as
  // instant events; the capture is a no-op otherwise.
  trace::ScopedLogCapture log_capture(devices.tracer());

  // `[telemetry] enabled = true` samples every registry metric into labeled
  // time series on a virtual-time cadence and, with `[alerts]` rules, runs
  // the SLO evaluator after every sample. Disabled (the default), the
  // collector never attaches to the tools bus.
  auto telemetry_options = trace::TelemetryOptions::from_config(config);
  if (!telemetry_options.ok()) {
    std::fprintf(stderr, "bad [telemetry] config: %s\n",
                 telemetry_options.status().to_string().c_str());
    return 1;
  }
  trace::TimeSeriesCollector collector(devices.tracer(),
                                       std::move(*telemetry_options));
  if (auto rules = trace::AlertRuleSet::from_config(config); rules.ok()) {
    collector.set_alert_rules(std::move(*rules));
  } else {
    std::fprintf(stderr, "bad [alerts] config: %s\n",
                 rules.status().to_string().c_str());
    return 1;
  }

  // 3. The user program: local data, one annotated loop.
  auto a = workload::make_matrix({static_cast<size_t>(n),
                                  static_cast<size_t>(n), false, 1});
  auto b = workload::make_matrix({static_cast<size_t>(n),
                                  static_cast<size_t>(n), false, 2});
  std::vector<float> c(static_cast<size_t>(n) * n, 0.0f);

  omp::TargetRegion region(devices, "MatMul");
  region.device(kCloud);                                  // device(CLOUD)
  auto A = region.map_to("A", a.data(), a.size());        // map(to: A[:N*N])
  auto B = region.map_to("B", b.data(), b.size());        // map(to: B[:N*N])
  auto C = region.map_from("C", c.data(), c.size());      // map(from: C[:N*N])
  region.parallel_for(n)                                  // parallel for
      .read_partitioned(A, omp::rows<float>(n))           // Listing 2, line 5
      .read(B)
      .write_partitioned(C, omp::rows<float>(n))
      .cost_flops(2.0 * static_cast<double>(n) * n)
      .body("matmul", [n](const jni::KernelArgs& args) {
        return MatMulBody(n, args);
      });

  // Submit through the service layer: a Service installs the admission
  // scheduler from [service]/[scheduler] config, a Session attributes the
  // submission to a tenant (quota, FAIR share, SLO defaults).
  auto service_options = ServiceOptions::from_config(config);
  if (!service_options.ok()) {
    std::fprintf(stderr, "bad [service] config: %s\n",
                 service_options.status().to_string().c_str());
    return 1;
  }
  service_options->default_device = kCloud;
  Service service(devices, std::move(*service_options));
  Session session = service.session();

  std::optional<Result<omptarget::OffloadReport>> outcome;
  engine.spawn(
      [](Session session, omp::TargetRegion* region,
         std::optional<Result<omptarget::OffloadReport>>* out) -> sim::Co<void> {
        auto lowered = region->lower();
        if (!lowered.ok()) {
          *out = lowered.status();
          co_return;
        }
        *out = co_await session.submit(std::move(*lowered));
      }(session, &region, &outcome));
  engine.run();
  Result<omptarget::OffloadReport> report =
      outcome.value_or(Status(StatusCode::kInternal, "offload never ran"));
  if (!report.ok()) {
    std::fprintf(stderr, "offload failed: %s\n",
                 report.status().to_string().c_str());
    return 1;
  }

  // 4. C is available locally (Listing 1, line 13). Spot-check one element.
  float expect = 0.0f;
  for (int64_t k = 0; k < n; ++k) expect += a[k] * b[k * n];
  std::printf("\nC[0][0] = %.6f (expected %.6f)\n", c[0], expect);

  std::printf(
      "\noffload report (%s):\n"
      "  upload      %10s   (%s -> %s compressed)\n"
      "  submit      %10s\n"
      "  spark job   %10s   (%d tasks on %d cores)\n"
      "  download    %10s\n"
      "  total       %10s   ($%.4f metered)\n",
      report->device_name.c_str(),
      format_duration(report->upload_seconds).c_str(),
      format_bytes(report->uploaded_plain_bytes).c_str(),
      format_bytes(report->uploaded_wire_bytes).c_str(),
      format_duration(report->submit_seconds).c_str(),
      format_duration(report->job.job_seconds).c_str(), report->job.tasks,
      report->job.slots, format_duration(report->download_seconds).c_str(),
      format_duration(report->total_seconds).c_str(), report->cost_usd);

  // 5. Flush telemetry (plants the `telemetry` trace instant and writes the
  //    `.tsdb.json` / OpenMetrics files when export paths are configured),
  //    then `[trace] export = <path>`: dump the span tree for Perfetto.
  if (Status flushed = collector.finalize(); !flushed.is_ok()) {
    std::fprintf(stderr, "telemetry export failed: %s\n",
                 flushed.to_string().c_str());
    return 1;
  }
  if (collector.samples() > 0) {
    std::printf("telemetry: %llu samples over %zu series\n",
                static_cast<unsigned long long>(collector.samples()),
                collector.series().size());
  }
  trace::TraceOptions trace_options = trace::TraceOptions::from_config(config);
  if (!trace_options.export_path.empty()) {
    Status wrote = trace::write_chrome_json(devices.tracer(),
                                            trace_options.export_path,
                                            "\"report\": " + report->to_json(2));
    if (!wrote.is_ok()) {
      std::fprintf(stderr, "trace export failed: %s\n",
                   wrote.to_string().c_str());
      return 1;
    }
    std::printf("wrote %s (load it in ui.perfetto.dev)\n",
                trace_options.export_path.c_str());
  }
  return 0;
}
