// SparkLite RDD analytics: the same simulated cluster the OpenMP device
// offloads to, driven through the typed RDD facade (spark/rdd.h).
//
// Scenario: a day of noisy sensor telemetry is parallelized across the
// cluster; fused map pipelines compute calibration, filtering-by-clamping
// and summary statistics (mean / variance / extremes) with typed reduce
// actions. A Monte-Carlo pi estimate shows a compute-heavy pipeline.
#include <cmath>
#include <cstdio>
#include <vector>

#include "spark/rdd.h"
#include "support/flags.h"
#include "support/random.h"
#include "support/strings.h"

using namespace ompcloud;

int main(int argc, const char** argv) {
  FlagSet flags("RDD analytics on the simulated Spark cluster");
  flags.define_int("readings", 20000, "sensor readings to analyze")
      .define_int("samples", 50000, "Monte-Carlo samples for pi");
  if (Status parsed = flags.parse(argc, argv); !parsed.is_ok()) {
    return parsed.code() == StatusCode::kFailedPrecondition ? 0 : 1;
  }

  sim::Engine engine;
  cloud::ClusterSpec spec;
  cloud::Cluster cluster(engine, spec, cloud::SimProfile{});
  spark::RddSession session(cluster, spark::SparkConf{});

  // --- Telemetry statistics ---------------------------------------------------
  const auto n = static_cast<size_t>(flags.get_int("readings"));
  Xoshiro256 rng(7);
  std::vector<float> raw(n);
  for (float& value : raw) {
    value = static_cast<float>(20.0 + rng.normal(0.0, 4.0));  // deg C + noise
    if (rng.chance(0.002)) value = -999.0f;                   // sensor glitch
  }

  auto celsius = session.parallelize(raw).map<float>(
      [](float v) { return v < -100.0f ? 20.0f : v; });  // clamp glitches
  auto count = static_cast<double>(celsius.count());

  auto sum = celsius.sum();
  auto low = celsius.min();
  auto high = celsius.max();
  if (!sum.ok() || !low.ok() || !high.ok()) {
    std::fprintf(stderr, "reduce failed\n");
    return 1;
  }
  double mean = *sum / count;
  auto sq_sum = celsius
                    .map<double>([mean](float v) {
                      double d = v - mean;
                      return d * d;
                    })
                    .sum();
  if (!sq_sum.ok()) return 1;

  std::printf(
      "telemetry: %zu readings\n"
      "  mean %.3f degC, stddev %.3f, range [%.2f, %.2f]\n"
      "  (4 Spark jobs: chained maps fused into single stages)\n\n",
      n, mean, std::sqrt(*sq_sum / count), *low, *high);

  // --- Monte-Carlo pi ---------------------------------------------------------
  const auto samples = static_cast<size_t>(flags.get_int("samples"));
  std::vector<int64_t> seeds(samples);
  for (size_t i = 0; i < samples; ++i) seeds[i] = static_cast<int64_t>(i);

  auto hits = session.parallelize(seeds)
                  .map<int32_t>(
                      [](int64_t seed) {
                        Xoshiro256 rng(static_cast<uint64_t>(seed) * 2654435761u);
                        double x = rng.next_double(), y = rng.next_double();
                        return (x * x + y * y <= 1.0) ? 1 : 0;
                      },
                      /*flops=*/20.0)
                  .sum();
  if (!hits.ok()) {
    std::fprintf(stderr, "%s\n", hits.status().to_string().c_str());
    return 1;
  }
  double pi = 4.0 * static_cast<double>(*hits) / static_cast<double>(samples);
  std::printf("Monte-Carlo pi with %zu samples across %d workers: %.5f\n",
              samples, cluster.worker_count(), pi);
  std::printf("total Spark jobs run by this session: %d\n", session.jobs_run());
  return std::abs(pi - 3.14159) < 0.05 ? 0 : 1;
}
