// Sparse-data statistics offload: the paper's COVAR benchmark as a user
// would write it — compute the covariance matrix of a (sparse) dataset
// collected locally, with the three-stage pipeline (means, centering,
// covariance) expressed as three parallel loops in one target region.
//
// Also demonstrates the §III-D restriction: asking for an unsupported
// synchronization construct is rejected with a clear diagnostic instead of
// silently mis-executing on the distributed device.
#include <cstdio>
#include <vector>

#include "kernels/benchmark.h"
#include "omptarget/cloud_plugin.h"
#include "support/flags.h"
#include "support/strings.h"

using namespace ompcloud;

int main(int argc, const char** argv) {
  FlagSet flags("Covariance of a sparse local dataset on the cloud device");
  flags.define_int("n", 160, "dataset dimension (n x n observations)")
      .define_bool("sparse", true, "sparse dataset (95% zeros)");
  if (Status parsed = flags.parse(argc, argv); !parsed.is_ok()) {
    return parsed.code() == StatusCode::kFailedPrecondition ? 0 : 1;
  }

  sim::Engine engine;
  cloud::ClusterSpec spec;
  cloud::Cluster cluster(engine, spec, cloud::SimProfile{});
  omptarget::DeviceManager devices(engine);
  int cloud_id = devices.register_device(std::make_unique<omptarget::CloudPlugin>(
      cluster, spark::SparkConf{}, omptarget::CloudPluginOptions{}));

  auto benchmark_result = kernels::make_benchmark("covar");
  auto benchmark = std::move(benchmark_result).value();
  kernels::Benchmark::Options options;
  options.n = flags.get_int("n");
  options.sparse = flags.get_bool("sparse");
  benchmark->prepare(options);

  omp::TargetRegion region(devices, "covariance");
  region.device(cloud_id);
  if (Status built = benchmark->build_region(region); !built.is_ok()) {
    std::fprintf(stderr, "%s\n", built.to_string().c_str());
    return 1;
  }

  auto report = omp::offload_blocking(engine, region);
  if (!report.ok()) {
    std::fprintf(stderr, "offload failed: %s\n",
                 report.status().to_string().c_str());
    return 1;
  }
  benchmark->run_reference();

  std::printf(
      "covariance of a %s %lld x %lld dataset on %s\n"
      "  three loops (means -> centering -> covariance) = 3 successive "
      "map-reduces, %d tasks\n"
      "  max |err| vs serial reference: %g\n"
      "  %s dataset compressed %s -> %s for the WAN (sparse data is the "
      "paper's best case)\n"
      "  offload total %s\n\n",
      options.sparse ? "sparse" : "dense",
      static_cast<long long>(options.n), static_cast<long long>(options.n),
      report->device_name.c_str(), report->job.tasks, benchmark->max_error(),
      options.sparse ? "sparse" : "dense",
      format_bytes(report->uploaded_plain_bytes).c_str(),
      format_bytes(report->uploaded_wire_bytes).c_str(),
      format_duration(report->total_seconds).c_str());

  // §III-D: synchronization constructs cannot be offloaded to map-reduce.
  omp::TargetRegion bad(devices, "needs-barrier");
  Status rejected = bad.use(omp::Construct::kBarrier);
  std::printf("asking the cloud device for '#pragma omp barrier':\n  %s\n",
              rejected.to_string().c_str());
  return benchmark->max_error() == 0.0 ? 0 : 1;
}
