#include "cloud/autoscaler.h"

#include <algorithm>
#include <vector>

#include "cloud/cluster.h"

namespace ompcloud::cloud {

AutoscalerOptions AutoscalerOptions::from_config(const Config& config) {
  AutoscalerOptions options;
  options.enabled = config.get_bool("autoscale.enabled", options.enabled);
  options.min_workers = static_cast<int>(
      config.get_int("autoscale.min-workers", options.min_workers));
  options.max_workers = static_cast<int>(
      config.get_int("autoscale.max-workers", options.max_workers));
  options.workers_per_offload = static_cast<int>(config.get_int(
      "autoscale.workers-per-offload", options.workers_per_offload));
  options.idle_cooldown =
      config.get_duration("autoscale.idle-cooldown", options.idle_cooldown);
  options.spot_interval =
      config.get_duration("autoscale.spot-interval", options.spot_interval);
  options.spot_seed = static_cast<uint64_t>(config.get_int(
      "autoscale.spot-seed", static_cast<int64_t>(options.spot_seed)));
  return options;
}

Autoscaler::Autoscaler(Cluster& cluster, AutoscalerOptions options)
    : cluster_(&cluster),
      engine_(&cluster.engine()),
      options_(options),
      capacity_changed_(cluster.engine()),
      rng_(options.spot_seed) {
  if (options_.max_workers <= 0 ||
      options_.max_workers > cluster_->worker_count()) {
    options_.max_workers = cluster_->worker_count();
  }
  options_.min_workers =
      std::clamp(options_.min_workers, 0, options_.max_workers);
  options_.workers_per_offload =
      std::clamp(options_.workers_per_offload, 1, options_.max_workers);
  options_.idle_cooldown = std::max(0.0, options_.idle_cooldown);
  // A pre-provisioned fleet hands over to the policy: everything beyond the
  // floor is parked. At construction time (t=0) the parked instances have
  // accrued nothing, so a static cluster converts to elastic for free.
  int parked = 0;
  for (int w = cluster_->worker_count() - 1;
       w >= 0 && cluster_->running_worker_count() + cluster_->booting_worker_count() >
                     options_.min_workers;
       --w) {
    if (cluster_->worker_state(w) != InstanceState::kRunning) continue;
    (void)cluster_->stop_worker(w);
    ++parked;
  }
  if (parked > 0) {
    trace::SpanHandle span = cluster_->tracer().span("autoscale.down");
    span.add("workers", parked);
    span.end();
    emit_decision(tools::AutoscaleInfo::Kind::kScaleDown, parked);
  }
}

int Autoscaler::desired_workers() const {
  const int demand = active_ + queued_;
  return std::clamp(demand * options_.workers_per_offload,
                    options_.min_workers, options_.max_workers);
}

sim::Co<Status> Autoscaler::acquire_for_offload() {
  ++active_;
  arm_spot_timer();
  request_scale_up();
  const int needed =
      std::min(std::max(1, options_.workers_per_offload), options_.max_workers);
  while (cluster_->usable_worker_count() < needed) {
    co_await capacity_changed_;
    capacity_changed_.reset();
  }
  co_return Status::ok();
}

void Autoscaler::release_offload() {
  active_ = std::max(0, active_ - 1);
  // Only the newest release's timer survives (older ones are duplicates:
  // they would reap to the same target). New *acquires* do not cancel it —
  // reap_idle re-reads the desired size at fire time, so demand that
  // arrived during the cooldown keeps its workers.
  const uint64_t generation = ++generation_;
  engine_->schedule_after(options_.idle_cooldown,
                          [this, generation] { reap_idle(generation); });
}

void Autoscaler::set_queued_offloads(int queued) {
  queued_ = std::max(0, queued);
  if (queued_ > 0) request_scale_up();
}

void Autoscaler::request_scale_up() {
  const int target = desired_workers();
  int provisioned =
      cluster_->running_worker_count() + cluster_->booting_worker_count();
  int started = 0;
  for (int w = 0; w < cluster_->worker_count() && provisioned < target; ++w) {
    if (cluster_->worker_state(w) != InstanceState::kStopped) continue;
    ++provisioned;
    ++started;
    (void)engine_->spawn(boot_worker(w));
  }
  if (started > 0) {
    trace::SpanHandle span = cluster_->tracer().span("autoscale.up");
    span.add("workers", started);
    span.end();
    emit_decision(tools::AutoscaleInfo::Kind::kScaleUp, started);
  }
}

sim::Co<void> Autoscaler::boot_worker(int index) {
  // start_worker only fails when the slot is not stopped, which the
  // request loop already excluded; races with preemption are benign (the
  // replacement boot wins).
  (void)co_await cluster_->start_worker(index);
  capacity_changed_.trigger();
  capacity_changed_.reset();
}

void Autoscaler::reap_idle(uint64_t generation) {
  if (generation != generation_) return;  // a newer release re-armed the timer
  const int target = desired_workers();
  int removed = 0;
  for (int w = cluster_->worker_count() - 1; w >= 0; --w) {
    if (cluster_->running_worker_count() + cluster_->booting_worker_count() <=
        target) {
      break;
    }
    if (cluster_->worker_state(w) != InstanceState::kRunning) continue;
    (void)cluster_->stop_worker(w);
    ++removed;
  }
  if (removed > 0) {
    trace::SpanHandle span = cluster_->tracer().span("autoscale.down");
    span.add("workers", removed);
    span.end();
    emit_decision(tools::AutoscaleInfo::Kind::kScaleDown, removed);
  }
}

void Autoscaler::arm_spot_timer() {
  if (options_.spot_interval <= 0 || spot_armed_) return;
  spot_armed_ = true;
  engine_->schedule_after(options_.spot_interval, [this] { spot_tick(); });
}

void Autoscaler::spot_tick() {
  spot_armed_ = false;
  if (active_ <= 0) return;  // quiesce; the next acquire re-arms the market
  std::vector<int> running;
  for (int w = 0; w < cluster_->worker_count(); ++w) {
    if (cluster_->worker_usable(w)) running.push_back(w);
  }
  // Always leave one usable worker so in-flight jobs can make progress.
  if (running.size() > 1) {
    const int victim =
        running[static_cast<size_t>(rng_.next_below(running.size()))];
    cluster_->preempt_worker(victim);
    trace::SpanHandle span = cluster_->tracer().span("autoscale.preempt");
    span.add("workers", 1);
    span.end();
    emit_decision(tools::AutoscaleInfo::Kind::kPreempt, 1);
    request_scale_up();  // provision the replacement VM
  }
  arm_spot_timer();
}

void Autoscaler::emit_decision(tools::AutoscaleInfo::Kind kind, int delta) {
  tools::AutoscaleInfo info;
  info.kind = kind;
  info.delta = delta;
  info.running_workers = cluster_->running_worker_count();
  info.booting_workers = cluster_->booting_worker_count();
  info.active_offloads = active_;
  info.queued_offloads = queued_;
  info.time = engine_->now();
  cluster_->tracer().tools().emit_autoscale_decision(info);
}

}  // namespace ompcloud::cloud
