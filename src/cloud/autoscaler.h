// Elastic worker-fleet policy: the paper's §III-A on-the-fly instance
// management taken to per-VM granularity. The autoscaler grows the fleet
// when offload demand (active + queued target regions) exceeds capacity,
// reaps idle workers after a cooldown so a bursty workload pays only for
// what it used, and can optionally model spot-market preemption feeding
// the Spark task-retry fault-tolerance path.
#pragma once

#include <cstdint>

#include "sim/engine.h"
#include "support/config.h"
#include "support/random.h"
#include "support/status.h"
#include "tools/tools.h"

namespace ompcloud::cloud {

class Cluster;

struct AutoscalerOptions {
  /// Gate read by CloudPlugin::from_config; the Autoscaler itself ignores
  /// it (constructing one means elasticity is on).
  bool enabled = false;
  int min_workers = 1;        ///< floor the reaper never goes below
  int max_workers = 0;        ///< 0 = the cluster spec's worker count
  int workers_per_offload = 4;  ///< capacity target per in-flight offload
  double idle_cooldown = 60.0;  ///< seconds of idleness before reaping
  double spot_interval = 0;     ///< >0: preempt one worker this often
  uint64_t spot_seed = 42;      ///< victim-selection RNG seed

  /// Reads the `[autoscale]` section (autoscale.enabled, .min-workers,
  /// .max-workers, .workers-per-offload, .idle-cooldown, .spot-interval,
  /// .spot-seed).
  static AutoscalerOptions from_config(const Config& config);
};

class Autoscaler {
 public:
  /// Applies the policy immediately: workers beyond `min_workers` that are
  /// running when elasticity takes over are parked (at t=0 this is free).
  Autoscaler(Cluster& cluster, AutoscalerOptions options);

  [[nodiscard]] const AutoscalerOptions& options() const { return options_; }
  [[nodiscard]] int active_offloads() const { return active_; }
  [[nodiscard]] int queued_offloads() const { return queued_; }

  /// Fleet size the current demand implies: clamp((active + queued) *
  /// workers_per_offload, min, max).
  [[nodiscard]] int desired_workers() const;

  /// Called at offload start: claims capacity, requests any needed
  /// scale-up, and waits until enough workers are usable to place tasks.
  /// Boot latency therefore lands on the offload critical path when the
  /// fleet is cold and costs ~nothing when it is warm.
  [[nodiscard]] sim::Co<Status> acquire_for_offload();

  /// Called at offload end: drops the capacity claim and arms the
  /// idle-reap timer. Any acquire before the cooldown expires cancels it.
  void release_offload();

  /// Demand hint from the admission scheduler: offloads admitted but not
  /// yet dispatched also want capacity.
  void set_queued_offloads(int queued);

 private:
  void request_scale_up();
  [[nodiscard]] sim::Co<void> boot_worker(int index);
  void reap_idle(uint64_t generation);
  void arm_spot_timer();
  void spot_tick();
  void emit_decision(tools::AutoscaleInfo::Kind kind, int delta);

  Cluster* cluster_;
  sim::Engine* engine_;
  AutoscalerOptions options_;
  int active_ = 0;
  int queued_ = 0;
  uint64_t generation_ = 0;  ///< bumped on demand; stale reap timers no-op
  bool spot_armed_ = false;
  sim::Event capacity_changed_;
  Xoshiro256 rng_;
};

}  // namespace ompcloud::cloud
