#include "cloud/cluster.h"

#include <cassert>

#include "cloud/autoscaler.h"

namespace ompcloud::cloud {

SimProfile SimProfile::from_config(const Config& config) {
  SimProfile profile;
  profile.wan_up_bytes_per_sec =
      config.get_double("sim.wan-up-bps", profile.wan_up_bytes_per_sec);
  profile.wan_down_bytes_per_sec =
      config.get_double("sim.wan-down-bps", profile.wan_down_bytes_per_sec);
  profile.wan_latency = config.get_duration("sim.wan-latency", profile.wan_latency);
  profile.lan_latency = config.get_duration("sim.lan-latency", profile.lan_latency);
  profile.storage_service_bandwidth = config.get_double(
      "sim.storage-bandwidth-bps", profile.storage_service_bandwidth);
  profile.core_flops = config.get_double("sim.core-flops", profile.core_flops);
  profile.host_core_flops =
      config.get_double("sim.host-core-flops", profile.host_core_flops);
  profile.jni_call_overhead =
      config.get_duration("sim.jni-call-overhead", profile.jni_call_overhead);
  profile.task_schedule_overhead = config.get_duration(
      "sim.task-schedule-overhead", profile.task_schedule_overhead);
  profile.task_launch_latency = config.get_duration(
      "sim.task-launch-latency", profile.task_launch_latency);
  profile.job_submit_latency =
      config.get_duration("sim.job-submit-latency", profile.job_submit_latency);
  profile.result_collect_overhead = config.get_duration(
      "sim.result-collect-overhead", profile.result_collect_overhead);
  profile.driver_memory_bytes_per_sec = config.get_double(
      "sim.driver-memory-bps", profile.driver_memory_bytes_per_sec);
  profile.data_scale = config.get_double("sim.data-scale", profile.data_scale);
  profile.spark_serialization_bytes_per_sec =
      config.get_double("sim.spark-serialization-bps",
                        profile.spark_serialization_bytes_per_sec);
  return profile;
}

SimProfile SimProfile::paper_scale(int64_t real_n, int64_t virtual_n) {
  SimProfile profile;
  double ratio = static_cast<double>(virtual_n) / static_cast<double>(real_n);
  profile.data_scale = ratio * ratio;          // matrix bytes grow as n^2
  double flop_scale = ratio * ratio * ratio;   // matmul-class flops as n^3
  // Effective (not peak) throughput of the naive triple-loop kernels the
  // paper benchmarks: ~0.4 GFLOP/s/core on the Xeon E5-2680v2, ~0.3 on the
  // laptop i7. With these, the virtual single-core times land in the
  // paper's regime (Fig. 5: 10 min - 1.5 h on 8 cores).
  profile.core_flops = 0.4e9 / flop_scale;
  profile.host_core_flops = 0.3e9 / flop_scale;
  return profile;
}

double SimProfile::encode_seconds(const compress::Codec& codec,
                                  uint64_t real_bytes) const {
  double rate = codec.timing().compress_bytes_per_sec;
  if (rate <= 0) return 0;
  return static_cast<double>(real_bytes) * data_scale / rate;
}

double SimProfile::decode_seconds(const compress::Codec& codec,
                                  uint64_t real_bytes) const {
  double rate = codec.timing().decompress_bytes_per_sec;
  if (rate <= 0) return 0;
  return static_cast<double>(real_bytes) * data_scale / rate;
}

double SimProfile::reconstruct_seconds(uint64_t real_bytes) const {
  return static_cast<double>(real_bytes) * data_scale /
         driver_memory_bytes_per_sec;
}

double SimProfile::serialize_seconds(uint64_t real_bytes) const {
  if (spark_serialization_bytes_per_sec <= 0) return 0;
  return static_cast<double>(real_bytes) * data_scale /
         spark_serialization_bytes_per_sec;
}

Result<ClusterSpec> ClusterSpec::from_config(const Config& config) {
  ClusterSpec spec;
  spec.provider = config.get_string("cluster.provider", spec.provider);
  if (spec.provider != "ec2" && spec.provider != "azure" &&
      spec.provider != "private") {
    return invalid_argument("cluster.provider must be ec2|azure|private, got '" +
                            spec.provider + "'");
  }
  spec.instance_type =
      config.get_string("cluster.instance-type", spec.instance_type);
  OC_ASSIGN_OR_RETURN(InstanceType type, find_instance_type(spec.instance_type));
  (void)type;
  spec.workers = static_cast<int>(config.get_int("cluster.workers", spec.workers));
  if (spec.workers <= 0) {
    return invalid_argument("cluster.workers must be positive");
  }
  spec.storage_type = config.get_string("storage.type", spec.storage_type);
  if (spec.storage_type != "s3" && spec.storage_type != "hdfs" &&
      spec.storage_type != "azure") {
    return invalid_argument("storage.type must be s3|hdfs|azure, got '" +
                            spec.storage_type + "'");
  }
  spec.on_the_fly = config.get_bool("cluster.on-the-fly", spec.on_the_fly);
  return spec;
}

namespace {

storage::StorageProfile storage_profile_for(const std::string& type) {
  if (type == "hdfs") return storage::hdfs_profile();
  if (type == "azure") return storage::azure_profile();
  return storage::s3_profile();
}

}  // namespace

Cluster::Cluster(sim::Engine& engine, ClusterSpec spec, SimProfile profile)
    : engine_(&engine),
      spec_(std::move(spec)),
      profile_(profile),
      instance_(*find_instance_type(spec_.instance_type)),
      tracer_(std::make_shared<trace::Tracer>(engine)),
      cost_(engine),
      state_(spec_.on_the_fly ? ClusterState::kStopped
                              : ClusterState::kRunning) {
  build_topology();
  worker_state_.assign(spec_.workers, spec_.on_the_fly
                                          ? InstanceState::kStopped
                                          : InstanceState::kRunning);
  boot_epoch_.assign(spec_.workers, 0);
  if (state_ == ClusterState::kRunning) {
    // Pre-provisioned cluster: billing runs from t=0 (driver + workers).
    // Published as gauges directly (not an instance_state_change callback:
    // nothing transitioned — the fleet was already up).
    cost_.on_instances_started(spec_.workers + 1, instance_.price_per_hour);
    billed_instances_ = spec_.workers + 1;
  }
  publish_billing_gauges();
}

Cluster::~Cluster() = default;

Autoscaler& Cluster::enable_autoscaler(const AutoscalerOptions& options) {
  autoscaler_ = std::make_unique<Autoscaler>(*this, options);
  // Anchor the fleet-size timeline so analysis can integrate provisioned
  // instance-seconds from the moment elasticity took over.
  record_fleet_size();
  return *autoscaler_;
}

fault::FaultInjector* Cluster::enable_faults(const fault::FaultPlan& plan) {
  if (!plan.enabled) return nullptr;
  faults_ = std::make_unique<fault::FaultInjector>(
      plan, [this] { return engine_->now(); });
  // Every injected fault becomes a tools callback (fault.* counters via
  // MetricsTool) plus a `fault` instant in the trace. The lambda reads
  // tracer_ at fire time: DeviceManager may swap the tracer after arming.
  faults_->set_listener([this](const fault::FaultEvent& event) {
    tools::FaultEventInfo info;
    info.kind = tools::FaultEventInfo::Kind::kInjected;
    info.point = event.point;
    info.detail = event.detail;
    info.time = event.time;
    tracer_->tools().emit_fault_event(info);
    (void)tracer_->instant(
        "fault", {{"point", event.point}, {"detail", event.detail}});
  });
  network_->set_fault_injector(faults_.get());
  store_->attach_faults(faults_.get());
  return faults_.get();
}

void Cluster::set_tracer(std::shared_ptr<trace::Tracer> tracer) {
  if (tracer == nullptr) return;
  tracer_ = std::move(tracer);
  store_->set_tracer(tracer_.get());
  // The constructor published these gauges on the tracer we just replaced.
  publish_billing_gauges();
}

void Cluster::publish_billing_gauges() {
  tracer_->metrics().gauge("cluster.billing_instances").set(billed_instances_);
  tracer_->metrics().gauge("cluster.price_per_hour")
      .set(instance_.price_per_hour);
  tracer_->metrics().gauge("cluster.workers_provisioned").set(spec_.workers);
  tracer_->metrics().gauge("cluster.cores_per_worker")
      .set(instance_.physical_cores);
}

void Cluster::record_fleet_size() {
  trace::SpanHandle span = tracer_->span("cluster.workers");
  span.add("running", running_worker_count());
  span.add("booting", booting_worker_count());
  span.end();
  trace::Labels type{{"type", spec_.instance_type}};
  tracer_->metrics()
      .gauge("cluster.workers_running", type)
      .set(running_worker_count());
  tracer_->metrics()
      .gauge("cluster.workers_booting", type)
      .set(booting_worker_count());
}

std::string Cluster::worker_node(int index) const {
  assert(index >= 0 && index < spec_.workers);
  return "worker" + std::to_string(index);
}

sim::CpuPool& Cluster::worker_pool(int index) {
  assert(index >= 0 && index < static_cast<int>(worker_pools_.size()));
  return *worker_pools_[index];
}

void Cluster::build_topology() {
  network_ = std::make_unique<net::Network>(*engine_);
  net::Network& net = *network_;

  // The virtual-scale factor is applied here, once: real bytes cross links
  // whose bandwidth is divided by data_scale, so byte->seconds conversions
  // reflect the virtual problem size.
  const double scale = profile_.data_scale;
  net::Link& wan_up = net.add_link(
      "wan.up", profile_.wan_up_bytes_per_sec / scale, profile_.wan_latency);
  net::Link& wan_down = net.add_link(
      "wan.down", profile_.wan_down_bytes_per_sec / scale, profile_.wan_latency);
  net::Link& storage_in =
      net.add_link("storage.in", profile_.storage_service_bandwidth / scale,
                   profile_.lan_latency);
  net::Link& storage_out =
      net.add_link("storage.out", profile_.storage_service_bandwidth / scale,
                   profile_.lan_latency);

  auto add_node_links = [&](const std::string& node) {
    net::Link& out = net.add_link(
        node + ".out", instance_.nic_bandwidth_bps / scale, profile_.lan_latency);
    net::Link& in = net.add_link(
        node + ".in", instance_.nic_bandwidth_bps / scale, profile_.lan_latency);
    return std::make_pair(&out, &in);
  };

  auto [driver_out, driver_in] = add_node_links(driver_node());

  // Host <-> storage (Fig. 1 steps 2 and 8): bottlenecked by the WAN.
  net.set_route(host_node(), storage_node(), {&wan_up, &storage_in});
  net.set_route(storage_node(), host_node(), {&storage_out, &wan_down});
  // Host <-> driver (SSH control channel).
  net.set_route(host_node(), driver_node(), {&wan_up, driver_in});
  net.set_route(driver_node(), host_node(), {driver_out, &wan_down});
  // Driver <-> storage (Fig. 1 steps 3 and 7).
  net.set_route(driver_node(), storage_node(), {driver_out, &storage_in});
  net.set_route(storage_node(), driver_node(), {&storage_out, driver_in});

  worker_pools_.clear();
  worker_alive_.assign(spec_.workers, true);
  for (int w = 0; w < spec_.workers; ++w) {
    std::string node = worker_node(w);
    auto [out, in] = add_node_links(node);
    // Driver <-> worker (partition distribution, result collection).
    net.set_route(driver_node(), node, {driver_out, in});
    net.set_route(node, driver_node(), {out, driver_in});
    // Worker <-> storage (workers can read/write the cloud FS directly).
    net.set_route(node, storage_node(), {out, &storage_in});
    net.set_route(storage_node(), node, {&storage_out, in});
    worker_pools_.push_back(
        std::make_unique<sim::CpuPool>(*engine_, instance_.physical_cores));
  }
  driver_pool_ = std::make_unique<sim::CpuPool>(*engine_, instance_.physical_cores);
  host_pool_ = std::make_unique<sim::CpuPool>(*engine_, host_cores());

  store_ = std::make_unique<storage::ObjectStore>(
      net, storage_node(), storage_profile_for(spec_.storage_type));
  store_->set_tracer(tracer_.get());
}

sim::Co<Status> Cluster::ensure_running() {
  std::vector<int> to_boot;
  for (int w = 0; w < spec_.workers; ++w) {
    if (worker_state_[w] == InstanceState::kStopped) to_boot.push_back(w);
  }
  const bool boot_driver = state_ == ClusterState::kStopped;
  if (!boot_driver && to_boot.empty()) co_return Status::ok();
  if (faults_ != nullptr && faults_->should_fail("cloud.boot-failure",
                                                 "ensure_running")) {
    co_return unavailable("fault:cloud.boot-failure ensure_running");
  }
  const int count = static_cast<int>(to_boot.size()) + (boot_driver ? 1 : 0);
  trace::SpanHandle span =
      tracer_->span("cluster.boot", tracer_->take_ambient());
  span.tag("instance_type", spec_.instance_type);
  span.add("instances", count);
  span.add("price_per_hour", instance_.price_per_hour);
  // All instances boot in parallel; the cluster is usable when the slowest
  // is up. Billing starts at the boot request (as EC2 bills). The boots
  // counter and billing gauges derive from this callback (MetricsTool).
  cost_.on_instances_started(count, instance_.price_per_hour);
  billed_instances_ += count;
  for (int w : to_boot) {
    worker_state_[w] = InstanceState::kBooting;
    worker_alive_[w] = true;
  }
  tools::InstanceStateInfo info;
  info.kind = tools::InstanceStateInfo::Kind::kBoot;
  info.instances = count;
  info.price_per_hour = instance_.price_per_hour;
  info.instance_type = spec_.instance_type;
  info.billing_after = billed_instances_;
  info.time = engine_->now();
  tracer_->tools().emit_instance_state_change(info);
  record_fleet_size();
  co_await engine_->sleep(instance_.boot_seconds);
  for (int w : to_boot) {
    if (worker_state_[w] == InstanceState::kBooting) {
      worker_state_[w] = InstanceState::kRunning;
    }
  }
  state_ = ClusterState::kRunning;
  record_fleet_size();
  co_return Status::ok();
}

sim::Co<Status> Cluster::shutdown() {
  std::vector<int> to_stop;
  for (int w = 0; w < spec_.workers; ++w) {
    if (worker_state_[w] != InstanceState::kStopped) to_stop.push_back(w);
  }
  const bool stop_driver = state_ == ClusterState::kRunning;
  if (!stop_driver && to_stop.empty()) co_return Status::ok();
  const int count = static_cast<int>(to_stop.size()) + (stop_driver ? 1 : 0);
  trace::SpanHandle span =
      tracer_->span("cluster.shutdown", tracer_->take_ambient());
  cost_.on_instances_stopped(count, instance_.price_per_hour);
  billed_instances_ -= count;
  for (int w : to_stop) worker_state_[w] = InstanceState::kStopped;
  state_ = ClusterState::kStopped;
  tools::InstanceStateInfo info;
  info.kind = tools::InstanceStateInfo::Kind::kStop;
  info.instances = count;
  info.price_per_hour = instance_.price_per_hour;
  info.instance_type = spec_.instance_type;
  info.billing_after = billed_instances_;
  info.time = engine_->now();
  tracer_->tools().emit_instance_state_change(info);
  tracer_->metrics().gauge("cluster.accrued_usd").set(cost_.accrued_usd());
  record_fleet_size();
  // Stop requests return quickly; we do not model the async spin-down tail.
  co_await engine_->sleep(0.5);
  co_return Status::ok();
}

InstanceState Cluster::worker_state(int index) const {
  assert(index >= 0 && index < spec_.workers);
  return worker_state_[index];
}

int Cluster::running_worker_count() const {
  int count = 0;
  for (InstanceState state : worker_state_) {
    if (state == InstanceState::kRunning) ++count;
  }
  return count;
}

int Cluster::booting_worker_count() const {
  int count = 0;
  for (InstanceState state : worker_state_) {
    if (state == InstanceState::kBooting) ++count;
  }
  return count;
}

int Cluster::usable_worker_count() const {
  int count = 0;
  for (int w = 0; w < spec_.workers; ++w) {
    if (worker_usable(w)) ++count;
  }
  return count;
}

sim::Co<Status> Cluster::start_worker(int index) {
  if (index < 0 || index >= spec_.workers) {
    co_return invalid_argument("start_worker: index out of range");
  }
  if (worker_state_[index] != InstanceState::kStopped) {
    co_return failed_precondition("worker " + std::to_string(index) +
                                  " is not stopped");
  }
  // Boot failure: the start request is rejected before any state changes,
  // so the slot stays stopped and the caller (autoscaler) retries later.
  if (faults_ != nullptr &&
      faults_->should_fail("cloud.boot-failure",
                           "worker" + std::to_string(index))) {
    co_return unavailable("fault:cloud.boot-failure worker" +
                          std::to_string(index));
  }
  // A dead slot gets a replacement VM: alive again once the boot completes.
  worker_alive_[index] = true;
  worker_state_[index] = InstanceState::kBooting;
  const uint64_t epoch = ++boot_epoch_[index];
  cost_.on_instances_started(1, instance_.price_per_hour);
  ++billed_instances_;
  trace::SpanHandle span = tracer_->span("instance.boot");
  span.tag("worker", std::to_string(index));
  span.add("price_per_hour", instance_.price_per_hour);
  tools::InstanceStateInfo info;
  info.kind = tools::InstanceStateInfo::Kind::kBoot;
  info.instances = 1;
  info.price_per_hour = instance_.price_per_hour;
  info.instance_type = spec_.instance_type;
  info.worker = index;
  info.billing_after = billed_instances_;
  info.time = engine_->now();
  tracer_->tools().emit_instance_state_change(info);
  record_fleet_size();
  co_await engine_->sleep(instance_.boot_seconds);
  // The instance may have been stopped, preempted, or re-booted while this
  // boot slept; only the newest boot may flip the slot to running.
  if (worker_state_[index] == InstanceState::kBooting &&
      boot_epoch_[index] == epoch) {
    worker_state_[index] = InstanceState::kRunning;
    record_fleet_size();
  }
  co_return Status::ok();
}

Status Cluster::stop_worker(int index) {
  if (index < 0 || index >= spec_.workers) {
    return invalid_argument("stop_worker: index out of range");
  }
  if (worker_state_[index] == InstanceState::kStopped) return Status::ok();
  worker_state_[index] = InstanceState::kStopped;
  cost_.on_instances_stopped(1, instance_.price_per_hour);
  --billed_instances_;
  (void)tracer_->instant("instance.stop",
                         {{"worker", std::to_string(index)}});
  tools::InstanceStateInfo info;
  info.kind = tools::InstanceStateInfo::Kind::kStop;
  info.instances = 1;
  info.price_per_hour = instance_.price_per_hour;
  info.instance_type = spec_.instance_type;
  info.worker = index;
  info.billing_after = billed_instances_;
  info.time = engine_->now();
  tracer_->tools().emit_instance_state_change(info);
  record_fleet_size();
  return Status::ok();
}

void Cluster::preempt_worker(int index) {
  assert(index >= 0 && index < spec_.workers);
  if (worker_state_[index] == InstanceState::kStopped) return;
  worker_state_[index] = InstanceState::kStopped;
  cost_.on_instances_stopped(1, instance_.price_per_hour);
  --billed_instances_;
  // The slot goes dead exactly like a hard failure: in-flight tasks on it
  // fail and retry elsewhere through Spark's lineage path.
  kill_worker(index);
  (void)tracer_->instant("instance.preempt",
                         {{"worker", std::to_string(index)}});
  tools::InstanceStateInfo info;
  info.kind = tools::InstanceStateInfo::Kind::kPreempt;
  info.instances = 1;
  info.price_per_hour = instance_.price_per_hour;
  info.instance_type = spec_.instance_type;
  info.worker = index;
  info.billing_after = billed_instances_;
  info.time = engine_->now();
  tracer_->tools().emit_instance_state_change(info);
  record_fleet_size();
}

sim::Co<Status> Cluster::ssh_submit_roundtrip() {
  if (!running()) {
    co_return unavailable("cluster is not running");
  }
  co_await engine_->sleep(2 * profile_.wan_latency + profile_.job_submit_latency);
  co_return Status::ok();
}

void Cluster::kill_worker(int index) {
  assert(index >= 0 && index < spec_.workers);
  worker_alive_[index] = false;
  tracer_->metrics().counter("cluster.worker_kills").add();
}

void Cluster::revive_worker(int index) {
  assert(index >= 0 && index < spec_.workers);
  worker_alive_[index] = true;
  tracer_->metrics().counter("cluster.worker_revives").add();
}

bool Cluster::worker_alive(int index) const {
  assert(index >= 0 && index < spec_.workers);
  return worker_alive_[index];
}

}  // namespace ompcloud::cloud
