// Simulated cloud cluster: topology + lifecycle + cost.
//
// A `Cluster` is the substrate the paper provisions with cgcloud (§IV): one
// Spark driver node, W worker nodes, a storage service, and the WAN between
// the programmer's laptop and the datacenter. It owns the network, the
// object store, per-node CPU pools, and the instance lifecycle (including
// §III-A's on-the-fly EC2 start/stop with cost metering).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cloud/instance.h"
#include "compress/codec.h"
#include "net/network.h"
#include "sim/engine.h"
#include "storage/object_store.h"
#include "support/config.h"
#include "support/fault.h"
#include "trace/tracer.h"

namespace ompcloud::cloud {

/// Calibration constants for the simulated environment (DESIGN.md §7).
/// All fields can be overridden from the INI config ([sim] section).
struct SimProfile {
  // WAN between the laptop and the cloud region.
  double wan_up_bytes_per_sec = 25e6;     ///< 200 Mbit/s uplink
  double wan_down_bytes_per_sec = 25e6;   ///< 200 Mbit/s downlink
  double wan_latency = 0.030;             ///< one-way, 60 ms RTT

  // Datacenter LAN.
  double lan_latency = 0.0001;            ///< one-way, 0.2 ms RTT
  double storage_service_bandwidth = 5e9; ///< aggregate S3/HDFS throughput

  // Compute.
  double core_flops = 4e9;                ///< per physical core
  double host_core_flops = 3e9;           ///< laptop core (i7) is slower

  // Spark / JNI overheads (the knobs behind Fig. 4's overhead growth).
  double jni_call_overhead = 0.002;       ///< per map-function invocation
  double task_schedule_overhead = 0.006;  ///< driver-side, serialized per task
  double task_launch_latency = 0.004;     ///< driver->executor dispatch
  double job_submit_latency = 1.2;        ///< SSH + spark-submit + JVM spin-up
  double result_collect_overhead = 0.001; ///< per collected task result

  /// Driver memory bandwidth for output reconstruction (memcpy/reduce).
  double driver_memory_bytes_per_sec = 5e9;

  /// JVM object (de)serialization throughput per core (Kryo-era Spark,
  /// ~150 MB/s): charged on every byte entering or leaving a task, on the
  /// broadcast payload per executor, and on collected results at the
  /// driver. This is the dominant intra-cluster overhead the paper observes
  /// growing from 17% to 69% of SYRK's job time (§IV).
  double spark_serialization_bytes_per_sec = 150e6;

  /// Virtual-scale factor: every real byte moved in the simulation stands
  /// for `data_scale` virtual bytes. Applied centrally: link bandwidths are
  /// divided by it at topology build, and (de)compression / reconstruction
  /// CPU costs are multiplied by it. This lets the benches run the paper's
  /// 1 GB-matrix experiments with MB-sized real buffers while keeping every
  /// time ratio intact (DESIGN.md §2).
  double data_scale = 1.0;

  /// Reads overrides from the `[sim]` section of a config file.
  static SimProfile from_config(const Config& config);

  /// Calibrates the profile so a real n x n float benchmark stands for the
  /// paper's `virtual_n` x `virtual_n` (default 16384, the ~1 GB matrices
  /// of §IV): bytes scale by (virtual_n/n)^2 and flops by (virtual_n/n)^3.
  static SimProfile paper_scale(int64_t real_n, int64_t virtual_n = 16384);

  /// Seconds of CPU to encode/decode `real_bytes` with `codec` at this
  /// profile's virtual scale.
  [[nodiscard]] double encode_seconds(const compress::Codec& codec,
                                      uint64_t real_bytes) const;
  [[nodiscard]] double decode_seconds(const compress::Codec& codec,
                                      uint64_t real_bytes) const;
  /// Seconds of driver CPU to fold `real_bytes` of reconstructed output.
  [[nodiscard]] double reconstruct_seconds(uint64_t real_bytes) const;
  /// Seconds of one core to (de)serialize `real_bytes` through the JVM.
  [[nodiscard]] double serialize_seconds(uint64_t real_bytes) const;
};

/// What to provision (from the paper's `[cluster]` config section).
struct ClusterSpec {
  std::string provider = "ec2";          ///< "ec2" | "azure" | "private"
  std::string instance_type = "c3.8xlarge";
  int workers = 16;
  std::string storage_type = "s3";       ///< "s3" | "hdfs" | "azure"
  bool on_the_fly = false;               ///< start/stop instances per offload

  static Result<ClusterSpec> from_config(const Config& config);
};

/// Lifecycle states for the driver / the cluster as a whole.
enum class ClusterState { kStopped, kRunning };

/// Lifecycle of one worker instance (per-instance elasticity, §III-A's
/// "start/stop EC2 instances on the fly" at single-VM granularity).
enum class InstanceState { kStopped, kBooting, kRunning };

class Autoscaler;

class Cluster {
 public:
  /// Builds the simulated topology immediately; instances start `kStopped`
  /// unless `spec.on_the_fly` is false, in which case the constructor
  /// assumes a pre-provisioned, already-running cluster (the paper's
  /// default setup: the user ran cgcloud beforehand).
  Cluster(sim::Engine& engine, ClusterSpec spec, SimProfile profile);
  ~Cluster();

  [[nodiscard]] sim::Engine& engine() { return *engine_; }
  [[nodiscard]] net::Network& network() { return *network_; }
  [[nodiscard]] storage::ObjectStore& store() { return *store_; }
  [[nodiscard]] const ClusterSpec& spec() const { return spec_; }
  [[nodiscard]] const SimProfile& profile() const { return profile_; }
  [[nodiscard]] const InstanceType& instance() const { return instance_; }
  [[nodiscard]] CostMeter& cost() { return cost_; }

  /// The tracer every layer running on this cluster records into. The
  /// constructor creates one (so standalone clusters trace out of the box);
  /// a DeviceManager replaces it via `set_tracer` so offload root spans and
  /// cluster/storage/Spark spans land in a single tree.
  [[nodiscard]] trace::Tracer& tracer() { return *tracer_; }
  [[nodiscard]] const trace::Tracer& tracer() const { return *tracer_; }
  [[nodiscard]] std::shared_ptr<trace::Tracer> shared_tracer() const {
    return tracer_;
  }
  void set_tracer(std::shared_ptr<trace::Tracer> tracer);

  // Node names in the network topology.
  [[nodiscard]] static std::string host_node() { return "host"; }
  [[nodiscard]] static std::string storage_node() { return "storage"; }
  [[nodiscard]] static std::string driver_node() { return "driver"; }
  [[nodiscard]] std::string worker_node(int index) const;

  [[nodiscard]] int worker_count() const { return spec_.workers; }
  [[nodiscard]] int cores_per_worker() const { return instance_.physical_cores; }
  [[nodiscard]] int total_worker_cores() const {
    return spec_.workers * instance_.physical_cores;
  }

  /// CPU pool of worker `index`; one slot per physical core.
  [[nodiscard]] sim::CpuPool& worker_pool(int index);
  /// Driver-node CPU pool (partitioning + reconstruction work).
  [[nodiscard]] sim::CpuPool& driver_pool() { return *driver_pool_; }
  /// The programmer's laptop (paper §IV: Intel i7, 4 cores): compresses
  /// offloaded buffers and runs host-fallback execution.
  [[nodiscard]] sim::CpuPool& host_pool() { return *host_pool_; }
  [[nodiscard]] static int host_cores() { return 4; }

  [[nodiscard]] ClusterState state() const { return state_; }
  [[nodiscard]] bool running() const { return state_ == ClusterState::kRunning; }

  /// Boots the driver and every stopped worker (cold-start latency +
  /// billing starts). No-op when everything is already running.
  [[nodiscard]] sim::Co<Status> ensure_running();

  /// Stops every running instance (billing stops). Only meaningful with
  /// on_the_fly or elastic operation.
  [[nodiscard]] sim::Co<Status> shutdown();

  // --- Per-instance elasticity -------------------------------------------
  // Workers start and stop individually; the driver follows the cluster
  // state. Billing is metered per instance from the boot request (as EC2
  // bills) to the stop request.

  [[nodiscard]] InstanceState worker_state(int index) const;
  [[nodiscard]] bool worker_running(int index) const {
    return worker_state(index) == InstanceState::kRunning;
  }
  /// Alive (not failed/preempted) *and* running — what the Spark scheduler
  /// consults before placing a task.
  [[nodiscard]] bool worker_usable(int index) const {
    return worker_alive(index) && worker_running(index);
  }
  [[nodiscard]] int running_worker_count() const;
  [[nodiscard]] int booting_worker_count() const;
  [[nodiscard]] int usable_worker_count() const;

  /// Boots one worker instance: billing starts now, the worker becomes
  /// usable after the flavor's boot latency. Booting a dead (failed or
  /// preempted) worker provisions a replacement VM in the same slot, so the
  /// index becomes alive again. Fails on a worker that is not stopped.
  [[nodiscard]] sim::Co<Status> start_worker(int index);

  /// Stops one running worker (billing stops immediately). Tasks already
  /// placed on its CPU pool keep running; the Spark scheduler consults
  /// `worker_usable` before placing new ones.
  Status stop_worker(int index);

  /// Spot-style preemption: the instance is reclaimed mid-flight — billing
  /// stops, the worker goes dead (feeding the task-retry fault-tolerance
  /// path), and only a fresh `start_worker` revives the slot.
  void preempt_worker(int index);

  /// The optional elasticity policy driving start/stop decisions. Created
  /// by `enable_autoscaler`; null until then.
  [[nodiscard]] Autoscaler* autoscaler() { return autoscaler_.get(); }
  Autoscaler& enable_autoscaler(const struct AutoscalerOptions& options);

  /// Arms the plan-driven fault injector (support/fault.h): binds the sim
  /// clock, installs the hooks into the network and the object store, adds
  /// `cloud.boot-failure` probes to instance starts, and forwards every
  /// injected fault to the tools registry (`on_fault_event`) plus a `fault`
  /// instant in the trace. Idempotent per plan; a disabled plan is a no-op.
  fault::FaultInjector* enable_faults(const fault::FaultPlan& plan);
  /// The armed injector; null when `enable_faults` was never called (the
  /// default — the harness costs nothing when disabled).
  [[nodiscard]] fault::FaultInjector* fault_injector() {
    return faults_.get();
  }

  /// SSH control round-trip from the host to the driver: how the plugin
  /// submits Spark jobs (§III-A step 3). Pays WAN RTT + submit latency.
  [[nodiscard]] sim::Co<Status> ssh_submit_roundtrip();

  /// Simulated hard failure of one worker (fault-tolerance tests): its CPU
  /// pool keeps running tasks already placed, but the Spark scheduler
  /// consults `worker_alive` before placing new ones.
  void kill_worker(int index);
  void revive_worker(int index);
  [[nodiscard]] bool worker_alive(int index) const;

 private:
  void build_topology();
  /// Publishes cluster.billing_instances / cluster.price_per_hour on the
  /// current tracer (pre-provisioned clusters, where no boot event fires).
  void publish_billing_gauges();
  /// Drops a zero-duration "cluster.workers" span carrying the current
  /// running/booting counts: the step timeline trace/analysis integrates
  /// into provisioned instance-seconds and utilization.
  void record_fleet_size();

  sim::Engine* engine_;
  ClusterSpec spec_;
  SimProfile profile_;
  InstanceType instance_;
  std::shared_ptr<trace::Tracer> tracer_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<storage::ObjectStore> store_;
  std::vector<std::unique_ptr<sim::CpuPool>> worker_pools_;
  std::unique_ptr<sim::CpuPool> driver_pool_;
  std::unique_ptr<sim::CpuPool> host_pool_;
  std::vector<bool> worker_alive_;
  std::vector<InstanceState> worker_state_;
  /// Per-slot boot sequence: a boot completing only marks the worker
  /// running if no preemption/stop/reboot intervened while it slept.
  std::vector<uint64_t> boot_epoch_;
  CostMeter cost_;
  ClusterState state_;
  int billed_instances_ = 0;  ///< instances currently metered (driver incl.)
  std::unique_ptr<Autoscaler> autoscaler_;
  std::unique_ptr<fault::FaultInjector> faults_;
};

}  // namespace ompcloud::cloud
