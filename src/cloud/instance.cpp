#include "cloud/instance.h"

#include <cassert>

namespace ompcloud::cloud {

namespace {

const std::map<std::string, InstanceType>& catalog() {
  // Sizes and prices as of the paper's era (2017, us-east-1 on-demand).
  static const auto* kCatalog = new std::map<std::string, InstanceType>{
      {"c3.8xlarge",
       {"c3.8xlarge", 32, 16, 60ull << 30, 1.680, 1.25e9, 45.0}},
      {"c3.4xlarge",
       {"c3.4xlarge", 16, 8, 30ull << 30, 0.840, 0.625e9, 45.0}},
      {"c3.2xlarge",
       {"c3.2xlarge", 8, 4, 15ull << 30, 0.420, 0.25e9, 45.0}},
      {"c3.xlarge", {"c3.xlarge", 4, 2, 7ull << 30, 0.210, 0.125e9, 40.0}},
      {"m4.large", {"m4.large", 2, 1, 8ull << 30, 0.100, 0.0625e9, 40.0}},
      {"d12v2",  // Azure HDInsight-era flavor for the azure profile
       {"d12v2", 4, 2, 28ull << 30, 0.379, 0.125e9, 60.0}},
  };
  return *kCatalog;
}

}  // namespace

Result<InstanceType> find_instance_type(const std::string& name) {
  auto it = catalog().find(name);
  if (it == catalog().end()) {
    return not_found("unknown instance type '" + name + "'");
  }
  return it->second;
}

std::vector<std::string> instance_type_names() {
  std::vector<std::string> names;
  for (const auto& [name, type] : catalog()) names.push_back(name);
  return names;
}

void CostMeter::on_instances_started(int count, double price_per_hour) {
  assert(count > 0);
  running_.push_back({count, price_per_hour, engine_->now()});
}

void CostMeter::on_instances_stopped(int count, double price_per_hour) {
  for (auto it = running_.begin(); it != running_.end() && count > 0; ++it) {
    if (it->price_per_hour != price_per_hour || it->count == 0) continue;
    int stopping = std::min(count, it->count);
    double seconds = engine_->now() - it->started_at;
    settled_instance_seconds_ += stopping * seconds;
    settled_usd_ += stopping * seconds * price_per_hour / 3600.0;
    it->count -= stopping;
    count -= stopping;
  }
  assert(count == 0 && "stopped more instances than were running");
}

double CostMeter::accrued_usd() const {
  double usd = settled_usd_;
  for (const auto& group : running_) {
    usd += group.count * (engine_->now() - group.started_at) *
           group.price_per_hour / 3600.0;
  }
  return usd;
}

double CostMeter::instance_seconds() const {
  double seconds = settled_instance_seconds_;
  for (const auto& group : running_) {
    seconds += group.count * (engine_->now() - group.started_at);
  }
  return seconds;
}

}  // namespace ompcloud::cloud
