// Cloud instance-type catalog and cost metering.
//
// The paper's cluster is 17 EC2 c3.8xlarge instances (32 vCPU on Xeon
// E5-2680 v2, 60 GB RAM; "1 dedicated CPU core corresponds to 2 vCPUs").
// The catalog carries the figures a simulation needs — core counts, NIC
// bandwidth, hourly price — and the CostMeter implements §III-A's
// "pay for just the amount of computational resources used" accounting for
// the on-the-fly instance start/stop feature.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/engine.h"
#include "support/status.h"

namespace ompcloud::cloud {

/// Static description of a VM flavor.
struct InstanceType {
  std::string name;
  int vcpus = 0;
  int physical_cores = 0;  ///< vcpus / 2 (hyper-threading, per paper §IV)
  uint64_t ram_bytes = 0;
  double price_per_hour = 0;       ///< USD, on-demand
  double nic_bandwidth_bps = 0;    ///< bytes per second
  double boot_seconds = 0;         ///< cold start latency
};

/// Looks up a flavor by name ("c3.8xlarge", "c3.4xlarge", "m4.large", ...).
Result<InstanceType> find_instance_type(const std::string& name);

/// All known flavor names.
std::vector<std::string> instance_type_names();

/// Per-cluster money meter: accumulates instance-seconds while instances run.
/// Virtual-time based (reads the sim clock), so benches can report the $
/// column of a cost/performance trade-off sweep.
class CostMeter {
 public:
  explicit CostMeter(sim::Engine& engine) : engine_(&engine) {}

  /// Marks `count` instances of the given hourly price as running.
  void on_instances_started(int count, double price_per_hour);

  /// Marks `count` instances stopped, folding their accrued cost in.
  void on_instances_stopped(int count, double price_per_hour);

  /// Total USD accrued up to the current virtual time (running instances
  /// included pro-rata).
  [[nodiscard]] double accrued_usd() const;

  /// Instance-seconds consumed so far.
  [[nodiscard]] double instance_seconds() const;

 private:
  struct RunningGroup {
    int count;
    double price_per_hour;
    double started_at;
  };
  sim::Engine* engine_;
  std::vector<RunningGroup> running_;
  double settled_usd_ = 0;
  double settled_instance_seconds_ = 0;
};

}  // namespace ompcloud::cloud
