#include "compress/codec.h"

#include <array>
#include <cstring>
#include <map>
#include <mutex>

#include "support/strings.h"
#include "support/varint.h"

namespace ompcloud::compress {

// ---------------------------------------------------------------------------
// NullCodec
// ---------------------------------------------------------------------------

Result<ByteBuffer> NullCodec::compress(ByteView input) const {
  return ByteBuffer(input);
}

Result<ByteBuffer> NullCodec::decompress(ByteView input) const {
  return ByteBuffer(input);
}

// ---------------------------------------------------------------------------
// RleCodec
// ---------------------------------------------------------------------------

namespace {
constexpr size_t kMinRun = 4;
}  // namespace

Result<ByteBuffer> RleCodec::compress(ByteView input) const {
  ByteBuffer out;
  out.reserve(input.size() / 4 + 16);
  put_varint(out, input.size());
  size_t i = 0;
  size_t literal_start = 0;
  auto flush_literals = [&](size_t end) {
    if (end > literal_start) {
      size_t len = end - literal_start;
      put_varint(out, (static_cast<uint64_t>(len) << 1) | 0);
      out.append(input.subspan(literal_start, len));
    }
  };
  while (i < input.size()) {
    size_t run = 1;
    while (i + run < input.size() && input[i + run] == input[i]) ++run;
    if (run >= kMinRun) {
      flush_literals(i);
      put_varint(out, (static_cast<uint64_t>(run) << 1) | 1);
      out.push_back(input[i]);
      i += run;
      literal_start = i;
    } else {
      i += run;
    }
  }
  flush_literals(input.size());
  return out;
}

Result<ByteBuffer> RleCodec::decompress(ByteView input) const {
  size_t pos = 0;
  auto original_size = get_varint(input, &pos);
  if (!original_size) return data_loss("rle: truncated header");
  ByteBuffer out;
  out.reserve(*original_size);
  while (pos < input.size()) {
    auto control = get_varint(input, &pos);
    if (!control) return data_loss("rle: truncated control varint");
    uint64_t len = *control >> 1;
    if (out.size() + len > *original_size) {
      return data_loss("rle: block exceeds declared size");
    }
    if (*control & 1) {
      if (pos >= input.size()) return data_loss("rle: truncated run byte");
      std::byte value = input[pos++];
      for (uint64_t k = 0; k < len; ++k) out.push_back(value);
    } else {
      if (pos + len > input.size()) return data_loss("rle: truncated literals");
      out.append(input.subspan(pos, len));
      pos += len;
    }
  }
  if (out.size() != *original_size) {
    return data_loss(str_format("rle: size mismatch (%zu != %llu)", out.size(),
                                static_cast<unsigned long long>(*original_size)));
  }
  return out;
}

// ---------------------------------------------------------------------------
// GzLiteCodec
// ---------------------------------------------------------------------------

namespace {

constexpr std::byte kGzLiteMagic{0x47};  // 'G'
constexpr size_t kMinMatch = 4;
constexpr size_t kMaxDistance = 65535;
constexpr size_t kHashBits = 16;
constexpr size_t kHashSize = 1u << kHashBits;
constexpr uint32_t kNoPos = 0xffffffffu;

inline uint32_t read_u32(const std::byte* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint32_t hash4(uint32_t v) {
  return (v * 2654435761u) >> (32 - kHashBits);
}

inline void put_len_extension(ByteBuffer& out, size_t len) {
  // LZ4 convention: nibble 15 means "add following bytes of 255 until a
  // byte < 255 terminates".
  while (len >= 255) {
    out.push_back(std::byte{255});
    len -= 255;
  }
  out.push_back(static_cast<std::byte>(len));
}

inline std::optional<size_t> get_len_extension(ByteView in, size_t* pos,
                                               size_t base) {
  size_t len = base;
  while (true) {
    if (*pos >= in.size()) return std::nullopt;
    auto b = static_cast<uint8_t>(in[(*pos)++]);
    len += b;
    if (b != 255) return len;
  }
}

}  // namespace

GzLiteCodec::GzLiteCodec(int level) : level_(level < 1 ? 1 : level) {}

Result<ByteBuffer> GzLiteCodec::compress(ByteView input) const {
  ByteBuffer out;
  out.reserve(input.size() / 2 + 32);
  out.push_back(kGzLiteMagic);
  put_varint(out, input.size());

  const std::byte* base = input.data();
  const size_t n = input.size();

  std::vector<uint32_t> head(kHashSize, kNoPos);
  // Hash chain for level > 1: prev position with the same hash, windowed.
  std::vector<uint32_t> chain;
  if (level_ > 1) chain.assign(kMaxDistance + 1, kNoPos);

  auto emit_sequence = [&](size_t lit_start, size_t lit_len, size_t match_len,
                           size_t distance) {
    uint8_t lit_nibble = lit_len < 15 ? static_cast<uint8_t>(lit_len) : 15;
    uint8_t match_nibble = 0;
    if (match_len >= kMinMatch) {
      size_t code = match_len - kMinMatch;
      match_nibble = code < 15 ? static_cast<uint8_t>(code) : 15;
    }
    out.push_back(static_cast<std::byte>((lit_nibble << 4) | match_nibble));
    if (lit_nibble == 15) put_len_extension(out, lit_len - 15);
    out.append(input.subspan(lit_start, lit_len));
    if (match_len >= kMinMatch) {
      put_u16le(out, static_cast<uint16_t>(distance));
      if (match_nibble == 15) put_len_extension(out, match_len - kMinMatch - 15);
    }
  };

  size_t anchor = 0;
  size_t i = 0;
  while (n >= kMinMatch && i + kMinMatch <= n) {
    uint32_t value = read_u32(base + i);
    uint32_t h = hash4(value);
    size_t best_len = 0;
    size_t best_pos = 0;
    uint32_t candidate = head[h];
    for (int probe = 0; probe < level_ && candidate != kNoPos; ++probe) {
      if (i - candidate <= kMaxDistance && read_u32(base + candidate) == value) {
        size_t len = kMinMatch;
        while (i + len < n && base[candidate + len] == base[i + len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_pos = candidate;
        }
      }
      if (chain.empty()) break;
      candidate = chain[candidate % chain.size()];
    }
    if (!chain.empty()) chain[i % chain.size()] = head[h];
    head[h] = static_cast<uint32_t>(i);

    if (best_len >= kMinMatch) {
      emit_sequence(anchor, i - anchor, best_len, i - best_pos);
      // Insert a couple of positions inside the match so subsequent matches
      // can reference it (cheap approximation of full insertion).
      size_t end = i + best_len;
      for (size_t j = i + 1; j + kMinMatch <= end && j + kMinMatch <= n; j += best_len / 2 + 1) {
        uint32_t hv = hash4(read_u32(base + j));
        if (!chain.empty()) chain[j % chain.size()] = head[hv];
        head[hv] = static_cast<uint32_t>(j);
      }
      i = end;
      anchor = i;
    } else {
      ++i;
    }
  }
  // Final literal-only sequence (always present, possibly empty, so the
  // decoder can rely on at least one token existing for non-empty input).
  emit_sequence(anchor, n - anchor, 0, 0);
  return out;
}

Result<ByteBuffer> GzLiteCodec::decompress(ByteView input) const {
  size_t pos = 0;
  if (input.empty() || input[pos++] != kGzLiteMagic) {
    return data_loss("gzlite: bad magic");
  }
  auto original_size = get_varint(input, &pos);
  if (!original_size) return data_loss("gzlite: truncated header");
  ByteBuffer out;
  out.reserve(*original_size);

  while (out.size() < *original_size || pos < input.size()) {
    if (pos >= input.size()) return data_loss("gzlite: truncated stream");
    auto token = static_cast<uint8_t>(input[pos++]);
    size_t lit_len = token >> 4;
    if (lit_len == 15) {
      auto ext = get_len_extension(input, &pos, 15);
      if (!ext) return data_loss("gzlite: truncated literal length");
      lit_len = *ext;
    }
    if (pos + lit_len > input.size()) return data_loss("gzlite: truncated literals");
    if (out.size() + lit_len > *original_size) {
      return data_loss("gzlite: literals exceed declared size");
    }
    out.append(input.subspan(pos, lit_len));
    pos += lit_len;
    if (pos >= input.size()) break;  // final literal-only sequence

    auto distance = get_u16le(input, &pos);
    if (!distance) return data_loss("gzlite: truncated distance");
    if (*distance == 0 || *distance > out.size()) {
      return data_loss("gzlite: invalid match distance");
    }
    size_t match_len = (token & 0x0f) + kMinMatch;
    if ((token & 0x0f) == 15) {
      auto ext = get_len_extension(input, &pos, 15 + kMinMatch);
      if (!ext) return data_loss("gzlite: truncated match length");
      match_len = *ext;
    }
    if (out.size() + match_len > *original_size) {
      return data_loss("gzlite: match exceeds declared size");
    }
    // Byte-wise copy: source may overlap destination (RLE-style matches).
    size_t src = out.size() - *distance;
    for (size_t k = 0; k < match_len; ++k) {
      out.push_back(out.view()[src + k]);
    }
  }
  if (out.size() != *original_size) {
    return data_loss(str_format(
        "gzlite: size mismatch (%zu != %llu)", out.size(),
        static_cast<unsigned long long>(*original_size)));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

namespace {

const std::map<std::string, const Codec*, std::less<>>& registry() {
  static const auto* kRegistry = [] {
    auto* m = new std::map<std::string, const Codec*, std::less<>>();
    (*m)["null"] = new NullCodec();
    (*m)["rle"] = new RleCodec();
    (*m)["gzlite"] = new GzLiteCodec(1);
    (*m)["gzlite-4"] = new GzLiteCodec(4);
    (*m)["gzlite-9"] = new GzLiteCodec(9);
    return m;
  }();
  return *kRegistry;
}

}  // namespace

Result<const Codec*> find_codec(std::string_view name) {
  const auto& reg = registry();
  auto it = reg.find(name);
  if (it == reg.end()) {
    return not_found("unknown codec '" + std::string(name) + "'");
  }
  return it->second;
}

std::vector<std::string> codec_names() {
  std::vector<std::string> names;
  for (const auto& [name, codec] : registry()) names.push_back(name);
  return names;
}

}  // namespace ompcloud::compress
