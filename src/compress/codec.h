// Compression codecs for offloaded data.
//
// The paper's cloud plugin gzip-compresses each mapped buffer before upload
// when it exceeds a minimal compression size (§III-A), and Spark "automatically
// compresses all data transmitted through the network" (§III-C). The dense-vs-
// sparse results of Fig. 5 hinge on real compressibility differences, so the
// codecs here genuinely compress: GzLite is an LZ4-style LZ77 with greedy
// hash-table matching; RLE handles long zero runs; Null is the identity.
//
// Each codec also carries a throughput model (bytes/second) used by the
// simulation to charge virtual time for (de)compression work.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "support/bytes.h"
#include "support/status.h"

namespace ompcloud::compress {

/// Modeled (de)compression throughput; used for virtual-time charging only —
/// actual byte transformation always really happens.
struct CodecTiming {
  double compress_bytes_per_sec = 0;    ///< 0 means "free" (no time charged)
  double decompress_bytes_per_sec = 0;  ///< 0 means "free"
};

/// Abstract codec. Implementations must be stateless and thread-compatible.
class Codec {
 public:
  virtual ~Codec() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Compresses `input`. Never fails for valid inputs; the frame is
  /// self-describing (decompress needs no external size).
  [[nodiscard]] virtual Result<ByteBuffer> compress(ByteView input) const = 0;

  /// Decompresses a frame produced by `compress`. Fails with kDataLoss on
  /// malformed or truncated input.
  [[nodiscard]] virtual Result<ByteBuffer> decompress(ByteView input) const = 0;

  /// Throughput model for the simulator.
  [[nodiscard]] virtual CodecTiming timing() const = 0;
};

/// Identity codec (frame = raw bytes; used below the min-compression-size
/// threshold and as the "compression off" ablation).
class NullCodec final : public Codec {
 public:
  [[nodiscard]] std::string_view name() const override { return "null"; }
  [[nodiscard]] Result<ByteBuffer> compress(ByteView input) const override;
  [[nodiscard]] Result<ByteBuffer> decompress(ByteView input) const override;
  [[nodiscard]] CodecTiming timing() const override { return {0, 0}; }
};

/// Byte-level run-length codec: excels on sparse (zero-heavy) data, useless
/// on dense data. Frame: varint original size, then blocks of
/// [varint (len<<1 | is_run)][1 byte | len literal bytes].
class RleCodec final : public Codec {
 public:
  [[nodiscard]] std::string_view name() const override { return "rle"; }
  [[nodiscard]] Result<ByteBuffer> compress(ByteView input) const override;
  [[nodiscard]] Result<ByteBuffer> decompress(ByteView input) const override;
  [[nodiscard]] CodecTiming timing() const override { return {2.0e9, 4.0e9}; }
};

/// GzLite: LZ4-style LZ77. Sequences of
///   [token: lit_len(hi nibble) | match_len-4(lo nibble)]
///   [lit_len extension bytes*] [literals]
///   [2-byte LE match distance] [match_len extension bytes*]
/// terminated by a final literal-only sequence. Greedy matching through a
/// 16-bit hash table over 4-byte windows. Worst-case expansion is bounded
/// (~0.4% + 16 bytes); zero-heavy input compresses ~200x.
class GzLiteCodec final : public Codec {
 public:
  /// `level` trades match effort for speed: 1 = single probe (default),
  /// higher levels probe a short hash chain.
  explicit GzLiteCodec(int level = 1);

  [[nodiscard]] std::string_view name() const override { return "gzlite"; }
  [[nodiscard]] Result<ByteBuffer> compress(ByteView input) const override;
  [[nodiscard]] Result<ByteBuffer> decompress(ByteView input) const override;
  [[nodiscard]] CodecTiming timing() const override {
    // gzip-class throughput on one core (paper's plugin spawns one thread
    // per buffer, so the per-buffer rate is single-core).
    return {400.0e6, 900.0e6};
  }

 private:
  int level_;
};

/// Looks up a codec by name ("null", "rle", "gzlite", "gzlite-9").
/// Returned pointer is owned by the registry and lives forever.
Result<const Codec*> find_codec(std::string_view name);

/// All registered codec names (for --help text and parameterized tests).
std::vector<std::string> codec_names();

/// Convenience: compression ratio achieved on `input` (input/output sizes).
struct CompressionStats {
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  [[nodiscard]] double ratio() const {
    return bytes_out == 0 ? 0.0
                          : static_cast<double>(bytes_in) /
                                static_cast<double>(bytes_out);
  }
};

}  // namespace ompcloud::compress
