#include "compress/payload.h"

#include "support/strings.h"
#include "support/varint.h"

namespace ompcloud::compress {

namespace {

/// Chunked frame body flags.
constexpr uint64_t kFlagInlineBlocks = 1;

Result<std::pair<std::string, size_t>> read_header(ByteView framed) {
  size_t pos = 0;
  auto name_len = get_varint(framed, &pos);
  if (!name_len || pos + *name_len > framed.size() || *name_len > 64) {
    return data_loss("payload: malformed frame header");
  }
  std::string name(reinterpret_cast<const char*>(framed.data() + pos),
                   *name_len);
  return std::make_pair(name, pos + *name_len);
}

void put_frame_header(ByteBuffer& out, std::string_view name,
                      uint64_t body_len) {
  put_varint(out, name.size());
  out.append(ByteBuffer::from_string(name).view());
  put_varint(out, body_len);
}

}  // namespace

Result<EncodedPayload> encode_payload_frame(std::string_view codec_name,
                                            ByteView data,
                                            uint64_t min_compress_size) {
  std::string_view effective =
      data.size() < min_compress_size ? "null" : codec_name;
  OC_ASSIGN_OR_RETURN(const Codec* codec, find_codec(effective));
  OC_ASSIGN_OR_RETURN(ByteBuffer body, codec->compress(data));
  EncodedPayload encoded;
  encoded.codec = codec;
  encoded.frame.reserve(body.size() + effective.size() + 12);
  // Declared body length: lets decode detect truncation/appended garbage
  // even for codecs whose own frame is not self-terminating (null).
  put_frame_header(encoded.frame, effective, body.size());
  encoded.frame.append(body.view());
  return encoded;
}

Result<ByteBuffer> encode_payload(std::string_view codec_name, ByteView data,
                                  uint64_t min_compress_size) {
  OC_ASSIGN_OR_RETURN(EncodedPayload encoded,
                      encode_payload_frame(codec_name, data, min_compress_size));
  return std::move(encoded.frame);
}

Result<EncodedPayload> encode_sealed_payload_frame(std::string_view codec_name,
                                                   ByteView data,
                                                   uint64_t min_compress_size) {
  OC_ASSIGN_OR_RETURN(
      EncodedPayload inner,
      encode_payload_frame(codec_name, data, min_compress_size));
  EncodedPayload sealed;
  sealed.codec = inner.codec;
  sealed.frame.reserve(inner.frame.size() + kSealedFrameName.size() + 20);
  put_frame_header(sealed.frame, kSealedFrameName, 8 + inner.frame.size());
  put_u64le(sealed.frame, fnv1a(data));
  sealed.frame.append(inner.frame.view());
  return sealed;
}

bool is_sealed_payload(ByteView framed) {
  auto header = read_header(framed);
  return header.ok() && header->first == kSealedFrameName;
}

namespace {

/// Unwraps a sealed envelope: returns {expected plain hash, inner frame}.
Result<std::pair<uint64_t, ByteView>> open_sealed(ByteView framed,
                                                  size_t header_end) {
  size_t pos = header_end;
  auto body_len = get_varint(framed, &pos);
  if (!body_len || pos + *body_len != framed.size() || *body_len < 8) {
    return data_loss("sealed payload: body length mismatch");
  }
  auto hash = get_u64le(framed, &pos);
  if (!hash) return data_loss("sealed payload: truncated checksum");
  return std::make_pair(*hash, framed.subspan(pos, framed.size() - pos));
}

}  // namespace

Result<ByteBuffer> decode_payload(ByteView framed) {
  OC_ASSIGN_OR_RETURN(auto header, read_header(framed));
  if (header.first == kChunkedFrameName) return decode_chunked_payload(framed);
  if (header.first == kSealedFrameName) {
    OC_ASSIGN_OR_RETURN(auto sealed, open_sealed(framed, header.second));
    OC_ASSIGN_OR_RETURN(ByteBuffer plain, decode_payload(sealed.second));
    if (fnv1a(plain.view()) != sealed.first) {
      return data_loss("sealed payload: end-to-end checksum mismatch");
    }
    return plain;
  }
  auto codec = find_codec(header.first);
  if (!codec.ok()) {
    return data_loss("payload: unknown codec '" + header.first + "'");
  }
  size_t pos = header.second;
  auto body_len = get_varint(framed, &pos);
  if (!body_len || pos + *body_len != framed.size()) {
    return data_loss("payload: body length mismatch");
  }
  return (*codec)->decompress(framed.subspan(pos, *body_len));
}

Result<std::string> payload_codec(ByteView framed) {
  OC_ASSIGN_OR_RETURN(auto header, read_header(framed));
  if (header.first == kSealedFrameName) {
    OC_ASSIGN_OR_RETURN(auto sealed, open_sealed(framed, header.second));
    return payload_codec(sealed.second);
  }
  return header.first;
}

// --- Chunked frames ---------------------------------------------------------

uint64_t chunk_block_count(uint64_t plain_size, uint64_t chunk_size) {
  if (chunk_size == 0) return 0;
  return (plain_size + chunk_size - 1) / chunk_size;
}

namespace {

/// Serializes a chunked frame: header + index + (optionally) inline block
/// frames. `digests` must be index-aligned with `block_frames` when inline.
ByteBuffer build_chunked_frame(uint64_t chunk_size, uint64_t plain_size,
                               std::span<const BlockDigest> digests,
                               const std::vector<ByteBuffer>* block_frames) {
  ByteBuffer body;
  put_varint(body, block_frames != nullptr ? kFlagInlineBlocks : 0);
  put_varint(body, chunk_size);
  put_varint(body, plain_size);
  put_varint(body, digests.size());
  for (const BlockDigest& digest : digests) {
    put_varint(body, digest.plain_size);
    put_varint(body, digest.encoded_size);
    put_u64le(body, digest.content_hash);
  }
  if (block_frames != nullptr) {
    for (const ByteBuffer& frame : *block_frames) body.append(frame.view());
  }
  ByteBuffer framed;
  framed.reserve(body.size() + kChunkedFrameName.size() + 12);
  put_frame_header(framed, kChunkedFrameName, body.size());
  framed.append(body.view());
  return framed;
}

}  // namespace

Result<ByteBuffer> encode_chunked_payload(std::string_view codec_name,
                                          ByteView data, uint64_t chunk_size,
                                          uint64_t min_compress_size) {
  if (chunk_size == 0) {
    return invalid_argument("chunked payload: chunk size must be > 0");
  }
  uint64_t count = chunk_block_count(data.size(), chunk_size);
  std::vector<BlockDigest> digests;
  std::vector<ByteBuffer> frames;
  digests.reserve(count);
  frames.reserve(count);
  for (uint64_t k = 0; k < count; ++k) {
    ByteView block = data.subspan(
        k * chunk_size, std::min<uint64_t>(chunk_size, data.size() - k * chunk_size));
    OC_ASSIGN_OR_RETURN(EncodedPayload encoded,
                        encode_payload_frame(codec_name, block,
                                             min_compress_size));
    digests.push_back(
        {block.size(), encoded.frame.size(), fnv1a(block)});
    frames.push_back(std::move(encoded.frame));
  }
  return build_chunked_frame(chunk_size, data.size(), digests, &frames);
}

Result<ByteBuffer> encode_chunked_manifest(
    uint64_t chunk_size, uint64_t plain_size,
    std::span<const BlockDigest> blocks) {
  if (chunk_size == 0) {
    return invalid_argument("chunked manifest: chunk size must be > 0");
  }
  if (blocks.size() != chunk_block_count(plain_size, chunk_size)) {
    return invalid_argument("chunked manifest: block count mismatch");
  }
  return build_chunked_frame(chunk_size, plain_size, blocks, nullptr);
}

bool is_chunked_payload(ByteView framed) {
  auto header = read_header(framed);
  return header.ok() && header->first == kChunkedFrameName;
}

Result<ChunkedIndex> parse_chunked_index(ByteView framed) {
  OC_ASSIGN_OR_RETURN(auto header, read_header(framed));
  if (header.first != kChunkedFrameName) {
    return invalid_argument("payload: not a chunked frame");
  }
  size_t pos = header.second;
  auto body_len = get_varint(framed, &pos);
  if (!body_len || pos + *body_len != framed.size()) {
    return data_loss("chunked payload: body length mismatch");
  }
  auto flags = get_varint(framed, &pos);
  auto chunk_size = get_varint(framed, &pos);
  auto plain_size = get_varint(framed, &pos);
  auto count = get_varint(framed, &pos);
  if (!flags || !chunk_size || !plain_size || !count || *chunk_size == 0 ||
      *count != chunk_block_count(*plain_size, *chunk_size)) {
    return data_loss("chunked payload: malformed index header");
  }
  ChunkedIndex index;
  index.chunk_size = *chunk_size;
  index.plain_size = *plain_size;
  index.inline_blocks = (*flags & kFlagInlineBlocks) != 0;
  index.blocks.reserve(*count);
  uint64_t plain_offset = 0;
  uint64_t encoded_total = 0;
  for (uint64_t k = 0; k < *count; ++k) {
    auto block_plain = get_varint(framed, &pos);
    auto block_encoded = get_varint(framed, &pos);
    auto hash = get_u64le(framed, &pos);
    if (!block_plain || !block_encoded || !hash ||
        *block_plain > *chunk_size) {
      return data_loss("chunked payload: malformed index entry");
    }
    index.blocks.push_back({plain_offset, *block_plain, *block_encoded, *hash,
                            /*frame_offset=*/0});
    plain_offset += *block_plain;
    encoded_total += *block_encoded;
  }
  if (plain_offset != *plain_size) {
    return data_loss("chunked payload: index does not cover the buffer");
  }
  if (index.inline_blocks) {
    if (pos + encoded_total != framed.size()) {
      return data_loss("chunked payload: inline block area size mismatch");
    }
    uint64_t frame_offset = pos;
    for (ChunkedBlock& block : index.blocks) {
      block.frame_offset = frame_offset;
      frame_offset += block.encoded_size;
    }
  } else if (pos != framed.size()) {
    return data_loss("chunked payload: trailing bytes after manifest index");
  }
  return index;
}

Result<ByteBuffer> decode_chunked_payload(ByteView framed) {
  OC_ASSIGN_OR_RETURN(ChunkedIndex index, parse_chunked_index(framed));
  if (!index.inline_blocks) {
    return failed_precondition(
        "chunked payload: manifest frame, blocks are staged externally");
  }
  ByteBuffer plain;
  plain.reserve(index.plain_size);
  for (size_t k = 0; k < index.blocks.size(); ++k) {
    const ChunkedBlock& block = index.blocks[k];
    OC_ASSIGN_OR_RETURN(
        ByteBuffer restored,
        decode_payload(framed.subspan(block.frame_offset, block.encoded_size)));
    if (restored.size() != block.plain_size ||
        fnv1a(restored.view()) != block.content_hash) {
      return data_loss(
          str_format("chunked payload: block %zu failed verification", k));
    }
    plain.append(restored.view());
  }
  return plain;
}

double encode_cost_seconds(const Codec& codec, uint64_t input_bytes) {
  double rate = codec.timing().compress_bytes_per_sec;
  return rate > 0 ? static_cast<double>(input_bytes) / rate : 0.0;
}

double decode_cost_seconds(const Codec& codec, uint64_t output_bytes) {
  double rate = codec.timing().decompress_bytes_per_sec;
  return rate > 0 ? static_cast<double>(output_bytes) / rate : 0.0;
}

}  // namespace ompcloud::compress
