#include "compress/payload.h"

#include "support/varint.h"

namespace ompcloud::compress {

Result<ByteBuffer> encode_payload(std::string_view codec_name, ByteView data,
                                  uint64_t min_compress_size) {
  std::string_view effective =
      data.size() < min_compress_size ? "null" : codec_name;
  OC_ASSIGN_OR_RETURN(const Codec* codec, find_codec(effective));
  OC_ASSIGN_OR_RETURN(ByteBuffer body, codec->compress(data));
  ByteBuffer framed;
  framed.reserve(body.size() + effective.size() + 12);
  put_varint(framed, effective.size());
  framed.append(ByteBuffer::from_string(effective).view());
  // Declared body length: lets decode detect truncation/appended garbage
  // even for codecs whose own frame is not self-terminating (null).
  put_varint(framed, body.size());
  framed.append(body.view());
  return framed;
}

namespace {

Result<std::pair<std::string, size_t>> read_header(ByteView framed) {
  size_t pos = 0;
  auto name_len = get_varint(framed, &pos);
  if (!name_len || pos + *name_len > framed.size() || *name_len > 64) {
    return data_loss("payload: malformed frame header");
  }
  std::string name(reinterpret_cast<const char*>(framed.data() + pos),
                   *name_len);
  return std::make_pair(name, pos + *name_len);
}

}  // namespace

Result<ByteBuffer> decode_payload(ByteView framed) {
  OC_ASSIGN_OR_RETURN(auto header, read_header(framed));
  auto codec = find_codec(header.first);
  if (!codec.ok()) {
    return data_loss("payload: unknown codec '" + header.first + "'");
  }
  size_t pos = header.second;
  auto body_len = get_varint(framed, &pos);
  if (!body_len || pos + *body_len != framed.size()) {
    return data_loss("payload: body length mismatch");
  }
  return (*codec)->decompress(framed.subspan(pos, *body_len));
}

Result<std::string> payload_codec(ByteView framed) {
  OC_ASSIGN_OR_RETURN(auto header, read_header(framed));
  return header.first;
}

double encode_cost_seconds(const Codec& codec, uint64_t input_bytes) {
  double rate = codec.timing().compress_bytes_per_sec;
  return rate > 0 ? static_cast<double>(input_bytes) / rate : 0.0;
}

double decode_cost_seconds(const Codec& codec, uint64_t output_bytes) {
  double rate = codec.timing().decompress_bytes_per_sec;
  return rate > 0 ? static_cast<double>(output_bytes) / rate : 0.0;
}

}  // namespace ompcloud::compress
