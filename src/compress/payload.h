// Self-describing compressed payload frames.
//
// Offloaded buffers travel as binary files through cloud storage and as RDD
// element values inside the cluster. Both sides must agree on the codec, so
// every payload is framed as [codec-name-len varint][codec name][codec
// frame]. The host plugin may choose gzlite while Spark's intra-cluster
// compression uses another codec; frames make that interoperable.
#pragma once

#include <string>

#include "compress/codec.h"
#include "support/bytes.h"
#include "support/status.h"

namespace ompcloud::compress {

/// Compresses `data` with the named codec and frames the result.
/// `min_compress_size`: below this, the "null" codec is framed instead (the
/// paper's "minimal compression size" plugin knob, §III-A).
Result<ByteBuffer> encode_payload(std::string_view codec_name, ByteView data,
                                  uint64_t min_compress_size = 0);

/// Reads the frame header and decompresses with the named codec.
Result<ByteBuffer> decode_payload(ByteView framed);

/// Peeks the codec name of a framed payload (diagnostics).
Result<std::string> payload_codec(ByteView framed);

/// Virtual-time cost of encoding `input_bytes` with the codec (0 if free).
double encode_cost_seconds(const Codec& codec, uint64_t input_bytes);
/// Virtual-time cost of decoding a payload that expands to `output_bytes`.
double decode_cost_seconds(const Codec& codec, uint64_t output_bytes);

}  // namespace ompcloud::compress
