// Self-describing compressed payload frames.
//
// Offloaded buffers travel as binary files through cloud storage and as RDD
// element values inside the cluster. Both sides must agree on the codec, so
// every payload is framed as [codec-name-len varint][codec name][codec
// frame]. The host plugin may choose gzlite while Spark's intra-cluster
// compression uses another codec; frames make that interoperable.
//
// Two frame families exist:
//   * single frames — one codec, one body (the original format);
//   * chunked frames — the buffer is split into fixed-size blocks, each
//     independently compressed as its own single frame and carrying an
//     FNV-1a content hash. An index header up front makes every block
//     addressable without touching the others, which is what enables the
//     streaming transfer pipeline (compress block k+1 while block k is on
//     the wire) and block-level delta caching (re-upload only dirty blocks).
//     A chunked frame either carries its blocks inline (self-contained,
//     `decode_payload` restores it transparently) or acts as a *manifest*
//     whose blocks live in sibling storage objects.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "compress/codec.h"
#include "support/bytes.h"
#include "support/status.h"

namespace ompcloud::compress {

/// Reserved frame-family name used in the codec-name slot of chunked frames.
inline constexpr std::string_view kChunkedFrameName = "chunked";

/// Reserved frame-family name for sealed single frames: a thin wrapper
/// [header][u64le fnv1a-of-plain-bytes][inner single frame] that gives
/// whole-payload end-to-end integrity. Chunked frames already carry
/// per-block content hashes; sealing covers the unchunked path, where a
/// bit flipped in flight would otherwise decompress into silently wrong
/// bytes. `decode_payload` unwraps sealed frames transparently and fails
/// with kDataLoss on checksum mismatch, which the offload plugin treats as
/// retryable (re-download/re-upload the pristine copy).
inline constexpr std::string_view kSealedFrameName = "sealed";

/// A single frame plus the codec that was *actually* used to build it (after
/// the min-compress-size gate possibly demoted the request to "null"). Time
/// accounting must charge this codec, never re-derive the decision, so the
/// charged seconds can not diverge from the bytes on the wire.
struct EncodedPayload {
  ByteBuffer frame;
  const Codec* codec = nullptr;
};

/// Compresses `data` with the named codec and frames the result, reporting
/// the effective codec. `min_compress_size`: below this, the "null" codec is
/// framed instead (the paper's "minimal compression size" knob, §III-A).
Result<EncodedPayload> encode_payload_frame(std::string_view codec_name,
                                            ByteView data,
                                            uint64_t min_compress_size = 0);

/// Compresses `data` with the named codec and frames the result.
Result<ByteBuffer> encode_payload(std::string_view codec_name, ByteView data,
                                  uint64_t min_compress_size = 0);

/// Like `encode_payload_frame`, but wraps the single frame in a sealed
/// envelope carrying the FNV-1a hash of the plain bytes. `decode_payload`
/// verifies the hash on the way out.
Result<EncodedPayload> encode_sealed_payload_frame(
    std::string_view codec_name, ByteView data, uint64_t min_compress_size = 0);

/// True if `framed` is a sealed single frame.
[[nodiscard]] bool is_sealed_payload(ByteView framed);

/// Reads the frame header and decompresses with the named codec. Accepts
/// single frames, sealed frames (checksum-verified; kDataLoss on mismatch)
/// and inline chunked frames (legacy interop).
Result<ByteBuffer> decode_payload(ByteView framed);

/// Peeks the codec name of a framed payload (diagnostics). Chunked frames
/// report `kChunkedFrameName`; sealed frames report their inner codec.
Result<std::string> payload_codec(ByteView framed);

// --- Chunked frames ---------------------------------------------------------

/// Number of blocks a `plain_size`-byte buffer splits into (0 for an empty
/// buffer; `chunk_size` must be > 0).
uint64_t chunk_block_count(uint64_t plain_size, uint64_t chunk_size);

/// Index entry for one block of a chunked frame.
struct ChunkedBlock {
  uint64_t plain_offset = 0;  ///< byte offset in the original buffer
  uint64_t plain_size = 0;    ///< uncompressed block length
  uint64_t encoded_size = 0;  ///< size of the block's single frame
  uint64_t content_hash = 0;  ///< fnv1a of the plain block bytes
  uint64_t frame_offset = 0;  ///< block-frame offset within the chunked
                              ///< frame; 0 for manifests (external blocks)
};

/// Parsed index header of a chunked frame.
struct ChunkedIndex {
  uint64_t chunk_size = 0;
  uint64_t plain_size = 0;
  bool inline_blocks = false;  ///< false: manifest, blocks stored externally
  std::vector<ChunkedBlock> blocks;
};

/// What the manifest records per externally staged block.
struct BlockDigest {
  uint64_t plain_size = 0;
  uint64_t encoded_size = 0;
  uint64_t content_hash = 0;
};

/// Splits `data` into `chunk_size` blocks, compresses each independently
/// (per-block min-compress-size gate) and emits one self-contained chunked
/// frame: index header + concatenated block frames.
Result<ByteBuffer> encode_chunked_payload(std::string_view codec_name,
                                          ByteView data, uint64_t chunk_size,
                                          uint64_t min_compress_size = 0);

/// Emits an index-only chunked frame (a manifest) describing blocks that
/// are staged as sibling storage objects.
Result<ByteBuffer> encode_chunked_manifest(uint64_t chunk_size,
                                           uint64_t plain_size,
                                           std::span<const BlockDigest> blocks);

/// True if `framed` is a chunked frame (inline or manifest).
[[nodiscard]] bool is_chunked_payload(ByteView framed);

/// Parses the index header of a chunked frame (inline or manifest).
Result<ChunkedIndex> parse_chunked_index(ByteView framed);

/// Reassembles the original buffer from an *inline* chunked frame,
/// verifying every block's length and content hash. Manifests fail with
/// kFailedPrecondition (their blocks live elsewhere).
Result<ByteBuffer> decode_chunked_payload(ByteView framed);

// --- Cost models ------------------------------------------------------------

/// Virtual-time cost of encoding `input_bytes` with the codec (0 if free).
double encode_cost_seconds(const Codec& codec, uint64_t input_bytes);
/// Virtual-time cost of decoding a payload that expands to `output_bytes`.
double decode_cost_seconds(const Codec& codec, uint64_t output_bytes);

}  // namespace ompcloud::compress
