#include "jnibridge/bridge.h"

namespace ompcloud::jni {

KernelRegistry& KernelRegistry::instance() {
  static KernelRegistry registry;
  return registry;
}

void KernelRegistry::register_kernel(const std::string& name, LoopBodyFn fn) {
  for (auto& [existing_name, existing_fn] : kernels_) {
    if (existing_name == name) {
      existing_fn = std::move(fn);
      return;
    }
  }
  kernels_.emplace_back(name, std::move(fn));
}

Result<LoopBodyFn> KernelRegistry::find(const std::string& name) const {
  for (const auto& [kernel_name, fn] : kernels_) {
    if (kernel_name == name) return fn;
  }
  return not_found("kernel '" + name + "' not registered in fat binary");
}

std::vector<std::string> KernelRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(kernels_.size());
  for (const auto& [name, fn] : kernels_) out.push_back(name);
  return out;
}

}  // namespace ompcloud::jni
