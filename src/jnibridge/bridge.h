// NativeBridge: the simulated JNI boundary.
//
// In the paper, Spark workers "natively run (in C/C++) the function
// describing the loop body (JNI_region(...)) through the Java Native
// Interface" (§III-A). Here the same role is played by a process-wide
// registry of native loop-body functions: the compiler (our omp DSL) emits a
// kernel under a name, the Spark job references it by that name, and the
// executor invokes it on real byte buffers. Each invocation is charged the
// per-call JNI overhead from the SimProfile — the cost Algorithm 1's tiling
// exists to amortize.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "support/bytes.h"
#include "support/status.h"

namespace ompcloud::jni {

/// An input buffer as the kernel sees it: a slice of a mapped variable plus
/// the byte offset of that slice within the full variable, so kernels can
/// index with *global* loop subscripts (the paper's linearized A[i*N+k]).
struct InputSlice {
  ByteView bytes;
  uint64_t byte_offset = 0;  ///< offset of bytes[0] within the full variable
};

/// An output buffer: same shape, mutable.
struct OutputSlice {
  MutableByteView bytes;
  uint64_t byte_offset = 0;
};

/// Typed read-only accessor over an InputSlice with global element indexing.
template <typename T>
class SliceView {
 public:
  SliceView(ByteView bytes, uint64_t byte_offset)
      : data_(reinterpret_cast<const T*>(bytes.data()), bytes.size() / sizeof(T)),
        element_offset_(static_cast<int64_t>(byte_offset / sizeof(T))) {}

  /// Element at *global* index (as if the full variable were in memory).
  const T& operator[](int64_t global_index) const {
    return data_[static_cast<size_t>(global_index - element_offset_)];
  }

  [[nodiscard]] int64_t first_global_index() const { return element_offset_; }
  [[nodiscard]] size_t size() const { return data_.size(); }

 private:
  std::span<const T> data_;
  int64_t element_offset_;
};

/// Typed mutable accessor over an OutputSlice.
template <typename T>
class MutableSliceView {
 public:
  MutableSliceView(MutableByteView bytes, uint64_t byte_offset)
      : data_(reinterpret_cast<T*>(bytes.data()), bytes.size() / sizeof(T)),
        element_offset_(static_cast<int64_t>(byte_offset / sizeof(T))) {}

  T& operator[](int64_t global_index) {
    return data_[static_cast<size_t>(global_index - element_offset_)];
  }

  [[nodiscard]] int64_t first_global_index() const { return element_offset_; }
  [[nodiscard]] size_t size() const { return data_.size(); }

 private:
  std::span<T> data_;
  int64_t element_offset_;
};

/// Arguments of one native invocation: a tile [begin, end) of the DOALL
/// iteration space plus the mapped variables in declaration order.
struct KernelArgs {
  int64_t begin = 0;             ///< first iteration of this tile
  int64_t end = 0;               ///< one past the last iteration
  int64_t total_iterations = 0;  ///< the loop's full N
  std::span<const InputSlice> inputs;
  std::span<OutputSlice> outputs;

  template <typename T>
  [[nodiscard]] SliceView<T> input(size_t k) const {
    return SliceView<T>(inputs[k].bytes, inputs[k].byte_offset);
  }
  template <typename T>
  [[nodiscard]] MutableSliceView<T> output(size_t l) const {
    return MutableSliceView<T>(outputs[l].bytes, outputs[l].byte_offset);
  }
};

/// A native loop body: computes iterations [args.begin, args.end).
using LoopBodyFn = std::function<Status(const KernelArgs&)>;

/// Process-wide kernel registry (the "fat binary" symbol table: what the
/// compiler would embed, we register at static-init or setup time).
class KernelRegistry {
 public:
  static KernelRegistry& instance();

  /// Registers a kernel; re-registering the same name replaces it (useful
  /// in tests), since a fat binary has one definition per symbol.
  void register_kernel(const std::string& name, LoopBodyFn fn);

  [[nodiscard]] Result<LoopBodyFn> find(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  KernelRegistry() = default;
  std::vector<std::pair<std::string, LoopBodyFn>> kernels_;
};

/// Convenience RAII registrar for static-init kernel registration:
///   static jni::KernelRegistrar reg("gemm", GemmLoopBody);
class KernelRegistrar {
 public:
  KernelRegistrar(const std::string& name, LoopBodyFn fn) {
    KernelRegistry::instance().register_kernel(name, std::move(fn));
  }
};

}  // namespace ompcloud::jni
