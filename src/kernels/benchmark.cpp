#include "kernels/benchmark.h"

namespace ompcloud::kernels {

// Factories defined in matrix_benchmarks.cpp / collinear.cpp.
std::unique_ptr<Benchmark> make_gemm();
std::unique_ptr<Benchmark> make_matmul();
std::unique_ptr<Benchmark> make_2mm();
std::unique_ptr<Benchmark> make_3mm();
std::unique_ptr<Benchmark> make_syrk();
std::unique_ptr<Benchmark> make_syr2k();
std::unique_ptr<Benchmark> make_covar();
std::unique_ptr<Benchmark> make_collinear();

std::vector<std::string> benchmark_names() {
  // Fig. 4/5 chart order (a-h).
  return {"syrk", "syr2k", "covar",  "gemm",
          "2mm",  "3mm",   "matmul", "collinear-list"};
}

Result<std::unique_ptr<Benchmark>> make_benchmark(const std::string& name) {
  if (name == "gemm") return make_gemm();
  if (name == "matmul") return make_matmul();
  if (name == "2mm") return make_2mm();
  if (name == "3mm") return make_3mm();
  if (name == "syrk") return make_syrk();
  if (name == "syr2k") return make_syr2k();
  if (name == "covar") return make_covar();
  if (name == "collinear-list") return make_collinear();
  return not_found("unknown benchmark '" + name + "'");
}

}  // namespace ompcloud::kernels
