// The paper's benchmark suite (§IV): SYRK, SYR2K, COVAR, GEMM, 2MM, 3MM
// from Polybench and Mat-mul, Collinear-list from MgBench, "previously
// adapted for the OpenMP accelerator model".
//
// Each benchmark owns its data (32-bit floats, dense or sparse), knows how
// to annotate itself as a target region (which inputs are partitioned per
// Listing 2, which are broadcast), carries the compiler's flop cost model,
// and verifies offloaded results against a serial reference executed with
// the same operation order (so matches are exact, not approximate).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "omp/target_region.h"
#include "support/status.h"

namespace ompcloud::kernels {

class Benchmark {
 public:
  struct Options {
    /// Problem dimension: matrices are n x n, collinear-list gets n points.
    /// The paper scales matrices to ~1 GB (n = 16384); simulation-friendly
    /// defaults are much smaller, with the cost model carrying the scale.
    int64_t n = 256;
    bool sparse = false;  ///< ~95%-zero inputs (Fig. 5's sparse series)
    uint64_t seed = 42;
  };

  virtual ~Benchmark() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Generates inputs and clears outputs. Must be called before
  /// build_region / run_reference.
  virtual void prepare(const Options& options) = 0;

  /// Adds this benchmark's map clauses and parallel-for loops to `region`
  /// (device/engine choices belong to the caller).
  virtual Status build_region(omp::TargetRegion& region) = 0;

  /// Serial reference into shadow buffers (same op order as the kernels).
  virtual void run_reference() = 0;

  /// Max |offloaded - reference| over all outputs. 0 when both ran.
  [[nodiscard]] virtual double max_error() const = 0;

  /// Total floating-point operations (cost-model view).
  [[nodiscard]] virtual uint64_t total_flops() const = 0;

  /// Bytes moved host->device by map(to:/tofrom:) clauses.
  [[nodiscard]] virtual uint64_t mapped_to_bytes() const = 0;
  /// Bytes moved device->host by map(from:/tofrom:) clauses.
  [[nodiscard]] virtual uint64_t mapped_from_bytes() const = 0;
};

/// The eight paper benchmarks, in the order of Fig. 4/5 (a-h):
/// syrk, syr2k, covar, gemm, 2mm, 3mm, matmul, collinear-list.
std::vector<std::string> benchmark_names();

/// Instantiates a benchmark by name (unprepared; call prepare()).
Result<std::unique_ptr<Benchmark>> make_benchmark(const std::string& name);

}  // namespace ompcloud::kernels
