// MgBench collinear-list: count collinear point triples.
//
// The paper singles this benchmark out (§IV): it "processes a much smaller
// amount of data than the other benchmarks", giving a high
// computation-to-communication ratio and near-zero offloading overhead in
// Fig. 5h. Iteration i scans all pairs (j, k) with i < j < k and counts
// triples whose cross product is (near) zero; counts[i] is the per-anchor
// tally, a 4-byte partitioned output.
#include <cmath>
#include <cstdint>

#include "kernels/benchmark.h"
#include "workload/generators.h"

namespace ompcloud::kernels {

namespace {

constexpr float kCollinearEps = 1e-3f;

inline bool collinear(float x1, float y1, float x2, float y2, float x3,
                      float y3) {
  float cross = (x2 - x1) * (y3 - y1) - (x3 - x1) * (y2 - y1);
  return std::fabs(cross) < kCollinearEps;
}

class CollinearBenchmark final : public Benchmark {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "collinear-list";
  }

  void prepare(const Options& options) override {
    n_ = options.n;
    // Dense: random scatter (few hits); sparse stands in for structured
    // data: many points snapped onto shared lines (and a compressible
    // buffer, since repeated line coordinates recur).
    double bias = options.sparse ? 0.5 : 0.1;
    points_ = workload::make_points(static_cast<size_t>(n_), bias,
                                    options.seed + 71);
    counts_.assign(static_cast<size_t>(n_), 0);
    counts_ref_.assign(static_cast<size_t>(n_), 0);
  }

  Status build_region(omp::TargetRegion& region) override {
    const int64_t n = n_;
    omp::VarHandle points =
        region.map_to("points", points_.data(), points_.size());
    omp::VarHandle counts =
        region.map_from("counts", counts_.data(), counts_.size());
    // Cost model: iteration i scans ~(n-i)^2/2 pairs; the compiler's
    // uniform estimate uses the average n^2/6 pairs x ~8 flops.
    double avg_flops = 8.0 * static_cast<double>(n) * n / 6.0;
    region.parallel_for(n)
        .read(points)  // every iteration touches arbitrary pairs: broadcast
        .write_partitioned(counts, omp::rows<int32_t>(1))
        .cost_flops(avg_flops)
        .body("collinear", [n](const jni::KernelArgs& args) {
          auto points = args.input<float>(0);
          auto counts = args.output<int32_t>(0);
          for (int64_t i = args.begin; i < args.end; ++i) {
            int32_t count = 0;
            for (int64_t j = i + 1; j < n; ++j) {
              for (int64_t k = j + 1; k < n; ++k) {
                if (collinear(points[2 * i], points[2 * i + 1], points[2 * j],
                              points[2 * j + 1], points[2 * k],
                              points[2 * k + 1])) {
                  ++count;
                }
              }
            }
            counts[i] = count;
          }
          return Status::ok();
        });
    return Status::ok();
  }

  void run_reference() override {
    const int64_t n = n_;
    for (int64_t i = 0; i < n; ++i) {
      int32_t count = 0;
      for (int64_t j = i + 1; j < n; ++j) {
        for (int64_t k = j + 1; k < n; ++k) {
          if (collinear(points_[2 * i], points_[2 * i + 1], points_[2 * j],
                        points_[2 * j + 1], points_[2 * k],
                        points_[2 * k + 1])) {
            ++count;
          }
        }
      }
      counts_ref_[i] = count;
    }
  }

  [[nodiscard]] double max_error() const override {
    double worst = 0;
    for (size_t i = 0; i < counts_.size(); ++i) {
      worst = std::max(
          worst, std::abs(static_cast<double>(counts_[i]) - counts_ref_[i]));
    }
    return worst;
  }

  [[nodiscard]] uint64_t total_flops() const override {
    return 8ull * n_ * n_ * n_ / 6;
  }
  [[nodiscard]] uint64_t mapped_to_bytes() const override {
    return points_.size() * sizeof(float);
  }
  [[nodiscard]] uint64_t mapped_from_bytes() const override {
    return counts_.size() * sizeof(int32_t);
  }

 private:
  int64_t n_ = 0;
  std::vector<float> points_;
  std::vector<int32_t> counts_, counts_ref_;
};

}  // namespace

std::unique_ptr<Benchmark> make_collinear() {
  return std::make_unique<CollinearBenchmark>();
}

}  // namespace ompcloud::kernels
