// Polybench matrix benchmarks (GEMM, 2MM, 3MM, SYRK, SYR2K, COVAR) and
// MgBench Mat-mul, in their OpenMP-accelerator-model form: the outer loop
// is the DOALL `parallel for`, row-indexed inputs/outputs are partitioned
// (Listing 2), whole-matrix operands are broadcast.
#include <cmath>
#include <cstring>

#include "kernels/benchmark.h"
#include "workload/generators.h"

namespace ompcloud::kernels {

namespace {

using omp::rows;
using omp::VarHandle;

/// Shared plumbing: n x n float matrices, reference shadows, error checks.
class MatrixBenchmarkBase : public Benchmark {
 protected:
  int64_t n_ = 0;
  Options options_;

  [[nodiscard]] std::vector<float> input_matrix(uint64_t salt) const {
    workload::MatrixSpec spec;
    spec.rows = static_cast<size_t>(n_);
    spec.cols = static_cast<size_t>(n_);
    spec.sparse = options_.sparse;
    spec.seed = options_.seed + salt;
    return workload::make_matrix(spec);
  }

  static double max_abs_diff(const std::vector<float>& a,
                             const std::vector<float>& b) {
    double worst = 0;
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      worst = std::max(worst, std::abs(static_cast<double>(a[i]) - b[i]));
    }
    return worst;
  }

  [[nodiscard]] uint64_t matrix_bytes() const {
    return static_cast<uint64_t>(n_) * n_ * sizeof(float);
  }
};

// ---------------------------------------------------------------------------
// GEMM: C = alpha*A*B + beta*C
// ---------------------------------------------------------------------------

class GemmBenchmark final : public MatrixBenchmarkBase {
 public:
  [[nodiscard]] std::string_view name() const override { return "gemm"; }

  void prepare(const Options& options) override {
    options_ = options;
    n_ = options.n;
    a_ = input_matrix(1);
    b_ = input_matrix(2);
    c_initial_ = input_matrix(3);
    c_ = c_initial_;
    c_ref_.assign(c_.size(), 0.0f);
  }

  Status build_region(omp::TargetRegion& region) override {
    const int64_t n = n_;
    VarHandle a = region.map_to("A", a_.data(), a_.size());
    VarHandle b = region.map_to("B", b_.data(), b_.size());
    VarHandle c = region.map_tofrom("C", c_.data(), c_.size());
    region.parallel_for(n)
        .read_partitioned(a, rows<float>(n))
        .read(b)
        .read_partitioned(c, rows<float>(n))
        .write_partitioned(c, rows<float>(n))
        .cost_flops(static_cast<double>(n) * (2.0 * n + 2.0))
        .body("gemm", [n](const jni::KernelArgs& args) {
          auto a = args.input<float>(0);
          auto b = args.input<float>(1);
          auto c_in = args.input<float>(2);
          auto c_out = args.output<float>(0);
          constexpr float kAlpha = 1.5f, kBeta = 1.2f;
          for (int64_t i = args.begin; i < args.end; ++i) {
            for (int64_t j = 0; j < n; ++j) {
              float acc = kBeta * c_in[i * n + j];
              for (int64_t k = 0; k < n; ++k) {
                acc += kAlpha * a[i * n + k] * b[k * n + j];
              }
              c_out[i * n + j] = acc;
            }
          }
          return Status::ok();
        });
    return Status::ok();
  }

  void run_reference() override {
    const int64_t n = n_;
    constexpr float kAlpha = 1.5f, kBeta = 1.2f;
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        float acc = kBeta * c_initial_[i * n + j];
        for (int64_t k = 0; k < n; ++k) {
          acc += kAlpha * a_[i * n + k] * b_[k * n + j];
        }
        c_ref_[i * n + j] = acc;
      }
    }
  }

  [[nodiscard]] double max_error() const override {
    return max_abs_diff(c_, c_ref_);
  }
  [[nodiscard]] uint64_t total_flops() const override {
    return static_cast<uint64_t>(n_) * n_ * (2 * n_ + 2);
  }
  [[nodiscard]] uint64_t mapped_to_bytes() const override {
    return 3 * matrix_bytes();
  }
  [[nodiscard]] uint64_t mapped_from_bytes() const override {
    return matrix_bytes();
  }

 private:
  std::vector<float> a_, b_, c_, c_initial_, c_ref_;
};

// ---------------------------------------------------------------------------
// MgBench Mat-mul: C = A*B
// ---------------------------------------------------------------------------

class MatmulBenchmark final : public MatrixBenchmarkBase {
 public:
  [[nodiscard]] std::string_view name() const override { return "matmul"; }

  void prepare(const Options& options) override {
    options_ = options;
    n_ = options.n;
    a_ = input_matrix(11);
    b_ = input_matrix(12);
    c_.assign(static_cast<size_t>(n_) * n_, 0.0f);
    c_ref_.assign(c_.size(), 0.0f);
  }

  Status build_region(omp::TargetRegion& region) override {
    const int64_t n = n_;
    VarHandle a = region.map_to("A", a_.data(), a_.size());
    VarHandle b = region.map_to("B", b_.data(), b_.size());
    VarHandle c = region.map_from("C", c_.data(), c_.size());
    // Listing 1/2 of the paper, verbatim shape.
    region.parallel_for(n)
        .read_partitioned(a, rows<float>(n))
        .read(b)
        .write_partitioned(c, rows<float>(n))
        .cost_flops(2.0 * static_cast<double>(n) * n)
        .body("matmul", [n](const jni::KernelArgs& args) {
          auto a = args.input<float>(0);
          auto b = args.input<float>(1);
          auto c = args.output<float>(0);
          for (int64_t i = args.begin; i < args.end; ++i) {
            for (int64_t j = 0; j < n; ++j) {
              float acc = 0.0f;
              for (int64_t k = 0; k < n; ++k) {
                acc += a[i * n + k] * b[k * n + j];
              }
              c[i * n + j] = acc;
            }
          }
          return Status::ok();
        });
    return Status::ok();
  }

  void run_reference() override {
    const int64_t n = n_;
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        float acc = 0.0f;
        for (int64_t k = 0; k < n; ++k) acc += a_[i * n + k] * b_[k * n + j];
        c_ref_[i * n + j] = acc;
      }
    }
  }

  [[nodiscard]] double max_error() const override {
    return max_abs_diff(c_, c_ref_);
  }
  [[nodiscard]] uint64_t total_flops() const override {
    return 2ull * n_ * n_ * n_;
  }
  [[nodiscard]] uint64_t mapped_to_bytes() const override {
    return 2 * matrix_bytes();
  }
  [[nodiscard]] uint64_t mapped_from_bytes() const override {
    return matrix_bytes();
  }

 private:
  std::vector<float> a_, b_, c_, c_ref_;
};

// ---------------------------------------------------------------------------
// 2MM: tmp = alpha*A*B ; D = tmp*C + beta*D
// ---------------------------------------------------------------------------

class TwoMMBenchmark final : public MatrixBenchmarkBase {
 public:
  [[nodiscard]] std::string_view name() const override { return "2mm"; }

  void prepare(const Options& options) override {
    options_ = options;
    n_ = options.n;
    a_ = input_matrix(21);
    b_ = input_matrix(22);
    c_ = input_matrix(23);
    d_initial_ = input_matrix(24);
    d_ = d_initial_;
    tmp_.assign(static_cast<size_t>(n_) * n_, 0.0f);
    d_ref_.assign(d_.size(), 0.0f);
  }

  Status build_region(omp::TargetRegion& region) override {
    const int64_t n = n_;
    VarHandle a = region.map_to("A", a_.data(), a_.size());
    VarHandle b = region.map_to("B", b_.data(), b_.size());
    VarHandle c = region.map_to("C", c_.data(), c_.size());
    VarHandle tmp = region.map_alloc("tmp", tmp_.data(), tmp_.size());
    VarHandle d = region.map_tofrom("D", d_.data(), d_.size());

    region.parallel_for(n)
        .read_partitioned(a, rows<float>(n))
        .read(b)
        .write_partitioned(tmp, rows<float>(n))
        .cost_flops(2.0 * static_cast<double>(n) * n)
        .body("2mm_1", [n](const jni::KernelArgs& args) {
          auto a = args.input<float>(0);
          auto b = args.input<float>(1);
          auto tmp = args.output<float>(0);
          constexpr float kAlpha = 1.5f;
          for (int64_t i = args.begin; i < args.end; ++i) {
            for (int64_t j = 0; j < n; ++j) {
              float acc = 0.0f;
              for (int64_t k = 0; k < n; ++k) {
                acc += kAlpha * a[i * n + k] * b[k * n + j];
              }
              tmp[i * n + j] = acc;
            }
          }
          return Status::ok();
        });

    region.parallel_for(n)
        .read_partitioned(tmp, rows<float>(n))
        .read(c)
        .read_partitioned(d, rows<float>(n))
        .write_partitioned(d, rows<float>(n))
        .cost_flops(static_cast<double>(n) * (2.0 * n + 1.0))
        .body("2mm_2", [n](const jni::KernelArgs& args) {
          auto tmp = args.input<float>(0);
          auto c = args.input<float>(1);
          auto d_in = args.input<float>(2);
          auto d_out = args.output<float>(0);
          constexpr float kBeta = 1.2f;
          for (int64_t i = args.begin; i < args.end; ++i) {
            for (int64_t j = 0; j < n; ++j) {
              float acc = kBeta * d_in[i * n + j];
              for (int64_t k = 0; k < n; ++k) {
                acc += tmp[i * n + k] * c[k * n + j];
              }
              d_out[i * n + j] = acc;
            }
          }
          return Status::ok();
        });
    return Status::ok();
  }

  void run_reference() override {
    const int64_t n = n_;
    constexpr float kAlpha = 1.5f, kBeta = 1.2f;
    std::vector<float> tmp(static_cast<size_t>(n) * n, 0.0f);
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        float acc = 0.0f;
        for (int64_t k = 0; k < n; ++k) {
          acc += kAlpha * a_[i * n + k] * b_[k * n + j];
        }
        tmp[i * n + j] = acc;
      }
    }
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        float acc = kBeta * d_initial_[i * n + j];
        for (int64_t k = 0; k < n; ++k) acc += tmp[i * n + k] * c_[k * n + j];
        d_ref_[i * n + j] = acc;
      }
    }
  }

  [[nodiscard]] double max_error() const override {
    return max_abs_diff(d_, d_ref_);
  }
  [[nodiscard]] uint64_t total_flops() const override {
    return static_cast<uint64_t>(n_) * n_ * (4 * n_ + 1);
  }
  [[nodiscard]] uint64_t mapped_to_bytes() const override {
    return 4 * matrix_bytes();
  }
  [[nodiscard]] uint64_t mapped_from_bytes() const override {
    return matrix_bytes();
  }

 private:
  std::vector<float> a_, b_, c_, d_, d_initial_, tmp_, d_ref_;
};

// ---------------------------------------------------------------------------
// 3MM: E = A*B ; F = C*D ; G = E*F
// ---------------------------------------------------------------------------

class ThreeMMBenchmark final : public MatrixBenchmarkBase {
 public:
  [[nodiscard]] std::string_view name() const override { return "3mm"; }

  void prepare(const Options& options) override {
    options_ = options;
    n_ = options.n;
    a_ = input_matrix(31);
    b_ = input_matrix(32);
    c_ = input_matrix(33);
    d_ = input_matrix(34);
    const size_t cells = static_cast<size_t>(n_) * n_;
    e_.assign(cells, 0.0f);
    f_.assign(cells, 0.0f);
    g_.assign(cells, 0.0f);
    g_ref_.assign(cells, 0.0f);
  }

  Status build_region(omp::TargetRegion& region) override {
    const int64_t n = n_;
    VarHandle a = region.map_to("A", a_.data(), a_.size());
    VarHandle b = region.map_to("B", b_.data(), b_.size());
    VarHandle c = region.map_to("C", c_.data(), c_.size());
    VarHandle d = region.map_to("D", d_.data(), d_.size());
    VarHandle e = region.map_alloc("E", e_.data(), e_.size());
    VarHandle f = region.map_alloc("F", f_.data(), f_.size());
    VarHandle g = region.map_from("G", g_.data(), g_.size());

    auto mm_body = [n](const jni::KernelArgs& args) {
      auto x = args.input<float>(0);
      auto y = args.input<float>(1);
      auto out = args.output<float>(0);
      for (int64_t i = args.begin; i < args.end; ++i) {
        for (int64_t j = 0; j < n; ++j) {
          float acc = 0.0f;
          for (int64_t k = 0; k < n; ++k) acc += x[i * n + k] * y[k * n + j];
          out[i * n + j] = acc;
        }
      }
      return Status::ok();
    };
    double mm_cost = 2.0 * static_cast<double>(n) * n;

    region.parallel_for(n)
        .read_partitioned(a, rows<float>(n))
        .read(b)
        .write_partitioned(e, rows<float>(n))
        .cost_flops(mm_cost)
        .body("3mm_1", mm_body);
    region.parallel_for(n)
        .read_partitioned(c, rows<float>(n))
        .read(d)
        .write_partitioned(f, rows<float>(n))
        .cost_flops(mm_cost)
        .body("3mm_2", mm_body);
    region.parallel_for(n)
        .read_partitioned(e, rows<float>(n))
        .read(f)
        .write_partitioned(g, rows<float>(n))
        .cost_flops(mm_cost)
        .body("3mm_3", mm_body);
    return Status::ok();
  }

  void run_reference() override {
    const int64_t n = n_;
    const size_t cells = static_cast<size_t>(n) * n;
    std::vector<float> e(cells, 0.0f), f(cells, 0.0f);
    auto mm = [n](const std::vector<float>& x, const std::vector<float>& y,
                  std::vector<float>& out) {
      for (int64_t i = 0; i < n; ++i) {
        for (int64_t j = 0; j < n; ++j) {
          float acc = 0.0f;
          for (int64_t k = 0; k < n; ++k) acc += x[i * n + k] * y[k * n + j];
          out[i * n + j] = acc;
        }
      }
    };
    mm(a_, b_, e);
    mm(c_, d_, f);
    mm(e, f, g_ref_);
  }

  [[nodiscard]] double max_error() const override {
    return max_abs_diff(g_, g_ref_);
  }
  [[nodiscard]] uint64_t total_flops() const override {
    return 6ull * n_ * n_ * n_;
  }
  [[nodiscard]] uint64_t mapped_to_bytes() const override {
    return 4 * matrix_bytes();
  }
  [[nodiscard]] uint64_t mapped_from_bytes() const override {
    return matrix_bytes();
  }

 private:
  std::vector<float> a_, b_, c_, d_, e_, f_, g_, g_ref_;
};

// ---------------------------------------------------------------------------
// SYRK: C = beta*C + alpha*A*A^T
// ---------------------------------------------------------------------------

class SyrkBenchmark final : public MatrixBenchmarkBase {
 public:
  [[nodiscard]] std::string_view name() const override { return "syrk"; }

  void prepare(const Options& options) override {
    options_ = options;
    n_ = options.n;
    a_ = input_matrix(41);
    c_initial_ = input_matrix(42);
    c_ = c_initial_;
    c_ref_.assign(c_.size(), 0.0f);
  }

  Status build_region(omp::TargetRegion& region) override {
    const int64_t n = n_;
    VarHandle a = region.map_to("A", a_.data(), a_.size());
    VarHandle c = region.map_tofrom("C", c_.data(), c_.size());
    // A is read at rows i AND j, so it cannot be partitioned by the outer
    // index (the paper's B-in-matmul situation): broadcast it.
    region.parallel_for(n)
        .read(a)
        .read_partitioned(c, rows<float>(n))
        .write_partitioned(c, rows<float>(n))
        .cost_flops(static_cast<double>(n) * (2.0 * n + 2.0))
        .body("syrk", [n](const jni::KernelArgs& args) {
          auto a = args.input<float>(0);
          auto c_in = args.input<float>(1);
          auto c_out = args.output<float>(0);
          constexpr float kAlpha = 1.5f, kBeta = 1.2f;
          for (int64_t i = args.begin; i < args.end; ++i) {
            for (int64_t j = 0; j < n; ++j) {
              float acc = kBeta * c_in[i * n + j];
              for (int64_t k = 0; k < n; ++k) {
                acc += kAlpha * a[i * n + k] * a[j * n + k];
              }
              c_out[i * n + j] = acc;
            }
          }
          return Status::ok();
        });
    return Status::ok();
  }

  void run_reference() override {
    const int64_t n = n_;
    constexpr float kAlpha = 1.5f, kBeta = 1.2f;
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        float acc = kBeta * c_initial_[i * n + j];
        for (int64_t k = 0; k < n; ++k) {
          acc += kAlpha * a_[i * n + k] * a_[j * n + k];
        }
        c_ref_[i * n + j] = acc;
      }
    }
  }

  [[nodiscard]] double max_error() const override {
    return max_abs_diff(c_, c_ref_);
  }
  [[nodiscard]] uint64_t total_flops() const override {
    return static_cast<uint64_t>(n_) * n_ * (2 * n_ + 2);
  }
  [[nodiscard]] uint64_t mapped_to_bytes() const override {
    return 2 * matrix_bytes();
  }
  [[nodiscard]] uint64_t mapped_from_bytes() const override {
    return matrix_bytes();
  }

 private:
  std::vector<float> a_, c_, c_initial_, c_ref_;
};

// ---------------------------------------------------------------------------
// SYR2K: C = beta*C + alpha*(A*B^T + B*A^T)
// ---------------------------------------------------------------------------

class Syr2kBenchmark final : public MatrixBenchmarkBase {
 public:
  [[nodiscard]] std::string_view name() const override { return "syr2k"; }

  void prepare(const Options& options) override {
    options_ = options;
    n_ = options.n;
    a_ = input_matrix(51);
    b_ = input_matrix(52);
    c_initial_ = input_matrix(53);
    c_ = c_initial_;
    c_ref_.assign(c_.size(), 0.0f);
  }

  Status build_region(omp::TargetRegion& region) override {
    const int64_t n = n_;
    VarHandle a = region.map_to("A", a_.data(), a_.size());
    VarHandle b = region.map_to("B", b_.data(), b_.size());
    VarHandle c = region.map_tofrom("C", c_.data(), c_.size());
    region.parallel_for(n)
        .read(a)
        .read(b)
        .read_partitioned(c, rows<float>(n))
        .write_partitioned(c, rows<float>(n))
        .cost_flops(static_cast<double>(n) * (4.0 * n + 2.0))
        .body("syr2k", [n](const jni::KernelArgs& args) {
          auto a = args.input<float>(0);
          auto b = args.input<float>(1);
          auto c_in = args.input<float>(2);
          auto c_out = args.output<float>(0);
          constexpr float kAlpha = 1.5f, kBeta = 1.2f;
          for (int64_t i = args.begin; i < args.end; ++i) {
            for (int64_t j = 0; j < n; ++j) {
              float acc = kBeta * c_in[i * n + j];
              for (int64_t k = 0; k < n; ++k) {
                acc += kAlpha * a[i * n + k] * b[j * n + k] +
                       kAlpha * b[i * n + k] * a[j * n + k];
              }
              c_out[i * n + j] = acc;
            }
          }
          return Status::ok();
        });
    return Status::ok();
  }

  void run_reference() override {
    const int64_t n = n_;
    constexpr float kAlpha = 1.5f, kBeta = 1.2f;
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        float acc = kBeta * c_initial_[i * n + j];
        for (int64_t k = 0; k < n; ++k) {
          acc += kAlpha * a_[i * n + k] * b_[j * n + k] +
                 kAlpha * b_[i * n + k] * a_[j * n + k];
        }
        c_ref_[i * n + j] = acc;
      }
    }
  }

  [[nodiscard]] double max_error() const override {
    return max_abs_diff(c_, c_ref_);
  }
  [[nodiscard]] uint64_t total_flops() const override {
    return static_cast<uint64_t>(n_) * n_ * (4 * n_ + 2);
  }
  [[nodiscard]] uint64_t mapped_to_bytes() const override {
    return 3 * matrix_bytes();
  }
  [[nodiscard]] uint64_t mapped_from_bytes() const override {
    return matrix_bytes();
  }

 private:
  std::vector<float> a_, b_, c_, c_initial_, c_ref_;
};

// ---------------------------------------------------------------------------
// COVAR (Polybench covariance), three successive parallel loops:
//   mean[j]     = sum_i data[i][j] / n
//   data[i][j] -= mean[j]                       (in-place centering)
//   symmat[j1][j2] = sum_i data[i][j1]*data[i][j2]   (full rows, DOALL)
// ---------------------------------------------------------------------------

class CovarBenchmark final : public MatrixBenchmarkBase {
 public:
  [[nodiscard]] std::string_view name() const override { return "covar"; }

  void prepare(const Options& options) override {
    options_ = options;
    n_ = options.n;
    data_initial_ = input_matrix(61);
    data_ = data_initial_;
    mean_.assign(static_cast<size_t>(n_), 0.0f);
    symmat_.assign(static_cast<size_t>(n_) * n_, 0.0f);
    symmat_ref_.assign(symmat_.size(), 0.0f);
  }

  Status build_region(omp::TargetRegion& region) override {
    const int64_t n = n_;
    VarHandle data = region.map_to("data", data_.data(), data_.size());
    VarHandle mean = region.map_alloc("mean", mean_.data(), mean_.size());
    VarHandle symmat = region.map_from("symmat", symmat_.data(), symmat_.size());

    // Loop 1: column means (column access => data cannot be partitioned).
    region.parallel_for(n)
        .read(data)
        .write_partitioned(mean, rows<float>(1))
        .cost_flops(static_cast<double>(n) + 1.0)
        .body("covar_mean", [n](const jni::KernelArgs& args) {
          auto data = args.input<float>(0);
          auto mean = args.output<float>(0);
          for (int64_t j = args.begin; j < args.end; ++j) {
            float acc = 0.0f;
            for (int64_t i = 0; i < n; ++i) acc += data[i * n + j];
            mean[j] = acc / static_cast<float>(n);
          }
          return Status::ok();
        });

    // Loop 2: center rows in place (data read+written partitioned).
    region.parallel_for(n)
        .read_partitioned(data, rows<float>(n))
        .read(mean)
        .write_partitioned(data, rows<float>(n))
        .cost_flops(static_cast<double>(n))
        .body("covar_center", [n](const jni::KernelArgs& args) {
          auto data_in = args.input<float>(0);
          auto mean = args.input<float>(1);
          auto data_out = args.output<float>(0);
          for (int64_t i = args.begin; i < args.end; ++i) {
            for (int64_t j = 0; j < n; ++j) {
              data_out[i * n + j] = data_in[i * n + j] - mean[j];
            }
          }
          return Status::ok();
        });

    // Loop 3: covariance rows (full row per j1 keeps writes partitioned).
    region.parallel_for(n)
        .read(data)
        .write_partitioned(symmat, rows<float>(n))
        .cost_flops(2.0 * static_cast<double>(n) * n)
        .body("covar_cov", [n](const jni::KernelArgs& args) {
          auto data = args.input<float>(0);
          auto symmat = args.output<float>(0);
          for (int64_t j1 = args.begin; j1 < args.end; ++j1) {
            for (int64_t j2 = 0; j2 < n; ++j2) {
              float acc = 0.0f;
              for (int64_t i = 0; i < n; ++i) {
                acc += data[i * n + j1] * data[i * n + j2];
              }
              symmat[j1 * n + j2] = acc;
            }
          }
          return Status::ok();
        });
    return Status::ok();
  }

  void run_reference() override {
    const int64_t n = n_;
    std::vector<float> data = data_initial_;
    std::vector<float> mean(static_cast<size_t>(n), 0.0f);
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t i = 0; i < n; ++i) acc += data[i * n + j];
      mean[j] = acc / static_cast<float>(n);
    }
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < n; ++j) data[i * n + j] -= mean[j];
    }
    for (int64_t j1 = 0; j1 < n; ++j1) {
      for (int64_t j2 = 0; j2 < n; ++j2) {
        float acc = 0.0f;
        for (int64_t i = 0; i < n; ++i) acc += data[i * n + j1] * data[i * n + j2];
        symmat_ref_[j1 * n + j2] = acc;
      }
    }
  }

  [[nodiscard]] double max_error() const override {
    return max_abs_diff(symmat_, symmat_ref_);
  }
  [[nodiscard]] uint64_t total_flops() const override {
    return static_cast<uint64_t>(n_) * (n_ + 1 + n_ + 2 * n_ * n_);
  }
  [[nodiscard]] uint64_t mapped_to_bytes() const override {
    return matrix_bytes();
  }
  [[nodiscard]] uint64_t mapped_from_bytes() const override {
    return matrix_bytes();
  }

 private:
  std::vector<float> data_, data_initial_, mean_, symmat_, symmat_ref_;
};

}  // namespace

// Factories consumed by the registry in benchmark.cpp.
std::unique_ptr<Benchmark> make_gemm() { return std::make_unique<GemmBenchmark>(); }
std::unique_ptr<Benchmark> make_matmul() { return std::make_unique<MatmulBenchmark>(); }
std::unique_ptr<Benchmark> make_2mm() { return std::make_unique<TwoMMBenchmark>(); }
std::unique_ptr<Benchmark> make_3mm() { return std::make_unique<ThreeMMBenchmark>(); }
std::unique_ptr<Benchmark> make_syrk() { return std::make_unique<SyrkBenchmark>(); }
std::unique_ptr<Benchmark> make_syr2k() { return std::make_unique<Syr2kBenchmark>(); }
std::unique_ptr<Benchmark> make_covar() { return std::make_unique<CovarBenchmark>(); }

}  // namespace ompcloud::kernels
