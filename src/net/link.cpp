#include "net/link.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace ompcloud::net {

namespace {
// Byte-remainder below which a flow counts as finished (guards float drift).
constexpr double kEpsilonBytes = 1e-6;
// A flow within this much *time* of completion also counts as finished.
// Without it, a fast link (GB/s) can leave a flow with a byte remainder
// above kEpsilonBytes whose completion ETA is below the representable
// double increment of the current clock — the timer would then re-fire at
// the same virtual instant forever.
constexpr double kEpsilonSeconds = 1e-9;
}  // namespace

Link::Link(sim::Engine& engine, std::string name,
           double bandwidth_bytes_per_sec, double latency_seconds)
    : engine_(&engine),
      name_(std::move(name)),
      bandwidth_(bandwidth_bytes_per_sec),
      latency_(latency_seconds) {
  assert(bandwidth_ >= 0 && latency_ >= 0);
}

double Link::current_rate_per_weight() const {
  if (flows_.empty()) return std::numeric_limits<double>::infinity();
  if (bandwidth_ <= 0) return std::numeric_limits<double>::infinity();
  return bandwidth_ / total_weight_;
}

void Link::settle() {
  double dt = engine_->now() - last_settle_;
  last_settle_ = engine_->now();
  if (dt <= 0 || flows_.empty() || bandwidth_ <= 0) return;
  double rate_per_weight = bandwidth_ / total_weight_;
  for (auto& flow : flows_) {
    flow->remaining =
        std::max(0.0, flow->remaining - dt * rate_per_weight * flow->weight);
  }
}

void Link::reschedule() {
  ++stats_.reschedules;
  ++generation_;
  if (flows_.empty()) return;
  if (bandwidth_ <= 0) {
    // Infinite bandwidth: complete everything immediately.
    engine_->schedule_after(0, [this, gen = generation_] { on_timer(gen); });
    return;
  }
  double rate_per_weight = bandwidth_ / total_weight_;
  double eta = std::numeric_limits<double>::infinity();
  for (const auto& flow : flows_) {
    eta = std::min(eta, flow->remaining / (rate_per_weight * flow->weight));
  }
  engine_->schedule_after(std::max(0.0, eta),
                          [this, gen = generation_] { on_timer(gen); });
}

void Link::on_timer(uint64_t generation) {
  ++stats_.timer_fires;
  if (generation != generation_) return;  // superseded by a newer plan
  settle();
  double rate_per_weight =
      (bandwidth_ > 0 && total_weight_ > 0) ? bandwidth_ / total_weight_ : 0;
  for (auto it = flows_.begin(); it != flows_.end();) {
    double finish_threshold = std::max(
        kEpsilonBytes, rate_per_weight * (*it)->weight * kEpsilonSeconds);
    if ((*it)->remaining <= finish_threshold) {
      total_weight_ -= (*it)->weight;
      ++stats_.flows_completed;
      (*it)->done.trigger();
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  if (flows_.empty()) total_weight_ = 0;  // squash accumulated float error
  reschedule();
}

sim::Co<void> Link::transfer(uint64_t bytes, double weight) {
  assert(weight > 0);
  co_await engine_->sleep(latency_);
  stats_.bytes_carried += bytes;
  ++stats_.flows_started;
  if (bytes == 0 || bandwidth_ <= 0) {
    ++stats_.flows_completed;
    co_return;
  }
  auto flow =
      std::make_shared<Flow>(*engine_, static_cast<double>(bytes), weight);
  settle();
  flows_.push_back(flow);
  total_weight_ += weight;
  stats_.peak_concurrent_flows =
      std::max(stats_.peak_concurrent_flows, flows_.size());
  reschedule();
  co_await flow->done;
}

}  // namespace ompcloud::net
