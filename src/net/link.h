// Simulated network links with max-min fair bandwidth sharing.
//
// Every byte the paper measures crossing a wire — host→S3 uploads over the
// Internet, driver↔worker partition traffic, BitTorrent broadcast — flows
// through a `Link`. A link has a propagation latency and a bandwidth that is
// shared equally (processor sharing) among all concurrent flows, so e.g. the
// cloud plugin's "one transfer thread per offloaded buffer" (§III-A) sees
// realistic aggregate throughput rather than naive parallel speedup.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <string>

#include "sim/engine.h"

namespace ompcloud::net {

/// Cumulative link statistics (diagnostics and bench assertions).
struct LinkStats {
  uint64_t flows_started = 0;
  uint64_t flows_completed = 0;
  uint64_t bytes_carried = 0;
  size_t peak_concurrent_flows = 0;
  uint64_t timer_fires = 0;
  uint64_t reschedules = 0;
};

/// A simplex channel: fixed latency + bandwidth shared max-min fairly among
/// active flows. Single-threaded, engine-driven; `transfer` is a coroutine
/// that completes when the last byte is delivered.
class Link {
 public:
  /// `bandwidth_bytes_per_sec` == 0 means infinite (latency-only link).
  Link(sim::Engine& engine, std::string name, double bandwidth_bytes_per_sec,
       double latency_seconds);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] double bandwidth() const { return bandwidth_; }
  [[nodiscard]] double latency() const { return latency_; }
  [[nodiscard]] const LinkStats& stats() const { return stats_; }
  [[nodiscard]] size_t active_flows() const { return flows_.size(); }

  /// Delivers `bytes` over the link: waits the propagation latency, then
  /// contends for bandwidth with every other active flow until done.
  /// `weight` scales this flow's fair share (default 1.0).
  [[nodiscard]] sim::Co<void> transfer(uint64_t bytes, double weight = 1.0);

  /// Instantaneous per-unit-weight rate (bytes/s) given current flows.
  [[nodiscard]] double current_rate_per_weight() const;

 private:
  struct Flow {
    double remaining;  // bytes left
    double weight;
    sim::Event done;
    Flow(sim::Engine& engine, double bytes, double weight)
        : remaining(bytes), weight(weight), done(engine) {}
  };

  void settle();                 // advance all flows to engine.now()
  void reschedule();             // plan the next completion event
  void on_timer(uint64_t generation);

  sim::Engine* engine_;
  std::string name_;
  double bandwidth_;
  double latency_;
  double total_weight_ = 0;
  sim::SimTime last_settle_ = 0;
  uint64_t generation_ = 0;
  std::list<std::shared_ptr<Flow>> flows_;
  LinkStats stats_;
};

}  // namespace ompcloud::net
