#include "net/network.h"

#include <cassert>
#include <cmath>

namespace ompcloud::net {

Link& Network::add_link(const std::string& name,
                        double bandwidth_bytes_per_sec,
                        double latency_seconds) {
  assert(links_by_name_.count(name) == 0 && "duplicate link name");
  links_.push_back(std::make_unique<Link>(*engine_, name,
                                          bandwidth_bytes_per_sec,
                                          latency_seconds));
  Link* link = links_.back().get();
  links_by_name_[name] = link;
  return *link;
}

Link* Network::find_link(const std::string& name) {
  auto it = links_by_name_.find(name);
  return it == links_by_name_.end() ? nullptr : it->second;
}

void Network::set_route(const std::string& from, const std::string& to,
                        std::vector<Link*> links) {
  routes_[{from, to}] = std::move(links);
}

Result<std::vector<Link*>> Network::route(const std::string& from,
                                          const std::string& to) const {
  for (const auto& key :
       {std::make_pair(from, to), std::make_pair(from, std::string("*")),
        std::make_pair(std::string("*"), to),
        std::make_pair(std::string("*"), std::string("*"))}) {
    auto it = routes_.find(key);
    if (it != routes_.end()) return it->second;
  }
  return not_found("no route " + from + " -> " + to);
}

sim::Co<Status> Network::transfer(std::string from, std::string to,
                                  uint64_t bytes, double weight) {
  auto links = route(from, to);
  if (!links.ok()) co_return links.status();
  if (fault_injector_ != nullptr) {
    std::string flow = from + "->" + to;
    if (fault_injector_->should_fail("net.partition", flow)) {
      co_return unavailable("fault:net.partition " + flow);
    }
    if (fault_injector_->should_fail("net.flap", flow)) {
      co_return unavailable("fault:net.flap " + flow);
    }
    if (fault_injector_->should_fail("net.stall", flow)) {
      // Gray failure: the flow eventually completes, but only after a stall
      // long enough that a per-op deadline should have abandoned it.
      co_await engine_->sleep(
          fault_injector_->param("net.stall-seconds", 30.0));
    }
  }
  // Charge all hops concurrently; the flow completes when the slowest
  // (most contended) hop finishes.
  std::vector<sim::Completion> hops;
  hops.reserve(links->size());
  for (Link* link : *links) {
    hops.push_back(engine_->spawn(link->transfer(bytes, weight)));
  }
  co_await sim::all(std::move(hops));
  co_return Status::ok();
}

sim::Co<Status> Network::broadcast(std::string source,
                                   std::vector<std::string> targets,
                                   uint64_t bytes, BroadcastOptions options) {
  if (targets.empty()) co_return Status::ok();

  // Resolve every route up-front so failures are reported before any time
  // is spent.
  std::vector<std::vector<Link*>> target_routes;
  target_routes.reserve(targets.size());
  for (const auto& target : targets) {
    auto links = route(source, target);
    if (!links.ok()) co_return links.status();
    target_routes.push_back(std::move(*links));
  }

  // Pipeline startup: the torrent distribution tree reaches all receivers
  // after ceil(log2(n+1)) doubling rounds.
  double rounds =
      std::ceil(std::log2(static_cast<double>(targets.size()) + 1.0));
  co_await engine_->sleep(rounds * options.round_latency);

  std::vector<sim::Completion> parts;
  // Seed egress: the first link of the first route is the sender's NIC.
  if (!target_routes.front().empty()) {
    Link* egress = target_routes.front().front();
    uint64_t egress_bytes = options.mode == BroadcastMode::kBitTorrent
                                ? bytes
                                : bytes * targets.size();
    parts.push_back(engine_->spawn(egress->transfer(egress_bytes)));
  }
  // Receiver side: every target ingests the full payload over the non-egress
  // hops of its route.
  for (const auto& links : target_routes) {
    for (size_t hop = 1; hop < links.size(); ++hop) {
      parts.push_back(engine_->spawn(links[hop]->transfer(bytes)));
    }
  }
  co_await sim::all(std::move(parts));
  co_return Status::ok();
}

uint64_t Network::total_bytes_carried() const {
  uint64_t total = 0;
  for (const auto& link : links_) total += link->stats().bytes_carried;
  return total;
}

}  // namespace ompcloud::net
