// Simulated network topology: named nodes, owned links, directional routes,
// point-to-point transfers and one-to-many broadcast.
//
// Paper mapping: the host reaches cloud storage over a WAN ("a realistic
// test-case where the client computer is far away from the cloud
// data-center", §IV); driver, workers and storage share a datacenter LAN;
// Spark broadcasts unpartitioned inputs "using the BitTorrent protocol"
// (§III-B/C), whose defining property — the seed uploads ≈1 copy regardless
// of the number of receivers — is modeled by `broadcast`.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/link.h"
#include "support/fault.h"
#include "support/status.h"

namespace ompcloud::net {

/// Broadcast distribution strategy.
enum class BroadcastMode {
  kBitTorrent,  ///< peers re-share: seed egress carries ~1x payload
  kUnicast,     ///< naive: seed egress carries targets x payload
};

struct BroadcastOptions {
  BroadcastMode mode = BroadcastMode::kBitTorrent;
  /// Per-round pipeline startup latency multiplier; the torrent tree needs
  /// ceil(log2(targets+1)) rounds to reach everyone.
  double round_latency = 0.0005;
};

/// Node-and-route graph. Links are owned by the network; routes are ordered
/// link lists where by convention the FIRST link is the sender's egress and
/// the remaining links are shared fabric / receiver ingress.
class Network {
 public:
  explicit Network(sim::Engine& engine) : engine_(&engine) {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] sim::Engine& engine() { return *engine_; }

  /// Creates and owns a link. Name must be unique.
  Link& add_link(const std::string& name, double bandwidth_bytes_per_sec,
                 double latency_seconds);

  [[nodiscard]] Link* find_link(const std::string& name);

  /// Declares the directional route `from` -> `to` as an ordered link list.
  /// "*" acts as a wildcard for either endpoint (exact match wins).
  void set_route(const std::string& from, const std::string& to,
                 std::vector<Link*> links);

  /// Resolves a route; kNotFound if neither exact nor wildcard matches.
  [[nodiscard]] Result<std::vector<Link*>> route(const std::string& from,
                                                 const std::string& to) const;

  /// Transfers `bytes` from `from` to `to`: all route links are charged
  /// concurrently (flow completes when the slowest link delivers), which
  /// approximates a pipelined multi-hop flow bottlenecked by the most
  /// contended link. Throws Status-derived errors via Result at call site:
  /// the returned Co resolves after delivery; unknown routes fail fast.
  /// NOTE: string parameters are by value — coroutine frames must own
  /// their arguments (callers routinely pass temporaries).
  [[nodiscard]] sim::Co<Status> transfer(std::string from, std::string to,
                                         uint64_t bytes, double weight = 1.0);

  /// One-to-many distribution of the same payload. BitTorrent mode charges
  /// the seed egress once and every receiver ingress once, after
  /// ceil(log2(n+1)) pipeline-startup rounds; unicast mode charges the seed
  /// egress n times (the ablation baseline).
  [[nodiscard]] sim::Co<Status> broadcast(std::string source,
                                          std::vector<std::string> targets,
                                          uint64_t bytes,
                                          BroadcastOptions options = {});

  /// Total bytes carried across all links (each hop counts).
  [[nodiscard]] uint64_t total_bytes_carried() const;

  /// Attaches a fault injector (support/fault.h); every `transfer` then
  /// probes `net.flap` (mid-flight failure), `net.partition` (scheduled
  /// outage window), and `net.stall` (`net.stall-seconds` of extra delay, a
  /// hung-transfer model that per-op deadlines must cut short). Null
  /// detaches; the network borrows the pointer (owner: cloud::Cluster).
  void set_fault_injector(fault::FaultInjector* injector) {
    fault_injector_ = injector;
  }
  [[nodiscard]] fault::FaultInjector* fault_injector() {
    return fault_injector_;
  }

 private:
  fault::FaultInjector* fault_injector_ = nullptr;
  sim::Engine* engine_;
  std::vector<std::unique_ptr<Link>> links_;
  std::map<std::string, Link*> links_by_name_;
  std::map<std::pair<std::string, std::string>, std::vector<Link*>> routes_;
};

}  // namespace ompcloud::net
