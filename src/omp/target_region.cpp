#include "omp/target_region.h"

#include <memory>
#include <optional>

namespace ompcloud::omp {

std::string_view to_string(Construct construct) {
  switch (construct) {
    case Construct::kAtomic: return "atomic";
    case Construct::kFlush: return "flush";
    case Construct::kBarrier: return "barrier";
    case Construct::kCritical: return "critical";
    case Construct::kMaster: return "master";
  }
  return "?";
}

// --- ParallelFor -------------------------------------------------------------

spark::LoopSpec& ParallelFor::loop() {
  return region_->region_.loops[loop_index_];
}

ParallelFor& ParallelFor::read(VarHandle var) {
  loop().reads.push_back(
      {var.index, spark::LoopAccess::Mode::kReadBroadcast, {}, {}});
  return *this;
}

ParallelFor& ParallelFor::read_partitioned(VarHandle var,
                                           spark::AffineRange partition) {
  loop().reads.push_back(
      {var.index, spark::LoopAccess::Mode::kReadPartitioned, partition, {}});
  return *this;
}

ParallelFor& ParallelFor::write_partitioned(VarHandle var,
                                            spark::AffineRange partition) {
  loop().writes.push_back(
      {var.index, spark::LoopAccess::Mode::kWritePartitioned, partition, {}});
  return *this;
}

ParallelFor& ParallelFor::write_shared(VarHandle var) {
  loop().writes.push_back(
      {var.index, spark::LoopAccess::Mode::kWriteShared, {},
       {spark::ReduceOp::kBitOr, spark::ElemType::kF32}});
  return *this;
}

ParallelFor& ParallelFor::reduction(VarHandle var, spark::ReduceOp op,
                                    spark::ElemType type) {
  loop().writes.push_back(
      {var.index, spark::LoopAccess::Mode::kWriteShared, {}, {op, type}});
  return *this;
}

ParallelFor& ParallelFor::cost_flops(double flops_per_iteration) {
  loop().flops_per_iteration = flops_per_iteration;
  return *this;
}

ParallelFor& ParallelFor::tiles(int64_t tile_count) {
  loop().explicit_tiles = tile_count;
  return *this;
}

ParallelFor& ParallelFor::body(const std::string& kernel_name,
                               jni::LoopBodyFn fn) {
  std::string full_name = region_->name() + "." + kernel_name;
  jni::KernelRegistry::instance().register_kernel(full_name, std::move(fn));
  loop().kernel = full_name;
  return *this;
}

ParallelFor& ParallelFor::kernel(const std::string& registered_name) {
  loop().kernel = registered_name;
  return *this;
}

// --- TargetRegion ------------------------------------------------------------

TargetRegion::TargetRegion(omptarget::DeviceManager& devices, std::string name)
    : devices_(&devices), name_(std::move(name)) {
  region_.name = name_;
}

TargetRegion& TargetRegion::device(int device_id) {
  device_id_ = device_id;
  return *this;
}

TargetRegion& TargetRegion::tenant(std::string name) {
  tenant_ = name.empty() ? "default" : std::move(name);
  return *this;
}

VarHandle TargetRegion::add_var(const std::string& name, void* data,
                                uint64_t bytes, omptarget::MapType type) {
  region_.vars.push_back({name, data, bytes, type});
  return {static_cast<int>(region_.vars.size()) - 1};
}

ParallelFor TargetRegion::parallel_for(int64_t iterations) {
  spark::LoopSpec loop;
  loop.iterations = iterations;
  region_.loops.push_back(std::move(loop));
  return ParallelFor(this, region_.loops.size() - 1);
}

void TargetRegion::set_explicit_tiles(int64_t tiles) {
  for (spark::LoopSpec& loop : region_.loops) loop.explicit_tiles = tiles;
}

Status TargetRegion::use(Construct construct) {
  // §III-D: "offloaded OpenMP regions that use atomic, flush, barrier,
  // critical, or master directives are not supported" — Spark's distributed
  // architecture has no shared memory to synchronize.
  poison_ = unimplemented(
      "OpenMP '" + std::string(to_string(construct)) +
      "' requires shared-memory synchronization, which the cloud device "
      "(map-reduce execution model) does not provide");
  return poison_;
}

Result<omptarget::TargetRegion> TargetRegion::lower() const {
  OC_RETURN_IF_ERROR(poison_);
  OC_RETURN_IF_ERROR(region_.validate());
  for (const spark::LoopSpec& loop : region_.loops) {
    if (loop.kernel.empty()) {
      return failed_precondition("loop in region '" + name_ +
                                 "' has no body()/kernel()");
    }
  }
  return region_;
}

omptarget::SubmitOptions TargetRegion::submit_options() const {
  omptarget::SubmitOptions options = options_;
  options.device_id = device_id_;
  options.tenant = tenant_;
  return options;
}

sim::Co<Result<omptarget::OffloadReport>> TargetRegion::execute() {
  OC_CO_ASSIGN_OR_RETURN(omptarget::TargetRegion lowered, lower());
  co_return co_await devices_->offload_queued(std::move(lowered),
                                              submit_options());
}

Result<omptarget::OffloadReport> TargetRegion::Async::result() const {
  if (!result_->has_value()) {
    return failed_precondition(
        "offload still in flight: await completion() before result()");
  }
  return **result_;
}

TargetRegion::Async TargetRegion::execute_async() {
  options_.nowait = true;  // observability: tagged on the sched.queue span
  Async handle;
  handle.completion_ = devices_->engine().spawn(
      [](TargetRegion* region,
         std::shared_ptr<std::optional<Result<omptarget::OffloadReport>>> out)
          -> sim::Co<void> {
        *out = co_await region->execute();
      }(this, handle.result_));
  return handle;
}

Result<omptarget::OffloadReport> offload_blocking(sim::Engine& engine,
                                                  TargetRegion& region) {
  auto result =
      std::make_shared<std::optional<Result<omptarget::OffloadReport>>>();
  engine.spawn([](TargetRegion* region,
                  std::shared_ptr<std::optional<Result<omptarget::OffloadReport>>>
                      out) -> sim::Co<void> {
    *out = co_await region->execute();
  }(&region, result));
  engine.run();
  if (!result->has_value()) {
    return internal_error("offload never completed (deadlocked simulation?)");
  }
  return std::move(**result);
}

}  // namespace ompcloud::omp
