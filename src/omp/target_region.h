// User-facing OpenMP accelerator-model DSL.
//
// This is the programmer's view from Listings 1 and 2 of the paper,
// expressed as a builder (standing in for Clang's pragma lowering):
//
//   omp::TargetRegion region(devices, "MatMul");
//   region.device(cloud_id);
//   auto A = region.map_to("A", a.data(), N * N);       // map(to: A[:N*N])
//   auto B = region.map_to("B", b.data(), N * N);
//   auto C = region.map_from("C", c.data(), N * N);     // map(from: C[:N*N])
//   region.parallel_for(N)                               // parallel for
//       .read_partitioned(A, omp::rows<float>(N))        // Listing 2, line 5
//       .read(B)                                         //   B broadcast
//       .write_partitioned(C, omp::rows<float>(N))
//       .cost_flops(2.0 * N * N)
//       .body("matmul", MatMulBody);
//   auto report = omp::offload_blocking(engine, region);
//
// Unsupported synchronization constructs (§III-D: atomic, flush, barrier,
// critical, master) are rejected at build time with kUnimplemented.
#pragma once

#include <string>
#include <vector>

#include "jnibridge/bridge.h"
#include "omptarget/device.h"

namespace ompcloud::omp {

/// Handle to a mapped variable inside a region.
struct VarHandle {
  int index = -1;
};

/// Row-partition helper: iteration i owns `row_elems` consecutive elements
/// of type T — the paper's `map(to: A[i*N:(i+1)*N])`.
template <typename T>
spark::AffineRange rows(size_t row_elems) {
  return spark::AffineRange::rows(row_elems * sizeof(T));
}

/// Synchronization constructs the cloud device cannot honor (§III-D).
enum class Construct { kAtomic, kFlush, kBarrier, kCritical, kMaster };

std::string_view to_string(Construct construct);

class TargetRegion;

/// Builder for one `parallel for` loop inside the region.
class ParallelFor {
 public:
  /// map(to:) whole-variable read: broadcast to every worker.
  ParallelFor& read(VarHandle var);
  /// Listing 2 extension: per-iteration input slice.
  ParallelFor& read_partitioned(VarHandle var, spark::AffineRange partition);
  /// Per-iteration output slice (reconstructed by indexed writes).
  ParallelFor& write_partitioned(VarHandle var, spark::AffineRange partition);
  /// Whole-variable output (reconstructed by bitwise-or, Eq. 8).
  ParallelFor& write_shared(VarHandle var);
  /// OpenMP reduction(op:) variable.
  ParallelFor& reduction(VarHandle var, spark::ReduceOp op,
                         spark::ElemType type);
  /// Cost model: flops per loop iteration (what the compiler estimates).
  ParallelFor& cost_flops(double flops_per_iteration);
  /// Overrides Algorithm-1 tiling with an explicit tile count (ablations;
  /// `iterations` tiles = untiled).
  ParallelFor& tiles(int64_t tile_count);
  /// Supplies the loop body and registers it in the fat-binary kernel
  /// registry under `<region>.<kernel_name>`.
  ParallelFor& body(const std::string& kernel_name, jni::LoopBodyFn fn);
  /// References an already-registered kernel instead.
  ParallelFor& kernel(const std::string& registered_name);

 private:
  friend class TargetRegion;
  ParallelFor(TargetRegion* region, size_t loop_index)
      : region_(region), loop_index_(loop_index) {}
  spark::LoopSpec& loop();

  TargetRegion* region_;
  size_t loop_index_;
};

/// Builder for a whole `#pragma omp target` region.
class TargetRegion {
 public:
  TargetRegion(omptarget::DeviceManager& devices, std::string name);

  /// device(N) clause. Defaults to the host device.
  TargetRegion& device(int device_id);

  /// Tenant (scheduling pool) this region is attributed to when the device
  /// manager has an admission scheduler in FAIR mode. Defaults to
  /// "default".
  TargetRegion& tenant(std::string name);

  /// Scheduling priority (higher dispatches first; may preempt queued
  /// lower-priority work when the admission queue is full).
  TargetRegion& priority(int priority) {
    options_.priority = priority;
    return *this;
  }

  /// SLO completion budget in virtual seconds (0 = none). Hopeless or
  /// expired deadlines fail with kDeadlineExceeded.
  TargetRegion& deadline(double seconds) {
    options_.deadline_seconds = seconds;
    return *this;
  }

  /// Informational SLO bucket ("interactive", "batch", ...).
  TargetRegion& latency_class(std::string name) {
    options_.latency_class = std::move(name);
    return *this;
  }

  /// Opts this region out of micro-batch coalescing.
  TargetRegion& no_batching() {
    options_.allow_batching = false;
    return *this;
  }

  /// `#pragma omp target data`-style enclosing environment: mapped buffers
  /// registered in `env` stay cloud-resident between consecutive regions
  /// (uploads are skipped, downloads deferred to environment exit). The
  /// environment must outlive every execution of this region.
  TargetRegion& in_environment(omptarget::DataEnvironment& env) {
    region_.env = &env;
    return *this;
  }

  /// map clauses; `count` is in elements of T.
  template <typename T>
  VarHandle map_to(const std::string& name, const T* data, size_t count) {
    return add_var(name, const_cast<T*>(data), count * sizeof(T),
                   omptarget::MapType::kTo);
  }
  template <typename T>
  VarHandle map_from(const std::string& name, T* data, size_t count) {
    return add_var(name, data, count * sizeof(T), omptarget::MapType::kFrom);
  }
  template <typename T>
  VarHandle map_tofrom(const std::string& name, T* data, size_t count) {
    return add_var(name, data, count * sizeof(T), omptarget::MapType::kToFrom);
  }
  /// Device-side scratch that never moves (intermediates of multi-loop
  /// regions still need a host shadow for fallback execution).
  template <typename T>
  VarHandle map_alloc(const std::string& name, T* scratch, size_t count) {
    return add_var(name, scratch, count * sizeof(T), omptarget::MapType::kAlloc);
  }

  /// Opens a new `parallel for` loop of `iterations` iterations.
  ParallelFor parallel_for(int64_t iterations);

  /// Declares use of a synchronization construct; always fails with
  /// kUnimplemented on the cloud device model and poisons the region.
  Status use(Construct construct);

  /// Overrides Algorithm-1 tiling for every loop in the region (0 restores
  /// the default; `iterations` tiles = fully untiled). Used by ablations.
  void set_explicit_tiles(int64_t tiles);

  /// Lowers to the runtime TargetRegion (what the compiler would embed).
  [[nodiscard]] Result<omptarget::TargetRegion> lower() const;

  /// Offloads through the device manager (with dynamic host fallback).
  [[nodiscard]] sim::Co<Result<omptarget::OffloadReport>> execute();

  /// `#pragma omp target ... nowait`: starts the offload and returns
  /// immediately; the host continues and joins later. The handle's
  /// `completion()` is awaitable; `result()` is safe to call at any time.
  class Async {
   public:
    [[nodiscard]] bool done() const { return result_->has_value(); }
    /// Awaitable join (use inside a coroutine).
    [[nodiscard]] sim::Completion completion() const { return completion_; }
    /// The report. Before `done()` this returns kFailedPrecondition rather
    /// than touching the (not yet produced) report.
    [[nodiscard]] Result<omptarget::OffloadReport> result() const;

   private:
    friend class TargetRegion;
    sim::Completion completion_;
    std::shared_ptr<std::optional<Result<omptarget::OffloadReport>>> result_ =
        std::make_shared<std::optional<Result<omptarget::OffloadReport>>>();
  };

  /// Launches the offload without blocking (the caller must keep this
  /// region alive until the returned handle is done). Runs on the device
  /// manager's engine.
  [[nodiscard]] Async execute_async();

  [[nodiscard]] int device_id() const { return device_id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::string& tenant() const { return tenant_; }

  /// The SubmitOptions this region's clauses lower to (what `execute()`
  /// hands the admission scheduler).
  [[nodiscard]] omptarget::SubmitOptions submit_options() const;

 private:
  friend class ParallelFor;
  VarHandle add_var(const std::string& name, void* data, uint64_t bytes,
                    omptarget::MapType type);

  omptarget::DeviceManager* devices_;
  std::string name_;
  std::string tenant_ = "default";
  int device_id_ = omptarget::DeviceManager::host_device_id();
  omptarget::SubmitOptions options_;  ///< device/tenant filled at lowering
  omptarget::TargetRegion region_;
  Status poison_ = Status::ok();
};

/// Convenience for examples/benches running outside a coroutine: spawns the
/// offload on the engine and drives it to completion.
Result<omptarget::OffloadReport> offload_blocking(sim::Engine& engine,
                                                  TargetRegion& region);

}  // namespace ompcloud::omp
