#include "omptarget/batch.h"

#include <cstring>

#include "support/strings.h"

namespace ompcloud::omptarget::batch {

namespace {

/// How the merger treats one variable of an eligible region.
struct VarClass {
  bool concat = false;   ///< member buffers concatenated along iterations
  bool has_ptr = false;  ///< host shadow present (alloc vars may have none)
  int64_t stride = 0;    ///< rows-partition stride in bytes (0: unpartitioned)
};

/// Classifies every variable of `region`, or nullopt when the region cannot
/// coalesce. Shared rules for signature() and coalesce() so they never
/// disagree.
std::optional<std::vector<VarClass>> classify(const TargetRegion& region) {
  if (region.env != nullptr) return std::nullopt;   // residency: never batch
  if (!region.slices.empty()) return std::nullopt;  // already a batch
  if (region.vars.empty() || region.loops.empty()) return std::nullopt;

  const int64_t n = region.loops.front().iterations;
  if (n <= 0) return std::nullopt;

  enum Seen : uint8_t { kNone = 0, kBroadcast = 1, kPartitioned = 2 };
  std::vector<uint8_t> seen(region.vars.size(), kNone);
  std::vector<int64_t> stride(region.vars.size(), 0);

  auto note = [&](const spark::LoopAccess& access, bool write) -> bool {
    if (access.var < 0 || access.var >= static_cast<int>(region.vars.size())) {
      return false;
    }
    auto v = static_cast<size_t>(access.var);
    switch (access.mode) {
      case spark::LoopAccess::Mode::kReadBroadcast:
        if (write) return false;
        seen[v] |= kBroadcast;
        return true;
      case spark::LoopAccess::Mode::kReadPartitioned:
      case spark::LoopAccess::Mode::kWritePartitioned: {
        // Only exact row partitions concatenate: [b*i, b*(i+1)) per
        // iteration, covering the variable exactly (size == b*n).
        const spark::AffineRange& p = access.partition;
        if (p.lo_base != 0 || p.lo_coeff <= 0 || p.hi_coeff != p.lo_coeff ||
            p.hi_base != p.hi_coeff) {
          return false;
        }
        if (stride[v] != 0 && stride[v] != p.lo_coeff) return false;
        stride[v] = p.lo_coeff;
        if (region.vars[v].size_bytes !=
            static_cast<uint64_t>(p.lo_coeff) * static_cast<uint64_t>(n)) {
          return false;
        }
        seen[v] |= kPartitioned;
        return true;
      }
      case spark::LoopAccess::Mode::kWriteShared:
        return false;  // reductions / bit-or recombination: never batch
    }
    return false;
  };

  for (const spark::LoopSpec& loop : region.loops) {
    if (loop.kernel.empty()) return std::nullopt;
    if (loop.explicit_tiles != 0) return std::nullopt;  // tiling ablations
    if (loop.iterations != n) return std::nullopt;
    for (const spark::LoopAccess& access : loop.reads) {
      if (!note(access, /*write=*/false)) return std::nullopt;
    }
    for (const spark::LoopAccess& access : loop.writes) {
      if (!note(access, /*write=*/true)) return std::nullopt;
    }
  }

  std::vector<VarClass> classes(region.vars.size());
  for (size_t v = 0; v < region.vars.size(); ++v) {
    const MappedVar& var = region.vars[v];
    // A variable read broadcast anywhere must be broadcast-read-only input:
    // merging would otherwise expose one member's concatenated data to all.
    if ((seen[v] & kBroadcast) != 0) {
      if ((seen[v] & kPartitioned) != 0) return std::nullopt;
      if (var.maps_from() || var.map_type == MapType::kAlloc) {
        return std::nullopt;
      }
      classes[v] = {/*concat=*/false, var.host_ptr != nullptr, 0};
      continue;
    }
    // Everything else — partitioned, alloc scratch, or unreferenced —
    // concatenates along the iteration axis.
    classes[v] = {/*concat=*/true, var.host_ptr != nullptr, stride[v]};
  }
  return classes;
}

}  // namespace

uint64_t mapped_bytes(const TargetRegion& region) {
  uint64_t total = 0;
  for (const MappedVar& var : region.vars) total += var.size_bytes;
  return total;
}

std::optional<std::string> signature(const TargetRegion& region,
                                     uint64_t max_bytes) {
  auto classes = classify(region);
  if (!classes.has_value()) return std::nullopt;
  if (max_bytes > 0 && mapped_bytes(region) > max_bytes) return std::nullopt;

  std::string sig =
      str_format("n=%lld", static_cast<long long>(region.loops.front().iterations));
  for (size_t v = 0; v < region.vars.size(); ++v) {
    const MappedVar& var = region.vars[v];
    const VarClass& cls = (*classes)[v];
    sig += str_format(";v%zu=%d:%c:%llu", v, static_cast<int>(var.map_type),
                      cls.concat ? 'c' : 's',
                      static_cast<unsigned long long>(var.size_bytes));
    if (!cls.concat) {
      // Shared broadcast inputs only merge when they are literally the same
      // host buffer (staged once for the whole batch) — the pointer is the
      // identity.
      sig += str_format(":%p", var.host_ptr);
    } else {
      sig += cls.has_ptr ? ":p" : ":0";
    }
  }
  for (const spark::LoopSpec& loop : region.loops) {
    sig += ";l=" + loop.kernel + str_format(":%g", loop.flops_per_iteration);
    auto add_access = [&sig](const spark::LoopAccess& access) {
      sig += str_format(",%d/%d/%lld", static_cast<int>(access.mode),
                        access.var,
                        static_cast<long long>(access.partition.lo_coeff));
    };
    sig += ":r";
    for (const spark::LoopAccess& access : loop.reads) add_access(access);
    sig += ":w";
    for (const spark::LoopAccess& access : loop.writes) add_access(access);
  }
  return sig;
}

Result<BatchPlan> BatchPlan::coalesce(std::vector<Member> members,
                                      uint64_t batch_id) {
  if (members.size() < 2) {
    return invalid_argument("batch: need at least two member regions");
  }
  auto classes = classify(members.front().region);
  if (!classes.has_value()) {
    return invalid_argument("batch: member region is not batch-eligible");
  }
  {
    const TargetRegion& proto = members.front().region;
    for (const Member& member : members) {
      if (member.region.vars.size() != proto.vars.size() ||
          member.region.loops.size() != proto.loops.size() ||
          member.region.loops.front().iterations !=
              proto.loops.front().iterations) {
        return internal_error("batch: members have mismatched shapes");
      }
    }
  }

  BatchPlan plan;
  plan.batch_id_ = batch_id;
  plan.members_ = std::move(members);
  const TargetRegion& first = plan.members_.front().region;
  const size_t count = plan.members_.size();
  const int64_t n = first.loops.front().iterations;

  plan.merged_.name = str_format("batch#%llu",
                                 static_cast<unsigned long long>(batch_id));
  plan.merged_.env = nullptr;

  plan.vars_.resize(first.vars.size());
  plan.merged_.vars.resize(first.vars.size());
  for (size_t v = 0; v < first.vars.size(); ++v) {
    const MappedVar& proto = plan.members_.front().region.vars[v];
    VarMerge& merge = plan.vars_[v];
    MappedVar merged_var = proto;
    if (!(*classes)[v].concat) {
      // Shared broadcast input: identical buffer in every member (enforced
      // by the signature); mapped once.
      plan.merged_.vars[v] = merged_var;
      continue;
    }
    merge.concatenated = true;
    uint64_t total = 0;
    merge.member_offsets.reserve(count);
    merge.member_sizes.reserve(count);
    for (const Member& member : plan.members_) {
      merge.member_offsets.push_back(total);
      merge.member_sizes.push_back(member.region.vars[v].size_bytes);
      total += member.region.vars[v].size_bytes;
    }
    merged_var.size_bytes = total;
    if ((*classes)[v].has_ptr) {
      merge.storage = ByteBuffer(total);
      for (size_t m = 0; m < count; ++m) {
        const MappedVar& src = plan.members_[m].region.vars[v];
        if (src.host_ptr == nullptr) {
          return internal_error("batch: mixed alloc shadows across members");
        }
        std::memcpy(merge.storage.data() + merge.member_offsets[m],
                    src.host_ptr, merge.member_sizes[m]);
      }
      merged_var.host_ptr = merge.storage.data();
    } else {
      merged_var.host_ptr = nullptr;  // device-only scratch in every member
    }
    plan.merged_.vars[v] = merged_var;
  }

  plan.merged_.loops = first.loops;
  for (spark::LoopSpec& loop : plan.merged_.loops) {
    loop.iterations = n * static_cast<int64_t>(count);
  }
  plan.merged_.slices.reserve(count);
  for (size_t m = 0; m < count; ++m) {
    plan.merged_.slices.push_back(
        {plan.members_[m].region.name, plan.members_[m].tenant,
         static_cast<int64_t>(m) * n, static_cast<int64_t>(m + 1) * n});
  }
  return plan;
}

void BatchPlan::scatter() {
  for (size_t v = 0; v < merged_.vars.size(); ++v) {
    const VarMerge& merge = vars_[v];
    if (!merge.concatenated || merge.storage.size() == 0) continue;
    if (!merged_.vars[v].maps_from()) continue;
    for (size_t m = 0; m < members_.size(); ++m) {
      void* dst = members_[m].region.vars[v].host_ptr;
      if (dst == nullptr) continue;
      std::memcpy(dst, merge.storage.data() + merge.member_offsets[m],
                  merge.member_sizes[m]);
    }
  }
}

OffloadReport BatchPlan::member_report(const OffloadReport& batch) const {
  OffloadReport report = batch;
  const double share = 1.0 / static_cast<double>(members_.size());
  auto scale = [share](uint64_t bytes) {
    return static_cast<uint64_t>(static_cast<double>(bytes) * share);
  };
  report.uploaded_plain_bytes = scale(batch.uploaded_plain_bytes);
  report.uploaded_wire_bytes = scale(batch.uploaded_wire_bytes);
  report.downloaded_plain_bytes = scale(batch.downloaded_plain_bytes);
  report.downloaded_wire_bytes = scale(batch.downloaded_wire_bytes);
  report.resident_upload_skipped_bytes =
      scale(batch.resident_upload_skipped_bytes);
  report.resident_download_deferred_bytes =
      scale(batch.resident_download_deferred_bytes);
  report.cost_usd = batch.cost_usd * share;
  report.batch_size = static_cast<int>(members_.size());
  return report;
}

}  // namespace ompcloud::omptarget::batch
