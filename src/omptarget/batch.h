// Micro-batch coalescer: merges compatible small target regions queued by
// different sessions/tenants into ONE shared Spark job, amortizing the
// per-job driver spin-up (SSH + spark-submit + JVM, ~seconds) and JNI setup
// the same way the paper's Algorithm 1 tiling amortizes per-iteration
// overhead — applied across tenants instead of across iterations.
//
// Mergeability is structural: two regions coalesce when they run the same
// kernels over the same loop shapes (iteration count, flops, partition
// strides), their partitioned variables are exact row partitions
// (`AffineRange::rows`), and every broadcast-read-only variable is
// *literally the same host buffer* in both (the shared-weights model: one
// model, many requests — the broadcast is staged once for the whole batch).
// Per-member buffers are concatenated along the iteration axis; because JNI
// kernels index slices with *global* loop subscripts (jnibridge/bridge.h,
// SliceView subtracts the slice offset), member kernels run unchanged over
// their sub-range of the concatenation, so a batched run is byte-identical
// to the same members run one by one.
//
// Regions inside a data environment, with reductions/shared writes, or with
// explicit tile overrides never coalesce.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "omptarget/device.h"
#include "support/bytes.h"

namespace ompcloud::omptarget::batch {

/// Structural compatibility key of `region`: regions with equal signatures
/// (and mapped footprint <= `max_bytes`) may coalesce into one job.
/// Returns nullopt when the region is batch-ineligible.
[[nodiscard]] std::optional<std::string> signature(const TargetRegion& region,
                                                   uint64_t max_bytes);

/// Total bytes the region maps (the `scheduler.batch-bytes` eligibility
/// measure).
[[nodiscard]] uint64_t mapped_bytes(const TargetRegion& region);

/// One region admitted into a batch.
struct Member {
  TargetRegion region;
  std::string tenant = "default";
};

/// A coalesced batch: owns the concatenated buffers backing the merged
/// region's variables. Lifetime: coalesce -> offload merged() -> scatter()
/// -> member_report() per member.
class BatchPlan {
 public:
  /// Merges `members` (all sharing one `signature`) into one region named
  /// `batch#<batch_id>`. Gathers member buffers into batch-owned
  /// concatenations (host-side memcpy: free in virtual time, like the
  /// fallback snapshots in device.cpp).
  [[nodiscard]] static Result<BatchPlan> coalesce(std::vector<Member> members,
                                                  uint64_t batch_id);

  [[nodiscard]] const TargetRegion& merged() const { return merged_; }
  /// The merged region to offload. The plan stays the owner of the
  /// concatenated buffers — keep it alive until `scatter()`.
  [[nodiscard]] TargetRegion merged_region() const { return merged_; }

  [[nodiscard]] size_t size() const { return members_.size(); }
  [[nodiscard]] uint64_t batch_id() const { return batch_id_; }
  [[nodiscard]] const std::vector<Member>& members() const { return members_; }

  /// After the merged region completed (device or host-fallback path):
  /// copies each member's slice of every map(from:)/map(tofrom:)
  /// concatenation back into the member's own host buffers.
  void scatter();

  /// Per-member view of the batch-level report: seconds are the batch's
  /// wall clock (every member waited for the shared job), bytes and cost
  /// are the member's pro-rata share (members are shape-identical, so the
  /// share is 1/size), `batch_size` is the member count.
  [[nodiscard]] OffloadReport member_report(const OffloadReport& batch) const;

 private:
  /// How one merged variable maps onto member buffers.
  struct VarMerge {
    bool concatenated = false;  ///< false: shared broadcast buffer, as-is
    ByteBuffer storage;         ///< owns the concatenation
    std::vector<uint64_t> member_offsets;  ///< byte offset of each member
    std::vector<uint64_t> member_sizes;
  };

  std::vector<Member> members_;
  TargetRegion merged_;
  std::vector<VarMerge> vars_;  ///< index-aligned with merged_.vars
  uint64_t batch_id_ = 0;
};

}  // namespace ompcloud::omptarget::batch
