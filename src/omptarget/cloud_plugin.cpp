#include "omptarget/cloud_plugin.h"

#include <algorithm>
#include <cstring>

#include "compress/payload.h"
#include "support/strings.h"

namespace ompcloud::omptarget {

Result<CloudPluginOptions> CloudPluginOptions::from_config(
    const Config& config) {
  CloudPluginOptions options;
  options.bucket = config.get_string("offload.bucket", options.bucket);
  options.codec = config.get_string("offload.compression", options.codec);
  OC_ASSIGN_OR_RETURN(const compress::Codec* codec,
                      compress::find_codec(options.codec));
  (void)codec;
  options.min_compress_size = config.get_byte_size(
      "offload.compression-min-size", options.min_compress_size);
  options.chunk_size =
      config.get_byte_size("offload.chunk-size", options.chunk_size);
  options.overlap_transfers =
      config.get_bool("offload.overlap-transfers", options.overlap_transfers);
  options.transfer_threads = static_cast<int>(
      config.get_int("offload.transfer-threads", options.transfer_threads));
  if (options.transfer_threads < 0) {
    return invalid_argument("offload.transfer-threads must be >= 0");
  }
  options.storage_retries = static_cast<int>(
      config.get_int("offload.storage-retries", options.storage_retries));
  options.retry_backoff_seconds = config.get_duration(
      "offload.retry-backoff", options.retry_backoff_seconds);
  options.cleanup = config.get_bool("offload.cleanup", options.cleanup);
  options.stream_spark_logs =
      config.get_bool("offload.stream-spark-logs", options.stream_spark_logs);
  options.cache_data = config.get_bool("offload.cache-data", options.cache_data);
  return options;
}

CloudPlugin::CloudPlugin(cloud::Cluster& cluster, spark::SparkConf conf,
                         CloudPluginOptions options)
    : cluster_(&cluster),
      context_(cluster, std::move(conf)),
      options_(std::move(options)),
      name_("cloud(" + cluster.spec().provider + "+" +
            cluster.spec().storage_type + ")") {}

Result<std::unique_ptr<CloudPlugin>> CloudPlugin::from_config(
    sim::Engine& engine, const Config& config) {
  OC_ASSIGN_OR_RETURN(cloud::ClusterSpec spec,
                      cloud::ClusterSpec::from_config(config));
  OC_ASSIGN_OR_RETURN(spark::SparkConf conf, spark::SparkConf::from_config(config));
  OC_ASSIGN_OR_RETURN(CloudPluginOptions options,
                      CloudPluginOptions::from_config(config));
  auto cluster = std::make_unique<cloud::Cluster>(
      engine, std::move(spec), cloud::SimProfile::from_config(config));
  auto plugin = std::make_unique<CloudPlugin>(*cluster, std::move(conf),
                                              std::move(options));
  plugin->owned_cluster_ = std::move(cluster);
  return plugin;
}

bool CloudPlugin::is_available() const {
  return cluster_->running() || cluster_->spec().on_the_fly;
}

std::vector<std::string> CloudPlugin::staged_names(const TargetRegion& region,
                                                   bool stable_prefix) {
  std::string prefix =
      stable_prefix
          ? region.name + "/"
          : str_format("%s#%llu/", region.name.c_str(),
                       static_cast<unsigned long long>(next_invocation_++));
  std::vector<std::string> names;
  names.reserve(region.vars.size());
  for (const MappedVar& var : region.vars) names.push_back(prefix + var.name);
  return names;
}

sim::Co<Status> CloudPlugin::put_with_retry(std::string key, ByteBuffer frame) {
  auto& engine = cluster_->engine();
  Status put = Status::ok();
  for (int attempt = 0; attempt <= options_.storage_retries; ++attempt) {
    if (attempt > 0) {
      co_await engine.sleep(options_.retry_backoff_seconds * attempt);
    }
    // put() consumes its buffer, so each attempt ships a fresh copy.
    put = co_await cluster_->store().put(cloud::Cluster::host_node(),
                                         options_.bucket, key,
                                         ByteBuffer(frame.view()));
    if (put.is_ok() || put.code() != StatusCode::kUnavailable) break;
  }
  co_return put;
}

sim::Co<Result<ByteBuffer>> CloudPlugin::get_with_retry(std::string key) {
  auto& engine = cluster_->engine();
  Status got = Status::ok();
  for (int attempt = 0; attempt <= options_.storage_retries; ++attempt) {
    if (attempt > 0) {
      co_await engine.sleep(options_.retry_backoff_seconds * attempt);
    }
    auto result = co_await cluster_->store().get(cloud::Cluster::host_node(),
                                                 options_.bucket, key);
    if (result.ok()) co_return std::move(*result);
    got = result.status();
    if (got.code() != StatusCode::kUnavailable) break;
  }
  co_return got;
}

sim::Co<Status> CloudPlugin::upload_inputs(
    const TargetRegion& region, const std::vector<std::string>& names,
    bool cache_eligible, OffloadReport& report) {
  auto& engine = cluster_->engine();
  // One transfer thread per buffer by default; a semaphore models the
  // configurable thread-pool bound. Chunked buffers draw block transfers
  // from the same pool.
  int buffer_count = 0;
  for (const MappedVar& var : region.vars) {
    if (var.maps_to()) ++buffer_count;
  }
  if (buffer_count == 0) co_return Status::ok();
  int threads = options_.transfer_threads > 0 ? options_.transfer_threads
                                              : buffer_count;
  auto gate = std::make_shared<sim::Semaphore>(engine, threads);
  auto statuses =
      std::make_shared<std::vector<Status>>(region.vars.size(), Status::ok());

  std::vector<sim::Completion> parts;
  for (size_t v = 0; v < region.vars.size(); ++v) {
    const MappedVar& var = region.vars[v];
    if (!var.maps_to()) continue;
    parts.push_back(engine.spawn(
        [](CloudPlugin* self, const MappedVar* var, std::string staged,
           bool cache_eligible, std::shared_ptr<sim::Semaphore> gate,
           OffloadReport* report, std::vector<Status>* statuses,
           size_t v) -> sim::Co<void> {
          Status status;
          if (self->use_chunking(var->size_bytes)) {
            status = co_await self->upload_chunked(var, std::move(staged),
                                                   cache_eligible, gate,
                                                   report);
          } else {
            status = co_await self->upload_single(var, std::move(staged),
                                                  cache_eligible, gate,
                                                  report);
          }
          if (!status.is_ok()) {
            (*statuses)[v] =
                status.with_context("uploading '" + var->name + "'");
          }
        }(this, &var, names[v], cache_eligible, gate, &report, statuses.get(),
          v)));
  }
  co_await sim::all(std::move(parts));
  for (const Status& status : *statuses) {
    if (!status.is_ok()) co_return status;
  }
  co_return Status::ok();
}

sim::Co<Status> CloudPlugin::upload_single(const MappedVar* var,
                                           std::string staged,
                                           bool cache_eligible,
                                           std::shared_ptr<sim::Semaphore> gate,
                                           OffloadReport* report) {
  ByteView plain = as_bytes_of(static_cast<const std::byte*>(var->host_ptr),
                               var->size_bytes);
  std::string key = spark::SparkContext::input_key(staged);
  bool use_cache = options_.cache_data && cache_eligible;
  uint64_t hash = 0;
  if (use_cache) {
    // Data caching (the paper's future-work item): if this variable is
    // already staged with identical content, skip the upload. The hash scan
    // is charged at host memory bandwidth.
    hash = fnv1a(plain);
    co_await cluster_->host_pool().run(
        cluster_->profile().reconstruct_seconds(plain.size()));
    auto it = data_cache_.find(staged);
    const CachedInput* cached =
        it != data_cache_.end() && it->second.chunk_size == 0 &&
                it->second.size_bytes == plain.size() &&
                it->second.blocks.size() == 1
            ? &it->second
            : nullptr;
    if (cached && cached->blocks[0].content_hash == hash &&
        cluster_->store().contains(options_.bucket, key)) {
      ++cache_stats_.hits;
      ++cache_stats_.block_hits;
      cache_stats_.bytes_skipped += plain.size();
      co_return Status::ok();
    }
    ++cache_stats_.misses;
    ++(cached != nullptr ? cache_stats_.block_dirty : cache_stats_.block_misses);
    cache_stats_.bytes_uploaded += plain.size();
  }
  co_await gate->acquire();
  // gzip on the laptop: real compression, charged on the host pool at the
  // rate of the codec the frame actually carries (the min-size gate may
  // have demoted to "null").
  auto encoded = compress::encode_payload_frame(options_.codec, plain,
                                                options_.min_compress_size);
  if (!encoded.ok()) {
    gate->release();
    co_return encoded.status();
  }
  double codec_seconds =
      cluster_->profile().encode_seconds(*encoded->codec, plain.size());
  co_await cluster_->host_pool().run(codec_seconds);
  report->host_codec_seconds += codec_seconds;
  report->uploaded_plain_bytes += plain.size();
  report->uploaded_wire_bytes += encoded->frame.size();
  uint64_t encoded_size = encoded->frame.size();
  Status put = co_await put_with_retry(key, std::move(encoded->frame));
  gate->release();
  OC_CO_RETURN_IF_ERROR(put);
  if (use_cache) {
    data_cache_[staged] = CachedInput{
        0, plain.size(), {{plain.size(), encoded_size, hash}}};
  }
  co_return Status::ok();
}

sim::Co<void> CloudPlugin::put_block(
    std::string key, ByteBuffer frame, std::shared_ptr<sim::Semaphore> gate,
    std::shared_ptr<sim::Semaphore> window,
    std::shared_ptr<std::vector<Status>> statuses, size_t slot) {
  co_await gate->acquire();
  Status put = co_await put_with_retry(std::move(key), std::move(frame));
  gate->release();
  window->release();
  if (!put.is_ok()) (*statuses)[slot] = put;
}

sim::Co<Status> CloudPlugin::upload_chunked(
    const MappedVar* var, std::string staged, bool cache_eligible,
    std::shared_ptr<sim::Semaphore> gate, OffloadReport* report) {
  auto& engine = cluster_->engine();
  ByteView plain = as_bytes_of(static_cast<const std::byte*>(var->host_ptr),
                               var->size_bytes);
  const uint64_t chunk = options_.chunk_size;
  const uint64_t count = compress::chunk_block_count(plain.size(), chunk);
  std::string base_key = spark::SparkContext::input_key(staged);

  // Per-block content hashes drive both the manifest and the delta check;
  // the scan over the buffer is charged at host memory bandwidth.
  std::vector<uint64_t> hashes(count);
  for (uint64_t k = 0; k < count; ++k) {
    uint64_t off = k * chunk;
    hashes[k] =
        fnv1a(plain.subspan(off, std::min<uint64_t>(chunk, plain.size() - off)));
  }
  co_await cluster_->host_pool().run(
      cluster_->profile().reconstruct_seconds(plain.size()));

  bool use_cache = options_.cache_data && cache_eligible;
  const CachedInput* cached = nullptr;
  if (use_cache) {
    auto it = data_cache_.find(staged);
    if (it != data_cache_.end() && it->second.chunk_size == chunk &&
        it->second.size_bytes == plain.size() &&
        it->second.blocks.size() == count) {
      cached = &it->second;
    }
  }
  // A block is dirty when it was never staged, its content changed, or its
  // object vanished from the bucket (eviction).
  std::vector<char> dirty(count, 1);
  if (use_cache) {
    uint64_t dirty_count = 0;
    for (uint64_t k = 0; k < count; ++k) {
      bool clean = cached != nullptr &&
                   cached->blocks[k].content_hash == hashes[k] &&
                   cluster_->store().contains(
                       options_.bucket,
                       spark::SparkContext::part_key(base_key, k));
      dirty[k] = clean ? 0 : 1;
      if (!clean) ++dirty_count;
    }
    if (dirty_count == 0 &&
        cluster_->store().contains(options_.bucket, base_key)) {
      ++cache_stats_.hits;
      cache_stats_.block_hits += count;
      cache_stats_.bytes_skipped += plain.size();
      co_return Status::ok();
    }
    ++cache_stats_.misses;
  }

  // The streaming pipeline: this producer compresses blocks in order; each
  // finished block is handed to a spawned transfer task. The window
  // semaphore bounds runahead — depth 2 overlaps compressing block k+1
  // with block k's wire time, depth 1 is the strictly serial ablation.
  auto window = std::make_shared<sim::Semaphore>(
      engine, options_.overlap_transfers ? 2 : 1);
  auto statuses = std::make_shared<std::vector<Status>>(count, Status::ok());
  std::vector<compress::BlockDigest> digests(count);
  std::vector<sim::Completion> puts;
  Status produce = Status::ok();
  for (uint64_t k = 0; k < count; ++k) {
    uint64_t off = k * chunk;
    uint64_t len = std::min<uint64_t>(chunk, plain.size() - off);
    if (!dirty[k]) {
      digests[k] = cached->blocks[k];
      ++cache_stats_.block_hits;
      cache_stats_.bytes_skipped += len;
      continue;
    }
    if (use_cache) {
      ++(cached != nullptr ? cache_stats_.block_dirty
                           : cache_stats_.block_misses);
      cache_stats_.bytes_uploaded += len;
    }
    co_await window->acquire();
    auto encoded = compress::encode_payload_frame(
        options_.codec, plain.subspan(off, len), options_.min_compress_size);
    if (!encoded.ok()) {
      window->release();
      produce = encoded.status();
      break;
    }
    double codec_seconds =
        cluster_->profile().encode_seconds(*encoded->codec, len);
    co_await cluster_->host_pool().run(codec_seconds);
    report->host_codec_seconds += codec_seconds;
    digests[k] = {len, encoded->frame.size(), hashes[k]};
    report->uploaded_plain_bytes += len;
    report->uploaded_wire_bytes += encoded->frame.size();
    puts.push_back(engine.spawn(
        put_block(spark::SparkContext::part_key(base_key, k),
                  std::move(encoded->frame), gate, window, statuses, k)));
  }
  co_await sim::all(std::move(puts));
  OC_CO_RETURN_IF_ERROR(produce);
  for (const Status& status : *statuses) {
    if (!status.is_ok()) co_return status;
  }

  // Manifest last: a reader that can see the manifest can see every block.
  OC_CO_ASSIGN_OR_RETURN(
      ByteBuffer manifest,
      compress::encode_chunked_manifest(chunk, plain.size(), digests));
  uint64_t manifest_size = manifest.size();
  co_await gate->acquire();
  Status put = co_await put_with_retry(base_key, std::move(manifest));
  gate->release();
  OC_CO_RETURN_IF_ERROR(put);
  report->uploaded_wire_bytes += manifest_size;
  if (use_cache) {
    data_cache_[staged] = CachedInput{chunk, plain.size(), std::move(digests)};
  }
  co_return Status::ok();
}

sim::Co<Status> CloudPlugin::download_outputs(
    const TargetRegion& region, const std::vector<std::string>& names,
    OffloadReport& report) {
  auto& engine = cluster_->engine();
  int buffer_count = 0;
  for (const MappedVar& var : region.vars) {
    if (var.maps_from()) ++buffer_count;
  }
  if (buffer_count == 0) co_return Status::ok();
  int threads = options_.transfer_threads > 0 ? options_.transfer_threads
                                              : buffer_count;
  auto gate = std::make_shared<sim::Semaphore>(engine, threads);
  auto statuses =
      std::make_shared<std::vector<Status>>(region.vars.size(), Status::ok());
  std::vector<sim::Completion> parts;
  for (size_t v = 0; v < region.vars.size(); ++v) {
    const MappedVar& var = region.vars[v];
    if (!var.maps_from()) continue;
    parts.push_back(engine.spawn(
        [](CloudPlugin* self, const MappedVar* var, std::string staged,
           std::shared_ptr<sim::Semaphore> gate, OffloadReport* report,
           std::vector<Status>* statuses, size_t v) -> sim::Co<void> {
          Status status = co_await self->download_buffer(
              var, std::move(staged), gate, report);
          if (!status.is_ok()) {
            (*statuses)[v] =
                status.with_context("downloading '" + var->name + "'");
          }
        }(this, &var, names[v], gate, &report, statuses.get(), v)));
  }
  co_await sim::all(std::move(parts));
  for (const Status& status : *statuses) {
    if (!status.is_ok()) co_return status;
  }
  co_return Status::ok();
}

sim::Co<void> CloudPlugin::fetch_block(
    std::string key, const MappedVar* var, compress::ChunkedBlock block,
    std::shared_ptr<sim::Semaphore> gate,
    std::shared_ptr<sim::Semaphore> window,
    std::shared_ptr<std::vector<Status>> statuses, size_t slot,
    OffloadReport* report) {
  // The window bounds runahead (mirroring the upload pipeline); the gate is
  // held only for the wire, so block k decodes while block k+1 transfers.
  co_await window->acquire();
  co_await gate->acquire();
  auto framed = co_await get_with_retry(std::move(key));
  gate->release();
  if (!framed.ok()) {
    window->release();
    (*statuses)[slot] = framed.status();
    co_return;
  }
  auto plain = compress::decode_payload(framed->view());
  if (!plain.ok()) {
    window->release();
    (*statuses)[slot] = plain.status();
    co_return;
  }
  if (plain->size() != block.plain_size ||
      fnv1a(plain->view()) != block.content_hash) {
    window->release();
    (*statuses)[slot] = data_loss(
        str_format("block %zu failed content verification", slot));
    co_return;
  }
  double codec_seconds = 0;
  auto codec_name = compress::payload_codec(framed->view());
  if (codec_name.ok()) {
    auto codec = compress::find_codec(*codec_name);
    if (codec.ok()) {
      codec_seconds =
          cluster_->profile().decode_seconds(**codec, plain->size());
    }
  }
  co_await cluster_->host_pool().run(codec_seconds);
  report->host_codec_seconds += codec_seconds;
  report->downloaded_plain_bytes += plain->size();
  report->downloaded_wire_bytes += framed->size();
  std::memcpy(static_cast<std::byte*>(var->host_ptr) + block.plain_offset,
              plain->data(), plain->size());
  window->release();
}

sim::Co<Status> CloudPlugin::download_buffer(
    const MappedVar* var, std::string staged,
    std::shared_ptr<sim::Semaphore> gate, OffloadReport* report) {
  auto& engine = cluster_->engine();
  std::string base_key = spark::SparkContext::output_key(staged);
  co_await gate->acquire();
  auto framed = co_await get_with_retry(base_key);
  gate->release();
  OC_CO_RETURN_IF_ERROR(framed.status());

  if (compress::is_chunked_payload(framed->view())) {
    OC_CO_ASSIGN_OR_RETURN(compress::ChunkedIndex index,
                           compress::parse_chunked_index(framed->view()));
    if (index.plain_size != var->size_bytes) {
      co_return data_loss(str_format(
          "got %llu bytes, expected %llu",
          static_cast<unsigned long long>(index.plain_size),
          static_cast<unsigned long long>(var->size_bytes)));
    }
    if (index.inline_blocks) {
      OC_CO_ASSIGN_OR_RETURN(ByteBuffer plain,
                             compress::decode_chunked_payload(framed->view()));
      double codec_seconds = 0;
      for (const compress::ChunkedBlock& block : index.blocks) {
        auto codec_name = compress::payload_codec(
            framed->view().subspan(block.frame_offset, block.encoded_size));
        if (!codec_name.ok()) continue;
        auto codec = compress::find_codec(*codec_name);
        if (codec.ok()) {
          codec_seconds +=
              cluster_->profile().decode_seconds(**codec, block.plain_size);
        }
      }
      co_await cluster_->host_pool().run(codec_seconds);
      report->host_codec_seconds += codec_seconds;
      report->downloaded_plain_bytes += plain.size();
      report->downloaded_wire_bytes += framed->size();
      std::memcpy(var->host_ptr, plain.data(), plain.size());
      co_return Status::ok();
    }
    // Manifest: stream the sibling block objects back through the mirrored
    // pipeline. Each block verifies independently and lands at its own
    // offset, so completion order is irrelevant.
    report->downloaded_wire_bytes += framed->size();
    auto window = std::make_shared<sim::Semaphore>(
        engine, options_.overlap_transfers ? 2 : 1);
    auto statuses = std::make_shared<std::vector<Status>>(index.blocks.size(),
                                                          Status::ok());
    std::vector<sim::Completion> fetches;
    for (size_t k = 0; k < index.blocks.size(); ++k) {
      fetches.push_back(engine.spawn(
          fetch_block(spark::SparkContext::part_key(base_key, k), var,
                      index.blocks[k], gate, window, statuses, k, report)));
    }
    co_await sim::all(std::move(fetches));
    for (size_t k = 0; k < statuses->size(); ++k) {
      if (!(*statuses)[k].is_ok()) {
        co_return (*statuses)[k].with_context(
            str_format("block %zu of '%s'", k, base_key.c_str()));
      }
    }
    co_return Status::ok();
  }

  // Legacy single frame.
  OC_CO_ASSIGN_OR_RETURN(ByteBuffer plain,
                         compress::decode_payload(framed->view()));
  if (plain.size() != var->size_bytes) {
    co_return data_loss(str_format(
        "got %zu bytes, expected %llu", plain.size(),
        static_cast<unsigned long long>(var->size_bytes)));
  }
  auto codec_name = compress::payload_codec(framed->view());
  double codec_seconds = 0;
  if (codec_name.ok()) {
    auto codec = compress::find_codec(*codec_name);
    if (codec.ok()) {
      codec_seconds =
          cluster_->profile().decode_seconds(**codec, plain.size());
    }
  }
  co_await cluster_->host_pool().run(codec_seconds);
  report->host_codec_seconds += codec_seconds;
  report->downloaded_plain_bytes += plain.size();
  report->downloaded_wire_bytes += framed->size();
  std::memcpy(var->host_ptr, plain.data(), plain.size());
  co_return Status::ok();
}

sim::Co<Status> CloudPlugin::cleanup_objects(
    const TargetRegion& region, const std::vector<std::string>& names,
    bool cache_eligible) {
  (void)region;
  if (names.empty()) co_return Status::ok();
  // Every staged key of this invocation shares one prefix (names[v] =
  // "<prefix><var>"). One list finds them all — including block part
  // objects whose count we may no longer know (a previous invocation could
  // have staged a different size under the stable prefix).
  std::string prefix = names[0].substr(0, names[0].rfind('/') + 1);
  auto keys = co_await cluster_->store().list(cloud::Cluster::host_node(),
                                              options_.bucket, prefix);
  // Deletions are best-effort (idempotent in S3); drop their statuses.
  if (!keys.ok()) co_return Status::ok();
  bool keep_inputs = options_.cache_data && cache_eligible;
  auto& engine = cluster_->engine();
  auto drop = [](sim::Co<Status> op) -> sim::Co<void> {
    (void)co_await std::move(op);
  };
  std::vector<sim::Completion> parts;
  for (const std::string& key : *keys) {
    bool is_output = key.find(".out.bin") != std::string::npos;
    if (!is_output && keep_inputs) continue;
    parts.push_back(engine.spawn(drop(cluster_->store().remove(
        cloud::Cluster::host_node(), options_.bucket, key))));
  }
  co_await sim::all(std::move(parts));
  co_return Status::ok();
}

sim::Co<Result<OffloadReport>> CloudPlugin::run_region(
    const TargetRegion& region) {
  auto& engine = cluster_->engine();
  OffloadReport report;
  report.device_name = name_;
  double start = engine.now();
  double cost_start = cluster_->cost().accrued_usd();

  if (options_.stream_spark_logs) {
    log_.info("offloading region '%s' to %s", region.name.c_str(),
              name_.c_str());
  }

  // Claim the region's stable staging prefix. A concurrent `nowait` offload
  // of the same region would trample the claim holder's staged objects, so
  // it falls back to a unique prefix and skips the data cache this once.
  bool cache_eligible = false;
  struct RegionClaim {
    CloudPlugin* plugin = nullptr;
    std::string region;
    ~RegionClaim() {
      if (plugin != nullptr) plugin->active_regions_.erase(region);
    }
  } claim;
  if (options_.cache_data) {
    if (active_regions_.insert(region.name).second) {
      claim.plugin = this;
      claim.region = region.name;
      cache_eligible = true;
    } else {
      log_.warn(
          "region '%s' is already offloading; staging under a unique prefix "
          "(data cache skipped for this invocation)",
          region.name.c_str());
    }
  }

  // On-the-fly EC2 start (§III-A): boot, billed from here.
  if (!cluster_->running()) {
    if (!cluster_->spec().on_the_fly) {
      co_return unavailable("cluster stopped and on-the-fly mode disabled");
    }
    double boot_start = engine.now();
    OC_CO_RETURN_IF_ERROR(co_await cluster_->ensure_running());
    report.boot_seconds = engine.now() - boot_start;
  }

  if (!cluster_->store().bucket_exists(options_.bucket)) {
    Status created = cluster_->store().create_bucket(options_.bucket);
    if (!created.is_ok() && created.code() != StatusCode::kAlreadyExists) {
      co_return created;
    }
  }

  std::vector<std::string> names = staged_names(region, cache_eligible);

  // Fig. 1 step 2: inputs to cloud storage (parallel transfer threads,
  // chunked buffers streaming compress/wire overlapped).
  double upload_start = engine.now();
  OC_CO_RETURN_IF_ERROR(
      co_await upload_inputs(region, names, cache_eligible, report));
  report.upload_seconds = engine.now() - upload_start;

  // Fig. 1 step 3: submit the Spark job over SSH and block.
  double submit_start = engine.now();
  OC_CO_RETURN_IF_ERROR(co_await cluster_->ssh_submit_roundtrip());
  report.submit_seconds = engine.now() - submit_start;

  spark::JobSpec job;
  job.name = region.name;
  job.bucket = options_.bucket;
  job.storage_codec = options_.codec;
  job.storage_min_compress = options_.min_compress_size;
  job.storage_chunk_size = options_.chunk_size;
  for (size_t v = 0; v < region.vars.size(); ++v) {
    const MappedVar& var = region.vars[v];
    job.vars.push_back(
        {names[v], var.size_bytes, var.maps_to(), var.maps_from()});
  }
  job.loops = region.loops;
  OC_CO_ASSIGN_OR_RETURN(report.job, co_await context_.run_job(std::move(job)));

  // Fig. 1 step 8: results back to the host.
  double download_start = engine.now();
  OC_CO_RETURN_IF_ERROR(co_await download_outputs(region, names, report));
  report.download_seconds = engine.now() - download_start;

  if (options_.cleanup) {
    double cleanup_start = engine.now();
    OC_CO_RETURN_IF_ERROR(
        co_await cleanup_objects(region, names, cache_eligible));
    report.cleanup_seconds = engine.now() - cleanup_start;
  }

  // On-the-fly: stop billing as soon as the region is done.
  if (cluster_->spec().on_the_fly) {
    OC_CO_RETURN_IF_ERROR(co_await cluster_->shutdown());
  }

  report.total_seconds = engine.now() - start;
  report.cost_usd = cluster_->cost().accrued_usd() - cost_start;
  if (options_.stream_spark_logs) {
    log_.info("region '%s' done in %s ($%.4f)", region.name.c_str(),
              format_duration(report.total_seconds).c_str(), report.cost_usd);
  }
  co_return report;
}

}  // namespace ompcloud::omptarget
