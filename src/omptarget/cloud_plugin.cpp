#include "omptarget/cloud_plugin.h"

#include <algorithm>
#include <cstring>

#include "cloud/autoscaler.h"
#include "compress/payload.h"
#include "omptarget/data_env.h"
#include "support/strings.h"
#include "tools/tools.h"
#include "trace/query.h"

namespace ompcloud::omptarget {

namespace {

/// Rebuilds the report's phase/byte/codec decomposition from the offload
/// span subtree (the report is a *view* over the trace): phase seconds come
/// from the root's direct children, bytes from `plain_bytes`/`wire_bytes`
/// annotations in the upload/download subtrees, and host codec CPU time
/// from `codec_seconds` annotations (only host-side compress/decode spans
/// carry that key, so Spark-task codec time cannot leak in).
void finalize_report_from_trace(const trace::Tracer& tracer, trace::SpanId root,
                                OffloadReport& report) {
  if (root == trace::kNoSpan) return;
  trace::TraceQuery query(tracer);
  for (const trace::Span* phase : query.children(root)) {
    if (phase->name == "boot") {
      report.boot_seconds += phase->duration();
    } else if (phase->name == "upload") {
      report.upload_seconds += phase->duration();
    } else if (phase->name == "spark.submit") {
      report.submit_seconds += phase->duration();
    } else if (phase->name == "download") {
      report.download_seconds += phase->duration();
    } else if (phase->name == "cleanup") {
      report.cleanup_seconds += phase->duration();
    } else {
      continue;
    }
    std::vector<const trace::Span*> spans = query.subtree(phase->id);
    double plain = trace::TraceQuery::sum_value(spans, "plain_bytes");
    double wire = trace::TraceQuery::sum_value(spans, "wire_bytes");
    report.host_codec_seconds +=
        trace::TraceQuery::sum_value(spans, "codec_seconds");
    if (phase->name == "upload") {
      report.uploaded_plain_bytes += static_cast<uint64_t>(plain);
      report.uploaded_wire_bytes += static_cast<uint64_t>(wire);
      // `resident/<var>` spans mark uploads the data environment elided.
      report.resident_upload_skipped_bytes += static_cast<uint64_t>(
          trace::TraceQuery::sum_value(spans, "bytes_saved"));
    } else if (phase->name == "download") {
      report.downloaded_plain_bytes += static_cast<uint64_t>(plain);
      report.downloaded_wire_bytes += static_cast<uint64_t>(wire);
      report.resident_download_deferred_bytes += static_cast<uint64_t>(
          trace::TraceQuery::sum_value(spans, "bytes_deferred"));
    }
  }
}

}  // namespace

Result<CloudPluginOptions> CloudPluginOptions::from_config(
    const Config& config) {
  CloudPluginOptions options;
  options.bucket = config.get_string("offload.bucket", options.bucket);
  // Canonical spelling `codec` (matches what the knob selects); the
  // pre-service `compression` names are still honored, with a WARN.
  options.codec = config.get_string("offload.codec", options.codec);
  if (!config.has("offload.codec") && config.has("offload.compression")) {
    Logger("config").warn("offload.compression is deprecated; use offload.codec");
    options.codec = config.get_string("offload.compression", options.codec);
  }
  OC_ASSIGN_OR_RETURN(const compress::Codec* codec,
                      compress::find_codec(options.codec));
  (void)codec;
  options.min_compress_size = config.get_byte_size(
      "offload.codec-min-size", options.min_compress_size);
  if (!config.has("offload.codec-min-size") &&
      config.has("offload.compression-min-size")) {
    Logger("config").warn(
        "offload.compression-min-size is deprecated; use "
        "offload.codec-min-size");
    options.min_compress_size = config.get_byte_size(
        "offload.compression-min-size", options.min_compress_size);
  }
  options.chunk_size =
      config.get_byte_size("offload.chunk-size", options.chunk_size);
  options.overlap_transfers =
      config.get_bool("offload.overlap-transfers", options.overlap_transfers);
  options.transfer_threads = static_cast<int>(
      config.get_int("offload.transfer-threads", options.transfer_threads));
  if (options.transfer_threads < 0) {
    return invalid_argument("offload.transfer-threads must be >= 0");
  }
  options.storage_retries = static_cast<int>(
      config.get_int("offload.storage-retries", options.storage_retries));
  options.retry_backoff_seconds = config.get_duration(
      "offload.retry-backoff", options.retry_backoff_seconds);
  options.retry_backoff_cap_seconds = config.get_duration(
      "offload.retry-backoff-cap", options.retry_backoff_cap_seconds);
  options.op_deadline_seconds =
      config.get_duration("offload.op-deadline", options.op_deadline_seconds);
  options.offload_deadline_seconds =
      config.get_duration("offload.deadline", options.offload_deadline_seconds);
  options.job_retries = static_cast<int>(
      config.get_int("offload.job-retries", options.job_retries));
  if (options.job_retries < 0) {
    return invalid_argument("offload.job-retries must be >= 0");
  }
  options.verify_transfers = config.get_bool(
      "offload.verify-transfers", config.get_bool("fault.enabled", false));
  options.cleanup = config.get_bool("offload.cleanup", options.cleanup);
  options.stream_spark_logs =
      config.get_bool("offload.stream-spark-logs", options.stream_spark_logs);
  options.cache_data = config.get_bool("offload.cache-data", options.cache_data);
  // [overload]: retry budget + hedged transfers (the scheduler parses its
  // own adaptive-concurrency/shedding knobs from the same section).
  OC_ASSIGN_OR_RETURN(options.retry_budget,
                      RetryBudgetOptions::from_config(config));
  bool overload_enabled = config.get_bool("overload.enabled", false);
  options.hedge = config.get_bool("overload.hedge", overload_enabled);
  options.hedge_quantile =
      config.get_double("overload.hedge-quantile", options.hedge_quantile);
  if (options.hedge_quantile <= 0 || options.hedge_quantile > 1) {
    return invalid_argument("overload.hedge-quantile must be in (0, 1]");
  }
  options.hedge_min_samples = static_cast<int>(config.get_int(
      "overload.hedge-min-samples", options.hedge_min_samples));
  if (options.hedge_min_samples < 1) {
    return invalid_argument("overload.hedge-min-samples must be >= 1");
  }
  return options;
}

CloudPlugin::CloudPlugin(cloud::Cluster& cluster, spark::SparkConf conf,
                         CloudPluginOptions options)
    : cluster_(&cluster),
      context_(cluster, std::move(conf)),
      options_(std::move(options)),
      name_("cloud(" + cluster.spec().provider + "+" +
            cluster.spec().storage_type + ")"),
      retry_budget_(options_.retry_budget) {}

Result<std::unique_ptr<CloudPlugin>> CloudPlugin::from_config(
    sim::Engine& engine, const Config& config) {
  OC_ASSIGN_OR_RETURN(cloud::ClusterSpec spec,
                      cloud::ClusterSpec::from_config(config));
  OC_ASSIGN_OR_RETURN(spark::SparkConf conf, spark::SparkConf::from_config(config));
  OC_ASSIGN_OR_RETURN(CloudPluginOptions options,
                      CloudPluginOptions::from_config(config));
  cloud::AutoscalerOptions autoscale =
      cloud::AutoscalerOptions::from_config(config);
  if (autoscale.enabled && spec.on_the_fly) {
    return invalid_argument(
        "autoscale.enabled and cluster.on-the-fly are mutually exclusive: "
        "elastic mode keeps the driver up and scales workers individually");
  }
  auto cluster = std::make_unique<cloud::Cluster>(
      engine, std::move(spec), cloud::SimProfile::from_config(config));
  auto plugin = std::make_unique<CloudPlugin>(*cluster, std::move(conf),
                                              std::move(options));
  plugin->owned_cluster_ = std::move(cluster);
  plugin->configured_trace_ = trace::TraceOptions::from_config(config);
  plugin->cluster_->tracer().configure(*plugin->configured_trace_);
  if (autoscale.enabled) plugin->cluster_->enable_autoscaler(autoscale);
  // [fault]: the chaos plan wires into every layer through the cluster
  // (network, object store, Spark probes, boot path).
  OC_ASSIGN_OR_RETURN(fault::FaultPlan plan,
                      fault::FaultPlan::from_config(config));
  plugin->cluster_->enable_faults(plan);
  return plugin;
}

void CloudPlugin::attach_tracer(std::shared_ptr<trace::Tracer> tracer) {
  if (tracer == nullptr) return;
  if (configured_trace_.has_value()) tracer->configure(*configured_trace_);
  tracer_ = tracer;
  cluster_->set_tracer(std::move(tracer));
}

CloudPlugin::CacheStats CloudPlugin::cache_stats() const {
  const trace::Metrics& metrics = tracer().metrics();
  CacheStats stats;
  stats.hits = metrics.counter_value("cache.hits");
  stats.misses = metrics.counter_value("cache.misses");
  stats.block_hits = metrics.counter_value("cache.block_hits");
  stats.block_misses = metrics.counter_value("cache.block_misses");
  stats.block_dirty = metrics.counter_value("cache.block_dirty");
  stats.bytes_skipped = metrics.counter_value("cache.bytes_skipped");
  stats.bytes_uploaded = metrics.counter_value("cache.bytes_uploaded");
  return stats;
}

std::string CloudPlugin::CacheStats::to_json() const {
  return str_format(
      "{\"hits\": %llu, \"misses\": %llu, "
      "\"block_hits\": %llu, \"block_misses\": %llu, \"block_dirty\": %llu, "
      "\"bytes_skipped\": %llu, \"bytes_uploaded\": %llu}",
      static_cast<unsigned long long>(hits),
      static_cast<unsigned long long>(misses),
      static_cast<unsigned long long>(block_hits),
      static_cast<unsigned long long>(block_misses),
      static_cast<unsigned long long>(block_dirty),
      static_cast<unsigned long long>(bytes_skipped),
      static_cast<unsigned long long>(bytes_uploaded));
}

bool CloudPlugin::is_available() const {
  return cluster_->running() || cluster_->spec().on_the_fly;
}

std::vector<std::string> CloudPlugin::staged_names(const TargetRegion& region,
                                                   bool stable_prefix) {
  std::string prefix =
      stable_prefix
          ? region.name + "/"
          : str_format("%s#%llu/", region.name.c_str(),
                       static_cast<unsigned long long>(next_invocation_++));
  std::vector<std::string> names;
  names.reserve(region.vars.size());
  for (const MappedVar& var : region.vars) names.push_back(prefix + var.name);
  return names;
}

void CloudPlugin::note_fault(tools::FaultEventInfo::Kind kind,
                             std::string_view point, std::string_view detail) {
  tools::FaultEventInfo info;
  info.kind = kind;
  info.point = point;
  info.detail = detail;
  info.time = cluster_->engine().now();
  tracer().tools().emit_fault_event(info);
}

Xoshiro256& CloudPlugin::retry_rng() {
  if (!retry_rng_seeded_) {
    retry_rng_seeded_ = true;
    // Fault-plan seed XOR device id: every plugin in a multi-device chaos
    // run gets its own reproducible jitter stream instead of all replaying
    // one shared sequence. Seeding is deferred to the first draw because
    // both inputs (enable_faults, register_device) land after construction.
    uint64_t seed = 0x0cfa17eu;
    if (const fault::FaultInjector* faults = cluster_->fault_injector()) {
      seed = faults->plan().seed;
    }
    if (device_id_ >= 0) seed ^= static_cast<uint64_t>(device_id_);
    retry_rng_ = Xoshiro256(seed);
  }
  return retry_rng_;
}

sim::Co<void> CloudPlugin::backoff_sleep(double* prev_sleep) {
  // Decorrelated jitter (capped): sleep ~ U(base, 3 * previous sleep).
  double sleep = std::min(
      options_.retry_backoff_cap_seconds,
      retry_rng().uniform(options_.retry_backoff_seconds,
                          std::max(options_.retry_backoff_seconds,
                                   *prev_sleep * 3.0)));
  *prev_sleep = sleep;
  co_await cluster_->engine().sleep(sleep);
}

std::vector<std::string> CloudPlugin::budget_scopes(
    std::string_view tenant) const {
  std::vector<std::string> scopes;
  scopes.push_back("device:" + name_);
  if (!tenant.empty()) scopes.push_back("tenant:" + std::string(tenant));
  return scopes;
}

bool CloudPlugin::admit_retry(std::string_view op, std::string_view tenant,
                              trace::SpanId parent) {
  if (!retry_budget_.enabled()) return true;
  trace::Tracer& tr = tracer();
  if (retry_budget_.try_withdraw(budget_scopes(tenant))) {
    tr.metrics().counter("retry_budget.withdrawn").add();
    return true;
  }
  // Out of tokens: this retry would amplify the overload. Record the
  // fail-fast so the analyzer/monitor can attribute lost work to budget
  // exhaustion rather than to the underlying fault.
  tr.metrics().counter("retry_budget.exhausted").add();
  tr.metrics()
      .counter("retry_budget.exhausted", {{"op", std::string(op)}})
      .add();
  trace::SpanHandle span = tr.span("retry_budget", parent);
  span.tag("op", std::string(op));
  span.tag("event", "exhausted");
  span.end();
  log_.warn("retry budget exhausted; failing %s fast",
            std::string(op).c_str());
  return false;
}

void CloudPlugin::note_success(std::string_view tenant) {
  retry_budget_.record_success(budget_scopes(tenant));
}

bool CloudPlugin::admit_hedge() {
  if (!retry_budget_.enabled()) return true;
  if (retry_budget_.try_withdraw(budget_scopes())) return true;
  tracer().metrics().counter("hedge.suppressed").add();
  return false;
}

void CloudPlugin::record_sample(std::vector<double>* window, size_t* next,
                                double seconds) {
  constexpr size_t kWindow = 64;
  if (window->size() < kWindow) {
    window->push_back(seconds);
    return;
  }
  (*window)[*next] = seconds;
  *next = (*next + 1) % kWindow;
}

double CloudPlugin::hedge_delay(const std::vector<double>& window) const {
  if (window.size() < static_cast<size_t>(options_.hedge_min_samples)) {
    return -1;
  }
  std::vector<double> sorted(window);
  std::sort(sorted.begin(), sorted.end());
  size_t rank = std::min(
      sorted.size() - 1,
      static_cast<size_t>(options_.hedge_quantile *
                          static_cast<double>(sorted.size())));
  return sorted[rank];
}

sim::Co<Status> CloudPlugin::hedged_put(std::string key, ByteBuffer frame,
                                        trace::SpanId parent) {
  if (!options_.hedge) {
    co_return co_await timed_put(std::move(key), std::move(frame), parent);
  }
  auto& engine = cluster_->engine();
  trace::Tracer& tr = tracer();
  double start = engine.now();
  double delay = hedge_delay(put_samples_);
  Status result = Status::ok();
  if (delay <= 0) {
    result = co_await timed_put(key, std::move(frame), parent);
  } else {
    auto primary = std::make_shared<Status>(Status::ok());
    auto backup = std::make_shared<Status>(Status::ok());
    auto launched = std::make_shared<bool>(false);
    auto settled = std::make_shared<bool>(false);
    std::vector<sim::Completion> racers;
    racers.push_back(engine.spawn(
        [](CloudPlugin* self, std::string key, ByteBuffer frame,
           trace::SpanId parent,
           std::shared_ptr<Status> out) -> sim::Co<void> {
          *out = co_await self->timed_put(std::move(key), std::move(frame),
                                          parent);
        }(this, key, ByteBuffer(frame.view()), parent, primary)));
    racers.push_back(engine.spawn(
        [](CloudPlugin* self, std::string key, ByteBuffer frame,
           trace::SpanId parent, double delay, std::shared_ptr<Status> out,
           std::shared_ptr<bool> launched,
           std::shared_ptr<bool> settled) -> sim::Co<void> {
          co_await self->cluster_->engine().sleep(delay);
          // The race may already be settled (we lost but keep running as an
          // abandoned coroutine): don't launch a pointless duplicate. The
          // budget check bounds hedge volume to the success deposit rate.
          if (*settled || !self->admit_hedge()) co_return;
          *launched = true;
          *out = co_await self->timed_put(std::move(key), std::move(frame),
                                          parent);
        }(this, key, ByteBuffer(frame.view()), parent, delay, backup,
          launched, settled)));
    size_t first = co_await sim::any(engine, racers);
    if (first == 1 && !*launched) {
      // The backup woke up and declined (race settled or budget refused):
      // its completion is not a result, so keep waiting on the primary.
      co_await racers[0];
      first = 0;
    }
    *settled = true;
    result = first == 0 ? *primary : *backup;
    if (*launched) {
      tr.metrics().counter("hedge.launched").add();
      tr.metrics().counter("hedge.launched", {{"op", "put"}}).add();
      trace::SpanHandle span = tr.span("hedge", parent);
      span.tag("op", "put");
      span.tag("outcome", first == 1 ? "won" : "lost");
      span.end();
      if (first == 1) {
        tr.metrics().counter("hedge.won").add();
        tr.metrics().counter("hedge.won", {{"op", "put"}}).add();
      }
    }
  }
  if (result.is_ok()) {
    record_sample(&put_samples_, &put_samples_next_, engine.now() - start);
  }
  co_return result;
}

sim::Co<Result<ByteBuffer>> CloudPlugin::hedged_get(std::string key,
                                                    trace::SpanId parent) {
  if (!options_.hedge) {
    co_return co_await timed_get(std::move(key), parent);
  }
  auto& engine = cluster_->engine();
  trace::Tracer& tr = tracer();
  double start = engine.now();
  double delay = hedge_delay(get_samples_);
  Result<ByteBuffer> result = internal_error("hedged get never ran");
  if (delay <= 0) {
    result = co_await timed_get(std::move(key), parent);
  } else {
    auto primary = std::make_shared<Result<ByteBuffer>>(
        internal_error("primary get never ran"));
    auto backup = std::make_shared<Result<ByteBuffer>>(
        internal_error("hedge get never ran"));
    auto launched = std::make_shared<bool>(false);
    auto settled = std::make_shared<bool>(false);
    std::vector<sim::Completion> racers;
    racers.push_back(engine.spawn(
        [](CloudPlugin* self, std::string key, trace::SpanId parent,
           std::shared_ptr<Result<ByteBuffer>> out) -> sim::Co<void> {
          *out = co_await self->timed_get(std::move(key), parent);
        }(this, key, parent, primary)));
    racers.push_back(engine.spawn(
        [](CloudPlugin* self, std::string key, trace::SpanId parent,
           double delay, std::shared_ptr<Result<ByteBuffer>> out,
           std::shared_ptr<bool> launched,
           std::shared_ptr<bool> settled) -> sim::Co<void> {
          co_await self->cluster_->engine().sleep(delay);
          if (*settled || !self->admit_hedge()) co_return;
          *launched = true;
          *out = co_await self->timed_get(std::move(key), parent);
        }(this, key, parent, delay, backup, launched, settled)));
    size_t first = co_await sim::any(engine, racers);
    if (first == 1 && !*launched) {
      co_await racers[0];
      first = 0;
    }
    *settled = true;
    result = first == 0 ? std::move(*primary) : std::move(*backup);
    if (*launched) {
      tr.metrics().counter("hedge.launched").add();
      tr.metrics().counter("hedge.launched", {{"op", "get"}}).add();
      trace::SpanHandle span = tr.span("hedge", parent);
      span.tag("op", "get");
      span.tag("outcome", first == 1 ? "won" : "lost");
      span.end();
      if (first == 1) {
        tr.metrics().counter("hedge.won").add();
        tr.metrics().counter("hedge.won", {{"op", "get"}}).add();
      }
    }
  }
  if (result.ok()) {
    record_sample(&get_samples_, &get_samples_next_, engine.now() - start);
  }
  co_return result;
}

sim::Co<Status> CloudPlugin::timed_put(std::string key, ByteBuffer frame,
                                       trace::SpanId parent) {
  trace::Tracer& tr = tracer();
  if (options_.op_deadline_seconds <= 0) {
    tr.set_ambient(parent);
    co_return co_await cluster_->store().put(cloud::Cluster::host_node(),
                                             options_.bucket, std::move(key),
                                             std::move(frame));
  }
  auto& engine = cluster_->engine();
  auto status = std::make_shared<Status>(Status::ok());
  std::string what = key;
  std::vector<sim::Completion> racers;
  racers.push_back(engine.spawn(
      [](CloudPlugin* self, std::string key, ByteBuffer frame,
         trace::SpanId parent, std::shared_ptr<Status> status) -> sim::Co<void> {
        self->tracer().set_ambient(parent);
        *status = co_await self->cluster_->store().put(
            cloud::Cluster::host_node(), self->options_.bucket, std::move(key),
            std::move(frame));
      }(this, std::move(key), std::move(frame), parent, status)));
  racers.push_back(engine.spawn(
      [](sim::Engine* engine, double dt) -> sim::Co<void> {
        co_await engine->sleep(dt);
      }(&engine, options_.op_deadline_seconds)));
  size_t first = co_await sim::any(engine, racers);
  if (first == 1) {
    // The abandoned put keeps running unobserved (a late success is a
    // harmless idempotent overwrite); this attempt is charged as a miss.
    note_fault(tools::FaultEventInfo::Kind::kDeadlineExceeded, "storage.put",
               what);
    co_return deadline_exceeded(
        str_format("put '%s' exceeded the %.3fs op deadline", what.c_str(),
                   options_.op_deadline_seconds));
  }
  co_return *status;
}

sim::Co<Result<ByteBuffer>> CloudPlugin::timed_get(std::string key,
                                                   trace::SpanId parent) {
  trace::Tracer& tr = tracer();
  if (options_.op_deadline_seconds <= 0) {
    tr.set_ambient(parent);
    co_return co_await cluster_->store().get(cloud::Cluster::host_node(),
                                             options_.bucket, std::move(key));
  }
  auto& engine = cluster_->engine();
  auto result = std::make_shared<Result<ByteBuffer>>(
      internal_error("storage get never ran"));
  std::string what = key;
  std::vector<sim::Completion> racers;
  racers.push_back(engine.spawn(
      [](CloudPlugin* self, std::string key, trace::SpanId parent,
         std::shared_ptr<Result<ByteBuffer>> result) -> sim::Co<void> {
        self->tracer().set_ambient(parent);
        *result = co_await self->cluster_->store().get(
            cloud::Cluster::host_node(), self->options_.bucket, std::move(key));
      }(this, std::move(key), parent, result)));
  racers.push_back(engine.spawn(
      [](sim::Engine* engine, double dt) -> sim::Co<void> {
        co_await engine->sleep(dt);
      }(&engine, options_.op_deadline_seconds)));
  size_t first = co_await sim::any(engine, racers);
  if (first == 1) {
    note_fault(tools::FaultEventInfo::Kind::kDeadlineExceeded, "storage.get",
               what);
    co_return deadline_exceeded(
        str_format("get '%s' exceeded the %.3fs op deadline", what.c_str(),
                   options_.op_deadline_seconds));
  }
  co_return std::move(*result);
}

sim::Co<Status> CloudPlugin::put_with_retry(std::string key, ByteBuffer frame,
                                            trace::SpanId parent) {
  trace::Tracer& tr = tracer();
  const uint64_t frame_size = frame.size();
  const uint64_t frame_hash =
      options_.verify_transfers ? fnv1a(frame.view()) : 0;
  Status put = Status::ok();
  double prev_sleep = options_.retry_backoff_seconds;
  for (int attempt = 0; attempt <= options_.storage_retries; ++attempt) {
    trace::SpanHandle recovery;
    if (attempt > 0) {
      // Every re-attempt spends one retry-budget token; an empty bucket
      // fails fast with the last real status instead of amplifying a
      // correlated outage into a retry storm.
      if (!admit_retry("put", /*tenant=*/{}, parent)) {
        co_return put.with_context("retry budget exhausted");
      }
      // The recovery span stays open across the re-attempt: backoff + redo
      // is exactly the time this object lost to the fault.
      recovery = tr.span("recovery", parent);
      recovery.tag("op", "put");
      recovery.tag("key", key);
      tr.metrics().counter("storage.retries").add();
      tr.metrics().counter("storage.retries", {{"op", "put"}}).add();
      note_fault(tools::FaultEventInfo::Kind::kRetry, "storage.put",
                 put.message());
      co_await backoff_sleep(&prev_sleep);
    }
    // put() consumes its buffer, so each attempt ships a fresh copy.
    put = co_await hedged_put(key, ByteBuffer(frame.view()), parent);
    if (put.is_ok() && options_.verify_transfers) {
      // Read-after-write verification: a cheap HEAD catches torn writes
      // (acked PUT, truncated object) before anyone consumes the object.
      tr.set_ambient(parent);
      auto info = co_await cluster_->store().head(cloud::Cluster::host_node(),
                                                  options_.bucket, key);
      if (!info.ok()) {
        put = info.status();
      } else if (info->size != frame_size || info->content_hash != frame_hash) {
        note_fault(tools::FaultEventInfo::Kind::kCorruptionDetected,
                   "storage.torn-write", key);
        put = data_loss(str_format(
            "object '%s' failed post-upload verification (stored %llu bytes)",
            key.c_str(), static_cast<unsigned long long>(info->size)));
      }
    }
    recovery.end();
    if (put.is_ok()) {
      note_success();
      break;
    }
    // kDataLoss is retryable here — we still hold the frame, so a detected
    // torn write is repaired by re-uploading. It rides the same budget as
    // every other retry (checked above), so a lost-object storm cannot
    // loop unboundedly. Permanent errors (invalid argument, missing
    // bucket) fail fast after one attempt.
    if (!is_retryable(put.code()) && put.code() != StatusCode::kDataLoss) {
      break;
    }
  }
  co_return put;
}

sim::Co<Result<ByteBuffer>> CloudPlugin::get_with_retry(std::string key,
                                                        trace::SpanId parent) {
  trace::Tracer& tr = tracer();
  Status got = Status::ok();
  double prev_sleep = options_.retry_backoff_seconds;
  for (int attempt = 0; attempt <= options_.storage_retries; ++attempt) {
    trace::SpanHandle recovery;
    if (attempt > 0) {
      if (!admit_retry("get", /*tenant=*/{}, parent)) {
        co_return got.with_context("retry budget exhausted");
      }
      recovery = tr.span("recovery", parent);
      recovery.tag("op", "get");
      recovery.tag("key", key);
      tr.metrics().counter("storage.retries").add();
      tr.metrics().counter("storage.retries", {{"op", "get"}}).add();
      note_fault(tools::FaultEventInfo::Kind::kRetry, "storage.get",
                 got.message());
      co_await backoff_sleep(&prev_sleep);
    }
    auto result = co_await hedged_get(key, parent);
    recovery.end();
    if (result.ok()) {
      note_success();
      co_return std::move(*result);
    }
    got = result.status();
    // A raw get cannot re-produce lost bytes, so kDataLoss is NOT retryable
    // here (decode-level corruption retries live in the download paths,
    // which can re-download).
    if (!is_retryable(got.code())) break;
  }
  co_return got;
}

sim::Co<Status> CloudPlugin::upload_inputs(
    const TargetRegion& region, const std::vector<std::string>& names,
    const std::vector<char>& resident_in, bool cache_eligible,
    trace::SpanId phase) {
  auto& engine = cluster_->engine();
  trace::Tracer& tr = tracer();
  // Cloud-resident inputs skip the upload outright: the current version is
  // already in the bucket (identity + version check — zero hashing), so the
  // only trace of the transfer is a zero-duration `resident/<var>` span and
  // a data-op marking the elision.
  int buffer_count = 0;
  for (size_t v = 0; v < region.vars.size(); ++v) {
    const MappedVar& var = region.vars[v];
    if (!var.maps_to()) continue;
    if (resident_in[v] != 0) {
      trace::SpanHandle skip = tr.span("resident/" + var.name, phase);
      skip.tag("mode", "upload-skip");
      skip.add("bytes_saved", static_cast<double>(var.size_bytes));
      skip.end();
      tools::DataOpInfo op;
      op.kind = tools::DataOpKind::kTransferTo;
      op.var = var.name;
      op.resident = true;
      op.resident_hit = true;
      op.bytes_resident = var.size_bytes;
      op.start = engine.now();
      op.end = op.start;
      tr.tools().emit_data_op(op);
      continue;
    }
    ++buffer_count;
  }
  if (buffer_count == 0) co_return Status::ok();
  // One transfer thread per buffer by default; a semaphore models the
  // configurable thread-pool bound. Chunked buffers draw block transfers
  // from the same pool.
  int threads = options_.transfer_threads > 0 ? options_.transfer_threads
                                              : buffer_count;
  auto gate = std::make_shared<sim::Semaphore>(engine, threads);
  auto statuses =
      std::make_shared<std::vector<Status>>(region.vars.size(), Status::ok());

  std::vector<sim::Completion> parts;
  for (size_t v = 0; v < region.vars.size(); ++v) {
    const MappedVar& var = region.vars[v];
    if (!var.maps_to() || resident_in[v] != 0) continue;
    parts.push_back(engine.spawn(
        [](CloudPlugin* self, const MappedVar* var, std::string staged,
           DataEnvironment* env, bool cache_eligible,
           std::shared_ptr<sim::Semaphore> gate, trace::SpanId phase,
           std::vector<Status>* statuses, size_t v) -> sim::Co<void> {
          Status status;
          if (self->use_chunking(var->size_bytes)) {
            status = co_await self->upload_chunked(var, std::move(staged),
                                                   env, cache_eligible, gate,
                                                   phase);
          } else {
            status = co_await self->upload_single(var, std::move(staged),
                                                  env, cache_eligible, gate,
                                                  phase);
          }
          if (!status.is_ok()) {
            (*statuses)[v] =
                status.with_context("uploading '" + var->name + "'");
          }
        }(this, &var, names[v], region.env, cache_eligible, gate, phase,
          statuses.get(), v)));
  }
  co_await sim::all(std::move(parts));
  for (const Status& status : *statuses) {
    if (!status.is_ok()) co_return status;
  }
  co_return Status::ok();
}

sim::Co<Status> CloudPlugin::upload_single(const MappedVar* var,
                                           std::string staged,
                                           DataEnvironment* env,
                                           bool cache_eligible,
                                           std::shared_ptr<sim::Semaphore> gate,
                                           trace::SpanId phase) {
  trace::Tracer& tr = tracer();
  trace::SpanHandle span = tr.span("upload/" + var->name, phase);
  ByteView plain = as_bytes_of(static_cast<const std::byte*>(var->host_ptr),
                               var->size_bytes);
  std::string key = spark::SparkContext::input_key(staged);
  bool use_cache = options_.cache_data && cache_eligible;
  // ompt_callback_target_data_op equivalent: one record per buffer, emitted
  // when the operation settles (cache-hit return or successful put). The
  // cache.* metric counters derive from it (Tracer::MetricsTool).
  tools::DataOpInfo op;
  op.kind = tools::DataOpKind::kTransferTo;
  op.var = var->name;
  op.cache_eligible = use_cache;
  op.start = cluster_->engine().now();
  uint64_t hash = 0;
  if (use_cache) {
    // Data caching (the paper's future-work item): if this variable is
    // already staged with identical content, skip the upload. The hash scan
    // is charged at host memory bandwidth.
    hash = fnv1a(plain);
    co_await cluster_->host_pool().run(
        cluster_->profile().reconstruct_seconds(plain.size()));
    auto it = data_cache_.find(staged);
    const CachedInput* cached =
        it != data_cache_.end() && it->second.chunk_size == 0 &&
                it->second.size_bytes == plain.size() &&
                it->second.blocks.size() == 1
            ? &it->second
            : nullptr;
    if (cached && cached->blocks[0].content_hash == hash &&
        cluster_->store().contains(options_.bucket, key)) {
      span.tag("cache", "hit");
      op.cache_hit = true;
      op.block_hits = 1;
      op.bytes_skipped = plain.size();
      op.end = cluster_->engine().now();
      tr.tools().emit_data_op(op);
      if (env != nullptr) env->note_staged(var->host_ptr, key);
      co_return Status::ok();
    }
    if (cached != nullptr) {
      op.block_dirty = 1;
    } else {
      op.block_misses = 1;
    }
    op.bytes_uploaded = plain.size();
  }
  co_await gate->acquire();
  // gzip on the laptop: real compression, charged on the host pool at the
  // rate of the codec the frame actually carries (the min-size gate may
  // have demoted to "null").
  trace::SpanHandle compress_span = tr.span("compress", span.id());
  // With transfer verification on, the frame is sealed with a plain-bytes
  // checksum so the Spark driver detects in-flight corruption on decode.
  auto encoded =
      options_.verify_transfers
          ? compress::encode_sealed_payload_frame(options_.codec, plain,
                                                  options_.min_compress_size)
          : compress::encode_payload_frame(options_.codec, plain,
                                           options_.min_compress_size);
  if (!encoded.ok()) {
    gate->release();
    co_return encoded.status();
  }
  double codec_seconds =
      cluster_->profile().encode_seconds(*encoded->codec, plain.size());
  co_await cluster_->host_pool().run(codec_seconds);
  compress_span.add("plain_bytes", static_cast<double>(plain.size()));
  compress_span.add("codec_seconds", codec_seconds);
  compress_span.end();
  uint64_t encoded_size = encoded->frame.size();
  trace::SpanHandle put_span = tr.span("put", span.id());
  put_span.add("wire_bytes", static_cast<double>(encoded_size));
  Status put = co_await put_with_retry(key, std::move(encoded->frame),
                                       put_span.id());
  put_span.end();
  gate->release();
  OC_CO_RETURN_IF_ERROR(put);
  if (use_cache) {
    data_cache_[staged] = CachedInput{
        0, plain.size(), {{plain.size(), encoded_size, hash}}};
  }
  // The environment now considers this host version cloud-resident — the
  // next region inside the environment skips this upload by version check
  // alone (no re-hashing).
  if (env != nullptr) env->note_staged(var->host_ptr, key);
  op.codec = options_.codec;
  op.plain_bytes = plain.size();
  op.wire_bytes = encoded_size;
  op.end = cluster_->engine().now();
  tr.tools().emit_data_op(op);
  co_return Status::ok();
}

sim::Co<void> CloudPlugin::put_block(
    std::string key, ByteBuffer frame, std::shared_ptr<sim::Semaphore> gate,
    std::shared_ptr<sim::Semaphore> window,
    std::shared_ptr<std::vector<Status>> statuses, size_t slot,
    trace::SpanId parent) {
  uint64_t wire_bytes = frame.size();
  co_await gate->acquire();
  // Span covers exactly the gate-held wire time: opened after the acquire,
  // closed before the releases (so the overlap/concurrency assertions in
  // trace_test see the transfer itself, not queueing).
  trace::SpanHandle span =
      tracer().span(str_format("block[%zu].put", slot), parent);
  span.add("wire_bytes", static_cast<double>(wire_bytes));
  Status put = co_await put_with_retry(std::move(key), std::move(frame),
                                       span.id());
  span.end();
  gate->release();
  window->release();
  if (!put.is_ok()) (*statuses)[slot] = put;
}

sim::Co<Status> CloudPlugin::upload_chunked(
    const MappedVar* var, std::string staged, DataEnvironment* env,
    bool cache_eligible, std::shared_ptr<sim::Semaphore> gate,
    trace::SpanId phase) {
  auto& engine = cluster_->engine();
  trace::Tracer& tr = tracer();
  trace::SpanHandle span = tr.span("upload/" + var->name, phase);
  span.tag("chunked", "true");
  ByteView plain = as_bytes_of(static_cast<const std::byte*>(var->host_ptr),
                               var->size_bytes);
  const uint64_t chunk = options_.chunk_size;
  const uint64_t count = compress::chunk_block_count(plain.size(), chunk);
  std::string base_key = spark::SparkContext::input_key(staged);

  // Per-block content hashes drive both the manifest and the delta check;
  // the scan over the buffer is charged at host memory bandwidth.
  std::vector<uint64_t> hashes(count);
  for (uint64_t k = 0; k < count; ++k) {
    uint64_t off = k * chunk;
    hashes[k] =
        fnv1a(plain.subspan(off, std::min<uint64_t>(chunk, plain.size() - off)));
  }
  co_await cluster_->host_pool().run(
      cluster_->profile().reconstruct_seconds(plain.size()));

  bool use_cache = options_.cache_data && cache_eligible;
  // Accumulated across the block loop and emitted once per buffer after the
  // manifest lands (or at the full-hit return).
  tools::DataOpInfo op;
  op.kind = tools::DataOpKind::kTransferTo;
  op.var = var->name;
  op.chunked = true;
  op.cache_eligible = use_cache;
  op.start = engine.now();
  const CachedInput* cached = nullptr;
  if (use_cache) {
    auto it = data_cache_.find(staged);
    if (it != data_cache_.end() && it->second.chunk_size == chunk &&
        it->second.size_bytes == plain.size() &&
        it->second.blocks.size() == count) {
      cached = &it->second;
    }
  }
  // A block is dirty when it was never staged, its content changed, or its
  // object vanished from the bucket (eviction).
  std::vector<char> dirty(count, 1);
  if (use_cache) {
    uint64_t dirty_count = 0;
    for (uint64_t k = 0; k < count; ++k) {
      bool clean = cached != nullptr &&
                   cached->blocks[k].content_hash == hashes[k] &&
                   cluster_->store().contains(
                       options_.bucket,
                       spark::SparkContext::part_key(base_key, k));
      dirty[k] = clean ? 0 : 1;
      if (!clean) ++dirty_count;
    }
    if (dirty_count == 0 &&
        cluster_->store().contains(options_.bucket, base_key)) {
      span.tag("cache", "hit");
      op.cache_hit = true;
      op.block_hits = count;
      op.bytes_skipped = plain.size();
      op.end = engine.now();
      tr.tools().emit_data_op(op);
      if (env != nullptr) env->note_staged(var->host_ptr, base_key);
      co_return Status::ok();
    }
  }

  // The streaming pipeline: this producer compresses blocks in order; each
  // finished block is handed to a spawned transfer task. The window
  // semaphore bounds runahead — depth 2 overlaps compressing block k+1
  // with block k's wire time, depth 1 is the strictly serial ablation.
  auto window = std::make_shared<sim::Semaphore>(
      engine, options_.overlap_transfers ? 2 : 1);
  auto statuses = std::make_shared<std::vector<Status>>(count, Status::ok());
  std::vector<compress::BlockDigest> digests(count);
  std::vector<sim::Completion> puts;
  Status produce = Status::ok();
  for (uint64_t k = 0; k < count; ++k) {
    uint64_t off = k * chunk;
    uint64_t len = std::min<uint64_t>(chunk, plain.size() - off);
    if (!dirty[k]) {
      digests[k] = cached->blocks[k];
      op.block_hits += 1;
      op.bytes_skipped += len;
      continue;
    }
    if (use_cache) {
      if (cached != nullptr) {
        op.block_dirty += 1;
      } else {
        op.block_misses += 1;
      }
      op.bytes_uploaded += len;
    }
    co_await window->acquire();
    trace::SpanHandle compress_span =
        tr.span(str_format("block[%llu].compress",
                           static_cast<unsigned long long>(k)),
                span.id());
    auto encoded = compress::encode_payload_frame(
        options_.codec, plain.subspan(off, len), options_.min_compress_size);
    if (!encoded.ok()) {
      window->release();
      produce = encoded.status();
      break;
    }
    double codec_seconds =
        cluster_->profile().encode_seconds(*encoded->codec, len);
    co_await cluster_->host_pool().run(codec_seconds);
    compress_span.add("plain_bytes", static_cast<double>(len));
    compress_span.add("codec_seconds", codec_seconds);
    compress_span.end();
    digests[k] = {len, encoded->frame.size(), hashes[k]};
    op.plain_bytes += len;
    op.wire_bytes += encoded->frame.size();
    puts.push_back(engine.spawn(
        put_block(spark::SparkContext::part_key(base_key, k),
                  std::move(encoded->frame), gate, window, statuses, k,
                  span.id())));
  }
  co_await sim::all(std::move(puts));
  OC_CO_RETURN_IF_ERROR(produce);
  for (const Status& status : *statuses) {
    if (!status.is_ok()) co_return status;
  }

  // Manifest last: a reader that can see the manifest can see every block.
  OC_CO_ASSIGN_OR_RETURN(
      ByteBuffer manifest,
      compress::encode_chunked_manifest(chunk, plain.size(), digests));
  uint64_t manifest_size = manifest.size();
  co_await gate->acquire();
  trace::SpanHandle manifest_span = tr.span("manifest.put", span.id());
  manifest_span.add("wire_bytes", static_cast<double>(manifest_size));
  Status put = co_await put_with_retry(base_key, std::move(manifest),
                                       manifest_span.id());
  manifest_span.end();
  gate->release();
  OC_CO_RETURN_IF_ERROR(put);
  if (use_cache) {
    data_cache_[staged] = CachedInput{chunk, plain.size(), std::move(digests)};
  }
  if (env != nullptr) env->note_staged(var->host_ptr, base_key);
  op.codec = options_.codec;
  op.wire_bytes += manifest_size;
  op.end = engine.now();
  tr.tools().emit_data_op(op);
  co_return Status::ok();
}

sim::Co<Status> CloudPlugin::download_outputs(
    const TargetRegion& region, const std::vector<std::string>& names,
    trace::SpanId phase) {
  auto& engine = cluster_->engine();
  trace::Tracer& tr = tracer();
  // Outputs registered in the region's data environment stay cloud-resident:
  // the object remains in the bucket as the buffer's latest version and the
  // host copy is materialized lazily (update_from / environment exit).
  int buffer_count = 0;
  std::vector<char> deferred(region.vars.size(), 0);
  for (size_t v = 0; v < region.vars.size(); ++v) {
    const MappedVar& var = region.vars[v];
    if (!var.maps_from()) continue;
    if (region.env != nullptr && region.env->find(var.host_ptr) != nullptr) {
      deferred[v] = 1;
      region.env->note_output(var.host_ptr,
                              spark::SparkContext::output_key(names[v]));
      trace::SpanHandle defer = tr.span("resident/" + var.name, phase);
      defer.tag("mode", "download-defer");
      defer.add("bytes_deferred", static_cast<double>(var.size_bytes));
      defer.end();
      tools::DataOpInfo op;
      op.kind = tools::DataOpKind::kTransferFrom;
      op.var = var.name;
      op.resident = true;
      op.resident_deferred = true;
      op.bytes_resident = var.size_bytes;
      op.start = engine.now();
      op.end = op.start;
      tr.tools().emit_data_op(op);
      continue;
    }
    ++buffer_count;
  }
  if (buffer_count == 0) co_return Status::ok();
  int threads = options_.transfer_threads > 0 ? options_.transfer_threads
                                              : buffer_count;
  auto gate = std::make_shared<sim::Semaphore>(engine, threads);
  auto statuses =
      std::make_shared<std::vector<Status>>(region.vars.size(), Status::ok());
  std::vector<sim::Completion> parts;
  for (size_t v = 0; v < region.vars.size(); ++v) {
    const MappedVar& var = region.vars[v];
    if (!var.maps_from() || deferred[v] != 0) continue;
    parts.push_back(engine.spawn(
        [](CloudPlugin* self, const MappedVar* var, std::string staged,
           std::shared_ptr<sim::Semaphore> gate, trace::SpanId phase,
           std::vector<Status>* statuses, size_t v) -> sim::Co<void> {
          Status status = co_await self->download_object(
              var, spark::SparkContext::output_key(staged), gate, phase);
          if (!status.is_ok()) {
            (*statuses)[v] =
                status.with_context("downloading '" + var->name + "'");
          }
        }(this, &var, names[v], gate, phase, statuses.get(), v)));
  }
  co_await sim::all(std::move(parts));
  for (const Status& status : *statuses) {
    if (!status.is_ok()) co_return status;
  }
  co_return Status::ok();
}

sim::Co<void> CloudPlugin::fetch_block(
    std::string key, const MappedVar* var, compress::ChunkedBlock block,
    std::shared_ptr<sim::Semaphore> gate,
    std::shared_ptr<sim::Semaphore> window,
    std::shared_ptr<std::vector<Status>> statuses, size_t slot,
    std::shared_ptr<DownloadTally> tally, trace::SpanId parent) {
  trace::Tracer& tr = tracer();
  // The window bounds runahead (mirroring the upload pipeline); the gate is
  // held only for the wire, so block k decodes while block k+1 transfers.
  co_await window->acquire();
  // Fetch + decode + verify retries as one unit: a content-hash mismatch
  // (kDataLoss) means the copy was corrupted in flight — the stored object
  // may be intact, so re-download instead of surfacing silent data loss.
  double prev_sleep = options_.retry_backoff_seconds;
  for (int attempt = 0; attempt <= options_.storage_retries; ++attempt) {
    trace::SpanHandle recovery;
    if (attempt > 0) {
      // Corruption refetches spend retry-budget tokens too: a storm of
      // corrupt blocks must not turn into an unbounded re-download loop.
      if (!admit_retry("refetch", /*tenant=*/{}, parent)) break;
      recovery = tr.span("recovery", parent);
      recovery.tag("op", "refetch");
      recovery.tag("key", key);
      note_fault(tools::FaultEventInfo::Kind::kRetry, "storage.get",
                 (*statuses)[slot].message());
      co_await backoff_sleep(&prev_sleep);
    }
    co_await gate->acquire();
    trace::SpanHandle fetch_span =
        tr.span(str_format("block[%zu].fetch", slot), parent);
    auto framed = co_await get_with_retry(key, fetch_span.id());
    if (framed.ok()) {
      fetch_span.add("wire_bytes", static_cast<double>(framed->size()));
      tally->wire_bytes += framed->size();
    }
    fetch_span.end();
    gate->release();
    if (!framed.ok()) {
      (*statuses)[slot] = framed.status();
      recovery.end();
      break;  // get_with_retry already exhausted the transient retries
    }
    trace::SpanHandle decode_span =
        tr.span(str_format("block[%zu].decode", slot), parent);
    auto plain = compress::decode_payload(framed->view());
    if (plain.ok() && (plain->size() != block.plain_size ||
                       fnv1a(plain->view()) != block.content_hash)) {
      plain = data_loss(
          str_format("block %zu failed content verification", slot));
    }
    if (!plain.ok()) {
      decode_span.tag("fault", "corruption");
      decode_span.end();
      recovery.end();
      (*statuses)[slot] = plain.status();
      if (plain.status().code() == StatusCode::kDataLoss) {
        note_fault(tools::FaultEventInfo::Kind::kCorruptionDetected,
                   "net.corrupt", key);
        continue;  // re-download
      }
      break;
    }
    double codec_seconds = 0;
    auto codec_name = compress::payload_codec(framed->view());
    if (codec_name.ok()) {
      auto codec = compress::find_codec(*codec_name);
      if (codec.ok()) {
        codec_seconds =
            cluster_->profile().decode_seconds(**codec, plain->size());
      }
    }
    co_await cluster_->host_pool().run(codec_seconds);
    decode_span.add("plain_bytes", static_cast<double>(plain->size()));
    decode_span.add("codec_seconds", codec_seconds);
    decode_span.end();
    recovery.end();
    tally->plain_bytes += plain->size();
    std::memcpy(static_cast<std::byte*>(var->host_ptr) + block.plain_offset,
                plain->data(), plain->size());
    (*statuses)[slot] = Status::ok();
    break;
  }
  window->release();
}

sim::Co<Status> CloudPlugin::download_object(
    const MappedVar* var, std::string base_key,
    std::shared_ptr<sim::Semaphore> gate, trace::SpanId phase,
    DownloadTally* totals) {
  auto& engine = cluster_->engine();
  trace::Tracer& tr = tracer();
  trace::SpanHandle span = tr.span("download/" + var->name, phase);
  // One data-op record per buffer regardless of the path (single frame,
  // inline chunked, or manifest + block pipeline); emitted on success only.
  tools::DataOpInfo op;
  op.kind = tools::DataOpKind::kTransferFrom;
  op.var = var->name;
  op.codec = options_.codec;
  op.start = engine.now();
  co_await gate->acquire();
  trace::SpanHandle fetch_span = tr.span("fetch", span.id());
  auto framed = co_await get_with_retry(base_key, fetch_span.id());
  if (framed.ok()) {
    fetch_span.add("wire_bytes", static_cast<double>(framed->size()));
    op.wire_bytes += framed->size();
  }
  fetch_span.end();
  gate->release();
  OC_CO_RETURN_IF_ERROR(framed.status());

  if (compress::is_chunked_payload(framed->view())) {
    OC_CO_ASSIGN_OR_RETURN(compress::ChunkedIndex index,
                           compress::parse_chunked_index(framed->view()));
    if (index.plain_size != var->size_bytes) {
      co_return data_loss(str_format(
          "got %llu bytes, expected %llu",
          static_cast<unsigned long long>(index.plain_size),
          static_cast<unsigned long long>(var->size_bytes)));
    }
    if (index.inline_blocks) {
      trace::SpanHandle decode_span = tr.span("decode", span.id());
      OC_CO_ASSIGN_OR_RETURN(ByteBuffer plain,
                             compress::decode_chunked_payload(framed->view()));
      double codec_seconds = 0;
      for (const compress::ChunkedBlock& block : index.blocks) {
        auto codec_name = compress::payload_codec(
            framed->view().subspan(block.frame_offset, block.encoded_size));
        if (!codec_name.ok()) continue;
        auto codec = compress::find_codec(*codec_name);
        if (codec.ok()) {
          codec_seconds +=
              cluster_->profile().decode_seconds(**codec, block.plain_size);
        }
      }
      co_await cluster_->host_pool().run(codec_seconds);
      decode_span.add("plain_bytes", static_cast<double>(plain.size()));
      decode_span.add("codec_seconds", codec_seconds);
      decode_span.end();
      std::memcpy(var->host_ptr, plain.data(), plain.size());
      op.chunked = true;
      op.plain_bytes += plain.size();
      op.end = engine.now();
      tr.tools().emit_data_op(op);
      if (totals != nullptr) *totals = {op.plain_bytes, op.wire_bytes};
      co_return Status::ok();
    }
    // Manifest: stream the sibling block objects back through the mirrored
    // pipeline. Each block verifies independently and lands at its own
    // offset, so completion order is irrelevant.
    auto window = std::make_shared<sim::Semaphore>(
        engine, options_.overlap_transfers ? 2 : 1);
    auto statuses = std::make_shared<std::vector<Status>>(index.blocks.size(),
                                                          Status::ok());
    auto tally = std::make_shared<DownloadTally>();
    std::vector<sim::Completion> fetches;
    for (size_t k = 0; k < index.blocks.size(); ++k) {
      fetches.push_back(engine.spawn(
          fetch_block(spark::SparkContext::part_key(base_key, k), var,
                      index.blocks[k], gate, window, statuses, k, tally,
                      span.id())));
    }
    co_await sim::all(std::move(fetches));
    for (size_t k = 0; k < statuses->size(); ++k) {
      if (!(*statuses)[k].is_ok()) {
        co_return (*statuses)[k].with_context(
            str_format("block %zu of '%s'", k, base_key.c_str()));
      }
    }
    op.chunked = true;
    op.plain_bytes += tally->plain_bytes;
    op.wire_bytes += tally->wire_bytes;
    op.end = engine.now();
    tr.tools().emit_data_op(op);
    if (totals != nullptr) *totals = {op.plain_bytes, op.wire_bytes};
    co_return Status::ok();
  }

  // Legacy single frame (possibly sealed). Decode failures and size/checksum
  // mismatches are kDataLoss from in-flight corruption: re-download (the
  // stored object may be intact) instead of surfacing silent data loss.
  Status last = Status::ok();
  double prev_sleep = options_.retry_backoff_seconds;
  for (int attempt = 0; attempt <= options_.storage_retries; ++attempt) {
    if (attempt > 0) {
      if (!admit_retry("refetch", /*tenant=*/{}, span.id())) break;
      trace::SpanHandle recovery = tr.span("recovery", span.id());
      recovery.tag("op", "refetch");
      recovery.tag("key", base_key);
      note_fault(tools::FaultEventInfo::Kind::kCorruptionDetected,
                 "net.corrupt", base_key);
      note_fault(tools::FaultEventInfo::Kind::kRetry, "storage.get",
                 last.message());
      co_await backoff_sleep(&prev_sleep);
      co_await gate->acquire();
      trace::SpanHandle refetch_span = tr.span("fetch", span.id());
      framed = co_await get_with_retry(base_key, refetch_span.id());
      if (framed.ok()) {
        refetch_span.add("wire_bytes", static_cast<double>(framed->size()));
        op.wire_bytes += framed->size();
      }
      refetch_span.end();
      gate->release();
      recovery.end();
      OC_CO_RETURN_IF_ERROR(framed.status());
    }
    trace::SpanHandle decode_span = tr.span("decode", span.id());
    auto plain = compress::decode_payload(framed->view());
    if (plain.ok() && plain->size() != var->size_bytes) {
      plain = data_loss(str_format(
          "got %zu bytes, expected %llu", plain->size(),
          static_cast<unsigned long long>(var->size_bytes)));
    }
    if (!plain.ok()) {
      decode_span.tag("fault", "corruption");
      decode_span.end();
      last = plain.status();
      if (last.code() == StatusCode::kDataLoss) continue;
      co_return last;
    }
    auto codec_name = compress::payload_codec(framed->view());
    double codec_seconds = 0;
    if (codec_name.ok()) {
      auto codec = compress::find_codec(*codec_name);
      if (codec.ok()) {
        codec_seconds =
            cluster_->profile().decode_seconds(**codec, plain->size());
      }
    }
    co_await cluster_->host_pool().run(codec_seconds);
    decode_span.add("plain_bytes", static_cast<double>(plain->size()));
    decode_span.add("codec_seconds", codec_seconds);
    decode_span.end();
    std::memcpy(var->host_ptr, plain->data(), plain->size());
    op.plain_bytes += plain->size();
    op.end = engine.now();
    tr.tools().emit_data_op(op);
    if (totals != nullptr) *totals = {op.plain_bytes, op.wire_bytes};
    co_return Status::ok();
  }
  co_return last;
}

sim::Co<Result<MaterializeStats>> CloudPlugin::materialize(
    const MappedVar& var, const std::string& object_key,
    trace::SpanId parent) {
  // A deferred download finally forced (environment exit / update_from):
  // reuse the whole download pipeline — retries, corruption re-fetch,
  // chunked block streaming — against the resident object's key.
  auto gate = std::make_shared<sim::Semaphore>(cluster_->engine(), 1);
  trace::SpanHandle span = tracer().span("materialize", parent);
  span.tag("var", var.name);
  DownloadTally tally;
  Status fetched =
      co_await download_object(&var, object_key, gate, span.id(), &tally);
  if (!fetched.is_ok()) {
    co_return fetched.with_context("materializing '" + var.name + "'");
  }
  co_return MaterializeStats{tally.plain_bytes, tally.wire_bytes};
}

sim::Co<Status> CloudPlugin::discard_object(const std::string& object_key,
                                            trace::SpanId parent) {
  if (object_key.empty()) co_return Status::ok();
  trace::Tracer& tr = tracer();
  // The prefix listing catches the object itself plus its chunked sibling
  // blocks (`<key>.partNNNNN`). Best-effort, mirroring cleanup: a failed
  // delete leaves an orphan object, never a wrong result.
  tr.set_ambient(parent);
  auto keys = co_await cluster_->store().list(cloud::Cluster::host_node(),
                                              options_.bucket, object_key);
  if (!keys.ok()) co_return Status::ok();
  for (const std::string& key : *keys) {
    double start = cluster_->engine().now();
    tr.set_ambient(parent);
    Status removed = co_await cluster_->store().remove(
        cloud::Cluster::host_node(), options_.bucket, key);
    if (!removed.is_ok()) continue;
    tools::DataOpInfo op;
    op.kind = tools::DataOpKind::kDelete;
    op.var = key;
    op.start = start;
    op.end = cluster_->engine().now();
    tr.tools().emit_data_op(op);
  }
  co_return Status::ok();
}

sim::Co<Status> CloudPlugin::cleanup_objects(
    const TargetRegion& region, const std::vector<std::string>& names,
    bool cache_eligible, trace::SpanId phase) {
  if (names.empty()) co_return Status::ok();
  trace::Tracer& tr = tracer();
  // Every staged key of this invocation shares one prefix (names[v] =
  // "<prefix><var>"). One list finds them all — including block part
  // objects whose count we may no longer know (a previous invocation could
  // have staged a different size under the stable prefix).
  std::string prefix = names[0].substr(0, names[0].rfind('/') + 1);
  tr.set_ambient(phase);
  auto keys = co_await cluster_->store().list(cloud::Cluster::host_node(),
                                              options_.bucket, prefix);
  // Deletions are best-effort (idempotent in S3); drop their statuses.
  if (!keys.ok()) co_return Status::ok();
  bool keep_inputs = options_.cache_data && cache_eligible;
  auto& engine = cluster_->engine();
  auto drop = [](CloudPlugin* self, trace::SpanId phase,
                 std::string key) -> sim::Co<void> {
    // Re-arm the ambient parent inside the spawned task: the remove's body
    // starts synchronously inside this co_await, so its store.delete span
    // lands under the cleanup phase.
    trace::Tracer& tr = self->tracer();
    double start = self->cluster_->engine().now();
    tr.set_ambient(phase);
    Status removed = co_await self->cluster_->store().remove(
        cloud::Cluster::host_node(), self->options_.bucket, key);
    if (!removed.is_ok()) co_return;
    tools::DataOpInfo op;
    op.kind = tools::DataOpKind::kDelete;
    op.var = key;
    op.start = start;
    op.end = self->cluster_->engine().now();
    tr.tools().emit_data_op(op);
  };
  std::vector<sim::Completion> parts;
  for (const std::string& key : *keys) {
    bool is_output = key.find(".out.bin") != std::string::npos;
    if (!is_output && keep_inputs) continue;
    // Environment-resident objects survive cleanup: they ARE the next
    // region's inputs (and the deferred copy-out source on exit).
    if (region.env != nullptr && region.env->is_resident_key(key)) continue;
    parts.push_back(engine.spawn(drop(this, phase, key)));
  }
  // Objects superseded mid-chain (a buffer re-staged under a new key) had
  // their deletion deferred so residency bookkeeping stays synchronous;
  // reclaim them now, inside this region's cleanup phase.
  if (region.env != nullptr) {
    for (const std::string& key : region.env->take_stale_keys()) {
      if (region.env->is_resident_key(key)) continue;  // key was reused
      tr.set_ambient(phase);
      auto stale = co_await cluster_->store().list(cloud::Cluster::host_node(),
                                                   options_.bucket, key);
      if (!stale.ok()) continue;
      for (const std::string& part : *stale) {
        parts.push_back(engine.spawn(drop(this, phase, part)));
      }
    }
  }
  co_await sim::all(std::move(parts));
  co_return Status::ok();
}

sim::Co<Result<OffloadReport>> CloudPlugin::run_region(
    const TargetRegion& region, trace::SpanId parent_span) {
  auto& engine = cluster_->engine();
  trace::Tracer& tr = tracer();
  OffloadReport report;
  report.device_name = name_;
  double start = engine.now();
  double cost_start = cluster_->cost().accrued_usd();

  // Adopt the manager's root `offload` span when given one; standalone
  // callers get a local root so the phase tree is always complete.
  trace::SpanHandle local_root;
  trace::SpanId root = parent_span;
  if (root == trace::kNoSpan) {
    local_root = tr.span("offload");
    local_root.tag("region", region.name);
    local_root.tag("device", name_);
    root = local_root.id();
  }

  if (options_.stream_spark_logs) {
    log_.info("offloading region '%s' to %s", region.name.c_str(),
              name_.c_str());
  }

  // Claim the region's stable staging prefix. A concurrent `nowait` offload
  // of the same region would trample the claim holder's staged objects, so
  // it falls back to a unique prefix and skips the data cache this once.
  bool cache_eligible = false;
  struct RegionClaim {
    CloudPlugin* plugin = nullptr;
    std::string region;
    ~RegionClaim() {
      if (plugin != nullptr) plugin->active_regions_.erase(region);
    }
  } claim;
  if (options_.cache_data) {
    if (active_regions_.insert(region.name).second) {
      claim.plugin = this;
      claim.region = region.name;
      cache_eligible = true;
    } else {
      log_.warn(
          "region '%s' is already offloading; staging under a unique prefix "
          "(data cache skipped for this invocation)",
          region.name.c_str());
    }
  }

  // Capacity acquisition. Elastic fleets (autoscaler) claim workers per
  // offload: any scale-up boot latency sits on the offload critical path,
  // under the same `boot` span the on-the-fly whole-cluster start uses, so
  // report.boot_seconds means "provisioning wait" in both modes.
  struct CapacityClaim {
    cloud::Autoscaler* autoscaler = nullptr;
    ~CapacityClaim() {
      if (autoscaler != nullptr) autoscaler->release_offload();
    }
  } capacity;
  if (cloud::Autoscaler* autoscaler = cluster_->autoscaler()) {
    trace::SpanHandle boot = tr.span("boot", root);
    OC_CO_RETURN_IF_ERROR(co_await autoscaler->acquire_for_offload());
    capacity.autoscaler = autoscaler;
  } else if (!cluster_->running()) {
    // On-the-fly EC2 start (§III-A): boot everything, billed from here.
    if (!cluster_->spec().on_the_fly) {
      co_return unavailable("cluster stopped and on-the-fly mode disabled");
    }
    trace::SpanHandle boot = tr.span("boot", root);
    tr.set_ambient(boot.id());
    OC_CO_RETURN_IF_ERROR(co_await cluster_->ensure_running());
  }

  if (!cluster_->store().bucket_exists(options_.bucket)) {
    Status created = cluster_->store().create_bucket(options_.bucket);
    if (!created.is_ok() && created.code() != StatusCode::kAlreadyExists) {
      co_return created;
    }
  }

  std::vector<std::string> names = staged_names(region, cache_eligible);

  // Residency resolution (data_env.h): an input whose current version is
  // already cloud-resident is consumed in place — the job reads the object
  // the previous region produced (`VarSpec::input_object`) and the upload is
  // skipped entirely. The check is identity + version, no hashing. A buffer
  // whose only valid copy was cloud-side but whose object vanished is
  // unrecoverable here; kDataLoss sends the manager down the recovery path
  // (residency replay + host fallback).
  std::vector<char> resident_in(region.vars.size(), 0);
  std::vector<std::string> input_objects(region.vars.size());
  if (region.env != nullptr) {
    for (size_t v = 0; v < region.vars.size(); ++v) {
      const MappedVar& var = region.vars[v];
      if (!var.maps_to()) continue;
      const ResidencyTable::Buffer* buffer = region.env->find(var.host_ptr);
      if (buffer == nullptr) continue;
      bool present = buffer->resident_current() &&
                     cluster_->store().contains(options_.bucket,
                                                buffer->cloud_key);
      if (present) {
        resident_in[v] = 1;
        input_objects[v] = buffer->cloud_key;
      } else if (!buffer->host_valid) {
        co_return data_loss("resident input '" + var.name +
                            "' lost its cloud copy ('" + buffer->cloud_key +
                            "') and the host copy is stale");
      }
    }
  }

  // map(from:)/map(alloc:) variables only exist device-side until download:
  // report their allocation as data ops (ompt_target_data_alloc flavor).
  for (const MappedVar& var : region.vars) {
    if (var.maps_to()) continue;
    tools::DataOpInfo alloc;
    alloc.kind = tools::DataOpKind::kAlloc;
    alloc.var = var.name;
    alloc.plain_bytes = var.size_bytes;
    alloc.start = engine.now();
    alloc.end = alloc.start;
    tr.tools().emit_data_op(alloc);
  }

  // Whole-offload deadline: checked at phase boundaries (never mid-phase,
  // so a partial phase can not leave buffers half-written unnoticed — the
  // device manager restores the snapshot before any host fallback anyway).
  auto past_deadline = [&](const char* phase) -> Status {
    if (options_.offload_deadline_seconds <= 0) return Status::ok();
    double elapsed = engine.now() - start;
    if (elapsed <= options_.offload_deadline_seconds) return Status::ok();
    note_fault(tools::FaultEventInfo::Kind::kDeadlineExceeded, "offload",
               region.name);
    return deadline_exceeded(str_format(
        "region '%s' missed its %.1fs deadline after %s (%.1fs elapsed)",
        region.name.c_str(), options_.offload_deadline_seconds, phase,
        elapsed));
  };
  OC_CO_RETURN_IF_ERROR(past_deadline("boot"));

  // Fig. 1 step 2: inputs to cloud storage (parallel transfer threads,
  // chunked buffers streaming compress/wire overlapped).
  {
    trace::SpanHandle upload = tr.span("upload", root);
    OC_CO_RETURN_IF_ERROR(co_await upload_inputs(region, names, resident_in,
                                                 cache_eligible, upload.id()));
  }
  OC_CO_RETURN_IF_ERROR(past_deadline("upload"));

  // Fig. 1 steps 3-7, with job-level resubmission: a driver crash or a
  // mid-job outage (kUnavailable) and driver-detected input corruption
  // (kDataLoss) re-run only the job — the inputs are still staged, so the
  // upload is not repeated.
  double job_prev_sleep = options_.retry_backoff_seconds;
  for (int job_attempt = 0;; ++job_attempt) {
    {
      trace::SpanHandle submit = tr.span("spark.submit", root);
      OC_CO_RETURN_IF_ERROR(co_await cluster_->ssh_submit_roundtrip());
    }
    spark::JobSpec job;
    job.name = region.name;
    job.bucket = options_.bucket;
    job.storage_codec = options_.codec;
    job.storage_min_compress = options_.min_compress_size;
    job.storage_chunk_size = options_.chunk_size;
    job.storage_seal = options_.verify_transfers;
    for (size_t v = 0; v < region.vars.size(); ++v) {
      const MappedVar& var = region.vars[v];
      spark::VarSpec spec;
      spec.name = names[v];
      spec.size_bytes = var.size_bytes;
      spec.map_to = var.maps_to();
      spec.map_from = var.maps_from();
      // Resident inputs read the previous region's output object directly.
      if (resident_in[v] != 0) spec.input_object = input_objects[v];
      job.vars.push_back(std::move(spec));
    }
    job.loops = region.loops;
    // Coalesced batch regions carry their member sub-ranges down to Spark:
    // tiling respects them and tasks are attributed to the owning tenant.
    for (const RegionSlice& slice : region.slices) {
      job.sub_partitions.push_back(
          {slice.label, slice.tenant, slice.begin, slice.end});
    }
    auto ran = co_await context_.run_job(std::move(job), root);
    if (ran.ok()) {
      report.job = std::move(*ran);
      note_success(region.tenant);
      break;
    }
    StatusCode code = ran.status().code();
    bool resubmittable =
        code == StatusCode::kUnavailable || code == StatusCode::kDataLoss;
    if (!resubmittable || job_attempt >= options_.job_retries) {
      co_return ran.status();
    }
    // A resubmission multiplies whole-job load, so it draws from both the
    // device and the owning tenant's retry budget; an empty bucket
    // surfaces the real failure instead of piling on.
    if (!admit_retry("resubmit", region.tenant, root)) {
      co_return ran.status().with_context("retry budget exhausted");
    }
    OC_CO_RETURN_IF_ERROR(past_deadline("spark job failure"));
    if (code == StatusCode::kDataLoss) {
      note_fault(tools::FaultEventInfo::Kind::kCorruptionDetected,
                 "spark.input", ran.status().message());
    }
    note_fault(tools::FaultEventInfo::Kind::kResubmit, "spark.job",
               ran.status().message());
    log_.warn("job '%s' failed (%s); resubmitting (%d/%d)",
              region.name.c_str(), ran.status().to_string().c_str(),
              job_attempt + 1, options_.job_retries);
    trace::SpanHandle recovery = tr.span("recovery", root);
    recovery.tag("op", "resubmit");
    co_await backoff_sleep(&job_prev_sleep);
    recovery.end();
  }
  OC_CO_RETURN_IF_ERROR(past_deadline("spark job"));

  // Fig. 1 step 8: results back to the host.
  {
    trace::SpanHandle download = tr.span("download", root);
    OC_CO_RETURN_IF_ERROR(
        co_await download_outputs(region, names, download.id()));
  }
  OC_CO_RETURN_IF_ERROR(past_deadline("download"));

  if (options_.cleanup) {
    trace::SpanHandle cleanup = tr.span("cleanup", root);
    OC_CO_RETURN_IF_ERROR(
        co_await cleanup_objects(region, names, cache_eligible, cleanup.id()));
  }

  // On-the-fly: stop billing as soon as the region is done.
  if (cluster_->spec().on_the_fly) {
    tr.set_ambient(root);
    OC_CO_RETURN_IF_ERROR(co_await cluster_->shutdown());
  }

  report.total_seconds = engine.now() - start;
  report.cost_usd = cluster_->cost().accrued_usd() - cost_start;
  local_root.end();
  finalize_report_from_trace(tr, root, report);
  if (options_.stream_spark_logs) {
    log_.info("region '%s' done in %s ($%.4f)", region.name.c_str(),
              format_duration(report.total_seconds).c_str(), report.cost_usd);
  }
  co_return report;
}

}  // namespace ompcloud::omptarget
