#include "omptarget/cloud_plugin.h"

#include <cstring>

#include "compress/payload.h"
#include "support/strings.h"

namespace ompcloud::omptarget {

Result<CloudPluginOptions> CloudPluginOptions::from_config(
    const Config& config) {
  CloudPluginOptions options;
  options.bucket = config.get_string("offload.bucket", options.bucket);
  options.codec = config.get_string("offload.compression", options.codec);
  OC_ASSIGN_OR_RETURN(const compress::Codec* codec,
                      compress::find_codec(options.codec));
  (void)codec;
  options.min_compress_size = config.get_byte_size(
      "offload.compression-min-size", options.min_compress_size);
  options.transfer_threads = static_cast<int>(
      config.get_int("offload.transfer-threads", options.transfer_threads));
  if (options.transfer_threads < 0) {
    return invalid_argument("offload.transfer-threads must be >= 0");
  }
  options.storage_retries = static_cast<int>(
      config.get_int("offload.storage-retries", options.storage_retries));
  options.retry_backoff_seconds = config.get_duration(
      "offload.retry-backoff", options.retry_backoff_seconds);
  options.cleanup = config.get_bool("offload.cleanup", options.cleanup);
  options.stream_spark_logs =
      config.get_bool("offload.stream-spark-logs", options.stream_spark_logs);
  options.cache_data = config.get_bool("offload.cache-data", options.cache_data);
  return options;
}

CloudPlugin::CloudPlugin(cloud::Cluster& cluster, spark::SparkConf conf,
                         CloudPluginOptions options)
    : cluster_(&cluster),
      context_(cluster, std::move(conf)),
      options_(std::move(options)),
      name_("cloud(" + cluster.spec().provider + "+" +
            cluster.spec().storage_type + ")") {}

Result<std::unique_ptr<CloudPlugin>> CloudPlugin::from_config(
    sim::Engine& engine, const Config& config) {
  OC_ASSIGN_OR_RETURN(cloud::ClusterSpec spec,
                      cloud::ClusterSpec::from_config(config));
  OC_ASSIGN_OR_RETURN(spark::SparkConf conf, spark::SparkConf::from_config(config));
  OC_ASSIGN_OR_RETURN(CloudPluginOptions options,
                      CloudPluginOptions::from_config(config));
  auto cluster = std::make_unique<cloud::Cluster>(
      engine, std::move(spec), cloud::SimProfile::from_config(config));
  auto plugin = std::make_unique<CloudPlugin>(*cluster, std::move(conf),
                                              std::move(options));
  plugin->owned_cluster_ = std::move(cluster);
  return plugin;
}

bool CloudPlugin::is_available() const {
  return cluster_->running() || cluster_->spec().on_the_fly;
}

std::vector<std::string> CloudPlugin::staged_names(const TargetRegion& region) {
  std::string prefix =
      options_.cache_data
          ? region.name + "/"
          : str_format("%s#%llu/", region.name.c_str(),
                       static_cast<unsigned long long>(next_invocation_++));
  std::vector<std::string> names;
  names.reserve(region.vars.size());
  for (const MappedVar& var : region.vars) names.push_back(prefix + var.name);
  return names;
}

sim::Co<Status> CloudPlugin::upload_inputs(
    const TargetRegion& region, const std::vector<std::string>& names,
    OffloadReport& report) {
  auto& engine = cluster_->engine();
  // One transfer thread per buffer by default; a semaphore models the
  // configurable thread-pool bound.
  int buffer_count = 0;
  for (const MappedVar& var : region.vars) {
    if (var.maps_to()) ++buffer_count;
  }
  if (buffer_count == 0) co_return Status::ok();
  int threads = options_.transfer_threads > 0 ? options_.transfer_threads
                                              : buffer_count;
  auto gate = std::make_shared<sim::Semaphore>(engine, threads);
  auto statuses =
      std::make_shared<std::vector<Status>>(region.vars.size(), Status::ok());

  OC_CO_ASSIGN_OR_RETURN(const compress::Codec* codec,
                         compress::find_codec(options_.codec));

  std::vector<sim::Completion> parts;
  for (size_t v = 0; v < region.vars.size(); ++v) {
    const MappedVar& var = region.vars[v];
    if (!var.maps_to()) continue;
    parts.push_back(engine.spawn(
        [](CloudPlugin* self, const MappedVar* var, std::string staged,
           const compress::Codec* codec, std::shared_ptr<sim::Semaphore> gate,
           OffloadReport* report, std::vector<Status>* statuses,
           size_t v) -> sim::Co<void> {
          auto& engine = self->cluster_->engine();
          co_await gate->acquire();
          ByteView plain = as_bytes_of(
              static_cast<const std::byte*>(var->host_ptr), var->size_bytes);
          // Data caching (the paper's future-work item): if this variable
          // is already staged with identical content, skip the upload. The
          // hash scan is charged at host memory bandwidth.
          if (self->options_.cache_data) {
            uint64_t hash = fnv1a(plain);
            co_await self->cluster_->host_pool().run(
                self->cluster_->profile().reconstruct_seconds(plain.size()));
            auto cached = self->data_cache_.find(staged);
            if (cached != self->data_cache_.end() &&
                cached->second.content_hash == hash &&
                cached->second.size_bytes == plain.size() &&
                self->cluster_->store().contains(
                    self->options_.bucket,
                    spark::SparkContext::input_key(staged))) {
              ++self->cache_stats_.hits;
              self->cache_stats_.bytes_skipped += plain.size();
              gate->release();
              co_return;
            }
            ++self->cache_stats_.misses;
            self->data_cache_[staged] = CachedInput{hash, plain.size()};
          }
          // gzip on the laptop: real compression, charged on the host pool.
          auto framed = compress::encode_payload(self->options_.codec, plain,
                                                 self->options_.min_compress_size);
          if (!framed.ok()) {
            (*statuses)[v] = framed.status();
            gate->release();
            co_return;
          }
          double codec_seconds =
              plain.size() >= self->options_.min_compress_size
                  ? self->cluster_->profile().encode_seconds(*codec, plain.size())
                  : 0.0;
          co_await self->cluster_->host_pool().run(codec_seconds);
          report->host_codec_seconds += codec_seconds;
          report->uploaded_plain_bytes += plain.size();
          report->uploaded_wire_bytes += framed->size();

          // Transient-failure retry loop (kept inline: coroutine frames
          // owning callable parameters trip gcc-12 frame-teardown bugs).
          Status put = Status::ok();
          for (int attempt = 0; attempt <= self->options_.storage_retries;
               ++attempt) {
            if (attempt > 0) {
              co_await engine.sleep(self->options_.retry_backoff_seconds *
                                    attempt);
            }
            put = co_await self->cluster_->store().put(
                cloud::Cluster::host_node(), self->options_.bucket,
                spark::SparkContext::input_key(staged),
                ByteBuffer(framed->view()));
            if (put.is_ok() || put.code() != StatusCode::kUnavailable) break;
          }
          if (!put.is_ok()) {
            (*statuses)[v] =
                put.with_context("uploading '" + var->name + "'");
          }
          gate->release();
        }(this, &var, names[v], codec, gate, &report, statuses.get(), v)));
  }
  co_await sim::all(std::move(parts));
  for (const Status& status : *statuses) {
    if (!status.is_ok()) co_return status;
  }
  co_return Status::ok();
}

sim::Co<Status> CloudPlugin::download_outputs(
    const TargetRegion& region, const std::vector<std::string>& names,
    OffloadReport& report) {
  auto& engine = cluster_->engine();
  auto statuses =
      std::make_shared<std::vector<Status>>(region.vars.size(), Status::ok());
  std::vector<sim::Completion> parts;
  for (size_t v = 0; v < region.vars.size(); ++v) {
    const MappedVar& var = region.vars[v];
    if (!var.maps_from()) continue;
    parts.push_back(engine.spawn(
        [](CloudPlugin* self, const MappedVar* var, std::string staged,
           OffloadReport* report, std::vector<Status>* statuses,
           size_t v) -> sim::Co<void> {
          auto& engine = self->cluster_->engine();
          ByteBuffer framed;
          Status got = Status::ok();
          for (int attempt = 0; attempt <= self->options_.storage_retries;
               ++attempt) {
            if (attempt > 0) {
              co_await engine.sleep(self->options_.retry_backoff_seconds *
                                    attempt);
            }
            auto result = co_await self->cluster_->store().get(
                cloud::Cluster::host_node(), self->options_.bucket,
                spark::SparkContext::output_key(staged));
            if (result.ok()) {
              framed = std::move(*result);
              got = Status::ok();
              break;
            }
            got = result.status();
            if (got.code() != StatusCode::kUnavailable) break;
          }
          if (!got.is_ok()) {
            (*statuses)[v] = got.with_context("downloading '" + var->name + "'");
            co_return;
          }
          auto plain = compress::decode_payload(framed.view());
          if (!plain.ok()) {
            (*statuses)[v] = plain.status();
            co_return;
          }
          if (plain->size() != var->size_bytes) {
            (*statuses)[v] = data_loss(str_format(
                "output '%s': got %zu bytes, expected %llu", var->name.c_str(),
                plain->size(),
                static_cast<unsigned long long>(var->size_bytes)));
            co_return;
          }
          auto codec_name = compress::payload_codec(framed.view());
          double codec_seconds = 0;
          if (codec_name.ok()) {
            auto codec = compress::find_codec(*codec_name);
            if (codec.ok()) {
              codec_seconds = self->cluster_->profile().decode_seconds(
                  **codec, plain->size());
            }
          }
          co_await self->cluster_->host_pool().run(codec_seconds);
          report->host_codec_seconds += codec_seconds;
          report->downloaded_plain_bytes += plain->size();
          report->downloaded_wire_bytes += framed.size();
          std::memcpy(var->host_ptr, plain->data(), plain->size());
        }(this, &var, names[v], &report, statuses.get(), v)));
  }
  co_await sim::all(std::move(parts));
  for (const Status& status : *statuses) {
    if (!status.is_ok()) co_return status;
  }
  co_return Status::ok();
}

sim::Co<Status> CloudPlugin::cleanup_objects(
    const TargetRegion& region, const std::vector<std::string>& names) {
  std::vector<sim::Completion> parts;
  auto& engine = cluster_->engine();
  // Deletions are best-effort (idempotent in S3); drop their statuses.
  auto drop = [](sim::Co<Status> op) -> sim::Co<void> {
    (void)co_await std::move(op);
  };
  for (size_t v = 0; v < region.vars.size(); ++v) {
    const MappedVar& var = region.vars[v];
    if (var.maps_to() && !options_.cache_data) {
      parts.push_back(engine.spawn(drop(cluster_->store().remove(
          cloud::Cluster::host_node(), options_.bucket,
          spark::SparkContext::input_key(names[v])))));
    }
    if (var.maps_from()) {
      parts.push_back(engine.spawn(drop(cluster_->store().remove(
          cloud::Cluster::host_node(), options_.bucket,
          spark::SparkContext::output_key(names[v])))));
    }
  }
  co_await sim::all(std::move(parts));
  co_return Status::ok();
}

sim::Co<Result<OffloadReport>> CloudPlugin::run_region(
    const TargetRegion& region) {
  auto& engine = cluster_->engine();
  OffloadReport report;
  report.device_name = name_;
  double start = engine.now();
  double cost_start = cluster_->cost().accrued_usd();

  if (options_.stream_spark_logs) {
    log_.info("offloading region '%s' to %s", region.name.c_str(),
              name_.c_str());
  }

  // On-the-fly EC2 start (§III-A): boot, billed from here.
  if (!cluster_->running()) {
    if (!cluster_->spec().on_the_fly) {
      co_return unavailable("cluster stopped and on-the-fly mode disabled");
    }
    double boot_start = engine.now();
    OC_CO_RETURN_IF_ERROR(co_await cluster_->ensure_running());
    report.boot_seconds = engine.now() - boot_start;
  }

  if (!cluster_->store().bucket_exists(options_.bucket)) {
    Status created = cluster_->store().create_bucket(options_.bucket);
    if (!created.is_ok() && created.code() != StatusCode::kAlreadyExists) {
      co_return created;
    }
  }

  std::vector<std::string> names = staged_names(region);

  // Fig. 1 step 2: inputs to cloud storage (parallel transfer threads).
  double upload_start = engine.now();
  OC_CO_RETURN_IF_ERROR(co_await upload_inputs(region, names, report));
  report.upload_seconds = engine.now() - upload_start;

  // Fig. 1 step 3: submit the Spark job over SSH and block.
  double submit_start = engine.now();
  OC_CO_RETURN_IF_ERROR(co_await cluster_->ssh_submit_roundtrip());
  report.submit_seconds = engine.now() - submit_start;

  spark::JobSpec job;
  job.name = region.name;
  job.bucket = options_.bucket;
  job.storage_codec = options_.codec;
  job.storage_min_compress = options_.min_compress_size;
  for (size_t v = 0; v < region.vars.size(); ++v) {
    const MappedVar& var = region.vars[v];
    job.vars.push_back(
        {names[v], var.size_bytes, var.maps_to(), var.maps_from()});
  }
  job.loops = region.loops;
  OC_CO_ASSIGN_OR_RETURN(report.job, co_await context_.run_job(std::move(job)));

  // Fig. 1 step 8: results back to the host.
  double download_start = engine.now();
  OC_CO_RETURN_IF_ERROR(co_await download_outputs(region, names, report));
  report.download_seconds = engine.now() - download_start;

  if (options_.cleanup) {
    double cleanup_start = engine.now();
    OC_CO_RETURN_IF_ERROR(co_await cleanup_objects(region, names));
    report.cleanup_seconds = engine.now() - cleanup_start;
  }

  // On-the-fly: stop billing as soon as the region is done.
  if (cluster_->spec().on_the_fly) {
    OC_CO_RETURN_IF_ERROR(co_await cluster_->shutdown());
  }

  report.total_seconds = engine.now() - start;
  report.cost_usd = cluster_->cost().accrued_usd() - cost_start;
  if (options_.stream_spark_logs) {
    log_.info("region '%s' done in %s ($%.4f)", region.name.c_str(),
              format_duration(report.total_seconds).c_str(), report.cost_usd);
  }
  co_return report;
}

}  // namespace ompcloud::omptarget
