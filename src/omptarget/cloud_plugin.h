// Cloud offloading plugin — the paper's core contribution (§III-A).
//
// Workflow per offloaded region (paper Fig. 1):
//   1. read the configuration file (credentials, Spark driver address,
//      storage address, compression knobs) — `CloudPluginOptions` +
//      `ClusterSpec`/`SparkConf`;
//   2. optionally start EC2 instances on the fly (billing metered);
//   3. compress each map(to:) buffer (gzip above the minimal compression
//      size) and upload it on its own transfer thread to S3/HDFS;
//   4. submit the Spark job over SSH and block until it finishes;
//   5. download the map(from:) outputs, decompress, and write them into the
//      host buffers;
//   6. clean up the staged objects and (on-the-fly mode) stop the
//      instances.
//
// Buffers above `chunk_size` travel as *chunked* objects: fixed-size blocks
// staged as sibling storage objects plus an index manifest (written last).
// Uploading is a streaming pipeline — block k+1 compresses on the host pool
// while block k is on the wire — and with `cache_data` on, only blocks whose
// content hash changed since the previous offload are re-uploaded.
//
// Every step advances the virtual clock through the simulated substrate and
// every byte is really moved, so the OffloadReport decomposition is an
// honest measurement, not an estimate.
#pragma once

#include <map>
#include <optional>
#include <set>

#include "cloud/cluster.h"
#include "compress/payload.h"
#include "omptarget/device.h"
#include "spark/context.h"
#include "support/config.h"
#include "support/log.h"
#include "support/random.h"
#include "support/retry_budget.h"
#include "tools/tools.h"

namespace ompcloud::omptarget {

/// The `[offload]` section of the device configuration file.
struct CloudPluginOptions {
  std::string bucket = "ompcloud";
  std::string codec = "gzlite";
  /// Buffers smaller than this are uploaded uncompressed (§III-A).
  uint64_t min_compress_size = 4096;
  /// Block size for chunked staging: buffers strictly larger than this are
  /// split into `chunk_size` blocks that stream through the transfer
  /// pipeline and delta-cache independently. 0 disables chunking.
  uint64_t chunk_size = 4ull << 20;
  /// Overlap block compression with the wire (double-buffered pipeline).
  /// Off = strictly serial per buffer: compress block k, send block k,
  /// then start block k+1 (the ablation baseline).
  bool overlap_transfers = true;
  /// Concurrent transfer threads; 0 = one per offloaded buffer (the paper's
  /// default: "a new thread for transmitting each offloaded data").
  int transfer_threads = 0;
  /// Transient-storage-failure retries per object.
  int storage_retries = 3;
  /// Base backoff between retries. Attempt N sleeps a decorrelated-jitter
  /// draw from U(base, 3 * previous-sleep), capped below — exponential on
  /// average, desynchronized across concurrent transfers.
  double retry_backoff_seconds = 0.5;
  double retry_backoff_cap_seconds = 10.0;
  /// Per storage-operation deadline (0 = none): a put/get attempt that is
  /// still in flight after this long is abandoned (it keeps running
  /// unobserved in the simulation, like a dropped TCP connection) and the
  /// attempt counts as DEADLINE_EXCEEDED, which is retryable.
  double op_deadline_seconds = 0;
  /// Whole-offload deadline (0 = none), checked at phase boundaries and
  /// before every job resubmission. A miss aborts the region with
  /// DEADLINE_EXCEEDED so the device manager can fall back to the host.
  double offload_deadline_seconds = 0;
  /// Spark job resubmissions after a driver crash / mid-job outage. Staged
  /// inputs are reused (delta cache), so only the job re-runs.
  int job_retries = 1;
  /// End-to-end integrity: seal single-frame payloads with a plain-bytes
  /// checksum, verify objects after PUT with a HEAD round trip (catches
  /// torn writes), and re-download on checksum mismatch instead of
  /// surfacing silent corruption. Defaults to on exactly when `[fault]
  /// enabled` is set, so the fault-free path pays nothing.
  bool verify_transfers = false;
  /// Delete staged objects after the region completes.
  bool cleanup = true;
  /// Mirror Spark log messages to the host stdout (§III-A).
  bool stream_spark_logs = false;
  /// Data caching — the paper's stated future work ("we plan to implement
  /// data caching to limit the cost of host-target communications"): keep
  /// staged input objects in cloud storage across offloads and skip the
  /// upload when the host bytes are unchanged (content-hash check; per
  /// block for chunked objects, so a small mutation re-uploads only the
  /// dirty blocks). Implies keeping input objects past cleanup.
  bool cache_data = false;
  /// `[overload]` retry budget: every storage retry / job resubmission
  /// withdraws one token from the device (and, when known, tenant) bucket;
  /// successes earn `ratio` tokens back. An empty bucket fails the op fast
  /// with its last real status instead of amplifying a correlated outage
  /// into a retry storm. Disabled by default — the retry loops then behave
  /// exactly as before.
  RetryBudgetOptions retry_budget;
  /// `[overload]` hedged transfers: when a put/get attempt is still in
  /// flight after the rolling `hedge_quantile` latency of recent same-kind
  /// ops, launch a duplicate and take whichever finishes first (the loser
  /// keeps running unobserved, like an abandoned TCP connection). Extends
  /// Spark's task speculation down to the transfer path. Needs
  /// `hedge_min_samples` completed ops before it arms.
  bool hedge = false;
  double hedge_quantile = 0.95;
  int hedge_min_samples = 16;

  static Result<CloudPluginOptions> from_config(const Config& config);
};

class CloudPlugin final : public Plugin {
 public:
  /// Borrows an externally owned cluster (benches inspect it afterwards).
  CloudPlugin(cloud::Cluster& cluster, spark::SparkConf conf,
              CloudPluginOptions options);

  /// Builds cluster + Spark context + options from one configuration file —
  /// the paper's "configure the credentials of a Spark cluster previously
  /// deployed" step. The plugin owns the cluster.
  static Result<std::unique_ptr<CloudPlugin>> from_config(sim::Engine& engine,
                                                          const Config& config);

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] bool is_available() const override;

  [[nodiscard]] sim::Co<Result<OffloadReport>> run_region(
      const TargetRegion& region,
      trace::SpanId parent_span = trace::kNoSpan) override;

  /// Deferred-download completion (data_env.h): fetches the resident object
  /// at `object_key` into `var.host_ptr` through the regular download
  /// pipeline (retries, corruption re-fetch, chunked streaming).
  [[nodiscard]] sim::Co<Result<MaterializeStats>> materialize(
      const MappedVar& var, const std::string& object_key,
      trace::SpanId parent = trace::kNoSpan) override;

  /// Deletes the object at `object_key` plus any sibling `.part` block
  /// objects (best-effort, like cleanup).
  [[nodiscard]] sim::Co<Status> discard_object(
      const std::string& object_key,
      trace::SpanId parent = trace::kNoSpan) override;

  /// Applies any `[trace]` config read by `from_config`, then propagates
  /// the tracer into the cluster (and through it the object store) so the
  /// whole substrate records into the manager's span tree.
  void attach_tracer(std::shared_ptr<trace::Tracer> tracer) override;

  [[nodiscard]] cloud::Cluster& cluster() { return *cluster_; }
  [[nodiscard]] spark::SparkContext& spark_context() { return context_; }
  [[nodiscard]] const CloudPluginOptions& options() const { return options_; }

  /// Cache statistics (diagnostics + the caching bench). Whole-buffer
  /// hits/misses count staged variables; the block counters break a chunked
  /// buffer down further (a single-frame buffer counts as one block).
  /// Backed by the tracer's `cache.*` metric counters, so this is a
  /// snapshot view, not live state.
  struct CacheStats {
    uint64_t hits = 0;    ///< buffers skipped entirely (every block clean)
    uint64_t misses = 0;  ///< buffers that uploaded at least one block
    uint64_t block_hits = 0;    ///< clean blocks skipped
    uint64_t block_misses = 0;  ///< blocks never staged before (cold)
    uint64_t block_dirty = 0;   ///< staged blocks whose content changed
    uint64_t bytes_skipped = 0;  ///< plain bytes whose upload was avoided
    uint64_t bytes_uploaded = 0; ///< plain bytes actually (re)uploaded

    /// One-line JSON object (the `"cache"` record of the bench output).
    [[nodiscard]] std::string to_json() const;
  };
  [[nodiscard]] CacheStats cache_stats() const;

  /// Drops every cache entry (e.g. when the staging bucket was wiped).
  void clear_data_cache() { data_cache_.clear(); }

 private:
  /// One staged-input record: per-block digests of the object currently in
  /// the bucket (one entry, chunk_size 0, for single-frame objects).
  struct CachedInput {
    uint64_t chunk_size = 0;
    uint64_t size_bytes = 0;
    std::vector<compress::BlockDigest> blocks;
  };
  /// Staged object keys are namespaced per region to keep concurrent
  /// `nowait` offloads from trampling each other: `<region>/<var>` when this
  /// invocation holds the region's cache claim (stable across invocations,
  /// so hits are possible) or `<region>#<seq>/<var>` otherwise (unique per
  /// invocation).
  std::vector<std::string> staged_names(const TargetRegion& region,
                                        bool stable_prefix);

  /// True when `size` bytes are staged as blocks rather than one frame.
  [[nodiscard]] bool use_chunking(uint64_t size) const {
    return options_.chunk_size > 0 && size > options_.chunk_size;
  }

  /// The tracer every helper records into (the cluster's — identical to the
  /// manager's once `attach_tracer` ran).
  [[nodiscard]] trace::Tracer& tracer() const { return cluster_->tracer(); }

  /// One put/get attempt under the per-op deadline (when configured): the
  /// operation races a timer; if the timer wins, the abandoned op keeps
  /// running unobserved and the attempt reports DEADLINE_EXCEEDED.
  sim::Co<Status> timed_put(std::string key, ByteBuffer frame,
                            trace::SpanId parent);
  sim::Co<Result<ByteBuffer>> timed_get(std::string key, trace::SpanId parent);

  /// Decorrelated-jitter backoff before retry `attempt` (1-based), wrapped
  /// in a `recovery` span under `parent` together with nothing else — the
  /// caller keeps the span open across the re-attempt so "time lost to
  /// recovery" covers backoff + redo. `prev_sleep` carries the jitter state.
  sim::Co<void> backoff_sleep(double* prev_sleep);

  /// The budget scopes a retry on this plugin charges: always the device
  /// bucket, plus the tenant bucket when the caller knows one.
  [[nodiscard]] std::vector<std::string> budget_scopes(
      std::string_view tenant = {}) const;
  /// True when the budget admits one retry (withdrawing it); on refusal
  /// emits the `retry_budget.exhausted` counter and a `retry_budget` span
  /// under `parent` so the analyzer can attribute the fail-fast.
  bool admit_retry(std::string_view op, std::string_view tenant,
                   trace::SpanId parent);
  /// Deposits a success into the budget buckets (no-op when disabled).
  void note_success(std::string_view tenant = {});
  /// A hedge is a speculative retry, so it draws from the same budget:
  /// a stale trigger quantile after an incident would otherwise duplicate
  /// every transfer and hold the system in the overloaded state it is
  /// trying to escape. Refusals emit `hedge.suppressed`.
  bool admit_hedge();

  /// Hedged transfer support: rolling per-op latency windows feed a
  /// quantile trigger; `hedge_delay` < 0 means "not armed yet".
  void record_sample(std::vector<double>* window, size_t* next,
                     double seconds);
  [[nodiscard]] double hedge_delay(const std::vector<double>& window) const;
  /// One put/get attempt with hedging layered over the per-op deadline:
  /// the primary op races a (sleep p95, duplicate op) shadow; first result
  /// wins and the loser keeps running unobserved. Falls through to
  /// timed_put/timed_get verbatim while hedging is off or unarmed.
  sim::Co<Status> hedged_put(std::string key, ByteBuffer frame,
                             trace::SpanId parent);
  sim::Co<Result<ByteBuffer>> hedged_get(std::string key,
                                         trace::SpanId parent);

  /// Emits a fault-accounting tool event (retry / corruption / deadline /
  /// resubmit) through the tracer's tool registry.
  void note_fault(tools::FaultEventInfo::Kind kind, std::string_view point,
                  std::string_view detail);

  /// Storage put/get with the retry loop: transient statuses
  /// (`is_retryable`) retry with jittered backoff; everything else fails
  /// fast. `put_with_retry` additionally treats kDataLoss as retryable —
  /// it holds the frame, so a torn write (caught by the post-upload HEAD
  /// verification when `verify_transfers` is on) is repaired by
  /// re-uploading. `parent` adopts the resulting `store.*` spans (via the
  /// tracer's ambient slot).
  sim::Co<Status> put_with_retry(std::string key, ByteBuffer frame,
                                 trace::SpanId parent);
  sim::Co<Result<ByteBuffer>> get_with_retry(std::string key,
                                             trace::SpanId parent);

  /// Stages every map(to:) buffer. Transfer seconds/bytes are recorded as
  /// spans under `phase` (the report derives its fields from them).
  /// `resident_in[v]` marks variables whose current version is already
  /// cloud-resident (data_env.h): their upload is skipped outright — no
  /// hashing, no wire traffic — and a `resident/<var>` span records the
  /// saved bytes.
  sim::Co<Status> upload_inputs(const TargetRegion& region,
                                const std::vector<std::string>& names,
                                const std::vector<char>& resident_in,
                                bool cache_eligible, trace::SpanId phase);
  /// Uploads one buffer as a single frame (legacy path, with whole-buffer
  /// delta caching).
  sim::Co<Status> upload_single(const MappedVar* var, std::string staged,
                                DataEnvironment* env, bool cache_eligible,
                                std::shared_ptr<sim::Semaphore> gate,
                                trace::SpanId phase);
  /// Uploads one buffer as a block stream: compress block k+1 on the host
  /// pool while block k is on the wire (bounded by the window semaphore and
  /// the transfer gate), skipping blocks the delta cache proves unchanged.
  /// The manifest is written last so readers never observe a partially
  /// staged object.
  sim::Co<Status> upload_chunked(const MappedVar* var, std::string staged,
                                 DataEnvironment* env, bool cache_eligible,
                                 std::shared_ptr<sim::Semaphore> gate,
                                 trace::SpanId phase);
  /// One in-flight block of the upload pipeline. Its `block[k].put` span
  /// covers exactly the gate-held wire time.
  sim::Co<void> put_block(std::string key, ByteBuffer frame,
                          std::shared_ptr<sim::Semaphore> gate,
                          std::shared_ptr<sim::Semaphore> window,
                          std::shared_ptr<std::vector<Status>> statuses,
                          size_t slot, trace::SpanId parent);

  /// Downloads every map(from:) output. Variables registered in the
  /// region's data environment are *deferred* instead: the output object
  /// stays in the bucket, the environment records it as the buffer's latest
  /// version, and a `resident/<var>` span records the deferred bytes.
  sim::Co<Status> download_outputs(const TargetRegion& region,
                                   const std::vector<std::string>& names,
                                   trace::SpanId phase);
  /// Byte totals accumulated across the concurrent block fetches of one
  /// buffer, folded into the buffer's data-op callback at the end.
  struct DownloadTally {
    uint64_t plain_bytes = 0;
    uint64_t wire_bytes = 0;
  };
  /// Downloads one object at `base_key` into `var->host_ptr` (single frame,
  /// inline chunked frame, or a manifest whose blocks stream back through
  /// the mirrored pipeline). `totals`, when given, receives the buffer's
  /// byte tally (the materialize path reports it upward).
  sim::Co<Status> download_object(const MappedVar* var, std::string base_key,
                                  std::shared_ptr<sim::Semaphore> gate,
                                  trace::SpanId phase,
                                  DownloadTally* totals = nullptr);
  /// One in-flight block of the download pipeline: fetch through the gate,
  /// then decode/verify/copy while the next block is on the wire.
  sim::Co<void> fetch_block(std::string key, const MappedVar* var,
                            compress::ChunkedBlock block,
                            std::shared_ptr<sim::Semaphore> gate,
                            std::shared_ptr<sim::Semaphore> window,
                            std::shared_ptr<std::vector<Status>> statuses,
                            size_t slot, std::shared_ptr<DownloadTally> tally,
                            trace::SpanId parent);

  sim::Co<Status> cleanup_objects(const TargetRegion& region,
                                  const std::vector<std::string>& names,
                                  bool cache_eligible, trace::SpanId phase);

  std::unique_ptr<cloud::Cluster> owned_cluster_;  ///< set by from_config
  cloud::Cluster* cluster_;
  spark::SparkContext context_;
  CloudPluginOptions options_;
  /// `[trace]` options read by `from_config`; applied to whatever tracer
  /// `attach_tracer` delivers (and to the owned cluster's own tracer).
  std::optional<trace::TraceOptions> configured_trace_;
  std::string name_;
  std::map<std::string, CachedInput> data_cache_;  ///< key: staged name
  /// Regions with an offload in flight under the stable (cache-eligible)
  /// prefix. A concurrent `nowait` offload of the same region falls back to
  /// a unique prefix instead of trampling the staged objects.
  std::set<std::string> active_regions_;
  uint64_t next_invocation_ = 0;
  /// Jitter source for retry backoff. Seeded lazily on the first draw from
  /// the fault-plan seed XOR this plugin's device id, so multi-device chaos
  /// runs get independent, reproducible jitter streams — and consulted only
  /// when a retry actually happens, so a fault-free run draws nothing and
  /// stays bit-identical.
  Xoshiro256& retry_rng();
  Xoshiro256 retry_rng_{0x0cfa17eu};
  bool retry_rng_seeded_ = false;
  /// `[overload]` state: the retry-budget buckets plus the rolling latency
  /// windows (64-sample rings) behind the hedge trigger. All untouched
  /// while the `[overload]` section is disabled.
  RetryBudget retry_budget_;
  std::vector<double> put_samples_;
  std::vector<double> get_samples_;
  size_t put_samples_next_ = 0;
  size_t get_samples_next_ = 0;
  Logger log_{"omptarget.cloud"};
};

}  // namespace ompcloud::omptarget
