// Cloud offloading plugin — the paper's core contribution (§III-A).
//
// Workflow per offloaded region (paper Fig. 1):
//   1. read the configuration file (credentials, Spark driver address,
//      storage address, compression knobs) — `CloudPluginOptions` +
//      `ClusterSpec`/`SparkConf`;
//   2. optionally start EC2 instances on the fly (billing metered);
//   3. compress each map(to:) buffer (gzip above the minimal compression
//      size) and upload it on its own transfer thread to S3/HDFS;
//   4. submit the Spark job over SSH and block until it finishes;
//   5. download the map(from:) outputs, decompress, and write them into the
//      host buffers;
//   6. clean up the staged objects and (on-the-fly mode) stop the
//      instances.
//
// Every step advances the virtual clock through the simulated substrate and
// every byte is really moved, so the OffloadReport decomposition is an
// honest measurement, not an estimate.
#pragma once

#include <map>
#include <optional>

#include "cloud/cluster.h"
#include "omptarget/device.h"
#include "spark/context.h"
#include "support/config.h"
#include "support/log.h"

namespace ompcloud::omptarget {

/// The `[offload]` section of the device configuration file.
struct CloudPluginOptions {
  std::string bucket = "ompcloud";
  std::string codec = "gzlite";
  /// Buffers smaller than this are uploaded uncompressed (§III-A).
  uint64_t min_compress_size = 4096;
  /// Concurrent transfer threads; 0 = one per offloaded buffer (the paper's
  /// default: "a new thread for transmitting each offloaded data").
  int transfer_threads = 0;
  /// Transient-storage-failure retries per object.
  int storage_retries = 3;
  double retry_backoff_seconds = 0.5;
  /// Delete staged objects after the region completes.
  bool cleanup = true;
  /// Mirror Spark log messages to the host stdout (§III-A).
  bool stream_spark_logs = false;
  /// Data caching — the paper's stated future work ("we plan to implement
  /// data caching to limit the cost of host-target communications"): keep
  /// staged input objects in cloud storage across offloads and skip the
  /// upload when the host bytes are unchanged (content-hash check).
  /// Implies keeping input objects past cleanup.
  bool cache_data = false;

  static Result<CloudPluginOptions> from_config(const Config& config);
};

class CloudPlugin final : public Plugin {
 public:
  /// Borrows an externally owned cluster (benches inspect it afterwards).
  CloudPlugin(cloud::Cluster& cluster, spark::SparkConf conf,
              CloudPluginOptions options);

  /// Builds cluster + Spark context + options from one configuration file —
  /// the paper's "configure the credentials of a Spark cluster previously
  /// deployed" step. The plugin owns the cluster.
  static Result<std::unique_ptr<CloudPlugin>> from_config(sim::Engine& engine,
                                                          const Config& config);

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] bool is_available() const override;

  [[nodiscard]] sim::Co<Result<OffloadReport>> run_region(
      const TargetRegion& region) override;

  [[nodiscard]] cloud::Cluster& cluster() { return *cluster_; }
  [[nodiscard]] spark::SparkContext& spark_context() { return context_; }
  [[nodiscard]] const CloudPluginOptions& options() const { return options_; }

  /// Cache statistics (diagnostics + the caching bench).
  struct CacheStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t bytes_skipped = 0;  ///< plain bytes whose upload was avoided
  };
  [[nodiscard]] const CacheStats& cache_stats() const { return cache_stats_; }

  /// Drops every cache entry (e.g. when the staging bucket was wiped).
  void clear_data_cache() { data_cache_.clear(); }

 private:
  /// One staged-input record: object key currently in the bucket plus the
  /// content hash of the host bytes it was built from.
  struct CachedInput {
    uint64_t content_hash = 0;
    uint64_t size_bytes = 0;
  };
  /// Staged object keys are namespaced per region to keep concurrent
  /// `nowait` offloads from trampling each other: `<region>/<var>` when
  /// caching (stable across invocations, so hits are possible) or
  /// `<region>#<seq>/<var>` otherwise (unique per invocation).
  std::vector<std::string> staged_names(const TargetRegion& region);

  sim::Co<Status> upload_inputs(const TargetRegion& region,
                                const std::vector<std::string>& names,
                                OffloadReport& report);
  sim::Co<Status> download_outputs(const TargetRegion& region,
                                   const std::vector<std::string>& names,
                                   OffloadReport& report);
  sim::Co<Status> cleanup_objects(const TargetRegion& region,
                                  const std::vector<std::string>& names);

  std::unique_ptr<cloud::Cluster> owned_cluster_;  ///< set by from_config
  cloud::Cluster* cluster_;
  spark::SparkContext context_;
  CloudPluginOptions options_;
  std::string name_;
  std::map<std::string, CachedInput> data_cache_;  ///< key: staged name
  CacheStats cache_stats_;
  uint64_t next_invocation_ = 0;
  Logger log_{"omptarget.cloud"};
};

}  // namespace ompcloud::omptarget
