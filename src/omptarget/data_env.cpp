#include "omptarget/data_env.h"

#include <utility>

namespace ompcloud::omptarget {

// ---------------------------------------------------------------------------
// ResidencyTable

ResidencyTable::Buffer* ResidencyTable::find(int device_id,
                                             const void* host_ptr) {
  auto it = buffers_.find({device_id, host_ptr});
  return it == buffers_.end() ? nullptr : &it->second;
}

const ResidencyTable::Buffer* ResidencyTable::find(
    int device_id, const void* host_ptr) const {
  auto it = buffers_.find({device_id, host_ptr});
  return it == buffers_.end() ? nullptr : &it->second;
}

Result<ResidencyTable::Buffer*> ResidencyTable::pin(int device_id,
                                                    std::string name,
                                                    void* host_ptr,
                                                    uint64_t size_bytes) {
  if (host_ptr == nullptr) {
    return invalid_argument("cannot pin a null host pointer ('" + name + "')");
  }
  if (size_bytes == 0) {
    return invalid_argument("cannot pin a zero-byte buffer ('" + name + "')");
  }
  auto [it, inserted] = buffers_.try_emplace({device_id, host_ptr});
  Buffer& buffer = it->second;
  if (inserted) {
    buffer.name = std::move(name);
    buffer.host_ptr = host_ptr;
    buffer.size_bytes = size_bytes;
    buffer.device_id = device_id;
  } else if (buffer.size_bytes != size_bytes) {
    return invalid_argument("buffer '" + buffer.name + "' is already pinned with " +
                            std::to_string(buffer.size_bytes) +
                            " bytes; remapping with " +
                            std::to_string(size_bytes) + " is not supported");
  }
  ++buffer.refcount;
  return &buffer;
}

bool ResidencyTable::unpin(int device_id, const void* host_ptr) {
  auto it = buffers_.find({device_id, host_ptr});
  if (it == buffers_.end()) return false;
  if (--it->second.refcount > 0) return false;
  buffers_.erase(it);
  return true;
}

bool ResidencyTable::is_resident_key(int device_id,
                                     std::string_view key) const {
  for (const auto& [id, buffer] : buffers_) {
    if (id.first != device_id) continue;
    if (!buffer.cloud_valid || buffer.cloud_key.empty()) continue;
    if (key == buffer.cloud_key) return true;
    // Chunked objects stage sibling blocks as `<key>.partK`.
    if (key.size() > buffer.cloud_key.size() &&
        key.substr(0, buffer.cloud_key.size()) == buffer.cloud_key &&
        key.substr(buffer.cloud_key.size()).substr(0, 5) == ".part") {
      return true;
    }
  }
  return false;
}

void ResidencyTable::add_stale_key(int device_id, std::string key) {
  if (key.empty()) return;
  stale_[device_id].push_back(std::move(key));
}

std::vector<std::string> ResidencyTable::take_stale_keys(int device_id) {
  auto it = stale_.find(device_id);
  if (it == stale_.end()) return {};
  std::vector<std::string> keys = std::move(it->second);
  stale_.erase(it);
  return keys;
}

// ---------------------------------------------------------------------------
// DataEnvironment

DataEnvironment::DataEnvironment(DeviceManager& manager, int device_id)
    : manager_(&manager), device_id_(device_id) {}

ResidencyTable& DataEnvironment::table() const {
  return manager_->residency();
}

trace::Tracer& DataEnvironment::tracer() const { return manager_->tracer(); }

Status DataEnvironment::map(std::string name, void* host_ptr,
                            uint64_t size_bytes, MapType intent) {
  if (entered_) {
    return failed_precondition(
        "data environment mappings must be declared before enter()");
  }
  if (host_ptr == nullptr) {
    return invalid_argument("mapping '" + name + "' has a null host pointer");
  }
  for (const Mapping& existing : mappings_) {
    if (existing.host_ptr == host_ptr) {
      return invalid_argument("host pointer of '" + name +
                              "' is already mapped as '" + existing.name + "'");
    }
  }
  mappings_.push_back(
      Mapping{std::move(name), host_ptr, size_bytes, intent});
  return Status::ok();
}

Status DataEnvironment::enter() {
  if (entered_) {
    return failed_precondition("data environment is already entered");
  }
  if (mappings_.empty()) {
    return failed_precondition("data environment has no mappings");
  }
  for (size_t i = 0; i < mappings_.size(); ++i) {
    const Mapping& m = mappings_[i];
    auto pinned = table().pin(device_id_, m.name, m.host_ptr, m.size_bytes);
    if (!pinned.ok()) {
      for (size_t k = 0; k < i; ++k) {
        (void)table().unpin(device_id_, mappings_[k].host_ptr);
      }
      return pinned.status().with_context("data environment enter");
    }
  }
  entered_ = true;
  return Status::ok();
}

sim::Co<Result<DataEnvReport>> DataEnvironment::exit() {
  if (!entered_) {
    co_return failed_precondition("data environment is not entered");
  }
  Plugin& device = manager_->device(device_id_);
  DataEnvReport report;
  double start = manager_->engine().now();
  auto span = tracer().span("data_env.exit");
  span.tag("device", std::string(device.name()));

  for (const Mapping& m : mappings_) {
    ResidencyTable::Buffer* buffer = find(m.host_ptr);
    if (buffer == nullptr) continue;  // unpinned by a failed enter, be lenient
    bool last_reference = buffer->refcount == 1;
    bool maps_from = m.intent == MapType::kFrom || m.intent == MapType::kToFrom;
    if (last_reference && maps_from && !buffer->host_valid &&
        buffer->cloud_valid) {
      MappedVar var{m.name, m.host_ptr, m.size_bytes, MapType::kFrom};
      auto moved = co_await device.materialize(var, buffer->cloud_key,
                                               span.id());
      if (!moved.ok()) {
        co_return moved.status().with_context("data environment exit: '" +
                                              m.name + "'");
      }
      buffer->host_valid = true;
      report.downloaded_plain_bytes += moved->plain_bytes;
      report.downloaded_wire_bytes += moved->wire_bytes;
      ++report.materialized;
    }
    if (last_reference && buffer->cloud_valid && !buffer->cloud_key.empty()) {
      OC_CO_RETURN_IF_ERROR(
          co_await device.discard_object(buffer->cloud_key, span.id()));
      ++report.released_objects;
    }
    (void)table().unpin(device_id_, m.host_ptr);
  }

  // Superseded object versions whose deletion was deferred mid-chain.
  for (const std::string& key : table().take_stale_keys(device_id_)) {
    if (table().is_resident_key(device_id_, key)) continue;  // key was reused
    OC_CO_RETURN_IF_ERROR(co_await device.discard_object(key, span.id()));
    ++report.released_objects;
  }

  replay_log_.clear();
  entered_ = false;
  report.seconds = manager_->engine().now() - start;
  span.add("materialized", report.materialized);
  span.add("released_objects", report.released_objects);
  span.add("downloaded_plain_bytes",
           static_cast<double>(report.downloaded_plain_bytes));
  co_return report;
}

sim::Co<Result<MaterializeStats>> DataEnvironment::update_from(
    const void* host_ptr) {
  ResidencyTable::Buffer* buffer = find(host_ptr);
  if (buffer == nullptr) {
    co_return failed_precondition(
        "update_from: pointer is not mapped in this data environment");
  }
  if (buffer->host_valid) co_return MaterializeStats{};
  if (!buffer->cloud_valid) {
    co_return failed_precondition("update_from: buffer '" + buffer->name +
                                  "' has no valid copy on either side");
  }
  const Mapping* mapping = nullptr;
  for (const Mapping& m : mappings_) {
    if (m.host_ptr == host_ptr) mapping = &m;
  }
  if (mapping == nullptr) {
    co_return failed_precondition(
        "update_from: pointer is pinned but not mapped here");
  }
  auto span = tracer().span("data_env.update_from");
  span.tag("var", mapping->name);
  MappedVar var{mapping->name, mapping->host_ptr, mapping->size_bytes,
                MapType::kFrom};
  auto moved = co_await manager_->device(device_id_).materialize(
      var, buffer->cloud_key, span.id());
  if (!moved.ok()) {
    co_return moved.status().with_context("update_from '" + mapping->name +
                                          "'");
  }
  buffer->host_valid = true;
  span.add("plain_bytes", static_cast<double>(moved->plain_bytes));
  co_return *moved;
}

Status DataEnvironment::update_to(const void* host_ptr) {
  ResidencyTable::Buffer* buffer = find(host_ptr);
  if (buffer == nullptr) {
    return failed_precondition(
        "update_to: pointer is not mapped in this data environment");
  }
  // The host wrote the buffer: the host copy is truth and any cloud copy is
  // stale (its version no longer matches). The object itself is reclaimed
  // when the next staging supersedes it or at environment exit.
  ++buffer->version;
  buffer->host_valid = true;
  return Status::ok();
}

bool DataEnvironment::host_stale(const void* host_ptr) const {
  const ResidencyTable::Buffer* buffer = find(host_ptr);
  return buffer != nullptr && !buffer->host_valid;
}

ResidencyTable::Buffer* DataEnvironment::find(const void* host_ptr) {
  return table().find(device_id_, host_ptr);
}

const ResidencyTable::Buffer* DataEnvironment::find(
    const void* host_ptr) const {
  return table().find(device_id_, host_ptr);
}

void DataEnvironment::note_staged(const void* host_ptr, std::string key) {
  ResidencyTable::Buffer* buffer = find(host_ptr);
  if (buffer == nullptr) return;
  if (buffer->cloud_valid && !buffer->cloud_key.empty() &&
      buffer->cloud_key != key) {
    table().add_stale_key(device_id_, buffer->cloud_key);
  }
  buffer->cloud_valid = true;
  buffer->staged_version = buffer->version;
  buffer->cloud_key = std::move(key);
}

void DataEnvironment::note_output(const void* host_ptr, std::string key) {
  ResidencyTable::Buffer* buffer = find(host_ptr);
  if (buffer == nullptr) return;
  if (buffer->cloud_valid && !buffer->cloud_key.empty() &&
      buffer->cloud_key != key) {
    table().add_stale_key(device_id_, buffer->cloud_key);
  }
  ++buffer->version;  // the device produced a new version of the content
  buffer->staged_version = buffer->version;
  buffer->cloud_valid = true;
  buffer->host_valid = false;  // download deferred
  buffer->cloud_key = std::move(key);
}

bool DataEnvironment::is_resident_key(std::string_view key) const {
  return table().is_resident_key(device_id_, key);
}

std::vector<std::string> DataEnvironment::take_stale_keys() {
  return table().take_stale_keys(device_id_);
}

void DataEnvironment::on_device_success(const TargetRegion& region) {
  bool produces_resident_output = false;
  for (const MappedVar& var : region.vars) {
    if (var.maps_from() && find(var.host_ptr) != nullptr) {
      produces_resident_output = true;
      break;
    }
  }
  if (!produces_resident_output) return;
  TargetRegion logged = region;
  logged.env = nullptr;  // replays run host-side, outside the environment
  replay_log_.push_back(std::move(logged));
}

void DataEnvironment::note_host_run(const TargetRegion& region) {
  for (const MappedVar& var : region.vars) {
    if (!var.maps_from()) continue;
    ResidencyTable::Buffer* buffer = find(var.host_ptr);
    if (buffer == nullptr) continue;
    ++buffer->version;
    buffer->host_valid = true;
    if (buffer->cloud_valid) {
      table().add_stale_key(device_id_, buffer->cloud_key);
      buffer->cloud_valid = false;
      buffer->staged_version = 0;
      buffer->cloud_key.clear();
    }
  }
}

void DataEnvironment::emit_invalidation(
    const ResidencyTable::Buffer& buffer) {
  tools::FaultEventInfo info;
  info.kind = tools::FaultEventInfo::Kind::kResidencyInvalidated;
  info.point = buffer.name;
  info.detail = buffer.cloud_key;
  info.device_id = device_id_;
  info.time = tracer().now();
  tracer().tools().emit_fault_event(info);
}

sim::Co<Status> DataEnvironment::recover_on_host(trace::SpanId parent) {
  // Step 1: stop trusting the cloud. Every resident object may be
  // corrupt/unreachable; queue them for deletion and mark the host copies
  // as the (about to be recomputed) truth.
  for (const Mapping& m : mappings_) {
    ResidencyTable::Buffer* buffer = find(m.host_ptr);
    if (buffer == nullptr || !buffer->cloud_valid) continue;
    emit_invalidation(*buffer);
    table().add_stale_key(device_id_, buffer->cloud_key);
    buffer->cloud_valid = false;
    buffer->staged_version = 0;
    buffer->cloud_key.clear();
  }
  if (replay_log_.empty()) co_return Status::ok();

  // Step 2: recompute deferred outputs from host truth. Replaying the
  // logged producers in order restores every host buffer: the first logged
  // region's inputs are host-valid by construction (they were uploaded from
  // the host), and each replay makes the next one's inputs valid.
  auto span = tracer().span("residency.replay", parent);
  span.tag("regions", std::to_string(replay_log_.size()));
  Plugin& host = manager_->device(DeviceManager::host_device_id());
  for (const TargetRegion& logged : replay_log_) {
    auto rerun = co_await host.run_region(logged, span.id());
    if (!rerun.ok()) {
      co_return rerun.status().with_context("residency replay of '" +
                                            logged.name + "'");
    }
    for (const MappedVar& var : logged.vars) {
      if (!var.maps_from()) continue;
      if (ResidencyTable::Buffer* buffer = find(var.host_ptr)) {
        buffer->host_valid = true;
      }
    }
  }
  replay_log_.clear();
  co_return Status::ok();
}

}  // namespace ompcloud::omptarget
