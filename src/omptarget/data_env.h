// `target data`-style device data environments (the "data caching" future
// work of the paper, §V, generalized): buffers mapped into an environment
// stay *cloud-resident* across consecutive target regions instead of
// round-tripping through the host per region.
//
//   omptarget::DataEnvironment env(devices, cloud_id);
//   env.map("S", S.data(), bytes, MapType::kToFrom);
//   env.enter();                       // pin (staging stays lazy)
//   ... offload region 1 ... region N ...  // region.env = &env
//   auto report = co_await env.exit(); // copy-out + release
//
// While a buffer is pinned:
//   - an upload is *skipped* when the cloud copy is current (the plugin
//     checks `staged_version == version`), with zero hashing — the delta
//     cache is only consulted for genuinely dirty buffers;
//   - a download is *deferred*: the output object stays in the bucket and
//     the residency table records it as the buffer's latest version. The
//     next region consumes the object directly (`VarSpec::input_object`);
//     the host copy is materialized lazily on `update_from` or exit.
//
// Reference counts live in a per-DeviceManager `ResidencyTable` keyed by
// (device, host pointer), so nested environments and shared buffers follow
// OpenMP present-table semantics: copy-out and release happen when the last
// reference exits.
//
// Failure semantics (extends the PR-5 self-healing path): when a device
// attempt fails, `DataEnvironment::recover_on_host` invalidates every
// cloud-resident buffer (emitting `kResidencyInvalidated` tool events) and
// replays the logged producer regions on the host device so the host
// buffers become the source of truth again before the manager's fallback
// reruns the failing region locally.
//
// Host-side mutation of a pinned buffer between regions must be announced
// with `update_to` (the OpenMP `target update to` analogue); mutating the
// buffer silently while a stale cloud copy is considered current is a data
// race in real OpenMP and is likewise undefined here.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "omptarget/device.h"
#include "sim/engine.h"
#include "support/status.h"
#include "trace/tracer.h"

namespace ompcloud::omptarget {

/// Residency + reference-count table, one per DeviceManager (shared by all
/// environments so refcounts compose across nesting). Pure bookkeeping: no
/// storage traffic happens here.
class ResidencyTable {
 public:
  /// The tracked state of one pinned host buffer on one device.
  struct Buffer {
    std::string name;
    void* host_ptr = nullptr;
    uint64_t size_bytes = 0;
    int device_id = -1;
    int refcount = 0;
    /// Monotonic host-content version; bumped by `update_to` and by every
    /// device-side write (note_output).
    uint64_t version = 1;
    /// Version the cloud object holds; the upload is skippable iff
    /// `cloud_valid && staged_version == version`.
    uint64_t staged_version = 0;
    bool cloud_valid = false;  ///< bucket holds the latest version
    bool host_valid = true;    ///< host buffer holds the latest version
    /// Storage key of the latest cloud copy (a manifest key for chunked
    /// objects — sibling `.part` blocks ride along).
    std::string cloud_key;

    [[nodiscard]] bool resident_current() const {
      return cloud_valid && staged_version == version;
    }
  };

  [[nodiscard]] Buffer* find(int device_id, const void* host_ptr);
  [[nodiscard]] const Buffer* find(int device_id, const void* host_ptr) const;

  /// Pins (or re-pins) a buffer: creates the entry on first use, then
  /// increments the refcount. Size mismatches against an existing entry are
  /// an error (same-pointer different-extent mappings are not supported).
  Result<Buffer*> pin(int device_id, std::string name, void* host_ptr,
                      uint64_t size_bytes);

  /// Drops one reference; erases the entry (and returns true) when the
  /// count reaches zero. The caller is responsible for any copy-out /
  /// object release *before* unpinning.
  bool unpin(int device_id, const void* host_ptr);

  /// Whether `key` is (or belongs to) a live resident object on `device_id`
  /// — the object itself or one of its chunked sibling blocks. Cleanup uses
  /// this to keep resident outputs in the bucket.
  [[nodiscard]] bool is_resident_key(int device_id,
                                     std::string_view key) const;

  /// Queues a superseded object key for deletion at the next cleanup /
  /// environment exit (deletes are deferred so bookkeeping stays sync).
  void add_stale_key(int device_id, std::string key);
  [[nodiscard]] std::vector<std::string> take_stale_keys(int device_id);

  [[nodiscard]] size_t size() const { return buffers_.size(); }

 private:
  std::map<std::pair<int, const void*>, Buffer> buffers_;
  std::map<int, std::vector<std::string>> stale_;
};

/// What `DataEnvironment::exit` (plus any `update_from`) moved and freed.
struct DataEnvReport {
  double seconds = 0;  ///< virtual time spent in exit (copy-out + release)
  uint64_t downloaded_plain_bytes = 0;
  uint64_t downloaded_wire_bytes = 0;
  int materialized = 0;      ///< buffers copied out on exit
  int released_objects = 0;  ///< cloud objects discarded
};

/// One `#pragma omp target data` construct bound to a device. See the file
/// comment for the lifecycle; regions run inside it by setting
/// `TargetRegion::env`.
class DataEnvironment {
 public:
  DataEnvironment(DeviceManager& manager, int device_id);

  DataEnvironment(const DataEnvironment&) = delete;
  DataEnvironment& operator=(const DataEnvironment&) = delete;

  [[nodiscard]] int device_id() const { return device_id_; }

  /// Declares one mapping of the environment (before `enter`). The intent
  /// mirrors the OpenMP map type: `kTo`/`kToFrom` buffers have meaningful
  /// host content on entry; `kFrom`/`kToFrom` buffers are copied out on
  /// exit; `kAlloc` buffers are device-scratch (never copied either way).
  Status map(std::string name, void* host_ptr, uint64_t size_bytes,
             MapType intent);

  /// Pins every declared mapping in the residency table (refcount++).
  /// Purely synchronous — staging stays lazy until the first region that
  /// actually uploads the buffer.
  Status enter();

  /// Unpins every mapping: for each buffer whose refcount reaches zero,
  /// copies the device-resident version out (when the intent maps from the
  /// device and the host copy is stale) and discards its cloud objects.
  /// Also drains deferred deletions of superseded objects.
  [[nodiscard]] sim::Co<Result<DataEnvReport>> exit();

  /// `target update from(...)`: materializes the device-resident version of
  /// one mapped buffer into the host copy *now* (no-op when the host copy
  /// is already current).
  [[nodiscard]] sim::Co<Result<MaterializeStats>> update_from(
      const void* host_ptr);

  /// `target update to(...)`: announces a host-side write — the cloud copy
  /// (if any) is stale and the next region re-stages the buffer.
  Status update_to(const void* host_ptr);

  /// Whether `host_ptr` currently has a cloud copy newer than the host one.
  [[nodiscard]] bool host_stale(const void* host_ptr) const;

  // -- Plugin/manager-facing hooks (not part of the user API) --------------

  [[nodiscard]] ResidencyTable::Buffer* find(const void* host_ptr);
  [[nodiscard]] const ResidencyTable::Buffer* find(
      const void* host_ptr) const;

  /// Records that the plugin staged `host_ptr`'s current host content at
  /// `key` (the upload completed): the cloud copy is now current.
  void note_staged(const void* host_ptr, std::string key);

  /// Records that a device-side region wrote a new version of `host_ptr`
  /// at `key`: the cloud copy is the latest version and the host copy is
  /// stale (its download was deferred).
  void note_output(const void* host_ptr, std::string key);

  /// Forwarders into the shared residency table, scoped to this device.
  [[nodiscard]] bool is_resident_key(std::string_view key) const;
  [[nodiscard]] std::vector<std::string> take_stale_keys();

  /// Called by DeviceManager after a successful device run of `region`:
  /// regions producing environment-resident outputs are appended to the
  /// replay log so a later fault can recompute them from host truth.
  void on_device_success(const TargetRegion& region);

  /// Called by DeviceManager after the *host* ran `region` (fallback or a
  /// direct host offload inside the environment): the host buffers now hold
  /// the region's outputs, so their versions bump and any cloud copies are
  /// stale.
  void note_host_run(const TargetRegion& region);

  /// Called by DeviceManager when a device attempt failed and the host
  /// fallback is about to run: invalidates all cloud residency (emitting
  /// `kResidencyInvalidated` per buffer) and replays the logged producer
  /// regions on the host device, restoring the host buffers as the source
  /// of truth. `parent` adopts the replay spans.
  [[nodiscard]] sim::Co<Status> recover_on_host(trace::SpanId parent);

 private:
  struct Mapping {
    std::string name;
    void* host_ptr = nullptr;
    uint64_t size_bytes = 0;
    MapType intent = MapType::kTo;
  };

  [[nodiscard]] ResidencyTable& table() const;
  [[nodiscard]] trace::Tracer& tracer() const;
  void emit_invalidation(const ResidencyTable::Buffer& buffer);

  DeviceManager* manager_;
  int device_id_;
  std::vector<Mapping> mappings_;
  bool entered_ = false;
  /// Device-successful regions whose resident outputs the host would need
  /// recomputed on fallback; cleared on exit and after each recovery.
  std::vector<TargetRegion> replay_log_;
};

}  // namespace ompcloud::omptarget
