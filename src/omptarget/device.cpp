#include "omptarget/device.h"

#include <cstring>

#include "omptarget/data_env.h"
#include "omptarget/host_plugin.h"
#include "omptarget/scheduler.h"
#include "support/strings.h"

namespace ompcloud::omptarget {

std::string OffloadReport::to_json(int indent) const {
  std::string pad(static_cast<size_t>(indent), ' ');
  std::string json = str_format(
      "{\n"
      "%s  \"device\": \"%s\",\n"
      "%s  \"fell_back_to_host\": %s,\n"
      "%s  \"degraded\": %s,\n"
      "%s  \"seconds\": {\"total\": %.6f, \"upload\": %.6f, "
      "\"submit\": %.6f, \"job\": %.6f, \"download\": %.6f, "
      "\"cleanup\": %.6f, \"boot\": %.6f, \"host_codec\": %.6f},\n"
      "%s  \"bytes\": {\"uploaded_plain\": %llu, \"uploaded_wire\": %llu, "
      "\"downloaded_plain\": %llu, \"downloaded_wire\": %llu, "
      "\"resident_upload_skipped\": %llu, "
      "\"resident_download_deferred\": %llu},\n"
      "%s  \"cost_usd\": %.6f\n"
      "%s}",
      pad.c_str(), device_name.c_str(),
      pad.c_str(), fell_back_to_host ? "true" : "false",
      pad.c_str(), degraded ? "true" : "false",
      pad.c_str(), total_seconds, upload_seconds, submit_seconds,
      job.job_seconds, download_seconds, cleanup_seconds, boot_seconds,
      host_codec_seconds,
      pad.c_str(), static_cast<unsigned long long>(uploaded_plain_bytes),
      static_cast<unsigned long long>(uploaded_wire_bytes),
      static_cast<unsigned long long>(downloaded_plain_bytes),
      static_cast<unsigned long long>(downloaded_wire_bytes),
      static_cast<unsigned long long>(resident_upload_skipped_bytes),
      static_cast<unsigned long long>(resident_download_deferred_bytes),
      pad.c_str(), cost_usd,
      pad.c_str());
  return json;
}

Status TargetRegion::validate() const {
  if (vars.empty()) return invalid_argument("region: no mapped variables");
  if (loops.empty()) return invalid_argument("region: no loops");
  for (const MappedVar& var : vars) {
    if (var.size_bytes == 0) {
      return invalid_argument("region: variable '" + var.name +
                              "' has zero size");
    }
    if (var.host_ptr == nullptr && var.map_type != MapType::kAlloc) {
      return invalid_argument("region: variable '" + var.name +
                              "' maps host data but has no host pointer");
    }
  }
  for (const spark::LoopSpec& loop : loops) {
    for (const auto& access : loop.reads) {
      if (access.var < 0 || access.var >= static_cast<int>(vars.size())) {
        return invalid_argument("region: loop reads unknown variable");
      }
    }
    for (const auto& access : loop.writes) {
      if (access.var < 0 || access.var >= static_cast<int>(vars.size())) {
        return invalid_argument("region: loop writes unknown variable");
      }
      // A written variable must be addressable on the host so results can
      // land somewhere after fallback execution too.
      if (vars[access.var].host_ptr == nullptr) {
        return invalid_argument("region: loop writes alloc-only variable '" +
                                vars[access.var].name + "'");
      }
    }
  }
  return Status::ok();
}

DeviceManagerOptions DeviceManagerOptions::from_config(const Config& config) {
  DeviceManagerOptions options;
  options.fallback_on_failure = config.get_bool("device.fallback-on-failure",
                                                options.fallback_on_failure);
  options.breaker_threshold = static_cast<int>(
      config.get_int("device.breaker-threshold", options.breaker_threshold));
  options.breaker_open_seconds = config.get_duration(
      "device.breaker-open-seconds", options.breaker_open_seconds);
  return options;
}

DeviceManager::DeviceManager(sim::Engine& engine)
    : engine_(&engine),
      tracer_(std::make_shared<trace::Tracer>(engine)),
      residency_(std::make_unique<ResidencyTable>()) {
  // Device 0: the host itself (laptop-class fallback: 4 cores, 3 GFLOP/s).
  set_host_device(std::make_unique<HostPlugin>(
      engine, "host(fallback)", /*threads=*/4, /*core_flops=*/3e9));
}

DeviceManager::~DeviceManager() {
  for (int id = num_devices() - 1; id >= 0; --id) {
    tracer_->tools().emit_device_fini(
        {id, devices_[static_cast<size_t>(id)]->name(), engine_->now()});
  }
}

int DeviceManager::register_device(std::unique_ptr<Plugin> plugin) {
  plugin->attach_tracer(tracer_);
  devices_.push_back(std::move(plugin));
  breakers_.resize(devices_.size());
  int id = static_cast<int>(devices_.size()) - 1;
  devices_.back()->set_device_id(id);
  tracer_->tools().emit_device_init(
      {id, devices_.back()->name(), engine_->now()});
  return id;
}

void DeviceManager::set_host_device(std::unique_ptr<Plugin> plugin) {
  plugin->attach_tracer(tracer_);
  if (devices_.empty()) {
    devices_.push_back(std::move(plugin));
  } else {
    devices_[0] = std::move(plugin);
  }
  devices_[0]->set_device_id(host_device_id());
  breakers_.resize(devices_.size());
  tracer_->tools().emit_device_init(
      {host_device_id(), devices_[0]->name(), engine_->now()});
}

bool DeviceManager::fallback_eligible(StatusCode code) const {
  if (!options_.fallback_on_failure) {
    // Historical behavior (`device.fallback-on-failure = false`): only
    // unavailability triggers the dynamic fallback; every other failure
    // surfaces to the caller.
    return code == StatusCode::kUnavailable;
  }
  // Programmer errors would fail identically on the host — surface them.
  return code != StatusCode::kInvalidArgument &&
         code != StatusCode::kUnimplemented &&
         code != StatusCode::kNotFound &&
         code != StatusCode::kFailedPrecondition;
}

void DeviceManager::emit_breaker_event(int device_id,
                                       tools::FaultEventInfo::Kind kind,
                                       trace::SpanHandle& root) {
  tools::FaultEventInfo info;
  info.kind = kind;
  info.point = "breaker";
  info.device_id = device_id;
  info.time = engine_->now();
  tracer_->tools().emit_fault_event(info);
  trace::SpanHandle span = root.child("breaker");
  span.tag("transition", std::string(tools::to_string(kind)));
  span.tag("device", std::to_string(device_id));
  span.end();
}

bool DeviceManager::breaker_allows(int device_id, trace::SpanHandle& root) {
  if (options_.breaker_threshold <= 0) return true;
  Breaker& breaker = breakers_[static_cast<size_t>(device_id)];
  switch (breaker.state) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (engine_->now() - breaker.opened_at >=
          options_.breaker_open_seconds) {
        // Cooldown elapsed: this offload is the half-open probe.
        breaker.state = BreakerState::kHalfOpen;
        emit_breaker_event(device_id,
                           tools::FaultEventInfo::Kind::kBreakerHalfOpen,
                           root);
        return true;
      }
      root.tag("breaker", "open");
      return false;
    case BreakerState::kHalfOpen:
      // A probe is already in flight; route everyone else to the host.
      root.tag("breaker", "half_open");
      return false;
  }
  return true;
}

void DeviceManager::breaker_on_success(int device_id,
                                       trace::SpanHandle& root) {
  if (options_.breaker_threshold <= 0) return;
  Breaker& breaker = breakers_[static_cast<size_t>(device_id)];
  if (breaker.state != BreakerState::kClosed) {
    emit_breaker_event(device_id, tools::FaultEventInfo::Kind::kBreakerClose,
                       root);
  }
  breaker.state = BreakerState::kClosed;
  breaker.consecutive_failures = 0;
}

void DeviceManager::breaker_on_failure(int device_id,
                                       trace::SpanHandle& root) {
  if (options_.breaker_threshold <= 0) return;
  Breaker& breaker = breakers_[static_cast<size_t>(device_id)];
  ++breaker.consecutive_failures;
  bool failed_probe = breaker.state == BreakerState::kHalfOpen;
  if (failed_probe ||
      (breaker.state == BreakerState::kClosed &&
       breaker.consecutive_failures >= options_.breaker_threshold)) {
    breaker.state = BreakerState::kOpen;
    breaker.opened_at = engine_->now();
    emit_breaker_event(device_id, tools::FaultEventInfo::Kind::kBreakerOpen,
                       root);
  }
}

OffloadScheduler& DeviceManager::configure_scheduler(
    const SchedulerOptions& options) {
  scheduler_ = std::make_unique<OffloadScheduler>(*this, options);
  return *scheduler_;
}

sim::Co<Result<OffloadReport>> DeviceManager::offload_queued(
    TargetRegion region, SubmitOptions options) {
  if (scheduler_ != nullptr) {
    co_return co_await scheduler_->submit(std::move(region),
                                          std::move(options));
  }
  co_return co_await offload(std::move(region), options.device_id);
}

sim::Co<Result<OffloadReport>> DeviceManager::offload(TargetRegion region,
                                                      int device_id) {
  OC_CO_RETURN_IF_ERROR(region.validate());
  if (device_id < 0 || device_id >= num_devices()) {
    co_return invalid_argument(
        str_format("no such device %d (have %d)", device_id, num_devices()));
  }

  trace::SpanHandle root = tracer_->span("offload");
  root.tag("region", region.name);

  // ompt_callback_target begin/end pair around the whole dispatch,
  // including the host-fallback path.
  tools::ToolRegistry& tools = tracer_->tools();
  const uint64_t target_id = tools.next_target_id();
  Plugin& requested = *devices_[device_id];
  tools.emit_target_begin(
      {target_id, region.name, device_id, requested.name(), engine_->now()});
  auto finish = [&](bool ok, bool fell_back) {
    tools.emit_target_end({target_id, region.name, device_id, ok, fell_back,
                           engine_->now()});
  };

  if (device_id != host_device_id() && requested.is_available() &&
      breaker_allows(device_id, root)) {
    root.tag("device", std::string(requested.name()));
    // Snapshot every mapped host buffer before the attempt: a mid-flight
    // failure can leave partial downloads in map(from:) buffers or trample
    // map(tofrom:) inputs, and the host fallback must start from pristine
    // memory. Host-side memcpy costs no virtual time.
    std::vector<ByteBuffer> snapshot(region.vars.size());
    for (size_t v = 0; v < region.vars.size(); ++v) {
      const MappedVar& var = region.vars[v];
      if (var.host_ptr == nullptr) continue;
      snapshot[v] = ByteBuffer(as_bytes_of(
          static_cast<const std::byte*>(var.host_ptr), var.size_bytes));
    }
    auto report = co_await requested.run_region(region, root.id());
    if (report.ok()) {
      breaker_on_success(device_id, root);
      // Log producer regions so a later fault inside the same data
      // environment can recompute their resident outputs from host truth.
      if (region.env != nullptr) region.env->on_device_success(region);
      finish(/*ok=*/true, /*fell_back=*/false);
      co_return report;
    }
    breaker_on_failure(device_id, root);
    // `device.fallback-on-failure` (default on): any infrastructure
    // failure — unavailability, a missed deadline, unrecovered data loss —
    // recovers locally. Programmer errors (bad kernel, invalid region)
    // always surface: they would fail on the host too. With the knob off,
    // only kUnavailable falls back (the historical behavior).
    if (!fallback_eligible(report.status().code())) {
      finish(/*ok=*/false, /*fell_back=*/false);
      co_return report.status();
    }
    root.tag("fault", report.status().message());
    for (size_t v = 0; v < region.vars.size(); ++v) {
      const MappedVar& var = region.vars[v];
      if (var.host_ptr == nullptr) continue;
      std::memcpy(var.host_ptr, snapshot[v].data(), snapshot[v].size());
    }
  }

  // Fig. 1: "if the cloud is not available the computation is performed
  // locally".
  bool is_fallback = device_id != host_device_id();
  if (is_fallback) {
    root.tag("fallback", "true");
    tools::FaultEventInfo fell;
    fell.kind = tools::FaultEventInfo::Kind::kFallback;
    fell.point = "device";
    fell.device_id = device_id;
    fell.time = engine_->now();
    tracer_->tools().emit_fault_event(fell);
  }
  // Inside a data environment the host buffers may be stale (downloads of
  // earlier regions' outputs were deferred to the cloud): invalidate all
  // residency and replay the logged producers locally so the host run below
  // starts from the true latest versions.
  if (region.env != nullptr) {
    trace::SpanHandle recovery = root.child("recovery");
    recovery.tag("op", "residency-replay");
    Status recovered = co_await region.env->recover_on_host(recovery.id());
    if (!recovered.is_ok()) {
      finish(/*ok=*/false, is_fallback);
      co_return recovered.with_context("host fallback recovery");
    }
  }
  auto fallback =
      co_await devices_[host_device_id()]->run_region(region, root.id());
  if (!fallback.ok()) {
    finish(/*ok=*/false, is_fallback);
    co_return fallback.status();
  }
  // The host wrote this region's outputs: bump their versions so the next
  // cloud region re-stages them instead of trusting any cloud copy.
  if (region.env != nullptr) region.env->note_host_run(region);
  fallback->fell_back_to_host = is_fallback;
  finish(/*ok=*/true, is_fallback);
  co_return fallback;
}

}  // namespace ompcloud::omptarget
