#include "omptarget/device.h"

#include "omptarget/host_plugin.h"
#include "omptarget/scheduler.h"
#include "support/strings.h"

namespace ompcloud::omptarget {

std::string OffloadReport::to_json(int indent) const {
  std::string pad(static_cast<size_t>(indent), ' ');
  std::string json = str_format(
      "{\n"
      "%s  \"device\": \"%s\",\n"
      "%s  \"fell_back_to_host\": %s,\n"
      "%s  \"seconds\": {\"total\": %.6f, \"upload\": %.6f, "
      "\"submit\": %.6f, \"job\": %.6f, \"download\": %.6f, "
      "\"cleanup\": %.6f, \"boot\": %.6f, \"host_codec\": %.6f},\n"
      "%s  \"bytes\": {\"uploaded_plain\": %llu, \"uploaded_wire\": %llu, "
      "\"downloaded_plain\": %llu, \"downloaded_wire\": %llu},\n"
      "%s  \"cost_usd\": %.6f\n"
      "%s}",
      pad.c_str(), device_name.c_str(),
      pad.c_str(), fell_back_to_host ? "true" : "false",
      pad.c_str(), total_seconds, upload_seconds, submit_seconds,
      job.job_seconds, download_seconds, cleanup_seconds, boot_seconds,
      host_codec_seconds,
      pad.c_str(), static_cast<unsigned long long>(uploaded_plain_bytes),
      static_cast<unsigned long long>(uploaded_wire_bytes),
      static_cast<unsigned long long>(downloaded_plain_bytes),
      static_cast<unsigned long long>(downloaded_wire_bytes),
      pad.c_str(), cost_usd,
      pad.c_str());
  return json;
}

Status TargetRegion::validate() const {
  if (vars.empty()) return invalid_argument("region: no mapped variables");
  if (loops.empty()) return invalid_argument("region: no loops");
  for (const MappedVar& var : vars) {
    if (var.size_bytes == 0) {
      return invalid_argument("region: variable '" + var.name +
                              "' has zero size");
    }
    if (var.host_ptr == nullptr && var.map_type != MapType::kAlloc) {
      return invalid_argument("region: variable '" + var.name +
                              "' maps host data but has no host pointer");
    }
  }
  for (const spark::LoopSpec& loop : loops) {
    for (const auto& access : loop.reads) {
      if (access.var < 0 || access.var >= static_cast<int>(vars.size())) {
        return invalid_argument("region: loop reads unknown variable");
      }
    }
    for (const auto& access : loop.writes) {
      if (access.var < 0 || access.var >= static_cast<int>(vars.size())) {
        return invalid_argument("region: loop writes unknown variable");
      }
      // A written variable must be addressable on the host so results can
      // land somewhere after fallback execution too.
      if (vars[access.var].host_ptr == nullptr) {
        return invalid_argument("region: loop writes alloc-only variable '" +
                                vars[access.var].name + "'");
      }
    }
  }
  return Status::ok();
}

DeviceManager::DeviceManager(sim::Engine& engine)
    : engine_(&engine),
      tracer_(std::make_shared<trace::Tracer>(engine)) {
  // Device 0: the host itself (laptop-class fallback: 4 cores, 3 GFLOP/s).
  set_host_device(std::make_unique<HostPlugin>(
      engine, "host(fallback)", /*threads=*/4, /*core_flops=*/3e9));
}

DeviceManager::~DeviceManager() {
  for (int id = num_devices() - 1; id >= 0; --id) {
    tracer_->tools().emit_device_fini(
        {id, devices_[static_cast<size_t>(id)]->name(), engine_->now()});
  }
}

int DeviceManager::register_device(std::unique_ptr<Plugin> plugin) {
  plugin->attach_tracer(tracer_);
  devices_.push_back(std::move(plugin));
  int id = static_cast<int>(devices_.size()) - 1;
  tracer_->tools().emit_device_init(
      {id, devices_.back()->name(), engine_->now()});
  return id;
}

void DeviceManager::set_host_device(std::unique_ptr<Plugin> plugin) {
  plugin->attach_tracer(tracer_);
  if (devices_.empty()) {
    devices_.push_back(std::move(plugin));
  } else {
    devices_[0] = std::move(plugin);
  }
  tracer_->tools().emit_device_init(
      {host_device_id(), devices_[0]->name(), engine_->now()});
}

OffloadScheduler& DeviceManager::configure_scheduler(
    const SchedulerOptions& options) {
  scheduler_ = std::make_unique<OffloadScheduler>(*this, options);
  return *scheduler_;
}

sim::Co<Result<OffloadReport>> DeviceManager::offload_queued(
    TargetRegion region, int device_id, std::string tenant) {
  if (scheduler_ != nullptr) {
    co_return co_await scheduler_->submit(std::move(region), device_id,
                                          std::move(tenant));
  }
  co_return co_await offload(std::move(region), device_id);
}

sim::Co<Result<OffloadReport>> DeviceManager::offload(TargetRegion region,
                                                      int device_id) {
  OC_CO_RETURN_IF_ERROR(region.validate());
  if (device_id < 0 || device_id >= num_devices()) {
    co_return invalid_argument(
        str_format("no such device %d (have %d)", device_id, num_devices()));
  }

  trace::SpanHandle root = tracer_->span("offload");
  root.tag("region", region.name);

  // ompt_callback_target begin/end pair around the whole dispatch,
  // including the host-fallback path.
  tools::ToolRegistry& tools = tracer_->tools();
  const uint64_t target_id = tools.next_target_id();
  Plugin& requested = *devices_[device_id];
  tools.emit_target_begin(
      {target_id, region.name, device_id, requested.name(), engine_->now()});
  auto finish = [&](bool ok, bool fell_back) {
    tools.emit_target_end({target_id, region.name, device_id, ok, fell_back,
                           engine_->now()});
  };

  if (device_id != host_device_id() && requested.is_available()) {
    root.tag("device", std::string(requested.name()));
    auto report = co_await requested.run_region(region, root.id());
    if (report.ok()) {
      finish(/*ok=*/true, /*fell_back=*/false);
      co_return report;
    }
    // Only unavailability triggers the dynamic fallback; real failures
    // (bad kernel, data loss) surface to the caller.
    if (report.status().code() != StatusCode::kUnavailable) {
      finish(/*ok=*/false, /*fell_back=*/false);
      co_return report.status();
    }
  }

  // Fig. 1: "if the cloud is not available the computation is performed
  // locally".
  bool is_fallback = device_id != host_device_id();
  if (is_fallback) root.tag("fallback", "true");
  auto fallback =
      co_await devices_[host_device_id()]->run_region(region, root.id());
  if (!fallback.ok()) {
    finish(/*ok=*/false, is_fallback);
    co_return fallback.status();
  }
  fallback->fell_back_to_host = is_fallback;
  finish(/*ok=*/true, is_fallback);
  co_return fallback;
}

}  // namespace ompcloud::omptarget
