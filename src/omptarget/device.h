// Target-agnostic offloading layer (libomptarget's role, paper Fig. 2
// component 2): device registry, target-region description, and the
// offload entry point with dynamic host fallback ("if the cloud is not
// available the computation is performed locally", §III).
//
// The region description is what Clang's fat binary would carry: the mapped
// variables with their map types, and the loops (kernel symbol + cost model
// + per-variable access/partition info from the `target data map`
// extension of §III-B).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/engine.h"
#include "spark/job.h"
#include "support/bytes.h"
#include "support/config.h"
#include "support/status.h"
#include "trace/tracer.h"

namespace ompcloud::omptarget {

class OffloadScheduler;
struct SchedulerOptions;
class DataEnvironment;
class ResidencyTable;

/// OpenMP map-type of one variable (map(to:) / map(from:) / map(tofrom:) /
/// device-only allocation).
enum class MapType { kTo, kFrom, kToFrom, kAlloc };

/// One entry of the region's data environment.
struct MappedVar {
  std::string name;
  void* host_ptr = nullptr;  ///< host-side storage (null only for kAlloc)
  uint64_t size_bytes = 0;
  MapType map_type = MapType::kTo;

  [[nodiscard]] bool maps_to() const {
    return map_type == MapType::kTo || map_type == MapType::kToFrom;
  }
  [[nodiscard]] bool maps_from() const {
    return map_type == MapType::kFrom || map_type == MapType::kToFrom;
  }
};

/// One tenant's iteration sub-range inside a coalesced (micro-batched)
/// region: the batch coalescer (batch.h) concatenates compatible member
/// regions along the iteration axis and records each member here so the
/// Spark layer can tile every member independently (no tile straddles a
/// tenant boundary) and attribute tasks to the owning tenant.
struct RegionSlice {
  std::string label;   ///< member region name (diagnostics)
  std::string tenant;  ///< owning tenant pool
  int64_t begin = 0;   ///< first iteration of the member (inclusive)
  int64_t end = 0;     ///< one past the member's last iteration
};

/// A complete `#pragma omp target` region: data environment + the DOALL
/// loops inside it (loop access indices refer to `vars`).
struct TargetRegion {
  std::string name = "target-region";
  std::vector<MappedVar> vars;
  std::vector<spark::LoopSpec> loops;
  /// Enclosing `target data` environment, when the region runs inside one
  /// (data_env.h). Borrowed; null for the classic per-region round trip.
  /// Buffers registered there stay cloud-resident across regions: uploads
  /// of current resident inputs are skipped and downloads of registered
  /// outputs are deferred until host access or environment exit.
  DataEnvironment* env = nullptr;
  /// Per-tenant sub-partitions of a coalesced batch region (empty for an
  /// ordinary single-tenant region). Forwarded to `spark::JobSpec` as
  /// sub-partitions.
  std::vector<RegionSlice> slices;
  /// Owning tenant, filled by the scheduler from `SubmitOptions::tenant`
  /// at dispatch (empty on the direct/offload path). Lets device plugins
  /// charge per-tenant retry budgets without widening the Plugin API.
  std::string tenant;

  [[nodiscard]] Status validate() const;
};

/// Declarative submission surface for the offload-as-a-service layer: one
/// struct carries everything the admission scheduler needs — tenant,
/// priority, SLO deadline, latency class — instead of positional arguments.
/// Built by `ompcloud::Session` (service.h) and by the `omp::TargetRegion`
/// DSL; consumed by `OffloadScheduler::submit`.
struct SubmitOptions {
  /// Target device (0 = host). `Session::submit` fills this from
  /// `service.default-device` when the caller leaves it at -1.
  int device_id = 0;
  /// Scheduling pool for quotas and FAIR weighted sharing. Empty maps to
  /// "default".
  std::string tenant = "default";
  /// Higher dispatches first; a higher-priority arrival may preempt the
  /// lowest-priority *queued* (never running) entry when the queue is full.
  int priority = 0;
  /// Relative completion budget in virtual seconds (0 = none). Admission
  /// rejects with kDeadlineExceeded when the budget cannot be met (already
  /// below the observed service-time estimate, or expired while queued).
  double deadline_seconds = 0;
  /// Informational SLO bucket ("interactive", "batch", ...): tagged on the
  /// sched.queue span and scheduler events.
  std::string latency_class;
  /// `#pragma omp target nowait`: the caller does not block on completion.
  /// Carried for observability; the async/await behavior itself lives in
  /// `Session::submit_nowait` / `omp::TargetRegion::execute_async`.
  bool nowait = false;
  /// Opt out of micro-batch coalescing for this submission.
  bool allow_batching = true;
};

/// What one offload produced: the paper's measurement decomposition.
/// `total_seconds` is OmpCloud-full, `job.job_seconds` is OmpCloud-spark,
/// `job.computation_seconds()` is OmpCloud-computation.
///
/// The phase/byte/codec fields are a *view derived from the trace*: the
/// cloud plugin reconstructs them from its offload span subtree after the
/// region completes (cloud_plugin.cpp, finalize_report_from_trace). With
/// `trace.enabled = false` they stay zero; totals, data movement, and
/// correctness are unaffected.
struct OffloadReport {
  std::string device_name;
  bool fell_back_to_host = false;
  /// True when the scheduler dispatched this offload during a brownout
  /// (CoDel queue-delay shedding active): the result is correct, but the
  /// system was degrading lower classes to produce it on time.
  bool degraded = false;

  double total_seconds = 0;      ///< whole offload (host-side view)
  double upload_seconds = 0;     ///< compress + host->storage (Fig. 1 step 2)
  double submit_seconds = 0;     ///< SSH/spark-submit round trip (step 3)
  double download_seconds = 0;   ///< storage->host + decompress (step 8)
  double cleanup_seconds = 0;    ///< deleting staged objects
  double boot_seconds = 0;       ///< on-the-fly instance start, if any
  double host_codec_seconds = 0; ///< host-side (de)compression CPU time

  uint64_t uploaded_plain_bytes = 0;
  uint64_t uploaded_wire_bytes = 0;   ///< after compression
  uint64_t downloaded_plain_bytes = 0;
  uint64_t downloaded_wire_bytes = 0;
  /// Transfers the data environment elided (data_env.h): upload bytes whose
  /// cloud copy was already current, and output bytes left resident instead
  /// of downloaded.
  uint64_t resident_upload_skipped_bytes = 0;
  uint64_t resident_download_deferred_bytes = 0;

  double cost_usd = 0;  ///< $ metered against the cluster for this offload

  /// Member regions the offload served (1 = ordinary region; >1 = this
  /// report is a per-member pro-rata view of a coalesced batch job: bytes
  /// and cost are the member's share, seconds are the batch's wall clock).
  int batch_size = 1;

  spark::JobMetrics job;  ///< zero-initialized for host execution

  /// Host<->cloud communication total (the Fig. 5 "host-target" bar).
  [[nodiscard]] double host_target_seconds() const {
    return upload_seconds + download_seconds + cleanup_seconds;
  }

  /// Serializes the report as a JSON object (multi-line; nested lines are
  /// prefixed with `indent` spaces). Shared by `bench::BenchJson` and the
  /// trace export so the schema exists exactly once.
  [[nodiscard]] std::string to_json(int indent = 0) const;
};

/// Bytes moved by one `Plugin::materialize` call (a deferred download that
/// the host finally forced).
struct MaterializeStats {
  uint64_t plain_bytes = 0;
  uint64_t wire_bytes = 0;
};

/// Target-specific offloading plugin interface (paper Fig. 2 component 3).
class Plugin {
 public:
  virtual ~Plugin() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Whether offloading can proceed right now (a cloud device with no valid
  /// configuration, or an unreachable cluster, reports false and triggers
  /// the wrapper's host fallback).
  [[nodiscard]] virtual bool is_available() const = 0;

  /// Runs the whole region on this device. Data starts and ends in the
  /// host buffers of `region.vars`. `parent_span` is the manager's root
  /// `offload` span (kNoSpan for direct standalone calls); plugins parent
  /// their phase spans under it.
  [[nodiscard]] virtual sim::Co<Result<OffloadReport>> run_region(
      const TargetRegion& region,
      trace::SpanId parent_span = trace::kNoSpan) = 0;

  /// Forces a deferred download: fetches the device-side object at
  /// `object_key` into `var.host_ptr`. Called by `DataEnvironment` on
  /// environment exit and `target update from`. Devices without remote
  /// storage (the host plugin) have nothing to move.
  [[nodiscard]] virtual sim::Co<Result<MaterializeStats>> materialize(
      const MappedVar& var, const std::string& object_key,
      trace::SpanId parent = trace::kNoSpan) {
    (void)var;
    (void)object_key;
    (void)parent;
    co_return MaterializeStats{};
  }

  /// Releases a device-side object (and any sibling block objects) whose
  /// residency refcount dropped to zero. Best-effort, like cleanup.
  [[nodiscard]] virtual sim::Co<Status> discard_object(
      const std::string& object_key, trace::SpanId parent = trace::kNoSpan) {
    (void)object_key;
    (void)parent;
    co_return Status::ok();
  }

  /// Called by DeviceManager at registration with the manager-owned tracer
  /// so all devices record into one span tree. Plugins with their own
  /// substrate (CloudPlugin -> Cluster -> ObjectStore) override to
  /// propagate it downward.
  virtual void attach_tracer(std::shared_ptr<trace::Tracer> tracer) {
    tracer_ = std::move(tracer);
  }

  /// Set by DeviceManager once the registration slot is known (-1 while
  /// unregistered). Plugins fold it into per-device state that must differ
  /// across devices — e.g. CloudPlugin's retry-jitter stream seed.
  void set_device_id(int id) { device_id_ = id; }
  [[nodiscard]] int device_id() const { return device_id_; }

 protected:
  std::shared_ptr<trace::Tracer> tracer_;  ///< null until attached
  int device_id_ = -1;
};

/// The `[device]` section: dynamic-fallback policy and the per-device
/// circuit breaker.
struct DeviceManagerOptions {
  /// true (the default): any device failure except programmer errors
  /// (kInvalidArgument, kUnimplemented, kNotFound, kFailedPrecondition)
  /// routes the region to the host —
  /// mid-flight infrastructure failures (kUnavailable, kDeadlineExceeded,
  /// unrecovered kDataLoss, kInternal) all recover locally. `false`
  /// restores the historical behavior where only kUnavailable triggered
  /// the dynamic fallback and every other failure surfaced to the caller.
  bool fallback_on_failure = true;
  /// Consecutive fallback-eligible failures that open a device's circuit
  /// breaker (0 disables the breaker). While open, offloads skip the
  /// device and run on the host immediately — no doomed upload attempts.
  int breaker_threshold = 3;
  /// How long an open breaker routes straight to the host before letting
  /// one half-open probe try the device again. The probe's outcome closes
  /// the breaker (success) or re-opens it (failure).
  double breaker_open_seconds = 120;

  /// Reads `device.fallback-on-failure`, `device.breaker-threshold`,
  /// `device.breaker-open-seconds`.
  static DeviceManagerOptions from_config(const Config& config);
};

/// Device registry + offload dispatch (component 2). Device 0 is always the
/// host device; `omp_get_num_devices()`-style accessors included.
class DeviceManager {
 public:
  explicit DeviceManager(sim::Engine& engine);
  ~DeviceManager();

  /// Per-device circuit-breaker state (exposed for tests/diagnostics).
  enum class BreakerState { kClosed, kOpen, kHalfOpen };

  /// Registers a device plugin; returns its device id (>= 1; 0 is host).
  int register_device(std::unique_ptr<Plugin> plugin);

  [[nodiscard]] int num_devices() const {
    return static_cast<int>(devices_.size());
  }
  [[nodiscard]] Plugin& device(int id) { return *devices_.at(id); }
  [[nodiscard]] static constexpr int host_device_id() { return 0; }

  /// Sets the plugin used for device 0 (host). A default sequential host
  /// device is installed by the constructor.
  void set_host_device(std::unique_ptr<Plugin> plugin);

  /// The `__tgt_target` equivalent: validates the region, tries the
  /// requested device, and falls back to the host when the device is
  /// unavailable (dynamic offloading, §III). Emits the root `offload` span
  /// (tagged with region/device; `fallback = true` when the host ran it).
  [[nodiscard]] sim::Co<Result<OffloadReport>> offload(TargetRegion region,
                                                       int device_id);

  /// Installs an admission scheduler (FIFO/FAIR multi-tenant queue),
  /// replacing any previous one — only call while no submission is in
  /// flight.
  OffloadScheduler& configure_scheduler(const SchedulerOptions& options);
  /// The installed scheduler; null when offloads dispatch directly.
  [[nodiscard]] OffloadScheduler* scheduler() { return scheduler_.get(); }

  /// Routes through the admission scheduler when one is configured (tenant
  /// quota + FAIR share + SLO admission applied), else straight to
  /// `offload`. `options.device_id` selects the device.
  [[nodiscard]] sim::Co<Result<OffloadReport>> offload_queued(
      TargetRegion region, SubmitOptions options);

  /// Deprecated positional-argument spelling; forwards to the
  /// SubmitOptions overload (and logs a deprecation WARN once per process).
  [[deprecated("use offload_queued(region, SubmitOptions)")]]
  [[nodiscard]] sim::Co<Result<OffloadReport>> offload_queued(
      TargetRegion region, int device_id, std::string tenant = "default") {
    SubmitOptions options;
    options.device_id = device_id;
    options.tenant = tenant.empty() ? "default" : std::move(tenant);
    return offload_queued(std::move(region), std::move(options));
  }

  /// Installs the fallback/breaker policy (defaults apply otherwise).
  void configure(DeviceManagerOptions options) { options_ = options; }
  [[nodiscard]] const DeviceManagerOptions& options() const {
    return options_;
  }
  [[nodiscard]] BreakerState breaker_state(int device_id) const {
    return breakers_.at(static_cast<size_t>(device_id)).state;
  }

  [[nodiscard]] sim::Engine& engine() { return *engine_; }

  /// The residency/refcount table shared by every `DataEnvironment` bound
  /// to this manager (data_env.h). Owned here so reference counts compose
  /// across nested environments on the same device.
  [[nodiscard]] ResidencyTable& residency() { return *residency_; }

  /// The tracer shared by every registered device (created by the
  /// constructor; pushed into plugins via `Plugin::attach_tracer`).
  [[nodiscard]] trace::Tracer& tracer() { return *tracer_; }
  [[nodiscard]] std::shared_ptr<trace::Tracer> shared_tracer() const {
    return tracer_;
  }

 private:
  struct Breaker {
    BreakerState state = BreakerState::kClosed;
    int consecutive_failures = 0;
    double opened_at = 0;
  };

  /// Whether `code` routes to the host fallback under the current policy.
  [[nodiscard]] bool fallback_eligible(StatusCode code) const;
  /// Gatekeeper before a device attempt: false when the breaker is open
  /// (and the cooldown has not elapsed) — the region goes straight to the
  /// host. An elapsed cooldown flips the breaker half-open and lets this
  /// attempt through as the probe.
  bool breaker_allows(int device_id, trace::SpanHandle& root);
  void breaker_on_success(int device_id, trace::SpanHandle& root);
  void breaker_on_failure(int device_id, trace::SpanHandle& root);
  /// Emits the breaker transition as a tool event plus a zero-duration
  /// `breaker` child span of the offload root (per-offload attribution).
  void emit_breaker_event(int device_id, tools::FaultEventInfo::Kind kind,
                          trace::SpanHandle& root);

  sim::Engine* engine_;
  std::shared_ptr<trace::Tracer> tracer_;
  std::vector<std::unique_ptr<Plugin>> devices_;
  std::unique_ptr<OffloadScheduler> scheduler_;
  std::unique_ptr<ResidencyTable> residency_;
  DeviceManagerOptions options_;
  std::vector<Breaker> breakers_;  ///< index-aligned with devices_
};

}  // namespace ompcloud::omptarget
