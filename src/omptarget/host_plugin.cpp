#include "omptarget/host_plugin.h"

#include "jnibridge/bridge.h"

namespace ompcloud::omptarget {

HostPlugin::HostPlugin(sim::Engine& engine, std::string name, int threads,
                       double core_flops)
    : engine_(&engine),
      name_(std::move(name)),
      threads_(threads > 0 ? threads : 1),
      core_flops_(core_flops) {}

sim::Co<Result<OffloadReport>> HostPlugin::run_region(
    const TargetRegion& region, trace::SpanId parent_span) {
  double start = engine_->now();
  trace::SpanHandle span;
  if (tracer_ != nullptr) {
    span = tracer_->span("host.exec", parent_span);
    span.tag("threads", std::to_string(threads_));
  }
  // Fresh pool per region: OMP_NUM_THREADS workers.
  sim::CpuPool pool(*engine_, static_cast<size_t>(threads_));

  for (const spark::LoopSpec& loop : region.loops) {
    OC_CO_ASSIGN_OR_RETURN(jni::LoopBodyFn kernel,
                           jni::KernelRegistry::instance().find(loop.kernel));

    // Full-buffer views: on the host every variable is directly addressable.
    std::vector<jni::InputSlice> inputs;
    for (const spark::LoopAccess& access : loop.reads) {
      const MappedVar& var = region.vars[access.var];
      inputs.push_back(
          {as_bytes_of(static_cast<const std::byte*>(var.host_ptr),
                       var.size_bytes),
           0});
    }
    std::vector<jni::OutputSlice> outputs;
    for (const spark::LoopAccess& access : loop.writes) {
      const MappedVar& var = region.vars[access.var];
      outputs.push_back(
          {as_mutable_bytes_of(static_cast<std::byte*>(var.host_ptr),
                               var.size_bytes),
           0});
    }

    // Static schedule: one contiguous tile per thread, queued on the pool.
    auto tiles = spark::tile_iterations(loop.iterations, threads_);
    std::vector<sim::Completion> parts;
    for (size_t t = 0; t < tiles.size(); ++t) {
      auto [begin, end] = tiles[t];
      jni::KernelArgs args;
      args.begin = begin;
      args.end = end;
      args.total_iterations = loop.iterations;
      args.inputs = inputs;
      args.outputs = outputs;
      // DOALL loops write disjoint regions, so threads share the real host
      // buffers exactly as OpenMP threads would.
      Status ran = kernel(args);
      if (!ran.is_ok()) co_return ran.with_context("host kernel");
      double cost = loop.flops_per_iteration *
                    static_cast<double>(end - begin) / core_flops_;
      parts.push_back(engine_->spawn(pool.run(cost)));
    }
    co_await sim::all(std::move(parts));
  }

  OffloadReport report;
  report.device_name = name_;
  report.total_seconds = engine_->now() - start;
  co_return report;
}

}  // namespace ompcloud::omptarget
