// Host device plugin: runs the target region as ordinary multi-threaded
// OpenMP on a single machine.
//
// Two uses, matching the paper:
//  * the `OmpThread` reference series of Fig. 4 (8/16 threads on a
//    c3-class 16-core node), and
//  * the dynamic fallback target when the cloud device is unavailable
//    (then configured with the laptop's cores and clock).
//
// Execution is real — the same registered kernels run over the host
// buffers — while the virtual clock charges flops/(threads x core rate)
// with honest remainder effects (tiles queue on a CpuPool).
#pragma once

#include "omptarget/device.h"

namespace ompcloud::omptarget {

class HostPlugin final : public Plugin {
 public:
  /// `threads`: OMP_NUM_THREADS; `core_flops`: per-core throughput.
  HostPlugin(sim::Engine& engine, std::string name, int threads,
             double core_flops);

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] bool is_available() const override { return true; }

  [[nodiscard]] sim::Co<Result<OffloadReport>> run_region(
      const TargetRegion& region,
      trace::SpanId parent_span = trace::kNoSpan) override;

  [[nodiscard]] int threads() const { return threads_; }

 private:
  sim::Engine* engine_;
  std::string name_;
  int threads_;
  double core_flops_;
};

}  // namespace ompcloud::omptarget
