#include "omptarget/scheduler.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "omptarget/batch.h"
#include "support/strings.h"

namespace ompcloud::omptarget {

std::string_view to_string(SchedulerOptions::Mode mode) {
  switch (mode) {
    case SchedulerOptions::Mode::kFifo: return "fifo";
    case SchedulerOptions::Mode::kFair: return "fair";
  }
  return "?";
}

double SchedulerOptions::weight_for(std::string_view tenant) const {
  for (const auto& [name, weight] : tenant_weights) {
    if (name == tenant) return weight > 0 ? weight : default_weight;
  }
  return default_weight > 0 ? default_weight : 1.0;
}

int SchedulerOptions::quota_for(std::string_view tenant) const {
  for (const auto& [name, quota] : tenant_quotas) {
    if (name == tenant) return quota;
  }
  return default_quota;
}

bool SchedulerOptions::shed_class_matches(
    std::string_view latency_class) const {
  for (const std::string& entry : shed_classes) {
    if (entry == latency_class) return true;
  }
  return false;
}

Result<SchedulerOptions> SchedulerOptions::from_config(const Config& config) {
  SchedulerOptions options;
  std::string mode = config.get_string("scheduler.mode", "fifo");
  if (mode == "fifo" || mode == "FIFO") {
    options.mode = Mode::kFifo;
  } else if (mode == "fair" || mode == "FAIR") {
    options.mode = Mode::kFair;
  } else {
    return invalid_argument("scheduler.mode must be fifo|fair, got '" + mode +
                            "'");
  }
  options.max_concurrent = static_cast<int>(
      config.get_int("scheduler.max-concurrent", options.max_concurrent));
  // Canonical spelling `weight-default` (one scheme with weight.<tenant>);
  // the pre-service `default-weight` is still honored, with a WARN.
  options.default_weight =
      config.get_double("scheduler.weight-default", options.default_weight);
  if (!config.has("scheduler.weight-default") &&
      config.has("scheduler.default-weight")) {
    Logger("config").warn(
        "scheduler.default-weight is deprecated; use scheduler.weight-default");
    options.default_weight =
        config.get_double("scheduler.default-weight", options.default_weight);
  }
  if (options.default_weight <= 0) {
    return invalid_argument("scheduler.weight-default must be positive");
  }
  options.queue_limit = static_cast<int>(
      config.get_int("scheduler.queue-limit", options.queue_limit));
  if (options.queue_limit < 0) {
    return invalid_argument("scheduler.queue-limit must be >= 0");
  }
  options.default_quota = static_cast<int>(
      config.get_int("scheduler.quota-default", options.default_quota));
  if (options.default_quota < 0) {
    return invalid_argument("scheduler.quota-default must be >= 0");
  }
  options.batch_regions = static_cast<int>(
      config.get_int("scheduler.batch-regions", options.batch_regions));
  if (options.batch_regions < 0) {
    return invalid_argument("scheduler.batch-regions must be >= 0");
  }
  options.batch_bytes =
      config.get_byte_size("scheduler.batch-bytes", options.batch_bytes);
  options.batch_linger_seconds = config.get_duration(
      "scheduler.batch-linger", options.batch_linger_seconds);
  if (options.batch_linger_seconds < 0) {
    return invalid_argument("scheduler.batch-linger must be >= 0");
  }
  // Per-tenant pool weights and quotas: `weight.<tenant>` / `quota.<tenant>`.
  for (const std::string& key : config.keys_in("scheduler")) {
    constexpr std::string_view kWeight = "weight.";
    constexpr std::string_view kQuota = "quota.";
    if (key.size() > kWeight.size() &&
        key.compare(0, kWeight.size(), kWeight) == 0) {
      std::string tenant = key.substr(kWeight.size());
      double weight = config.get_double("scheduler." + key, 0);
      if (weight <= 0) {
        return invalid_argument("scheduler." + key + " must be positive");
      }
      options.tenant_weights.emplace_back(std::move(tenant), weight);
    } else if (key.size() > kQuota.size() &&
               key.compare(0, kQuota.size(), kQuota) == 0) {
      std::string tenant = key.substr(kQuota.size());
      int64_t quota = config.get_int("scheduler." + key, -1);
      if (quota < 0) {
        return invalid_argument("scheduler." + key + " must be >= 0");
      }
      options.tenant_quotas.emplace_back(std::move(tenant),
                                         static_cast<int>(quota));
    }
  }
  // [overload]: adaptive concurrency + CoDel shedding. `overload.enabled`
  // flips both on; the individual switches override it either way.
  bool overload_enabled = config.get_bool("overload.enabled", false);
  options.adaptive_concurrency =
      config.get_bool("overload.adaptive-concurrency", overload_enabled);
  options.limit_min = static_cast<int>(
      config.get_int("overload.limit-min", options.limit_min));
  options.limit_max = static_cast<int>(
      config.get_int("overload.limit-max", options.limit_max));
  if (options.limit_min < 1) {
    return invalid_argument("overload.limit-min must be >= 1");
  }
  if (options.limit_max < options.limit_min) {
    return invalid_argument(
        "overload.limit-max must be >= overload.limit-min");
  }
  options.shed = config.get_bool("overload.shed", overload_enabled);
  options.codel_target_seconds = config.get_duration(
      "overload.codel-target", options.codel_target_seconds);
  options.codel_interval_seconds = config.get_duration(
      "overload.codel-interval", options.codel_interval_seconds);
  if (options.codel_target_seconds <= 0 ||
      options.codel_interval_seconds <= 0) {
    return invalid_argument(
        "overload.codel-target and overload.codel-interval must be positive");
  }
  if (auto classes = config.get_string("overload.shed-classes")) {
    for (std::string& name : split(*classes, ',')) {
      if (!name.empty()) options.shed_classes.push_back(std::move(name));
    }
  }
  return options;
}

OffloadScheduler::OffloadScheduler(DeviceManager& manager,
                                   SchedulerOptions options)
    : manager_(&manager), options_(std::move(options)) {
  // AIMD starts optimistic at the ceiling; the first latency inflation
  // cuts it. Static max_concurrent still applies as a hard cap when both
  // are configured.
  if (options_.adaptive_concurrency) {
    limit_ = static_cast<double>(options_.limit_max);
    manager_->tracer().metrics().gauge("overload.limit").set(limit_);
  }
}

int OffloadScheduler::concurrency_limit() const {
  if (!options_.adaptive_concurrency) return options_.max_concurrent;
  int limit = std::max(options_.limit_min, static_cast<int>(limit_));
  if (options_.max_concurrent > 0) {
    limit = std::min(limit, options_.max_concurrent);
  }
  return limit;
}

void OffloadScheduler::warn_deprecated_submit() {
  if (warned_deprecated_) return;
  warned_deprecated_ = true;
  log_.warn(
      "OffloadScheduler::submit(region, device_id, tenant) is deprecated; "
      "submit(region, SubmitOptions) carries tenant/priority/deadline");
}

sim::Co<Result<OffloadReport>> OffloadScheduler::submit(TargetRegion region,
                                                        SubmitOptions options) {
  if (options.tenant.empty()) options.tenant = "default";

  Pending pending;
  pending.seq = ++next_seq_;
  pending.region = std::move(region);
  pending.options = std::move(options);
  pending.enqueue_time = manager_->engine().now();
  if (pending.options.deadline_seconds > 0) {
    pending.absolute_deadline =
        pending.enqueue_time + pending.options.deadline_seconds;
  }
  pending.queue_span = manager_->tracer().span("sched.queue");
  pending.queue_span.tag("region", pending.region.name);
  pending.queue_span.tag("tenant", pending.options.tenant);
  if (pending.options.priority != 0) {
    pending.queue_span.tag("priority",
                           std::to_string(pending.options.priority));
  }
  if (pending.options.deadline_seconds > 0) {
    pending.queue_span.tag(
        "deadline", str_format("%g", pending.options.deadline_seconds));
  }
  if (!pending.options.latency_class.empty()) {
    pending.queue_span.tag("class", pending.options.latency_class);
  }
  if (pending.options.nowait) pending.queue_span.tag("nowait", "true");
  pending.footprint = footprint_of(pending.region);
  pending.done = std::make_shared<sim::Future<Result<OffloadReport>>>(
      manager_->engine());

  // --- SLO-aware admission (fail fast; nothing below queues a hopeless
  // submission). ---
  const int quota = options_.quota_for(pending.options.tenant);
  if (quota > 0 && in_system(pending.options.tenant) >= quota) {
    Status status = resource_exhausted(
        str_format("tenant '%s' quota exhausted (%d in flight)",
                   pending.options.tenant.c_str(), quota));
    reject(pending, tools::SchedulerEventInfo::Kind::kReject, "quota", status);
    co_return status;
  }
  if (pending.options.deadline_seconds > 0 && service_ewma_ > 0 &&
      pending.options.deadline_seconds < service_ewma_) {
    Status status = deadline_exceeded(str_format(
        "deadline %.3fs below observed service time %.3fs — rejected at "
        "admission",
        pending.options.deadline_seconds, service_ewma_));
    reject(pending, tools::SchedulerEventInfo::Kind::kReject, "deadline",
           status);
    co_return status;
  }
  if (options_.queue_limit > 0 &&
      static_cast<int>(queue_.size()) >= options_.queue_limit &&
      !preempt_for_priority(pending.options.priority)) {
    Status status = resource_exhausted(
        str_format("admission queue full (%d queued)", options_.queue_limit));
    reject(pending, tools::SchedulerEventInfo::Kind::kReject, "queue-full",
           status);
    co_return status;
  }

  // Micro-batch eligibility: structural signature + device id. Computed at
  // admission so dispatch-time grouping is a string compare.
  if (options_.batch_regions > 1 && pending.options.allow_batching) {
    auto sig = batch::signature(pending.region, options_.batch_bytes);
    if (sig.has_value()) {
      pending.batch_key =
          str_format("d%d|", pending.options.device_id) + *sig;
    }
  }

  if (pending.absolute_deadline > 0) {
    arm_deadline_timer(pending.absolute_deadline);
  }
  auto done = pending.done;
  queue_.push_back(std::move(pending));
  emit_event(tools::SchedulerEventInfo::Kind::kAdmit, queue_.back(), 0);
  notify_demand();
  // Overload control needs a heartbeat while work exists; the tick re-arms
  // itself and stops once the system drains.
  if ((options_.shed || options_.adaptive_concurrency) &&
      armed_overload_ == 0) {
    arm_overload_timer(manager_->engine().now() +
                       options_.codel_interval_seconds);
  }
  maybe_dispatch();
  co_await done->wait();
  co_return done->peek();
}

int OffloadScheduler::in_system(std::string_view tenant) const {
  int count = 0;
  for (const Pending& pending : queue_) {
    if (pending.options.tenant == tenant) ++count;
  }
  if (auto it = running_per_tenant_.find(std::string(tenant));
      it != running_per_tenant_.end()) {
    count += it->second;
  }
  return count;
}

void OffloadScheduler::reject(Pending& pending,
                              tools::SchedulerEventInfo::Kind kind,
                              std::string_view reason, Status status) {
  pending.queue_span.tag("reject", std::string(reason));
  pending.queue_span.end();
  emit_event(kind, pending, manager_->engine().now() - pending.enqueue_time,
             reason);
  if (pending.done != nullptr && !pending.done->ready()) {
    pending.done->set(std::move(status));
  }
}

bool OffloadScheduler::preempt_for_priority(int priority) {
  // Victim: strictly lower priority than the arrival, lowest first,
  // youngest on ties — never running work, only queued.
  size_t victim = queue_.size();
  for (size_t i = 0; i < queue_.size(); ++i) {
    if (queue_[i].options.priority >= priority) continue;
    if (victim == queue_.size() ||
        queue_[i].options.priority < queue_[victim].options.priority ||
        (queue_[i].options.priority == queue_[victim].options.priority &&
         queue_[i].seq > queue_[victim].seq)) {
      victim = i;
    }
  }
  if (victim == queue_.size()) return false;
  Pending evicted = std::move(queue_[victim]);
  queue_.erase(queue_.begin() + static_cast<ptrdiff_t>(victim));
  reject(evicted, tools::SchedulerEventInfo::Kind::kPreempt, "preempt",
         resource_exhausted(str_format(
             "preempted while queued by a priority-%d submission", priority)));
  notify_demand();
  return true;
}

void OffloadScheduler::expire_deadlines() {
  const double now = manager_->engine().now();
  for (size_t i = 0; i < queue_.size();) {
    Pending& pending = queue_[i];
    if (pending.absolute_deadline > 0 && now >= pending.absolute_deadline) {
      Pending expired = std::move(pending);
      queue_.erase(queue_.begin() + static_cast<ptrdiff_t>(i));
      reject(expired, tools::SchedulerEventInfo::Kind::kReject, "deadline",
             deadline_exceeded(str_format(
                 "deadline expired after %.3fs in the admission queue",
                 now - expired.enqueue_time)));
      notify_demand();
      continue;
    }
    ++i;
  }
}

void OffloadScheduler::arm_deadline_timer(double at) {
  if (armed_deadline_ > manager_->engine().now() && armed_deadline_ <= at) {
    return;  // an earlier (or equal) wakeup is already scheduled
  }
  armed_deadline_ = at;
  manager_->engine().schedule_at(at, [this] {
    expire_deadlines();
    maybe_dispatch();
    // Re-arm for the next queued deadline, if any.
    double next = 0;
    for (const Pending& pending : queue_) {
      if (pending.absolute_deadline > 0 &&
          (next == 0 || pending.absolute_deadline < next)) {
        next = pending.absolute_deadline;
      }
    }
    armed_deadline_ = 0;
    if (next > 0) arm_deadline_timer(next);
  });
}

void OffloadScheduler::arm_linger_timer(double at) {
  if (armed_linger_ > manager_->engine().now() && armed_linger_ <= at) return;
  armed_linger_ = at;
  manager_->engine().schedule_at(at, [this] {
    armed_linger_ = 0;
    maybe_dispatch();
  });
}

void OffloadScheduler::arm_overload_timer(double at) {
  armed_overload_ = at;
  manager_->engine().schedule_at(at, [this] { overload_tick(); });
}

void OffloadScheduler::overload_tick() {
  armed_overload_ = 0;
  const double now = manager_->engine().now();
  trace::Metrics& metrics = manager_->tracer().metrics();

  // CoDel signal: the oldest queued entry's sojourn time. Two consecutive
  // above-target readings (>= one full interval of sustained standing
  // queue) enter brownout; one below-target reading exits.
  if (options_.shed) {
    double delay = 0;
    for (const Pending& pending : queue_) {
      delay = std::max(delay, now - pending.enqueue_time);
    }
    metrics.gauge("overload.queue_delay").set(delay);
    const bool above = delay > options_.codel_target_seconds;
    if (above && delay_above_target_ && !brownout_) {
      brownout_ = true;
      metrics.counter("overload.brownouts").add();
      metrics.gauge("overload.brownout").set(1);
      trace::SpanHandle span = manager_->tracer().span("overload.brownout");
      span.tag("state", "enter");
      span.tag("queue_delay", str_format("%.3f", delay));
      span.end();
      log_.warn("brownout: queue delay %.1fs above %.1fs target; shedding",
                delay, options_.codel_target_seconds);
    } else if (!above && brownout_) {
      brownout_ = false;
      metrics.gauge("overload.brownout").set(0);
      trace::SpanHandle span = manager_->tracer().span("overload.brownout");
      span.tag("state", "exit");
      span.end();
      log_.info("brownout over: queue delay back under %.1fs target",
                options_.codel_target_seconds);
    }
    delay_above_target_ = above;
    if (brownout_) {
      shed_queued();
      maybe_dispatch();
    }
  }

  // Rotate the AIMD latency window: last interval's minimum becomes the
  // inflation baseline for the next one, so the floor tracks *recent*
  // uncongested service time instead of an all-time best.
  if (options_.adaptive_concurrency && window_min_ > 0) {
    latency_floor_ = window_min_;
    window_min_ = 0;
  }

  if (!queue_.empty() || active_ > 0 || brownout_) {
    arm_overload_timer(now + options_.codel_interval_seconds);
  }
}

void OffloadScheduler::shed_queued() {
  const double now = manager_->engine().now();
  trace::Metrics& metrics = manager_->tracer().metrics();
  auto shed_one = [&](size_t index) {
    Pending victim = std::move(queue_[index]);
    queue_.erase(queue_.begin() + static_cast<ptrdiff_t>(index));
    metrics.counter("shed.count").add();
    const std::string& cls = victim.options.latency_class;
    metrics
        .counter("shed.count",
                 {{"class", cls.empty() ? std::string("none") : cls}})
        .add();
    reject(victim, tools::SchedulerEventInfo::Kind::kReject, "shed",
           resource_exhausted(str_format(
               "shed during brownout after %.3fs queued (delay target %.1fs)",
               now - victim.enqueue_time, options_.codel_target_seconds)));
    notify_demand();
  };
  if (!options_.shed_classes.empty()) {
    // Drop every queued entry in a sheddable class: brownout exists to
    // keep the protected classes inside their SLO.
    for (size_t i = 0; i < queue_.size();) {
      if (options_.shed_class_matches(queue_[i].options.latency_class)) {
        shed_one(i);
      } else {
        ++i;
      }
    }
    return;
  }
  // No class policy: drop everything that has already outstayed the delay
  // target — by the time it dispatches it would be late anyway, and every
  // serviced stale entry pushes fresh arrivals further past their SLO
  // (the metastable-failure feedback loop). Fresh entries stay queued, so
  // the post-shed delay is bounded by the target. If nothing has aged out
  // yet, apply CoDel-style gentle pressure: one lowest-priority (youngest
  // on ties) entry per tick.
  if (queue_.empty()) return;
  bool aged_out = false;
  for (size_t i = 0; i < queue_.size();) {
    if (now - queue_[i].enqueue_time >= options_.codel_target_seconds) {
      shed_one(i);
      aged_out = true;
    } else {
      ++i;
    }
  }
  if (aged_out || queue_.empty()) return;
  size_t victim = 0;
  for (size_t i = 1; i < queue_.size(); ++i) {
    if (queue_[i].options.priority < queue_[victim].options.priority ||
        (queue_[i].options.priority == queue_[victim].options.priority &&
         queue_[i].seq > queue_[victim].seq)) {
      victim = i;
    }
  }
  shed_one(victim);
}

OffloadScheduler::Footprint OffloadScheduler::footprint_of(
    const TargetRegion& region) {
  Footprint fp;
  for (const MappedVar& var : region.vars) {
    if (var.host_ptr == nullptr) continue;
    const bool writes = var.maps_from() || !var.maps_to();
    // map(alloc:) counts as a write: the region materializes device-side
    // state at that address and a later download may land there, so
    // overlapping it with a concurrent reader would race.
    if (var.maps_to()) fp.reads.push_back(var.host_ptr);
    if (writes) fp.writes.push_back(var.host_ptr);
  }
  return fp;
}

bool OffloadScheduler::conflicts(const Footprint& a, const Footprint& b) {
  auto intersects = [](const std::vector<const void*>& x,
                       const std::vector<const void*>& y) {
    for (const void* p : x) {
      if (std::find(y.begin(), y.end(), p) != y.end()) return true;
    }
    return false;
  };
  return intersects(a.writes, b.reads) ||   // RAW
         intersects(a.reads, b.writes) ||   // WAR
         intersects(a.writes, b.writes);    // WAW
}

std::vector<size_t> OffloadScheduler::ready_indices() {
  // One linear pass in submission order: an entry is ready when none of its
  // pointers conflict with anything in flight or anything older (program
  // order wins for conflicts). The running read/write sets make this
  // O(queue * vars) instead of the pairwise O(queue^2) scan — at
  // service scale (thousands queued) that difference is the ballgame.
  std::unordered_set<const void*> written;
  std::unordered_set<const void*> read;
  for (const auto& [seq, footprint] : active_footprints_) {
    written.insert(footprint.writes.begin(), footprint.writes.end());
    read.insert(footprint.reads.begin(), footprint.reads.end());
  }
  std::vector<size_t> ready;
  ready.reserve(queue_.size());
  for (size_t i = 0; i < queue_.size(); ++i) {
    Pending& pending = queue_[i];
    bool blocked = false;
    for (const void* p : pending.footprint.reads) {
      if (written.contains(p)) { blocked = true; break; }  // RAW
    }
    if (!blocked) {
      for (const void* p : pending.footprint.writes) {
        if (written.contains(p) || read.contains(p)) {  // WAW / WAR
          blocked = true;
          break;
        }
      }
    }
    if (!blocked) {
      ready.push_back(i);
    } else if (!pending.dep_tagged) {
      pending.dep_tagged = true;
      pending.queue_span.tag("dep_wait", "true");
      manager_->tracer().metrics().counter("scheduler.dep_blocked").add();
    }
    written.insert(pending.footprint.writes.begin(),
                   pending.footprint.writes.end());
    read.insert(pending.footprint.reads.begin(), pending.footprint.reads.end());
  }
  return ready;
}

void OffloadScheduler::maybe_dispatch() {
  expire_deadlines();
  // The gate re-reads concurrency_limit() every round: an AIMD cut between
  // dispatches takes effect immediately.
  while (!queue_.empty() &&
         (concurrency_limit() <= 0 || active_ < concurrency_limit())) {
    std::vector<size_t> ready = ready_indices();
    // Nothing dependence-free: wait for an in-flight offload to retire
    // (run_one/run_batch re-enter maybe_dispatch after erasing footprints).
    if (ready.empty()) return;
    if (!dispatch_round(ready)) return;  // everything ready is lingering
  }
}

bool OffloadScheduler::dispatch_round(const std::vector<size_t>& ready) {
  const double now = manager_->engine().now();
  std::vector<size_t> candidates = ready;
  while (!candidates.empty()) {
    const size_t index = pick_next(candidates);
    const Pending& head = queue_[index];
    if (!head.batch_key.empty()) {
      // Collect the head's compatible peers (seq order == queue order).
      std::vector<size_t> group;
      for (size_t i : ready) {
        if (queue_[i].batch_key == head.batch_key) group.push_back(i);
        if (static_cast<int>(group.size()) >= options_.batch_regions) break;
      }
      if (group.size() >= 2) {
        dispatch_batch(group);
        return true;
      }
      if (options_.batch_linger_seconds > 0 &&
          now < head.enqueue_time + options_.batch_linger_seconds &&
          (head.absolute_deadline == 0 ||
           head.enqueue_time + options_.batch_linger_seconds <
               head.absolute_deadline)) {
        // Lone eligible region: hold for peers, bounded by the linger
        // budget (and never past its own deadline).
        arm_linger_timer(head.enqueue_time + options_.batch_linger_seconds);
        candidates.erase(
            std::find(candidates.begin(), candidates.end(), index));
        continue;
      }
    }
    dispatch_single(index);
    return true;
  }
  return false;
}

size_t OffloadScheduler::pick_next(const std::vector<size_t>& ready) const {
  // Priority first; then (FAIR) the tenant with the lowest weighted share
  // of in-flight offloads; then earliest deadline (EDF, none = +inf); then
  // submission order.
  size_t best = ready.front();
  bool have_best = false;
  int best_priority = 0;
  double best_share = 0;
  double best_deadline = 0;
  auto deadline_of = [](const Pending& pending) {
    return pending.absolute_deadline > 0
               ? pending.absolute_deadline
               : std::numeric_limits<double>::infinity();
  };
  for (size_t i : ready) {
    const Pending& pending = queue_[i];
    double share = 0;
    if (options_.mode == SchedulerOptions::Mode::kFair) {
      auto it = running_per_tenant_.find(pending.options.tenant);
      const int running = it == running_per_tenant_.end() ? 0 : it->second;
      share = static_cast<double>(running) /
              options_.weight_for(pending.options.tenant);
    }
    const int priority = pending.options.priority;
    const double deadline = deadline_of(pending);
    bool wins = false;
    if (!have_best) {
      wins = true;
    } else if (priority != best_priority) {
      wins = priority > best_priority;
    } else if (share != best_share) {
      wins = share < best_share;
    } else if (deadline != best_deadline) {
      wins = deadline < best_deadline;
    }  // else: ready is seq-ascending, first hit stays
    if (wins) {
      have_best = true;
      best = i;
      best_priority = priority;
      best_share = share;
      best_deadline = deadline;
    }
  }
  return best;
}

void OffloadScheduler::dispatch_single(size_t index) {
  Pending pending = std::move(queue_[index]);
  queue_.erase(queue_.begin() + static_cast<ptrdiff_t>(index));
  pending.dispatch_time = manager_->engine().now();
  pending.dispatched_in_brownout = brownout_;
  // Stamp the owning tenant on the region so the device plugin can charge
  // per-tenant retry budgets (batch members keep per-slice attribution).
  pending.region.tenant = pending.options.tenant;
  pending.queue_span.end();
  ++active_;
  ++running_per_tenant_[pending.options.tenant];
  active_footprints_[pending.seq] = pending.footprint;
  emit_event(tools::SchedulerEventInfo::Kind::kDispatch, pending,
             pending.dispatch_time - pending.enqueue_time);
  notify_demand();
  (void)manager_->engine().spawn(run_one(std::move(pending)));
}

void OffloadScheduler::dispatch_batch(const std::vector<size_t>& indices) {
  const uint64_t batch_id = ++next_batch_id_;
  const double now = manager_->engine().now();
  const std::string batch_name =
      str_format("batch#%llu", static_cast<unsigned long long>(batch_id));
  std::vector<Pending> members;
  members.reserve(indices.size());
  // indices are ascending (ready order); erase from the back so earlier
  // indices stay valid.
  for (size_t k = indices.size(); k-- > 0;) {
    members.push_back(std::move(queue_[indices[k]]));
    queue_.erase(queue_.begin() + static_cast<ptrdiff_t>(indices[k]));
  }
  std::reverse(members.begin(), members.end());  // back to seq order

  // The batch occupies ONE concurrency slot (it is one Spark job), but
  // counts per member for tenant shares and quotas.
  ++active_;
  Footprint combined;
  for (Pending& member : members) {
    member.dispatch_time = now;
    member.dispatched_in_brownout = brownout_;
    member.queue_span.tag("batch", batch_name);
    member.queue_span.end();
    ++running_per_tenant_[member.options.tenant];
    combined.reads.insert(combined.reads.end(), member.footprint.reads.begin(),
                          member.footprint.reads.end());
    combined.writes.insert(combined.writes.end(),
                           member.footprint.writes.begin(),
                           member.footprint.writes.end());
  }
  active_footprints_[members.front().seq] = std::move(combined);
  for (const Pending& member : members) {
    emit_event(tools::SchedulerEventInfo::Kind::kDispatch, member,
               now - member.enqueue_time, {}, batch_id,
               static_cast<int>(members.size()));
  }
  manager_->tracer().metrics().counter("batch.jobs").add();
  manager_->tracer().metrics().counter("batch.regions").add(members.size());
  for (const Pending& member : members) {
    manager_->tracer()
        .metrics()
        .counter("batch.regions", {{"tenant", member.options.tenant}})
        .add();
  }
  notify_demand();
  (void)manager_->engine().spawn(run_batch(std::move(members), batch_id));
}

void OffloadScheduler::observe_service_time(double seconds) {
  constexpr double kAlpha = 0.25;
  service_ewma_ = service_ewma_ == 0
                      ? seconds
                      : (1 - kAlpha) * service_ewma_ + kAlpha * seconds;
  if (!options_.adaptive_concurrency) return;
  // AIMD against the windowed minimum: a completion slower than
  // kInflation x the recent uncongested floor means the fleet is saturated
  // or degraded — cut the limit multiplicatively; otherwise creep it up by
  // ~1 per "round" of in-flight completions. The threshold tolerates the
  // ~2x natural spread of healthy service times (stragglers, gray stalls
  // the hedges absorb) so fair weather never trips it.
  constexpr double kInflation = 3.0;
  constexpr double kDecrease = 0.7;
  if (window_min_ == 0 || seconds < window_min_) window_min_ = seconds;
  if (latency_floor_ == 0) latency_floor_ = seconds;
  if (seconds > kInflation * latency_floor_) {
    limit_ = std::max(static_cast<double>(options_.limit_min),
                      limit_ * kDecrease);
  } else {
    limit_ = std::min(static_cast<double>(options_.limit_max),
                      limit_ + 1.0 / std::max(1.0, limit_));
  }
  manager_->tracer().metrics().gauge("overload.limit").set(limit_);
}

void OffloadScheduler::finish_entry(Pending& pending, uint64_t batch_id,
                                    int batch_size) {
  if (auto it = running_per_tenant_.find(pending.options.tenant);
      it != running_per_tenant_.end() && it->second > 0) {
    --it->second;
  }
  emit_event(tools::SchedulerEventInfo::Kind::kComplete, pending,
             pending.dispatch_time - pending.enqueue_time, {}, batch_id,
             batch_size);
}

sim::Co<void> OffloadScheduler::run_one(Pending pending) {
  const std::string region_name = pending.region.name;
  auto result = co_await manager_->offload(std::move(pending.region),
                                           pending.options.device_id);
  pending.region.name = region_name;  // restore for the completion event
  active_ = std::max(0, active_ - 1);
  active_footprints_.erase(pending.seq);
  observe_service_time(manager_->engine().now() - pending.dispatch_time);
  finish_entry(pending, 0, 1);
  notify_demand();
  if (result.ok() && pending.dispatched_in_brownout) result->degraded = true;
  pending.done->set(std::move(result));
  maybe_dispatch();
}

sim::Co<void> OffloadScheduler::run_batch(std::vector<Pending> members,
                                          uint64_t batch_id) {
  const uint64_t leader_seq = members.front().seq;
  const int device_id = members.front().options.device_id;
  const std::string batch_name =
      str_format("batch#%llu", static_cast<unsigned long long>(batch_id));

  // Root `batch` span, sibling of the merged job's `offload` root (matched
  // by the analyzer through the region tag), carrying the membership.
  trace::SpanHandle span = manager_->tracer().span("batch");
  span.tag("region", batch_name);
  span.tag("id", std::to_string(batch_id));
  span.tag("members", std::to_string(members.size()));
  {
    std::string tenants;
    std::string regions;
    uint64_t bytes = 0;
    for (const Pending& member : members) {
      if (!tenants.empty()) tenants += ",";
      tenants += member.options.tenant;
      if (!regions.empty()) regions += ",";
      regions += member.region.name;
      bytes += batch::mapped_bytes(member.region);
    }
    span.tag("tenants", tenants);
    span.tag("regions", regions);
    span.tag("bytes", std::to_string(bytes));
  }

  std::vector<batch::Member> batch_members;
  batch_members.reserve(members.size());
  for (Pending& member : members) {
    const std::string name = member.region.name;
    batch_members.push_back({std::move(member.region), member.options.tenant});
    member.region.name = name;  // keep the name for completion events
  }
  auto plan = batch::BatchPlan::coalesce(std::move(batch_members), batch_id);

  // Not a ternary: `co_await` inside a conditional expression corrupts the
  // coroutine frame under GCC (temporaries spanning the suspend point).
  Result<OffloadReport> outcome{
      Status(StatusCode::kInternal, "batch never ran")};
  if (plan.ok()) {
    outcome = co_await manager_->offload(plan->merged_region(), device_id);
  } else {
    outcome = Result<OffloadReport>(plan.status());
  }
  if (outcome.ok() && plan.ok()) plan->scatter();
  span.tag("ok", outcome.ok() ? "true" : "false");
  span.end();

  active_ = std::max(0, active_ - 1);
  active_footprints_.erase(leader_seq);
  observe_service_time(manager_->engine().now() -
                       members.front().dispatch_time);
  for (Pending& member : members) {
    finish_entry(member, batch_id, static_cast<int>(members.size()));
  }
  notify_demand();
  for (Pending& member : members) {
    if (outcome.ok() && plan.ok()) {
      OffloadReport report = plan->member_report(*outcome);
      if (member.dispatched_in_brownout) report.degraded = true;
      member.done->set(std::move(report));
    } else {
      member.done->set(outcome.status());
    }
  }
  maybe_dispatch();
}

void OffloadScheduler::emit_event(tools::SchedulerEventInfo::Kind kind,
                                  const Pending& pending, double wait_seconds,
                                  std::string_view reason, uint64_t batch_id,
                                  int batch_size) {
  tools::SchedulerEventInfo info;
  info.kind = kind;
  info.region = pending.region.name;
  info.tenant = pending.options.tenant;
  info.queue_depth = queue_.size();
  info.active = active_;
  info.wait_seconds = wait_seconds;
  info.priority = pending.options.priority;
  info.deadline_seconds = pending.options.deadline_seconds;
  info.latency_class = pending.options.latency_class;
  info.reason = reason;
  info.batch_id = batch_id;
  info.batch_size = batch_size;
  info.tenant_in_system = in_system(pending.options.tenant);
  info.tenant_quota = options_.quota_for(pending.options.tenant);
  info.time = manager_->engine().now();
  if (kind == tools::SchedulerEventInfo::Kind::kComplete &&
      pending.absolute_deadline > 0) {
    info.deadline_met = info.time <= pending.absolute_deadline;
  }
  manager_->tracer().tools().emit_scheduler_event(info);
}

void OffloadScheduler::notify_demand() {
  if (demand_listener_) {
    demand_listener_(static_cast<int>(queue_.size()), active_);
  }
}

}  // namespace ompcloud::omptarget
