#include "omptarget/scheduler.h"

#include <algorithm>

#include "support/strings.h"

namespace ompcloud::omptarget {

std::string_view to_string(SchedulerOptions::Mode mode) {
  switch (mode) {
    case SchedulerOptions::Mode::kFifo: return "fifo";
    case SchedulerOptions::Mode::kFair: return "fair";
  }
  return "?";
}

double SchedulerOptions::weight_for(std::string_view tenant) const {
  for (const auto& [name, weight] : tenant_weights) {
    if (name == tenant) return weight > 0 ? weight : default_weight;
  }
  return default_weight > 0 ? default_weight : 1.0;
}

Result<SchedulerOptions> SchedulerOptions::from_config(const Config& config) {
  SchedulerOptions options;
  std::string mode = config.get_string("scheduler.mode", "fifo");
  if (mode == "fifo" || mode == "FIFO") {
    options.mode = Mode::kFifo;
  } else if (mode == "fair" || mode == "FAIR") {
    options.mode = Mode::kFair;
  } else {
    return invalid_argument("scheduler.mode must be fifo|fair, got '" + mode +
                            "'");
  }
  options.max_concurrent = static_cast<int>(
      config.get_int("scheduler.max-concurrent", options.max_concurrent));
  options.default_weight =
      config.get_double("scheduler.default-weight", options.default_weight);
  if (options.default_weight <= 0) {
    return invalid_argument("scheduler.default-weight must be positive");
  }
  // Per-tenant pool weights: one `weight.<tenant>` key per pool.
  for (const std::string& key : config.keys_in("scheduler")) {
    constexpr std::string_view kPrefix = "weight.";
    if (key.size() <= kPrefix.size() || key.compare(0, kPrefix.size(), kPrefix) != 0) {
      continue;
    }
    std::string tenant = key.substr(kPrefix.size());
    double weight = config.get_double("scheduler." + key, 0);
    if (weight <= 0) {
      return invalid_argument("scheduler." + key + " must be positive");
    }
    options.tenant_weights.emplace_back(std::move(tenant), weight);
  }
  return options;
}

OffloadScheduler::OffloadScheduler(DeviceManager& manager,
                                   SchedulerOptions options)
    : manager_(&manager), options_(std::move(options)) {}

sim::Co<Result<OffloadReport>> OffloadScheduler::submit(TargetRegion region,
                                                        int device_id,
                                                        std::string tenant) {
  Pending pending;
  pending.seq = ++next_seq_;
  pending.region = std::move(region);
  pending.device_id = device_id;
  pending.tenant = tenant.empty() ? "default" : std::move(tenant);
  pending.enqueue_time = manager_->engine().now();
  pending.queue_span = manager_->tracer().span("sched.queue");
  pending.queue_span.tag("region", pending.region.name);
  pending.queue_span.tag("tenant", pending.tenant);
  pending.footprint = footprint_of(pending.region);
  pending.done = std::make_shared<sim::Future<Result<OffloadReport>>>(
      manager_->engine());
  auto done = pending.done;
  queue_.push_back(std::move(pending));
  emit_event(tools::SchedulerEventInfo::Kind::kAdmit, queue_.back(), 0);
  notify_demand();
  maybe_dispatch();
  co_await done->wait();
  co_return done->peek();
}

OffloadScheduler::Footprint OffloadScheduler::footprint_of(
    const TargetRegion& region) {
  Footprint fp;
  for (const MappedVar& var : region.vars) {
    if (var.host_ptr == nullptr) continue;
    const bool writes = var.maps_from() || !var.maps_to();
    // map(alloc:) counts as a write: the region materializes device-side
    // state at that address and a later download may land there, so
    // overlapping it with a concurrent reader would race.
    if (var.maps_to()) fp.reads.push_back(var.host_ptr);
    if (writes) fp.writes.push_back(var.host_ptr);
  }
  return fp;
}

bool OffloadScheduler::conflicts(const Footprint& a, const Footprint& b) {
  auto intersects = [](const std::vector<const void*>& x,
                       const std::vector<const void*>& y) {
    for (const void* p : x) {
      if (std::find(y.begin(), y.end(), p) != y.end()) return true;
    }
    return false;
  };
  return intersects(a.writes, b.reads) ||   // RAW
         intersects(a.reads, b.writes) ||   // WAR
         intersects(a.writes, b.writes);    // WAW
}

bool OffloadScheduler::blocked_by_dependence(size_t index) const {
  const Pending& pending = queue_[index];
  for (const auto& [seq, footprint] : active_footprints_) {
    if (conflicts(footprint, pending.footprint)) return true;
  }
  // Conflicting regions dispatch in submission order: an entry also waits
  // for every older queued entry it conflicts with (queue_ is seq-ascending
  // within a dispatch round because dispatched entries are erased).
  for (size_t i = 0; i < queue_.size(); ++i) {
    if (queue_[i].seq >= pending.seq) continue;
    if (conflicts(queue_[i].footprint, pending.footprint)) return true;
  }
  return false;
}

void OffloadScheduler::maybe_dispatch() {
  while (!queue_.empty() &&
         (options_.max_concurrent <= 0 || active_ < options_.max_concurrent)) {
    std::vector<size_t> ready;
    ready.reserve(queue_.size());
    for (size_t i = 0; i < queue_.size(); ++i) {
      if (!blocked_by_dependence(i)) {
        ready.push_back(i);
        continue;
      }
      Pending& blocked = queue_[i];
      if (!blocked.dep_tagged) {
        blocked.dep_tagged = true;
        blocked.queue_span.tag("dep_wait", "true");
        manager_->tracer().metrics().counter("scheduler.dep_blocked").add();
      }
    }
    // Nothing dependence-free: wait for an in-flight offload to retire
    // (run_one re-enters maybe_dispatch after erasing its footprint).
    if (ready.empty()) return;
    const size_t index = pick_next(ready);
    Pending pending = std::move(queue_[index]);
    queue_.erase(queue_.begin() + static_cast<ptrdiff_t>(index));
    pending.dispatch_time = manager_->engine().now();
    pending.queue_span.end();
    ++active_;
    ++running_per_tenant_[pending.tenant];
    active_footprints_[pending.seq] = pending.footprint;
    emit_event(tools::SchedulerEventInfo::Kind::kDispatch, pending,
               pending.dispatch_time - pending.enqueue_time);
    notify_demand();
    (void)manager_->engine().spawn(run_one(std::move(pending)));
  }
}

size_t OffloadScheduler::pick_next(const std::vector<size_t>& ready) const {
  if (options_.mode == SchedulerOptions::Mode::kFifo) return ready.front();
  // FAIR: dispatch the tenant with the lowest weighted share of in-flight
  // offloads; within a tenant, oldest submission first (queue_ holds
  // ascending seq, so the first ready hit per tenant is its oldest).
  size_t best = ready.front();
  double best_share = 0;
  bool have_best = false;
  for (size_t i : ready) {
    const Pending& pending = queue_[i];
    auto it = running_per_tenant_.find(pending.tenant);
    const int running = it == running_per_tenant_.end() ? 0 : it->second;
    const double share =
        static_cast<double>(running) / options_.weight_for(pending.tenant);
    if (!have_best || share < best_share) {
      have_best = true;
      best_share = share;
      best = i;
    }
  }
  return best;
}

sim::Co<void> OffloadScheduler::run_one(Pending pending) {
  const std::string region_name = pending.region.name;
  auto result =
      co_await manager_->offload(std::move(pending.region), pending.device_id);
  pending.region.name = region_name;  // restore for the completion event
  active_ = std::max(0, active_ - 1);
  active_footprints_.erase(pending.seq);
  if (auto it = running_per_tenant_.find(pending.tenant);
      it != running_per_tenant_.end() && it->second > 0) {
    --it->second;
  }
  emit_event(tools::SchedulerEventInfo::Kind::kComplete, pending,
             pending.dispatch_time - pending.enqueue_time);
  notify_demand();
  pending.done->set(std::move(result));
  maybe_dispatch();
}

void OffloadScheduler::emit_event(tools::SchedulerEventInfo::Kind kind,
                                  const Pending& pending,
                                  double wait_seconds) {
  tools::SchedulerEventInfo info;
  info.kind = kind;
  info.region = pending.region.name;
  info.tenant = pending.tenant;
  info.queue_depth = queue_.size();
  info.active = active_;
  info.wait_seconds = wait_seconds;
  info.time = manager_->engine().now();
  manager_->tracer().tools().emit_scheduler_event(info);
}

void OffloadScheduler::notify_demand() {
  if (demand_listener_) {
    demand_listener_(static_cast<int>(queue_.size()), active_);
  }
}

}  // namespace ompcloud::omptarget
