// Multi-tenant offload admission scheduler.
//
// Concurrent target regions (`nowait` / `execute_async`) do not hit the
// device directly: they enter an admission queue and are dispatched under a
// FIFO or FAIR policy, mirroring Spark's job scheduler
// (`spark.scheduler.mode`) one level up — at the offload granularity. FAIR
// mode implements weighted fair sharing across tenants (per-tenant pools):
// the next region dispatched belongs to the tenant with the lowest
// running-count/weight share, so a heavy tenant cannot starve a light one.
//
// Every queue transition emits an `on_scheduler_event` tool callback and
// the queued interval is recorded as a `sched.queue` span, so queue wait is
// first-class in traces and the derived metrics
// (scheduler.admitted/dispatched/completed, scheduler.queue_wait_seconds).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "omptarget/device.h"
#include "sim/engine.h"
#include "support/config.h"
#include "support/status.h"
#include "trace/tracer.h"

namespace ompcloud::omptarget {

struct SchedulerOptions {
  enum class Mode { kFifo, kFair };
  Mode mode = Mode::kFifo;
  /// Offloads allowed in flight at once; 0 = unbounded (admission queue
  /// never holds anything back).
  int max_concurrent = 0;
  /// Weight for tenants without an explicit `scheduler.weight.<tenant>`.
  double default_weight = 1.0;
  std::vector<std::pair<std::string, double>> tenant_weights;

  [[nodiscard]] double weight_for(std::string_view tenant) const;

  /// Reads the `[scheduler]` section: scheduler.mode (fifo|fair, the
  /// spark.scheduler.mode spellings FIFO|FAIR also accepted),
  /// scheduler.max-concurrent, scheduler.default-weight, and one
  /// scheduler.weight.<tenant> entry per tenant pool.
  static Result<SchedulerOptions> from_config(const Config& config);
};

std::string_view to_string(SchedulerOptions::Mode mode);

class OffloadScheduler {
 public:
  OffloadScheduler(DeviceManager& manager, SchedulerOptions options);

  [[nodiscard]] const SchedulerOptions& options() const { return options_; }
  [[nodiscard]] int active() const { return active_; }
  [[nodiscard]] size_t queue_depth() const { return queue_.size(); }

  /// Admits the region, waits for dispatch under the configured policy,
  /// runs it through DeviceManager::offload, and returns its report.
  [[nodiscard]] sim::Co<Result<OffloadReport>> submit(
      TargetRegion region, int device_id, std::string tenant = "default");

  /// Observer for demand changes (queued, active counts after each
  /// transition). The elastic path wires this to
  /// `Autoscaler::set_queued_offloads` so admission pressure drives
  /// scale-up before dispatch.
  void set_demand_listener(std::function<void(int queued, int active)> fn) {
    demand_listener_ = std::move(fn);
  }

 private:
  struct Pending {
    uint64_t seq = 0;
    TargetRegion region;
    int device_id = -1;
    std::string tenant;
    double enqueue_time = 0;
    double dispatch_time = 0;
    trace::SpanHandle queue_span;
    std::shared_ptr<sim::Future<Result<OffloadReport>>> done;
  };

  void maybe_dispatch();
  [[nodiscard]] size_t pick_next() const;
  [[nodiscard]] sim::Co<void> run_one(Pending pending);
  void emit_event(tools::SchedulerEventInfo::Kind kind, const Pending& pending,
                  double wait_seconds);
  void notify_demand();

  DeviceManager* manager_;
  SchedulerOptions options_;
  std::vector<Pending> queue_;
  std::map<std::string, int> running_per_tenant_;
  int active_ = 0;
  uint64_t next_seq_ = 0;
  std::function<void(int, int)> demand_listener_;
};

}  // namespace ompcloud::omptarget
