// Multi-tenant offload admission scheduler.
//
// Concurrent target regions (`nowait` / `execute_async`) do not hit the
// device directly: they enter an admission queue and are dispatched under a
// FIFO or FAIR policy, mirroring Spark's job scheduler
// (`spark.scheduler.mode`) one level up — at the offload granularity. FAIR
// mode implements weighted fair sharing across tenants (per-tenant pools):
// the next region dispatched belongs to the tenant with the lowest
// running-count/weight share, so a heavy tenant cannot starve a light one.
//
// Every queue transition emits an `on_scheduler_event` tool callback and
// the queued interval is recorded as a `sched.queue` span, so queue wait is
// first-class in traces and the derived metrics
// (scheduler.admitted/dispatched/completed, scheduler.queue_wait_seconds).
//
// Dispatch is dependence-aware: each region's mapped variables form a
// read/write footprint (map(to:) reads, map(from:) writes, tofrom both,
// alloc conservatively writes), and a queued region is only eligible when
// it has no RAW/WAR/WAW conflict with any in-flight offload or any older
// queued region. Independent regions still overlap freely; conflicting
// chains serialize in submission order, which is what lets the residency
// layer (data_env.h) hand region N's cloud-resident output straight to
// region N+1. Blocked entries tag their `sched.queue` span with
// `dep_wait` and bump the `scheduler.dep_blocked` counter.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "omptarget/device.h"
#include "sim/engine.h"
#include "support/config.h"
#include "support/status.h"
#include "trace/tracer.h"

namespace ompcloud::omptarget {

struct SchedulerOptions {
  enum class Mode { kFifo, kFair };
  Mode mode = Mode::kFifo;
  /// Offloads allowed in flight at once; 0 = unbounded (admission queue
  /// never holds anything back).
  int max_concurrent = 0;
  /// Weight for tenants without an explicit `scheduler.weight.<tenant>`.
  double default_weight = 1.0;
  std::vector<std::pair<std::string, double>> tenant_weights;

  [[nodiscard]] double weight_for(std::string_view tenant) const;

  /// Reads the `[scheduler]` section: scheduler.mode (fifo|fair, the
  /// spark.scheduler.mode spellings FIFO|FAIR also accepted),
  /// scheduler.max-concurrent, scheduler.default-weight, and one
  /// scheduler.weight.<tenant> entry per tenant pool.
  static Result<SchedulerOptions> from_config(const Config& config);
};

std::string_view to_string(SchedulerOptions::Mode mode);

class OffloadScheduler {
 public:
  OffloadScheduler(DeviceManager& manager, SchedulerOptions options);

  [[nodiscard]] const SchedulerOptions& options() const { return options_; }
  [[nodiscard]] int active() const { return active_; }
  [[nodiscard]] size_t queue_depth() const { return queue_.size(); }

  /// Admits the region, waits for dispatch under the configured policy,
  /// runs it through DeviceManager::offload, and returns its report.
  [[nodiscard]] sim::Co<Result<OffloadReport>> submit(
      TargetRegion region, int device_id, std::string tenant = "default");

  /// Observer for demand changes (queued, active counts after each
  /// transition). The elastic path wires this to
  /// `Autoscaler::set_queued_offloads` so admission pressure drives
  /// scale-up before dispatch.
  void set_demand_listener(std::function<void(int queued, int active)> fn) {
    demand_listener_ = std::move(fn);
  }

 private:
  /// Host buffers a region reads and writes, derived from its map clauses.
  struct Footprint {
    std::vector<const void*> reads;
    std::vector<const void*> writes;
  };

  struct Pending {
    uint64_t seq = 0;
    TargetRegion region;
    int device_id = -1;
    std::string tenant;
    double enqueue_time = 0;
    double dispatch_time = 0;
    trace::SpanHandle queue_span;
    Footprint footprint;
    bool dep_tagged = false;  ///< span already tagged dep_wait once
    std::shared_ptr<sim::Future<Result<OffloadReport>>> done;
  };

  [[nodiscard]] static Footprint footprint_of(const TargetRegion& region);
  [[nodiscard]] static bool conflicts(const Footprint& a, const Footprint& b);
  /// True when queue_[index] has a data conflict with an in-flight offload
  /// or with an older queued entry (program order wins for conflicts).
  [[nodiscard]] bool blocked_by_dependence(size_t index) const;
  void maybe_dispatch();
  [[nodiscard]] size_t pick_next(const std::vector<size_t>& ready) const;
  [[nodiscard]] sim::Co<void> run_one(Pending pending);
  void emit_event(tools::SchedulerEventInfo::Kind kind, const Pending& pending,
                  double wait_seconds);
  void notify_demand();

  DeviceManager* manager_;
  SchedulerOptions options_;
  std::vector<Pending> queue_;
  std::map<uint64_t, Footprint> active_footprints_;
  std::map<std::string, int> running_per_tenant_;
  int active_ = 0;
  uint64_t next_seq_ = 0;
  std::function<void(int, int)> demand_listener_;
};

}  // namespace ompcloud::omptarget
