// Multi-tenant offload admission scheduler — the service layer's core.
//
// Concurrent target regions (`nowait` / `execute_async` / Session::submit)
// do not hit the device directly: they enter an admission queue and are
// dispatched under a FIFO or FAIR policy, mirroring Spark's job scheduler
// (`spark.scheduler.mode`) one level up — at the offload granularity. FAIR
// mode implements weighted fair sharing across tenants (per-tenant pools):
// the next region dispatched belongs to the tenant with the lowest
// running-count/weight share, so a heavy tenant cannot starve a light one.
//
// SLO-aware admission (service layer, see DESIGN.md § Service layer):
//   * per-tenant quotas (`scheduler.quota.<tenant>`) cap queued+running
//     submissions per pool; over-quota submissions fail fast with
//     kResourceExhausted;
//   * deadline tags (`SubmitOptions::deadline_seconds`) reject at admission
//     with kDeadlineExceeded when the budget is already below the observed
//     service-time EWMA, and expire queued entries whose absolute deadline
//     passes before dispatch;
//   * dispatch order is priority-first, then FAIR share, then earliest
//     deadline (EDF) — so deadlines order work *within* a tenant's fair
//     share rather than letting one tenant front-run the fleet;
//   * when the queue is full (`scheduler.queue-limit`), a higher-priority
//     arrival preempts the lowest-priority *queued* (never running) entry,
//     which fails with kResourceExhausted.
//
// Micro-batching: compatible small regions (same kernels/shapes, shared
// broadcast inputs, mapped bytes <= `scheduler.batch-bytes`; see batch.h)
// are coalesced — up to `scheduler.batch-regions` of them — into ONE Spark
// job with per-tenant sub-partitions, amortizing the per-job driver+JNI
// spin-up across tenants the way the paper's Algorithm 1 amortizes it
// across iterations. A lone eligible region lingers up to
// `scheduler.batch-linger` waiting for peers before dispatching solo.
//
// Every queue transition emits an `on_scheduler_event` tool callback and
// the queued interval is recorded as a `sched.queue` span, so queue wait,
// rejects (`reject` tag), and batch membership (`batch` tag) are
// first-class in traces and the derived metrics (scheduler.*, slo.*,
// batch.*).
//
// Dispatch is dependence-aware: each region's mapped variables form a
// read/write footprint (map(to:) reads, map(from:) writes, tofrom both,
// alloc conservatively writes), and a queued region is only eligible when
// it has no RAW/WAR/WAW conflict with any in-flight offload or any older
// queued region. Independent regions still overlap freely; conflicting
// chains serialize in submission order, which is what lets the residency
// layer (data_env.h) hand region N's cloud-resident output straight to
// region N+1. Blocked entries tag their `sched.queue` span with
// `dep_wait` and bump the `scheduler.dep_blocked` counter.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "omptarget/device.h"
#include "sim/engine.h"
#include "support/config.h"
#include "support/log.h"
#include "support/status.h"
#include "trace/tracer.h"

namespace ompcloud::omptarget {

struct SchedulerOptions {
  enum class Mode { kFifo, kFair };
  Mode mode = Mode::kFifo;
  /// Offloads allowed in flight at once; 0 = unbounded (admission queue
  /// never holds anything back). A coalesced batch counts as one.
  int max_concurrent = 0;
  /// Weight for tenants without an explicit `scheduler.weight.<tenant>`.
  double default_weight = 1.0;
  std::vector<std::pair<std::string, double>> tenant_weights;
  /// Queued entries allowed at once; 0 = unbounded. At the limit, a
  /// higher-priority arrival preempts the lowest-priority queued entry;
  /// otherwise the arrival is rejected (kResourceExhausted).
  int queue_limit = 0;
  /// Per-tenant cap on submissions in the system (queued + running);
  /// 0 = unlimited. `scheduler.quota.<tenant>` overrides per pool.
  int default_quota = 0;
  std::vector<std::pair<std::string, int>> tenant_quotas;
  /// Micro-batch coalescing: members per shared job (<= 1 disables).
  int batch_regions = 0;
  /// Mapped-bytes eligibility cap per member region (larger regions always
  /// dispatch solo; batching exists to amortize per-job overhead for
  /// *small* regions).
  uint64_t batch_bytes = 256 * 1024;
  /// How long a lone batch-eligible region waits for compatible peers
  /// before giving up and dispatching solo (0 = never wait).
  double batch_linger_seconds = 0;

  // --- `[overload]` section: adaptive concurrency + brownout shedding ---
  /// AIMD concurrency limiter: replaces the static `max_concurrent` gate.
  /// Each completion whose latency stays near the windowed minimum raises
  /// the limit additively; a completion slower than twice the window
  /// minimum cuts it multiplicatively — so when the fleet loses capacity
  /// the scheduler stops pushing work into the slowdown instead of letting
  /// queue delay (and retry volume downstream) compound.
  bool adaptive_concurrency = false;
  int limit_min = 1;   ///< AIMD lower bound (overload.limit-min)
  int limit_max = 32;  ///< AIMD upper bound + starting limit (limit-max)
  /// CoDel-style queue-delay shedding. While the oldest queued entry has
  /// waited longer than `codel_target_seconds` at two consecutive
  /// `codel_interval_seconds` checks, the scheduler is in *brownout*:
  /// sheddable queued work is rejected with kResourceExhausted and
  /// everything dispatched meanwhile is marked `OffloadReport::degraded`.
  bool shed = false;
  double codel_target_seconds = 5.0;
  double codel_interval_seconds = 10.0;
  /// Latency classes eligible for shedding (comma list in the config).
  /// Empty = shed the lowest-priority queued entry instead, one per check.
  std::vector<std::string> shed_classes;

  [[nodiscard]] bool shed_class_matches(std::string_view latency_class) const;

  [[nodiscard]] double weight_for(std::string_view tenant) const;
  [[nodiscard]] int quota_for(std::string_view tenant) const;

  /// Reads the `[scheduler]` section: scheduler.mode (fifo|fair, the
  /// spark.scheduler.mode spellings FIFO|FAIR also accepted),
  /// scheduler.max-concurrent, scheduler.weight-default (deprecated alias
  /// scheduler.default-weight still accepted, with a WARN), one
  /// scheduler.weight.<tenant> per pool, scheduler.queue-limit,
  /// scheduler.quota-default + scheduler.quota.<tenant>,
  /// scheduler.batch-regions, scheduler.batch-bytes (byte size), and
  /// scheduler.batch-linger (duration) — plus the `[overload]` knobs:
  /// overload.enabled (master switch), overload.adaptive-concurrency,
  /// overload.limit-min/limit-max, overload.shed, overload.codel-target /
  /// codel-interval (durations), overload.shed-classes (comma list).
  static Result<SchedulerOptions> from_config(const Config& config);
};

std::string_view to_string(SchedulerOptions::Mode mode);

class OffloadScheduler {
 public:
  OffloadScheduler(DeviceManager& manager, SchedulerOptions options);

  [[nodiscard]] const SchedulerOptions& options() const { return options_; }
  [[nodiscard]] int active() const { return active_; }
  [[nodiscard]] size_t queue_depth() const { return queue_.size(); }

  /// Admits the region under SLO-aware admission control, waits for
  /// dispatch under the configured policy (possibly coalesced into a
  /// micro-batch), runs it through DeviceManager::offload, and returns its
  /// report.
  ///
  /// Error codes (the service contract, also surfaced by Session::submit):
  ///   * kResourceExhausted — tenant quota exhausted, admission queue full,
  ///     or preempted while queued by a higher-priority submission;
  ///   * kDeadlineExceeded — the deadline cannot be met (below the observed
  ///     service-time estimate at admission, or expired while queued);
  ///   * anything else — the offload itself failed (device + fallback).
  [[nodiscard]] sim::Co<Result<OffloadReport>> submit(TargetRegion region,
                                                      SubmitOptions options);

  /// Deprecated positional-argument spelling. Forwards to the
  /// SubmitOptions overload and logs a deprecation WARN once per scheduler.
  [[deprecated("use submit(region, SubmitOptions)")]]
  [[nodiscard]] sim::Co<Result<OffloadReport>> submit(
      TargetRegion region, int device_id, std::string tenant = "default") {
    warn_deprecated_submit();
    SubmitOptions options;
    options.device_id = device_id;
    options.tenant = tenant.empty() ? "default" : std::move(tenant);
    return submit(std::move(region), std::move(options));
  }

  /// Observer for demand changes (queued, active counts after each
  /// transition). The elastic path wires this to
  /// `Autoscaler::set_queued_offloads` so admission pressure drives
  /// scale-up before dispatch.
  void set_demand_listener(std::function<void(int queued, int active)> fn) {
    demand_listener_ = std::move(fn);
  }

  /// Exponentially weighted average of observed dispatch->complete times,
  /// the admission-time feasibility estimate for deadlines (0 until the
  /// first completion).
  [[nodiscard]] double service_time_estimate() const { return service_ewma_; }

  /// The in-flight cap currently enforced by `maybe_dispatch`: the AIMD
  /// limit when adaptive concurrency is on, else the static
  /// `max_concurrent` (0 = unbounded).
  [[nodiscard]] int concurrency_limit() const;
  /// True while CoDel queue-delay shedding is active (work dispatched now
  /// is reported `degraded`).
  [[nodiscard]] bool brownout() const { return brownout_; }

 private:
  /// Host buffers a region reads and writes, derived from its map clauses.
  struct Footprint {
    std::vector<const void*> reads;
    std::vector<const void*> writes;
  };

  struct Pending {
    uint64_t seq = 0;
    TargetRegion region;
    SubmitOptions options;
    double enqueue_time = 0;
    double dispatch_time = 0;
    double absolute_deadline = 0;  ///< enqueue + deadline_seconds; 0 = none
    trace::SpanHandle queue_span;
    Footprint footprint;
    bool dep_tagged = false;  ///< span already tagged dep_wait once
    /// Device id + structural signature when batch-eligible; empty
    /// otherwise. Equal keys may coalesce into one job.
    std::string batch_key;
    /// Dispatched while shedding was active: the report gets `degraded`.
    bool dispatched_in_brownout = false;
    std::shared_ptr<sim::Future<Result<OffloadReport>>> done;
  };

  [[nodiscard]] static Footprint footprint_of(const TargetRegion& region);
  [[nodiscard]] static bool conflicts(const Footprint& a, const Footprint& b);

  // --- admission ---
  /// Submissions a tenant has in the system (queued + running).
  [[nodiscard]] int in_system(std::string_view tenant) const;
  /// Fails `pending` with `status`, tagging its span `reject=<reason>` and
  /// emitting the matching scheduler event.
  void reject(Pending& pending, tools::SchedulerEventInfo::Kind kind,
              std::string_view reason, Status status);
  /// Queue-full path: evicts the lowest-priority queued entry strictly
  /// below `priority` (youngest on ties). Returns false when no entry
  /// qualifies (the arrival is rejected instead).
  bool preempt_for_priority(int priority);
  /// Rejects queued entries whose absolute deadline has passed.
  void expire_deadlines();
  void arm_deadline_timer(double at);
  void arm_linger_timer(double at);

  // --- overload control ---
  /// Periodic CoDel check while overload control is on and work exists:
  /// flips brownout on/off from the oldest queued entry's sojourn time,
  /// sheds while in brownout, and rotates the AIMD latency window.
  void overload_tick();
  void arm_overload_timer(double at);
  /// Rejects sheddable queued entries with kResourceExhausted
  /// (`reject=shed`): every entry in a shed class, or — with no classes
  /// configured — the single lowest-priority (youngest on ties) entry.
  void shed_queued();

  // --- dispatch ---
  /// Queue indices with no RAW/WAR/WAW conflict against in-flight offloads
  /// or older queued entries (one linear pass; tags newly blocked spans).
  [[nodiscard]] std::vector<size_t> ready_indices();
  void maybe_dispatch();
  /// True when something was dispatched (queue indices are invalidated).
  bool dispatch_round(const std::vector<size_t>& ready);
  [[nodiscard]] size_t pick_next(const std::vector<size_t>& ready) const;
  void dispatch_single(size_t index);
  void dispatch_batch(const std::vector<size_t>& indices);
  [[nodiscard]] sim::Co<void> run_one(Pending pending);
  [[nodiscard]] sim::Co<void> run_batch(std::vector<Pending> members,
                                        uint64_t batch_id);
  /// Completion bookkeeping shared by solo and batch paths.
  void finish_entry(Pending& pending, uint64_t batch_id, int batch_size);
  void observe_service_time(double seconds);

  void emit_event(tools::SchedulerEventInfo::Kind kind, const Pending& pending,
                  double wait_seconds, std::string_view reason = {},
                  uint64_t batch_id = 0, int batch_size = 1);
  void notify_demand();
  void warn_deprecated_submit();

  DeviceManager* manager_;
  SchedulerOptions options_;
  std::vector<Pending> queue_;  ///< ascending seq
  std::map<uint64_t, Footprint> active_footprints_;
  std::map<std::string, int> running_per_tenant_;
  int active_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t next_batch_id_ = 0;
  double service_ewma_ = 0;
  double armed_deadline_ = 0;  ///< earliest scheduled expiry wakeup (0 none)
  double armed_linger_ = 0;    ///< earliest scheduled linger wakeup (0 none)
  // --- overload-control state (untouched while `[overload]` is off) ---
  double limit_ = 0;           ///< AIMD concurrency limit (starts limit_max)
  double latency_floor_ = 0;   ///< previous interval's minimum service time
  double window_min_ = 0;      ///< current interval's minimum (0 = none yet)
  bool brownout_ = false;
  bool delay_above_target_ = false;  ///< last tick saw delay > CoDel target
  double armed_overload_ = 0;  ///< scheduled CoDel wakeup (0 = none)
  bool warned_deprecated_ = false;
  std::function<void(int, int)> demand_listener_;
  Logger log_{"scheduler"};
};

}  // namespace ompcloud::omptarget
