#include "omptarget/service.h"

namespace ompcloud {

Result<ServiceOptions> ServiceOptions::from_config(const Config& config) {
  ServiceOptions options;
  options.default_device = static_cast<int>(
      config.get_int("service.default-device", options.default_device));
  if (options.default_device < 0) {
    return invalid_argument("service.default-device must be >= 0");
  }
  options.default_tenant =
      config.get_string("service.default-tenant", options.default_tenant);
  if (options.default_tenant.empty()) options.default_tenant = "default";
  options.default_priority = static_cast<int>(
      config.get_int("service.default-priority", options.default_priority));
  options.default_deadline_seconds = config.get_duration(
      "service.default-deadline", options.default_deadline_seconds);
  if (options.default_deadline_seconds < 0) {
    return invalid_argument("service.default-deadline must be >= 0");
  }
  options.default_latency_class =
      config.get_string("service.default-class", options.default_latency_class);
  OC_ASSIGN_OR_RETURN(options.scheduler,
                      omptarget::SchedulerOptions::from_config(config));
  return options;
}

Service::Service(omptarget::DeviceManager& devices, ServiceOptions options)
    : devices_(&devices), options_(std::move(options)) {
  scheduler_ = &devices_->configure_scheduler(options_.scheduler);
}

Session Service::session(std::string tenant) {
  if (tenant.empty()) tenant = options_.default_tenant;
  devices_->tracer()
      .metrics()
      .counter("service.sessions", {{"tenant", tenant}})
      .add();
  return Session(this, std::move(tenant));
}

omptarget::SubmitOptions Session::resolve(
    omptarget::SubmitOptions options) const {
  const ServiceOptions& defaults = service_->options();
  options.tenant = tenant_;
  if (options.device_id < 0) options.device_id = defaults.default_device;
  if (options.priority == 0) options.priority = defaults.default_priority;
  if (options.deadline_seconds == 0) {
    options.deadline_seconds = defaults.default_deadline_seconds;
  }
  if (options.latency_class.empty()) {
    options.latency_class = defaults.default_latency_class;
  }
  return options;
}

sim::Co<Result<omptarget::OffloadReport>> Session::submit(
    omptarget::TargetRegion region) {
  omptarget::SubmitOptions options;
  options.device_id = -1;  // resolve() -> service.default-device
  co_return co_await submit(std::move(region), std::move(options));
}

sim::Co<Result<omptarget::OffloadReport>> Session::submit(
    omptarget::TargetRegion region, omptarget::SubmitOptions options) {
  co_return co_await service_->devices().offload_queued(
      std::move(region), resolve(std::move(options)));
}

Result<omptarget::OffloadReport> Session::Async::result() const {
  if (!result_->has_value()) {
    return failed_precondition(
        "submission still in flight: await completion() before result()");
  }
  return **result_;
}

Session::Async Session::submit_nowait(omptarget::TargetRegion region,
                                      omptarget::SubmitOptions options) {
  options.nowait = true;
  Async handle;
  handle.completion_ = service_->devices().engine().spawn(
      [](omptarget::DeviceManager* devices, omptarget::TargetRegion region,
         omptarget::SubmitOptions resolved,
         std::shared_ptr<std::optional<Result<omptarget::OffloadReport>>> out)
          -> sim::Co<void> {
        *out = co_await devices->offload_queued(std::move(region),
                                                std::move(resolved));
      }(&service_->devices(), std::move(region), resolve(std::move(options)),
        handle.result_));
  return handle;
}

}  // namespace ompcloud
