// Offload-as-a-service client API: the front door for programs (and
// simulated tenants) that treat the cloud device as a shared service rather
// than a private accelerator.
//
//   ompcloud::Service service(devices, options);   // installs the scheduler
//   ompcloud::Session session = service.session("tenant-a");
//   auto result = co_await session.submit(region);            // blocking
//   auto async = session.submit_nowait(region2);              // nowait
//   ...
//   co_await async.completion();
//
// A `Session` is one tenant's handle: every submission through it is
// attributed to the session's tenant pool (quota, FAIR weight) and filled
// with the service-level defaults (`[service]` config section) for device,
// priority, deadline, and latency class — callers override per submission
// via `SubmitOptions`.
//
// `Session::submit` returns `Result<OffloadReport>` with the service error
// contract (see OffloadScheduler::submit):
//   * kResourceExhausted — the tenant's quota is exhausted, the admission
//     queue is full, or the submission was preempted while queued;
//   * kDeadlineExceeded — the requested deadline cannot be met (below the
//     observed service-time estimate at admission) or expired while queued;
//   * anything else — the offload itself failed on the device and the host
//     fallback.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "omptarget/device.h"
#include "omptarget/scheduler.h"
#include "support/config.h"
#include "support/status.h"

namespace ompcloud {

/// The `[service]` section plus the embedded `[scheduler]` options.
struct ServiceOptions {
  /// Device submissions target when the caller leaves
  /// `SubmitOptions::device_id` at -1 (and the default used by the
  /// no-options `Session::submit(region)` overload).
  int default_device = 0;
  /// Tenant for sessions opened without a name.
  std::string default_tenant = "default";
  int default_priority = 0;
  /// Default SLO budget in seconds (0 = none).
  double default_deadline_seconds = 0;
  std::string default_latency_class;
  omptarget::SchedulerOptions scheduler;

  /// Reads `service.default-device`, `service.default-tenant`,
  /// `service.default-priority`, `service.default-deadline` (duration), and
  /// `service.default-class`, then `SchedulerOptions::from_config` for the
  /// `[scheduler]` section.
  static Result<ServiceOptions> from_config(const Config& config);
};

class Session;

/// Owns the service-level defaults and installs the admission scheduler on
/// the device manager. One Service per simulation; many Sessions per
/// Service.
class Service {
 public:
  /// Installs (replacing) the admission scheduler configured by
  /// `options.scheduler` on `devices`.
  Service(omptarget::DeviceManager& devices, ServiceOptions options = {});

  /// Opens a session for `tenant` (empty = the service default tenant).
  [[nodiscard]] Session session(std::string tenant = {});

  [[nodiscard]] const ServiceOptions& options() const { return options_; }
  [[nodiscard]] omptarget::DeviceManager& devices() { return *devices_; }
  [[nodiscard]] omptarget::OffloadScheduler& scheduler() {
    return *scheduler_;
  }

 private:
  omptarget::DeviceManager* devices_;
  ServiceOptions options_;
  omptarget::OffloadScheduler* scheduler_;  ///< owned by the device manager
};

/// One tenant's submission handle. Copyable; all copies share the tenant
/// attribution. Sessions borrow the Service, which must outlive them.
class Session {
 public:
  [[nodiscard]] const std::string& tenant() const { return tenant_; }

  /// Submits with the service defaults (device, priority, deadline, class).
  [[nodiscard]] sim::Co<Result<omptarget::OffloadReport>> submit(
      omptarget::TargetRegion region);

  /// Submits with explicit options. The session's tenant always wins;
  /// `device_id == -1`, `priority == 0`, `deadline_seconds == 0`, and an
  /// empty `latency_class` fall back to the service defaults.
  [[nodiscard]] sim::Co<Result<omptarget::OffloadReport>> submit(
      omptarget::TargetRegion region, omptarget::SubmitOptions options);

  /// `nowait` handle: `completion()` is awaitable, `result()` is safe to
  /// call at any time (kFailedPrecondition before completion).
  class Async {
   public:
    [[nodiscard]] bool done() const { return result_->has_value(); }
    [[nodiscard]] sim::Completion completion() const { return completion_; }
    [[nodiscard]] Result<omptarget::OffloadReport> result() const;

   private:
    friend class Session;
    sim::Completion completion_;
    std::shared_ptr<std::optional<Result<omptarget::OffloadReport>>> result_ =
        std::make_shared<std::optional<Result<omptarget::OffloadReport>>>();
  };

  /// `#pragma omp target nowait` as a service call: starts the submission
  /// and returns immediately. The region is moved into the in-flight task,
  /// so the caller's host buffers (not the region object) must stay alive.
  [[nodiscard]] Async submit_nowait(omptarget::TargetRegion region,
                                    omptarget::SubmitOptions options = {});

 private:
  friend class Service;
  Session(Service* service, std::string tenant)
      : service_(service), tenant_(std::move(tenant)) {}

  /// Stamps the session tenant and fills unset fields from the defaults.
  [[nodiscard]] omptarget::SubmitOptions resolve(
      omptarget::SubmitOptions options) const;

  Service* service_;
  std::string tenant_;
};

}  // namespace ompcloud
