#include "sim/engine.h"

namespace ompcloud::sim {

namespace detail {

// ---------------------------------------------------------------------------
// FrameArena
// ---------------------------------------------------------------------------

namespace {

// 64-byte size classes up to 4 KiB cover every coroutine frame in the
// repository; larger (or over-aligned) requests fall through to the heap.
constexpr std::size_t kGranule = 64;
constexpr std::size_t kClasses = 64;  // kGranule * kClasses = 4 KiB
constexpr std::size_t kHeader = alignof(std::max_align_t);
constexpr std::size_t kSlabBytes = 64 * 1024;
constexpr uint32_t kHeapClass = 0xffffffffu;

struct FreeBlock {
  FreeBlock* next;
};

struct ArenaState {
  FreeBlock* free_lists[kClasses] = {};
  std::vector<std::unique_ptr<unsigned char[]>> slabs;
  unsigned char* bump = nullptr;
  unsigned char* bump_end = nullptr;
  FrameArenaStats stats;
};

ArenaState& arena() {
  thread_local ArenaState state;
  return state;
}

}  // namespace

void* FrameArena::allocate(std::size_t bytes) {
  ArenaState& a = arena();
  const std::size_t total = bytes + kHeader;
  const std::size_t cls = (total + kGranule - 1) / kGranule;  // 1-based
  if (cls > kClasses) {
    ++a.stats.oversize;
    auto* raw = static_cast<unsigned char*>(::operator new(total));
    *reinterpret_cast<uint32_t*>(raw) = kHeapClass;
    return raw + kHeader;
  }
  if (FreeBlock* block = a.free_lists[cls - 1]; block != nullptr) {
    a.free_lists[cls - 1] = block->next;
    ++a.stats.reused;
    auto* raw = reinterpret_cast<unsigned char*>(block);
    *reinterpret_cast<uint32_t*>(raw) = static_cast<uint32_t>(cls);
    return raw + kHeader;
  }
  const std::size_t need = cls * kGranule;
  if (static_cast<std::size_t>(a.bump_end - a.bump) < need) {
    // new[] default-initializes (no zeroing); blocks are 64-byte multiples
    // off a 16-aligned base, so headers and payloads stay aligned.
    a.slabs.emplace_back(new unsigned char[kSlabBytes]);
    a.bump = a.slabs.back().get();
    // operator new[] guarantees max_align_t alignment for char arrays of
    // this size; keep the bump granule-aligned so headers stay aligned.
    a.bump_end = a.bump + kSlabBytes;
    a.stats.slab_bytes += kSlabBytes;
  }
  unsigned char* raw = a.bump;
  a.bump += need;
  ++a.stats.fresh;
  *reinterpret_cast<uint32_t*>(raw) = static_cast<uint32_t>(cls);
  return raw + kHeader;
}

void FrameArena::release(void* p) noexcept {
  if (p == nullptr) return;
  auto* raw = static_cast<unsigned char*>(p) - kHeader;
  const uint32_t cls = *reinterpret_cast<uint32_t*>(raw);
  if (cls == kHeapClass) {
    ::operator delete(raw);
    return;
  }
  ArenaState& a = arena();
  auto* block = reinterpret_cast<FreeBlock*>(raw);
  block->next = a.free_lists[cls - 1];
  a.free_lists[cls - 1] = block;
  ++a.stats.released;
}

FrameArenaStats FrameArena::stats() { return arena().stats; }

void FrameArena::reset_stats() { arena().stats = FrameArenaStats{}; }

// ---------------------------------------------------------------------------
// EventPool
// ---------------------------------------------------------------------------

EventNode* EventPool::refill() {
  slabs_.emplace_back(new EventNode[kSlabNodes]);  // default-init, no memset
  ++stats_.slabs;
  bump_ = slabs_.back().get();
  bump_end_ = bump_ + kSlabNodes;
  ++stats_.fresh;
  return bump_++;
}

// ---------------------------------------------------------------------------
// CalendarQueue
// ---------------------------------------------------------------------------

CalendarQueue::CalendarQueue()
    : buckets_(kMinBuckets), mask_(kMinBuckets - 1) {}

uint64_t CalendarQueue::vbucket(SimTime at) const {
  const double q = at / width_;
  // Clamp non-finite / astronomically distant times into one far bucket;
  // ordering stays exact because buckets sort by (at, seq) internally and
  // the dequeue fallback compares full keys.
  constexpr double kMaxVb = 9.0e18;  // < 2^63, exactly representable
  if (!(q < kMaxVb)) return static_cast<uint64_t>(kMaxVb);
  return q <= 0 ? 0 : static_cast<uint64_t>(q);
}

void CalendarQueue::link(EventNode* node) {
  Bucket& b = buckets_[node->vb & mask_];
  if (b.head == nullptr) {
    node->next = nullptr;
    b.head = b.tail = node;
    return;
  }
  EventNode* tail = b.tail;
  if (tail->at < node->at || (tail->at == node->at && tail->seq < node->seq)) {
    // Fast path: newly scheduled events carry the largest seq, so equal or
    // later timestamps always append (same-time floods are O(1) FIFO).
    node->next = nullptr;
    tail->next = node;
    b.tail = node;
    return;
  }
  EventNode** slot = &b.head;
  while (*slot != nullptr &&
         ((*slot)->at < node->at ||
          ((*slot)->at == node->at && (*slot)->seq < node->seq))) {
    slot = &(*slot)->next;
    ++scan_steps_;
  }
  node->next = *slot;
  *slot = node;
}

void CalendarQueue::insert(EventNode* node, SimTime now) {
  if (size_ + 1 > buckets_.size() * 2 && buckets_.size() < kMaxBuckets) {
    // Heavy mid-list insert traffic means many distinct timestamps share a
    // bucket: the width is too coarse, so take the sorting rebuild that
    // retunes it. Otherwise keep the width and split buckets in one pass.
    if (scan_steps_ > size_ * 2) {
      rebuild(std::min(buckets_.size() * kGrowFactor, kMaxBuckets), now);
    } else {
      grow();
    }
  }
  node->vb = vbucket(node->at);
  // Keep the sweep invariant cur_vb_ <= min pending vb: jump forward to
  // this event when the queue was empty (so the next pop never sweeps or
  // falls back after a long time skip), and never let an earlier-but-legal
  // insert land behind the dequeue position afterwards.
  if (size_ == 0) {
    cur_vb_ = node->vb;
  } else if (node->vb < cur_vb_) {
    cur_vb_ = node->vb;
  }
  link(node);
  ++size_;
}

void CalendarQueue::unlink_head(Bucket& b) noexcept {
  b.head = b.head->next;
  if (b.head == nullptr) b.tail = nullptr;
  --size_;
}

void CalendarQueue::maybe_shrink(SimTime at) {
  if (buckets_.size() > kMinBuckets && size_ < buckets_.size() / 16) {
    // Frequent sparse-fallback dequeues mean events sit many empty calendar
    // years apart: the width is too fine, so take the sorting rebuild that
    // retunes it. Otherwise keep the width and merge bucket pairs.
    if (sparse_pops_ > 64) {
      rebuild(buckets_.size() / 2, at);
    } else {
      shrink();
    }
  }
}

EventNode* CalendarQueue::pop_min(SimTime limit) {
  if (size_ == 0) return nullptr;
  const std::size_t nb = buckets_.size();
  // Calendar sweep: visit virtual buckets in order from the dequeue
  // position. The first head that belongs to its bucket's current "year"
  // is the global (at, seq) minimum (equal timestamps share one bucket).
  uint64_t vb = cur_vb_;
  for (std::size_t i = 0; i < nb; ++i, ++vb) {
    Bucket& b = buckets_[vb & mask_];
    EventNode* head = b.head;
    if (head != nullptr && head->vb == vb) {
      if (head->at > limit) return nullptr;
      cur_vb_ = vb;
      unlink_head(b);
      maybe_shrink(head->at);
      return head;
    }
  }
  // Sparse schedule: the next event is more than one calendar year ahead.
  // Find the minimum head directly and jump the dequeue position to it.
  ++direct_scans_;
  ++sparse_pops_;
  Bucket* best = nullptr;
  for (Bucket& b : buckets_) {
    if (b.head == nullptr) continue;
    if (best == nullptr || b.head->at < best->head->at ||
        (b.head->at == best->head->at && b.head->seq < best->head->seq)) {
      best = &b;
    }
  }
  EventNode* head = best->head;
  if (head->at > limit) return nullptr;
  cur_vb_ = head->vb;
  unlink_head(*best);
  maybe_shrink(head->at);
  return head;
}

EventNode* CalendarQueue::pop_any() {
  if (size_ == 0) return nullptr;
  for (Bucket& b : buckets_) {
    if (b.head == nullptr) continue;
    EventNode* head = b.head;
    b.head = head->next;
    if (b.head == nullptr) b.tail = nullptr;
    --size_;
    return head;
  }
  return nullptr;
}

void CalendarQueue::grow() {
  // Multiply the bucket count without sorting: a node with virtual bucket
  // vb moves from index (vb & old_mask) to (vb & new_mask), and since the
  // new mask keeps every old mask bit, each new bucket receives nodes from
  // exactly one old bucket, in their original (already sorted) order. One
  // splitting pass per old bucket with tail appends preserves the
  // per-bucket sort. Width is unchanged. Growing 8x at a time keeps the
  // total relink work at ~1.14 moves per event even for a queue that grows
  // monotonically from cold.
  const std::size_t old_nb = buckets_.size();
  buckets_.resize(std::min(old_nb * kGrowFactor, kMaxBuckets));
  mask_ = buckets_.size() - 1;
  for (std::size_t i = 0; i < old_nb; ++i) {
    EventNode* n = buckets_[i].head;
    buckets_[i] = Bucket{};
    while (n != nullptr) {
      EventNode* next = n->next;
      Bucket& dst = buckets_[n->vb & mask_];
      n->next = nullptr;
      if (dst.tail == nullptr) {
        dst.head = dst.tail = n;
      } else {
        dst.tail->next = n;
        dst.tail = n;
      }
      n = next;
    }
  }
  ++resizes_;
  scan_steps_ = 0;
  sparse_pops_ = 0;
}

void CalendarQueue::shrink() {
  // Halve the bucket count without sorting: old buckets i and i + new_nb
  // both map to new bucket i, so merge their (sorted) lists pairwise by
  // (at, seq). Width is unchanged.
  const std::size_t new_nb = buckets_.size() / 2;
  for (std::size_t i = 0; i < new_nb; ++i) {
    EventNode* a = buckets_[i].head;
    EventNode* b = buckets_[i + new_nb].head;
    Bucket merged{};
    auto append = [&merged](EventNode* n) {
      if (merged.tail == nullptr) {
        merged.head = merged.tail = n;
      } else {
        merged.tail->next = n;
        merged.tail = n;
      }
    };
    while (a != nullptr && b != nullptr) {
      if (a->at < b->at || (a->at == b->at && a->seq < b->seq)) {
        EventNode* n = a;
        a = a->next;
        append(n);
      } else {
        EventNode* n = b;
        b = b->next;
        append(n);
      }
    }
    // Splice the remaining sorted tail in one step (its last node already
    // terminates the list, so no per-node walk-and-append is needed for
    // linkage — only to find the new tail).
    EventNode* rest = a != nullptr ? a : b;
    if (rest != nullptr) {
      if (merged.tail == nullptr) {
        merged.head = rest;
      } else {
        merged.tail->next = rest;
      }
      while (rest->next != nullptr) rest = rest->next;
      merged.tail = rest;
    }
    buckets_[i] = merged;
  }
  buckets_.resize(new_nb);
  mask_ = new_nb - 1;
  ++resizes_;
  scan_steps_ = 0;
  sparse_pops_ = 0;
}

void CalendarQueue::rebuild(std::size_t buckets, SimTime now) {
  std::vector<EventNode*> nodes;
  nodes.reserve(size_);
  for (Bucket& b : buckets_) {
    for (EventNode* n = b.head; n != nullptr; n = n->next) nodes.push_back(n);
  }
  std::sort(nodes.begin(), nodes.end(), [](EventNode* a, EventNode* b) {
    return a->at != b->at ? a->at < b->at : a->seq < b->seq;
  });

  // Retune the bucket width to the mean positive gap between consecutive
  // pending events, so distinct timestamps tend to land in distinct
  // buckets (equal timestamps append in O(1) regardless). Tuning affects
  // only speed: ordering is exact whatever the width.
  double gap_sum = 0;
  uint64_t gaps = 0;
  for (std::size_t i = 1; i < nodes.size() && gaps < 256; ++i) {
    const double gap = nodes[i]->at - nodes[i - 1]->at;
    if (gap > 0) {
      gap_sum += gap;
      ++gaps;
    }
  }
  if (gaps > 0) {
    width_ = std::clamp(gap_sum / static_cast<double>(gaps), 1e-9, 1e15);
  }

  buckets_.assign(buckets, Bucket{});
  mask_ = buckets - 1;
  cur_vb_ = vbucket(now);
  for (EventNode* n : nodes) {
    n->vb = vbucket(n->at);
    link(n);  // sorted order makes every link a tail append
  }
  ++resizes_;
  scan_steps_ = 0;
  sparse_pops_ = 0;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

bool Task::FinalAwaiter::await_ready() noexcept {
  // Runs as the last act of the coroutine body. Mark completion, wake
  // waiters through the scheduler (keeping strict event ordering), and
  // return true so the frame is destroyed immediately.
  state->done = true;
  if (state->engine) {
    if (state->error) state->engine->record_error(state->error);
    for (auto waiter : state->waiters) state->engine->resume_now(waiter);
  }
  state->waiters.clear();
  return true;
}

Engine::~Engine() {
  // Destroy the callables of never-dispatched events (their captures may
  // own resources); node memory is reclaimed with the pool's slabs.
  while (detail::EventNode* node = queue_.pop_any()) {
    node->fn()->~EventFn();
  }
}

void Engine::dispatch(detail::EventNode* node) {
  now_ = node->at;
  ++events_processed_;
  struct Recycle {
    Engine* engine;
    detail::EventNode* node;
    ~Recycle() {
      node->fn()->~EventFn();
      engine->pool_.release(node);
    }
  } recycle{this, node};
  node->fn()->invoke();
}

void Engine::note_spawn(const std::shared_ptr<detail::TaskState>& state) {
  if (spawned_.size() >= spawn_compact_at_) {
    // Amortized cleanup keeps unfinished_tasks() exact while bounding the
    // registry (and its allocations) by the number of live tasks.
    std::erase_if(spawned_, [](const std::weak_ptr<detail::TaskState>& weak) {
      auto locked = weak.lock();
      return !locked || locked->done;
    });
    spawn_compact_at_ = std::max<size_t>(64, spawned_.size() * 2);
  }
  spawned_.push_back(state);
}

Completion Engine::spawn(Task task) {
  auto handle = std::exchange(task.handle_, nullptr);
  auto state = task.state_;
  state->engine = this;
  note_spawn(state);
  schedule_at(now_, detail::ResumeFn{handle});
  return Completion(std::move(state));
}

Completion Engine::spawn(Co<void> co) {
  // Wrap the lazy coroutine in a Task so it gets a completion record.
  auto wrapper = [](Co<void> inner) -> Task { co_await std::move(inner); };
  return spawn(wrapper(std::move(co)));
}

SimTime Engine::run() {
  constexpr SimTime kForever = std::numeric_limits<SimTime>::infinity();
  while (detail::EventNode* node = queue_.pop_min(kForever)) {
    dispatch(node);
  }
  if (!task_errors_.empty()) {
    auto error = task_errors_.front();
    task_errors_.clear();
    std::rethrow_exception(error);
  }
  return now_;
}

bool Engine::run_until(SimTime t) {
  while (detail::EventNode* node = queue_.pop_min(t)) {
    dispatch(node);
  }
  if (queue_.size() == 0) {
    now_ = std::max(now_, t);
    return false;
  }
  now_ = t;
  return true;
}

size_t Engine::unfinished_tasks() const {
  size_t count = 0;
  for (const auto& weak : spawned_) {
    if (auto state = weak.lock(); state && !state->done) ++count;
  }
  return count;
}

void Event::trigger() {
  triggered_ = true;
  for (auto waiter : waiters_) engine_->resume_now(waiter);
  waiters_.clear();
}

void Semaphore::release() {
  if (!waiters_.empty()) {
    // Hand the permit straight to the oldest waiter (FIFO, no barging).
    engine_->resume_now(waiters_.pop_front());
  } else {
    ++available_;
  }
}

Co<void> all(std::vector<Completion> parts) {
  for (auto& part : parts) co_await part;
}

namespace {

/// Shared state of an any(): the gate plus the winning index.
struct AnyState {
  Event event;
  size_t winner;
  explicit AnyState(Engine& engine)
      : event(engine), winner(static_cast<size_t>(-1)) {}
};

Co<void> any_watcher(Completion part, std::shared_ptr<AnyState> state,
                     size_t index) {
  try {
    co_await part;
  } catch (...) {
    // A failed racer still "finishes first"; the caller inspects it.
  }
  if (state->winner == static_cast<size_t>(-1)) {
    state->winner = index;
    state->event.trigger();
  }
}

}  // namespace

Co<size_t> any(Engine& engine, std::vector<Completion> parts) {
  assert(!parts.empty() && "any() requires at least one completion");
  for (size_t i = 0; i < parts.size(); ++i) {
    if (parts[i].done()) co_return i;
  }
  auto state = std::allocate_shared<AnyState>(
      detail::ArenaAllocator<AnyState>{}, engine);
  for (size_t i = 0; i < parts.size(); ++i) {
    engine.spawn(any_watcher(parts[i], state, i));
  }
  co_await state->event;
  co_return state->winner;
}

}  // namespace ompcloud::sim
