#include "sim/engine.h"

namespace ompcloud::sim {

bool Task::FinalAwaiter::await_ready() noexcept {
  // Runs as the last act of the coroutine body. Mark completion, wake
  // waiters through the scheduler (keeping strict event ordering), and
  // return true so the frame is destroyed immediately.
  state->done = true;
  if (state->engine) {
    if (state->error) state->engine->record_error(state->error);
    for (auto waiter : state->waiters) state->engine->resume_now(waiter);
  }
  state->waiters.clear();
  return true;
}

void Engine::schedule_at(SimTime at, std::function<void()> fn) {
  assert(at >= now_ && "cannot schedule events in the past");
  queue_.push(ScheduledEvent{at < now_ ? now_ : at, next_seq_++, std::move(fn)});
}

Completion Engine::spawn(Task task) {
  auto handle = std::exchange(task.handle_, nullptr);
  auto state = task.state_;
  state->engine = this;
  spawned_.push_back(state);
  schedule_at(now_, [handle] { handle.resume(); });
  return Completion(std::move(state));
}

Completion Engine::spawn(Co<void> co) {
  // Wrap the lazy coroutine in a Task so it gets a completion record.
  auto wrapper = [](Co<void> inner) -> Task { co_await std::move(inner); };
  return spawn(wrapper(std::move(co)));
}

SimTime Engine::run() {
  while (!queue_.empty()) {
    // priority_queue::top is const; move via const_cast is safe because we
    // pop immediately after.
    auto& top = const_cast<ScheduledEvent&>(queue_.top());
    SimTime at = top.at;
    auto fn = std::move(top.fn);
    queue_.pop();
    now_ = at;
    ++events_processed_;
    fn();
  }
  if (!task_errors_.empty()) {
    auto error = task_errors_.front();
    task_errors_.clear();
    std::rethrow_exception(error);
  }
  return now_;
}

bool Engine::run_until(SimTime t) {
  while (!queue_.empty() && queue_.top().at <= t) {
    auto& top = const_cast<ScheduledEvent&>(queue_.top());
    SimTime at = top.at;
    auto fn = std::move(top.fn);
    queue_.pop();
    now_ = at;
    ++events_processed_;
    fn();
  }
  if (queue_.empty()) {
    now_ = std::max(now_, t);
    return false;
  }
  now_ = t;
  return true;
}

size_t Engine::unfinished_tasks() const {
  size_t count = 0;
  for (const auto& weak : spawned_) {
    if (auto state = weak.lock(); state && !state->done) ++count;
  }
  return count;
}

void Event::trigger() {
  triggered_ = true;
  for (auto waiter : waiters_) engine_->resume_now(waiter);
  waiters_.clear();
}

void Semaphore::release() {
  if (!waiters_.empty()) {
    // Hand the permit straight to the oldest waiter (FIFO, no barging).
    auto waiter = waiters_.front();
    waiters_.pop_front();
    engine_->resume_now(waiter);
  } else {
    ++available_;
  }
}

Co<void> all(std::vector<Completion> parts) {
  for (auto& part : parts) co_await part;
}

namespace {

/// Shared state of an any(): the gate plus the winning index.
struct AnyState {
  Event event;
  size_t winner;
  explicit AnyState(Engine& engine)
      : event(engine), winner(static_cast<size_t>(-1)) {}
};

Co<void> any_watcher(Completion part, std::shared_ptr<AnyState> state,
                     size_t index) {
  try {
    co_await part;
  } catch (...) {
    // A failed racer still "finishes first"; the caller inspects it.
  }
  if (state->winner == static_cast<size_t>(-1)) {
    state->winner = index;
    state->event.trigger();
  }
}

}  // namespace

Co<size_t> any(Engine& engine, std::vector<Completion> parts) {
  assert(!parts.empty() && "any() requires at least one completion");
  for (size_t i = 0; i < parts.size(); ++i) {
    if (parts[i].done()) co_return i;
  }
  auto state = std::make_shared<AnyState>(engine);
  for (size_t i = 0; i < parts.size(); ++i) {
    engine.spawn(any_watcher(parts[i], state, i));
  }
  co_await state->event;
  co_return state->winner;
}

}  // namespace ompcloud::sim
