// Discrete-event simulation engine with C++20 coroutines.
//
// The paper evaluates on a real 17-node EC2 Spark cluster; this repository
// substitutes a deterministic virtual-time simulation (see DESIGN.md §2).
// Simulated activities — transfers, Spark tasks, SSH round-trips — are
// coroutines that `co_await` time (`Engine::sleep`), resources
// (`Semaphore`, `CpuPool`), or each other (`Completion`, `Event`,
// `Future<T>`). The engine advances a virtual clock through a (time, seq)
// ordered event queue, so every run is bit-reproducible.
//
// Coroutine types:
//   * `Task`   — top-level, fire-and-forget; started with `Engine::spawn`,
//                observed through the returned `Completion` handle.
//   * `Co<T>`  — lazy awaitable subroutine with symmetric transfer; this is
//                what most simulation code returns, composed with co_await.
#pragma once

#include <algorithm>
#include <cassert>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <utility>
#include <vector>

namespace ompcloud::sim {

/// Virtual time in seconds since simulation start.
using SimTime = double;

class Engine;

namespace detail {

/// Shared completion record for a spawned Task.
struct TaskState {
  Engine* engine = nullptr;
  bool done = false;
  std::exception_ptr error;
  std::vector<std::coroutine_handle<>> waiters;
};

}  // namespace detail

/// Handle observing a spawned Task: awaitable, and queryable for completion.
/// Awaiting a failed task rethrows its exception.
class Completion {
 public:
  Completion() = default;
  explicit Completion(std::shared_ptr<detail::TaskState> state)
      : state_(std::move(state)) {}

  [[nodiscard]] bool valid() const { return state_ != nullptr; }
  [[nodiscard]] bool done() const { return state_ && state_->done; }
  [[nodiscard]] bool failed() const {
    return state_ && state_->done && state_->error;
  }

  // Awaitable interface.
  [[nodiscard]] bool await_ready() const { return !state_ || state_->done; }
  void await_suspend(std::coroutine_handle<> h) const {
    state_->waiters.push_back(h);
  }
  void await_resume() const {
    if (state_ && state_->error) std::rethrow_exception(state_->error);
  }

 private:
  std::shared_ptr<detail::TaskState> state_;
};

/// Top-level simulation coroutine. Created by coroutine functions returning
/// Task; must be passed to Engine::spawn to run. The frame self-destroys on
/// completion; liveness is tracked through the shared TaskState.
class Task {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct FinalAwaiter {
    std::shared_ptr<detail::TaskState> state;
    bool await_ready() noexcept;  // signals completion; returns true (destroy)
    void await_suspend(std::coroutine_handle<>) noexcept {}
    void await_resume() noexcept {}
  };

  struct promise_type {
    std::shared_ptr<detail::TaskState> state =
        std::make_shared<detail::TaskState>();

    Task get_return_object() {
      return Task(Handle::from_promise(*this), state);
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    FinalAwaiter final_suspend() noexcept { return {state}; }
    void return_void() {}
    void unhandled_exception() { state->error = std::current_exception(); }
  };

  Task(Task&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)),
        state_(std::move(other.state_)) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() {
    // A Task that was never spawned owns its (suspended-at-start) frame.
    if (handle_) handle_.destroy();
  }

 private:
  friend class Engine;
  Task(Handle handle, std::shared_ptr<detail::TaskState> state)
      : handle_(handle), state_(std::move(state)) {}

  Handle handle_;
  std::shared_ptr<detail::TaskState> state_;
};

/// Lazy awaitable coroutine returning T (or void). Starts when awaited and
/// resumes its awaiter by symmetric transfer when it finishes. Exceptions
/// propagate to the awaiter.
template <typename T = void>
class [[nodiscard]] Co;

namespace detail {

template <typename T>
struct CoPromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr error;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename P>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<P> h) noexcept {
      auto continuation = h.promise().continuation;
      return continuation ? continuation : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() { error = std::current_exception(); }
};

}  // namespace detail

template <typename T>
class [[nodiscard]] Co {
 public:
  struct promise_type : detail::CoPromiseBase<T> {
    std::optional<T> value;
    Co get_return_object() {
      return Co(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value = std::move(v); }
  };
  using Handle = std::coroutine_handle<promise_type>;

  Co(Co&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Co(const Co&) = delete;
  ~Co() {
    if (handle_) handle_.destroy();
  }

  /// Awaiter: starts the child coroutine, records the awaiter as its
  /// continuation, and yields its value (rethrowing any exception).
  auto operator co_await() && {
    struct Awaiter {
      Handle handle;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> h) {
        handle.promise().continuation = h;
        return handle;
      }
      T await_resume() {
        if (handle.promise().error) {
          std::rethrow_exception(handle.promise().error);
        }
        return std::move(*handle.promise().value);
      }
    };
    return Awaiter{handle_};
  }

 private:
  friend class Engine;
  explicit Co(Handle handle) : handle_(handle) {}
  Handle handle_;
};

template <>
class [[nodiscard]] Co<void> {
 public:
  struct promise_type : detail::CoPromiseBase<void> {
    Co get_return_object() {
      return Co(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };
  using Handle = std::coroutine_handle<promise_type>;

  Co(Co&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Co(const Co&) = delete;
  ~Co() {
    if (handle_) handle_.destroy();
  }

  auto operator co_await() && {
    struct Awaiter {
      Handle handle;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> h) {
        handle.promise().continuation = h;
        return handle;
      }
      void await_resume() {
        if (handle.promise().error) {
          std::rethrow_exception(handle.promise().error);
        }
      }
    };
    return Awaiter{handle_};
  }

 private:
  friend class Engine;
  explicit Co(Handle handle) : handle_(handle) {}
  Handle handle_;
};

/// The event loop: a (time, sequence)-ordered queue of callbacks plus the
/// virtual clock. Single-threaded by design — determinism is the point.
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules a raw callback at absolute time `at` (>= now; asserts).
  void schedule_at(SimTime at, std::function<void()> fn);

  /// Schedules a raw callback `dt` seconds from now (dt >= 0).
  void schedule_after(SimTime dt, std::function<void()> fn) {
    schedule_at(now_ + dt, std::move(fn));
  }

  /// Schedules resumption of a coroutine handle.
  void resume_at(SimTime at, std::coroutine_handle<> h) {
    schedule_at(at, [h] { h.resume(); });
  }
  void resume_now(std::coroutine_handle<> h) { resume_at(now_, h); }

  /// Starts a top-level Task. The coroutine body begins at the current
  /// virtual time, as a scheduled event (not inline).
  Completion spawn(Task task);

  /// Convenience: spawns a Co<void> by wrapping it in a Task.
  Completion spawn(Co<void> co);

  /// Awaitable: suspends the awaiting coroutine for `dt` virtual seconds.
  [[nodiscard]] auto sleep(SimTime dt) {
    struct Awaiter {
      Engine* engine;
      SimTime dt;
      bool await_ready() const noexcept { return dt <= 0; }
      void await_suspend(std::coroutine_handle<> h) const {
        engine->resume_at(engine->now_ + dt, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, dt};
  }

  /// Runs until the event queue is empty. Returns the final virtual time.
  /// Rethrows the first unhandled Task exception after draining.
  SimTime run();

  /// Processes events with time <= `t`, then sets now to `t` if the queue is
  /// exhausted earlier. Returns true if events remain.
  bool run_until(SimTime t);

  /// Events currently pending (diagnostics).
  [[nodiscard]] size_t queue_size() const { return queue_.size(); }

  /// Total events processed (diagnostics / micro-benchmarks).
  [[nodiscard]] uint64_t events_processed() const { return events_processed_; }

  /// Number of spawned tasks that have not completed (deadlock diagnosis:
  /// after run() this should be zero in a healthy simulation).
  [[nodiscard]] size_t unfinished_tasks() const;

 private:
  friend struct Task::FinalAwaiter;

  struct ScheduledEvent {
    SimTime at;
    uint64_t seq;
    std::function<void()> fn;
    bool operator>(const ScheduledEvent& other) const {
      return at != other.at ? at > other.at : seq > other.seq;
    }
  };

  void record_error(std::exception_ptr error) {
    task_errors_.push_back(std::move(error));
  }

  std::priority_queue<ScheduledEvent, std::vector<ScheduledEvent>,
                      std::greater<>>
      queue_;
  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  std::vector<std::exception_ptr> task_errors_;
  std::vector<std::weak_ptr<detail::TaskState>> spawned_;
};

/// One-shot (resettable) gate. Awaiting suspends until `trigger()`;
/// awaiting an already-triggered event does not suspend.
class Event {
 public:
  explicit Event(Engine& engine) : engine_(&engine) {}

  void trigger();
  void reset() { triggered_ = false; }
  [[nodiscard]] bool triggered() const { return triggered_; }

  [[nodiscard]] bool await_ready() const noexcept { return triggered_; }
  void await_suspend(std::coroutine_handle<> h) { waiters_.push_back(h); }
  void await_resume() const noexcept {}

 private:
  Engine* engine_;
  bool triggered_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Single-assignment value channel: one producer calls `set`, any number of
/// consumers co_await `get()`.
template <typename T>
class Future {
 public:
  explicit Future(Engine& engine) : event_(engine) {}

  void set(T value) {
    assert(!value_.has_value() && "Future set twice");
    value_ = std::move(value);
    event_.trigger();
  }

  [[nodiscard]] bool ready() const { return value_.has_value(); }

  /// Awaitable returning a const reference to the stored value.
  [[nodiscard]] Co<void> wait() {
    if (!ready()) co_await event_;
  }

  [[nodiscard]] const T& peek() const {
    assert(ready());
    return *value_;
  }

 private:
  Event event_;
  std::optional<T> value_;
};

/// Counting semaphore with FIFO handoff (a releaser passes its permit
/// directly to the oldest waiter, so no barging).
class Semaphore {
 public:
  Semaphore(Engine& engine, size_t permits)
      : engine_(&engine), available_(permits), capacity_(permits) {}

  [[nodiscard]] size_t available() const { return available_; }
  [[nodiscard]] size_t waiting() const { return waiters_.size(); }
  [[nodiscard]] size_t capacity() const { return capacity_; }
  /// Permits currently held (direct-handoff releases keep holders counted).
  [[nodiscard]] size_t in_use() const {
    return available_ >= capacity_ ? 0 : capacity_ - available_;
  }
  /// High-water mark of `in_use()` over the semaphore's lifetime — lets
  /// instrumentation cross-check concurrency bounds (e.g. that the
  /// transfer-thread gate never exceeded its configured width).
  [[nodiscard]] size_t peak_in_use() const { return peak_in_use_; }

  /// Awaitable acquire of one permit.
  [[nodiscard]] auto acquire() {
    struct Awaiter {
      Semaphore* sem;
      bool await_ready() const noexcept {
        if (sem->available_ > 0) {
          --sem->available_;
          sem->peak_in_use_ = std::max(sem->peak_in_use_, sem->in_use());
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) const {
        sem->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  void release();

 private:
  Engine* engine_;
  size_t available_;
  size_t capacity_;
  size_t peak_in_use_ = 0;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// A pool of identical CPU cores. `run(cost)` occupies one core for `cost`
/// virtual seconds (FIFO queueing when all cores are busy). Tracks busy time
/// for utilization reporting.
class CpuPool {
 public:
  CpuPool(Engine& engine, size_t cores)
      : engine_(&engine), sem_(engine, cores), cores_(cores) {}

  [[nodiscard]] size_t cores() const { return cores_; }
  [[nodiscard]] double busy_seconds() const { return busy_seconds_; }

  /// Utilization over [0, horizon]: busy core-seconds / (cores * horizon).
  [[nodiscard]] double utilization(SimTime horizon) const {
    return horizon <= 0 ? 0.0
                        : busy_seconds_ / (static_cast<double>(cores_) * horizon);
  }

  /// Occupies one core for `cost` seconds.
  [[nodiscard]] Co<void> run(double cost) {
    co_await sem_.acquire();
    busy_seconds_ += cost;
    co_await engine_->sleep(cost);
    sem_.release();
  }

 private:
  Engine* engine_;
  Semaphore sem_;
  size_t cores_;
  double busy_seconds_ = 0;
};

/// Awaits every completion in `parts` (they run concurrently; this just
/// joins). Exceptions from failed tasks propagate.
Co<void> all(std::vector<Completion> parts);

/// Awaits the FIRST completion in `parts` and returns its index. A failed
/// task also counts as finished (inspect it afterwards); the losers keep
/// running unobserved. `parts` must not be empty.
Co<size_t> any(Engine& engine, std::vector<Completion> parts);

}  // namespace ompcloud::sim
