// Discrete-event simulation engine with C++20 coroutines.
//
// The paper evaluates on a real 17-node EC2 Spark cluster; this repository
// substitutes a deterministic virtual-time simulation (see DESIGN.md §2).
// Simulated activities — transfers, Spark tasks, SSH round-trips — are
// coroutines that `co_await` time (`Engine::sleep`), resources
// (`Semaphore`, `CpuPool`), or each other (`Completion`, `Event`,
// `Future<T>`). The engine advances a virtual clock through a (time, seq)
// ordered event queue, so every run is bit-reproducible.
//
// The engine is the hot path of every bench and CI job (autoscaler ticks,
// chaos seeds, and 1000-session service runs multiply event counts by
// 100-1000x), so the substrate is built for raw events/sec:
//
//   * Events live in a calendar queue (Brown '88) — an array of bucketed
//     FIFO lists indexed by floor(time / width), O(1) amortized
//     enqueue/dequeue instead of a comparison heap's O(log n). Buckets
//     resize and the width retunes as the pending-event population grows
//     and shrinks; a direct min-scan fallback handles sparse schedules
//     (ladder-queue style), so ordering is exact (time, seq) regardless of
//     tuning. Same-timestamp events FIFO by `seq` everywhere.
//   * Event callbacks are inline small-callables (`detail::EventFn`):
//     captures up to kInlineSize bytes are stored in the event node itself
//     (no std::function, no per-event heap allocation); larger callables
//     are boxed. Move-only callables are supported.
//   * Event nodes come from a slab pool (`detail::EventPool`) and recycle
//     through a free list, so steady-state scheduling performs zero heap
//     allocations.
//   * Coroutine frames (Task, Co<T>) and task completion records allocate
//     from a size-bucketed thread-local free-list arena
//     (`detail::FrameArena`) via custom `promise_type::operator new`, so
//     spawn/join churn recycles frames instead of hitting malloc.
//
// Coroutine types:
//   * `Task`   — top-level, fire-and-forget; started with `Engine::spawn`,
//                observed through the returned `Completion` handle.
//   * `Co<T>`  — lazy awaitable subroutine with symmetric transfer; this is
//                what most simulation code returns, composed with co_await.
#pragma once

#include <algorithm>
#include <cassert>
#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <exception>
#include <limits>
#include <memory>
#include <new>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

namespace ompcloud::sim {

/// Virtual time in seconds since simulation start.
using SimTime = double;

class Engine;

namespace detail {

// ---------------------------------------------------------------------------
// Frame arena: size-bucketed thread-local free lists for coroutine frames
// and other per-task allocations. Blocks are rounded up to 64-byte classes
// and recycled on release; class sizes above the largest bucket fall back
// to the global heap. Thread-local by construction, so the TSan build needs
// no locks and engines on different threads never contend.
// ---------------------------------------------------------------------------

struct FrameArenaStats {
  uint64_t fresh = 0;     ///< blocks carved from a slab (first use)
  uint64_t reused = 0;    ///< blocks served from a free list (recycled)
  uint64_t released = 0;  ///< blocks returned to a free list
  uint64_t oversize = 0;  ///< allocations routed to the global heap
  uint64_t slab_bytes = 0;  ///< total bytes reserved in slabs
};

class FrameArena {
 public:
  /// Allocates `bytes` with max_align_t alignment. Never returns null
  /// (throws std::bad_alloc on exhaustion, like operator new).
  static void* allocate(std::size_t bytes);
  /// Returns a block to its free list (or the heap for oversize blocks).
  static void release(void* p) noexcept;

  /// This thread's arena counters (tests assert recycling through these).
  static FrameArenaStats stats();
  static void reset_stats();
};

/// Minimal std allocator over the FrameArena, for allocate_shared and
/// small per-task containers (waiter lists).
template <typename T>
struct ArenaAllocator {
  using value_type = T;
  ArenaAllocator() = default;
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>&) noexcept {}
  T* allocate(std::size_t n) {
    return static_cast<T*>(FrameArena::allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t) noexcept { FrameArena::release(p); }
};

template <typename T, typename U>
inline bool operator==(const ArenaAllocator<T>&,
                       const ArenaAllocator<U>&) noexcept {
  return true;
}

/// Shared completion record for a spawned Task. Allocated from the arena
/// (allocate_shared), so spawn churn recycles these too.
struct TaskState {
  Engine* engine = nullptr;
  bool done = false;
  std::exception_ptr error;
  std::vector<std::coroutine_handle<>, ArenaAllocator<std::coroutine_handle<>>>
      waiters;
};

// ---------------------------------------------------------------------------
// EventFn: type-erased callable stored inline in the event node. Unlike
// std::function it never heap-allocates for captures up to kInlineSize,
// accepts move-only callables, and is constructed/invoked/destroyed in
// place (no moves on the hot path). Larger callables are boxed on the heap.
// ---------------------------------------------------------------------------

class EventFn {
 public:
  static constexpr std::size_t kInlineSize = 48;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn>>>
  explicit EventFn(F&& fn) {
    if constexpr (sizeof(D) <= kInlineSize &&
                  alignof(D) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      invoke_ = [](void* s) { (*std::launder(reinterpret_cast<D*>(s)))(); };
      if constexpr (std::is_trivially_destructible_v<D>) {
        destroy_ = nullptr;
      } else {
        destroy_ = [](void* s) { std::launder(reinterpret_cast<D*>(s))->~D(); };
      }
    } else {
      D* boxed = new D(std::forward<F>(fn));
      std::memcpy(storage_, &boxed, sizeof(boxed));
      invoke_ = [](void* s) {
        D* p;
        std::memcpy(&p, s, sizeof(p));
        (*p)();
      };
      destroy_ = [](void* s) {
        D* p;
        std::memcpy(&p, s, sizeof(p));
        delete p;
      };
    }
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() {
    if (destroy_ != nullptr) destroy_(storage_);
  }

  void invoke() { invoke_(storage_); }

 private:
  void (*invoke_)(void*);
  void (*destroy_)(void*);
  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
};

/// Trivially-destructible resume thunk (the most common event by far).
struct ResumeFn {
  std::coroutine_handle<> handle;
  void operator()() const { handle.resume(); }
};

/// FIFO of suspended coroutines backed by a vector plus a head index, so
/// steady-state wait/wake churn reuses capacity instead of cycling deque
/// chunks through the heap. The consumed prefix is reclaimed when the
/// queue drains or grows past it (amortized O(1) per operation).
class WaitQueue {
 public:
  [[nodiscard]] bool empty() const { return head_ == items_.size(); }
  [[nodiscard]] std::size_t size() const { return items_.size() - head_; }

  void push_back(std::coroutine_handle<> h) {
    if (head_ > 64 && head_ * 2 >= items_.size()) {
      items_.erase(items_.begin(),
                   items_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
    items_.push_back(h);
  }

  std::coroutine_handle<> pop_front() {
    std::coroutine_handle<> h = items_[head_++];
    if (head_ == items_.size()) {
      items_.clear();  // capacity retained for the next burst
      head_ = 0;
    }
    return h;
  }

 private:
  std::vector<std::coroutine_handle<>> items_;
  std::size_t head_ = 0;
};

/// One scheduled event: intrusive list node + ordering key + inline
/// callable. `vb` caches the virtual calendar bucket (floor(at / width)) so
/// dequeue ordering never re-derives it from floating-point math.
struct EventNode {
  SimTime at;
  uint64_t seq;
  uint64_t vb;
  EventNode* next;
  alignas(std::max_align_t) unsigned char fn_storage[sizeof(EventFn)];

  EventFn* fn() {
    return std::launder(reinterpret_cast<EventFn*>(fn_storage));
  }
};

/// Slab allocator for event nodes: carves fixed-size nodes out of large
/// slabs and recycles released nodes through a free list. Steady-state
/// acquire/release never touches the heap.
class EventPool {
 public:
  struct Stats {
    uint64_t fresh = 0;     ///< nodes carved from slab memory (first use)
    uint64_t recycled = 0;  ///< nodes reused from the free list
    uint64_t slabs = 0;     ///< slabs allocated
  };

  EventPool() = default;
  EventPool(const EventPool&) = delete;
  EventPool& operator=(const EventPool&) = delete;

  EventNode* acquire() {
    if (EventNode* node = free_list_; node != nullptr) {
      free_list_ = node->next;
      ++stats_.recycled;
      return node;
    }
    if (bump_ != bump_end_) {
      ++stats_.fresh;
      return bump_++;
    }
    return refill();
  }

  /// The node's EventFn must already be destroyed.
  void release(EventNode* node) noexcept {
    node->next = free_list_;
    free_list_ = node;
  }

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  static constexpr std::size_t kSlabNodes = 256;

  EventNode* refill();

  EventNode* free_list_ = nullptr;
  EventNode* bump_ = nullptr;
  EventNode* bump_end_ = nullptr;
  std::vector<std::unique_ptr<EventNode[]>> slabs_;
  Stats stats_;
};

/// Calendar queue (array of bucketed sorted FIFO lists, power-of-two sized,
/// auto-resizing, width retuned from observed inter-event gaps) with a
/// ladder-style direct-scan fallback for sparse schedules. Ordering is
/// always exactly (at, seq): equal timestamps share one bucket and FIFO by
/// seq, and the fallback scan compares full keys, so queue tuning can never
/// change simulation outcomes.
class CalendarQueue {
 public:
  struct Stats {
    std::size_t buckets = 0;
    double width = 0;
    uint64_t resizes = 0;
    uint64_t direct_scans = 0;  ///< sparse-schedule fallback dequeues
  };

  CalendarQueue();
  CalendarQueue(const CalendarQueue&) = delete;
  CalendarQueue& operator=(const CalendarQueue&) = delete;

  /// Links `node` (at/seq already set; vb is computed here). `now` anchors
  /// resize retuning; `node->at >= now` is a caller invariant.
  void insert(EventNode* node, SimTime now);

  /// Unlinks and returns the (at, seq)-minimum event if its time is
  /// <= `limit`, else nullptr. The caller owns the returned node.
  EventNode* pop_min(SimTime limit);

  /// Unlinks any remaining node (teardown; no ordering guarantee).
  EventNode* pop_any();

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] Stats stats() const {
    return {buckets_.size(), width_, resizes_, direct_scans_};
  }

 private:
  struct Bucket {
    EventNode* head = nullptr;
    EventNode* tail = nullptr;
  };

  static constexpr std::size_t kMinBuckets = 16;
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 20;
  static constexpr std::size_t kGrowFactor = 8;

  [[nodiscard]] uint64_t vbucket(SimTime at) const;
  void link(EventNode* node);
  void unlink_head(Bucket& b) noexcept;
  void grow();
  void shrink();
  void maybe_shrink(SimTime at);
  void rebuild(std::size_t buckets, SimTime now);

  std::vector<Bucket> buckets_;
  std::size_t mask_;
  double width_ = 1.0;
  uint64_t cur_vb_ = 0;  ///< dequeue position: vbucket of the last pop
  std::size_t size_ = 0;
  uint64_t resizes_ = 0;
  uint64_t direct_scans_ = 0;
  // Width-staleness signals, reset at every resize: nodes traversed by
  // mid-list inserts (width too coarse) and sparse-fallback dequeues
  // (width too fine). Resizes keep the width and just split/merge bucket
  // lists unless these say the width itself is wrong.
  uint64_t scan_steps_ = 0;
  uint64_t sparse_pops_ = 0;
};

}  // namespace detail

/// Handle observing a spawned Task: awaitable, and queryable for completion.
/// Awaiting a failed task rethrows its exception.
class Completion {
 public:
  using State =
      std::shared_ptr<detail::TaskState>;

  Completion() = default;
  explicit Completion(State state) : state_(std::move(state)) {}

  [[nodiscard]] bool valid() const { return state_ != nullptr; }
  [[nodiscard]] bool done() const { return state_ && state_->done; }
  [[nodiscard]] bool failed() const {
    return state_ && state_->done && state_->error;
  }

  // Awaitable interface.
  [[nodiscard]] bool await_ready() const { return !state_ || state_->done; }
  void await_suspend(std::coroutine_handle<> h) const {
    state_->waiters.push_back(h);
  }
  void await_resume() const {
    if (state_ && state_->error) std::rethrow_exception(state_->error);
  }

 private:
  State state_;
};

/// Top-level simulation coroutine. Created by coroutine functions returning
/// Task; must be passed to Engine::spawn to run. The frame self-destroys on
/// completion; liveness is tracked through the shared TaskState.
class Task {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct FinalAwaiter {
    std::shared_ptr<detail::TaskState> state;
    bool await_ready() noexcept;  // signals completion; returns true (destroy)
    void await_suspend(std::coroutine_handle<>) noexcept {}
    void await_resume() noexcept {}
  };

  struct promise_type {
    std::shared_ptr<detail::TaskState> state =
        std::allocate_shared<detail::TaskState>(
            detail::ArenaAllocator<detail::TaskState>{});

    // Frames recycle through the arena instead of malloc.
    static void* operator new(std::size_t size) {
      return detail::FrameArena::allocate(size);
    }
    static void operator delete(void* p, std::size_t) noexcept {
      detail::FrameArena::release(p);
    }
    static void operator delete(void* p) noexcept {
      detail::FrameArena::release(p);
    }

    Task get_return_object() {
      return Task(Handle::from_promise(*this), state);
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    FinalAwaiter final_suspend() noexcept { return {state}; }
    void return_void() {}
    void unhandled_exception() { state->error = std::current_exception(); }
  };

  Task(Task&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)),
        state_(std::move(other.state_)) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() {
    // A Task that was never spawned owns its (suspended-at-start) frame.
    if (handle_) handle_.destroy();
  }

 private:
  friend class Engine;
  Task(Handle handle, std::shared_ptr<detail::TaskState> state)
      : handle_(handle), state_(std::move(state)) {}

  Handle handle_;
  std::shared_ptr<detail::TaskState> state_;
};

/// Lazy awaitable coroutine returning T (or void). Starts when awaited and
/// resumes its awaiter by symmetric transfer when it finishes. Exceptions
/// propagate to the awaiter.
template <typename T = void>
class [[nodiscard]] Co;

namespace detail {

template <typename T>
struct CoPromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr error;

  // Co frames are the highest-churn allocation in the simulator (every
  // transfer block, task, and retry loop is a Co); recycle via the arena.
  static void* operator new(std::size_t size) {
    return FrameArena::allocate(size);
  }
  static void operator delete(void* p, std::size_t) noexcept {
    FrameArena::release(p);
  }
  static void operator delete(void* p) noexcept { FrameArena::release(p); }

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename P>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<P> h) noexcept {
      auto continuation = h.promise().continuation;
      return continuation ? continuation : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() { error = std::current_exception(); }
};

}  // namespace detail

template <typename T>
class [[nodiscard]] Co {
 public:
  struct promise_type : detail::CoPromiseBase<T> {
    std::optional<T> value;
    Co get_return_object() {
      return Co(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value = std::move(v); }
  };
  using Handle = std::coroutine_handle<promise_type>;

  Co(Co&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Co(const Co&) = delete;
  ~Co() {
    if (handle_) handle_.destroy();
  }

  /// Awaiter: starts the child coroutine, records the awaiter as its
  /// continuation, and yields its value (rethrowing any exception).
  auto operator co_await() && {
    struct Awaiter {
      Handle handle;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> h) {
        handle.promise().continuation = h;
        return handle;
      }
      T await_resume() {
        if (handle.promise().error) {
          std::rethrow_exception(handle.promise().error);
        }
        return std::move(*handle.promise().value);
      }
    };
    return Awaiter{handle_};
  }

 private:
  friend class Engine;
  explicit Co(Handle handle) : handle_(handle) {}
  Handle handle_;
};

template <>
class [[nodiscard]] Co<void> {
 public:
  struct promise_type : detail::CoPromiseBase<void> {
    Co get_return_object() {
      return Co(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };
  using Handle = std::coroutine_handle<promise_type>;

  Co(Co&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Co(const Co&) = delete;
  ~Co() {
    if (handle_) handle_.destroy();
  }

  auto operator co_await() && {
    struct Awaiter {
      Handle handle;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> h) {
        handle.promise().continuation = h;
        return handle;
      }
      void await_resume() {
        if (handle.promise().error) {
          std::rethrow_exception(handle.promise().error);
        }
      }
    };
    return Awaiter{handle_};
  }

 private:
  friend class Engine;
  explicit Co(Handle handle) : handle_(handle) {}
  Handle handle_;
};

/// The event loop: a (time, sequence)-ordered calendar queue of inline
/// callbacks plus the virtual clock. Single-threaded by design —
/// determinism is the point.
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  /// Current virtual time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules a callable at absolute time `at` (>= now; asserts). Any
  /// callable — including move-only ones — is accepted; captures up to
  /// detail::EventFn::kInlineSize bytes are stored inline in the slab node
  /// (no heap allocation).
  template <typename Fn>
  void schedule_at(SimTime at, Fn&& fn) {
    assert(at >= now_ && "cannot schedule events in the past");
    detail::EventNode* node = pool_.acquire();
    node->at = at < now_ ? now_ : at;
    node->seq = next_seq_++;
    ::new (static_cast<void*>(node->fn_storage))
        detail::EventFn(std::forward<Fn>(fn));
    queue_.insert(node, now_);
  }

  /// Schedules a callable `dt` seconds from now (dt >= 0).
  template <typename Fn>
  void schedule_after(SimTime dt, Fn&& fn) {
    schedule_at(now_ + dt, std::forward<Fn>(fn));
  }

  /// Schedules resumption of a coroutine handle.
  void resume_at(SimTime at, std::coroutine_handle<> h) {
    schedule_at(at, detail::ResumeFn{h});
  }
  void resume_now(std::coroutine_handle<> h) { resume_at(now_, h); }

  /// Starts a top-level Task. The coroutine body begins at the current
  /// virtual time, as a scheduled event (not inline).
  Completion spawn(Task task);

  /// Convenience: spawns a Co<void> by wrapping it in a Task.
  Completion spawn(Co<void> co);

  /// Awaitable: suspends the awaiting coroutine for `dt` virtual seconds.
  [[nodiscard]] auto sleep(SimTime dt) {
    struct Awaiter {
      Engine* engine;
      SimTime dt;
      bool await_ready() const noexcept { return dt <= 0; }
      void await_suspend(std::coroutine_handle<> h) const {
        engine->resume_at(engine->now_ + dt, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, dt};
  }

  /// Runs until the event queue is empty. Returns the final virtual time.
  /// Rethrows the first unhandled Task exception after draining.
  SimTime run();

  /// Processes events with time <= `t`, then sets now to `t` if the queue is
  /// exhausted earlier. Returns true if events remain.
  bool run_until(SimTime t);

  /// Events currently pending (diagnostics).
  [[nodiscard]] size_t queue_size() const { return queue_.size(); }

  /// Total events processed (diagnostics / micro-benchmarks).
  [[nodiscard]] uint64_t events_processed() const { return events_processed_; }

  /// Number of spawned tasks that have not completed (deadlock diagnosis:
  /// after run() this should be zero in a healthy simulation).
  [[nodiscard]] size_t unfinished_tasks() const;

  /// Slab-pool counters (benchmarks and tests assert node recycling).
  [[nodiscard]] const detail::EventPool::Stats& event_pool_stats() const {
    return pool_.stats();
  }

  /// Calendar-queue shape (bucket count, width, resizes). Tests use the
  /// width to construct events that land exactly on bucket edges.
  [[nodiscard]] detail::CalendarQueue::Stats queue_stats() const {
    return queue_.stats();
  }

 private:
  friend struct Task::FinalAwaiter;

  void record_error(std::exception_ptr error) {
    task_errors_.push_back(std::move(error));
  }

  /// Advances the clock, invokes the event, destroys the callable, and
  /// recycles the node (also on exception).
  void dispatch(detail::EventNode* node);

  void note_spawn(const std::shared_ptr<detail::TaskState>& state);

  detail::CalendarQueue queue_;
  detail::EventPool pool_;
  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  std::vector<std::exception_ptr> task_errors_;
  std::vector<std::weak_ptr<detail::TaskState>> spawned_;
  size_t spawn_compact_at_ = 64;
};

/// One-shot (resettable) gate. Awaiting suspends until `trigger()`;
/// awaiting an already-triggered event does not suspend.
class Event {
 public:
  explicit Event(Engine& engine) : engine_(&engine) {}

  void trigger();
  void reset() { triggered_ = false; }
  [[nodiscard]] bool triggered() const { return triggered_; }

  [[nodiscard]] bool await_ready() const noexcept { return triggered_; }
  void await_suspend(std::coroutine_handle<> h) { waiters_.push_back(h); }
  void await_resume() const noexcept {}

 private:
  Engine* engine_;
  bool triggered_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Single-assignment value channel: one producer calls `set`, any number of
/// consumers co_await `get()`.
template <typename T>
class Future {
 public:
  explicit Future(Engine& engine) : event_(engine) {}

  void set(T value) {
    assert(!value_.has_value() && "Future set twice");
    value_ = std::move(value);
    event_.trigger();
  }

  [[nodiscard]] bool ready() const { return value_.has_value(); }

  /// Awaitable returning a const reference to the stored value.
  [[nodiscard]] Co<void> wait() {
    if (!ready()) co_await event_;
  }

  [[nodiscard]] const T& peek() const {
    assert(ready());
    return *value_;
  }

 private:
  Event event_;
  std::optional<T> value_;
};

/// Counting semaphore with FIFO handoff (a releaser passes its permit
/// directly to the oldest waiter, so no barging).
class Semaphore {
 public:
  Semaphore(Engine& engine, size_t permits)
      : engine_(&engine), available_(permits), capacity_(permits) {}

  [[nodiscard]] size_t available() const { return available_; }
  [[nodiscard]] size_t waiting() const { return waiters_.size(); }
  [[nodiscard]] size_t capacity() const { return capacity_; }
  /// Permits currently held (direct-handoff releases keep holders counted).
  [[nodiscard]] size_t in_use() const {
    return available_ >= capacity_ ? 0 : capacity_ - available_;
  }
  /// High-water mark of `in_use()` over the semaphore's lifetime — lets
  /// instrumentation cross-check concurrency bounds (e.g. that the
  /// transfer-thread gate never exceeded its configured width).
  [[nodiscard]] size_t peak_in_use() const { return peak_in_use_; }

  /// Awaitable acquire of one permit.
  [[nodiscard]] auto acquire() {
    struct Awaiter {
      Semaphore* sem;
      bool await_ready() const noexcept {
        if (sem->available_ > 0) {
          --sem->available_;
          sem->peak_in_use_ = std::max(sem->peak_in_use_, sem->in_use());
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) const {
        sem->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  void release();

 private:
  Engine* engine_;
  size_t available_;
  size_t capacity_;
  size_t peak_in_use_ = 0;
  detail::WaitQueue waiters_;
};

/// A pool of identical CPU cores. `run(cost)` occupies one core for `cost`
/// virtual seconds (FIFO queueing when all cores are busy). Tracks busy time
/// for utilization reporting.
class CpuPool {
 public:
  CpuPool(Engine& engine, size_t cores)
      : engine_(&engine), sem_(engine, cores), cores_(cores) {}

  [[nodiscard]] size_t cores() const { return cores_; }
  [[nodiscard]] double busy_seconds() const { return busy_seconds_; }

  /// Utilization over [0, horizon]: busy core-seconds / (cores * horizon).
  [[nodiscard]] double utilization(SimTime horizon) const {
    return horizon <= 0 ? 0.0
                        : busy_seconds_ / (static_cast<double>(cores_) * horizon);
  }

  /// Occupies one core for `cost` seconds.
  [[nodiscard]] Co<void> run(double cost) {
    co_await sem_.acquire();
    busy_seconds_ += cost;
    co_await engine_->sleep(cost);
    sem_.release();
  }

 private:
  Engine* engine_;
  Semaphore sem_;
  size_t cores_;
  double busy_seconds_ = 0;
};

/// Awaits every completion in `parts` (they run concurrently; this just
/// joins). Exceptions from failed tasks propagate.
Co<void> all(std::vector<Completion> parts);

/// Awaits the FIRST completion in `parts` and returns its index. A failed
/// task also counts as finished (inspect it afterwards); the losers keep
/// running unobserved. `parts` must not be empty.
Co<size_t> any(Engine& engine, std::vector<Completion> parts);

}  // namespace ompcloud::sim
