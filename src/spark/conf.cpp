#include "spark/conf.h"

#include <algorithm>

namespace ompcloud::spark {

Result<SparkConf> SparkConf::from_config(const Config& config) {
  SparkConf conf;
  conf.task_cpus =
      static_cast<int>(config.get_int("spark.task.cpus", conf.task_cpus));
  if (conf.task_cpus <= 0) {
    return invalid_argument("spark.task.cpus must be positive");
  }
  conf.cores_max =
      static_cast<int>(config.get_int("spark.cores.max", conf.cores_max));
  if (conf.cores_max < 0) {
    return invalid_argument("spark.cores.max must be >= 0");
  }
  conf.default_parallelism = static_cast<int>(
      config.get_int("spark.default.parallelism", conf.default_parallelism));
  conf.max_element_bytes = config.get_byte_size("spark.max-element-bytes",
                                                conf.max_element_bytes);
  conf.io_compression =
      config.get_bool("spark.io.compression", conf.io_compression);
  conf.io_codec = config.get_string("spark.io.codec", conf.io_codec);
  std::string broadcast =
      config.get_string("spark.broadcast", "bittorrent");
  if (broadcast == "bittorrent") {
    conf.broadcast_mode = net::BroadcastMode::kBitTorrent;
  } else if (broadcast == "unicast") {
    conf.broadcast_mode = net::BroadcastMode::kUnicast;
  } else {
    return invalid_argument("spark.broadcast must be bittorrent|unicast");
  }
  conf.task_max_failures = static_cast<int>(
      config.get_int("spark.task.maxFailures", conf.task_max_failures));
  if (conf.task_max_failures <= 0) {
    return invalid_argument("spark.task.maxFailures must be positive");
  }
  conf.stream_logs = config.get_bool("spark.stream-logs", conf.stream_logs);
  conf.speculation = config.get_bool("spark.speculation", conf.speculation);
  conf.speculation_multiplier = config.get_double(
      "spark.speculation.multiplier", conf.speculation_multiplier);
  if (conf.speculation_multiplier <= 1.0) {
    return invalid_argument("spark.speculation.multiplier must be > 1");
  }
  return conf;
}

int SparkConf::slots_per_worker(int vcpus, int physical_cores) const {
  int by_cpus = std::max(1, vcpus / std::max(1, task_cpus));
  return std::min(by_cpus, std::max(1, physical_cores));
}

}  // namespace ompcloud::spark
