// Spark configuration, mirroring the properties the paper tunes (§IV):
// spark.task.cpus, spark.cores.max, spark.default.parallelism, the executor
// heap ceiling, and intra-cluster compression.
#pragma once

#include <cstdint>
#include <string>

#include "net/network.h"
#include "support/config.h"
#include "support/status.h"

namespace ompcloud::spark {

struct SparkConf {
  /// vCPUs reserved per task. Paper: 2 (one physical core per task).
  int task_cpus = 2;
  /// Total vCPUs the application may use cluster-wide; 0 = unlimited.
  /// The paper sweeps 16..512 vCPUs = 8..256 dedicated cores.
  int cores_max = 0;
  /// Target number of RDD partitions; 0 = one per available task slot.
  int default_parallelism = 0;
  /// Largest byte[] a JVM can hold; jobs whose variables exceed this fail
  /// (the paper hit this ceiling when scaling past 1 GB arrays, §IV).
  uint64_t max_element_bytes = (2ull << 30) - 16;
  /// spark.io.compression.*: compress RDD/broadcast traffic in the cluster.
  bool io_compression = true;
  std::string io_codec = "gzlite";
  /// Broadcast strategy (TorrentBroadcast vs the naive ablation).
  net::BroadcastMode broadcast_mode = net::BroadcastMode::kBitTorrent;
  /// spark.task.maxFailures.
  int task_max_failures = 4;
  /// spark.speculation: when a task runs longer than
  /// speculation_multiplier x its expected duration, launch a duplicate on
  /// another worker and take whichever finishes first (straggler
  /// mitigation; DOALL determinism makes the copies interchangeable).
  bool speculation = false;
  double speculation_multiplier = 1.5;
  /// Stream driver/executor log lines to the host's stdout (§III-A option).
  bool stream_logs = false;

  /// Reads overrides from the `[spark]` config section (keys use the Spark
  /// property spelling: task.cpus, cores.max, ...).
  static Result<SparkConf> from_config(const Config& config);

  /// Task slots a worker with `vcpus` vCPUs and `physical_cores` cores
  /// offers: vcpus/task_cpus, capped by physical cores (a "slot" in this
  /// simulation always maps to one physical core of the CpuPool).
  [[nodiscard]] int slots_per_worker(int vcpus, int physical_cores) const;

  /// Cluster-wide concurrent-task cap implied by cores_max (0 = none).
  [[nodiscard]] int max_concurrent_tasks() const {
    return cores_max > 0 ? std::max(1, cores_max / std::max(1, task_cpus)) : 0;
  }

  /// Convenience used by the benches: configures cores_max so that exactly
  /// `cores` dedicated physical cores are used (paper's x-axis).
  SparkConf& with_dedicated_cores(int cores) {
    cores_max = cores * task_cpus;
    return *this;
  }
};

}  // namespace ompcloud::spark
