#include "spark/context.h"

#include <algorithm>
#include <memory>

#include "compress/payload.h"
#include "jnibridge/bridge.h"
#include "support/fault.h"
#include "support/strings.h"
#include "tools/tools.h"

namespace ompcloud::spark {

namespace {

bool is_partitioned_read(const LoopAccess& access) {
  return access.mode == LoopAccess::Mode::kReadPartitioned;
}

}  // namespace

struct SparkContext::Environment {
  std::vector<ByteBuffer> vars;  ///< aligned with JobSpec::vars
};

SparkContext::SparkContext(cloud::Cluster& cluster, SparkConf conf)
    : cluster_(&cluster), conf_(std::move(conf)) {}

std::string SparkContext::part_key(const std::string& base_key,
                                   uint64_t block) {
  return str_format("%s.part%05llu", base_key.c_str(),
                    static_cast<unsigned long long>(block));
}

int SparkContext::total_task_slots() const {
  int per_worker = conf_.slots_per_worker(cluster_->instance().vcpus,
                                          cluster_->instance().physical_cores);
  int alive_slots = 0;
  for (int w = 0; w < cluster_->worker_count(); ++w) {
    if (cluster_->worker_usable(w)) alive_slots += per_worker;
  }
  int cap = conf_.max_concurrent_tasks();
  return cap > 0 ? std::min(cap, alive_slots) : alive_slots;
}

// ---------------------------------------------------------------------------
// Per-loop execution state shared by the driver and the task coroutines.
// ---------------------------------------------------------------------------

namespace {

struct LoopRun {
  const JobSpec* spec = nullptr;
  const LoopSpec* loop = nullptr;
  SparkContext::TaskFaultInjector* fault_injector = nullptr;
  SparkContext::TaskSlowdownInjector* slowdown_injector = nullptr;
  cloud::Cluster* cluster = nullptr;
  const SparkConf* conf = nullptr;
  std::vector<ByteBuffer>* env = nullptr;
  JobMetrics* metrics = nullptr;
  const compress::Codec* io_codec = nullptr;
  trace::Tracer* tracer = nullptr;
  trace::SpanId stage_span = trace::kNoSpan;
  int stage_index = 0;  ///< loop index within the job

  std::vector<std::pair<int64_t, int64_t>> tiles;
  /// Index into spec->sub_partitions of the member each tile computes
  /// (empty for ordinary jobs without sub-partitions).
  std::vector<int> tile_subpart;
  std::vector<int> alive_workers;
  std::vector<int> tile_worker;             ///< initial placement
  std::vector<uint64_t> tile_input_encoded; ///< compressed partition bytes
  std::vector<uint64_t> tile_input_plain;   ///< plain partition bytes
  std::vector<Status> task_status;

  /// Accumulators for kWriteShared outputs (index-aligned with loop->writes;
  /// empty buffer for partitioned writes, which fold straight into env).
  std::vector<ByteBuffer> shared_accumulators;

  std::unique_ptr<sim::Semaphore> driver_sched;  ///< serializes scheduling
  std::unique_ptr<sim::Semaphore> global_slots;  ///< spark.cores.max cap

  Logger executor_log{"spark.executor"};
};

/// Compressed wire size of `data` under the loop's io codec (really
/// compresses; this is what makes dense vs sparse behave differently inside
/// the cluster, not just on the WAN).
uint64_t wire_size(const compress::Codec& codec, ByteView data) {
  auto compressed = codec.compress(data);
  return compressed.ok() ? compressed->size() : data.size();
}

/// The duplicate copy of a straggling task (spark.speculation): waits the
/// detection delay, re-ships the input partition to another worker, then
/// runs there at full speed.
sim::Co<void> run_speculative_copy(LoopRun* run, int tile_index,
                                   int spec_worker, double detect_delay,
                                   double core_seconds) {
  auto& engine = run->cluster->engine();
  co_await engine.sleep(detect_delay);
  Status shipped = co_await run->cluster->network().transfer(
      cloud::Cluster::driver_node(), run->cluster->worker_node(spec_worker),
      run->tile_input_encoded[tile_index]);
  if (!shipped.is_ok()) co_return;
  run->metrics->intra_cluster_bytes += run->tile_input_encoded[tile_index];
  co_await run->cluster->worker_pool(spec_worker).run(core_seconds);
}

/// One map task: schedule, (re)ship inputs on retry, execute the native
/// loop body on a worker core, collect and fold the outputs at the driver.
sim::Co<void> run_task(LoopRun* run, int tile_index) {
  auto& engine = run->cluster->engine();
  const auto& profile = run->cluster->profile();
  const auto [begin, end] = run->tiles[tile_index];
  const LoopSpec& loop = *run->loop;

  trace::SpanHandle span = run->tracer->span(
      str_format("task[%d]", tile_index), run->stage_span);

  // ompt_callback_target_submit equivalent: one kernel dispatch per Spark
  // map task, completed below with the worker it actually ran on.
  const double task_start = engine.now();
  tools::KernelInfo kernel_info;
  kernel_info.job = run->spec->name;
  kernel_info.kernel = loop.kernel;
  if (!run->tile_subpart.empty()) {
    const SubPartition& part =
        run->spec->sub_partitions[static_cast<size_t>(
            run->tile_subpart[tile_index])];
    kernel_info.tenant = part.tenant;
    span.tag("tenant", part.tenant);
    span.tag("member", part.label);
  }
  kernel_info.stage = run->stage_index;
  kernel_info.task = tile_index;
  kernel_info.worker = run->tile_worker[tile_index];
  kernel_info.start = task_start;
  kernel_info.time = task_start;
  run->tracer->tools().emit_kernel_submit(kernel_info);

  int attempts = 0;
  int last_worker = -1;
  Status final_status = Status::ok();
  while (true) {
    int worker =
        run->alive_workers[(tile_index + attempts) % run->alive_workers.size()];
    ++attempts;
    last_worker = worker;
    span.tag("worker", std::to_string(worker));
    bool inject_failure =
        *run->fault_injector &&
        (*run->fault_injector)(tile_index, attempts, worker);
    fault::FaultInjector* chaos = run->cluster->fault_injector();
    if (!inject_failure && chaos != nullptr &&
        chaos->should_fail("spark.task-fail",
                           str_format("task%d attempt%d worker%d", tile_index,
                                      attempts, worker))) {
      inject_failure = true;
      span.tag("fault", "spark.task-fail");
    }

    // Driver-side scheduling is serialized (one TaskScheduler thread): this
    // is the overhead term that grows linearly with the task count and
    // drives the paper's Spark-overhead growth from 8 to 256 cores.
    co_await run->driver_sched->acquire();
    co_await engine.sleep(profile.task_schedule_overhead);
    run->driver_sched->release();
    co_await engine.sleep(profile.task_launch_latency);

    if (!run->cluster->worker_usable(worker)) {
      // Executor lost (failed, stopped, or preempted): the scheduler
      // notices at launch and retries.
      ++run->metrics->task_retries;
      if (attempts >= run->conf->task_max_failures) {
        final_status = internal_error(
            str_format("task %d aborted after %d attempts (worker %d dead)",
                       tile_index, attempts, worker));
        break;
      }
      continue;
    }

    if (attempts > 1) {
      // Lineage recomputation: re-ship this tile's input partition from the
      // driver to the replacement worker.
      Status reship = co_await run->cluster->network().transfer(
          cloud::Cluster::driver_node(), run->cluster->worker_node(worker),
          run->tile_input_encoded[tile_index]);
      if (!reship.is_ok()) {
        final_status = reship;
        break;
      }
      run->metrics->intra_cluster_bytes += run->tile_input_encoded[tile_index];
    }

    if (run->global_slots) co_await run->global_slots->acquire();

    // --- Worker-side execution (really runs the kernel). -------------------
    // Worker-side input cost: decompression plus JVM deserialization.
    double decode_seconds =
        profile.decode_seconds(*run->io_codec,
                               run->tile_input_plain[tile_index]) +
        profile.serialize_seconds(run->tile_input_plain[tile_index]);
    double compute_seconds = loop.flops_per_iteration *
                             static_cast<double>(end - begin) /
                             profile.core_flops;
    double jni_seconds = profile.jni_call_overhead;

    std::vector<jni::InputSlice> inputs;
    std::vector<ByteBuffer> output_buffers;
    std::vector<jni::OutputSlice> outputs;
    std::vector<uint64_t> output_offsets;
    double encode_out_seconds = 0;
    uint64_t collect_bytes = 0;

    if (!inject_failure) {
      // Inputs: views into the driver-resident environment (the simulated
      // worker received identical bytes during distribution).
      for (const LoopAccess& access : loop.reads) {
        const ByteBuffer& var = (*run->env)[access.var];
        if (is_partitioned_read(access)) {
          auto [lo, hi] = access.partition.tile_range(begin, end);
          inputs.push_back({var.subview(lo, hi - lo), lo});
        } else {
          inputs.push_back({var.view(), 0});
        }
      }
      // Outputs: worker-local buffers.
      for (const LoopAccess& access : loop.writes) {
        if (access.mode == LoopAccess::Mode::kWritePartitioned) {
          auto [lo, hi] = access.partition.tile_range(begin, end);
          output_buffers.emplace_back(hi - lo);
          output_offsets.push_back(lo);
        } else {
          output_buffers.emplace_back(
              (*run->spec).vars[access.var].size_bytes);
          fill_reduce_identity(access.reduce,
                               output_buffers.back().mutable_view());
          output_offsets.push_back(0);
        }
      }
      for (size_t l = 0; l < output_buffers.size(); ++l) {
        outputs.push_back(
            {output_buffers[l].mutable_view(), output_offsets[l]});
      }

      auto kernel = jni::KernelRegistry::instance().find(loop.kernel);
      if (!kernel.ok()) {
        final_status = kernel.status();
        if (run->global_slots) run->global_slots->release();
        break;
      }
      jni::KernelArgs args;
      args.begin = begin;
      args.end = end;
      args.total_iterations = loop.iterations;
      args.inputs = inputs;
      args.outputs = outputs;
      Status ran = (*kernel)(args);
      if (!ran.is_ok()) {
        final_status = ran.with_context("kernel " + loop.kernel);
        if (run->global_slots) run->global_slots->release();
        break;
      }
      // Spark compresses task results before sending them to the driver.
      for (const ByteBuffer& buffer : output_buffers) {
        collect_bytes += wire_size(*run->io_codec, buffer.view());
        encode_out_seconds +=
            profile.encode_seconds(*run->io_codec, buffer.size()) +
            profile.serialize_seconds(buffer.size());
      }
    }

    double core_seconds =
        decode_seconds + jni_seconds + compute_seconds + encode_out_seconds;
    double slow_factor =
        *run->slowdown_injector
            ? std::max(1.0, (*run->slowdown_injector)(tile_index, worker))
            : 1.0;
    if (!inject_failure && chaos != nullptr &&
        chaos->should_fail("spark.slowdown",
                           str_format("task%d worker%d", tile_index, worker))) {
      // Gray failure: the task neither fails nor finishes on time. Composes
      // with the test-only slowdown injector so speculation still kicks in.
      slow_factor =
          std::max(slow_factor, chaos->param("spark.slowdown-factor", 4.0));
      span.tag("fault", "spark.slowdown");
    }
    if (run->conf->speculation && slow_factor > run->conf->speculation_multiplier) {
      // Straggler: race the slow primary against a duplicate launched after
      // the detection delay on the next alive worker. DOALL determinism
      // makes the copies interchangeable, so the first finisher wins.
      int spec_worker =
          run->alive_workers[(tile_index + attempts) % run->alive_workers.size()];
      double detect_delay = run->conf->speculation_multiplier * core_seconds;
      std::vector<sim::Completion> racers;
      racers.push_back(engine.spawn(
          run->cluster->worker_pool(worker).run(core_seconds * slow_factor)));
      racers.push_back(engine.spawn(run_speculative_copy(
          run, tile_index, spec_worker, detect_delay, core_seconds)));
      ++run->metrics->speculative_launched;
      size_t first = co_await sim::any(engine, racers);
      if (first == 1) ++run->metrics->speculative_won;
    } else {
      co_await run->cluster->worker_pool(worker).run(core_seconds * slow_factor);
    }
    run->metrics->compute_core_seconds += compute_seconds;
    run->metrics->jni_core_seconds += jni_seconds;
    run->metrics->codec_core_seconds += decode_seconds + encode_out_seconds;
    if (run->global_slots) run->global_slots->release();

    if (inject_failure) {
      ++run->metrics->task_retries;
      run->executor_log.debug("task %d attempt %d failed on worker %d",
                              tile_index, attempts, worker);
      if (attempts >= run->conf->task_max_failures) {
        final_status = internal_error(str_format(
            "task %d failed %d times, giving up", tile_index, attempts));
        break;
      }
      continue;
    }

    // --- Collect: results travel worker -> driver. -------------------------
    Status sent = co_await run->cluster->network().transfer(
        run->cluster->worker_node(worker), cloud::Cluster::driver_node(),
        collect_bytes);
    if (!sent.is_ok()) {
      final_status = sent;
      break;
    }
    run->metrics->intra_cluster_bytes += collect_bytes;
    co_await engine.sleep(profile.result_collect_overhead);

    // --- Driver-side reconstruction (Fig. 3 step 7), pipelined per task. ---
    uint64_t fold_bytes = 0;
    double decode_result_seconds = 0;
    for (const ByteBuffer& buffer : output_buffers) {
      fold_bytes += buffer.size();
      decode_result_seconds +=
          profile.decode_seconds(*run->io_codec, buffer.size()) +
          profile.serialize_seconds(buffer.size());
    }
    double fold_seconds =
        profile.reconstruct_seconds(fold_bytes) + decode_result_seconds;
    // Result handling goes through the driver's single-threaded scheduler
    // event loop (as in Spark's DAGScheduler), so collected outputs
    // serialize here — one of the overheads eroding scaling in Fig. 4.
    co_await run->driver_sched->acquire();
    co_await run->cluster->driver_pool().run(fold_seconds);
    run->driver_sched->release();
    run->metrics->reconstruct_core_seconds += fold_seconds;
    run->metrics->codec_core_seconds += decode_result_seconds;

    for (size_t l = 0; l < loop.writes.size(); ++l) {
      const LoopAccess& access = loop.writes[l];
      if (access.mode == LoopAccess::Mode::kWritePartitioned) {
        // Indexed write at the right offset of the full variable.
        ByteBuffer& var = (*run->env)[access.var];
        std::memcpy(var.data() + output_offsets[l], output_buffers[l].data(),
                    output_buffers[l].size());
      } else {
        Status folded = apply_reduce(
            access.reduce, run->shared_accumulators[l].mutable_view(),
            output_buffers[l].view());
        if (!folded.is_ok()) {
          final_status = folded;
          break;
        }
      }
    }
    break;
  }
  run->task_status[tile_index] = final_status;
  span.tag("attempts", std::to_string(attempts));
  span.end();
  // The spark.task_seconds histogram derives from this callback
  // (Tracer::MetricsTool), so external tools see exactly what it records.
  kernel_info.worker = last_worker;
  kernel_info.attempts = attempts;
  kernel_info.time = engine.now();
  run->tracer->tools().emit_kernel_complete(kernel_info);
}

}  // namespace

// ---------------------------------------------------------------------------
// Driver phases
// ---------------------------------------------------------------------------

sim::Co<Status> SparkContext::read_inputs(const JobSpec& spec,
                                          Environment& env,
                                          JobMetrics& metrics,
                                          trace::SpanId phase) {
  auto& engine = cluster_->engine();
  auto statuses = std::make_shared<std::vector<Status>>(spec.vars.size(),
                                                        Status::ok());
  std::vector<sim::Completion> parts;
  for (size_t v = 0; v < spec.vars.size(); ++v) {
    const VarSpec& var = spec.vars[v];
    if (!var.map_to) {
      // Output-only / intermediate variable: allocated zeroed on the device
      // data environment, never read from storage.
      env.vars[v] = ByteBuffer(var.size_bytes);
      continue;
    }
    parts.push_back(engine.spawn(
        [](SparkContext* self, const JobSpec* spec, size_t v, Environment* env,
           JobMetrics* metrics, std::vector<Status>* statuses,
           trace::SpanId phase) -> sim::Co<void> {
          const VarSpec& var = spec->vars[v];
          const std::string key = var.input_object.empty()
                                      ? input_key(var.name)
                                      : var.input_object;
          self->cluster_->tracer().set_ambient(phase);
          auto framed = co_await self->cluster_->store().get(
              cloud::Cluster::driver_node(), spec->bucket, key);
          if (!framed.ok()) {
            (*statuses)[v] = framed.status();
            co_return;
          }
          Result<ByteBuffer> plain = internal_error("unreachable");
          if (compress::is_chunked_payload(framed->view())) {
            plain = co_await self->read_chunked_input(
                *spec, key, std::move(*framed), *metrics, phase);
          } else {
            plain = compress::decode_payload(framed->view());
            if (plain.ok()) {
              auto codec = compress::find_codec(
                  compress::payload_codec(framed->view()).value_or("null"));
              double cost = codec.ok()
                                ? self->cluster_->profile().decode_seconds(
                                      **codec, plain->size())
                                : 0.0;
              co_await self->cluster_->driver_pool().run(cost);
              metrics->codec_core_seconds += cost;
            }
          }
          if (!plain.ok()) {
            (*statuses)[v] =
                plain.status().with_context("input '" + var.name + "'");
            co_return;
          }
          if (plain->size() != var.size_bytes) {
            (*statuses)[v] = data_loss(
                str_format("input '%s': stored %zu bytes, expected %llu",
                           var.name.c_str(), plain->size(),
                           static_cast<unsigned long long>(var.size_bytes)));
            co_return;
          }
          metrics->input_bytes += plain->size();
          env->vars[v] = std::move(*plain);
        }(this, &spec, v, &env, &metrics, statuses.get(), phase)));
  }
  co_await sim::all(std::move(parts));
  for (const Status& status : *statuses) {
    if (!status.is_ok()) co_return status;
  }
  co_return Status::ok();
}

sim::Co<Result<ByteBuffer>> SparkContext::read_chunked_input(
    const JobSpec& spec, std::string base_key, ByteBuffer manifest,
    JobMetrics& metrics, trace::SpanId phase) {
  OC_CO_ASSIGN_OR_RETURN(compress::ChunkedIndex index,
                         compress::parse_chunked_index(manifest.view()));
  if (index.inline_blocks) {
    // Self-contained chunked frame: decode in place at the driver.
    OC_CO_ASSIGN_OR_RETURN(ByteBuffer plain,
                           compress::decode_chunked_payload(manifest.view()));
    double cost = 0;
    for (const compress::ChunkedBlock& block : index.blocks) {
      auto codec = compress::find_codec(
          compress::payload_codec(manifest.view().subspan(block.frame_offset,
                                                          block.encoded_size))
              .value_or("null"));
      if (codec.ok()) {
        cost += cluster_->profile().decode_seconds(**codec, block.plain_size);
      }
    }
    co_await cluster_->driver_pool().run(cost);
    metrics.codec_core_seconds += cost;
    co_return plain;
  }
  // Manifest: blocks are sibling objects; fetch, verify and decode them in
  // parallel (each block charges its own decode on a driver core).
  auto assembled = std::make_shared<ByteBuffer>(index.plain_size);
  auto statuses = std::make_shared<std::vector<Status>>(index.blocks.size(),
                                                        Status::ok());
  std::vector<sim::Completion> parts;
  for (size_t k = 0; k < index.blocks.size(); ++k) {
    parts.push_back(cluster_->engine().spawn(
        [](SparkContext* self, std::string bucket, std::string key,
           compress::ChunkedBlock block, ByteBuffer* assembled,
           JobMetrics* metrics, Status* status,
           trace::SpanId phase) -> sim::Co<void> {
          self->cluster_->tracer().set_ambient(phase);
          auto got = co_await self->cluster_->store().get(
              cloud::Cluster::driver_node(), bucket, key);
          if (!got.ok()) {
            *status = got.status();
            co_return;
          }
          auto restored = compress::decode_payload(got->view());
          if (!restored.ok()) {
            *status = restored.status();
            co_return;
          }
          if (restored->size() != block.plain_size ||
              fnv1a(restored->view()) != block.content_hash) {
            *status = data_loss("staged block '" + key +
                                "' failed content verification");
            co_return;
          }
          auto codec = compress::find_codec(
              compress::payload_codec(got->view()).value_or("null"));
          double cost = codec.ok() ? self->cluster_->profile().decode_seconds(
                                         **codec, restored->size())
                                   : 0.0;
          co_await self->cluster_->driver_pool().run(cost);
          metrics->codec_core_seconds += cost;
          std::memcpy(assembled->data() + block.plain_offset, restored->data(),
                      restored->size());
        }(this, spec.bucket, part_key(base_key, k), index.blocks[k],
          assembled.get(), &metrics, &(*statuses)[k], phase)));
  }
  co_await sim::all(std::move(parts));
  for (const Status& status : *statuses) {
    if (!status.is_ok()) co_return status;
  }
  co_return std::move(*assembled);
}

sim::Co<Status> SparkContext::write_chunked_output(const JobSpec& spec,
                                                   std::string base_key,
                                                   ByteView plain,
                                                   JobMetrics& metrics,
                                                   trace::SpanId phase) {
  auto& engine = cluster_->engine();
  const uint64_t chunk = spec.storage_chunk_size;
  const uint64_t count = compress::chunk_block_count(plain.size(), chunk);
  std::vector<compress::BlockDigest> digests(count);
  auto statuses = std::make_shared<std::vector<Status>>(count, Status::ok());
  std::vector<sim::Completion> parts;
  for (uint64_t k = 0; k < count; ++k) {
    ByteView block = plain.subspan(
        k * chunk, std::min<uint64_t>(chunk, plain.size() - k * chunk));
    OC_CO_ASSIGN_OR_RETURN(
        compress::EncodedPayload encoded,
        compress::encode_payload_frame(spec.storage_codec, block,
                                       spec.storage_min_compress));
    digests[k] = {block.size(), encoded.frame.size(), fnv1a(block)};
    double cost =
        cluster_->profile().encode_seconds(*encoded.codec, block.size());
    parts.push_back(engine.spawn(
        [](SparkContext* self, std::string bucket, std::string key,
           ByteBuffer frame, double cost, JobMetrics* metrics, Status* status,
           trace::SpanId phase) -> sim::Co<void> {
          co_await self->cluster_->driver_pool().run(cost);
          metrics->codec_core_seconds += cost;
          self->cluster_->tracer().set_ambient(phase);
          Status put = co_await self->cluster_->store().put(
              cloud::Cluster::driver_node(), bucket, key, std::move(frame));
          if (!put.is_ok()) *status = put;
        }(this, spec.bucket, part_key(base_key, k), std::move(encoded.frame),
          cost, &metrics, &(*statuses)[k], phase)));
  }
  co_await sim::all(std::move(parts));
  for (const Status& status : *statuses) {
    if (!status.is_ok()) co_return status;
  }
  metrics.output_bytes += plain.size();
  OC_CO_ASSIGN_OR_RETURN(
      ByteBuffer manifest,
      compress::encode_chunked_manifest(chunk, plain.size(), digests));
  cluster_->tracer().set_ambient(phase);
  co_return co_await cluster_->store().put(cloud::Cluster::driver_node(),
                                           spec.bucket, base_key,
                                           std::move(manifest));
}

sim::Co<Status> SparkContext::run_loop(const JobSpec& spec,
                                       const LoopSpec& loop, Environment& env,
                                       JobMetrics& metrics, size_t loop_index,
                                       trace::SpanId job_span) {
  auto& engine = cluster_->engine();
  const auto& profile = cluster_->profile();

  trace::SpanHandle stage = cluster_->tracer().span(
      str_format("stage[%zu]", loop_index), job_span);
  stage.tag("kernel", loop.kernel);

  LoopRun run;
  run.spec = &spec;
  run.loop = &loop;
  run.fault_injector = &fault_injector_;
  run.slowdown_injector = &slowdown_injector_;
  run.cluster = cluster_;
  run.conf = &conf_;
  run.env = &env.vars;
  run.metrics = &metrics;
  run.tracer = &cluster_->tracer();
  run.stage_span = stage.id();
  run.stage_index = static_cast<int>(loop_index);

  std::string codec_name = conf_.io_compression ? conf_.io_codec : "null";
  OC_CO_ASSIGN_OR_RETURN(run.io_codec, compress::find_codec(codec_name));

  int slots = total_task_slots();
  if (slots <= 0) co_return unavailable("no alive workers");
  metrics.slots = slots;
  int64_t tile_target = loop.explicit_tiles > 0
                            ? loop.explicit_tiles
                            : (conf_.default_parallelism > 0
                                   ? conf_.default_parallelism
                                   : slots);
  if (spec.sub_partitions.empty()) {
    run.tiles = tile_iterations(loop.iterations, tile_target);
  } else {
    // Coalesced batch job: tile each member sub-range independently so no
    // tile straddles a tenant boundary — every map task computes exactly
    // one member's iterations (per-tenant attribution, and member results
    // stay byte-identical to a solo run of that member).
    for (const SubPartition& part : spec.sub_partitions) {
      const int64_t member_iters = part.end - part.begin;
      const int64_t member_target = std::max<int64_t>(
          1, tile_target * member_iters / loop.iterations);
      for (auto [b, e] : tile_iterations(member_iters, member_target)) {
        run.tiles.emplace_back(b + part.begin, e + part.begin);
        run.tile_subpart.push_back(static_cast<int>(
            &part - spec.sub_partitions.data()));
      }
    }
  }
  metrics.tasks += static_cast<int>(run.tiles.size());
  run.task_status.assign(run.tiles.size(), Status::ok());

  for (int w = 0; w < cluster_->worker_count(); ++w) {
    if (cluster_->worker_usable(w)) run.alive_workers.push_back(w);
  }
  if (run.alive_workers.empty()) co_return unavailable("no alive workers");
  run.tile_worker.resize(run.tiles.size());
  for (size_t t = 0; t < run.tiles.size(); ++t) {
    run.tile_worker[t] =
        run.alive_workers[t % run.alive_workers.size()];
  }

  driver_log_.info("loop '%s': %zu tasks on %d slots (%zu workers)",
                   loop.kernel.c_str(), run.tiles.size(), slots,
                   run.alive_workers.size());

  // --- Distribution phase (Fig. 1 step 4 / Fig. 3 steps 2-4). --------------
  trace::SpanHandle distribute =
      cluster_->tracer().span("distribute", stage.id());
  double distribute_start = engine.now();
  run.tile_input_encoded.assign(run.tiles.size(), 0);
  run.tile_input_plain.assign(run.tiles.size(), 0);

  auto dist_statuses = std::make_shared<std::vector<Status>>();
  std::vector<sim::Completion> dist_parts;

  // Broadcast unpartitioned inputs once to every worker that owns a tile.
  std::vector<std::string> broadcast_targets;
  {
    std::vector<bool> seen(cluster_->worker_count(), false);
    for (int w : run.tile_worker) {
      if (!seen[w]) {
        seen[w] = true;
        broadcast_targets.push_back(cluster_->worker_node(w));
      }
    }
  }
  for (const LoopAccess& access : loop.reads) {
    if (access.mode != LoopAccess::Mode::kReadBroadcast) continue;
    const ByteBuffer& var = env.vars[access.var];
    uint64_t encoded = wire_size(*run.io_codec, var.view());
    metrics.intra_cluster_bytes += encoded * broadcast_targets.size();
    dist_statuses->push_back(Status::ok());
    size_t slot = dist_statuses->size() - 1;
    dist_parts.push_back(engine.spawn(
        [](SparkContext* self, const LoopRun* run, uint64_t encoded,
           uint64_t plain, std::vector<std::string> targets,
           std::vector<Status>* statuses, size_t slot) -> sim::Co<void> {
          auto& cluster = *self->cluster_;
          // Driver serializes + compresses the broadcast payload once.
          double cost = cluster.profile().encode_seconds(*run->io_codec, plain) +
                        cluster.profile().serialize_seconds(plain);
          co_await cluster.driver_pool().run(cost);
          run->metrics->codec_core_seconds += cost;
          net::BroadcastOptions options;
          options.mode = self->conf_.broadcast_mode;
          options.round_latency = cluster.profile().lan_latency;
          Status sent = co_await cluster.network().broadcast(
              cloud::Cluster::driver_node(), targets, encoded, options);
          if (!sent.is_ok()) {
            (*statuses)[slot] = sent;
            co_return;
          }
          // Each receiving worker decompresses its copy.
          std::vector<sim::Completion> decodes;
          for (size_t w = 0; w < targets.size(); ++w) {
            int worker_index = -1;
            for (int i = 0; i < cluster.worker_count(); ++i) {
              if (cluster.worker_node(i) == targets[w]) worker_index = i;
            }
            double decode_seconds =
                cluster.profile().decode_seconds(*run->io_codec, plain) +
                cluster.profile().serialize_seconds(plain);
            run->metrics->codec_core_seconds += decode_seconds;
            decodes.push_back(cluster.engine().spawn(
                cluster.worker_pool(worker_index).run(decode_seconds)));
          }
          co_await sim::all(std::move(decodes));
        }(this, &run, encoded, var.size(), broadcast_targets,
          dist_statuses.get(), slot)));
  }

  // Partitioned inputs: one slice per tile to its worker.
  for (size_t t = 0; t < run.tiles.size(); ++t) {
    uint64_t tile_plain = 0;
    uint64_t tile_encoded = 0;
    for (const LoopAccess& access : loop.reads) {
      if (!is_partitioned_read(access)) continue;
      auto [lo, hi] = access.partition.tile_range(run.tiles[t].first,
                                                  run.tiles[t].second);
      ByteView slice = env.vars[access.var].subview(lo, hi - lo);
      tile_plain += slice.size();
      tile_encoded += wire_size(*run.io_codec, slice);
    }
    run.tile_input_plain[t] = tile_plain;
    run.tile_input_encoded[t] = tile_encoded;
    if (tile_encoded == 0) continue;
    metrics.intra_cluster_bytes += tile_encoded;
    dist_statuses->push_back(Status::ok());
    size_t slot = dist_statuses->size() - 1;
    dist_parts.push_back(engine.spawn(
        [](SparkContext* self, const LoopRun* run, size_t t,
           std::vector<Status>* statuses, size_t slot) -> sim::Co<void> {
          auto& cluster = *self->cluster_;
          double cost = cluster.profile().encode_seconds(
                            *run->io_codec, run->tile_input_plain[t]) +
                        cluster.profile().serialize_seconds(
                            run->tile_input_plain[t]);
          co_await cluster.driver_pool().run(cost);
          run->metrics->codec_core_seconds += cost;
          Status sent = co_await cluster.network().transfer(
              cloud::Cluster::driver_node(),
              cluster.worker_node(run->tile_worker[t]),
              run->tile_input_encoded[t]);
          if (!sent.is_ok()) (*statuses)[slot] = sent;
        }(this, &run, t, dist_statuses.get(), slot)));
  }
  co_await sim::all(std::move(dist_parts));
  for (const Status& status : *dist_statuses) {
    if (!status.is_ok()) co_return status;
  }
  metrics.distribute_seconds += engine.now() - distribute_start;
  distribute.end();

  // --- Prepare write targets. ----------------------------------------------
  run.shared_accumulators.resize(loop.writes.size());
  for (size_t l = 0; l < loop.writes.size(); ++l) {
    const LoopAccess& access = loop.writes[l];
    if (access.mode == LoopAccess::Mode::kWriteShared) {
      run.shared_accumulators[l] =
          ByteBuffer(spec.vars[access.var].size_bytes);
      fill_reduce_identity(access.reduce,
                           run.shared_accumulators[l].mutable_view());
    }
  }

  // --- Map + collect phase (Fig. 1 steps 5-6). ------------------------------
  double map_start = engine.now();
  run.driver_sched = std::make_unique<sim::Semaphore>(engine, 1);
  int cap = conf_.max_concurrent_tasks();
  if (cap > 0) run.global_slots = std::make_unique<sim::Semaphore>(engine, cap);

  std::vector<sim::Completion> tasks;
  tasks.reserve(run.tiles.size());
  for (size_t t = 0; t < run.tiles.size(); ++t) {
    tasks.push_back(engine.spawn(run_task(&run, static_cast<int>(t))));
  }
  co_await sim::all(std::move(tasks));
  for (const Status& status : run.task_status) {
    if (!status.is_ok()) co_return status;
  }
  metrics.map_collect_seconds += engine.now() - map_start;

  // --- Finalize shared outputs. ---------------------------------------------
  for (size_t l = 0; l < loop.writes.size(); ++l) {
    const LoopAccess& access = loop.writes[l];
    if (access.mode != LoopAccess::Mode::kWriteShared) continue;
    ByteBuffer& var = env.vars[access.var];
    if (access.reduce.op != ReduceOp::kBitOr && spec.vars[access.var].map_to) {
      // OpenMP reduction semantics: combine the accumulated value with the
      // variable's incoming value.
      OC_CO_RETURN_IF_ERROR(apply_reduce(
          access.reduce, run.shared_accumulators[l].mutable_view(), var.view()));
    }
    var = std::move(run.shared_accumulators[l]);
  }

  co_return Status::ok();
}

sim::Co<Status> SparkContext::write_outputs(const JobSpec& spec,
                                            Environment& env,
                                            JobMetrics& metrics,
                                            trace::SpanId phase) {
  auto& engine = cluster_->engine();
  auto statuses = std::make_shared<std::vector<Status>>(spec.vars.size(),
                                                        Status::ok());
  std::vector<sim::Completion> parts;
  for (size_t v = 0; v < spec.vars.size(); ++v) {
    if (!spec.vars[v].map_from) continue;
    parts.push_back(engine.spawn(
        [](SparkContext* self, const JobSpec* spec, size_t v, Environment* env,
           JobMetrics* metrics, std::vector<Status>* statuses,
           trace::SpanId phase) -> sim::Co<void> {
          const VarSpec& var = spec->vars[v];
          const ByteBuffer& plain = env->vars[v];
          if (spec->storage_chunk_size > 0 &&
              plain.size() > spec->storage_chunk_size) {
            Status wrote = co_await self->write_chunked_output(
                *spec, output_key(var.name), plain.view(), *metrics, phase);
            if (!wrote.is_ok()) {
              (*statuses)[v] =
                  wrote.with_context("output '" + var.name + "'");
            }
            co_return;
          }
          auto encoded =
              spec->storage_seal
                  ? compress::encode_sealed_payload_frame(
                        spec->storage_codec, plain.view(),
                        spec->storage_min_compress)
                  : compress::encode_payload_frame(spec->storage_codec,
                                                   plain.view(),
                                                   spec->storage_min_compress);
          if (!encoded.ok()) {
            (*statuses)[v] = encoded.status();
            co_return;
          }
          // Charge the codec the frame actually carries (the min-size gate
          // may have demoted to "null"), so time never diverges from bytes.
          double cost = self->cluster_->profile().encode_seconds(
              *encoded->codec, plain.size());
          co_await self->cluster_->driver_pool().run(cost);
          metrics->codec_core_seconds += cost;
          metrics->output_bytes += plain.size();
          self->cluster_->tracer().set_ambient(phase);
          Status put = co_await self->cluster_->store().put(
              cloud::Cluster::driver_node(), spec->bucket,
              output_key(var.name), std::move(encoded->frame));
          if (!put.is_ok()) (*statuses)[v] = put;
        }(this, &spec, v, &env, &metrics, statuses.get(), phase)));
  }
  co_await sim::all(std::move(parts));
  for (const Status& status : *statuses) {
    if (!status.is_ok()) co_return status;
  }
  co_return Status::ok();
}

sim::Co<Result<JobMetrics>> SparkContext::run_job(JobSpec spec,
                                                  trace::SpanId parent_span) {
  OC_CO_RETURN_IF_ERROR(spec.validate());
  for (const LoopSpec& loop : spec.loops) {
    auto kernel = jni::KernelRegistry::instance().find(loop.kernel);
    if (!kernel.ok()) co_return kernel.status();
  }
  for (const VarSpec& var : spec.vars) {
    if (var.size_bytes > conf_.max_element_bytes) {
      co_return resource_exhausted(str_format(
          "variable '%s' (%llu bytes) exceeds the JVM array ceiling (%llu)",
          var.name.c_str(), static_cast<unsigned long long>(var.size_bytes),
          static_cast<unsigned long long>(conf_.max_element_bytes)));
    }
  }
  if (!cluster_->running()) {
    co_return unavailable("Spark cluster is not running");
  }

  auto& engine = cluster_->engine();
  JobMetrics metrics;
  double job_start = engine.now();
  driver_log_.info("job '%s' started (%zu vars, %zu loops)", spec.name.c_str(),
                   spec.vars.size(), spec.loops.size());

  trace::SpanHandle job = cluster_->tracer().span("spark.job", parent_span);
  job.tag("job", spec.name);

  // Driver-crash probes sit at stage boundaries: the driver process dies
  // between phases and the whole job aborts (the plugin may resubmit it,
  // reusing already-staged inputs via the delta cache).
  fault::FaultInjector* chaos = cluster_->fault_injector();
  auto driver_crash = [&](const char* where) -> Status {
    if (chaos != nullptr &&
        chaos->should_fail("spark.driver-crash",
                           spec.name + " at " + where)) {
      job.tag("fault", "spark.driver-crash");
      return unavailable(str_format("fault:spark.driver-crash job '%s' at %s",
                                    spec.name.c_str(), where));
    }
    return Status::ok();
  };

  Environment env;
  env.vars.resize(spec.vars.size());

  double read_start = engine.now();
  {
    trace::SpanHandle read = cluster_->tracer().span("spark.read_inputs",
                                                     job.id());
    OC_CO_RETURN_IF_ERROR(co_await read_inputs(spec, env, metrics, read.id()));
  }
  metrics.input_read_seconds = engine.now() - read_start;
  OC_CO_RETURN_IF_ERROR(driver_crash("read_inputs"));

  for (size_t i = 0; i < spec.loops.size(); ++i) {
    OC_CO_RETURN_IF_ERROR(
        co_await run_loop(spec, spec.loops[i], env, metrics, i, job.id()));
    OC_CO_RETURN_IF_ERROR(driver_crash(str_format("loop%zu", i).c_str()));
  }

  double write_start = engine.now();
  {
    trace::SpanHandle write = cluster_->tracer().span("spark.write_outputs",
                                                      job.id());
    OC_CO_RETURN_IF_ERROR(
        co_await write_outputs(spec, env, metrics, write.id()));
  }
  metrics.output_write_seconds = engine.now() - write_start;

  metrics.job_seconds = engine.now() - job_start;
  driver_log_.info("job '%s' finished in %s (%d tasks, %d retries)",
                   spec.name.c_str(),
                   format_duration(metrics.job_seconds).c_str(), metrics.tasks,
                   metrics.task_retries);
  co_return metrics;
}

}  // namespace ompcloud::spark
