// SparkLite context: the driver/executor execution engine.
//
// Implements the paper's §III-C execution model on the simulated cluster:
// the driver reads the job's input files from cloud storage, builds
// RDD_IN = ∪ {i, V_IN(i)} (tiled by Algorithm 1), splits partitioned inputs
// across workers and broadcasts the rest (BitTorrent), schedules one map
// task per RDD element onto executor cores (honoring spark.task.cpus and
// spark.cores.max), runs the native loop body through the JNI bridge, then
// collects, reconstructs (indexed writes / bitwise-or / OpenMP reduction)
// and writes the outputs back to storage.
//
// Fault tolerance: tasks that fail (injected or on a killed worker) are
// retried on the next alive worker, re-shipping their input partition from
// the driver — exactly lineage recomputation of a parallelize+map RDD.
#pragma once

#include <functional>
#include <memory>

#include "cloud/cluster.h"
#include "spark/conf.h"
#include "spark/job.h"
#include "support/log.h"

namespace ompcloud::spark {

class SparkContext {
 public:
  /// Decides whether a task attempt fails (for fault-tolerance tests and
  /// benches). Return true to fail the given attempt.
  using TaskFaultInjector =
      std::function<bool(int tile, int attempt, int worker)>;

  /// Multiplies a task's execution time (straggler injection for the
  /// speculation tests/benches). Return 1.0 for a healthy task.
  using TaskSlowdownInjector = std::function<double(int tile, int worker)>;

  SparkContext(cloud::Cluster& cluster, SparkConf conf);

  [[nodiscard]] const SparkConf& conf() const { return conf_; }
  [[nodiscard]] cloud::Cluster& cluster() { return *cluster_; }

  /// Task slots usable by one job: min(cores_max/task_cpus, alive workers'
  /// slots). This is the paper's "number of dedicated CPU cores".
  [[nodiscard]] int total_task_slots() const;

  void set_task_fault_injector(TaskFaultInjector injector) {
    fault_injector_ = std::move(injector);
  }

  void set_task_slowdown_injector(TaskSlowdownInjector injector) {
    slowdown_injector_ = std::move(injector);
  }

  /// Runs a job end to end (driver coroutine). Inputs must already be in
  /// `spec.bucket` under `<var>.bin` keys as framed payloads; outputs are
  /// written back as `<var>.out.bin`. Records a `spark.job` span (child of
  /// `parent_span` when given) with read/stage/task/write children in the
  /// cluster's tracer.
  [[nodiscard]] sim::Co<Result<JobMetrics>> run_job(
      JobSpec spec, trace::SpanId parent_span = trace::kNoSpan);

  /// Storage keys used by jobs.
  static std::string input_key(const std::string& var) { return var + ".bin"; }
  static std::string output_key(const std::string& var) {
    return var + ".out.bin";
  }
  /// Key of block `block` of a chunked staged object whose manifest lives at
  /// `base_key` (an input_key or output_key). Blocks are sibling objects so
  /// each is independently addressable — the unit of the streaming transfer
  /// pipeline and of block-level delta caching.
  static std::string part_key(const std::string& base_key, uint64_t block);

 private:
  struct Environment;  // driver-resident variable buffers

  sim::Co<Status> read_inputs(const JobSpec& spec, Environment& env,
                              JobMetrics& metrics, trace::SpanId phase);
  /// Restores a chunked staged input: decodes an inline frame, or fetches
  /// and verifies the manifest's sibling block objects in parallel.
  sim::Co<Result<ByteBuffer>> read_chunked_input(const JobSpec& spec,
                                                 std::string base_key,
                                                 ByteBuffer manifest,
                                                 JobMetrics& metrics,
                                                 trace::SpanId phase);
  /// Stages one output as block objects plus a manifest (written last, so
  /// readers never observe a partially staged object).
  sim::Co<Status> write_chunked_output(const JobSpec& spec,
                                       std::string base_key, ByteView plain,
                                       JobMetrics& metrics,
                                       trace::SpanId phase);
  /// Runs loop `loop_index` of the job as one Spark stage (a `stage[s]`
  /// span under `job_span`, with distribute/task children).
  sim::Co<Status> run_loop(const JobSpec& spec, const LoopSpec& loop,
                           Environment& env, JobMetrics& metrics,
                           size_t loop_index, trace::SpanId job_span);
  sim::Co<Status> write_outputs(const JobSpec& spec, Environment& env,
                                JobMetrics& metrics, trace::SpanId phase);

  cloud::Cluster* cluster_;
  SparkConf conf_;
  TaskFaultInjector fault_injector_;
  TaskSlowdownInjector slowdown_injector_;
  Logger driver_log_{"spark.driver"};
};

}  // namespace ompcloud::spark
