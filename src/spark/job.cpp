#include "spark/job.h"

#include <algorithm>
#include <limits>

#include "support/strings.h"

namespace ompcloud::spark {

namespace {

template <typename T>
void reduce_typed(ReduceOp op, MutableByteView dst, ByteView src) {
  auto* d = reinterpret_cast<T*>(dst.data());
  const auto* s = reinterpret_cast<const T*>(src.data());
  size_t n = dst.size() / sizeof(T);
  switch (op) {
    case ReduceOp::kSum:
      for (size_t i = 0; i < n; ++i) d[i] += s[i];
      break;
    case ReduceOp::kMin:
      for (size_t i = 0; i < n; ++i) d[i] = std::min(d[i], s[i]);
      break;
    case ReduceOp::kMax:
      for (size_t i = 0; i < n; ++i) d[i] = std::max(d[i], s[i]);
      break;
    case ReduceOp::kBitOr:
      break;  // handled by caller
  }
}

}  // namespace

Status apply_reduce(const ReduceSpec& reduce, MutableByteView dst,
                    ByteView src) {
  if (dst.size() != src.size()) {
    return invalid_argument(
        str_format("reduce size mismatch: %zu vs %zu", dst.size(), src.size()));
  }
  if (reduce.op == ReduceOp::kBitOr) {
    bitwise_or_accumulate(dst, src);
    return Status::ok();
  }
  switch (reduce.type) {
    case ElemType::kF32: reduce_typed<float>(reduce.op, dst, src); break;
    case ElemType::kF64: reduce_typed<double>(reduce.op, dst, src); break;
    case ElemType::kI32: reduce_typed<int32_t>(reduce.op, dst, src); break;
    case ElemType::kI64: reduce_typed<int64_t>(reduce.op, dst, src); break;
  }
  return Status::ok();
}

namespace {

template <typename T>
void fill_typed(MutableByteView dst, T value) {
  auto* d = reinterpret_cast<T*>(dst.data());
  size_t n = dst.size() / sizeof(T);
  for (size_t i = 0; i < n; ++i) d[i] = value;
}

}  // namespace

void fill_reduce_identity(const ReduceSpec& reduce, MutableByteView dst) {
  if (reduce.op == ReduceOp::kBitOr || reduce.op == ReduceOp::kSum) {
    std::fill(dst.begin(), dst.end(), std::byte{0});
    return;
  }
  bool is_min = reduce.op == ReduceOp::kMin;
  switch (reduce.type) {
    case ElemType::kF32:
      fill_typed<float>(dst, is_min ? std::numeric_limits<float>::infinity()
                                    : -std::numeric_limits<float>::infinity());
      break;
    case ElemType::kF64:
      fill_typed<double>(dst, is_min ? std::numeric_limits<double>::infinity()
                                     : -std::numeric_limits<double>::infinity());
      break;
    case ElemType::kI32:
      fill_typed<int32_t>(dst, is_min ? std::numeric_limits<int32_t>::max()
                                      : std::numeric_limits<int32_t>::min());
      break;
    case ElemType::kI64:
      fill_typed<int64_t>(dst, is_min ? std::numeric_limits<int64_t>::max()
                                      : std::numeric_limits<int64_t>::min());
      break;
  }
}

std::vector<std::pair<int64_t, int64_t>> tile_iterations(
    int64_t iterations, int64_t cluster_cores) {
  std::vector<std::pair<int64_t, int64_t>> tiles;
  if (iterations <= 0) return tiles;
  int64_t count = std::max<int64_t>(1, std::min(iterations, cluster_cores));
  tiles.reserve(count);
  // Balanced split: the first (iterations % count) tiles get one extra
  // iteration, so sizes differ by at most 1 (Algorithm 1 with exact cover).
  int64_t base = iterations / count;
  int64_t extra = iterations % count;
  int64_t begin = 0;
  for (int64_t t = 0; t < count; ++t) {
    int64_t size = base + (t < extra ? 1 : 0);
    tiles.emplace_back(begin, begin + size);
    begin += size;
  }
  return tiles;
}

Status JobSpec::validate() const {
  if (bucket.empty()) return invalid_argument("job: bucket not set");
  if (loops.empty()) return invalid_argument("job: no loops");
  if (!sub_partitions.empty()) {
    int64_t expect = 0;
    for (const SubPartition& part : sub_partitions) {
      if (part.begin != expect || part.end <= part.begin) {
        return invalid_argument(str_format(
            "job: sub-partition '%s' [%lld, %lld) breaks the exact cover",
            part.label.c_str(), static_cast<long long>(part.begin),
            static_cast<long long>(part.end)));
      }
      expect = part.end;
    }
    for (const LoopSpec& loop : loops) {
      if (loop.iterations != expect) {
        return invalid_argument(str_format(
            "job: sub-partitions cover [0, %lld) but a loop has %lld "
            "iterations",
            static_cast<long long>(expect),
            static_cast<long long>(loop.iterations)));
      }
    }
  }
  for (const auto& var : vars) {
    if (var.size_bytes == 0) {
      return invalid_argument("job: variable '" + var.name + "' has zero size");
    }
    if (var.name.empty()) return invalid_argument("job: unnamed variable");
  }
  for (size_t l = 0; l < loops.size(); ++l) {
    const LoopSpec& loop = loops[l];
    if (loop.kernel.empty()) {
      return invalid_argument(str_format("job: loop %zu has no kernel", l));
    }
    if (loop.iterations <= 0) {
      return invalid_argument(str_format("job: loop %zu has no iterations", l));
    }
    if (loop.writes.empty()) {
      return invalid_argument(str_format("job: loop %zu writes nothing", l));
    }
    auto check_access = [&](const LoopAccess& access,
                            bool is_write) -> Status {
      if (access.var < 0 || access.var >= static_cast<int>(vars.size())) {
        return invalid_argument(
            str_format("job: loop %zu references unknown var %d", l, access.var));
      }
      bool partitioned = access.mode == LoopAccess::Mode::kReadPartitioned ||
                         access.mode == LoopAccess::Mode::kWritePartitioned;
      bool write_mode = access.mode == LoopAccess::Mode::kWritePartitioned ||
                        access.mode == LoopAccess::Mode::kWriteShared;
      if (write_mode != is_write) {
        return invalid_argument(
            str_format("job: loop %zu access mode/direction mismatch on '%s'",
                       l, vars[access.var].name.c_str()));
      }
      if (partitioned) {
        // Partition bounds must be monotone, within the variable, and cover
        // a non-empty range for every iteration.
        const AffineRange& r = access.partition;
        auto [lo0, hi0] = r.tile_range(0, 1);
        auto [lo_last, hi_last] =
            r.tile_range(loop.iterations - 1, loop.iterations);
        if (lo0 > hi0 || lo_last > hi_last ||
            hi_last > vars[access.var].size_bytes || hi0 == lo0) {
          return invalid_argument(
              str_format("job: loop %zu partition of '%s' out of bounds", l,
                         vars[access.var].name.c_str()));
        }
      }
      return Status::ok();
    };
    for (const auto& access : loop.reads) {
      OC_RETURN_IF_ERROR(check_access(access, /*is_write=*/false));
    }
    for (const auto& access : loop.writes) {
      OC_RETURN_IF_ERROR(check_access(access, /*is_write=*/true));
    }
  }
  return Status::ok();
}

}  // namespace ompcloud::spark
