// Spark job model for offloaded OpenMP target regions.
//
// This is the C++ rendering of the Scala program our "compiler" ships in the
// fat binary (paper §III-A): a job is a sequence of DOALL loops (§III-D:
// "several parallel for loops within the same target region ... implemented
// by performing successive map-reduce transformations within the Spark
// job"), over a data environment of mapped variables. Each loop describes,
// per variable, whether the loop reads it partitioned (one slice per
// iteration, Listing 2), reads it whole (broadcast), writes it partitioned
// (reconstruct by indexed writes) or writes it whole (reconstruct by
// bitwise-or, Eq. 8/9, or by a declared OpenMP reduction operator).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/bytes.h"
#include "support/status.h"

namespace ompcloud::spark {

/// A mapped variable in the target-region data environment.
struct VarSpec {
  std::string name;        ///< storage key stem and diagnostics label
  uint64_t size_bytes = 0;
  bool map_to = false;     ///< host -> device before the region
  bool map_from = false;   ///< device -> host after the region
  /// Full storage key to read this input from instead of the default
  /// `input_key(name)`. Set by the residency layer (omptarget/data_env.h)
  /// when the job should consume an earlier region's cloud-resident output
  /// in place — the buffer never round-trips through the host.
  std::string input_object;
};

/// Affine byte range per loop iteration: [lo(i), hi(i)) with
/// lo(i) = lo_coeff*i + lo_base and hi(i) = hi_coeff*i + hi_base.
/// Listing 2's `map(to: A[i*N:(i+1)*N])` over floats is
/// {4N, 0, 4N, 4N}. Tiling merges consecutive iterations, so for a tile
/// [b, e) the range is [lo(b), hi(e-1)) — the paper's "lower and upper
/// bounds of the partitions ... readjusted dynamically according to the
/// tiling size".
struct AffineRange {
  int64_t lo_coeff = 0;
  int64_t lo_base = 0;
  int64_t hi_coeff = 0;
  int64_t hi_base = 0;

  [[nodiscard]] int64_t lo(int64_t i) const { return lo_coeff * i + lo_base; }
  [[nodiscard]] int64_t hi(int64_t i) const { return hi_coeff * i + hi_base; }

  /// Byte range covered by tile [begin, end).
  [[nodiscard]] std::pair<uint64_t, uint64_t> tile_range(int64_t begin,
                                                         int64_t end) const {
    return {static_cast<uint64_t>(lo(begin)),
            static_cast<uint64_t>(hi(end - 1))};
  }

  /// Convenience: contiguous row partitioning, `elem_bytes*row_len` bytes
  /// per iteration (the Listing 2 pattern).
  static AffineRange rows(uint64_t bytes_per_iteration) {
    auto b = static_cast<int64_t>(bytes_per_iteration);
    return {b, 0, b, b};
  }
};

/// Element type of a reduction variable.
enum class ElemType { kF32, kF64, kI32, kI64 };

/// How partial outputs of unpartitioned variables are combined (Eq. 8):
/// bitwise-or by default, or the OpenMP reduction operator when the clause
/// declares one.
enum class ReduceOp { kBitOr, kSum, kMin, kMax };

struct ReduceSpec {
  ReduceOp op = ReduceOp::kBitOr;
  ElemType type = ElemType::kF32;  ///< ignored for kBitOr
};

/// Applies `op` elementwise: dst[i] = op(dst[i], src[i]). Sizes must match.
Status apply_reduce(const ReduceSpec& reduce, MutableByteView dst, ByteView src);

/// Fills `dst` with the identity element of the reduction (zeros for
/// bitor/sum, +inf/-inf patterns for min/max).
void fill_reduce_identity(const ReduceSpec& reduce, MutableByteView dst);

/// How one loop accesses one environment variable.
struct LoopAccess {
  int var = -1;  ///< index into JobSpec::vars

  enum class Mode {
    kReadBroadcast,     ///< whole variable to every worker (paper's B)
    kReadPartitioned,   ///< per-iteration slice (paper's A)
    kWritePartitioned,  ///< per-iteration slice, indexed reconstruct (C)
    kWriteShared,       ///< whole variable, reduce-combine reconstruct
  };
  Mode mode = Mode::kReadBroadcast;
  AffineRange partition;  ///< meaningful for partitioned modes
  ReduceSpec reduce;      ///< meaningful for kWriteShared
};

/// One DOALL `parallel for` inside the target region.
struct LoopSpec {
  std::string kernel;           ///< registered NativeBridge kernel
  int64_t iterations = 0;       ///< N
  double flops_per_iteration = 0;  ///< cost model for virtual compute time
  std::vector<LoopAccess> reads;   ///< kernel input order
  std::vector<LoopAccess> writes;  ///< kernel output order
  /// 0 = tile to the cluster size (Algorithm 1); otherwise forces a tile
  /// count (1 tile per iteration = the untiled ablation).
  int64_t explicit_tiles = 0;
};

/// One member's iteration sub-range inside a coalesced (micro-batched) job.
/// Tiling respects these boundaries — no tile straddles two members — and
/// map tasks are attributed to the owning tenant in kernel callbacks.
struct SubPartition {
  std::string label;   ///< member region name (diagnostics)
  std::string tenant;  ///< owning tenant pool
  int64_t begin = 0;   ///< first iteration (inclusive)
  int64_t end = 0;     ///< one past the last iteration
};

/// A complete Spark job: environment + loop pipeline + storage locations.
struct JobSpec {
  std::string name = "ompcloud-job";
  std::string bucket;               ///< cloud-storage bucket with the inputs
  std::string storage_codec = "gzlite";  ///< codec of stored objects
  uint64_t storage_min_compress = 4096;
  /// Block size for chunked staging of outputs larger than one block
  /// (0 = single-frame objects). Mirrors the plugin's `offload.chunk-size`.
  uint64_t storage_chunk_size = 0;
  /// Seal single-frame outputs with a plain-bytes checksum so the host
  /// detects in-flight corruption on download (chunked outputs already
  /// carry per-block hashes). Mirrors `offload.verify-transfers`.
  bool storage_seal = false;
  std::vector<VarSpec> vars;
  std::vector<LoopSpec> loops;
  /// Per-tenant sub-ranges of a coalesced batch job. Empty for ordinary
  /// jobs. When set, the partitions must cover [0, iterations) of every
  /// loop exactly, in order, without gaps.
  std::vector<SubPartition> sub_partitions;

  [[nodiscard]] Status validate() const;
};

/// Algorithm 1: split [0, N) into at most `cluster_cores` contiguous tiles.
/// Returns (begin, end) pairs covering the space exactly.
std::vector<std::pair<int64_t, int64_t>> tile_iterations(int64_t iterations,
                                                         int64_t cluster_cores);

/// Timing decomposition of one executed job, in virtual seconds. These are
/// the quantities behind the paper's Fig. 4/5 series.
struct JobMetrics {
  double job_seconds = 0;          ///< whole run_job duration (OmpCloud-spark)
  double input_read_seconds = 0;   ///< storage -> driver (step 3)
  double distribute_seconds = 0;   ///< partitions + broadcast (step 4)
  double map_collect_seconds = 0;  ///< tasks: schedule/compute/collect (5-6)
  double output_write_seconds = 0; ///< driver -> storage (step 7b)

  double compute_core_seconds = 0; ///< pure loop-body time, summed over cores
  double jni_core_seconds = 0;     ///< per-call JNI overhead, summed
  double codec_core_seconds = 0;   ///< (de)compression cpu time, summed
  /// Driver-side output rebuild (step 6-7: indexed writes / reductions),
  /// pipelined into the collect of each task, summed in core-seconds.
  double reconstruct_core_seconds = 0;

  int tasks = 0;
  int task_retries = 0;
  int speculative_launched = 0;    ///< duplicate copies started (speculation)
  int speculative_won = 0;         ///< races won by the duplicate
  int slots = 0;                   ///< concurrent task slots used
  uint64_t input_bytes = 0;        ///< plain bytes read from storage
  uint64_t output_bytes = 0;       ///< plain bytes written to storage
  uint64_t intra_cluster_bytes = 0;///< compressed driver<->worker traffic

  /// The paper's OmpCloud-computation series: ideal parallel compute time.
  [[nodiscard]] double computation_seconds() const {
    return slots > 0 ? compute_core_seconds / slots : 0.0;
  }
  /// Spark overhead: everything in the job that is not pure computation.
  [[nodiscard]] double spark_overhead_seconds() const {
    return job_seconds - computation_seconds();
  }
};

}  // namespace ompcloud::spark
