#include "spark/rdd.h"

#include "support/strings.h"

namespace ompcloud::spark {

RddSession::RddSession(cloud::Cluster& cluster, SparkConf conf,
                       std::string bucket)
    : cluster_(&cluster),
      context_(cluster, std::move(conf)),
      bucket_(std::move(bucket)) {
  Status created = cluster_->store().create_bucket(bucket_);
  (void)created;  // AlreadyExists is fine: sessions may share a bucket
}

Result<ByteBuffer> RddSession::run_pipeline(
    const rdd_detail::Lineage& lineage, size_t out_elem,
    std::optional<ReduceSpec> reduce,
    std::optional<rdd_detail::BucketPlan> bucket) {
  if (lineage.count == 0) return invalid_argument("empty RDD");
  auto& engine = cluster_->engine();
  const int id = next_kernel_id_++;
  const std::string kernel_name = str_format("rdd.pipeline.%d", id);
  const std::string in_var = str_format("rdd%din", id);
  const std::string out_var = str_format("rdd%dout", id);

  // --- Fuse the stage chain into one native kernel. -------------------------
  auto stages = std::make_shared<std::vector<rdd_detail::Stage>>(lineage.stages);
  const size_t in_elem = lineage.source_elem;
  const auto reduce_spec = reduce;
  auto bucket_plan = bucket ? std::make_shared<rdd_detail::BucketPlan>(*bucket)
                            : nullptr;
  jni::KernelRegistry::instance().register_kernel(
      kernel_name,
      [stages, in_elem, out_elem, reduce_spec,
       bucket_plan](const jni::KernelArgs& args) {
        size_t scratch_bytes = in_elem;
        for (const auto& stage : *stages) {
          scratch_bytes = std::max(scratch_bytes,
                                   std::max(stage.in_bytes, stage.out_bytes));
        }
        ByteBuffer ping(scratch_bytes), pong(scratch_bytes);
        const jni::InputSlice& in = args.inputs[0];
        jni::OutputSlice& out = args.outputs[0];
        for (int64_t i = args.begin; i < args.end; ++i) {
          // Current element: global index -> slice-local offset.
          uint64_t in_pos = static_cast<uint64_t>(i) * in_elem - in.byte_offset;
          std::memcpy(ping.data(), in.bytes.data() + in_pos, in_elem);
          size_t current_bytes = in_elem;
          for (const auto& stage : *stages) {
            stage.apply(ping.subview(0, stage.in_bytes),
                        pong.mutable_view().subspan(0, stage.out_bytes));
            std::swap(ping, pong);
            current_bytes = stage.out_bytes;
          }
          (void)current_bytes;
          if (bucket_plan) {
            // Map-side combine: fold into this element's bucket slot.
            int64_t slot = bucket_plan->bucket_of(ping.subview(0, out_elem));
            OC_RETURN_IF_ERROR(apply_reduce(
                bucket_plan->reduce,
                out.bytes.subspan(static_cast<size_t>(slot) * out_elem,
                                  out_elem),
                ping.subview(0, out_elem)));
          } else if (reduce_spec.has_value()) {
            // Fold this element into the task-local accumulator (already
            // initialized to the reduction identity by the executor).
            OC_RETURN_IF_ERROR(apply_reduce(
                *reduce_spec, out.bytes.subspan(0, out_elem),
                ping.subview(0, out_elem)));
          } else {
            uint64_t out_pos =
                static_cast<uint64_t>(i) * out_elem - out.byte_offset;
            std::memcpy(out.bytes.data() + out_pos, ping.data(), out_elem);
          }
        }
        return Status::ok();
      });

  // --- Stage the source to cloud storage (sc.parallelize). ------------------
  {
    auto framed = compress::encode_payload(
        context_.conf().io_compression ? context_.conf().io_codec : "null",
        lineage.source.view());
    OC_RETURN_IF_ERROR(framed.status());
    auto put_status = std::make_shared<Status>(Status::ok());
    engine.spawn([](RddSession* self, std::string key, ByteBuffer framed,
                    std::shared_ptr<Status> out) -> sim::Co<void> {
      *out = co_await self->cluster_->store().put(
          cloud::Cluster::driver_node(), self->bucket_, key, std::move(framed));
    }(this, SparkContext::input_key(in_var), std::move(*framed), put_status));
    engine.run();
    OC_RETURN_IF_ERROR(*put_status);
  }

  // --- Build and run the job. ------------------------------------------------
  JobSpec job;
  job.name = kernel_name;
  job.bucket = bucket_;
  job.storage_codec = context_.conf().io_compression ? context_.conf().io_codec
                                                     : "null";
  uint64_t out_size =
      bucket.has_value()
          ? static_cast<uint64_t>(bucket->buckets) * out_elem
          : (reduce.has_value()
                 ? out_elem
                 : static_cast<uint64_t>(lineage.count) * out_elem);
  job.vars = {
      {in_var, static_cast<uint64_t>(lineage.count) * in_elem, true, false},
      {out_var, out_size, false, true}};
  LoopSpec loop;
  loop.kernel = kernel_name;
  loop.iterations = lineage.count;
  loop.flops_per_iteration = 1.0;
  for (const auto& stage : lineage.stages) {
    loop.flops_per_iteration += stage.flops;
  }
  loop.reads = {{0, LoopAccess::Mode::kReadPartitioned,
                 AffineRange::rows(in_elem), {}}};
  if (bucket.has_value()) {
    // Bucketed aggregation: buckets-sized shared output, op-combined.
    loop.writes = {{1, LoopAccess::Mode::kWriteShared, {}, bucket->reduce}};
  } else if (reduce.has_value()) {
    loop.writes = {{1, LoopAccess::Mode::kWriteShared, {}, *reduce}};
  } else {
    loop.writes = {{1, LoopAccess::Mode::kWritePartitioned,
                    AffineRange::rows(out_elem), {}}};
  }
  job.loops.push_back(std::move(loop));

  auto job_result =
      std::make_shared<std::optional<Result<JobMetrics>>>();
  engine.spawn([](SparkContext* context, JobSpec job,
                  std::shared_ptr<std::optional<Result<JobMetrics>>> out)
                   -> sim::Co<void> {
    *out = co_await context->run_job(std::move(job));
  }(&context_, std::move(job), job_result));
  engine.run();
  if (!job_result->has_value()) return internal_error("RDD job never finished");
  OC_RETURN_IF_ERROR((**job_result).status());
  ++jobs_run_;

  // --- Fetch the output and clean up staged objects. -------------------------
  auto output = std::make_shared<Result<ByteBuffer>>(ByteBuffer{});
  engine.spawn([](RddSession* self, std::string in_key, std::string out_key,
                  std::shared_ptr<Result<ByteBuffer>> out) -> sim::Co<void> {
    auto framed = co_await self->cluster_->store().get(
        cloud::Cluster::driver_node(), self->bucket_, out_key);
    if (!framed.ok()) {
      *out = framed.status();
    } else {
      *out = compress::decode_payload(framed->view());
    }
    (void)co_await self->cluster_->store().remove(
        cloud::Cluster::driver_node(), self->bucket_, in_key);
    (void)co_await self->cluster_->store().remove(
        cloud::Cluster::driver_node(), self->bucket_, out_key);
  }(this, SparkContext::input_key(in_var), SparkContext::output_key(out_var),
    output));
  engine.run();
  return std::move(*output);
}

}  // namespace ompcloud::spark
