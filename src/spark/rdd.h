// Typed RDD facade over SparkLite.
//
// The paper builds on Spark because "Spark has enabled the design of many
// complex cloud based applications" (§II). This header gives the simulated
// cluster that same front door: a lazily-evaluated, typed, distributed
// dataset for trivially-copyable element types.
//
//   RddSession session(cluster, conf);
//   auto celsius = session.parallelize(readings);
//   double mean = celsius.map<float>([](float c) { return c * 1.8f + 32; })
//                        .sum() / readings.size();
//
// Chained `map`s are *fused* into one native kernel at action time (as
// Spark pipelines narrow transformations within a stage), then executed
// through the same JobSpec machinery the OpenMP offloading path uses: the
// source is staged to cloud storage, partitioned per element across
// workers, computed via the JNI bridge, and reduced/collected back.
#pragma once

#include <functional>
#include <memory>
#include <type_traits>
#include <vector>

#include "compress/payload.h"
#include "jnibridge/bridge.h"
#include "spark/context.h"

namespace ompcloud::spark {

namespace rdd_detail {

/// One fused pipeline stage: transforms a single element in place.
struct Stage {
  size_t in_bytes = 0;
  size_t out_bytes = 0;
  std::function<void(ByteView in, MutableByteView out)> apply;
  double flops = 1.0;  ///< cost-model estimate per element
};

/// Shared lineage: the source bytes plus the fused map stages.
struct Lineage {
  ByteBuffer source;       ///< serialized source elements
  size_t source_elem = 0;  ///< sizeof(source element)
  int64_t count = 0;       ///< number of elements
  std::vector<Stage> stages;
};

template <typename T>
constexpr ElemType elem_type_of() {
  static_assert(std::is_same_v<T, float> || std::is_same_v<T, double> ||
                    std::is_same_v<T, int32_t> || std::is_same_v<T, int64_t>,
                "typed reductions support f32/f64/i32/i64");
  if constexpr (std::is_same_v<T, float>) return ElemType::kF32;
  if constexpr (std::is_same_v<T, double>) return ElemType::kF64;
  if constexpr (std::is_same_v<T, int32_t>) return ElemType::kI32;
  return ElemType::kI64;
}

}  // namespace rdd_detail

class RddSession;

/// A distributed dataset of `count()` elements of type T. Cheap to copy
/// (shares lineage); transformations are lazy, actions run a Spark job.
template <typename T>
class Rdd {
  static_assert(std::is_trivially_copyable_v<T>,
                "RDD elements must be trivially copyable (they travel as "
                "bytes through storage and the JNI bridge)");

 public:
  [[nodiscard]] int64_t count() const { return lineage_->count; }

  /// Lazy elementwise transformation; fused with previous maps.
  /// `flops` is the cost-model estimate per element (virtual time).
  template <typename U, typename Fn>
  [[nodiscard]] Rdd<U> map(Fn fn, double flops = 1.0) const {
    auto next = std::make_shared<rdd_detail::Lineage>(*lineage_);
    rdd_detail::Stage stage;
    stage.in_bytes = sizeof(T);
    stage.out_bytes = sizeof(U);
    stage.flops = flops;
    stage.apply = [fn](ByteView in, MutableByteView out) {
      T value;
      std::memcpy(&value, in.data(), sizeof(T));
      U result = fn(value);
      std::memcpy(out.data(), &result, sizeof(U));
    };
    next->stages.push_back(std::move(stage));
    return Rdd<U>(session_, std::move(next));
  }

  /// Actions (each runs one Spark job on the session's cluster).
  [[nodiscard]] Result<std::vector<T>> collect() const;
  [[nodiscard]] Result<T> sum() const { return reduce_action(ReduceOp::kSum); }
  [[nodiscard]] Result<T> min() const { return reduce_action(ReduceOp::kMin); }
  [[nodiscard]] Result<T> max() const { return reduce_action(ReduceOp::kMax); }

  /// Grouped aggregation over a fixed key domain (Spark's reduceByKey with
  /// map-side combine, for keys in [0, buckets)): `key_of` assigns each
  /// element a bucket, and the per-bucket values are combined with `op`.
  /// Each task aggregates its partition locally (one buckets-sized partial),
  /// and the partials are op-combined at the driver — exactly the paper's
  /// Eq. 8 reconstruction with the reduction operator.
  template <typename KeyFn>
  [[nodiscard]] Result<std::vector<T>> aggregate_by_bucket(
      int64_t buckets, KeyFn key_of, ReduceOp op = ReduceOp::kSum) const;

 private:
  template <typename>
  friend class Rdd;
  friend class RddSession;

  Rdd(RddSession* session, std::shared_ptr<rdd_detail::Lineage> lineage)
      : session_(session), lineage_(std::move(lineage)) {}

  [[nodiscard]] Result<T> reduce_action(ReduceOp op) const;

  RddSession* session_;
  std::shared_ptr<rdd_detail::Lineage> lineage_;
};

namespace rdd_detail {
/// Bucketed-aggregation plan attached to a pipeline run: the final stage's
/// element is combined into `buckets` slots keyed by `bucket_of`.
struct BucketPlan {
  int64_t buckets = 0;
  std::function<int64_t(ByteView element)> bucket_of;
  ReduceSpec reduce;
};
}  // namespace rdd_detail

/// Factory + executor for RDDs on one simulated cluster.
class RddSession {
 public:
  /// Jobs run on `cluster` with `conf`; staged data lives in `bucket`
  /// (created on demand).
  RddSession(cloud::Cluster& cluster, SparkConf conf,
             std::string bucket = "rdd-session");

  /// Distributes a local vector (Spark's sc.parallelize): the data is
  /// staged to cloud storage once and partitioned across workers per job.
  template <typename T>
  [[nodiscard]] Rdd<T> parallelize(const std::vector<T>& data,
                                   double flops_per_element = 1.0) {
    auto lineage = std::make_shared<rdd_detail::Lineage>();
    lineage->source = ByteBuffer::copy_of(data.data(), data.size());
    lineage->source_elem = sizeof(T);
    lineage->count = static_cast<int64_t>(data.size());
    (void)flops_per_element;
    return Rdd<T>(this, std::move(lineage));
  }

  [[nodiscard]] SparkContext& context() { return context_; }
  [[nodiscard]] cloud::Cluster& cluster() { return *cluster_; }

  /// Jobs executed so far (diagnostics).
  [[nodiscard]] int jobs_run() const { return jobs_run_; }

 private:
  template <typename>
  friend class Rdd;

  /// Runs the fused pipeline; `out_elem` is the final element size.
  /// If `reduce` is set, the output is a single reduced element; with a
  /// `bucket` plan it is `buckets` reduced elements; otherwise the full
  /// element vector. Returns the plain output bytes.
  Result<ByteBuffer> run_pipeline(
      const rdd_detail::Lineage& lineage, size_t out_elem,
      std::optional<ReduceSpec> reduce,
      std::optional<rdd_detail::BucketPlan> bucket = std::nullopt);

  cloud::Cluster* cluster_;
  SparkContext context_;
  std::string bucket_;
  int jobs_run_ = 0;
  int next_kernel_id_ = 0;
};

template <typename T>
Result<std::vector<T>> Rdd<T>::collect() const {
  OC_ASSIGN_OR_RETURN(
      ByteBuffer bytes,
      session_->run_pipeline(*lineage_, sizeof(T), std::nullopt));
  auto view = bytes.as<T>();
  return std::vector<T>(view.begin(), view.end());
}

template <typename T>
template <typename KeyFn>
Result<std::vector<T>> Rdd<T>::aggregate_by_bucket(int64_t buckets,
                                                   KeyFn key_of,
                                                   ReduceOp op) const {
  if (buckets <= 0) return invalid_argument("buckets must be positive");
  rdd_detail::BucketPlan plan;
  plan.buckets = buckets;
  plan.reduce = ReduceSpec{op, rdd_detail::elem_type_of<T>()};
  plan.bucket_of = [key_of, buckets](ByteView element) {
    T value;
    std::memcpy(&value, element.data(), sizeof(T));
    int64_t key = key_of(value);
    // Clamp misbehaving key functions rather than corrupting memory.
    return key < 0 ? 0 : (key >= buckets ? buckets - 1 : key);
  };
  OC_ASSIGN_OR_RETURN(
      ByteBuffer bytes,
      session_->run_pipeline(*lineage_, sizeof(T), plan.reduce, plan));
  auto view = bytes.as<T>();
  if (view.size() != static_cast<size_t>(buckets)) {
    return internal_error("bucket aggregation returned wrong size");
  }
  return std::vector<T>(view.begin(), view.end());
}

template <typename T>
Result<T> Rdd<T>::reduce_action(ReduceOp op) const {
  ReduceSpec reduce{op, rdd_detail::elem_type_of<T>()};
  OC_ASSIGN_OR_RETURN(ByteBuffer bytes,
                      session_->run_pipeline(*lineage_, sizeof(T), reduce));
  if (bytes.size() != sizeof(T)) {
    return internal_error("reduce returned wrong element size");
  }
  T value;
  std::memcpy(&value, bytes.data(), sizeof(T));
  return value;
}

}  // namespace ompcloud::spark
