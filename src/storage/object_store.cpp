#include "storage/object_store.h"

#include <algorithm>

#include "support/strings.h"

namespace ompcloud::storage {

StorageProfile s3_profile() {
  return StorageProfile{"s3", 0.030, 0.020, 0.040, 64ull << 20, 16ull << 20};
}

StorageProfile hdfs_profile() {
  return StorageProfile{"hdfs", 0.005, 0.003, 0.010, 128ull << 20, 64ull << 20};
}

StorageProfile azure_profile() {
  return StorageProfile{"azure", 0.035, 0.025, 0.050, 64ull << 20, 16ull << 20};
}

ObjectStore::ObjectStore(net::Network& network, std::string node_name,
                         StorageProfile profile)
    : network_(&network), node_(std::move(node_name)),
      profile_(std::move(profile)) {}

Status ObjectStore::create_bucket(const std::string& bucket) {
  if (buckets_.count(bucket)) {
    return already_exists("bucket '" + bucket + "'");
  }
  buckets_[bucket];
  return Status::ok();
}

bool ObjectStore::bucket_exists(const std::string& bucket) const {
  return buckets_.count(bucket) > 0;
}

Status ObjectStore::check_fault(std::string_view op, const std::string& bucket,
                                const std::string& key) const {
  if (!fault_injector_) return Status::ok();
  return fault_injector_(op, bucket, key);
}

namespace {

/// Opens a `store.*` span parented through the tracer's ambient slot. Must
/// run at coroutine-body entry (which is synchronous inside the caller's
/// co_await) so the ambient parent is still the caller's span.
trace::SpanHandle op_span(trace::Tracer* tracer, const char* name,
                          const std::string& bucket, const std::string& key) {
  if (tracer == nullptr) return {};
  trace::SpanHandle span = tracer->span(name, tracer->take_ambient());
  span.tag("key", bucket + "/" + key);
  return span;
}

/// Closes `span` and records its duration in the named histogram.
void finish_op(trace::Tracer* tracer, trace::SpanHandle& span,
               const char* histogram) {
  if (tracer == nullptr || !span.active()) return;
  double seconds = span.duration();
  span.end();
  tracer->metrics().histogram(histogram).record(seconds);
}

/// Plan-driven transient failure for one op. Tags the op span so the trace
/// analyzer can count faults per offload subtree.
Status probe_transient(fault::FaultInjector* chaos, trace::SpanHandle& span,
                       std::string_view op, const std::string& bucket,
                       const std::string& key) {
  if (chaos == nullptr) return Status::ok();
  std::string detail = std::string(op) + " " + bucket + "/" + key;
  if (!chaos->should_fail("storage.transient", detail)) return Status::ok();
  span.tag("fault", "storage.transient");
  return unavailable("fault:storage.transient " + detail);
}

/// A transfer that failed because of an injected network fault also gets a
/// `fault` tag on the enclosing op span (genuine errors stay untagged).
void tag_injected_transfer_fault(trace::SpanHandle& span,
                                 const Status& moved) {
  if (starts_with(moved.message(), "fault:")) {
    span.tag("fault", moved.message());
  }
}

}  // namespace

sim::Co<Status> ObjectStore::move_bytes(std::string from, std::string to,
                                        uint64_t bytes,
                                        double request_latency) {
  // Multipart: split large payloads into parts, each paying one request
  // latency, transferred concurrently (they still contend on the route's
  // links, so bandwidth is charged honestly).
  if (bytes > profile_.multipart_threshold && profile_.multipart_part_size > 0) {
    uint64_t parts = (bytes + profile_.multipart_part_size - 1) /
                     profile_.multipart_part_size;
    std::vector<sim::Completion> transfers;
    for (uint64_t p = 0; p < parts; ++p) {
      uint64_t part_bytes = std::min(profile_.multipart_part_size,
                                     bytes - p * profile_.multipart_part_size);
      transfers.push_back(network_->engine().spawn(
          [](ObjectStore* store, std::string from, std::string to,
             uint64_t part_bytes, double latency) -> sim::Co<void> {
            co_await store->network_->engine().sleep(latency);
            Status s = co_await store->network_->transfer(from, to, part_bytes);
            if (!s.is_ok()) throw std::runtime_error(s.to_string());
          }(this, from, to, part_bytes, request_latency)));
    }
    co_await sim::all(std::move(transfers));
    co_return Status::ok();
  }
  co_await network_->engine().sleep(request_latency);
  co_return co_await network_->transfer(from, to, bytes);
}

sim::Co<Status> ObjectStore::put(std::string client_node, std::string bucket,
                                 std::string key, ByteBuffer data) {
  trace::SpanHandle span = op_span(tracer_, "store.put", bucket, key);
  span.add("bytes", static_cast<double>(data.size()));
  OC_CO_RETURN_IF_ERROR(check_fault("put", bucket, key));
  OC_CO_RETURN_IF_ERROR(probe_transient(chaos_, span, "put", bucket, key));
  auto it = buckets_.find(bucket);
  if (it == buckets_.end()) {
    co_return not_found("bucket '" + bucket + "'");
  }
  uint64_t bytes = data.size();
  Status moved = co_await move_bytes(client_node, node_, bytes,
                                     profile_.put_request_latency);
  if (!moved.is_ok()) {
    tag_injected_transfer_fault(span, moved);
    co_return moved;
  }
  ++stats_.puts;
  stats_.bytes_in += bytes;
  ByteBuffer& stored = (it->second[key] = std::move(data));
  // Torn write: the PUT is acked but the stored object is silently
  // truncated — only detectable by an end-to-end integrity check
  // (verify-after-put HEAD, or the checksum carried in the payload frame).
  if (chaos_ != nullptr && stored.size() > 1 &&
      chaos_->should_fail("storage.torn-write", bucket + "/" + key)) {
    span.tag("fault", "storage.torn-write");
    stored.resize(stored.size() - std::max<size_t>(1, stored.size() / 4));
  }
  finish_op(tracer_, span, "store.put_seconds");
  co_return Status::ok();
}

sim::Co<Result<ByteBuffer>> ObjectStore::get(std::string client_node,
                                             std::string bucket,
                                             std::string key) {
  trace::SpanHandle span = op_span(tracer_, "store.get", bucket, key);
  OC_CO_RETURN_IF_ERROR(check_fault("get", bucket, key));
  OC_CO_RETURN_IF_ERROR(probe_transient(chaos_, span, "get", bucket, key));
  auto bucket_it = buckets_.find(bucket);
  if (bucket_it == buckets_.end()) {
    co_return not_found("bucket '" + bucket + "'");
  }
  auto object_it = bucket_it->second.find(key);
  if (object_it == bucket_it->second.end()) {
    co_return not_found("object '" + bucket + "/" + key + "'");
  }
  // Snapshot before yielding: the map may be mutated while we "transfer".
  ByteBuffer data(object_it->second.view());
  Status moved = co_await move_bytes(node_, client_node, data.size(),
                                     profile_.get_request_latency);
  if (!moved.is_ok()) {
    tag_injected_transfer_fault(span, moved);
    co_return moved;
  }
  // In-flight corruption: one bit of the *copy* flips (the stored object is
  // intact), so an integrity check + re-download recovers. The flipped bit
  // is derived from the content hash — deterministic, no RNG draw ordering.
  if (chaos_ != nullptr && !data.empty() &&
      chaos_->should_fail("net.corrupt", bucket + "/" + key)) {
    span.tag("fault", "net.corrupt");
    uint64_t bit = fnv1a(data.view()) % (data.size() * 8);
    data.data()[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
  }
  ++stats_.gets;
  stats_.bytes_out += data.size();
  span.add("bytes", static_cast<double>(data.size()));
  finish_op(tracer_, span, "store.get_seconds");
  co_return data;
}

sim::Co<Status> ObjectStore::remove(std::string client_node,
                                    std::string bucket, std::string key) {
  trace::SpanHandle span = op_span(tracer_, "store.delete", bucket, key);
  OC_CO_RETURN_IF_ERROR(check_fault("delete", bucket, key));
  OC_CO_RETURN_IF_ERROR(probe_transient(chaos_, span, "delete", bucket, key));
  (void)client_node;
  co_await network_->engine().sleep(profile_.put_request_latency);
  auto bucket_it = buckets_.find(bucket);
  if (bucket_it == buckets_.end()) {
    co_return not_found("bucket '" + bucket + "'");
  }
  ++stats_.deletes;
  bucket_it->second.erase(key);  // idempotent, like S3 DeleteObject
  finish_op(tracer_, span, "store.delete_seconds");
  co_return Status::ok();
}

sim::Co<Result<std::vector<std::string>>> ObjectStore::list(
    std::string client_node, std::string bucket, std::string prefix) {
  trace::SpanHandle span = op_span(tracer_, "store.list", bucket, prefix);
  OC_CO_RETURN_IF_ERROR(check_fault("list", bucket, ""));
  OC_CO_RETURN_IF_ERROR(probe_transient(chaos_, span, "list", bucket, prefix));
  (void)client_node;
  co_await network_->engine().sleep(profile_.list_request_latency);
  auto bucket_it = buckets_.find(bucket);
  if (bucket_it == buckets_.end()) {
    co_return not_found("bucket '" + bucket + "'");
  }
  ++stats_.lists;
  std::vector<std::string> keys;
  for (const auto& [key, value] : bucket_it->second) {
    if (starts_with(key, prefix)) keys.push_back(key);
  }
  finish_op(tracer_, span, "store.list_seconds");
  co_return keys;
}

sim::Co<Result<ObjectInfo>> ObjectStore::head(std::string client_node,
                                              std::string bucket,
                                              std::string key) {
  trace::SpanHandle span = op_span(tracer_, "store.head", bucket, key);
  OC_CO_RETURN_IF_ERROR(check_fault("head", bucket, key));
  OC_CO_RETURN_IF_ERROR(probe_transient(chaos_, span, "head", bucket, key));
  (void)client_node;
  co_await network_->engine().sleep(profile_.get_request_latency);
  auto bucket_it = buckets_.find(bucket);
  if (bucket_it == buckets_.end()) {
    co_return not_found("bucket '" + bucket + "'");
  }
  auto object_it = bucket_it->second.find(key);
  if (object_it == bucket_it->second.end()) {
    co_return not_found("object '" + bucket + "/" + key + "'");
  }
  finish_op(tracer_, span, "store.head_seconds");
  co_return ObjectInfo{object_it->second.size(), fnv1a(object_it->second.view())};
}

bool ObjectStore::contains(const std::string& bucket,
                           const std::string& key) const {
  auto it = buckets_.find(bucket);
  return it != buckets_.end() && it->second.count(key) > 0;
}

uint64_t ObjectStore::total_stored_bytes() const {
  uint64_t total = 0;
  for (const auto& [bucket, objects] : buckets_) {
    for (const auto& [key, data] : objects) total += data.size();
  }
  return total;
}

}  // namespace ompcloud::storage
