// Simulated cloud object storage (AWS S3 / HDFS / Azure Storage profiles).
//
// The paper's cloud plugin "sends the input data required by the kernel as
// binary files to a cloud storage device (e.g. AWS S3 or any HDFS server)"
// (§III, Fig. 1 steps 2/3/7/8). This ObjectStore lives on a network node;
// every put/get pays the route's bandwidth/latency between the caller's node
// and the store plus a per-request control-plane latency from the service
// profile. Contents are held verbatim with integrity hashes, so the whole
// offloading pipeline moves and restores real bytes.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "net/network.h"
#include "support/bytes.h"
#include "support/fault.h"
#include "support/status.h"
#include "trace/tracer.h"

namespace ompcloud::storage {

/// Service characteristics (control-plane latencies; data-plane costs come
/// from the network links).
struct StorageProfile {
  std::string service_name = "s3";
  double put_request_latency = 0.030;   ///< e.g. S3 PUT first-byte overhead
  double get_request_latency = 0.020;
  double list_request_latency = 0.040;
  /// Objects above this size are uploaded in parallel parts (one request
  /// latency per part, parts pipelined on the same route).
  uint64_t multipart_threshold = 64ull << 20;
  uint64_t multipart_part_size = 16ull << 20;
};

/// AWS-S3-like profile (paper's default storage for EC2 clusters).
StorageProfile s3_profile();
/// HDFS-like profile: cheaper per-request (no HTTPS/auth handshake).
StorageProfile hdfs_profile();
/// Azure-Blob-like profile.
StorageProfile azure_profile();

/// Metadata returned by `head`.
struct ObjectInfo {
  uint64_t size = 0;
  uint64_t content_hash = 0;  ///< fnv1a of the stored bytes
};

/// Operation counters (bench/diagnostics).
struct StoreStats {
  uint64_t puts = 0;
  uint64_t gets = 0;
  uint64_t deletes = 0;
  uint64_t lists = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
};

/// A bucketed key-value object store bound to a network node.
class ObjectStore {
 public:
  /// Fault injector: consulted before each operation; returning a non-OK
  /// status makes the operation fail with it (used to test plugin retry and
  /// host-fallback paths). `op` is "put"/"get"/"delete"/"list"/"head".
  using FaultInjector = std::function<Status(
      std::string_view op, const std::string& bucket, const std::string& key)>;

  ObjectStore(net::Network& network, std::string node_name,
              StorageProfile profile);

  [[nodiscard]] const std::string& node_name() const { return node_; }
  [[nodiscard]] const StorageProfile& profile() const { return profile_; }
  [[nodiscard]] const StoreStats& stats() const { return stats_; }

  /// Buckets must exist before use (mirrors S3; HDFS dirs behave the same).
  Status create_bucket(const std::string& bucket);
  [[nodiscard]] bool bucket_exists(const std::string& bucket) const;

  /// Uploads `data` from `client_node`. Pays route bandwidth + request
  /// latency (per part above the multipart threshold). Overwrites silently
  /// (S3 semantics). String parameters are by value: coroutine frames must
  /// own their arguments (callers routinely pass temporaries).
  [[nodiscard]] sim::Co<Status> put(std::string client_node, std::string bucket,
                                    std::string key, ByteBuffer data);

  /// Downloads an object to `client_node`.
  [[nodiscard]] sim::Co<Result<ByteBuffer>> get(std::string client_node,
                                                std::string bucket,
                                                std::string key);

  /// Deletes one object (idempotent: deleting a missing key is OK, as in S3).
  [[nodiscard]] sim::Co<Status> remove(std::string client_node,
                                       std::string bucket, std::string key);

  /// Lists keys in a bucket with the given prefix (lexicographic order).
  [[nodiscard]] sim::Co<Result<std::vector<std::string>>> list(
      std::string client_node, std::string bucket, std::string prefix = "");

  /// Metadata-only request (no data-plane cost).
  [[nodiscard]] sim::Co<Result<ObjectInfo>> head(std::string client_node,
                                                 std::string bucket,
                                                 std::string key);

  /// Immediate, cost-free introspection for tests.
  [[nodiscard]] bool contains(const std::string& bucket,
                              const std::string& key) const;
  [[nodiscard]] uint64_t total_stored_bytes() const;

  void set_fault_injector(FaultInjector injector) {
    fault_injector_ = std::move(injector);
  }

  /// Attaches the plan-driven injector (support/fault.h), generalizing the
  /// ad-hoc hook above: ops probe `storage.transient` (fail UNAVAILABLE),
  /// acked PUTs probe `storage.torn-write` (the stored object is silently
  /// truncated), and GETs probe `net.corrupt` (one bit of the in-flight
  /// copy flips — the stored object stays intact, so a re-download
  /// recovers). Null detaches; the store borrows the pointer (owner:
  /// cloud::Cluster). Both hooks may be active; the ad-hoc one wins ties.
  void attach_faults(fault::FaultInjector* injector) { chaos_ = injector; }

  /// Attaches a tracer: every put/get/delete/list/head then records a
  /// `store.*` span (parented through the tracer's ambient slot) plus an
  /// operation-duration histogram. Null detaches. The store borrows the
  /// pointer; the owner (Cluster) keeps it alive.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

 private:
  Status check_fault(std::string_view op, const std::string& bucket,
                     const std::string& key) const;
  [[nodiscard]] sim::Co<Status> move_bytes(std::string from, std::string to,
                                           uint64_t bytes,
                                           double request_latency);

  net::Network* network_;
  std::string node_;
  StorageProfile profile_;
  std::map<std::string, std::map<std::string, ByteBuffer>> buckets_;
  StoreStats stats_;
  FaultInjector fault_injector_;
  fault::FaultInjector* chaos_ = nullptr;
  trace::Tracer* tracer_ = nullptr;
};

}  // namespace ompcloud::storage
