#include "support/bytes.h"

#include <algorithm>
#include <cassert>

namespace ompcloud {

uint64_t fnv1a(ByteView data) {
  uint64_t hash = 14695981039346656037ull;
  for (std::byte b : data) {
    hash ^= static_cast<uint64_t>(b);
    hash *= 1099511628211ull;
  }
  return hash;
}

void bitwise_or_accumulate(MutableByteView dst, ByteView src) {
  assert(dst.size() == src.size() &&
         "bitwise-or reconstruction requires equal-sized partial outputs");
  const size_t n = std::min(dst.size(), src.size());
  for (size_t i = 0; i < n; ++i) dst[i] |= src[i];
}

}  // namespace ompcloud
