// Byte-buffer primitives shared by the whole stack.
//
// Mapped OpenMP variables, storage objects, RDD partitions and network
// payloads are all untyped byte ranges (the paper treats offloaded variables
// "as arrays of bytes", §III-C), so a common owning buffer plus cheap views
// keeps every layer allocation-free at the boundaries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace ompcloud {

/// Immutable view over raw bytes.
using ByteView = std::span<const std::byte>;
/// Mutable view over raw bytes.
using MutableByteView = std::span<std::byte>;

/// Owning, contiguous, resizable byte buffer.
///
/// Thin wrapper over std::vector<std::byte> with typed-copy helpers; this is
/// the currency for storage objects, compressed payloads and RDD elements.
class ByteBuffer {
 public:
  ByteBuffer() = default;
  explicit ByteBuffer(size_t size) : data_(size) {}
  explicit ByteBuffer(ByteView view) : data_(view.begin(), view.end()) {}

  /// Copies `count` objects of trivially-copyable type T from `src`.
  /// `src` may be null when `count` is zero (empty vectors hand out null).
  template <typename T>
  static ByteBuffer copy_of(const T* src, size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    ByteBuffer buf(count * sizeof(T));
    if (count != 0) std::memcpy(buf.data(), src, count * sizeof(T));
    return buf;
  }

  /// Copies the bytes of a string (without terminator).
  static ByteBuffer from_string(std::string_view s) {
    ByteBuffer buf(s.size());
    if (!s.empty()) std::memcpy(buf.data(), s.data(), s.size());
    return buf;
  }

  [[nodiscard]] size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  std::byte* data() { return data_.data(); }
  [[nodiscard]] const std::byte* data() const { return data_.data(); }

  void resize(size_t n) { data_.resize(n); }
  void clear() { data_.clear(); }
  void reserve(size_t n) { data_.reserve(n); }

  void append(ByteView view) { data_.insert(data_.end(), view.begin(), view.end()); }
  void push_back(std::byte b) { data_.push_back(b); }

  [[nodiscard]] ByteView view() const { return {data_.data(), data_.size()}; }
  [[nodiscard]] MutableByteView mutable_view() { return {data_.data(), data_.size()}; }
  operator ByteView() const { return view(); }  // NOLINT(implicit)

  /// Sub-view [offset, offset+len); clamped to the buffer end.
  [[nodiscard]] ByteView subview(size_t offset, size_t len) const {
    if (offset >= data_.size()) return {};
    return view().subspan(offset, std::min(len, data_.size() - offset));
  }

  /// Reinterprets the contents as `count = size()/sizeof(T)` objects of T.
  template <typename T>
  [[nodiscard]] std::span<const T> as() const {
    static_assert(std::is_trivially_copyable_v<T>);
    return {reinterpret_cast<const T*>(data_.data()), data_.size() / sizeof(T)};
  }
  template <typename T>
  std::span<T> as_mutable() {
    static_assert(std::is_trivially_copyable_v<T>);
    return {reinterpret_cast<T*>(data_.data()), data_.size() / sizeof(T)};
  }

  [[nodiscard]] std::string to_string() const {
    return {reinterpret_cast<const char*>(data_.data()), data_.size()};
  }

  friend bool operator==(const ByteBuffer& a, const ByteBuffer& b) {
    return a.data_ == b.data_;
  }

 private:
  std::vector<std::byte> data_;
};

/// Makes a ByteView over `count` objects of trivially-copyable T.
template <typename T>
ByteView as_bytes_of(const T* ptr, size_t count) {
  static_assert(std::is_trivially_copyable_v<T>);
  return {reinterpret_cast<const std::byte*>(ptr), count * sizeof(T)};
}

/// Makes a MutableByteView over `count` objects of trivially-copyable T.
template <typename T>
MutableByteView as_mutable_bytes_of(T* ptr, size_t count) {
  static_assert(std::is_trivially_copyable_v<T>);
  return {reinterpret_cast<std::byte*>(ptr), count * sizeof(T)};
}

/// FNV-1a 64-bit hash of a byte range; used for content checks in tests and
/// object integrity verification in the storage layer.
uint64_t fnv1a(ByteView data);

/// Bitwise-or accumulate: dst[i] |= src[i]. This is the paper's Eq. (8)/(9)
/// reconstruction operator for unpartitioned outputs of DOALL loops.
void bitwise_or_accumulate(MutableByteView dst, ByteView src);

}  // namespace ompcloud
