#include "support/config.h"

#include <fstream>
#include <sstream>

#include "support/strings.h"

namespace ompcloud {

Result<Config> Config::parse(std::string_view text) {
  Config config;
  std::string section;
  size_t line_no = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t eol = text.find('\n', start);
    std::string_view line = (eol == std::string_view::npos)
                                ? text.substr(start)
                                : text.substr(start, eol - start);
    ++line_no;
    start = (eol == std::string_view::npos) ? text.size() + 1 : eol + 1;

    line = trim(line);
    if (line.empty() || line.front() == '#' || line.front() == ';') continue;

    if (line.front() == '[') {
      if (line.back() != ']' || line.size() < 2) {
        return invalid_argument(
            str_format("config line %zu: malformed section header", line_no));
      }
      section = std::string(trim(line.substr(1, line.size() - 2)));
      continue;
    }

    size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return invalid_argument(
          str_format("config line %zu: expected 'key = value'", line_no));
    }
    std::string_view key = trim(line.substr(0, eq));
    std::string_view value = trim(line.substr(eq + 1));
    if (key.empty()) {
      return invalid_argument(str_format("config line %zu: empty key", line_no));
    }
    // Strip a trailing inline comment that is preceded by whitespace.
    for (size_t i = 1; i < value.size(); ++i) {
      if ((value[i] == '#' || value[i] == ';') &&
          std::isspace(static_cast<unsigned char>(value[i - 1]))) {
        value = trim(value.substr(0, i));
        break;
      }
    }
    config.set(section, key, std::string(value));
  }
  return config;
}

Result<Config> Config::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return not_found("cannot open config file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  auto parsed = parse(ss.str());
  if (!parsed.ok()) return parsed.status().with_context(path);
  return parsed;
}

void Config::set(std::string_view section, std::string_view key,
                 std::string value) {
  auto map_key = std::make_pair(std::string(section), std::string(key));
  auto it = index_.find(map_key);
  if (it != index_.end()) {
    entries_[it->second].value = std::move(value);
    return;
  }
  index_[map_key] = entries_.size();
  entries_.push_back({map_key.first, map_key.second, std::move(value)});
}

std::pair<std::string, std::string> Config::split_dotted(std::string_view dotted) {
  size_t dot = dotted.find('.');
  if (dot == std::string_view::npos) return {"", std::string(dotted)};
  return {std::string(dotted.substr(0, dot)), std::string(dotted.substr(dot + 1))};
}

void Config::set(std::string_view dotted_key, std::string value) {
  auto [section, key] = split_dotted(dotted_key);
  set(section, key, std::move(value));
}

bool Config::has(std::string_view section, std::string_view key) const {
  return index_.count({std::string(section), std::string(key)}) > 0;
}

bool Config::has(std::string_view dotted_key) const {
  auto [section, key] = split_dotted(dotted_key);
  return has(section, key);
}

std::optional<std::string> Config::get_string(std::string_view dotted_key) const {
  auto [section, key] = split_dotted(dotted_key);
  auto it = index_.find({section, key});
  if (it == index_.end()) return std::nullopt;
  return entries_[it->second].value;
}

std::string Config::get_string(std::string_view dotted_key,
                               std::string_view fallback) const {
  auto v = get_string(dotted_key);
  return v ? *v : std::string(fallback);
}

std::optional<int64_t> Config::get_int(std::string_view dotted_key) const {
  auto v = get_string(dotted_key);
  return v ? parse_int(*v) : std::nullopt;
}
int64_t Config::get_int(std::string_view dotted_key, int64_t fallback) const {
  return get_int(dotted_key).value_or(fallback);
}

std::optional<double> Config::get_double(std::string_view dotted_key) const {
  auto v = get_string(dotted_key);
  return v ? parse_double(*v) : std::nullopt;
}
double Config::get_double(std::string_view dotted_key, double fallback) const {
  return get_double(dotted_key).value_or(fallback);
}

std::optional<bool> Config::get_bool(std::string_view dotted_key) const {
  auto v = get_string(dotted_key);
  return v ? parse_bool(*v) : std::nullopt;
}
bool Config::get_bool(std::string_view dotted_key, bool fallback) const {
  return get_bool(dotted_key).value_or(fallback);
}

std::optional<uint64_t> Config::get_byte_size(std::string_view dotted_key) const {
  auto v = get_string(dotted_key);
  return v ? parse_byte_size(*v) : std::nullopt;
}
uint64_t Config::get_byte_size(std::string_view dotted_key, uint64_t fallback) const {
  return get_byte_size(dotted_key).value_or(fallback);
}

std::optional<double> Config::get_duration(std::string_view dotted_key) const {
  auto v = get_string(dotted_key);
  return v ? parse_duration_seconds(*v) : std::nullopt;
}
double Config::get_duration(std::string_view dotted_key, double fallback) const {
  return get_duration(dotted_key).value_or(fallback);
}

std::vector<std::string> Config::keys_in(std::string_view section) const {
  std::vector<std::string> out;
  for (const Entry& e : entries_) {
    if (e.section == section) out.push_back(e.key);
  }
  return out;
}

std::vector<std::string> Config::sections() const {
  std::vector<std::string> out;
  for (const Entry& e : entries_) {
    bool seen = false;
    for (const auto& s : out) {
      if (s == e.section) { seen = true; break; }
    }
    if (!seen) out.push_back(e.section);
  }
  return out;
}

void Config::merge_from(const Config& other) {
  for (const Entry& e : other.entries_) set(e.section, e.key, e.value);
}

std::string Config::to_ini() const {
  std::string out;
  for (const std::string& section : sections()) {
    if (!section.empty()) out += "[" + section + "]\n";
    for (const Entry& e : entries_) {
      if (e.section == section) out += e.key + " = " + e.value + "\n";
    }
  }
  return out;
}

}  // namespace ompcloud
