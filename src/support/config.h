// INI-style configuration files.
//
// The paper's cloud plugin "reads at runtime a configuration file to properly
// set up the cloud device and to avoid the need to recompile the binary"
// (§III-A): credentials, Spark driver address, cloud-storage address, and
// tuning knobs such as the minimal compression size. This parser implements
// that file format: `[section]` headers, `key = value` pairs, `#`/`;`
// comments, with typed accessors and dotted lookup ("section.key").
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/status.h"

namespace ompcloud {

/// Parsed configuration: ordered (section, key) -> value map.
class Config {
 public:
  Config() = default;

  /// Parses INI text. Keys outside any section land in section "" (global).
  /// Duplicate keys: the last occurrence wins (like most INI readers).
  static Result<Config> parse(std::string_view text);

  /// Reads and parses a file from disk.
  static Result<Config> load_file(const std::string& path);

  /// Sets a value programmatically (used by tests and CLI overrides).
  void set(std::string_view section, std::string_view key, std::string value);

  /// Dotted convenience: "cluster.workers" == ("cluster", "workers").
  /// A key with no dot addresses the global section.
  void set(std::string_view dotted_key, std::string value);

  [[nodiscard]] bool has(std::string_view section, std::string_view key) const;
  [[nodiscard]] bool has(std::string_view dotted_key) const;

  [[nodiscard]] std::optional<std::string> get_string(std::string_view dotted_key) const;
  [[nodiscard]] std::string get_string(std::string_view dotted_key,
                                       std::string_view fallback) const;

  [[nodiscard]] std::optional<int64_t> get_int(std::string_view dotted_key) const;
  [[nodiscard]] int64_t get_int(std::string_view dotted_key, int64_t fallback) const;

  [[nodiscard]] std::optional<double> get_double(std::string_view dotted_key) const;
  [[nodiscard]] double get_double(std::string_view dotted_key, double fallback) const;

  [[nodiscard]] std::optional<bool> get_bool(std::string_view dotted_key) const;
  [[nodiscard]] bool get_bool(std::string_view dotted_key, bool fallback) const;

  /// Byte sizes accept suffixes ("4K", "16MiB"); durations accept "250ms" etc.
  [[nodiscard]] std::optional<uint64_t> get_byte_size(std::string_view dotted_key) const;
  [[nodiscard]] uint64_t get_byte_size(std::string_view dotted_key,
                                       uint64_t fallback) const;
  [[nodiscard]] std::optional<double> get_duration(std::string_view dotted_key) const;
  [[nodiscard]] double get_duration(std::string_view dotted_key, double fallback) const;

  /// All keys in a section, in insertion order.
  [[nodiscard]] std::vector<std::string> keys_in(std::string_view section) const;

  /// All section names present (insertion order, "" first if present).
  [[nodiscard]] std::vector<std::string> sections() const;

  /// Merges `other` on top of this config (other's values win).
  void merge_from(const Config& other);

  /// Serializes back to INI text (sections sorted by first appearance).
  [[nodiscard]] std::string to_ini() const;

 private:
  struct Entry {
    std::string section;
    std::string key;
    std::string value;
  };
  static std::pair<std::string, std::string> split_dotted(std::string_view dotted);

  // Insertion-ordered storage with a lookup index.
  std::vector<Entry> entries_;
  std::map<std::pair<std::string, std::string>, size_t> index_;
};

}  // namespace ompcloud
