#include "support/fault.h"

#include "support/bytes.h"
#include "support/strings.h"

namespace ompcloud::fault {

namespace {

/// "10s net.partition 2s" -> ScheduledFault. The duration is optional.
Result<ScheduledFault> parse_schedule_entry(std::string_view entry) {
  std::vector<std::string> tokens;
  for (const std::string& token : split(entry, ' ')) {
    if (!token.empty()) tokens.push_back(token);
  }
  if (tokens.size() < 2 || tokens.size() > 3) {
    return invalid_argument("fault.schedule entry '" + std::string(entry) +
                            "' is not 'AT POINT [DURATION]'");
  }
  ScheduledFault fault;
  std::optional<double> at = parse_duration_seconds(tokens[0]);
  if (!at || *at < 0) {
    return invalid_argument("fault.schedule entry '" + std::string(entry) +
                            "': bad time '" + tokens[0] + "'");
  }
  fault.at = *at;
  fault.point = tokens[1];
  if (tokens.size() == 3) {
    std::optional<double> duration = parse_duration_seconds(tokens[2]);
    if (!duration || *duration <= 0) {
      return invalid_argument("fault.schedule entry '" + std::string(entry) +
                              "': bad duration '" + tokens[2] + "'");
    }
    fault.duration = *duration;
  }
  return fault;
}

}  // namespace

Result<FaultPlan> FaultPlan::from_config(const Config& config) {
  FaultPlan plan;
  plan.enabled = config.get_bool("fault.enabled", false);
  plan.seed = static_cast<uint64_t>(config.get_int("fault.seed", 1));
  for (const std::string& key : config.keys_in("fault")) {
    if (key == "enabled" || key == "seed") continue;
    std::string dotted = "fault." + key;
    if (key == "schedule") {
      for (const std::string& entry :
           split(config.get_string(dotted, ""), ';')) {
        if (entry.empty()) continue;
        OC_ASSIGN_OR_RETURN(ScheduledFault fault, parse_schedule_entry(entry));
        plan.schedule.push_back(std::move(fault));
      }
      continue;
    }
    std::optional<double> value = config.get_double(dotted);
    if (!value) {
      return invalid_argument("[fault] key '" + key + "' is not numeric");
    }
    if (ends_with(key, "-rate")) {
      if (*value < 0 || *value > 1) {
        return invalid_argument("[fault] rate '" + key +
                                "' outside [0, 1]: " + std::to_string(*value));
      }
      plan.rates[key.substr(0, key.size() - 5)] = *value;
    } else {
      plan.params[key] = *value;
    }
  }
  return plan;
}

double FaultPlan::rate(const std::string& point) const {
  auto it = rates.find(point);
  return it == rates.end() ? 0.0 : it->second;
}

double FaultPlan::param(const std::string& key, double fallback) const {
  auto it = params.find(key);
  return it == params.end() ? fallback : it->second;
}

FaultInjector::FaultInjector(FaultPlan plan, Clock clock)
    : plan_(std::move(plan)), clock_(std::move(clock)),
      consumed_(plan_.schedule.size(), false) {}

bool FaultInjector::should_fail(const std::string& point,
                                std::string_view detail) {
  if (!plan_.enabled) return false;
  double now = clock_();
  // Scheduled outage window: every probe inside it fails.
  if (window_open(point)) {
    fire(point, detail);
    return true;
  }
  // Due one-shot: fires exactly once, at the first probe at/after `at`.
  for (size_t i = 0; i < plan_.schedule.size(); ++i) {
    const ScheduledFault& fault = plan_.schedule[i];
    if (consumed_[i] || fault.duration > 0 || fault.point != point ||
        fault.at > now) {
      continue;
    }
    consumed_[i] = true;
    fire(point, detail);
    return true;
  }
  // Rate draw, from the point's own stream (see header: per-point streams
  // keep the verdict sequence independent of cross-point interleaving).
  double rate = plan_.rate(point);
  if (rate > 0 && stream(point).chance(rate)) {
    fire(point, detail);
    return true;
  }
  return false;
}

bool FaultInjector::window_open(const std::string& point) const {
  if (!plan_.enabled) return false;
  double now = clock_();
  for (const ScheduledFault& fault : plan_.schedule) {
    if (fault.duration > 0 && fault.point == point && fault.at <= now &&
        now < fault.at + fault.duration) {
      return true;
    }
  }
  return false;
}

uint64_t FaultInjector::injected(const std::string& point) const {
  auto it = injected_.find(point);
  return it == injected_.end() ? 0 : it->second;
}

uint64_t FaultInjector::total_injected() const {
  uint64_t total = 0;
  for (const auto& [point, count] : injected_) total += count;
  return total;
}

void FaultInjector::fire(const std::string& point, std::string_view detail) {
  ++injected_[point];
  if (listener_) {
    listener_(FaultEvent{clock_(), point, std::string(detail)});
  }
}

Xoshiro256& FaultInjector::stream(const std::string& point) {
  auto it = streams_.find(point);
  if (it == streams_.end()) {
    uint64_t seed = plan_.seed ^ fnv1a(as_bytes_of(point.data(), point.size()));
    it = streams_.emplace(point, Xoshiro256(seed)).first;
  }
  return it->second;
}

}  // namespace ompcloud::fault
