// Deterministic, seeded, INI-driven fault injection.
//
// The paper's resilience story ("the host can be used as a fallback in case
// the cloud provider is not available", §III) is only testable if failure is
// a first-class input to the simulation. A `FaultPlan` — parsed from the
// `[fault]` config section — describes per-layer fault rates, one-shot
// scheduled events, and timed outage windows; a `FaultInjector` turns the
// plan into yes/no answers at named *fault points* that each subsystem
// probes at its natural failure site:
//
//   storage.transient    object-store op fails with UNAVAILABLE
//   storage.torn-write   stored object is truncated after an acked PUT
//   net.corrupt          one bit flips in a payload copy during a GET
//   net.flap             a network transfer fails mid-flight
//   net.partition        (window) every transfer fails while it is open
//   net.stall            a transfer hangs for `net.stall-seconds` extra
//   spark.driver-crash   the Spark driver dies during a job
//   spark.task-fail      one task attempt fails (lineage retry absorbs it)
//   spark.slowdown       gray failure: task compute x `spark.slowdown-factor`
//   cloud.boot-failure   an instance start request fails
//
// Determinism: every point draws from its own xoshiro stream seeded from
// `seed ^ fnv1a(point)`, so the verdict sequence at one point is independent
// of how probes interleave across points — two runs with the same plan and
// the same per-point probe sequence inject identical faults.
//
// This lives in support/ (depends only on config/random/status), so probe
// sites carry no clock of their own: the owner (cloud::Cluster) binds the
// sim engine's virtual clock at construction and forwards fault events to
// the trace/tools layer via the listener.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "support/config.h"
#include "support/random.h"
#include "support/status.h"

namespace ompcloud::fault {

/// One injected fault, reported to the listener at the instant it fires.
struct FaultEvent {
  double time = 0;      ///< virtual time of the probe
  std::string point;    ///< fault-point name (e.g. "storage.transient")
  std::string detail;   ///< probe-site context (op, key, worker, ...)
};

/// One entry of the `[fault] schedule`: a fault forced at a virtual time.
/// `duration == 0` is a one-shot (fires at the first probe at/after `at`);
/// `duration > 0` opens a window during which every probe of `point` fails
/// (network partitions).
struct ScheduledFault {
  double at = 0;
  std::string point;
  double duration = 0;
};

/// The parsed `[fault]` section. With `enabled = false` (the default) the
/// injector is never even constructed, so the harness costs nothing.
struct FaultPlan {
  bool enabled = false;
  uint64_t seed = 1;
  /// point -> per-probe failure probability in [0, 1].
  std::map<std::string, double> rates;
  /// Non-rate numeric tuning values (e.g. "spark.slowdown-factor").
  std::map<std::string, double> params;
  std::vector<ScheduledFault> schedule;

  /// Parses the `[fault]` section: `enabled`, `seed`, `<point>-rate` keys,
  /// free-form numeric params, and `schedule = AT POINT [DURATION]; ...`
  /// (durations in "10s"/"250ms" form). Unknown non-numeric keys and rates
  /// outside [0, 1] are INVALID_ARGUMENT.
  static Result<FaultPlan> from_config(const Config& config);

  [[nodiscard]] double rate(const std::string& point) const;
  [[nodiscard]] double param(const std::string& key, double fallback) const;
};

/// Turns a FaultPlan into deterministic per-probe verdicts. Subsystems hold
/// a borrowed pointer (null = no injection) and call `should_fail` at their
/// natural failure sites.
class FaultInjector {
 public:
  using Clock = std::function<double()>;
  using Listener = std::function<void(const FaultEvent&)>;

  FaultInjector(FaultPlan plan, Clock clock);

  /// Observer for every injected fault (wired by cloud::Cluster to the
  /// tools registry + metrics). At most one; set before the run starts.
  void set_listener(Listener listener) { listener_ = std::move(listener); }

  /// The probe: true when `point` fails now — because an outage window is
  /// open, a scheduled one-shot is due, or the point's rate draw trips.
  /// Fires the listener and bumps the injection counter on every true.
  bool should_fail(const std::string& point, std::string_view detail = {});

  /// True while a scheduled window covering `point` is open (no rate draw,
  /// no counter bump) — for sites that need to poll an outage passively.
  [[nodiscard]] bool window_open(const std::string& point) const;

  [[nodiscard]] double param(const std::string& key, double fallback) const {
    return plan_.param(key, fallback);
  }

  /// Faults injected at one point / across all points so far.
  [[nodiscard]] uint64_t injected(const std::string& point) const;
  [[nodiscard]] uint64_t total_injected() const;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  void fire(const std::string& point, std::string_view detail);
  Xoshiro256& stream(const std::string& point);

  FaultPlan plan_;
  Clock clock_;
  Listener listener_;
  std::map<std::string, Xoshiro256> streams_;
  std::map<std::string, uint64_t> injected_;
  /// Parallel to plan_.schedule: one-shots already fired.
  std::vector<bool> consumed_;
};

}  // namespace ompcloud::fault
