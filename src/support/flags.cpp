#include "support/flags.h"

#include <cstdio>

#include "support/strings.h"

namespace ompcloud {

FlagSet& FlagSet::define(std::string name, std::string default_value,
                         std::string help) {
  Flag flag;
  flag.default_value = default_value;
  flag.value = std::move(default_value);
  flag.help = std::move(help);
  flag.kind = Flag::Kind::kString;
  order_.push_back(name);
  flags_[std::move(name)] = std::move(flag);
  return *this;
}

FlagSet& FlagSet::define_int(std::string name, int64_t default_value,
                             std::string help) {
  define(std::move(name), std::to_string(default_value), std::move(help));
  flags_[order_.back()].kind = Flag::Kind::kInt;
  return *this;
}

FlagSet& FlagSet::define_double(std::string name, double default_value,
                                std::string help) {
  define(std::move(name), str_format("%g", default_value), std::move(help));
  flags_[order_.back()].kind = Flag::Kind::kDouble;
  return *this;
}

FlagSet& FlagSet::define_bool(std::string name, bool default_value,
                              std::string help) {
  define(std::move(name), default_value ? "true" : "false", std::move(help));
  flags_[order_.back()].kind = Flag::Kind::kBool;
  return *this;
}

Status FlagSet::set_value(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) return invalid_argument("unknown flag --" + name);
  Flag& flag = it->second;
  switch (flag.kind) {
    case Flag::Kind::kInt:
      if (!parse_int(value)) {
        return invalid_argument("--" + name + ": expected integer, got '" + value + "'");
      }
      break;
    case Flag::Kind::kDouble:
      if (!parse_double(value)) {
        return invalid_argument("--" + name + ": expected number, got '" + value + "'");
      }
      break;
    case Flag::Kind::kBool:
      if (!parse_bool(value)) {
        return invalid_argument("--" + name + ": expected bool, got '" + value + "'");
      }
      break;
    case Flag::Kind::kString:
      break;
  }
  flag.value = value;
  flag.set = true;
  return Status::ok();
}

Status FlagSet::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    if (body == "help") {
      std::fputs(usage(argv[0]).c_str(), stdout);
      return failed_precondition("help requested");
    }
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      OC_RETURN_IF_ERROR(set_value(body.substr(0, eq), body.substr(eq + 1)));
      continue;
    }
    // --no-name for bools.
    if (starts_with(body, "no-")) {
      std::string name = body.substr(3);
      auto it = flags_.find(name);
      if (it != flags_.end() && it->second.kind == Flag::Kind::kBool) {
        OC_RETURN_IF_ERROR(set_value(name, "false"));
        continue;
      }
    }
    auto it = flags_.find(body);
    if (it == flags_.end()) return invalid_argument("unknown flag --" + body);
    if (it->second.kind == Flag::Kind::kBool) {
      OC_RETURN_IF_ERROR(set_value(body, "true"));
      continue;
    }
    if (i + 1 >= argc) return invalid_argument("--" + body + ": missing value");
    OC_RETURN_IF_ERROR(set_value(body, argv[++i]));
  }
  return Status::ok();
}

std::string FlagSet::get(const std::string& name) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? "" : it->second.value;
}

int64_t FlagSet::get_int(const std::string& name) const {
  return parse_int(get(name)).value_or(0);
}

double FlagSet::get_double(const std::string& name) const {
  return parse_double(get(name)).value_or(0.0);
}

bool FlagSet::get_bool(const std::string& name) const {
  return parse_bool(get(name)).value_or(false);
}

bool FlagSet::is_set(const std::string& name) const {
  auto it = flags_.find(name);
  return it != flags_.end() && it->second.set;
}

std::string FlagSet::usage(const std::string& argv0) const {
  std::string out = "Usage: " + argv0 + " [flags]\n";
  if (!description_.empty()) out += description_ + "\n";
  out += "\nFlags:\n";
  for (const std::string& name : order_) {
    const Flag& flag = flags_.at(name);
    out += str_format("  --%-28s %s (default: %s)\n", name.c_str(),
                      flag.help.c_str(), flag.default_value.c_str());
  }
  return out;
}

}  // namespace ompcloud
