// Minimal CLI flag parser for the examples and bench harnesses.
//
// Supports `--name=value`, `--name value`, boolean `--name` / `--no-name`,
// collects positional arguments, and prints a usage table. Unknown flags are
// an error so bench sweeps fail loudly on typos.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "support/status.h"

namespace ompcloud {

class FlagSet {
 public:
  explicit FlagSet(std::string program_description = "")
      : description_(std::move(program_description)) {}

  /// Registers a flag with a default value and help text. Returns *this for
  /// chaining. The stored default doubles as the type witness.
  FlagSet& define(std::string name, std::string default_value, std::string help);
  FlagSet& define_int(std::string name, int64_t default_value, std::string help);
  FlagSet& define_double(std::string name, double default_value, std::string help);
  FlagSet& define_bool(std::string name, bool default_value, std::string help);

  /// Parses argv. On `--help`, prints usage and returns kFailedPrecondition
  /// (callers exit 0). Unknown flags / unparsable values are errors.
  Status parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  /// True if the flag was explicitly set on the command line.
  [[nodiscard]] bool is_set(const std::string& name) const;

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] std::string usage(const std::string& argv0) const;

 private:
  struct Flag {
    std::string default_value;
    std::string help;
    std::string value;
    bool set = false;
    enum class Kind { kString, kInt, kDouble, kBool } kind = Kind::kString;
  };
  Status set_value(const std::string& name, const std::string& value);

  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;  // registration order for usage output
  std::vector<std::string> positional_;
};

}  // namespace ompcloud
