#include "support/json.h"

#include <cstdio>
#include <cstdlib>

#include "support/strings.h"

namespace ompcloud {

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* value = find(key);
  return value != nullptr && value->kind == Kind::kNumber ? value->number
                                                          : fallback;
}

uint64_t JsonValue::u64_or(std::string_view key, uint64_t fallback) const {
  const JsonValue* value = find(key);
  if (value == nullptr || value->kind != Kind::kNumber) return fallback;
  return std::strtoull(value->text.c_str(), nullptr, 10);
}

std::string JsonValue::string_or(std::string_view key,
                                 std::string fallback) const {
  const JsonValue* value = find(key);
  if (value == nullptr || value->kind != Kind::kString) return fallback;
  return value->text;
}

namespace {

/// Recursive-descent parser over the full document.
class JsonParser {
 public:
  JsonParser(std::string_view src, std::string_view what)
      : src_(src), what_(what) {}

  Result<JsonValue> parse() {
    JsonValue value;
    OC_RETURN_IF_ERROR(parse_value(value));
    skip_whitespace();
    if (pos_ != src_.size()) {
      return fail("trailing content after the top-level value");
    }
    return value;
  }

 private:
  Status fail(const std::string& what) const {
    return invalid_argument(str_format("%.*s: %s at offset %zu",
                                       static_cast<int>(what_.size()),
                                       what_.data(), what.c_str(), pos_));
  }

  void skip_whitespace() {
    while (pos_ < src_.size() &&
           (src_[pos_] == ' ' || src_[pos_] == '\t' || src_[pos_] == '\n' ||
            src_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_whitespace();
    if (pos_ < src_.size() && src_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status parse_value(JsonValue& out) {
    skip_whitespace();
    if (pos_ >= src_.size()) return fail("unexpected end of input");
    char c = src_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return parse_string(out.text);
    }
    if (c == 't' || c == 'f') return parse_keyword(out);
    if (c == 'n') return parse_keyword(out);
    return parse_number(out);
  }

  Status parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    if (consume('}')) return Status::ok();
    while (true) {
      skip_whitespace();
      if (pos_ >= src_.size() || src_[pos_] != '"') {
        return fail("expected object key");
      }
      std::string key;
      OC_RETURN_IF_ERROR(parse_string(key));
      if (!consume(':')) return fail("expected ':' after object key");
      JsonValue value;
      OC_RETURN_IF_ERROR(parse_value(value));
      out.members.emplace_back(std::move(key), std::move(value));
      if (consume(',')) continue;
      if (consume('}')) return Status::ok();
      return fail("expected ',' or '}' in object");
    }
  }

  Status parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    if (consume(']')) return Status::ok();
    while (true) {
      JsonValue value;
      OC_RETURN_IF_ERROR(parse_value(value));
      out.items.push_back(std::move(value));
      if (consume(',')) continue;
      if (consume(']')) return Status::ok();
      return fail("expected ',' or ']' in array");
    }
  }

  Status parse_string(std::string& out) {
    ++pos_;  // opening quote
    while (pos_ < src_.size()) {
      char c = src_[pos_++];
      if (c == '"') return Status::ok();
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= src_.size()) break;
      char escape = src_[pos_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > src_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = src_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("invalid \\u escape");
            }
          }
          // Our writers only emit \u00xx control codes; encode as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  Status parse_keyword(JsonValue& out) {
    auto matches = [&](std::string_view word) {
      return src_.substr(pos_, word.size()) == word;
    };
    if (matches("true")) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = true;
      pos_ += 4;
      return Status::ok();
    }
    if (matches("false")) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = false;
      pos_ += 5;
      return Status::ok();
    }
    if (matches("null")) {
      out.kind = JsonValue::Kind::kNull;
      pos_ += 4;
      return Status::ok();
    }
    return fail("unknown keyword");
  }

  Status parse_number(JsonValue& out) {
    size_t begin = pos_;
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == begin) return fail("expected a value");
    out.kind = JsonValue::Kind::kNumber;
    out.text = std::string(src_.substr(begin, pos_ - begin));
    out.number = std::strtod(out.text.c_str(), nullptr);
    return Status::ok();
  }

  std::string_view src_;
  std::string_view what_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> parse_json(std::string_view src, std::string_view what) {
  JsonParser parser(src, what);
  return parser.parse();
}

Result<JsonValue> load_json_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return invalid_argument("cannot open '" + path + "'");
  }
  std::string content;
  char buffer[1 << 16];
  size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    content.append(buffer, got);
  }
  bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) return internal_error("failed reading '" + path + "'");
  return parse_json(content, path);
}

}  // namespace ompcloud
