// Minimal JSON reader shared by the trace importer and the ocmon monitor.
//
// The value model is intentionally small: enough to round-trip what this
// repo's own writers (trace/export.cpp, trace/timeseries.cpp) emit. Object
// members keep document order, and number tokens keep their raw text so
// integers re-parse exactly (%llu counters) while doubles go through
// strtod — the same function the analyzer's quantizers use.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/status.h"

namespace ompcloud {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string text;  ///< string payload, or the raw number token
  std::vector<std::pair<std::string, JsonValue>> members;
  std::vector<JsonValue> items;

  /// First member with this key (document order); nullptr when absent.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  [[nodiscard]] double number_or(std::string_view key, double fallback) const;
  [[nodiscard]] uint64_t u64_or(std::string_view key, uint64_t fallback) const;
  /// Member's string payload, or `fallback` when absent / not a string.
  [[nodiscard]] std::string string_or(std::string_view key,
                                      std::string fallback) const;
};

/// Parses one complete JSON document; trailing non-whitespace is an error.
/// `what` names the document in error messages ("trace JSON", ...).
[[nodiscard]] Result<JsonValue> parse_json(std::string_view src,
                                           std::string_view what = "JSON");

/// Reads `path` fully and parses it with parse_json.
[[nodiscard]] Result<JsonValue> load_json_file(const std::string& path);

}  // namespace ompcloud
