#include "support/log.h"

namespace ompcloud {

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

LogConfig& LogConfig::instance() {
  static LogConfig config;
  return config;
}

void LogConfig::set_min_level(LogLevel level) {
  std::lock_guard lock(mu_);
  min_level_ = level;
}

LogLevel LogConfig::min_level() const {
  std::lock_guard lock(mu_);
  return min_level_;
}

void LogConfig::set_sink(Sink sink) {
  std::lock_guard lock(mu_);
  sink_ = std::move(sink);
}

void LogConfig::set_tap(Sink tap) {
  std::lock_guard lock(mu_);
  tap_ = std::move(tap);
}

void LogConfig::emit(LogLevel level, std::string_view component,
                     std::string_view message) {
  Sink sink;
  Sink tap;
  {
    std::lock_guard lock(mu_);
    if (level < min_level_) return;
    sink = sink_;
    tap = tap_;
  }
  if (tap) tap(level, component, message);
  if (sink) {
    sink(level, component, message);
  } else {
    std::fprintf(stderr, "[%s] %.*s: %.*s\n", std::string(to_string(level)).c_str(),
                 static_cast<int>(component.size()), component.data(),
                 static_cast<int>(message.size()), message.data());
  }
}

}  // namespace ompcloud
