// Leveled logging.
//
// The cloud plugin can stream "Spark log messages" to the host's stdout
// (paper §III-A); that feature is built on this logger: the Spark driver and
// executors log through a per-component `Logger`, and the plugin decides
// which components are forwarded at which level.
#pragma once

#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>

#include "support/strings.h"

namespace ompcloud {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

std::string_view to_string(LogLevel level);

/// Global logging configuration: minimum level and an optional sink override
/// (tests install a capturing sink; the default writes to stderr).
class LogConfig {
 public:
  using Sink = std::function<void(LogLevel, std::string_view component,
                                  std::string_view message)>;

  static LogConfig& instance();

  void set_min_level(LogLevel level);
  [[nodiscard]] LogLevel min_level() const;

  /// Installs a sink; pass nullptr to restore the default stderr sink.
  void set_sink(Sink sink);

  /// Installs a tap invoked *in addition to* the sink (or the default
  /// stderr print) for every emitted record — observers such as the trace
  /// log capture listen here without displacing the output sink. Pass
  /// nullptr to remove.
  void set_tap(Sink tap);

  void emit(LogLevel level, std::string_view component, std::string_view message);

 private:
  LogConfig() = default;
  mutable std::mutex mu_;
  LogLevel min_level_ = LogLevel::kWarn;
  Sink sink_;
  Sink tap_;
};

/// Named logger handle; cheap to copy.
class Logger {
 public:
  explicit Logger(std::string component) : component_(std::move(component)) {}

  [[nodiscard]] const std::string& component() const { return component_; }

  [[nodiscard]] bool enabled(LogLevel level) const {
    return level >= LogConfig::instance().min_level();
  }

  template <typename... Args>
  void log(LogLevel level, const char* fmt, Args... args) const {
    if (!enabled(level)) return;
    if constexpr (sizeof...(Args) == 0) {
      LogConfig::instance().emit(level, component_, fmt);
    } else {
      LogConfig::instance().emit(level, component_, str_format(fmt, args...));
    }
  }

  template <typename... Args>
  void trace(const char* fmt, Args... args) const {
    log(LogLevel::kTrace, fmt, args...);
  }
  template <typename... Args>
  void debug(const char* fmt, Args... args) const {
    log(LogLevel::kDebug, fmt, args...);
  }
  template <typename... Args>
  void info(const char* fmt, Args... args) const {
    log(LogLevel::kInfo, fmt, args...);
  }
  template <typename... Args>
  void warn(const char* fmt, Args... args) const {
    log(LogLevel::kWarn, fmt, args...);
  }
  template <typename... Args>
  void error(const char* fmt, Args... args) const {
    log(LogLevel::kError, fmt, args...);
  }

 private:
  std::string component_;
};

}  // namespace ompcloud
