#include "support/random.h"

#include <cmath>

namespace ompcloud {

double Xoshiro256::exponential(double mean) {
  // Inverse CDF; guard against log(0).
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Xoshiro256::normal(double mu, double sigma) {
  double u1 = next_double();
  double u2 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mu + sigma * z;
}

}  // namespace ompcloud
