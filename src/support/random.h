// Deterministic pseudo-random number generation.
//
// Every stochastic knob in the simulation (network jitter, failure injection,
// workload generation) draws from an explicitly seeded generator so runs are
// reproducible; we use xoshiro256** seeded through splitmix64, the standard
// pairing recommended by the xoshiro authors.
#pragma once

#include <cstdint>

namespace ompcloud {

/// splitmix64: used to expand a single seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// xoshiro256**: fast, high-quality, 2^256-1 period.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = uint64_t;

  explicit Xoshiro256(uint64_t seed = 0x5eed5eed5eed5eedull) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()() { return next(); }

  uint64_t next() {
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  uint64_t next_below(uint64_t bound) {
    if (bound == 0) return 0;
    // Rejection sampling over the top 64 bits of the 128-bit product.
    while (true) {
      uint64_t x = next();
      __uint128_t m = static_cast<__uint128_t>(x) * bound;
      auto lo = static_cast<uint64_t>(m);
      if (lo >= bound || lo >= (-bound) % bound) {
        return static_cast<uint64_t>(m >> 64);
      }
    }
  }

  /// Bernoulli draw.
  bool chance(double p) { return next_double() < p; }

  /// Exponential with the given mean (for DES arrival/jitter models).
  double exponential(double mean);

  /// Standard normal via Box-Muller; `normal(mu, sigma)` scales it.
  double normal(double mu = 0.0, double sigma = 1.0);

  /// Derives an independent stream (e.g. one per simulated node).
  Xoshiro256 fork() { return Xoshiro256(next()); }

 private:
  static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t state_[4];
};

}  // namespace ompcloud
