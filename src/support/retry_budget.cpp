#include "support/retry_budget.h"

#include <algorithm>
#include <cmath>

namespace ompcloud {

namespace {

Status check_non_negative(const char* key, double value) {
  if (!std::isfinite(value) || value < 0) {
    return invalid_argument(std::string("overload.") + key +
                            " must be a non-negative number");
  }
  return Status::ok();
}

}  // namespace

Result<RetryBudgetOptions> RetryBudgetOptions::from_config(
    const Config& config) {
  RetryBudgetOptions options;
  bool overload_enabled = config.get_bool("overload.enabled", false);
  options.enabled =
      config.get_bool("overload.retry-budget", overload_enabled);
  options.ratio =
      config.get_double("overload.retry-budget-ratio", options.ratio);
  options.initial =
      config.get_double("overload.retry-budget-initial", options.initial);
  options.cap = config.get_double("overload.retry-budget-cap", options.cap);
  OC_RETURN_IF_ERROR(check_non_negative("retry-budget-ratio", options.ratio));
  OC_RETURN_IF_ERROR(
      check_non_negative("retry-budget-initial", options.initial));
  OC_RETURN_IF_ERROR(check_non_negative("retry-budget-cap", options.cap));
  if (options.initial > options.cap) {
    return invalid_argument(
        "overload.retry-budget-initial exceeds overload.retry-budget-cap");
  }
  return options;
}

double& RetryBudget::bucket(const std::string& scope) {
  auto [it, inserted] = buckets_.try_emplace(scope, options_.initial);
  return it->second;
}

void RetryBudget::record_success(const std::vector<std::string>& scopes) {
  if (!options_.enabled) return;
  for (const std::string& scope : scopes) {
    double& tokens = bucket(scope);
    tokens = std::min(options_.cap, tokens + options_.ratio);
  }
}

bool RetryBudget::try_withdraw(const std::vector<std::string>& scopes) {
  if (!options_.enabled) return true;
  for (const std::string& scope : scopes) {
    if (bucket(scope) < 1.0) {
      ++exhaustions_;
      return false;
    }
  }
  for (const std::string& scope : scopes) bucket(scope) -= 1.0;
  ++withdrawals_;
  return true;
}

double RetryBudget::tokens(const std::string& scope) const {
  auto it = buckets_.find(scope);
  return it == buckets_.end() ? options_.initial : it->second;
}

}  // namespace ompcloud
