// Token-bucket retry budgets: bounding aggregate retry volume.
//
// PR 5 gave every fault point a local retry loop; that heals isolated
// faults but turns a *correlated* slowdown into a metastable retry storm —
// each client multiplies offered load exactly when capacity is scarcest,
// and goodput can stay collapsed after capacity returns. A retry budget
// makes retries a resource that successes earn: every success deposits
// `ratio` tokens into the caller's bucket (capped), every retry withdraws
// one whole token, and when the bucket is empty the caller fails fast with
// the last real status instead of amplifying.
//
// Buckets are keyed by free-form scope strings ("device:cloud-0",
// "tenant:acme") so one budget instance can enforce per-device and
// per-tenant limits at once: a retry is admitted only when *every* scope it
// names has a token, and it withdraws from all of them atomically. Each
// bucket starts with `initial` tokens so cold, low-traffic scopes can still
// absorb a startup blip before they have earned anything.
//
// This lives in support/ (depends only on config/status): it has no clock
// and emits no metrics of its own — callers (CloudPlugin, the scheduler)
// observe withdrawals/exhaustions and publish `retry_budget.*` counters
// through their own tracer. With `enabled = false` (the default) every
// probe answers yes without touching a bucket, so the pre-overload-control
// behavior — and its exact event sequence — is preserved bit for bit.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/config.h"
#include "support/status.h"

namespace ompcloud {

/// The retry-budget slice of the `[overload]` config section.
struct RetryBudgetOptions {
  /// Master switch; mirrors `overload.enabled` unless overridden by
  /// `overload.retry-budget`. Disabled budgets admit everything for free.
  bool enabled = false;
  /// Tokens deposited per recorded success (classic 10%: one retry earned
  /// per ten successes).
  double ratio = 0.1;
  /// Tokens a fresh bucket starts with, so cold scopes can ride out a blip.
  double initial = 3.0;
  /// Hard ceiling on accumulated tokens per bucket.
  double cap = 100.0;

  /// Parses `overload.enabled`, `overload.retry-budget`,
  /// `overload.retry-budget-ratio`, `overload.retry-budget-initial`,
  /// `overload.retry-budget-cap`. Negative or non-finite numbers are
  /// INVALID_ARGUMENT.
  static Result<RetryBudgetOptions> from_config(const Config& config);
};

/// Scope-keyed token buckets. Deterministic and clock-free: state advances
/// only through `record_success` / `try_withdraw` calls, so two runs with
/// the same call sequence hold identical balances.
class RetryBudget {
 public:
  RetryBudget() = default;
  explicit RetryBudget(RetryBudgetOptions options)
      : options_(options) {}

  [[nodiscard]] const RetryBudgetOptions& options() const { return options_; }
  [[nodiscard]] bool enabled() const { return options_.enabled; }

  /// Deposits `ratio` tokens into every named scope (capped). No-op when
  /// disabled.
  void record_success(const std::vector<std::string>& scopes);

  /// True when every scope can afford one retry; withdraws one token from
  /// each atomically (an empty scope blocks the whole withdrawal, leaving
  /// the others untouched). Always true when disabled. Empty scope lists
  /// are admitted (nothing to charge).
  [[nodiscard]] bool try_withdraw(const std::vector<std::string>& scopes);

  /// Current balance of one scope (its `initial` grant if never touched).
  [[nodiscard]] double tokens(const std::string& scope) const;

  /// Lifetime counters, for metrics/tests.
  [[nodiscard]] uint64_t withdrawals() const { return withdrawals_; }
  [[nodiscard]] uint64_t exhaustions() const { return exhaustions_; }

 private:
  double& bucket(const std::string& scope);

  RetryBudgetOptions options_;
  std::map<std::string, double> buckets_;
  uint64_t withdrawals_ = 0;
  uint64_t exhaustions_ = 0;
};

}  // namespace ompcloud
