#include "support/status.h"

namespace ompcloud {

std::string_view to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kDataLoss: return "DATA_LOSS";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  std::string out(ompcloud::to_string(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace ompcloud
