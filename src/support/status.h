// Status / Result error handling for the OmpCloud reproduction.
//
// The runtime mirrors libomptarget's convention of returning failure codes
// rather than throwing across the plugin ABI, so every fallible operation in
// this codebase returns either a `Status` or a `Result<T>`.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace ompcloud {

/// Coarse error category, loosely modeled on absl::StatusCode.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kUnavailable,    ///< device/cluster not reachable; triggers host fallback
  kResourceExhausted,
  kDataLoss,       ///< corrupt object / failed decompression
  kInternal,
  kDeadlineExceeded,  ///< per-op / whole-offload deadline expired
};

/// Human-readable name for a status code (stable, used in logs and tests).
std::string_view to_string(StatusCode code);

/// Value-semantic error status: a code plus a context message.
///
/// `Status::ok()` is the success value; all other constructors produce
/// failures. Messages accumulate context via `with_context`.
class Status {
 public:
  /// Success.
  static Status ok() { return Status(); }

  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk && "use Status::ok() for success");
  }

  [[nodiscard]] bool is_ok() const { return code_ == StatusCode::kOk; }
  explicit operator bool() const { return is_ok(); }

  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// Returns a copy of this status with `prefix: ` prepended to the message.
  [[nodiscard]] Status with_context(std::string_view prefix) const {
    if (is_ok()) return *this;
    return Status(code_, std::string(prefix) + ": " + message_);
  }

  /// Formats as "OK" or "CODE: message".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;  // messages are context, not identity
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Convenience constructors mirroring absl.
inline Status invalid_argument(std::string msg) {
  return {StatusCode::kInvalidArgument, std::move(msg)};
}
inline Status not_found(std::string msg) {
  return {StatusCode::kNotFound, std::move(msg)};
}
inline Status already_exists(std::string msg) {
  return {StatusCode::kAlreadyExists, std::move(msg)};
}
inline Status failed_precondition(std::string msg) {
  return {StatusCode::kFailedPrecondition, std::move(msg)};
}
inline Status out_of_range(std::string msg) {
  return {StatusCode::kOutOfRange, std::move(msg)};
}
inline Status unimplemented(std::string msg) {
  return {StatusCode::kUnimplemented, std::move(msg)};
}
inline Status unavailable(std::string msg) {
  return {StatusCode::kUnavailable, std::move(msg)};
}
inline Status resource_exhausted(std::string msg) {
  return {StatusCode::kResourceExhausted, std::move(msg)};
}
inline Status data_loss(std::string msg) {
  return {StatusCode::kDataLoss, std::move(msg)};
}
inline Status internal_error(std::string msg) {
  return {StatusCode::kInternal, std::move(msg)};
}
inline Status deadline_exceeded(std::string msg) {
  return {StatusCode::kDeadlineExceeded, std::move(msg)};
}

/// Whether a failed operation is worth retrying: the condition is transient
/// (service flap, contention, expired deadline, in-flight corruption that a
/// re-transfer can repair). Permanent conditions — bad arguments, missing
/// objects, internal bugs — fail fast instead of burning the retry budget.
/// `kDataLoss` is retryable only when the caller can re-ship the bytes
/// (re-download / re-upload); callers without a source of truth must treat
/// it as permanent.
inline bool is_retryable(StatusCode code) {
  return code == StatusCode::kUnavailable ||
         code == StatusCode::kResourceExhausted ||
         code == StatusCode::kDeadlineExceeded;
}

/// Result<T>: either a value or a failure Status.
///
/// Accessors assert on misuse; callers must branch on `ok()` first (or use
/// `value_or` / `OC_ASSIGN_OR_RETURN`).
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}          // NOLINT(implicit)
  Result(Status status) : data_(std::move(status)) {    // NOLINT(implicit)
    assert(!std::get<Status>(data_).is_ok() &&
           "cannot construct Result<T> from OK status");
  }

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const Status& status() const {
    static const Status kOk = Status::ok();
    return ok() ? kOk : std::get<Status>(data_);
  }

  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }

 private:
  std::variant<T, Status> data_;
};

/// Propagates a failure Status out of the current function.
#define OC_RETURN_IF_ERROR(expr)                  \
  do {                                            \
    ::ompcloud::Status oc_status_ = (expr);       \
    if (!oc_status_.is_ok()) return oc_status_;   \
  } while (0)

/// Coroutine variant: propagates a failure Status via co_return.
#define OC_CO_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::ompcloud::Status oc_status_ = (expr);          \
    if (!oc_status_.is_ok()) co_return oc_status_;   \
  } while (0)

/// Evaluates `rexpr` (a Result<T>), returning its status on failure or
/// assigning its value to `lhs` on success.
#define OC_ASSIGN_OR_RETURN(lhs, rexpr)                \
  OC_ASSIGN_OR_RETURN_IMPL_(                           \
      OC_STATUS_CONCAT_(oc_result_, __LINE__), lhs, rexpr)
#define OC_STATUS_CONCAT_INNER_(a, b) a##b
#define OC_STATUS_CONCAT_(a, b) OC_STATUS_CONCAT_INNER_(a, b)
#define OC_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                              \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

/// Coroutine variant of OC_ASSIGN_OR_RETURN (propagates via co_return).
#define OC_CO_ASSIGN_OR_RETURN(lhs, rexpr)          \
  OC_CO_ASSIGN_OR_RETURN_IMPL_(                     \
      OC_STATUS_CONCAT_(oc_co_result_, __LINE__), lhs, rexpr)
#define OC_CO_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) co_return tmp.status();              \
  lhs = std::move(tmp).value()

}  // namespace ompcloud
