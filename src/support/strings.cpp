#include "support/strings.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace ompcloud {

std::string_view trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char sep, bool do_trim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    std::string_view piece = (pos == std::string_view::npos)
                                 ? s.substr(start)
                                 : s.substr(start, pos - start);
    if (do_trim) piece = trim(piece);
    out.emplace_back(piece);
    if (pos == std::string_view::npos) break;
    start = pos + 1;
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::optional<int64_t> parse_int(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  int64_t value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::optional<double> parse_double(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  double value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::optional<bool> parse_bool(std::string_view s) {
  std::string t = to_lower(trim(s));
  if (t == "true" || t == "on" || t == "1" || t == "yes") return true;
  if (t == "false" || t == "off" || t == "0" || t == "no") return false;
  return std::nullopt;
}

std::optional<uint64_t> parse_byte_size(std::string_view s) {
  std::string t = to_lower(trim(s));
  if (t.empty()) return std::nullopt;
  uint64_t multiplier = 1;
  // Strip optional trailing 'b' then optional 'i' then the scale letter.
  if (ends_with(t, "b")) t.pop_back();
  if (ends_with(t, "i")) t.pop_back();
  if (!t.empty()) {
    switch (t.back()) {
      case 'k': multiplier = 1ull << 10; t.pop_back(); break;
      case 'm': multiplier = 1ull << 20; t.pop_back(); break;
      case 'g': multiplier = 1ull << 30; t.pop_back(); break;
      case 't': multiplier = 1ull << 40; t.pop_back(); break;
      default: break;
    }
  }
  auto value = parse_double(t);
  if (!value || *value < 0) return std::nullopt;
  return static_cast<uint64_t>(*value * static_cast<double>(multiplier));
}

std::optional<double> parse_duration_seconds(std::string_view s) {
  std::string t = to_lower(trim(s));
  if (t.empty()) return std::nullopt;
  double scale = 1.0;
  if (ends_with(t, "us")) { scale = 1e-6; t.resize(t.size() - 2); }
  else if (ends_with(t, "ms")) { scale = 1e-3; t.resize(t.size() - 2); }
  else if (ends_with(t, "s")) { scale = 1.0; t.pop_back(); }
  else if (ends_with(t, "m")) { scale = 60.0; t.pop_back(); }
  else if (ends_with(t, "h")) { scale = 3600.0; t.pop_back(); }
  auto value = parse_double(t);
  if (!value || *value < 0) return std::nullopt;
  return *value * scale;
}

std::string format_bytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  if (unit == 0) return str_format("%llu B", static_cast<unsigned long long>(bytes));
  return str_format("%.2f %s", v, kUnits[unit]);
}

std::string format_duration(double seconds) {
  if (seconds < 0) return "-" + format_duration(-seconds);
  if (seconds < 1e-3) return str_format("%.1f us", seconds * 1e6);
  if (seconds < 1.0) return str_format("%.1f ms", seconds * 1e3);
  if (seconds < 120.0) return str_format("%.2f s", seconds);
  if (seconds < 3600.0) {
    int m = static_cast<int>(seconds / 60.0);
    return str_format("%dm %02ds", m, static_cast<int>(seconds - m * 60));
  }
  int h = static_cast<int>(seconds / 3600.0);
  int m = static_cast<int>((seconds - h * 3600.0) / 60.0);
  return str_format("%dh %02dm", h, m);
}

std::string format_rate(double bytes_per_second) {
  return format_bytes(static_cast<uint64_t>(bytes_per_second)) + "/s";
}

std::string str_format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace ompcloud
