// Small string utilities: trimming, splitting, numeric parsing with units,
// and human-readable formatting of byte counts and durations.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ompcloud {

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Splits on `sep`, optionally trimming each piece; empty pieces are kept.
std::vector<std::string> split(std::string_view s, char sep, bool do_trim = true);

/// True if `s` starts with / ends with the given prefix/suffix.
bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// ASCII lowercase copy.
std::string to_lower(std::string_view s);

/// Strict parsers; nullopt on any trailing garbage.
std::optional<int64_t> parse_int(std::string_view s);
std::optional<double> parse_double(std::string_view s);
std::optional<bool> parse_bool(std::string_view s);  // true/false/on/off/1/0/yes/no

/// Parses a byte size with optional binary suffix: "64", "4K", "16MiB",
/// "1.5GB" (K/M/G/T, case-insensitive, i and B optional; all binary, 1024^n).
std::optional<uint64_t> parse_byte_size(std::string_view s);

/// Parses a duration: plain seconds ("2.5") or suffixed "250ms", "3s",
/// "5m", "1h", "30us". Returns seconds.
std::optional<double> parse_duration_seconds(std::string_view s);

/// "1.50 GiB", "312.0 KiB", "17 B".
std::string format_bytes(uint64_t bytes);

/// "1.23 s", "45.6 ms", "2m 03s", "1h 02m".
std::string format_duration(double seconds);

/// "12.3 MB/s" style rate.
std::string format_rate(double bytes_per_second);

/// printf-style formatting into a std::string.
std::string str_format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace ompcloud
