// LEB128-style varint encoding, shared by the codecs and the serialization
// framing used for RDD elements and storage object metadata.
#pragma once

#include <cstdint>
#include <optional>

#include "support/bytes.h"

namespace ompcloud {

/// Appends `value` to `out` as an unsigned LEB128 varint (1-10 bytes).
inline void put_varint(ByteBuffer& out, uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::byte>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<std::byte>(value));
}

/// Reads a varint from `data` starting at `*pos`, advancing `*pos`.
/// Returns nullopt on truncation or overlong (>10 byte) encodings.
inline std::optional<uint64_t> get_varint(ByteView data, size_t* pos) {
  uint64_t value = 0;
  int shift = 0;
  while (*pos < data.size() && shift < 64) {
    auto b = static_cast<uint8_t>(data[(*pos)++]);
    value |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return value;
    shift += 7;
  }
  return std::nullopt;
}

/// Fixed-width little-endian helpers for compact binary headers.
inline void put_u16le(ByteBuffer& out, uint16_t v) {
  out.push_back(static_cast<std::byte>(v & 0xff));
  out.push_back(static_cast<std::byte>(v >> 8));
}

inline std::optional<uint16_t> get_u16le(ByteView data, size_t* pos) {
  if (*pos + 2 > data.size()) return std::nullopt;
  auto lo = static_cast<uint16_t>(data[(*pos)]);
  auto hi = static_cast<uint16_t>(data[(*pos) + 1]);
  *pos += 2;
  return static_cast<uint16_t>(lo | (hi << 8));
}

inline void put_u64le(ByteBuffer& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
}

inline std::optional<uint64_t> get_u64le(ByteView data, size_t* pos) {
  if (*pos + 8 > data.size()) return std::nullopt;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data[*pos + i]) << (8 * i);
  *pos += 8;
  return v;
}

}  // namespace ompcloud
