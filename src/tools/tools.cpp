#include "tools/tools.h"

#include <algorithm>

namespace ompcloud::tools {

std::string_view to_string(DataOpKind kind) {
  switch (kind) {
    case DataOpKind::kAlloc: return "alloc";
    case DataOpKind::kTransferTo: return "transfer_to";
    case DataOpKind::kTransferFrom: return "transfer_from";
    case DataOpKind::kDelete: return "delete";
  }
  return "?";
}

std::string_view to_string(InstanceStateInfo::Kind kind) {
  switch (kind) {
    case InstanceStateInfo::Kind::kBoot: return "boot";
    case InstanceStateInfo::Kind::kStop: return "stop";
    case InstanceStateInfo::Kind::kPreempt: return "preempt";
  }
  return "?";
}

std::string_view to_string(AutoscaleInfo::Kind kind) {
  switch (kind) {
    case AutoscaleInfo::Kind::kScaleUp: return "scale_up";
    case AutoscaleInfo::Kind::kScaleDown: return "scale_down";
    case AutoscaleInfo::Kind::kPreempt: return "preempt";
  }
  return "?";
}

std::string_view to_string(SchedulerEventInfo::Kind kind) {
  switch (kind) {
    case SchedulerEventInfo::Kind::kAdmit: return "admit";
    case SchedulerEventInfo::Kind::kDispatch: return "dispatch";
    case SchedulerEventInfo::Kind::kComplete: return "complete";
    case SchedulerEventInfo::Kind::kReject: return "reject";
    case SchedulerEventInfo::Kind::kPreempt: return "preempt";
  }
  return "?";
}

std::string_view to_string(AlertInfo::Kind kind) {
  switch (kind) {
    case AlertInfo::Kind::kFire: return "fire";
    case AlertInfo::Kind::kResolve: return "resolve";
  }
  return "?";
}

std::string_view to_string(FaultEventInfo::Kind kind) {
  switch (kind) {
    case FaultEventInfo::Kind::kInjected: return "injected";
    case FaultEventInfo::Kind::kRetry: return "retry";
    case FaultEventInfo::Kind::kCorruptionDetected: return "corruption";
    case FaultEventInfo::Kind::kDeadlineExceeded: return "deadline";
    case FaultEventInfo::Kind::kResubmit: return "resubmit";
    case FaultEventInfo::Kind::kBreakerOpen: return "breaker_open";
    case FaultEventInfo::Kind::kBreakerHalfOpen: return "breaker_half_open";
    case FaultEventInfo::Kind::kBreakerClose: return "breaker_close";
    case FaultEventInfo::Kind::kFallback: return "fallback";
    case FaultEventInfo::Kind::kResidencyInvalidated:
      return "residency_invalidated";
  }
  return "?";
}

void ToolRegistry::attach(Tool* tool) {
  if (tool == nullptr) return;
  if (std::find(tools_.begin(), tools_.end(), tool) != tools_.end()) return;
  tools_.push_back(tool);
}

void ToolRegistry::detach(Tool* tool) {
  tools_.erase(std::remove(tools_.begin(), tools_.end(), tool), tools_.end());
}

void ToolRegistry::emit_device_init(const DeviceInfo& info) {
  for (Tool* tool : tools_) tool->on_device_init(info);
}

void ToolRegistry::emit_device_fini(const DeviceInfo& info) {
  for (Tool* tool : tools_) tool->on_device_fini(info);
}

void ToolRegistry::emit_target_begin(const TargetInfo& info) {
  for (Tool* tool : tools_) tool->on_target_begin(info);
}

void ToolRegistry::emit_target_end(const TargetEndInfo& info) {
  for (Tool* tool : tools_) tool->on_target_end(info);
}

void ToolRegistry::emit_data_op(const DataOpInfo& info) {
  for (Tool* tool : tools_) tool->on_data_op(info);
}

void ToolRegistry::emit_kernel_submit(const KernelInfo& info) {
  for (Tool* tool : tools_) tool->on_kernel_submit(info);
}

void ToolRegistry::emit_kernel_complete(const KernelInfo& info) {
  for (Tool* tool : tools_) tool->on_kernel_complete(info);
}

void ToolRegistry::emit_instance_state_change(const InstanceStateInfo& info) {
  for (Tool* tool : tools_) tool->on_instance_state_change(info);
}

void ToolRegistry::emit_autoscale_decision(const AutoscaleInfo& info) {
  for (Tool* tool : tools_) tool->on_autoscale_decision(info);
}

void ToolRegistry::emit_scheduler_event(const SchedulerEventInfo& info) {
  for (Tool* tool : tools_) tool->on_scheduler_event(info);
}

void ToolRegistry::emit_fault_event(const FaultEventInfo& info) {
  for (Tool* tool : tools_) tool->on_fault_event(info);
}

void ToolRegistry::emit_alert(const AlertInfo& info) {
  for (Tool* tool : tools_) tool->on_alert(info);
}

}  // namespace ompcloud::tools
