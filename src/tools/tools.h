// OMPT-flavored tools interface: first-class observer callbacks at the
// runtime boundary, modeled on the OpenMP Tools interface that the paper's
// production counterpart (LLVM libomptarget) exposes:
//
//   on_target_begin/end        ~ ompt_callback_target
//   on_data_op                 ~ ompt_callback_target_data_op
//   on_kernel_submit/complete  ~ ompt_callback_target_submit
//   on_device_init/fini        ~ ompt_callback_device_initialize/finalize
//   on_instance_state_change   (no OMPT equivalent; the paper's §III-A
//                               cloud-elasticity cost metering)
//
// `DeviceManager`, `CloudPlugin`, `SparkContext`, and `Cluster` emit these
// at the same points they open trace spans, through the `ToolRegistry`
// owned by the shared `trace::Tracer`. The tracer's own metrics derivation
// is itself just the first registered tool (trace/tracer.cpp), so external
// observers see exactly what the built-in bookkeeping sees.
//
// All callbacks fire synchronously at a virtual-time instant; `time`
// fields carry the sim clock. string_view fields borrow from the emitter
// and are valid only for the duration of the callback.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace ompcloud::tools {

/// What a data operation did with the bytes (ompt_target_data_op_t).
enum class DataOpKind {
  kAlloc,         ///< device-side allocation, no host data shipped
  kTransferTo,    ///< host -> device (upload of one mapped buffer)
  kTransferFrom,  ///< device -> host (download of one mapped buffer)
  kDelete,        ///< staged object removed during cleanup
};

std::string_view to_string(DataOpKind kind);

struct DeviceInfo {
  int device_id = -1;
  std::string_view name;
  double time = 0;
};

/// One `#pragma omp target` dispatch through the device manager.
struct TargetInfo {
  uint64_t target_id = 0;  ///< unique per DeviceManager::offload call
  std::string_view region;
  int device_id = -1;
  std::string_view device_name;
  double time = 0;
};

struct TargetEndInfo {
  uint64_t target_id = 0;
  std::string_view region;
  int device_id = -1;
  bool ok = true;
  bool fell_back_to_host = false;
  double time = 0;
};

/// One mapped-buffer data operation. Transfer ops carry the byte/codec
/// decomposition; cache_* fields describe the delta-cache outcome when the
/// data cache was consulted (`cache_eligible`); resident_* fields describe
/// buffers pinned in a device data environment whose transfer the residency
/// tracker elided entirely (no hashing, no wire traffic).
struct DataOpInfo {
  DataOpKind kind = DataOpKind::kTransferTo;
  std::string_view var;    ///< variable name (kDelete: staged object key)
  std::string_view codec;  ///< configured codec for transfers, else empty
  uint64_t plain_bytes = 0;  ///< bytes that crossed the codec
  uint64_t wire_bytes = 0;   ///< bytes that crossed the wire
  bool chunked = false;      ///< went through the block pipeline
  bool cache_eligible = false;  ///< data cache consulted for this buffer
  bool cache_hit = false;       ///< every block clean; nothing shipped
  uint64_t block_hits = 0;      ///< clean blocks skipped
  uint64_t block_misses = 0;    ///< blocks never staged before
  uint64_t block_dirty = 0;     ///< staged blocks whose content changed
  uint64_t bytes_skipped = 0;   ///< plain bytes the cache kept off the wire
  uint64_t bytes_uploaded = 0;  ///< plain bytes the cache had to re-ship
  bool resident = false;        ///< buffer pinned in a device data environment
  bool resident_hit = false;    ///< upload skipped: cloud copy already current
  bool resident_deferred = false;  ///< download deferred: output stays resident
  uint64_t bytes_resident = 0;  ///< plain bytes residency kept off the wire
  double start = 0;
  double end = 0;
};

/// One Spark map task (the runtime's kernel-submission granule).
struct KernelInfo {
  std::string_view job;     ///< region/job name
  std::string_view kernel;  ///< kernel symbol the task executes
  /// Tenant whose sub-partition this task computes (empty for ordinary
  /// single-tenant jobs; set for coalesced batch jobs).
  std::string_view tenant;
  int stage = 0;            ///< loop index within the job
  int task = 0;             ///< partition/tile index within the stage
  int worker = -1;  ///< submit: initial placement; complete: where it ran
  int attempts = 0;  ///< complete only: 1 = first try succeeded
  double start = 0;  ///< complete only: virtual start of the task
  double time = 0;   ///< submit instant / completion instant
};

/// Cluster instance lifecycle (the paper's on-the-fly EC2 start/stop, plus
/// per-instance elasticity: individual worker boots, stops, and spot-style
/// preemptions).
struct InstanceStateInfo {
  enum class Kind { kBoot, kStop, kPreempt };
  Kind kind = Kind::kBoot;
  int instances = 0;  ///< instances affected by this transition
  double price_per_hour = 0;  ///< per instance
  std::string_view instance_type;
  /// Worker index for single-instance transitions; -1 for whole-cluster
  /// transitions (ensure_running/shutdown) and the driver.
  int worker = -1;
  /// Instances billed after the transition settles (driver included), so
  /// observers can track the fleet size without replaying history.
  int billing_after = 0;
  double time = 0;
};

std::string_view to_string(InstanceStateInfo::Kind kind);

/// One autoscaler decision (scale-up, idle reap, or spot preemption).
struct AutoscaleInfo {
  enum class Kind { kScaleUp, kScaleDown, kPreempt };
  Kind kind = Kind::kScaleUp;
  int delta = 0;            ///< workers added (up) or removed (down/preempt)
  int running_workers = 0;  ///< running workers after the decision
  int booting_workers = 0;  ///< still booting after the decision
  int active_offloads = 0;  ///< offloads holding capacity
  int queued_offloads = 0;  ///< offloads waiting in the admission queue
  double time = 0;
};

std::string_view to_string(AutoscaleInfo::Kind kind);

/// One admission-queue transition of the offload scheduler. `kReject`
/// fires when SLO-aware admission turns a submission away (quota,
/// hopeless/expired deadline, or a full queue); `kPreempt` fires when a
/// higher-priority arrival evicts a lower-priority *queued* entry.
struct SchedulerEventInfo {
  enum class Kind { kAdmit, kDispatch, kComplete, kReject, kPreempt };
  Kind kind = Kind::kAdmit;
  std::string_view region;
  std::string_view tenant;
  uint64_t queue_depth = 0;  ///< queued submissions after this event
  int active = 0;            ///< in-flight offloads after this event
  double wait_seconds = 0;   ///< dispatch/complete: time spent queued
  int priority = 0;          ///< submission priority (higher = sooner)
  double deadline_seconds = 0;  ///< relative SLO budget (0 = none)
  std::string_view latency_class;  ///< SLO bucket tag, may be empty
  /// kReject/kPreempt: why the entry left the queue ("quota", "deadline",
  /// "queue-full", "preempt").
  std::string_view reason;
  /// Micro-batch attribution: id of the coalesced job this submission was
  /// dispatched/completed in (0 = not batched) and its member count
  /// (1 = dispatched solo).
  uint64_t batch_id = 0;
  int batch_size = 1;
  /// kComplete with a deadline: whether completion beat the deadline.
  bool deadline_met = true;
  /// Tenant occupancy after this event: submissions this tenant has running
  /// or queued, and its admission quota (0 = unbounded). Lets observers
  /// maintain per-tenant quota-pressure gauges without replaying history.
  int tenant_in_system = 0;
  int tenant_quota = 0;
  double time = 0;
};

std::string_view to_string(SchedulerEventInfo::Kind kind);

/// One fault-injection or recovery action in the self-healing offload path
/// (no OMPT equivalent; chaos-engineering observability). `kInjected` fires
/// for every fault the plan-driven injector (support/fault.h) trips;
/// recovery kinds fire as the runtime absorbs them.
struct FaultEventInfo {
  enum class Kind {
    kInjected,          ///< a fault point tripped
    kRetry,             ///< a storage op is being retried after a failure
    kCorruptionDetected,///< end-to-end checksum mismatch caught
    kDeadlineExceeded,  ///< per-op or whole-offload deadline expired
    kResubmit,          ///< Spark job resubmitted after a driver crash
    kBreakerOpen,       ///< device circuit breaker tripped open
    kBreakerHalfOpen,   ///< cooldown elapsed; probe offload admitted
    kBreakerClose,      ///< probe succeeded; device healthy again
    kFallback,          ///< region rerouted to the host device
    kResidencyInvalidated,  ///< cloud-resident buffer dropped; host is truth
  };
  Kind kind = Kind::kInjected;
  std::string_view point;   ///< fault-point / failing-op name
  std::string_view detail;  ///< site context (key, region, status, ...)
  int device_id = -1;       ///< breaker/fallback events: the cloud device
  double time = 0;
};

std::string_view to_string(FaultEventInfo::Kind kind);

/// One SLO alert transition from the telemetry evaluator (trace/alerts.h):
/// a declarative rule crossed into (kFire) or out of (kResolve) its firing
/// condition at a sampling instant.
struct AlertInfo {
  enum class Kind { kFire, kResolve };
  Kind kind = Kind::kFire;
  std::string_view rule;      ///< rule name from the [alerts] section
  std::string_view labels;    ///< encoded group labels, e.g. {tenant="a"}
  std::string_view severity;  ///< page | ticket | info
  double value = 0;  ///< burn rate / threshold value at the transition
  double time = 0;
};

std::string_view to_string(AlertInfo::Kind kind);

/// Observer base class: override the callbacks you care about. Tools are
/// borrowed (not owned) by the registry and must outlive it or detach.
class Tool {
 public:
  virtual ~Tool() = default;

  virtual void on_device_init(const DeviceInfo&) {}
  virtual void on_device_fini(const DeviceInfo&) {}
  virtual void on_target_begin(const TargetInfo&) {}
  virtual void on_target_end(const TargetEndInfo&) {}
  virtual void on_data_op(const DataOpInfo&) {}
  virtual void on_kernel_submit(const KernelInfo&) {}
  virtual void on_kernel_complete(const KernelInfo&) {}
  virtual void on_instance_state_change(const InstanceStateInfo&) {}
  virtual void on_autoscale_decision(const AutoscaleInfo&) {}
  virtual void on_scheduler_event(const SchedulerEventInfo&) {}
  virtual void on_fault_event(const FaultEventInfo&) {}
  virtual void on_alert(const AlertInfo&) {}
};

/// Registration + dispatch. Tools fire in attach order (deterministic);
/// attach/detach during a dispatch is not supported.
class ToolRegistry {
 public:
  void attach(Tool* tool);
  void detach(Tool* tool);
  [[nodiscard]] size_t size() const { return tools_.size(); }

  /// Monotonic id source for TargetInfo::target_id.
  [[nodiscard]] uint64_t next_target_id() { return ++last_target_id_; }

  void emit_device_init(const DeviceInfo& info);
  void emit_device_fini(const DeviceInfo& info);
  void emit_target_begin(const TargetInfo& info);
  void emit_target_end(const TargetEndInfo& info);
  void emit_data_op(const DataOpInfo& info);
  void emit_kernel_submit(const KernelInfo& info);
  void emit_kernel_complete(const KernelInfo& info);
  void emit_instance_state_change(const InstanceStateInfo& info);
  void emit_autoscale_decision(const AutoscaleInfo& info);
  void emit_scheduler_event(const SchedulerEventInfo& info);
  void emit_fault_event(const FaultEventInfo& info);
  void emit_alert(const AlertInfo& info);

 private:
  std::vector<Tool*> tools_;
  uint64_t last_target_id_ = 0;
};

}  // namespace ompcloud::tools
