#include "trace/alerts.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "support/strings.h"
#include "trace/timeseries.h"

namespace ompcloud::trace {

namespace {

/// A parsed metric selector: family name + label constraints.
struct Selector {
  std::string family;
  Labels labels;
};

Result<Selector> parse_selector(std::string_view text) {
  Selector selector;
  size_t brace = text.find('{');
  if (brace == std::string_view::npos) {
    selector.family = std::string(text);
    return selector;
  }
  if (text.empty() || text.back() != '}') {
    return invalid_argument("selector '" + std::string(text) +
                            "': unterminated label block");
  }
  selector.family = std::string(text.substr(0, brace));
  std::string_view body = text.substr(brace + 1, text.size() - brace - 2);
  for (const std::string& pair : split(body, ',')) {
    if (pair.empty()) continue;
    size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      return invalid_argument("selector '" + std::string(text) +
                              "': label constraints are key=value");
    }
    std::string key(trim(std::string_view(pair).substr(0, eq)));
    std::string_view value = trim(std::string_view(pair).substr(eq + 1));
    if (value.size() >= 2 && value.front() == '"' && value.back() == '"') {
      value = value.substr(1, value.size() - 2);
    }
    selector.labels.emplace_back(std::move(key), std::string(value));
  }
  return selector;
}

bool matches(const MetricKey& key, const Selector& selector) {
  if (key.name != selector.family) return false;
  for (const auto& [k, v] : selector.labels) {
    const std::string* value = key.label(k);
    if (value == nullptr || *value != v) return false;
  }
  return true;
}

/// Enumerates the group values a rule splits on (label values of
/// `group_by` across matching series); one unnamed group when `group_by`
/// is empty.
std::set<std::string> enumerate_groups(
    const std::map<std::string, TimeSeries>& series, const Selector& selector,
    const std::string& group_by) {
  std::set<std::string> groups;
  if (group_by.empty()) {
    groups.insert("");
    return groups;
  }
  for (const auto& [key, unused] : series) {
    MetricKey parsed = Metrics::parse_key(key);
    if (!matches(parsed, selector)) continue;
    if (const std::string* value = parsed.label(group_by)) {
      groups.insert(*value);
    }
  }
  return groups;
}

/// Sums `delta` (or, with window_ticks < 0, the instantaneous value) over
/// every series matching the selector within one group.
///
/// An unconstrained, ungrouped selector prefers the exact unlabeled series
/// when the family has one (the flat back-compat aliases already aggregate
/// their labeled splits; summing both would double-count).
double sum_over_group(const std::map<std::string, TimeSeries>& series,
                      const Selector& selector, const std::string& group_by,
                      const std::string& group_value, int64_t tick,
                      int64_t window_ticks) {
  const bool grouped = !group_by.empty();
  if (!grouped && selector.labels.empty()) {
    if (auto it = series.find(selector.family); it != series.end()) {
      return window_ticks < 0
                 ? it->second.value_at(tick)
                 : it->second.delta(tick - window_ticks, tick);
    }
  }
  double total = 0;
  for (const auto& [key, ts] : series) {
    MetricKey parsed = Metrics::parse_key(key);
    if (!matches(parsed, selector)) continue;
    if (grouped) {
      const std::string* value = parsed.label(group_by);
      if (value == nullptr || *value != group_value) continue;
    } else if (selector.labels.empty() && !parsed.labels.empty()) {
      // No flat alias exists: sum every labeled split (fall through).
    }
    total += window_ticks < 0 ? ts.value_at(tick)
                              : ts.delta(tick - window_ticks, tick);
  }
  return total;
}

Result<double> parse_duration_or_fail(std::string_view token,
                                      const std::string& rule) {
  auto seconds = parse_duration_seconds(token);
  if (!seconds.has_value() || *seconds < 0) {
    return invalid_argument("alerts.rule." + rule + ": bad duration '" +
                            std::string(token) + "'");
  }
  return *seconds;
}

Result<AlertRule> parse_rule(std::string name, const std::string& text) {
  std::vector<std::string> tokens;
  for (const std::string& token : split(text, ' ')) {
    if (!token.empty()) tokens.push_back(token);
  }
  if (tokens.empty()) {
    return invalid_argument("alerts.rule." + name + ": empty rule");
  }
  AlertRule rule;
  rule.name = std::move(name);
  size_t i = 1;
  auto need = [&](const char* what) -> Result<std::string> {
    if (i >= tokens.size()) {
      return invalid_argument("alerts.rule." + rule.name + ": expected " +
                              what);
    }
    return tokens[i++];
  };

  if (tokens[0] == "burn-rate") {
    rule.kind = AlertRule::Kind::kBurnRate;
    auto num = need("bad-event selector");
    if (!num.ok()) return num.status();
    rule.numerator = *num;
    auto slash = need("'/'");
    if (!slash.ok()) return slash.status();
    if (*slash != "/") {
      return invalid_argument("alerts.rule." + rule.name +
                              ": burn-rate selectors are <bad> / <total>");
    }
    auto den = need("total-event selector");
    if (!den.ok()) return den.status();
    rule.denominator = *den;
  } else if (tokens[0] == "threshold") {
    rule.kind = AlertRule::Kind::kThreshold;
    auto sel = need("selector");
    if (!sel.ok()) return sel.status();
    rule.selector = *sel;
    auto op = need("comparison operator");
    if (!op.ok()) return op.status();
    if (*op != ">" && *op != ">=" && *op != "<" && *op != "<=" &&
        *op != "==") {
      return invalid_argument("alerts.rule." + rule.name +
                              ": unknown operator '" + *op + "'");
    }
    rule.op = *op;
    auto bound = need("bound value");
    if (!bound.ok()) return bound.status();
    auto value = parse_double(*bound);
    if (!value.has_value()) {
      return invalid_argument("alerts.rule." + rule.name + ": bad bound '" +
                              *bound + "'");
    }
    rule.bound = *value;
  } else {
    return invalid_argument("alerts.rule." + rule.name +
                            ": rules start with burn-rate or threshold");
  }

  while (i < tokens.size()) {
    const std::string keyword = tokens[i++];
    if (keyword == "by") {
      auto label = need("label after 'by'");
      if (!label.ok()) return label.status();
      rule.group_by = *label;
    } else if (keyword == "objective" &&
               rule.kind == AlertRule::Kind::kBurnRate) {
      auto token = need("objective fraction");
      if (!token.ok()) return token.status();
      auto objective = parse_double(*token);
      if (!objective.has_value() || *objective <= 0 || *objective >= 1) {
        return invalid_argument("alerts.rule." + rule.name +
                                ": objective must be in (0, 1)");
      }
      rule.objective = *objective;
    } else if (keyword == "windows" &&
               rule.kind == AlertRule::Kind::kBurnRate) {
      auto token = need("window spec");
      if (!token.ok()) return token.status();
      for (const std::string& part : split(*token, ',')) {
        size_t colon = part.find(':');
        if (colon == std::string::npos) {
          return invalid_argument("alerts.rule." + rule.name +
                                  ": windows are <duration>:<burn>[,...]");
        }
        AlertRule::Window window;
        auto seconds = parse_duration_or_fail(
            std::string_view(part).substr(0, colon), rule.name);
        if (!seconds.ok()) return seconds.status();
        window.seconds = *seconds;
        auto burn = parse_double(std::string_view(part).substr(colon + 1));
        if (!burn.has_value() || *burn <= 0) {
          return invalid_argument("alerts.rule." + rule.name +
                                  ": window burn thresholds must be > 0");
        }
        window.burn = *burn;
        rule.windows.push_back(window);
      }
    } else if (keyword == "for" && rule.kind == AlertRule::Kind::kThreshold) {
      auto token = need("duration after 'for'");
      if (!token.ok()) return token.status();
      auto seconds = parse_duration_or_fail(*token, rule.name);
      if (!seconds.ok()) return seconds.status();
      rule.for_seconds = *seconds;
    } else if (keyword == "severity") {
      auto token = need("severity after 'severity'");
      if (!token.ok()) return token.status();
      rule.severity = *token;
    } else {
      return invalid_argument("alerts.rule." + rule.name +
                              ": unknown keyword '" + keyword + "'");
    }
  }

  if (rule.kind == AlertRule::Kind::kBurnRate && rule.windows.empty()) {
    return invalid_argument("alerts.rule." + rule.name +
                            ": burn-rate rules need a windows clause");
  }
  return rule;
}

}  // namespace

Result<AlertRuleSet> AlertRuleSet::from_config(const Config& config) {
  AlertRuleSet set;
  constexpr std::string_view kPrefix = "rule.";
  for (const std::string& key : config.keys_in("alerts")) {
    if (key.size() <= kPrefix.size() ||
        key.compare(0, kPrefix.size(), kPrefix) != 0) {
      continue;
    }
    auto rule = parse_rule(key.substr(kPrefix.size()),
                           config.get_string("alerts." + key, ""));
    if (!rule.ok()) return rule.status();
    set.rules.push_back(std::move(*rule));
  }
  return set;
}

AlertEvaluator::AlertEvaluator(Tracer& tracer, AlertRuleSet rules)
    : tracer_(&tracer), rules_(std::move(rules)) {}

void AlertEvaluator::evaluate(const TimeSeriesCollector& collector,
                              int64_t tick) {
  const auto& series = collector.series();
  const double interval = collector.options().interval_seconds;
  auto to_ticks = [&](double seconds) {
    return std::max<int64_t>(1, std::llround(seconds / interval));
  };

  for (const AlertRule& rule : rules_.rules) {
    if (rule.kind == AlertRule::Kind::kBurnRate) {
      auto numerator = parse_selector(rule.numerator);
      auto denominator = parse_selector(rule.denominator);
      if (!numerator.ok() || !denominator.ok()) continue;  // validated at parse
      for (const std::string& group :
           enumerate_groups(series, *numerator, rule.group_by)) {
        bool firing = true;
        double binding_burn = 0;
        bool first = true;
        for (const AlertRule::Window& window : rule.windows) {
          const int64_t ticks = to_ticks(window.seconds);
          const double bad = sum_over_group(series, *numerator, rule.group_by,
                                            group, tick, ticks);
          const double total = sum_over_group(
              series, *denominator, rule.group_by, group, tick, ticks);
          const double ratio = total > 0 ? bad / total : 0.0;
          const double burn = ratio / std::max(1e-12, 1.0 - rule.objective);
          if (first || burn < binding_burn) binding_burn = burn;
          first = false;
          if (burn < window.burn) {
            firing = false;
            break;
          }
        }
        const std::string labels =
            rule.group_by.empty()
                ? std::string()
                : Metrics::encode_key("", {{rule.group_by, group}});
        GroupState& state = state_[rule.name + "\n" + labels];
        state.rule = &rule;
        transition(state, rule, labels, firing, tick, binding_burn);
      }
    } else {
      auto selector = parse_selector(rule.selector);
      if (!selector.ok()) continue;
      for (const std::string& group :
           enumerate_groups(series, *selector, rule.group_by)) {
        const double value = sum_over_group(series, *selector, rule.group_by,
                                            group, tick, /*window_ticks=*/-1);
        bool condition = false;
        if (rule.op == ">") condition = value > rule.bound;
        else if (rule.op == ">=") condition = value >= rule.bound;
        else if (rule.op == "<") condition = value < rule.bound;
        else if (rule.op == "<=") condition = value <= rule.bound;
        else condition = value == rule.bound;

        const std::string labels =
            rule.group_by.empty()
                ? std::string()
                : Metrics::encode_key("", {{rule.group_by, group}});
        GroupState& state = state_[rule.name + "\n" + labels];
        state.rule = &rule;
        state.consecutive = condition ? state.consecutive + 1 : 0;
        const int need =
            rule.for_seconds > 0 ? static_cast<int>(to_ticks(rule.for_seconds))
                                 : 1;
        transition(state, rule, labels, state.consecutive >= need, tick,
                   value);
      }
    }
  }
}

void AlertEvaluator::transition(GroupState& state, const AlertRule& rule,
                                const std::string& labels, bool now_firing,
                                int64_t tick, double value) {
  state.value = value;
  if (now_firing == state.firing) return;
  state.firing = now_firing;
  if (now_firing) {
    state.since_tick = tick;
    ++fired_;
  }
  events_.push_back(
      {rule.name, labels, rule.severity, now_firing, tick, value});
  (void)tracer_->instant(
      now_firing ? "alert.fire" : "alert.resolve",
      {{"rule", rule.name},
       {"labels", labels},
       {"severity", rule.severity},
       {"value", str_format("%.9g", value)},
       {"tick", str_format("%lld", static_cast<long long>(tick))}});
  tools::AlertInfo info;
  info.kind = now_firing ? tools::AlertInfo::Kind::kFire
                         : tools::AlertInfo::Kind::kResolve;
  info.rule = rule.name;
  info.labels = labels;
  info.severity = rule.severity;
  info.value = value;
  info.time = tracer_->now();
  tracer_->tools().emit_alert(info);
}

std::vector<ActiveAlert> AlertEvaluator::active() const {
  std::vector<ActiveAlert> result;
  for (const auto& [key, state] : state_) {
    if (!state.firing || state.rule == nullptr) continue;
    size_t nl = key.find('\n');
    result.push_back({key.substr(0, nl), key.substr(nl + 1),
                      state.rule->severity, state.since_tick, state.value});
  }
  return result;
}

}  // namespace ompcloud::trace
