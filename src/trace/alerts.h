// Declarative SLO alerting over the telemetry rings (timeseries.h).
//
// Rules live in the `[alerts]` INI section, one per `rule.<name>` key, in
// one of two shapes:
//
//   rule.<name> = burn-rate <bad-selector> / <total-selector>
//                 [by <label>] objective <fraction>
//                 windows <w1>:<burn1>,<w2>:<burn2>[,...]
//                 [severity page|ticket|info]
//
//     Multi-window burn-rate alerting in the SRE-workbook sense: over each
//     trailing window the error ratio is bad/total, the burn rate is
//     ratio / (1 - objective) — how many times faster than "exactly spend
//     the error budget" the service is burning — and the rule fires only
//     when EVERY window exceeds its threshold (the short window gates
//     detection latency, the long window gates flappiness). `by <label>`
//     evaluates each label value (e.g. each tenant) independently.
//
//   rule.<name> = threshold <selector> <op> <value> [for <duration>]
//                 [by <label>] [severity ...]
//
//     Instantaneous comparison (`> >= < <= ==`) on the summed current
//     value of the matching series, required to hold for `for` before
//     firing (queue-depth, breaker-state style alerts).
//
// Selectors name a metric family with optional label constraints:
// `slo.deadline{outcome=missed}` matches every series of that family
// carrying the label (remaining labels are summed over, or split out by
// the `by` clause). Transitions emit `alert.fire`/`alert.resolve` instant
// spans and `on_alert` tool callbacks; the built-in MetricsTool folds
// those back into `alert.fired{rule=...}` counters, closing the loop.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "support/config.h"
#include "support/status.h"
#include "trace/tracer.h"

namespace ompcloud::trace {

class TimeSeriesCollector;

struct AlertRule {
  enum class Kind { kBurnRate, kThreshold };
  struct Window {
    double seconds = 0;  ///< trailing window length (virtual seconds)
    double burn = 0;     ///< minimum burn rate for this window to vote fire
  };

  Kind kind = Kind::kThreshold;
  std::string name;
  std::string severity = "page";
  std::string group_by;  ///< label to split groups on; empty = one group

  // burn-rate fields
  std::string numerator;    ///< bad-event selector text
  std::string denominator;  ///< total-event selector text
  double objective = 0.999;
  std::vector<Window> windows;

  // threshold fields
  std::string selector;
  std::string op = ">=";
  double bound = 0;
  double for_seconds = 0;
};

struct AlertRuleSet {
  std::vector<AlertRule> rules;

  [[nodiscard]] bool empty() const { return rules.empty(); }

  /// Parses every `alerts.rule.<name>` key; malformed rules are a
  /// configuration error (loud, not skipped).
  static Result<AlertRuleSet> from_config(const Config& config);
};

/// One fire/resolve transition, in tick space (ocmon + tsdb dump).
struct AlertEvent {
  std::string rule;
  std::string labels;  ///< encoded group labels, e.g. {tenant="teamA"}
  std::string severity;
  bool fire = true;
  int64_t tick = 0;
  double value = 0;  ///< binding burn rate / threshold value
};

/// A group currently in the firing state.
struct ActiveAlert {
  std::string rule;
  std::string labels;
  std::string severity;
  int64_t since_tick = 0;
  double value = 0;
};

/// Evaluates a rule set against the collector's rings after every sample
/// tick. Owned by the collector (set_alert_rules).
class AlertEvaluator {
 public:
  AlertEvaluator(Tracer& tracer, AlertRuleSet rules);

  void evaluate(const TimeSeriesCollector& collector, int64_t tick);

  [[nodiscard]] const AlertRuleSet& rules() const { return rules_; }
  [[nodiscard]] const std::vector<AlertEvent>& events() const {
    return events_;
  }
  [[nodiscard]] uint64_t fired() const { return fired_; }
  [[nodiscard]] std::vector<ActiveAlert> active() const;

 private:
  struct GroupState {
    const AlertRule* rule = nullptr;
    bool firing = false;
    int64_t since_tick = 0;
    int consecutive = 0;  ///< threshold rules: ticks the condition held
    double value = 0;
  };

  void transition(GroupState& state, const AlertRule& rule,
                  const std::string& labels, bool now_firing, int64_t tick,
                  double value);

  Tracer* tracer_;
  AlertRuleSet rules_;
  /// Keyed `<rule>\n<encoded group labels>` (deterministic iteration).
  std::map<std::string, GroupState> state_;
  std::vector<AlertEvent> events_;
  uint64_t fired_ = 0;
};

}  // namespace ompcloud::trace
