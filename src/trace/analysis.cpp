#include "trace/analysis.h"

#include <algorithm>
#include <cstdlib>

#include "support/strings.h"

namespace ompcloud::trace {

namespace {

/// Canonical phase order for attribution priority and output. `recovery`
/// outranks everything: backoff + re-attempt windows count as time lost to
/// faults even while an enclosing upload/download phase span is open.
constexpr const char* kPhaseOrder[] = {
    "recovery", "boot",    "upload",   "submit", "compute",
    "download", "cleanup", "shutdown", "other",  "idle",
};
constexpr size_t kPhaseCount = sizeof(kPhaseOrder) / sizeof(kPhaseOrder[0]);
constexpr size_t kRecoveryPhase = 0;
constexpr size_t kIdlePhase = kPhaseCount - 1;

size_t phase_category(const std::string& name) {
  if (name == "boot") return 1;
  if (name == "upload") return 2;
  if (name == "spark.submit") return 3;
  if (name == "spark.job" || name == "host.exec") return 4;
  if (name == "download") return 5;
  if (name == "cleanup") return 6;
  if (name == "cluster.shutdown") return 7;
  return 8;  // other
}

bool ends_with(const std::string& name, std::string_view suffix) {
  return name.size() >= suffix.size() &&
         std::string_view(name).substr(name.size() - suffix.size()) == suffix;
}

/// Alert group labels embed quotes (`{tenant="teamA"}`), unlike the other
/// strings these reports emit, so they need escaping before JSON.
std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/// Parses the index out of names like "task[12]"; -1 on mismatch.
int bracket_index(const std::string& name, std::string_view prefix) {
  if (name.size() <= prefix.size() + 1) return -1;
  if (std::string_view(name).substr(0, prefix.size()) != prefix) return -1;
  return std::atoi(name.c_str() + prefix.size());
}

double quantized_sum(const std::vector<const Span*>& spans,
                     std::string_view key) {
  double sum = 0;
  for (const Span* span : spans) {
    sum += quantize_value(span->value_or(key, 0.0));
  }
  return sum;
}

PipelineStats pipeline_stats(const std::vector<const Span*>& subtree) {
  PipelineStats stats;
  // Quantized copies of the stage spans, so the concurrency sweep sees the
  // same boundaries live and after import.
  std::vector<Span> staged;
  for (const Span* span : subtree) {
    // Storage leaf spans (store.put/store.get/...) sit under the pipeline
    // stage spans; counting them too would double-charge the wire.
    if (std::string_view(span->name).substr(0, 6) == "store.") continue;
    bool codec = span->name == "compress" || span->name == "decode" ||
                 ends_with(span->name, ".compress") ||
                 ends_with(span->name, ".decode");
    bool wire = span->name == "put" || span->name == "fetch" ||
                ends_with(span->name, ".put") ||
                ends_with(span->name, ".fetch");
    if (!codec && !wire) continue;
    auto [qs, qe] = quantized_interval(*span);
    if (codec) stats.codec_seconds += qe - qs;
    if (wire) stats.wire_seconds += qe - qs;
    if (std::string_view(span->name).substr(0, 6) == "block[") {
      stats.blocks += 1;
    }
    Span copy;
    copy.id = span->id;
    copy.start = qs;
    copy.end = qe;
    staged.push_back(std::move(copy));
  }
  std::vector<const Span*> pointers;
  pointers.reserve(staged.size());
  for (const Span& span : staged) pointers.push_back(&span);
  auto profile = TraceQuery::concurrency_profile(pointers);
  for (size_t i = 0; i + 1 < profile.size(); ++i) {
    double width = profile[i + 1].first - profile[i].first;
    if (profile[i].second >= 1) stats.busy_seconds += width;
    if (profile[i].second >= 2) stats.overlapped_seconds += width;
  }
  // Abutting quantized spans leave sub-nanosecond summation residue; the
  // export grid is 1 ns, so anything below it is no overlap at all.
  if (stats.busy_seconds < 1e-10) stats.busy_seconds = 0;
  if (stats.overlapped_seconds < 1e-10) stats.overlapped_seconds = 0;
  stats.ideal_overlap_seconds =
      std::min(stats.wire_seconds, stats.codec_seconds);
  if (stats.ideal_overlap_seconds > 0) {
    stats.overlap_efficiency = std::min(
        1.0, stats.overlapped_seconds / stats.ideal_overlap_seconds);
  }
  return stats;
}

std::string pipeline_json(const PipelineStats& stats) {
  return str_format(
      "{\"blocks\": %llu, \"wire_seconds\": %.9g, \"codec_seconds\": %.9g, "
      "\"busy_seconds\": %.9g, \"overlapped_seconds\": %.9g, "
      "\"ideal_overlap_seconds\": %.9g, \"overlap_efficiency\": %.9g}",
      static_cast<unsigned long long>(stats.blocks), stats.wire_seconds,
      stats.codec_seconds, stats.busy_seconds, stats.overlapped_seconds,
      stats.ideal_overlap_seconds, stats.overlap_efficiency);
}

}  // namespace

double quantize_time(double seconds) {
  return std::strtod(str_format("%.3f", seconds * 1e6).c_str(), nullptr) / 1e6;
}

double quantize_value(double value) {
  return std::strtod(str_format("%.9g", value).c_str(), nullptr);
}

std::pair<double, double> quantized_interval(const Span& span) {
  double start = quantize_time(span.start);
  return {start, start + quantize_time(span.duration())};
}

TraceAnalyzer::TraceAnalyzer(const Tracer& tracer)
    : tracer_(&tracer), query_(tracer) {}

std::vector<const Span*> TraceAnalyzer::offload_roots() const {
  std::vector<const Span*> roots;
  for (const Span* span : query_.named("offload")) {
    if (span->closed()) roots.push_back(span);
  }
  return roots;
}

std::vector<OffloadAnalysis> TraceAnalyzer::analyze_all() const {
  std::vector<OffloadAnalysis> out;
  for (const Span* root : offload_roots()) out.push_back(analyze(*root));
  return out;
}

OffloadAnalysis TraceAnalyzer::analyze(const Span& root) const {
  OffloadAnalysis analysis;
  if (const std::string* region = root.tag("region")) {
    analysis.region = *region;
  }
  if (const std::string* device = root.tag("device")) {
    analysis.device = *device;
  }
  if (const std::string* fallback = root.tag("fallback")) {
    analysis.fallback = *fallback == "true";
  }
  auto [root_start, root_end] = quantized_interval(root);
  analysis.start = root_start;
  analysis.total_seconds = root_end - root_start;

  // --- Batch membership. The scheduler plants a sibling `batch` span for
  // every coalesced dispatch (omptarget/scheduler.cpp dispatch_batch); it
  // is matched to the merged job's offload root through the region tag
  // ("batch#<id>"), so ordinary offloads never pick one up.
  if (!analysis.region.empty()) {
    for (const Span* span : query_.named("batch")) {
      const std::string* tagged = span->tag("region");
      if (tagged == nullptr || *tagged != analysis.region) continue;
      analysis.batch.batched = true;
      if (const std::string* members = span->tag("members")) {
        analysis.batch.members =
            static_cast<uint64_t>(std::atoll(members->c_str()));
      }
      if (const std::string* tenants = span->tag("tenants")) {
        analysis.batch.tenants = *tenants;
      }
      if (const std::string* regions = span->tag("regions")) {
        analysis.batch.regions = *regions;
      }
      if (const std::string* bytes = span->tag("bytes")) {
        analysis.batch.mapped_bytes =
            quantize_value(std::strtod(bytes->c_str(), nullptr));
      }
      break;
    }
  }

  std::vector<const Span*> subtree = query_.subtree(root.id);

  // --- Fault/recovery accounting over the whole offload subtree. `fault`
  // tags mark spans where an injected fault (or detected corruption) was
  // observed; `recovery` spans wrap each backoff + re-attempt window;
  // `breaker` markers record circuit-breaker transitions for this offload.
  for (const Span* span : subtree) {
    if (span->tag("fault") != nullptr) analysis.faults.faults += 1;
    if (span->name == "recovery") analysis.faults.retries += 1;
    if (span->name == "breaker") analysis.faults.breaker_transitions += 1;
  }

  // --- Phase attribution: a segment sweep over the root's direct children.
  // Boundaries partition the root interval; each elementary segment is
  // attributed to the highest-priority phase covering it (idle when none
  // does), so the slices add up to the root duration by construction.
  // `recovery` spans live deeper in the tree (under the op they retried)
  // but still join the sweep, at top priority, so fault-recovery time is
  // carved out of whatever phase it interrupted.
  struct Covering {
    double start, end;
    size_t category;
  };
  std::vector<Covering> coverings;
  std::vector<double> boundaries{root_start, root_end};
  auto add_covering = [&](const Span& span, size_t category) {
    auto [qs, qe] = quantized_interval(span);
    qs = std::max(qs, root_start);
    qe = std::min(qe, root_end);
    if (qe <= qs) return;
    coverings.push_back({qs, qe, category});
    boundaries.push_back(qs);
    boundaries.push_back(qe);
  };
  for (const Span* child : query_.children(root.id)) {
    if (!child->closed() || child->instant) continue;
    add_covering(*child, phase_category(child->name));
  }
  for (const Span* span : subtree) {
    if (span->name != "recovery" || !span->closed() || span->instant) continue;
    add_covering(*span, kRecoveryPhase);
  }
  std::sort(boundaries.begin(), boundaries.end());
  boundaries.erase(std::unique(boundaries.begin(), boundaries.end()),
                   boundaries.end());
  double phase_seconds[kPhaseCount] = {};
  for (size_t i = 0; i + 1 < boundaries.size(); ++i) {
    double a = boundaries[i];
    double b = boundaries[i + 1];
    size_t category = kIdlePhase;
    for (const Covering& covering : coverings) {
      if (covering.start <= a && covering.end >= b &&
          covering.category < category) {
        category = covering.category;
      }
    }
    phase_seconds[category] += b - a;
  }
  for (size_t p = 0; p < kPhaseCount; ++p) {
    if (phase_seconds[p] <= 0) continue;
    PhaseSlice slice;
    slice.phase = kPhaseOrder[p];
    slice.seconds = phase_seconds[p];
    slice.percent = analysis.total_seconds > 0
                        ? phase_seconds[p] / analysis.total_seconds * 100.0
                        : 0.0;
    analysis.phases.push_back(std::move(slice));
  }
  analysis.faults.recovery_seconds = phase_seconds[kRecoveryPhase];

  // --- Critical path (greedy last-finisher walk).
  for (const Span* step : query_.critical_path(root.id)) {
    auto [qs, qe] = quantized_interval(*step);
    analysis.critical_path.push_back({step->name, qs, qe - qs});
  }

  // --- Task skew over the `task[t]` spans of this offload. Quantiles come
  // from a Histogram whose bounds are the observed durations themselves, so
  // the interpolation is near-exact and identical across export round trips.
  struct TaskSample {
    int task;
    int worker;
    double seconds;
  };
  std::vector<TaskSample> samples;
  std::vector<double> durations;
  for (const Span* span : subtree) {
    int task = bracket_index(span->name, "task[");
    if (task < 0) continue;
    auto [qs, qe] = quantized_interval(*span);
    int worker = -1;
    if (const std::string* tag = span->tag("worker")) {
      worker = std::atoi(tag->c_str());
    }
    samples.push_back({task, worker, qe - qs});
    durations.push_back(qe - qs);
  }
  analysis.skew.tasks = samples.size();
  if (!samples.empty()) {
    std::vector<double> bounds = durations;
    std::sort(bounds.begin(), bounds.end());
    bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
    Histogram histogram(bounds);
    for (double d : durations) histogram.record(d);
    analysis.skew.p50 = histogram.quantile(0.5);
    analysis.skew.p95 = histogram.quantile(0.95);
    analysis.skew.max = histogram.max();
    if (analysis.skew.p50 > 0) {
      analysis.skew.straggler_ratio = analysis.skew.max / analysis.skew.p50;
    }
    double threshold = 1.5 * analysis.skew.p50;
    for (const TaskSample& sample : samples) {
      if (sample.seconds > threshold) {
        analysis.skew.stragglers.push_back(
            {sample.task, sample.worker, sample.seconds});
      }
    }
  }

  // --- Transfer-pipeline overlap, per direction. The `resident/<var>`
  // marker spans in the same phases count the transfers the data
  // environment eliminated (upload skipped / download deferred).
  auto count_resident = [](const std::vector<const Span*>& phase,
                           uint64_t& count) {
    for (const Span* span : phase) {
      if (std::string_view(span->name).substr(0, 9) == "resident/") count += 1;
    }
  };
  for (const Span* child : query_.children(root.id)) {
    if (child->name == "upload") {
      std::vector<const Span*> phase = query_.subtree(child->id);
      analysis.transfer.upload = pipeline_stats(phase);
      analysis.transfer.uploaded_plain_bytes =
          quantized_sum(phase, "plain_bytes");
      analysis.transfer.uploaded_wire_bytes =
          quantized_sum(phase, "wire_bytes");
      analysis.residency.bytes_saved = quantized_sum(phase, "bytes_saved");
      count_resident(phase, analysis.residency.upload_skips);
    } else if (child->name == "download") {
      std::vector<const Span*> phase = query_.subtree(child->id);
      analysis.transfer.download = pipeline_stats(phase);
      analysis.transfer.downloaded_plain_bytes =
          quantized_sum(phase, "plain_bytes");
      analysis.transfer.downloaded_wire_bytes =
          quantized_sum(phase, "wire_bytes");
      analysis.residency.bytes_deferred =
          quantized_sum(phase, "bytes_deferred");
      count_resident(phase, analysis.residency.download_defers);
    }
  }

  // --- Dollar-cost attribution (§III-A). On-the-fly offloads meter from
  // the boot request to the shutdown completion using the boot span's
  // instance metadata; pre-provisioned runs meter the root interval against
  // the billing gauges the cluster published.
  const Span* boot = query_.first_in_subtree(root.id, "cluster.boot");
  if (boot != nullptr) {
    analysis.cost.on_the_fly = true;
    analysis.cost.instances = quantize_value(boot->value_or("instances", 0));
    analysis.cost.price_per_hour =
        quantize_value(boot->value_or("price_per_hour", 0));
    double window_start = quantized_interval(*boot).first;
    double window_end = root_end;
    const Span* stop = query_.first_in_subtree(root.id, "cluster.shutdown");
    if (stop != nullptr) window_end = quantized_interval(*stop).second;
    analysis.cost.billed_seconds = window_end - window_start;
  } else {
    const auto& gauges = tracer_->metrics().gauges();
    auto instances = gauges.find("cluster.billing_instances");
    auto price = gauges.find("cluster.price_per_hour");
    if (instances != gauges.end()) {
      analysis.cost.instances = quantize_value(instances->second.value());
    }
    if (price != gauges.end()) {
      analysis.cost.price_per_hour = quantize_value(price->second.value());
    }
    analysis.cost.billed_seconds = analysis.total_seconds;
  }
  analysis.cost.cost_usd = analysis.cost.instances *
                           analysis.cost.price_per_hour *
                           analysis.cost.billed_seconds / 3600.0;
  return analysis;
}

std::string OffloadAnalysis::to_json(int indent) const {
  std::string pad(static_cast<size_t>(indent), ' ');
  std::string json = "{\n";
  json += str_format("%s  \"region\": \"%s\",\n", pad.c_str(), region.c_str());
  json += str_format("%s  \"device\": \"%s\",\n", pad.c_str(), device.c_str());
  json += str_format("%s  \"fallback\": %s,\n", pad.c_str(),
                     fallback ? "true" : "false");
  json += str_format("%s  \"start\": %.9g,\n", pad.c_str(), start);
  json += str_format("%s  \"total_seconds\": %.9g,\n", pad.c_str(),
                     total_seconds);
  json += str_format("%s  \"phases\": [", pad.c_str());
  for (size_t p = 0; p < phases.size(); ++p) {
    json += str_format(
        "%s\n%s    {\"phase\": \"%s\", \"seconds\": %.9g, \"percent\": %.9g}",
        p == 0 ? "" : ",", pad.c_str(), phases[p].phase.c_str(),
        phases[p].seconds, phases[p].percent);
  }
  json += phases.empty() ? "],\n" : str_format("\n%s  ],\n", pad.c_str());
  json += str_format("%s  \"critical_path\": [", pad.c_str());
  for (size_t s = 0; s < critical_path.size(); ++s) {
    json += str_format(
        "%s\n%s    {\"name\": \"%s\", \"start\": %.9g, \"seconds\": %.9g}",
        s == 0 ? "" : ",", pad.c_str(), critical_path[s].name.c_str(),
        critical_path[s].start, critical_path[s].seconds);
  }
  json += critical_path.empty() ? "],\n"
                                : str_format("\n%s  ],\n", pad.c_str());
  json += str_format(
      "%s  \"skew\": {\"tasks\": %llu, \"p50\": %.9g, \"p95\": %.9g, "
      "\"max\": %.9g, \"straggler_ratio\": %.9g, \"stragglers\": [",
      pad.c_str(), static_cast<unsigned long long>(skew.tasks), skew.p50,
      skew.p95, skew.max, skew.straggler_ratio);
  for (size_t s = 0; s < skew.stragglers.size(); ++s) {
    json += str_format(
        "%s{\"task\": %d, \"worker\": %d, \"seconds\": %.9g}",
        s == 0 ? "" : ", ", skew.stragglers[s].task, skew.stragglers[s].worker,
        skew.stragglers[s].seconds);
  }
  json += "]},\n";
  json += str_format("%s  \"transfer\": {\n", pad.c_str());
  json += str_format("%s    \"upload\": %s,\n", pad.c_str(),
                     pipeline_json(transfer.upload).c_str());
  json += str_format("%s    \"download\": %s,\n", pad.c_str(),
                     pipeline_json(transfer.download).c_str());
  json += str_format(
      "%s    \"bytes\": {\"uploaded_plain\": %.9g, \"uploaded_wire\": %.9g, "
      "\"downloaded_plain\": %.9g, \"downloaded_wire\": %.9g}\n",
      pad.c_str(), transfer.uploaded_plain_bytes, transfer.uploaded_wire_bytes,
      transfer.downloaded_plain_bytes, transfer.downloaded_wire_bytes);
  json += str_format("%s  },\n", pad.c_str());
  json += str_format(
      "%s  \"residency\": {\"upload_skips\": %llu, \"download_defers\": %llu, "
      "\"bytes_saved\": %.9g, \"bytes_deferred\": %.9g},\n",
      pad.c_str(), static_cast<unsigned long long>(residency.upload_skips),
      static_cast<unsigned long long>(residency.download_defers),
      residency.bytes_saved, residency.bytes_deferred);
  json += str_format(
      "%s  \"faults\": {\"observed\": %llu, \"retries\": %llu, "
      "\"breaker_transitions\": %llu, \"recovery_seconds\": %.9g},\n",
      pad.c_str(), static_cast<unsigned long long>(faults.faults),
      static_cast<unsigned long long>(faults.retries),
      static_cast<unsigned long long>(faults.breaker_transitions),
      faults.recovery_seconds);
  if (batch.batched) {
    json += str_format(
        "%s  \"batch\": {\"members\": %llu, \"tenants\": \"%s\", "
        "\"regions\": \"%s\", \"mapped_bytes\": %.9g},\n",
        pad.c_str(), static_cast<unsigned long long>(batch.members),
        batch.tenants.c_str(), batch.regions.c_str(), batch.mapped_bytes);
  }
  json += str_format(
      "%s  \"cost\": {\"on_the_fly\": %s, \"instances\": %.9g, "
      "\"price_per_hour\": %.9g, \"billed_seconds\": %.9g, "
      "\"cost_usd\": %.9g}\n",
      pad.c_str(), cost.on_the_fly ? "true" : "false", cost.instances,
      cost.price_per_hour, cost.billed_seconds, cost.cost_usd);
  json += str_format("%s}", pad.c_str());
  return json;
}

std::string OffloadAnalysis::to_text() const {
  std::string out = str_format(
      "offload '%s' on %s%s — %.6f s\n", region.c_str(), device.c_str(),
      fallback ? " (host fallback)" : "", total_seconds);
  out += "  phases:\n";
  for (const PhaseSlice& slice : phases) {
    out += str_format("    %-10s %12.6f s  %6.2f%%\n", slice.phase.c_str(),
                      slice.seconds, slice.percent);
  }
  out += "  critical path:";
  for (size_t s = 0; s < critical_path.size(); ++s) {
    out += str_format("%s %s (%.6f s)", s == 0 ? "" : " >",
                      critical_path[s].name.c_str(), critical_path[s].seconds);
  }
  out += "\n";
  out += str_format(
      "  skew: %llu tasks  p50 %.6f s  p95 %.6f s  max %.6f s  "
      "straggler-ratio %.3f\n",
      static_cast<unsigned long long>(skew.tasks), skew.p50, skew.p95,
      skew.max, skew.straggler_ratio);
  for (const SkewTask& straggler : skew.stragglers) {
    out += str_format("    straggler task[%d] on worker %d: %.6f s\n",
                      straggler.task, straggler.worker, straggler.seconds);
  }
  out += str_format(
      "  transfer: upload %llu blocks, overlap %.0f%% of ideal "
      "(wire %.6f s, codec %.6f s); download %llu blocks, overlap %.0f%% "
      "of ideal\n",
      static_cast<unsigned long long>(transfer.upload.blocks),
      transfer.upload.overlap_efficiency * 100.0,
      transfer.upload.wire_seconds, transfer.upload.codec_seconds,
      static_cast<unsigned long long>(transfer.download.blocks),
      transfer.download.overlap_efficiency * 100.0);
  if (residency.upload_skips > 0 || residency.download_defers > 0) {
    out += str_format(
        "  residency: %llu uploads skipped (%.0f bytes saved)  "
        "%llu downloads deferred (%.0f bytes)\n",
        static_cast<unsigned long long>(residency.upload_skips),
        residency.bytes_saved,
        static_cast<unsigned long long>(residency.download_defers),
        residency.bytes_deferred);
  }
  if (faults.faults > 0 || faults.retries > 0 ||
      faults.breaker_transitions > 0) {
    out += str_format(
        "  faults: %llu observed  %llu retries  %llu breaker transitions  "
        "%.6f s lost to recovery\n",
        static_cast<unsigned long long>(faults.faults),
        static_cast<unsigned long long>(faults.retries),
        static_cast<unsigned long long>(faults.breaker_transitions),
        faults.recovery_seconds);
  }
  if (batch.batched) {
    out += str_format(
        "  batch: %llu members (%s) — %.0f mapped bytes\n",
        static_cast<unsigned long long>(batch.members), batch.tenants.c_str(),
        batch.mapped_bytes);
  }
  out += str_format(
      "  cost: $%.6f  (%.9g instances x $%.9g/h x %.6f s%s)\n", cost.cost_usd,
      cost.instances, cost.price_per_hour, cost.billed_seconds,
      cost.on_the_fly ? ", on-the-fly" : "");
  return out;
}

ClusterScalingAnalysis TraceAnalyzer::analyze_cluster() const {
  ClusterScalingAnalysis analysis;

  // Horizon: t=0 through the last closed span end anywhere in the trace —
  // the window over which a static fleet would have been billed.
  for (const Span* span : query_.all()) {
    if (!span->closed()) continue;
    analysis.horizon_seconds =
        std::max(analysis.horizon_seconds, quantized_interval(*span).second);
  }

  const auto& gauges = tracer_->metrics().gauges();
  auto gauge = [&gauges](const char* name) {
    auto it = gauges.find(name);
    return it == gauges.end() ? 0.0 : quantize_value(it->second.value());
  };
  double workers_provisioned = gauge("cluster.workers_provisioned");
  analysis.cores_per_worker = gauge("cluster.cores_per_worker");

  // Fleet timeline: each `cluster.workers` marker records the fleet size
  // (running + booting) right after a transition; the level holds until the
  // next marker. Before the first marker the fleet is empty (elastic and
  // on-the-fly clusters record their initial size at creation).
  struct FleetEvent {
    double time;
    double level;
  };
  std::vector<FleetEvent> events;
  for (const Span* span : query_.named("cluster.workers")) {
    double level = quantize_value(span->value_or("running", 0)) +
                   quantize_value(span->value_or("booting", 0));
    events.push_back({quantize_time(span->start), level});
  }
  // Ties must keep recording order (a scale-down parks workers one at a
  // time at the same instant; only the last level of such a cascade is a
  // state the fleet actually held for any time).
  std::stable_sort(events.begin(), events.end(),
                   [](const FleetEvent& a, const FleetEvent& b) {
                     return a.time < b.time;
                   });
  if (!events.empty()) {
    analysis.found = true;
    double level = 0;
    double cursor = 0;
    for (size_t i = 0; i < events.size();) {
      const double time = events[i].time;
      double until = std::min(time, analysis.horizon_seconds);
      if (until > cursor) {
        analysis.provisioned_worker_seconds += level * (until - cursor);
        cursor = until;
      }
      while (i < events.size() && events[i].time == time) ++i;
      const double next = events[i - 1].level;  // cascade collapses to last
      if (next != level) analysis.elastic = true;
      level = next;
      analysis.peak_workers = std::max(analysis.peak_workers, level);
    }
    if (analysis.horizon_seconds > cursor) {
      analysis.provisioned_worker_seconds +=
          level * (analysis.horizon_seconds - cursor);
    }
  } else if (workers_provisioned > 0) {
    // Static always-on cluster: constant fleet for the whole horizon.
    analysis.found = true;
    analysis.peak_workers = workers_provisioned;
    analysis.provisioned_worker_seconds =
        workers_provisioned * analysis.horizon_seconds;
  }
  if (analysis.horizon_seconds > 0) {
    analysis.avg_workers =
        analysis.provisioned_worker_seconds / analysis.horizon_seconds;
  }

  // Busy time: what the Spark tasks actually consumed, against the capacity
  // that was provisioned to run them.
  for (const Span* span : query_.with_prefix("task[")) {
    if (!span->closed()) continue;
    auto [qs, qe] = quantized_interval(*span);
    analysis.busy_core_seconds += qe - qs;
  }
  double capacity =
      analysis.provisioned_worker_seconds * analysis.cores_per_worker;
  if (capacity > 0) {
    analysis.utilization =
        std::min(1.0, analysis.busy_core_seconds / capacity);
  }

  analysis.scale_ups = query_.named("autoscale.up").size();
  analysis.scale_downs = query_.named("autoscale.down").size();
  analysis.preemptions = query_.named("autoscale.preempt").size();

  analysis.static_worker_seconds =
      workers_provisioned * analysis.horizon_seconds;
  if (analysis.static_worker_seconds > 0) {
    analysis.scaling_savings = 1.0 - analysis.provisioned_worker_seconds /
                                         analysis.static_worker_seconds;
    if (analysis.scaling_savings < 0) analysis.scaling_savings = 0;
  }
  return analysis;
}

std::string ClusterScalingAnalysis::to_json(int indent) const {
  std::string pad(static_cast<size_t>(indent), ' ');
  std::string json = "{\n";
  json += str_format("%s  \"found\": %s,\n", pad.c_str(),
                     found ? "true" : "false");
  json += str_format("%s  \"elastic\": %s,\n", pad.c_str(),
                     elastic ? "true" : "false");
  json += str_format("%s  \"horizon_seconds\": %.9g,\n", pad.c_str(),
                     horizon_seconds);
  json += str_format("%s  \"avg_workers\": %.9g,\n", pad.c_str(), avg_workers);
  json += str_format("%s  \"peak_workers\": %.9g,\n", pad.c_str(),
                     peak_workers);
  json += str_format("%s  \"provisioned_worker_seconds\": %.9g,\n",
                     pad.c_str(), provisioned_worker_seconds);
  json += str_format("%s  \"busy_core_seconds\": %.9g,\n", pad.c_str(),
                     busy_core_seconds);
  json += str_format("%s  \"cores_per_worker\": %.9g,\n", pad.c_str(),
                     cores_per_worker);
  json += str_format("%s  \"utilization\": %.9g,\n", pad.c_str(), utilization);
  json += str_format(
      "%s  \"scaling\": {\"scale_ups\": %llu, \"scale_downs\": %llu, "
      "\"preemptions\": %llu},\n",
      pad.c_str(), static_cast<unsigned long long>(scale_ups),
      static_cast<unsigned long long>(scale_downs),
      static_cast<unsigned long long>(preemptions));
  json += str_format("%s  \"static_worker_seconds\": %.9g,\n", pad.c_str(),
                     static_worker_seconds);
  json += str_format("%s  \"scaling_savings\": %.9g\n", pad.c_str(),
                     scaling_savings);
  json += str_format("%s}", pad.c_str());
  return json;
}

std::string ClusterScalingAnalysis::to_text() const {
  if (!found) return "cluster: no fleet information in trace\n";
  std::string out = str_format(
      "cluster (%s) — horizon %.6f s\n", elastic ? "elastic" : "static",
      horizon_seconds);
  out += str_format(
      "  fleet: avg %.3f workers, peak %.9g, %.6f worker-seconds "
      "provisioned\n",
      avg_workers, peak_workers, provisioned_worker_seconds);
  out += str_format(
      "  utilization: %.2f%%  (%.6f busy core-seconds / %.9g cores per "
      "worker)\n",
      utilization * 100.0, busy_core_seconds, cores_per_worker);
  out += str_format(
      "  scaling: %llu up, %llu down, %llu preemptions\n",
      static_cast<unsigned long long>(scale_ups),
      static_cast<unsigned long long>(scale_downs),
      static_cast<unsigned long long>(preemptions));
  out += str_format(
      "  efficiency: %.2f%% of static worker-seconds avoided "
      "(%.6f vs %.6f static)\n",
      scaling_savings * 100.0, provisioned_worker_seconds,
      static_worker_seconds);
  return out;
}

ServiceStats TraceAnalyzer::analyze_service() const {
  ServiceStats stats;
  std::vector<double> waits;
  std::vector<std::string> tenant_names;
  for (const Span* span : query_.named("sched.queue")) {
    if (!span->closed()) continue;
    stats.found = true;
    stats.submitted += 1;
    if (const std::string* tenant = span->tag("tenant")) {
      tenant_names.push_back(*tenant);
    }
    if (span->tag("deadline") != nullptr) stats.with_deadline += 1;
    if (span->tag("dep_wait") != nullptr) stats.dep_blocked += 1;
    if (const std::string* reject = span->tag("reject")) {
      // Preemption is its own bucket: the submission was admitted and then
      // evicted, which callers experience differently from a refusal.
      if (*reject == "preempt") {
        stats.preempted += 1;
      } else {
        stats.rejected += 1;
        if (*reject == "quota") stats.rejected_quota += 1;
        if (*reject == "deadline") stats.rejected_deadline += 1;
        if (*reject == "queue-full") stats.rejected_queue_full += 1;
      }
      continue;
    }
    stats.dispatched += 1;
    if (span->tag("batch") != nullptr) stats.batched += 1;
    auto [qs, qe] = quantized_interval(*span);
    waits.push_back(qe - qs);
  }
  for (const Span* span : query_.named("batch")) {
    if (span->closed()) stats.batch_jobs += 1;
  }
  std::sort(tenant_names.begin(), tenant_names.end());
  tenant_names.erase(std::unique(tenant_names.begin(), tenant_names.end()),
                     tenant_names.end());
  stats.tenants = tenant_names.size();
  if (!waits.empty()) {
    // Same construction as the skew quantiles: bounds are the observed
    // values themselves, so the interpolation is near-exact and identical
    // across export round trips.
    std::vector<double> bounds = waits;
    std::sort(bounds.begin(), bounds.end());
    bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
    Histogram histogram(bounds);
    for (double wait : waits) histogram.record(wait);
    stats.wait_p50 = histogram.quantile(0.5);
    stats.wait_p95 = histogram.quantile(0.95);
    stats.wait_max = histogram.max();
  }
  return stats;
}

std::string ServiceStats::to_json(int indent) const {
  std::string pad(static_cast<size_t>(indent), ' ');
  auto ull = [](uint64_t v) { return static_cast<unsigned long long>(v); };
  std::string json = "{\n";
  json += str_format("%s  \"found\": %s,\n", pad.c_str(),
                     found ? "true" : "false");
  json += str_format("%s  \"submitted\": %llu,\n", pad.c_str(),
                     ull(submitted));
  json += str_format("%s  \"dispatched\": %llu,\n", pad.c_str(),
                     ull(dispatched));
  json += str_format(
      "%s  \"rejected\": {\"total\": %llu, \"quota\": %llu, "
      "\"deadline\": %llu, \"queue_full\": %llu},\n",
      pad.c_str(), ull(rejected), ull(rejected_quota), ull(rejected_deadline),
      ull(rejected_queue_full));
  json += str_format("%s  \"preempted\": %llu,\n", pad.c_str(),
                     ull(preempted));
  json += str_format(
      "%s  \"batching\": {\"batched_regions\": %llu, \"batch_jobs\": %llu},\n",
      pad.c_str(), ull(batched), ull(batch_jobs));
  json += str_format("%s  \"dep_blocked\": %llu,\n", pad.c_str(),
                     ull(dep_blocked));
  json += str_format("%s  \"with_deadline\": %llu,\n", pad.c_str(),
                     ull(with_deadline));
  json += str_format("%s  \"tenants\": %llu,\n", pad.c_str(), ull(tenants));
  json += str_format(
      "%s  \"wait\": {\"p50\": %.9g, \"p95\": %.9g, \"max\": %.9g}\n",
      pad.c_str(), wait_p50, wait_p95, wait_max);
  json += str_format("%s}", pad.c_str());
  return json;
}

std::string ServiceStats::to_text() const {
  if (!found) return "service: no admission spans in trace\n";
  std::string out = str_format(
      "service — %llu submissions, %llu tenants\n",
      static_cast<unsigned long long>(submitted),
      static_cast<unsigned long long>(tenants));
  out += str_format(
      "  dispatched: %llu  (%llu batched into %llu merged jobs, "
      "%llu dep-blocked)\n",
      static_cast<unsigned long long>(dispatched),
      static_cast<unsigned long long>(batched),
      static_cast<unsigned long long>(batch_jobs),
      static_cast<unsigned long long>(dep_blocked));
  out += str_format("  wait: p50 %.6f s  p95 %.6f s  max %.6f s\n", wait_p50,
                    wait_p95, wait_max);
  out += str_format(
      "  rejected: %llu (quota %llu, deadline %llu, queue-full %llu)  "
      "preempted: %llu\n",
      static_cast<unsigned long long>(rejected),
      static_cast<unsigned long long>(rejected_quota),
      static_cast<unsigned long long>(rejected_deadline),
      static_cast<unsigned long long>(rejected_queue_full),
      static_cast<unsigned long long>(preempted));
  out += str_format("  slo: %llu submissions carried deadlines\n",
                    static_cast<unsigned long long>(with_deadline));
  return out;
}

OverloadStats TraceAnalyzer::analyze_overload() const {
  OverloadStats stats;
  for (const Span* span : query_.named("sched.queue")) {
    if (!span->closed()) continue;
    const std::string* reject = span->tag("reject");
    if (reject != nullptr && *reject == "shed") {
      stats.found = true;
      stats.shed += 1;
    }
  }
  for (const Span* span : query_.named("retry_budget")) {
    const std::string* event = span->tag("event");
    if (event != nullptr && *event == "exhausted") {
      stats.found = true;
      stats.budget_exhausted += 1;
    }
  }
  for (const Span* span : query_.named("hedge")) {
    stats.found = true;
    stats.hedges += 1;
    const std::string* outcome = span->tag("outcome");
    if (outcome != nullptr && *outcome == "won") stats.hedges_won += 1;
  }
  // Brownout episodes: pair each `enter` marker with the next `exit`. An
  // episode still open when the trace ends counts toward `brownouts` but
  // contributes no time (same convention as an un-closed span elsewhere).
  double entered = -1;
  for (const Span* span : query_.named("overload.brownout")) {
    const std::string* state = span->tag("state");
    if (state == nullptr) continue;
    stats.found = true;
    if (*state == "enter") {
      stats.brownouts += 1;
      entered = quantize_time(span->start);
    } else if (*state == "exit" && entered >= 0) {
      stats.brownout_seconds += quantize_time(span->start) - entered;
      entered = -1;
    }
  }
  return stats;
}

std::string OverloadStats::to_json(int indent) const {
  std::string pad(static_cast<size_t>(indent), ' ');
  auto ull = [](uint64_t v) { return static_cast<unsigned long long>(v); };
  std::string json = "{\n";
  json += str_format("%s  \"found\": %s,\n", pad.c_str(),
                     found ? "true" : "false");
  json += str_format("%s  \"shed\": %llu,\n", pad.c_str(), ull(shed));
  json += str_format("%s  \"budget_exhausted\": %llu,\n", pad.c_str(),
                     ull(budget_exhausted));
  json += str_format(
      "%s  \"hedges\": {\"launched\": %llu, \"won\": %llu},\n", pad.c_str(),
      ull(hedges), ull(hedges_won));
  json += str_format(
      "%s  \"brownouts\": {\"episodes\": %llu, \"seconds\": %.9g}\n",
      pad.c_str(), ull(brownouts), brownout_seconds);
  json += str_format("%s}", pad.c_str());
  return json;
}

std::string OverloadStats::to_text() const {
  if (!found) return "overload: no overload-control activity in trace\n";
  std::string out = str_format(
      "overload — %llu brownout episodes (%.6f s total)\n",
      static_cast<unsigned long long>(brownouts), brownout_seconds);
  out += str_format(
      "  shed: %llu queued regions dropped during brownout\n",
      static_cast<unsigned long long>(shed));
  out += str_format(
      "  retry budget: %llu retries refused (failed fast)\n",
      static_cast<unsigned long long>(budget_exhausted));
  out += str_format(
      "  hedging: %llu duplicate transfers launched, %llu won the race\n",
      static_cast<unsigned long long>(hedges),
      static_cast<unsigned long long>(hedges_won));
  return out;
}

TelemetryStats TraceAnalyzer::analyze_telemetry() const {
  TelemetryStats stats;
  auto as_uint = [](const std::string* text) -> uint64_t {
    if (text == nullptr) return 0;
    auto value = parse_int(*text);
    return value.has_value() && *value >= 0 ? static_cast<uint64_t>(*value)
                                            : 0;
  };
  for (const Span* span : query_.named("telemetry")) {
    // finalize() plants exactly one, but an imported concatenation of runs
    // could hold several; the last one wins (same as re-finalizing).
    stats.found = true;
    if (const std::string* interval = span->tag("interval")) {
      stats.interval_seconds = parse_double(*interval).value_or(0.0);
    }
    stats.samples = as_uint(span->tag("samples"));
    stats.series = as_uint(span->tag("series"));
    stats.evaluated_alerts = span->tag("alerts_fired") != nullptr;
    stats.alerts_fired = as_uint(span->tag("alerts_fired"));
    stats.alerts_active = as_uint(span->tag("alerts_active"));
  }
  return stats;
}

AlertStats TraceAnalyzer::analyze_alerts() const {
  AlertStats stats;
  // Aggregate edges per (rule, labels) group; keyed map keeps the report
  // sorted and stable across export round trips.
  std::map<std::pair<std::string, std::string>, AlertGroup> groups;
  auto visit = [&](const Span* span, bool fire) {
    const std::string* rule = span->tag("rule");
    if (rule == nullptr) return;
    const std::string* labels = span->tag("labels");
    AlertGroup& group =
        groups
            .try_emplace({*rule, labels != nullptr ? *labels : std::string()})
            .first->second;
    group.rule = *rule;
    if (labels != nullptr) group.labels = *labels;
    if (const std::string* severity = span->tag("severity")) {
      group.severity = *severity;
    }
    if (const std::string* value = span->tag("value")) {
      group.last_value = quantize_value(parse_double(*value).value_or(0.0));
    }
    if (fire) {
      stats.found = true;
      stats.fired += 1;
      if (group.fires == 0) group.first_fire = quantize_time(span->start);
      group.fires += 1;
    } else {
      stats.found = true;
      stats.resolved += 1;
      group.resolves += 1;
    }
  };
  for (const Span* span : query_.named("alert.fire")) visit(span, true);
  for (const Span* span : query_.named("alert.resolve")) visit(span, false);
  for (auto& [key, group] : groups) stats.groups.push_back(std::move(group));
  return stats;
}

std::string TelemetryStats::to_json(int indent) const {
  std::string pad(static_cast<size_t>(indent), ' ');
  std::string json = "{\n";
  json += str_format("%s  \"found\": %s,\n", pad.c_str(),
                     found ? "true" : "false");
  json += str_format("%s  \"interval_seconds\": %.9g,\n", pad.c_str(),
                     interval_seconds);
  json += str_format("%s  \"samples\": %llu,\n", pad.c_str(),
                     static_cast<unsigned long long>(samples));
  json += str_format("%s  \"series\": %llu,\n", pad.c_str(),
                     static_cast<unsigned long long>(series));
  json += str_format(
      "%s  \"alerts\": {\"evaluated\": %s, \"fired\": %llu, "
      "\"active\": %llu}\n",
      pad.c_str(), evaluated_alerts ? "true" : "false",
      static_cast<unsigned long long>(alerts_fired),
      static_cast<unsigned long long>(alerts_active));
  json += str_format("%s}", pad.c_str());
  return json;
}

std::string TelemetryStats::to_text() const {
  if (!found) return "telemetry: no collector in trace\n";
  std::string out = str_format(
      "telemetry — %llu samples at %.9g s cadence, %llu series\n",
      static_cast<unsigned long long>(samples), interval_seconds,
      static_cast<unsigned long long>(series));
  if (evaluated_alerts) {
    out += str_format(
        "  alerts: %llu fired, %llu active at end of run\n",
        static_cast<unsigned long long>(alerts_fired),
        static_cast<unsigned long long>(alerts_active));
  }
  return out;
}

std::string AlertStats::to_json(int indent) const {
  std::string pad(static_cast<size_t>(indent), ' ');
  std::string json = "{\n";
  json += str_format("%s  \"found\": %s,\n", pad.c_str(),
                     found ? "true" : "false");
  json += str_format("%s  \"fired\": %llu,\n", pad.c_str(),
                     static_cast<unsigned long long>(fired));
  json += str_format("%s  \"resolved\": %llu,\n", pad.c_str(),
                     static_cast<unsigned long long>(resolved));
  json += str_format("%s  \"groups\": [", pad.c_str());
  for (size_t i = 0; i < groups.size(); ++i) {
    const AlertGroup& group = groups[i];
    if (i > 0) json += ",";
    json += str_format(
        "\n%s    {\"rule\": \"%s\", \"labels\": \"%s\", \"severity\": "
        "\"%s\", \"fires\": %llu, \"resolves\": %llu, \"first_fire\": %.9g, "
        "\"last_value\": %.9g}",
        pad.c_str(), json_escape(group.rule).c_str(),
        json_escape(group.labels).c_str(), json_escape(group.severity).c_str(),
        static_cast<unsigned long long>(group.fires),
        static_cast<unsigned long long>(group.resolves), group.first_fire,
        group.last_value);
  }
  if (!groups.empty()) json += str_format("\n%s  ", pad.c_str());
  json += "]\n";
  json += str_format("%s}", pad.c_str());
  return json;
}

std::string AlertStats::to_text() const {
  if (!found) return "alerts: no alert events in trace\n";
  std::string out = str_format(
      "alerts — %llu fired, %llu resolved\n",
      static_cast<unsigned long long>(fired),
      static_cast<unsigned long long>(resolved));
  for (const AlertGroup& group : groups) {
    out += str_format(
        "  [%s] %s%s: %llu fire%s (%llu resolved), first at %.6f s, "
        "last value %.9g\n",
        group.severity.c_str(), group.rule.c_str(), group.labels.c_str(),
        static_cast<unsigned long long>(group.fires),
        group.fires == 1 ? "" : "s",
        static_cast<unsigned long long>(group.resolves), group.first_fire,
        group.last_value);
  }
  return out;
}

}  // namespace ompcloud::trace
