// Trace analyzer: turns an offload span tree into a verdict — the phase
// decomposition of Fig. 5, per-task skew statistics (which Spark task
// straggles, on which worker), transfer-pipeline overlap achieved vs. the
// double-buffered ideal, and dollar-cost attribution per offload.
//
// Determinism contract: every timestamp and numeric annotation is first
// *quantized* through the exact printf formats the Chrome exporter uses
// (`%.3f` microseconds for times, `%.9g` for values), so analyzing a live
// in-process trace and analyzing the same trace after an export → import
// round trip produce byte-identical text and JSON.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/query.h"
#include "trace/tracer.h"

namespace ompcloud::trace {

/// Rounds a time (seconds) through the exporter's microsecond `%.3f`
/// format — the value an importer reconstructs for a span boundary.
[[nodiscard]] double quantize_time(double seconds);
/// Rounds a numeric annotation / gauge through the exporter's `%.9g`.
[[nodiscard]] double quantize_value(double value);
/// The [start, end] interval an importer reconstructs for `span` (start
/// from `ts`, end from `ts` + `dur`, both quantized independently).
[[nodiscard]] std::pair<double, double> quantized_interval(const Span& span);

/// One bucket of the offload timeline decomposition. Every instant of the
/// root interval is attributed to exactly one phase, so `percent` sums to
/// 100 across the slices of one analysis (idle time has its own bucket).
struct PhaseSlice {
  std::string phase;   ///< recovery|boot|upload|submit|compute|download|...
  double seconds = 0;
  double percent = 0;  ///< of the root span's duration
};

/// One step of the greedy critical path (root first).
struct CriticalStep {
  std::string name;
  double start = 0;    ///< absolute virtual time, quantized
  double seconds = 0;  ///< quantized duration
};

/// A flagged straggler task (duration > 1.5x the stage median).
struct SkewTask {
  int task = -1;    ///< partition/tile index (from the `task[t]` span name)
  int worker = -1;  ///< worker it ran on (-1 when the span carries no tag)
  double seconds = 0;
};

/// Distribution of `task[t]` span durations under one offload. Quantiles
/// come from a Histogram built over the observed durations (so the same
/// interpolation is used live and after import).
struct SkewStats {
  uint64_t tasks = 0;
  double p50 = 0;
  double p95 = 0;
  double max = 0;
  double straggler_ratio = 0;  ///< max over median; 0 when no tasks ran
  std::vector<SkewTask> stragglers;
};

/// Concurrency accounting over the block-level spans of one direction of
/// the transfer pipeline (block[k].compress/put uploading, .fetch/.decode
/// downloading). `overlap_efficiency` compares the time two pipeline
/// stages actually ran concurrently against the double-buffered ideal
/// (codec fully hidden behind the wire, or vice versa).
struct PipelineStats {
  uint64_t blocks = 0;            ///< block-level spans observed
  double wire_seconds = 0;        ///< summed put/fetch durations
  double codec_seconds = 0;       ///< summed compress/decode durations
  double busy_seconds = 0;        ///< >= 1 block-level span open
  double overlapped_seconds = 0;  ///< >= 2 block-level spans open
  double ideal_overlap_seconds = 0;  ///< min(wire, codec)
  double overlap_efficiency = 0;     ///< overlapped / ideal, in [0, 1]
};

struct TransferStats {
  PipelineStats upload;
  PipelineStats download;
  double uploaded_plain_bytes = 0;
  double uploaded_wire_bytes = 0;
  double downloaded_plain_bytes = 0;
  double downloaded_wire_bytes = 0;
};

/// Transfers a cloud-resident data environment (omptarget/data_env.h)
/// eliminated from this offload: uploads skipped because the input's
/// current version already lives in the bucket, and downloads deferred
/// because the output stays device-side until environment exit. Counted
/// from the zero-duration `resident/<var>` marker spans the plugin plants
/// under the upload/download phases, so `octrace summary` can attribute
/// the saved transfer time.
struct ResidencyStats {
  uint64_t upload_skips = 0;
  uint64_t download_defers = 0;
  double bytes_saved = 0;     ///< upload bytes not re-staged
  double bytes_deferred = 0;  ///< download bytes left cloud-resident
};

/// Fault/recovery accounting for one offload: what the injected faults and
/// the self-healing machinery (retries, breaker, resubmission) cost it.
/// `recovery_seconds` equals the `recovery` phase slice — wall time the
/// offload spent inside backoff + re-attempt windows.
struct FaultStats {
  uint64_t faults = 0;   ///< subtree spans tagged `fault` (observed faults)
  uint64_t retries = 0;  ///< `recovery` spans (storage retries + resubmits)
  uint64_t breaker_transitions = 0;  ///< `breaker` marker spans
  double recovery_seconds = 0;       ///< union of recovery-span intervals
};

/// Dollar attribution for one offload (§III-A cost metering). On-the-fly
/// runs meter from the boot request to the shutdown completion using the
/// `cluster.boot` span's instance metadata; pre-provisioned runs meter the
/// root interval against the `cluster.*` billing gauges.
struct CostStats {
  bool on_the_fly = false;
  double instances = 0;
  double price_per_hour = 0;
  double billed_seconds = 0;
  double cost_usd = 0;
};

/// Micro-batch membership for a coalesced offload. Filled when the root's
/// `region` tag matches a `batch` span the scheduler planted as a sibling
/// (omptarget/batch.h): the offload ran one merged Spark job on behalf of
/// several queued regions, and this records whose work it carried. Ordinary
/// offloads leave `batched` false, and both `octrace summary` text and JSON
/// omit the section — old traces render byte-identically.
struct BatchStats {
  bool batched = false;
  uint64_t members = 0;     ///< regions coalesced into the merged job
  std::string tenants;      ///< comma list, member order
  std::string regions;      ///< comma list of member region names
  double mapped_bytes = 0;  ///< summed member data environments
};

/// Everything the analyzer derives from one `offload` root span.
struct OffloadAnalysis {
  std::string region;
  std::string device;
  bool fallback = false;
  double start = 0;          ///< quantized root start
  double total_seconds = 0;  ///< quantized root duration
  std::vector<PhaseSlice> phases;
  std::vector<CriticalStep> critical_path;
  SkewStats skew;
  TransferStats transfer;
  ResidencyStats residency;
  FaultStats faults;
  BatchStats batch;
  CostStats cost;

  /// Stable JSON object (nested lines prefixed with `indent` spaces).
  [[nodiscard]] std::string to_json(int indent = 0) const;
  /// Stable human-readable block (what `octrace summary` prints).
  [[nodiscard]] std::string to_text() const;
};

/// Fleet-wide utilization + scaling efficiency over the whole trace (not
/// one offload): integrates the `cluster.workers` step timeline the
/// cluster records on every instance transition into provisioned
/// worker-seconds, compares against the busy core-seconds of the Spark
/// tasks that actually ran, and counts the autoscaler's decisions. Static
/// (never-scaled) clusters fall back to the `cluster.workers_provisioned`
/// gauge, so the section is meaningful for every trace.
struct ClusterScalingAnalysis {
  bool found = false;          ///< any fleet information in the trace
  bool elastic = false;        ///< fleet size changed over the run
  double horizon_seconds = 0;  ///< t=0 .. last closed span end
  double avg_workers = 0;      ///< provisioned_worker_seconds / horizon
  double peak_workers = 0;     ///< max running+booting observed
  double provisioned_worker_seconds = 0;  ///< billed worker time (no driver)
  double busy_core_seconds = 0;           ///< summed Spark task durations
  double cores_per_worker = 0;
  /// busy_core_seconds / (provisioned_worker_seconds * cores_per_worker).
  double utilization = 0;
  uint64_t scale_ups = 0;
  uint64_t scale_downs = 0;
  uint64_t preemptions = 0;
  /// What the same horizon costs with the full static fleet always on.
  double static_worker_seconds = 0;
  /// 1 - provisioned/static: fraction of worker time elasticity avoided.
  double scaling_savings = 0;

  /// Stable JSON object (nested lines prefixed with `indent` spaces).
  [[nodiscard]] std::string to_json(int indent = 0) const;
  /// Stable human-readable block (what `octrace util` prints).
  [[nodiscard]] std::string to_text() const;
};

/// Service-layer verdict over the whole trace: what the SLO-aware admission
/// queue did with every submission. Derived entirely from the scheduler's
/// `sched.queue` spans (one per submit; duration = admission-queue wait;
/// `reject` tag on refusals, `batch` tag on coalesced dispatches) plus the
/// `batch` root spans, so it survives export → import byte-identically.
/// Traces recorded before the service layer hold no `sched.queue` spans and
/// leave `found` false.
struct ServiceStats {
  bool found = false;           ///< any scheduler admission spans in trace
  uint64_t submitted = 0;       ///< sched.queue spans (one per submit)
  uint64_t dispatched = 0;      ///< admitted and handed to a device
  uint64_t rejected = 0;        ///< refused at admission (incl. expiries)
  uint64_t rejected_quota = 0;  ///< per-tenant quota exhausted
  uint64_t rejected_deadline = 0;  ///< infeasible or expired deadline
  uint64_t rejected_queue_full = 0;  ///< queue-limit with no preemptable entry
  uint64_t preempted = 0;       ///< evicted while queued by higher priority
  uint64_t batched = 0;         ///< dispatched inside a coalesced batch
  uint64_t batch_jobs = 0;      ///< merged Spark jobs those rode in
  uint64_t dep_blocked = 0;     ///< held back by a queued-dependence hazard
  uint64_t with_deadline = 0;   ///< submissions carrying an SLO deadline
  uint64_t tenants = 0;         ///< distinct tenants observed
  /// Admission-queue wait of dispatched submissions (quantized durations,
  /// quantiles from a Histogram over the observed values — same
  /// interpolation live and after import).
  double wait_p50 = 0;
  double wait_p95 = 0;
  double wait_max = 0;

  /// Stable JSON object (nested lines prefixed with `indent` spaces).
  [[nodiscard]] std::string to_json(int indent = 0) const;
  /// Stable human-readable block (what `octrace service` prints).
  [[nodiscard]] std::string to_text() const;
};

/// Overload-control verdict over the whole trace: what the retry budgets,
/// the brownout shedder, and hedged transfers did while the control plane
/// was under pressure. Derived entirely from the `retry_budget` / `hedge` /
/// `overload.brownout` marker spans plus the `reject=shed` tag on
/// `sched.queue` spans, so it survives export → import byte-identically.
/// Traces recorded before the overload control plane existed (or with
/// `[overload]` off and no incidents) hold none of those spans and leave
/// `found` false — both `octrace summary` text and JSON omit the section.
struct OverloadStats {
  bool found = false;
  uint64_t shed = 0;              ///< queued regions dropped during brownout
  uint64_t budget_exhausted = 0;  ///< retries refused by an empty budget
  uint64_t hedges = 0;            ///< duplicate transfers launched
  uint64_t hedges_won = 0;        ///< duplicates that beat the primary
  uint64_t brownouts = 0;         ///< brownout episodes entered
  double brownout_seconds = 0;    ///< total time spent inside brownout

  /// Stable JSON object (nested lines prefixed with `indent` spaces).
  [[nodiscard]] std::string to_json(int indent = 0) const;
  /// Stable human-readable block (what `octrace summary` prints).
  [[nodiscard]] std::string to_text() const;
};

/// Telemetry-pipeline verdict: what the time-series collector recorded,
/// read back from the `telemetry` instant it plants at finalize(). Traces
/// recorded with `[telemetry]` off (or before the pipeline existed) hold no
/// such span and leave `found` false — both `octrace summary` text and JSON
/// omit the section, so old traces render byte-identically.
struct TelemetryStats {
  bool found = false;
  double interval_seconds = 0;  ///< sampling cadence (virtual seconds)
  uint64_t samples = 0;         ///< registry scrapes taken
  uint64_t series = 0;          ///< distinct time series retained
  bool evaluated_alerts = false;  ///< an alert rule set was loaded
  uint64_t alerts_fired = 0;      ///< fire edges over the whole run
  uint64_t alerts_active = 0;     ///< still firing at end of run

  /// Stable JSON object (nested lines prefixed with `indent` spaces).
  [[nodiscard]] std::string to_json(int indent = 0) const;
  /// Stable human-readable block (what `octrace summary` prints).
  [[nodiscard]] std::string to_text() const;
};

/// One (rule, label-set) alert group aggregated from its `alert.fire` /
/// `alert.resolve` instants.
struct AlertGroup {
  std::string rule;
  std::string labels;    ///< encoded `{k="v"}` group labels; "" ungrouped
  std::string severity;
  uint64_t fires = 0;
  uint64_t resolves = 0;
  double first_fire = 0;  ///< quantized virtual time of the first fire
  double last_value = 0;  ///< burn rate / threshold value at the last edge
};

/// End-of-run alert report over the whole trace, derived entirely from the
/// evaluator's `alert.fire`/`alert.resolve` instants (so it survives
/// export → import byte-identically). `found` stays false when the trace
/// holds no alert edges.
struct AlertStats {
  bool found = false;
  uint64_t fired = 0;
  uint64_t resolved = 0;
  std::vector<AlertGroup> groups;  ///< sorted by (rule, labels)

  /// Stable JSON object (nested lines prefixed with `indent` spaces).
  [[nodiscard]] std::string to_json(int indent = 0) const;
  /// Stable human-readable block (what `octrace summary` prints).
  [[nodiscard]] std::string to_text() const;
};

/// Runs the analyses over a recorded (or imported) trace.
class TraceAnalyzer {
 public:
  explicit TraceAnalyzer(const Tracer& tracer);

  /// Top-level `offload` spans, in creation order.
  [[nodiscard]] std::vector<const Span*> offload_roots() const;
  [[nodiscard]] OffloadAnalysis analyze(const Span& root) const;
  /// `analyze` for every offload root.
  [[nodiscard]] std::vector<OffloadAnalysis> analyze_all() const;
  /// Fleet utilization + scaling efficiency over the whole trace.
  [[nodiscard]] ClusterScalingAnalysis analyze_cluster() const;
  /// Admission/batching verdict over the whole trace.
  [[nodiscard]] ServiceStats analyze_service() const;
  /// Overload-control verdict (budgets, shedding, hedging, brownouts).
  [[nodiscard]] OverloadStats analyze_overload() const;
  /// Collector footprint read back from the `telemetry` instant.
  [[nodiscard]] TelemetryStats analyze_telemetry() const;
  /// Alert report aggregated from `alert.fire`/`alert.resolve` instants.
  [[nodiscard]] AlertStats analyze_alerts() const;

 private:
  const Tracer* tracer_;
  TraceQuery query_;
};

}  // namespace ompcloud::trace
