#include "trace/export.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "support/strings.h"

namespace ompcloud::trace {

namespace {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += str_format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Walks `span`'s parent chain looking for `ancestor`.
bool has_ancestor(const Tracer& tracer, const Span& span, SpanId ancestor) {
  SpanId current = span.parent;
  while (current != kNoSpan) {
    if (current == ancestor) return true;
    const Span* parent = tracer.find(current);
    current = parent != nullptr ? parent->parent : kNoSpan;
  }
  return false;
}

/// Greedy deterministic lane assignment: a span may join a lane iff the
/// lane's innermost still-open span is one of its ancestors (so "X" events
/// nest correctly); otherwise it opens the first free lane.
std::vector<int> assign_lanes(const Tracer& tracer,
                              const std::vector<const Span*>& ordered) {
  std::vector<int> lane_of(tracer.spans().size() + 1, 0);
  std::vector<std::vector<const Span*>> lanes;  // open-span stacks
  for (const Span* span : ordered) {
    if (span->instant) continue;  // "i" events render on lane 0
    int chosen = -1;
    for (size_t l = 0; l < lanes.size(); ++l) {
      auto& stack = lanes[l];
      while (!stack.empty() && stack.back()->end <= span->start) {
        stack.pop_back();
      }
      if (stack.empty() || has_ancestor(tracer, *span, stack.back()->id)) {
        chosen = static_cast<int>(l);
        break;
      }
    }
    if (chosen < 0) {
      chosen = static_cast<int>(lanes.size());
      lanes.emplace_back();
    }
    lanes[chosen].push_back(span);
    lane_of[span->id] = chosen;
  }
  return lane_of;
}

void append_metrics(const Metrics& metrics, std::string& out) {
  out += "  \"metrics\": {\n    \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : metrics.counters()) {
    out += str_format("%s\n      \"%s\": %llu", first ? "" : ",",
                      json_escape(name).c_str(),
                      static_cast<unsigned long long>(counter.value()));
    first = false;
  }
  out += first ? "},\n" : "\n    },\n";
  out += "    \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : metrics.gauges()) {
    out += str_format("%s\n      \"%s\": %.9g", first ? "" : ",",
                      json_escape(name).c_str(), gauge.value());
    first = false;
  }
  out += first ? "},\n" : "\n    },\n";
  out += "    \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : metrics.histograms()) {
    out += str_format(
        "%s\n      \"%s\": {\"count\": %llu, \"sum\": %.9g, \"min\": %.9g, "
        "\"max\": %.9g, \"buckets\": [",
        first ? "" : ",", json_escape(name).c_str(),
        static_cast<unsigned long long>(histogram.count()), histogram.sum(),
        histogram.min(), histogram.max());
    for (size_t b = 0; b < histogram.bucket_counts().size(); ++b) {
      std::string bound = b < histogram.bounds().size()
                              ? str_format("%.9g", histogram.bounds()[b])
                              : std::string("\"inf\"");
      out += str_format("%s{\"le\": %s, \"count\": %llu}", b == 0 ? "" : ", ",
                        bound.c_str(),
                        static_cast<unsigned long long>(
                            histogram.bucket_counts()[b]));
    }
    out += "]}";
    first = false;
  }
  out += first ? "}\n" : "\n    }\n";
  out += "  }";
}

}  // namespace

std::string to_chrome_json(const Tracer& tracer,
                           std::string_view extra_top_level) {
  std::vector<const Span*> ordered;
  ordered.reserve(tracer.spans().size());
  for (const Span& span : tracer.spans()) {
    if (span.closed()) ordered.push_back(&span);
  }
  std::sort(ordered.begin(), ordered.end(), [](const Span* a, const Span* b) {
    if (a->start != b->start) return a->start < b->start;
    return a->id < b->id;
  });
  std::vector<int> lane_of = assign_lanes(tracer, ordered);

  std::string out = "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [";
  bool first = true;
  for (const Span* span : ordered) {
    if (span->instant) {
      // Zero-duration point event (log records routed into the trace):
      // Chrome "i" phase, thread-scoped so Perfetto draws it in-lane.
      out += str_format(
          "%s\n    {\"name\": \"%s\", \"cat\": \"log\", \"ph\": \"i\", "
          "\"ts\": %.3f, \"pid\": 1, \"tid\": 0, \"s\": \"t\", \"args\": "
          "{\"id\": %llu, \"parent\": %llu",
          first ? "" : ",", json_escape(span->name).c_str(), span->start * 1e6,
          static_cast<unsigned long long>(span->id),
          static_cast<unsigned long long>(span->parent));
    } else {
      out += str_format(
          "%s\n    {\"name\": \"%s\", \"cat\": \"sim\", \"ph\": \"X\", "
          "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %d, \"args\": "
          "{\"id\": %llu, \"parent\": %llu",
          first ? "" : ",", json_escape(span->name).c_str(), span->start * 1e6,
          span->duration() * 1e6, lane_of[span->id],
          static_cast<unsigned long long>(span->id),
          static_cast<unsigned long long>(span->parent));
    }
    for (const auto& [key, value] : span->tags) {
      out += str_format(", \"%s\": \"%s\"", json_escape(key).c_str(),
                        json_escape(value).c_str());
    }
    for (const auto& [key, value] : span->values) {
      out += str_format(", \"%s\": %.9g", json_escape(key).c_str(), value);
    }
    out += "}}";
    first = false;
  }
  out += first ? "],\n" : "\n  ],\n";
  append_metrics(tracer.metrics(), out);
  if (!extra_top_level.empty()) {
    out += ",\n  ";
    out += extra_top_level;
  }
  out += "\n}\n";
  return out;
}

Status write_chrome_json(const Tracer& tracer, const std::string& path,
                         std::string_view extra_top_level) {
  std::string json = to_chrome_json(tracer, extra_top_level);
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return internal_error("cannot open '" + path + "' for writing");
  }
  size_t wrote = std::fwrite(json.data(), 1, json.size(), file);
  bool ok = std::fclose(file) == 0 && wrote == json.size();
  if (!ok) return internal_error("failed writing '" + path + "'");
  return Status::ok();
}

}  // namespace ompcloud::trace
